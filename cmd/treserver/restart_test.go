package main

import (
	"context"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"timedrelease/internal/faulthttp"
	"timedrelease/tre"
)

// pollLabels polls /v1/labels until at least min labels are published
// (the startup catch-up runs in a background goroutine).
func pollLabels(t *testing.T, base string, min int) []string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, body := get(t, base+"/v1/labels")
		if code == http.StatusOK {
			var labels []string
			if s := strings.TrimSpace(string(body)); s != "" {
				labels = strings.Split(s, "\n")
			}
			if len(labels) >= min {
				return labels
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never published %d labels", min)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRestartOverSameArchiveConverges is the durability acceptance
// test: a treserver is killed mid-stream while a client is catching up,
// the crash leaves a torn half-record at the archive tail, and the
// server is restarted over the SAME -archive-dir at the SAME address.
// Recovery must drop the torn tail and re-verify every surviving
// record, and the client — riding out the outage with its retry policy
// — must converge on the full set of published updates with every one
// of them re-verified against the pinned server key.
func TestRestartOverSameArchiveConverges(t *testing.T) {
	dir := t.TempDir()
	keyPath := filepath.Join(dir, "server.key")
	archDir := filepath.Join(dir, "archive")

	// First life: publish a few epochs into the durable archive.
	addr, stop := startServer(t,
		"-key", keyPath, "-archive-dir", archDir, "-granularity", "1s")
	base := "http://" + addr

	ctx := context.Background()
	set, spub, _, err := tre.FetchBootstrap(ctx, base, nil)
	if err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	labels := pollLabels(t, base, 2)

	// Kill the server mid-stream: every in-flight and subsequent fetch
	// dies at the transport.
	if err := stop(); err != nil {
		t.Fatalf("first shutdown: %v", err)
	}

	// The crash interrupted an append: a length prefix promising 100
	// bytes, followed by only 7. Exactly what fsync-per-record leaves
	// behind when the machine dies between write and sync.
	f, err := os.OpenFile(filepath.Join(archDir, "updates.log"), os.O_APPEND|os.O_WRONLY, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	torn := append([]byte{0, 0, 0, 100}, []byte("partial")...)
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// The damage is visible to an offline audit…
	rep, err := tre.AuditArchiveDir(archDir, set, nil)
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	if !rep.Torn || rep.TornBytes != int64(len(torn)) {
		t.Fatalf("audit = torn %v (%d bytes), want torn tail of %d bytes",
			rep.Torn, rep.TornBytes, len(torn))
	}
	if len(rep.Records) < len(labels) {
		t.Fatalf("audit found %d intact records, want ≥ %d", len(rep.Records), len(labels))
	}
	// The log is the authority on what the first life published (another
	// epoch may have landed between the poll and the kill).
	labels = labels[:0]
	for _, r := range rep.Records {
		if r.Err == nil {
			labels = append(labels, r.Label)
		}
	}

	// …and repaired by recovery: second life over the same archive dir,
	// same key, same address.
	addr2, stop2 := startServer(t,
		"-key", keyPath, "-archive-dir", archDir, "-granularity", "1s", "-addr", addr)
	if addr2 != addr {
		t.Fatalf("restarted on %s, want %s", addr2, addr)
	}

	// The client lived through the outage: its first fetches still die
	// (the tail of the restart window), then the transport heals. The
	// retry policy must ride that out without surfacing anything.
	ft := faulthttp.New(http.DefaultTransport, &faulthttp.Rule{
		PathContains: "/v1/update/", From: 1, To: 2, Err: syscall.ECONNRESET,
	})
	client := tre.NewTimeClient(base, set, spub,
		tre.WithHTTPClient(ft.Client()),
		tre.WithRetry(tre.RetryPolicy{
			MaxAttempts: 4,
			BaseDelay:   time.Millisecond,
			MaxDelay:    20 * time.Millisecond,
			PerAttempt:  10 * time.Second,
		}))
	ups, err := client.CatchUp(ctx, labels)
	if err != nil {
		t.Fatalf("CatchUp across restart did not converge: %v", err)
	}
	if len(ups) != len(labels) {
		t.Fatalf("converged on %d updates, want %d", len(ups), len(labels))
	}
	scheme := tre.NewScheme(set)
	for i, u := range ups {
		if u.Label != labels[i] {
			t.Fatalf("update %d is for %q, want %q", i, u.Label, labels[i])
		}
		if !scheme.VerifyUpdate(spub, u) {
			t.Fatalf("recovered update %q fails verification against the pinned key", u.Label)
		}
	}

	// Nothing was lost and nothing unverifiable survived: the server's
	// own labels still cover everything from the first life, and the log
	// on disk is clean again (recovery truncated the torn tail; every
	// record re-verifies against the server key).
	after := pollLabels(t, base, len(labels))
	for i, l := range labels {
		if after[i] != l {
			t.Fatalf("label %q lost across restart (have %v)", l, after)
		}
	}
	if err := stop2(); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	rep2, err := tre.AuditArchiveDir(archDir, set,
		func(u tre.KeyUpdate) bool { return scheme.VerifyUpdate(spub, u) })
	if err != nil {
		t.Fatalf("final audit: %v", err)
	}
	if !rep2.Clean() {
		t.Fatalf("log still damaged after recovery: torn=%v invalid=%d", rep2.Torn, rep2.Invalid)
	}
	if len(rep2.Records) < len(labels) {
		t.Fatalf("final log has %d records, want ≥ %d", len(rep2.Records), len(labels))
	}
}

// TestRestartRefusesForgedArchive: recovery re-verifies every record
// against the server key, so a checksummed-but-forged record (an
// attacker who can write to the archive dir but lacks the signing key)
// must keep the server from serving it — treserver refuses to start.
func TestRestartRefusesForgedArchive(t *testing.T) {
	dir := t.TempDir()
	keyPath := filepath.Join(dir, "server.key")
	archDir := filepath.Join(dir, "archive")

	addr, stop := startServer(t, "-key", keyPath, "-archive-dir", archDir)
	pollLabels(t, "http://"+addr, 1)
	if err := stop(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Forge: an impostor key signs an update for a future label and
	// appends it as a well-formed, correctly checksummed record.
	set := tre.MustPreset("Test160")
	scheme := tre.NewScheme(set)
	impostor, err := scheme.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	forged, err := tre.OpenDirArchive(archDir, set, nil) // no verifier: writes go straight in
	if err != nil {
		t.Fatal(err)
	}
	if err := forged.Put(scheme.IssueUpdate(impostor, "2030-01-01T00:00:00Z")); err != nil {
		t.Fatal(err)
	}
	if err := forged.Close(); err != nil {
		t.Fatal(err)
	}

	cfg, err := parseFlags([]string{
		"-preset", "Test160", "-addr", "127.0.0.1:0", "-granularity", "1m",
		"-key", keyPath, "-archive-dir", archDir,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := run(ctx, cfg, io.Discard); err == nil || !strings.Contains(err.Error(), "fails update verification") {
		t.Fatalf("run over a forged archive = %v, want verification refusal", err)
	}
}

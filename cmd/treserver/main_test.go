package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"timedrelease/tre"
)

func TestLoadOrCreateKey(t *testing.T) {
	set := tre.MustPreset("Test160")
	path := filepath.Join(t.TempDir(), "server.key")

	// First call creates the key.
	k1, err := loadOrCreateKey(path, set, io.Discard)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	// Second call loads the same key.
	k2, err := loadOrCreateKey(path, set, io.Discard)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if k1.S.Cmp(k2.S) != 0 {
		t.Fatal("reloaded key differs from created key")
	}
	if !set.Curve.Equal(k1.Pub.SG, k2.Pub.SG) {
		t.Fatal("reloaded public key differs")
	}
}

func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.preset != "SS512" || cfg.addr != ":8440" || cfg.granularity != time.Minute {
		t.Fatalf("wrong defaults: %+v", cfg)
	}
	if cfg.keyPath != "treserver.key" || cfg.archPath != "" || cfg.metrics {
		t.Fatalf("wrong defaults: %+v", cfg)
	}
}

func TestParseFlagsOverrides(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-preset", "Test160", "-addr", "127.0.0.1:0", "-granularity", "30s",
		"-key", "/tmp/k", "-archive", "/tmp/a", "-metrics",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.preset != "Test160" || cfg.addr != "127.0.0.1:0" || cfg.granularity != 30*time.Second {
		t.Fatalf("overrides not applied: %+v", cfg)
	}
	if cfg.keyPath != "/tmp/k" || cfg.archPath != "/tmp/a" || !cfg.metrics {
		t.Fatalf("overrides not applied: %+v", cfg)
	}
}

func TestParseFlagsErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-granularity", "notaduration"},
		{"-nosuchflag"},
		{"stray-positional"},
	} {
		if _, err := parseFlags(args, io.Discard); err == nil {
			t.Fatalf("parseFlags(%v) accepted bad input", args)
		}
	}
}

// startServer runs the command in a goroutine and returns its bound
// address and a shutdown func that cancels the context and returns
// run's error.
func startServer(t *testing.T, extraArgs ...string) (string, func() error) {
	t.Helper()
	dir := t.TempDir()
	args := append([]string{
		"-preset", "Test160",
		"-addr", "127.0.0.1:0",
		"-granularity", "1m",
		"-key", filepath.Join(dir, "server.key"),
	}, extraArgs...)
	cfg, err := parseFlags(args, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	ready := make(chan string, 1)
	cfg.onReady = func(addr string) { ready <- addr }
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, io.Discard) }()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("server did not come up")
	}
	stopped := false
	stop := func() error {
		if stopped {
			return nil
		}
		stopped = true
		cancel()
		select {
		case err := <-done:
			return err
		case <-time.After(30 * time.Second):
			return errors.New("run did not return after cancel")
		}
	}
	t.Cleanup(func() { stop() })
	return addr, stop
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestGracefulShutdownOnContextCancel(t *testing.T) {
	addr, stop := startServer(t)
	if code, body := get(t, fmt.Sprintf("http://%s/v1/healthz", addr)); code != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz = %d %q", code, body)
	}
	if err := stop(); err != nil {
		t.Fatalf("run returned %v on context cancel, want nil", err)
	}
	// The listener must actually be gone.
	if _, err := http.Get(fmt.Sprintf("http://%s/v1/healthz", addr)); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}

func TestMetricsAndPprofServedWhenEnabled(t *testing.T) {
	addr, _ := startServer(t, "-metrics")
	base := "http://" + addr

	// The normal API still works.
	if code, _ := get(t, base+"/v1/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	var snap struct {
		Counters   map[string]int64          `json:"counters"`
		Histograms map[string]map[string]any `json:"histograms"`
	}
	// The startup catch-up publishes the current epoch from a background
	// goroutine; poll briefly rather than racing it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body := get(t, base+"/metrics")
		if code != http.StatusOK {
			t.Fatalf("/metrics = %d", code)
		}
		if err := json.Unmarshal(body, &snap); err != nil {
			t.Fatalf("/metrics is not snapshot JSON: %v\n%s", err, body)
		}
		if snap.Counters["timeserver.published"] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("published = %d, want ≥ 1", snap.Counters["timeserver.published"])
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, ok := snap.Counters["timeserver.requests.healthz"]; !ok {
		t.Fatalf("healthz request not counted: %v", snap.Counters)
	}
	if code, _ := get(t, base+"/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

func TestMetricsAndPprofSuppressedByDefault(t *testing.T) {
	addr, _ := startServer(t)
	base := "http://" + addr
	if code, _ := get(t, base+"/v1/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if code, _ := get(t, base+"/metrics"); code != http.StatusNotFound {
		t.Fatalf("/metrics without -metrics = %d, want 404", code)
	}
	if code, _ := get(t, base+"/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("/debug/pprof/ without -metrics = %d, want 404", code)
	}
}

package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"timedrelease/internal/keyfile"
	"timedrelease/tre"
)

func TestLoadOrCreateKey(t *testing.T) {
	set := tre.MustPreset("Test160")
	path := filepath.Join(t.TempDir(), "server.key")

	// First call creates the key.
	k1, err := loadOrCreateKey(path, set, io.Discard)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	// Second call loads the same key.
	k2, err := loadOrCreateKey(path, set, io.Discard)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if k1.S.Cmp(k2.S) != 0 {
		t.Fatal("reloaded key differs from created key")
	}
	if !set.Curve.Equal(k1.Pub.SG, k2.Pub.SG) {
		t.Fatal("reloaded public key differs")
	}
}

func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.preset != "SS512" || cfg.addr != ":8440" || cfg.granularity != time.Minute {
		t.Fatalf("wrong defaults: %+v", cfg)
	}
	if cfg.keyPath != "treserver.key" || cfg.archDir != "" || cfg.metrics {
		t.Fatalf("wrong defaults: %+v", cfg)
	}
}

func TestParseFlagsOverrides(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-preset", "Test160", "-addr", "127.0.0.1:0", "-granularity", "30s",
		"-key", "/tmp/k", "-archive-dir", "/tmp/a", "-metrics",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.preset != "Test160" || cfg.addr != "127.0.0.1:0" || cfg.granularity != 30*time.Second {
		t.Fatalf("overrides not applied: %+v", cfg)
	}
	if cfg.keyPath != "/tmp/k" || cfg.archDir != "/tmp/a" || !cfg.metrics {
		t.Fatalf("overrides not applied: %+v", cfg)
	}
}

func TestParseFlagsErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-granularity", "notaduration"},
		{"-nosuchflag"},
		{"stray-positional"},
	} {
		if _, err := parseFlags(args, io.Discard); err == nil {
			t.Fatalf("parseFlags(%v) accepted bad input", args)
		}
	}
}

// startServer runs the command in a goroutine and returns its bound
// address and a shutdown func that cancels the context and returns
// run's error.
func startServer(t *testing.T, extraArgs ...string) (string, func() error) {
	t.Helper()
	return startServerDir(t, t.TempDir(), extraArgs...)
}

// startServerDir is startServer with a caller-owned directory, so tests
// can reach the key files the command writes there.
func startServerDir(t *testing.T, dir string, extraArgs ...string) (string, func() error) {
	t.Helper()
	args := append([]string{
		"-preset", "Test160",
		"-addr", "127.0.0.1:0",
		"-granularity", "1m",
		"-key", filepath.Join(dir, "server.key"),
	}, extraArgs...)
	cfg, err := parseFlags(args, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	ready := make(chan string, 1)
	cfg.onReady = func(addr string) { ready <- addr }
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, io.Discard) }()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("server did not come up")
	}
	stopped := false
	stop := func() error {
		if stopped {
			return nil
		}
		stopped = true
		cancel()
		select {
		case err := <-done:
			return err
		case <-time.After(30 * time.Second):
			return errors.New("run did not return after cancel")
		}
	}
	t.Cleanup(func() { stop() })
	return addr, stop
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestGracefulShutdownOnContextCancel(t *testing.T) {
	addr, stop := startServer(t)
	if code, body := get(t, fmt.Sprintf("http://%s/v1/healthz", addr)); code != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz = %d %q", code, body)
	}
	if err := stop(); err != nil {
		t.Fatalf("run returned %v on context cancel, want nil", err)
	}
	// The listener must actually be gone.
	if _, err := http.Get(fmt.Sprintf("http://%s/v1/healthz", addr)); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}

func TestMetricsAndPprofServedWhenEnabled(t *testing.T) {
	addr, _ := startServer(t, "-metrics")
	base := "http://" + addr

	// The normal API still works.
	if code, _ := get(t, base+"/v1/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	var snap struct {
		Counters   map[string]int64          `json:"counters"`
		Histograms map[string]map[string]any `json:"histograms"`
	}
	// The startup catch-up publishes the current epoch from a background
	// goroutine; poll briefly rather than racing it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body := get(t, base+"/metrics")
		if code != http.StatusOK {
			t.Fatalf("/metrics = %d", code)
		}
		if err := json.Unmarshal(body, &snap); err != nil {
			t.Fatalf("/metrics is not snapshot JSON: %v\n%s", err, body)
		}
		if snap.Counters["timeserver.published"] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("published = %d, want ≥ 1", snap.Counters["timeserver.published"])
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, ok := snap.Counters["timeserver.requests.healthz"]; !ok {
		t.Fatalf("healthz request not counted: %v", snap.Counters)
	}
	if code, _ := get(t, base+"/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

func TestMetricsAndPprofSuppressedByDefault(t *testing.T) {
	addr, _ := startServer(t)
	base := "http://" + addr
	if code, _ := get(t, base+"/v1/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if code, _ := get(t, base+"/metrics"); code != http.StatusNotFound {
		t.Fatalf("/metrics without -metrics = %d, want 404", code)
	}
	if code, _ := get(t, base+"/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("/debug/pprof/ without -metrics = %d, want 404", code)
	}
}

func TestStuckHeaderWriterIsDisconnected(t *testing.T) {
	// Slowloris guard: a client that opens a connection and never
	// finishes its request header must be cut off by ReadHeaderTimeout,
	// not hold a connection slot forever.
	addr, _ := startServer(t, "-read-header-timeout", "300ms")
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A partial request line, then silence.
	if _, err := conn.Write([]byte("GET /v1/healthz HTTP/1.1\r\nHost: x\r\nX-Stuck: ")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(15 * time.Second))
	start := time.Now()
	if _, err := io.ReadAll(conn); err != nil {
		t.Fatalf("server did not close the stuck connection cleanly: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("stuck-header connection held for %v, want ~300ms", elapsed)
	}
}

func TestGracefulShutdownWithLongPollInFlight(t *testing.T) {
	// A receiver long-polling /v1/wait for a future release would, left
	// alone, hold its connection far past the shutdown grace period.
	// Drain must turn those waiters away (503, a transient status the
	// client retries elsewhere) so shutdown stays prompt.
	addr, stop := startServer(t)
	base := "http://" + addr

	type result struct {
		code int
		err  error
	}
	inFlight := make(chan result, 1)
	go func() {
		resp, err := http.Get(base + "/v1/wait/2030-01-01T00:00:00Z?timeout=2m")
		if err != nil {
			inFlight <- result{err: err}
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		inFlight <- result{code: resp.StatusCode}
	}()

	// Let the long-poll get parked in the handler before shutting down.
	time.Sleep(100 * time.Millisecond)
	start := time.Now()
	if err := stop(); err != nil {
		t.Fatalf("run returned %v with a long-poll in flight, want nil", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("shutdown took %v with a long-poll in flight", elapsed)
	}
	select {
	case r := <-inFlight:
		// The waiter must have been answered (503 from the drain), not
		// abandoned with a cut connection.
		if r.err != nil {
			t.Fatalf("in-flight wait died uncleanly: %v", r.err)
		}
		if r.code != http.StatusServiceUnavailable {
			t.Fatalf("in-flight wait got %d, want 503", r.code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight wait never completed")
	}
}

func TestRequireTokensGatesCatchupAndStream(t *testing.T) {
	dir := t.TempDir()
	addr, _ := startServerDir(t, dir,
		"-require-tokens",
		"-token-key", filepath.Join(dir, "token.key"),
		"-archive-dir", filepath.Join(dir, "archive"),
	)
	base := "http://" + addr

	// Ungated surfaces still answer; gated ones demand a token first.
	if code, _ := get(t, base+"/v1/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if code, _ := get(t, base+"/v1/stream"); code != http.StatusUnauthorized {
		t.Fatalf("tokenless /v1/stream = %d, want 401", code)
	}
	if code, _ := get(t, base+"/v1/catchup?from=2026-01-01T00:00:00Z&n=4"); code != http.StatusUnauthorized {
		t.Fatalf("tokenless /v1/catchup = %d, want 401", code)
	}

	// A wallet-carrying client fetches tokens and spends one per gated
	// request, exactly as against the in-process server.
	set := tre.MustPreset("Test160")
	key, err := keyfile.LoadServerKey(filepath.Join(dir, "server.key"), set)
	if err != nil {
		t.Fatal(err)
	}
	wallet := tre.NewTokenWallet(set)
	client := tre.NewTimeClient(base, set, key.Pub, tre.WithTokenWallet(wallet))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := client.FetchTokens(ctx, 2); err != nil {
		t.Fatalf("FetchTokens: %v", err)
	}
	if wallet.Len() != 2 {
		t.Fatalf("wallet holds %d tokens, want 2", wallet.Len())
	}
	sched, err := tre.NewSchedule(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	label := sched.Label(time.Now())
	u, err := client.WaitFor(ctx, label)
	if err != nil {
		t.Fatalf("WaitFor over gated stream: %v", err)
	}
	if u.Label != label {
		t.Fatalf("got update for %s, want %s", u.Label, label)
	}
	if wallet.Len() != 1 {
		t.Fatalf("wallet holds %d tokens after one gated stream, want 1", wallet.Len())
	}
}

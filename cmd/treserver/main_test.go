package main

import (
	"path/filepath"
	"testing"

	"timedrelease/tre"
)

func TestLoadOrCreateKey(t *testing.T) {
	set := tre.MustPreset("Test160")
	path := filepath.Join(t.TempDir(), "server.key")

	// First call creates the key.
	k1, err := loadOrCreateKey(path, set)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	// Second call loads the same key.
	k2, err := loadOrCreateKey(path, set)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if k1.S.Cmp(k2.S) != 0 {
		t.Fatal("reloaded key differs from created key")
	}
	if !set.Curve.Equal(k1.Pub.SG, k2.Pub.SG) {
		t.Fatal("reloaded public key differs")
	}
}

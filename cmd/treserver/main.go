// Command treserver runs a passive time server: it signs and publishes
// one self-authenticating key update per epoch and serves the public
// archive over HTTP. It never interacts with senders or receivers and
// keeps no per-user state.
//
//	treserver -preset SS512 -addr :8440 -granularity 1m \
//	          -key server.key -archive-dir ./archive -metrics
//
// On first run with a missing key file, a fresh server key is generated
// and saved. The archive directory holds an append-only, checksummed
// log of published updates that survives restarts and crashes: on
// startup the log is recovered (torn tails from a crash mid-append are
// truncated, every surviving update is re-verified against the server
// key) and missed epochs are backfilled.
//
// With -metrics the server additionally serves /metrics (a JSON
// snapshot of request, publish, cache and pairing counters — see
// docs/OBSERVABILITY.md) and the net/http/pprof profiling endpoints
// under /debug/pprof/, and emits structured JSON events (one line per
// publish) on stdout. Both expose only aggregate server-side state,
// never anything about requesters; leave the flag off to serve the
// paper's minimal surface.
//
// With -require-tokens the server blind-signs anonymous access tokens
// (POST /v1/tokens/issue, under a dedicated -token-key) and demands
// one unspent token per /v1/catchup and /v1/stream request. Spent
// tokens persist in <archive-dir>/spend.log so a restart cannot be
// used to replay them; see docs/TOKENS.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"timedrelease/internal/bls"
	"timedrelease/internal/keyfile"
	"timedrelease/internal/timeserver"
	"timedrelease/tre"
)

// config is the parsed command line.
type config struct {
	preset      string
	backend     string
	addr        string
	granularity time.Duration
	keyPath     string
	archDir     string
	metrics     bool
	headerWait  time.Duration

	requireTokens bool
	tokenKeyPath  string

	// onReady, when set (tests), receives the bound listen address
	// once the HTTP listener is up.
	onReady func(addr string)
}

// parseFlags parses args (not including the program name) into a
// config without touching global flag state, so tests can exercise it
// directly.
func parseFlags(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("treserver", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := &config{}
	fs.StringVar(&cfg.preset, "preset", "SS512", "parameter preset")
	fs.StringVar(&cfg.backend, "backend", "", "pairing backend: symmetric (default) or bls12381")
	fs.StringVar(&cfg.addr, "addr", ":8440", "listen address")
	fs.DurationVar(&cfg.granularity, "granularity", time.Minute, "epoch width (must divide 24h)")
	fs.StringVar(&cfg.keyPath, "key", "treserver.key", "server key file (created if missing)")
	fs.StringVar(&cfg.archDir, "archive-dir", "", "durable archive directory (in-memory if empty)")
	fs.BoolVar(&cfg.metrics, "metrics", false, "serve /metrics (JSON) and /debug/pprof, log publish events")
	fs.DurationVar(&cfg.headerWait, "read-header-timeout", timeserver.DefaultReadHeaderTimeout,
		"max time to wait for a request header (slowloris guard)")
	fs.BoolVar(&cfg.requireTokens, "require-tokens", false,
		"gate /v1/catchup and /v1/stream behind anonymous access tokens (docs/TOKENS.md)")
	fs.StringVar(&cfg.tokenKeyPath, "token-key", "treserver-token.key",
		"token issuance key file, created if missing (only with -require-tokens)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() != 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	return cfg, nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "treserver:", err)
		os.Exit(1)
	}
}

// run builds and serves the time server until ctx is cancelled, then
// shuts the HTTP server down gracefully. It returns nil on a clean
// shutdown.
func run(ctx context.Context, cfg *config, stdout io.Writer) error {
	set, err := tre.ResolvePreset(cfg.preset, cfg.backend)
	if err != nil {
		return err
	}
	sched, err := tre.NewSchedule(cfg.granularity)
	if err != nil {
		return err
	}
	key, err := loadOrCreateKey(cfg.keyPath, set, stdout)
	if err != nil {
		return err
	}

	var metrics *tre.Metrics
	srvOpts := make([]timeserver.Option, 0, 3)
	if cfg.metrics {
		metrics = tre.NewMetrics()
		srvOpts = append(srvOpts, tre.WithMetrics(metrics), tre.WithLogger(tre.NewEventLogger(stdout)))
	}
	if cfg.archDir != "" {
		// Recovery re-verifies every replayed update against (G, sG):
		// a torn tail (crash mid-append) is truncated and reported; a
		// record failing the pairing check refuses to start the server.
		scheme := tre.NewScheme(set)
		arch, err := tre.OpenDirArchive(cfg.archDir, set, func(u tre.KeyUpdate) bool {
			return scheme.VerifyUpdate(key.Pub, u)
		})
		if err != nil {
			return err
		}
		defer arch.Close()
		stats := arch.Stats()
		fmt.Fprintf(stdout, "treserver: recovered %d updates from %s in %v (torn tail: %d bytes dropped)\n",
			stats.Records, cfg.archDir, stats.Elapsed.Round(time.Microsecond), stats.TornBytes)
		fmt.Fprintf(stdout, "treserver: %d range checkpoints (%d rebuilt in %v)\n",
			stats.Checkpoints, stats.CheckpointsRebuilt, stats.CheckpointRebuild.Round(time.Microsecond))
		if metrics != nil {
			metrics.Histogram("timeserver.recover_ns").ObserveNS(stats.Elapsed.Nanoseconds())
			metrics.Counter("timeserver.recovered_updates").Add(int64(stats.Records))
			metrics.Counter("timeserver.recovered_torn_bytes").Add(stats.TornBytes)
			metrics.Histogram("timeserver.checkpoint_rebuild_ns").ObserveNS(stats.CheckpointRebuild.Nanoseconds())
			metrics.Counter("timeserver.checkpoints").Add(int64(stats.Checkpoints))
			metrics.Counter("timeserver.checkpoints_rebuilt").Add(int64(stats.CheckpointsRebuilt))
		}
		srvOpts = append(srvOpts, tre.WithArchive(arch))
	}
	if cfg.requireTokens {
		// The issuance key is a DEDICATED key pair: blind-signing with
		// the timed-release key would let anyone mint future updates
		// (docs/TOKENS.md). Refuse to start on a shared key rather than
		// rely on the server constructor's panic.
		tkey, err := loadOrCreateKey(cfg.tokenKeyPath, set, stdout)
		if err != nil {
			return fmt.Errorf("token issuance key: %w", err)
		}
		if tkey.S.Cmp(key.S) == 0 {
			return fmt.Errorf("token issuance key %s equals the server key %s; delete it to generate a fresh one",
				cfg.tokenKeyPath, cfg.keyPath)
		}
		iss, err := tre.TokenIssuerFromKey(set, &bls.PrivateKey{S: tkey.S, Pub: bls.PublicKey(tkey.Pub)})
		if err != nil {
			return err
		}
		var led *tre.TokenLedger
		if cfg.archDir != "" {
			var lstats tre.TokenLedgerStats
			led, lstats, err = tre.OpenTokenLedger(cfg.archDir)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "treserver: recovered %d spent tokens from %s (torn tail: %d bytes dropped)\n",
				lstats.Spent, cfg.archDir, lstats.TornBytes)
		} else {
			led = tre.NewTokenLedger()
			fmt.Fprintln(stdout, "treserver: WARNING: -require-tokens without -archive-dir; the double-spend ledger is in-memory and resets on restart")
		}
		defer led.Close()
		srvOpts = append(srvOpts,
			tre.WithTokenIssuer(iss),
			tre.WithTokenGate(tre.NewTokenVerifier(set, iss.Public(), led)))
	}
	srv := tre.NewTimeServer(set, key, sched, srvOpts...)

	handler := http.Handler(srv.Handler())
	if cfg.metrics {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.Handle("GET /metrics", metrics.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	// Production limits (header-read timeout, idle timeout, header size
	// cap) come from one place so the relay binary serves under the same
	// protections; see timeserver.NewHTTPServer for why there is no
	// overall write timeout (streams and long-polls are long-lived).
	httpServer := timeserver.NewHTTPServer(handler, cfg.headerWait)

	extras := ""
	if cfg.metrics {
		extras = ", /metrics and /debug/pprof enabled"
	}
	fmt.Fprintf(stdout, "treserver: %s params, %v epochs, listening on %s%s\n",
		set.Name, cfg.granularity, ln.Addr(), extras)
	if cfg.onReady != nil {
		cfg.onReady(ln.Addr().String())
	}

	errCh := make(chan error, 2)
	go func() {
		if err := httpServer.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()
	go func() {
		if err := srv.Run(ctx); !errors.Is(err, context.Canceled) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	select {
	case <-ctx.Done():
		fmt.Fprintln(stdout, "treserver: shutting down")
	case err := <-errCh:
		if err != nil {
			httpServer.Close()
			return err
		}
	}
	// Drain long-polls first so Shutdown's grace period is spent on
	// genuinely in-flight work (catch-up fetches), not parked waiters.
	srv.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return httpServer.Shutdown(shutdownCtx)
}

func loadOrCreateKey(path string, set *tre.Params, stdout io.Writer) (*tre.ServerKeyPair, error) {
	if _, err := os.Stat(path); err == nil {
		key, err := keyfile.LoadServerKey(path, set)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(stdout, "treserver: loaded key from %s\n", path)
		return key, nil
	}
	key, err := tre.NewScheme(set).ServerKeyGen(nil)
	if err != nil {
		return nil, err
	}
	if err := keyfile.SaveServerKey(path, set, key); err != nil {
		return nil, err
	}
	fmt.Fprintf(stdout, "treserver: generated new key in %s\n", path)
	return key, nil
}

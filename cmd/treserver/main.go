// Command treserver runs a passive time server: it signs and publishes
// one self-authenticating key update per epoch and serves the public
// archive over HTTP. It never interacts with senders or receivers and
// keeps no per-user state.
//
//	treserver -preset SS512 -addr :8440 -granularity 1m \
//	          -key server.key -archive updates.log
//
// On first run with a missing key file, a fresh server key is generated
// and saved. The archive file persists published updates across
// restarts; missed epochs are backfilled on startup.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"timedrelease/internal/keyfile"
	"timedrelease/tre"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "treserver:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		preset      = flag.String("preset", "SS512", "parameter preset")
		addr        = flag.String("addr", ":8440", "listen address")
		granularity = flag.Duration("granularity", time.Minute, "epoch width (must divide 24h)")
		keyPath     = flag.String("key", "treserver.key", "server key file (created if missing)")
		archPath    = flag.String("archive", "", "durable archive file (in-memory if empty)")
	)
	flag.Parse()

	set, err := tre.Preset(*preset)
	if err != nil {
		return err
	}
	sched, err := tre.NewSchedule(*granularity)
	if err != nil {
		return err
	}

	key, err := loadOrCreateKey(*keyPath, set)
	if err != nil {
		return err
	}

	var srv *tre.TimeServer
	if *archPath != "" {
		arch, err := tre.OpenFileArchive(*archPath, set)
		if err != nil {
			return err
		}
		srv = tre.NewTimeServer(set, key, sched, tre.WithArchive(arch))
	} else {
		srv = tre.NewTimeServer(set, key, sched)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 2)
	go func() {
		fmt.Printf("treserver: %s params, %v epochs, listening on %s\n", set.Name, *granularity, *addr)
		if err := httpServer.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()
	go func() {
		if err := srv.Run(ctx); !errors.Is(err, context.Canceled) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	select {
	case <-ctx.Done():
		fmt.Println("treserver: shutting down")
	case err := <-errCh:
		if err != nil {
			return err
		}
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return httpServer.Shutdown(shutdownCtx)
}

func loadOrCreateKey(path string, set *tre.Params) (*tre.ServerKeyPair, error) {
	if _, err := os.Stat(path); err == nil {
		key, err := keyfile.LoadServerKey(path, set)
		if err != nil {
			return nil, err
		}
		fmt.Printf("treserver: loaded key from %s\n", path)
		return key, nil
	}
	key, err := tre.NewScheme(set).ServerKeyGen(nil)
	if err != nil {
		return nil, err
	}
	if err := keyfile.SaveServerKey(path, set, key); err != nil {
		return nil, err
	}
	fmt.Printf("treserver: generated new key in %s\n", path)
	return key, nil
}

package main

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"timedrelease/tre"
)

// thresholdFixture deals a k-of-n group, writes group.pub and
// member-N.pub files the way trethreshold deal does, and serves the
// chosen members over HTTP with the given round label pre-published.
type thresholdFixture struct {
	dir      string
	set      *tre.Params
	setup    *tre.ThresholdSetup
	memberTS map[int]*httptest.Server
}

func newThresholdFixture(t *testing.T, k, n int, label string, serving []int) *thresholdFixture {
	t.Helper()
	dir := t.TempDir()
	set := tre.MustPreset("Test160")
	codec := tre.NewCodec(set)
	setup, err := tre.ThresholdDeal(set, nil, k, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := writePublic(filepath.Join(dir, "group.pub"), codec.MarshalServerPublicKey(setup.GroupPub)); err != nil {
		t.Fatal(err)
	}
	f := &thresholdFixture{dir: dir, set: set, setup: setup, memberTS: map[int]*httptest.Server{}}
	sched := tre.MustSchedule(time.Minute)
	for _, share := range setup.Shares {
		key := tre.ShardServerKey(set, share)
		path := filepath.Join(dir, fmt.Sprintf("member-%d.pub", share.Index))
		if err := writePublic(path, codec.MarshalServerPublicKey(key.Pub)); err != nil {
			t.Fatal(err)
		}
		for _, idx := range serving {
			if idx != share.Index {
				continue
			}
			srv := tre.NewTimeServer(set, key, sched)
			if err := srv.PublishLabel(label); err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			t.Cleanup(ts.Close)
			f.memberTS[share.Index] = ts
		}
	}
	return f
}

// writePublic mirrors keyfile.SavePublic's hex-line format.
func writePublic(path string, encoded []byte) error {
	return os.WriteFile(path, []byte(fmt.Sprintf("%x\n", encoded)), 0o644)
}

func (f *thresholdFixture) memberFlag(idx int) string {
	return fmt.Sprintf("%d=%s=%s", idx, f.memberTS[idx].URL, filepath.Join(f.dir, fmt.Sprintf("member-%d.pub", idx)))
}

// TestRoundModeCLIThresholdRoundTrip is the CLI end-to-end: encrypt to
// a beacon round (armored file), then decrypt it by combining a 2-of-3
// quorum of member servers — the third member is never up.
func TestRoundModeCLIThresholdRoundTrip(t *testing.T) {
	const (
		genesis = "2026-01-01T00:00:00Z"
		round   = 42
		label   = "2026-01-01T00:42:00Z" // genesis + 42 one-minute rounds
	)
	f := newThresholdFixture(t, 2, 3, label, []int{1, 3})
	join := func(name string) string { return filepath.Join(f.dir, name) }

	if err := run([]string{"user-keygen", "-preset", "Test160",
		"-server-pub", join("group.pub"), "-out", join("user.key"), "-pub", join("user.pub")}); err != nil {
		t.Fatal(err)
	}
	plain := join("secret.txt")
	if err := os.WriteFile(plain, []byte("sealed to round 42"), 0o600); err != nil {
		t.Fatal(err)
	}
	sealed := join("sealed.trearm")
	if err := run([]string{"encrypt", "-preset", "Test160",
		"-server-pub", join("group.pub"), "-user-pub", join("user.pub"),
		"-round", fmt.Sprint(round), "-genesis", genesis, "-round-period", "1m",
		"-in", plain, "-out", sealed}); err != nil {
		t.Fatalf("encrypt -round: %v", err)
	}
	raw, err := os.ReadFile(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(raw), "-----BEGIN TRE ROUND CIPHERTEXT-----") {
		t.Fatalf("round-mode output is not armored:\n%s", raw)
	}

	out := join("opened.txt")
	if err := run([]string{"decrypt", "-preset", "Test160",
		"-server-pub", join("group.pub"), "-key", join("user.key"),
		"-k", "2", "-member", f.memberFlag(1), "-member", f.memberFlag(3),
		"-in", sealed, "-out", out}); err != nil {
		t.Fatalf("decrypt via quorum: %v", err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "sealed to round 42" {
		t.Fatalf("round trip mismatch: %q", got)
	}

	// A -label that disagrees with the armored round is refused.
	err = run([]string{"decrypt", "-preset", "Test160",
		"-server-pub", join("group.pub"), "-key", join("user.key"),
		"-k", "2", "-member", f.memberFlag(1), "-member", f.memberFlag(3),
		"-label", "2026-01-01T00:43:00Z", "-in", sealed})
	if err == nil || !strings.Contains(err.Error(), "disagrees") {
		t.Fatalf("mismatched -label: err=%v", err)
	}

	// One member short of quorum fails with the quorum shortfall.
	err = run([]string{"decrypt", "-preset", "Test160",
		"-server-pub", join("group.pub"), "-key", join("user.key"),
		"-k", "2", "-member", f.memberFlag(1), "-in", sealed})
	if err == nil {
		t.Fatal("k=2 with one member must fail")
	}
}

// A 1-of-1 "group" is an ordinary single server: the armored file also
// decrypts through the plain -server path.
func TestArmoredSingleServerDecrypt(t *testing.T) {
	const (
		genesis = "2026-01-01T00:00:00Z"
		label   = "2026-01-01T00:07:00Z"
	)
	f := newThresholdFixture(t, 1, 1, label, []int{1})
	join := func(name string) string { return filepath.Join(f.dir, name) }
	if err := run([]string{"user-keygen", "-preset", "Test160",
		"-server-pub", join("group.pub"), "-out", join("user.key"), "-pub", join("user.pub")}); err != nil {
		t.Fatal(err)
	}
	plain := join("p.txt")
	if err := os.WriteFile(plain, []byte("duration mode"), 0o600); err != nil {
		t.Fatal(err)
	}
	sealed := join("sealed.trearm")
	if err := run([]string{"encrypt", "-preset", "Test160",
		"-server-pub", join("group.pub"), "-user-pub", join("user.pub"),
		"-round", "7", "-genesis", genesis, "-in", plain, "-out", sealed}); err != nil {
		t.Fatal(err)
	}
	out := join("o.txt")
	if err := run([]string{"decrypt", "-preset", "Test160",
		"-server", f.memberTS[1].URL, "-server-pub", join("group.pub"),
		"-key", join("user.key"), "-in", sealed, "-out", out}); err != nil {
		t.Fatalf("single-server armored decrypt: %v", err)
	}
	if got, _ := os.ReadFile(out); string(got) != "duration mode" {
		t.Fatalf("round trip mismatch: %q", got)
	}
}

func TestEncryptRoundFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"label and round", []string{"-label", "x", "-round", "3", "-genesis", "2026-01-01T00:00:00Z"}},
		{"round and duration", []string{"-round", "3", "-duration", "1h", "-genesis", "2026-01-01T00:00:00Z"}},
		{"round without genesis", []string{"-round", "3"}},
		{"bad genesis", []string{"-round", "3", "-genesis", "not-a-time"}},
		{"off-grid genesis", []string{"-round", "3", "-genesis", "2026-01-01T00:00:30Z", "-round-period", "1m"}},
		{"no mode at all", nil},
	} {
		args := append([]string{"encrypt", "-preset", "Test160"}, tc.args...)
		if err := run(args); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
}

func TestDecryptMemberFlagValidation(t *testing.T) {
	dir := t.TempDir()
	// decrypt needs a real server-pub/key to get as far as member
	// parsing; reuse the fixture files.
	f := newThresholdFixture(t, 1, 1, "2026-01-01T00:01:00Z", nil)
	join := func(name string) string { return filepath.Join(f.dir, name) }
	if err := run([]string{"user-keygen", "-preset", "Test160",
		"-server-pub", join("group.pub"), "-out", join("user.key"), "-pub", join("user.pub")}); err != nil {
		t.Fatal(err)
	}
	plain := filepath.Join(dir, "p.txt")
	if err := os.WriteFile(plain, []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	sealed := filepath.Join(dir, "s.tre")
	if err := run([]string{"encrypt", "-preset", "Test160",
		"-server-pub", join("group.pub"), "-user-pub", join("user.pub"),
		"-label", "2026-01-01T00:01:00Z", "-in", plain, "-out", sealed}); err != nil {
		t.Fatal(err)
	}
	base := []string{"decrypt", "-preset", "Test160",
		"-server-pub", join("group.pub"), "-key", join("user.key"), "-in", sealed}
	for _, tc := range []struct {
		name  string
		extra []string
	}{
		{"member without k", []string{"-member", "1=http://x=" + join("member-1.pub")}},
		{"k above member count", []string{"-k", "3", "-member", "1=http://x=" + join("member-1.pub")}},
		{"malformed member", []string{"-k", "1", "-member", "nonsense"}},
		{"bad member index", []string{"-k", "1", "-member", "0=http://x=" + join("member-1.pub")}},
		{"missing pub file", []string{"-k", "1", "-member", "1=http://x=" + filepath.Join(dir, "absent.pub")}},
		{"neither server nor members", nil},
	} {
		if err := run(append(append([]string{}, base...), tc.extra...)); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
}

package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"timedrelease/internal/keyfile"
	"timedrelease/tre"
)

// TestFullCLIFlow drives the whole tool surface: server keygen, user
// keygen, public-key verification, encryption, update retrieval from a
// live HTTP time server, and decryption.
func TestFullCLIFlow(t *testing.T) {
	dir := t.TempDir()
	join := func(name string) string { return filepath.Join(dir, name) }
	const preset = "Test160"

	// Key generation.
	if err := run([]string{"server-keygen", "-preset", preset,
		"-out", join("server.key"), "-pub", join("server.pub")}); err != nil {
		t.Fatalf("server-keygen: %v", err)
	}
	if err := run([]string{"user-keygen", "-preset", preset,
		"-server-pub", join("server.pub"), "-out", join("user.key"), "-pub", join("user.pub")}); err != nil {
		t.Fatalf("user-keygen: %v", err)
	}
	if err := run([]string{"verify-user-pub", "-preset", preset,
		"-server-pub", join("server.pub"), "-user-pub", join("user.pub")}); err != nil {
		t.Fatalf("verify-user-pub: %v", err)
	}

	// A live time server using the generated key.
	set := tre.MustPreset(preset)
	serverKey, err := keyfile.LoadServerKey(join("server.key"), set)
	if err != nil {
		t.Fatal(err)
	}
	sched := tre.MustSchedule(time.Minute)
	now := time.Date(2026, 7, 5, 12, 0, 30, 0, time.UTC)
	srv := tre.NewTimeServer(set, serverKey, sched, tre.WithClock(func() time.Time { return now }))
	if _, err := srv.PublishUpTo(now); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	label := sched.Label(now)

	// Encrypt a file to the (already released) label.
	plain := join("secret.txt")
	if err := os.WriteFile(plain, []byte("the eagle flies at midnight"), 0o600); err != nil {
		t.Fatal(err)
	}
	sealed := join("sealed.tre")
	if err := run([]string{"encrypt", "-preset", preset,
		"-server-pub", join("server.pub"), "-user-pub", join("user.pub"),
		"-label", label, "-in", plain, "-out", sealed}); err != nil {
		t.Fatalf("encrypt: %v", err)
	}

	// Fetch + verify the update explicitly.
	if err := run([]string{"update", "-preset", preset,
		"-server", ts.URL, "-server-pub", join("server.pub"), "-label", label}); err != nil {
		t.Fatalf("update: %v", err)
	}

	// Decrypt.
	out := join("opened.txt")
	if err := run([]string{"decrypt", "-preset", preset,
		"-server", ts.URL, "-server-pub", join("server.pub"),
		"-key", join("user.key"), "-in", sealed, "-out", out}); err != nil {
		t.Fatalf("decrypt: %v", err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "the eagle flies at midnight" {
		t.Fatalf("round trip mismatch: %q", got)
	}
}

func TestDecryptBeforeReleaseFails(t *testing.T) {
	dir := t.TempDir()
	join := func(name string) string { return filepath.Join(dir, name) }
	const preset = "Test160"

	if err := run([]string{"server-keygen", "-preset", preset,
		"-out", join("server.key"), "-pub", join("server.pub")}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"user-keygen", "-preset", preset,
		"-server-pub", join("server.pub"), "-out", join("user.key"), "-pub", join("user.pub")}); err != nil {
		t.Fatal(err)
	}

	set := tre.MustPreset(preset)
	serverKey, err := keyfile.LoadServerKey(join("server.key"), set)
	if err != nil {
		t.Fatal(err)
	}
	sched := tre.MustSchedule(time.Minute)
	now := time.Date(2026, 7, 5, 12, 0, 30, 0, time.UTC)
	srv := tre.NewTimeServer(set, serverKey, sched, tre.WithClock(func() time.Time { return now }))
	if _, err := srv.PublishUpTo(now); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	future := sched.Next(now)
	plain := join("p.txt")
	if err := os.WriteFile(plain, []byte("early"), 0o600); err != nil {
		t.Fatal(err)
	}
	sealed := join("sealed.tre")
	if err := run([]string{"encrypt", "-preset", preset,
		"-server-pub", join("server.pub"), "-user-pub", join("user.pub"),
		"-label", future, "-in", plain, "-out", sealed}); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"decrypt", "-preset", preset,
		"-server", ts.URL, "-server-pub", join("server.pub"),
		"-key", join("user.key"), "-in", sealed, "-out", join("nope.txt")})
	if err == nil || !strings.Contains(err.Error(), "not yet published") {
		t.Fatalf("early decrypt: err=%v, want not-yet-published", err)
	}
}

func TestHiddenLabelRequiresFlag(t *testing.T) {
	dir := t.TempDir()
	join := func(name string) string { return filepath.Join(dir, name) }
	const preset = "Test160"
	for _, cmd := range [][]string{
		{"server-keygen", "-preset", preset, "-out", join("server.key"), "-pub", join("server.pub")},
		{"user-keygen", "-preset", preset, "-server-pub", join("server.pub"), "-out", join("user.key"), "-pub", join("user.pub")},
	} {
		if err := run(cmd); err != nil {
			t.Fatal(err)
		}
	}
	plain := join("p.txt")
	if err := os.WriteFile(plain, []byte("hidden"), 0o600); err != nil {
		t.Fatal(err)
	}
	sealed := join("sealed.tre")
	if err := run([]string{"encrypt", "-preset", preset,
		"-server-pub", join("server.pub"), "-user-pub", join("user.pub"),
		"-label", "2099-01-01T00:00:00Z", "-hide-label", "-in", plain, "-out", sealed}); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"decrypt", "-preset", preset,
		"-server", "http://127.0.0.1:0", "-server-pub", join("server.pub"),
		"-key", join("user.key"), "-in", sealed})
	if err == nil || !strings.Contains(err.Error(), "withholds") {
		t.Fatalf("hidden label without -label: err=%v", err)
	}
}

func TestUnknownSubcommand(t *testing.T) {
	if err := run([]string{"frobnicate"}); err == nil {
		t.Fatal("unknown subcommand must fail")
	}
	if err := run(nil); err == nil {
		t.Fatal("missing subcommand must fail")
	}
}

func TestCatchupCommand(t *testing.T) {
	dir := t.TempDir()
	join := func(name string) string { return filepath.Join(dir, name) }
	const preset = "Test160"
	if err := run([]string{"server-keygen", "-preset", preset,
		"-out", join("server.key"), "-pub", join("server.pub")}); err != nil {
		t.Fatal(err)
	}
	set := tre.MustPreset(preset)
	serverKey, err := keyfile.LoadServerKey(join("server.key"), set)
	if err != nil {
		t.Fatal(err)
	}
	sched := tre.MustSchedule(time.Minute)
	start := time.Date(2026, 7, 5, 12, 0, 30, 0, time.UTC)
	now := start
	srv := tre.NewTimeServer(set, serverKey, sched, tre.WithClock(func() time.Time { return now }))
	if _, err := srv.PublishUpTo(now); err != nil {
		t.Fatal(err)
	}
	now = now.Add(5 * time.Minute)
	if _, err := srv.PublishUpTo(now); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	from := sched.Label(start)
	to := sched.Label(now) // strictly-before bound: fetches 5 labels
	if err := run([]string{"catchup", "-preset", preset,
		"-server", ts.URL, "-server-pub", join("server.pub"),
		"-from", from, "-to", to, "-granularity", "1m"}); err != nil {
		t.Fatalf("catchup: %v", err)
	}

	// Bad ranges fail cleanly.
	if err := run([]string{"catchup", "-preset", preset,
		"-server", ts.URL, "-server-pub", join("server.pub"),
		"-from", to, "-to", from, "-granularity", "1m"}); err == nil {
		t.Fatal("reversed range must fail")
	}
	if err := run([]string{"catchup", "-preset", preset}); err == nil {
		t.Fatal("missing flags must fail")
	}
}

func TestCatchupDegradedExitsNonZero(t *testing.T) {
	dir := t.TempDir()
	join := func(name string) string { return filepath.Join(dir, name) }
	const preset = "Test160"
	if err := run([]string{"server-keygen", "-preset", preset,
		"-out", join("server.key"), "-pub", join("server.pub")}); err != nil {
		t.Fatal(err)
	}
	set := tre.MustPreset(preset)
	serverKey, err := keyfile.LoadServerKey(join("server.key"), set)
	if err != nil {
		t.Fatal(err)
	}
	sched := tre.MustSchedule(time.Minute)
	start := time.Date(2026, 7, 5, 12, 0, 30, 0, time.UTC)
	now := start.Add(2 * time.Minute)
	srv := tre.NewTimeServer(set, serverKey, sched, tre.WithClock(func() time.Time { return now }))
	if _, err := srv.PublishUpTo(now); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The requested range runs past what the server has published: the
	// verified prefix is printed, and the exit is non-zero naming the
	// missing labels.
	err = run([]string{"catchup", "-preset", preset,
		"-server", ts.URL, "-server-pub", join("server.pub"),
		"-from", sched.Label(start), "-to", sched.Label(start.Add(10 * time.Minute)),
		"-granularity", "1m"})
	if err == nil {
		t.Fatal("degraded catch-up must exit non-zero")
	}
	if !strings.Contains(err.Error(), "missing") {
		t.Fatalf("err = %v, want the missing-label count", err)
	}
}

func TestArchiveVerifyCommand(t *testing.T) {
	dir := t.TempDir()
	join := func(name string) string { return filepath.Join(dir, name) }
	const preset = "Test160"
	if err := run([]string{"server-keygen", "-preset", preset,
		"-out", join("server.key"), "-pub", join("server.pub")}); err != nil {
		t.Fatal(err)
	}
	set := tre.MustPreset(preset)
	scheme := tre.NewScheme(set)
	serverKey, err := keyfile.LoadServerKey(join("server.key"), set)
	if err != nil {
		t.Fatal(err)
	}

	archDir := join("archive")
	arch, err := tre.OpenDirArchive(archDir, set, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"2026-07-05T12:00:00Z", "2026-07-05T12:01:00Z"} {
		if err := arch.Put(scheme.IssueUpdate(serverKey, label)); err != nil {
			t.Fatal(err)
		}
	}
	if err := arch.Close(); err != nil {
		t.Fatal(err)
	}

	// A clean log passes, with and without cryptographic re-verification.
	if err := run([]string{"archive", "verify", "-preset", preset, "-dir", archDir}); err != nil {
		t.Fatalf("verify clean log: %v", err)
	}
	if err := run([]string{"archive", "verify", "-preset", preset,
		"-dir", archDir, "-server-pub", join("server.pub")}); err != nil {
		t.Fatalf("verify clean log with key: %v", err)
	}

	// A forged record (well-formed, correctly checksummed, wrong signer)
	// passes structural checks but fails once the key is supplied.
	impostor, err := scheme.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	arch2, err := tre.OpenDirArchive(archDir, set, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := arch2.Put(scheme.IssueUpdate(impostor, "2026-07-05T12:02:00Z")); err != nil {
		t.Fatal(err)
	}
	if err := arch2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"archive", "verify", "-preset", preset, "-dir", archDir}); err != nil {
		t.Fatalf("structural-only verify flagged a checksummed record: %v", err)
	}
	err = run([]string{"archive", "verify", "-preset", preset,
		"-dir", archDir, "-server-pub", join("server.pub")})
	if err == nil || !strings.Contains(err.Error(), "invalid") {
		t.Fatalf("verify with key over forged record = %v, want damage report", err)
	}

	// A torn tail fails even structurally.
	f, err := os.OpenFile(filepath.Join(archDir, "updates.log"), os.O_APPEND|os.O_WRONLY, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 0, 42, 'x', 'y'}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"archive", "verify", "-preset", preset, "-dir", archDir, "-q"}); err == nil {
		t.Fatal("torn log must exit non-zero")
	}

	// Flag and dispatch errors.
	if err := run([]string{"archive"}); err == nil {
		t.Fatal("bare archive must fail")
	}
	if err := run([]string{"archive", "frobnicate"}); err == nil {
		t.Fatal("unknown archive subcommand must fail")
	}
	if err := run([]string{"archive", "verify", "-preset", preset}); err == nil {
		t.Fatal("missing -dir must fail")
	}
}

// Command trectl is the user-side CLI: key generation, timed-release
// encryption and decryption, and key-update retrieval — all without any
// per-message interaction with the time server.
//
//	trectl server-keygen -preset SS512 -out server.key -pub server.pub
//	trectl user-keygen   -preset SS512 -server-pub server.pub -out user.key -pub user.pub
//	trectl encrypt  -preset SS512 -server-pub server.pub -user-pub user.pub \
//	                -label 2027-01-01T00:00:00Z -in secret.txt -out sealed.tre
//	trectl update   -preset SS512 -server http://host:8440 -server-pub server.pub \
//	                -label 2027-01-01T00:00:00Z [-wait]
//	trectl decrypt  -preset SS512 -server http://host:8440 -server-pub server.pub \
//	                -key user.key -in sealed.tre -out secret.txt
//	trectl verify-user-pub -preset SS512 -server-pub server.pub -user-pub user.pub
//
// Against a token-gated server (treserver -require-tokens), fetch a
// batch of anonymous access tokens once and spend them transparently:
//
//	trectl tokens fetch -server http://host:8440 -server-pub server.pub -wallet tokens.wallet -n 32
//	trectl catchup -wallet tokens.wallet ...
//	trectl tokens verify -dir ./archive     # audit the server's spend.log
//
// Beacon (round) mode addresses a round of a round clock instead of a
// wall-clock label and writes a self-describing armored file; decrypt
// sniffs the format, and can combine a k-of-n threshold quorum instead
// of trusting one server:
//
//	trectl encrypt -round 12345 -genesis 2027-01-01T00:00:00Z -round-period 1m ...
//	trectl encrypt -duration 48h -genesis 2027-01-01T00:00:00Z -round-period 1m ...
//	trectl decrypt -k 2 -member 1=http://a:8440=member-1.pub \
//	               -member 3=http://c:8440=member-3.pub -server-pub group.pub ...
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"timedrelease/internal/keyfile"
	"timedrelease/tre"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "trectl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return usage()
	}
	switch args[0] {
	case "server-keygen":
		return serverKeygen(args[1:])
	case "user-keygen":
		return userKeygen(args[1:])
	case "encrypt":
		return encrypt(args[1:])
	case "decrypt":
		return decrypt(args[1:])
	case "update":
		return update(args[1:])
	case "verify-user-pub":
		return verifyUserPub(args[1:])
	case "catchup":
		return catchup(args[1:])
	case "archive":
		return archiveCmd(args[1:])
	case "tokens":
		return tokensCmd(args[1:])
	default:
		return usage()
	}
}

func usage() error {
	fmt.Fprintln(os.Stderr, `usage: trectl <server-keygen|user-keygen|encrypt|decrypt|update|catchup|verify-user-pub|archive|tokens> [flags]
run a subcommand with -h for its flags`)
	return fmt.Errorf("unknown or missing subcommand")
}

func loadSet(preset, backendName string) (*tre.Params, *tre.Scheme, *tre.Codec, error) {
	set, err := tre.ResolvePreset(preset, backendName)
	if err != nil {
		return nil, nil, nil, err
	}
	return set, tre.NewScheme(set), tre.NewCodec(set), nil
}

func loadServerPub(codec *tre.Codec, path string) (tre.ServerPublicKey, error) {
	raw, err := keyfile.LoadPublic(path)
	if err != nil {
		return tre.ServerPublicKey{}, err
	}
	return codec.UnmarshalServerPublicKey(raw)
}

func serverKeygen(args []string) error {
	fs := flag.NewFlagSet("server-keygen", flag.ContinueOnError)
	preset := fs.String("preset", "SS512", "parameter preset")
	backendName := fs.String("backend", "", "pairing backend: symmetric (default) or bls12381")
	out := fs.String("out", "server.key", "private key file")
	pub := fs.String("pub", "server.pub", "public key file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	set, scheme, codec, err := loadSet(*preset, *backendName)
	if err != nil {
		return err
	}
	key, err := scheme.ServerKeyGen(nil)
	if err != nil {
		return err
	}
	if err := keyfile.SaveServerKey(*out, set, key); err != nil {
		return err
	}
	if err := keyfile.SavePublic(*pub, codec.MarshalServerPublicKey(key.Pub)); err != nil {
		return err
	}
	fmt.Printf("wrote %s (private) and %s (public)\n", *out, *pub)
	return nil
}

func userKeygen(args []string) error {
	fs := flag.NewFlagSet("user-keygen", flag.ContinueOnError)
	preset := fs.String("preset", "SS512", "parameter preset")
	backendName := fs.String("backend", "", "pairing backend: symmetric (default) or bls12381")
	serverPub := fs.String("server-pub", "server.pub", "time server public key")
	out := fs.String("out", "user.key", "private key file")
	pub := fs.String("pub", "user.pub", "public key file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	set, scheme, codec, err := loadSet(*preset, *backendName)
	if err != nil {
		return err
	}
	spub, err := loadServerPub(codec, *serverPub)
	if err != nil {
		return err
	}
	key, err := scheme.UserKeyGen(spub, nil)
	if err != nil {
		return err
	}
	if err := keyfile.SaveUserKey(*out, set, key); err != nil {
		return err
	}
	if err := keyfile.SavePublic(*pub, codec.MarshalUserPublicKey(key.Pub)); err != nil {
		return err
	}
	fmt.Printf("wrote %s (private) and %s (public)\n", *out, *pub)
	return nil
}

func encrypt(args []string) error {
	fs := flag.NewFlagSet("encrypt", flag.ContinueOnError)
	preset := fs.String("preset", "SS512", "parameter preset")
	backendName := fs.String("backend", "", "pairing backend: symmetric (default) or bls12381")
	serverPub := fs.String("server-pub", "server.pub", "time server (or threshold group) public key")
	userPub := fs.String("user-pub", "user.pub", "receiver public key")
	label := fs.String("label", "", "release label, e.g. 2027-01-01T00:00:00Z")
	round := fs.Int64("round", -1, "beacon round number (round mode; writes an armored file)")
	duration := fs.Duration("duration", 0, "open after this duration (round mode; writes an armored file)")
	genesis := fs.String("genesis", "", "round-0 start instant, RFC 3339 (round mode)")
	roundPeriod := fs.Duration("round-period", time.Minute, "round duration (round mode)")
	in := fs.String("in", "", "plaintext file (default stdin)")
	out := fs.String("out", "", "envelope file (default stdout)")
	hideLabel := fs.Bool("hide-label", false, "omit the release label from the envelope (release-time privacy)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	roundMode := *round >= 0 || *duration > 0
	switch {
	case roundMode && *label != "":
		return fmt.Errorf("-label is exclusive with -round/-duration")
	case *round >= 0 && *duration > 0:
		return fmt.Errorf("-round and -duration are mutually exclusive")
	case !roundMode && *label == "":
		return fmt.Errorf("one of -label, -round or -duration is required")
	}
	var clock tre.RoundClock
	if roundMode {
		if *genesis == "" {
			return fmt.Errorf("-genesis is required in round mode")
		}
		genesisT, err := time.Parse(time.RFC3339Nano, *genesis)
		if err != nil {
			return fmt.Errorf("bad -genesis: %w", err)
		}
		if clock, err = tre.NewRoundClock(*roundPeriod, genesisT); err != nil {
			return err
		}
	}
	_, scheme, codec, err := loadSet(*preset, *backendName)
	if err != nil {
		return err
	}
	spub, err := loadServerPub(codec, *serverPub)
	if err != nil {
		return err
	}
	rawU, err := keyfile.LoadPublic(*userPub)
	if err != nil {
		return err
	}
	upub, err := codec.UnmarshalUserPublicKey(rawU)
	if err != nil {
		return err
	}
	msg, err := readInput(*in)
	if err != nil {
		return err
	}
	if roundMode {
		var (
			r    uint64
			file []byte
		)
		if *round >= 0 {
			r = uint64(*round)
			file, err = tre.EncryptToRound(nil, scheme, clock, spub, upub, r, msg)
		} else {
			r, file, err = tre.EncryptToDuration(nil, scheme, clock, spub, upub, time.Now(), *duration, msg)
		}
		if err != nil {
			return err
		}
		lbl, _ := clock.Label(r)
		fmt.Fprintf(os.Stderr, "encrypted to round %d (opens at %s)\n", r, lbl)
		return writeOutput(*out, file)
	}
	ct, err := scheme.EncryptCCA(nil, spub, upub, *label, msg)
	if err != nil {
		return err
	}
	envelopeLabel := *label
	if *hideLabel {
		envelopeLabel = ""
	}
	return writeOutput(*out, codec.SealCCA(envelopeLabel, ct))
}

// memberFlag collects repeatable -member index=url=pubfile values.
type memberFlag []string

func (m *memberFlag) String() string { return strings.Join(*m, ",") }
func (m *memberFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// parseMembers turns -member values into quorum shards, each pinned to
// its own member public key.
func parseMembers(set *tre.Params, codec *tre.Codec, members []string) ([]tre.Shard, error) {
	shards := make([]tre.Shard, 0, len(members))
	for _, m := range members {
		parts := strings.SplitN(m, "=", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("bad -member %q (want index=url=pubfile)", m)
		}
		idx, err := strconv.Atoi(parts[0])
		if err != nil || idx < 1 {
			return nil, fmt.Errorf("bad -member index in %q", m)
		}
		raw, err := keyfile.LoadPublic(parts[2])
		if err != nil {
			return nil, fmt.Errorf("member %d public key: %w", idx, err)
		}
		mpub, err := codec.UnmarshalServerPublicKey(raw)
		if err != nil {
			return nil, fmt.Errorf("member %d public key: %w", idx, err)
		}
		shards = append(shards, tre.Shard{Index: idx, Client: tre.NewTimeClient(parts[1], set, mpub)})
	}
	return shards, nil
}

func decrypt(args []string) error {
	fs := flag.NewFlagSet("decrypt", flag.ContinueOnError)
	preset := fs.String("preset", "SS512", "parameter preset")
	backendName := fs.String("backend", "", "pairing backend: symmetric (default) or bls12381")
	serverURL := fs.String("server", "", "time server base URL")
	serverPub := fs.String("server-pub", "server.pub", "time server (or threshold group) public key (pinned)")
	keyPath := fs.String("key", "user.key", "receiver private key")
	label := fs.String("label", "", "release label (required if hidden in the envelope)")
	in := fs.String("in", "", "envelope or armored file (default stdin)")
	out := fs.String("out", "", "plaintext file (default stdout)")
	wait := fs.Bool("wait", false, "wait for the release instead of failing when early")
	kFlag := fs.Int("k", 0, "quorum size (threshold mode; requires -member entries)")
	var members memberFlag
	fs.Var(&members, "member", "threshold member as index=url=pubfile (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	set, scheme, codec, err := loadSet(*preset, *backendName)
	if err != nil {
		return err
	}
	spub, err := loadServerPub(codec, *serverPub)
	if err != nil {
		return err
	}
	key, err := keyfile.LoadUserKey(*keyPath, set)
	if err != nil {
		return err
	}
	raw, err := readInput(*in)
	if err != nil {
		return err
	}

	var (
		ct       *tre.CCACiphertext
		useLabel string
	)
	if tre.IsArmored(raw) {
		rc, err := tre.DecodeArmored(scheme, raw)
		if err != nil {
			return err
		}
		if *label != "" && *label != rc.Label {
			return fmt.Errorf("-label %q disagrees with the armored round %d (label %q)", *label, rc.Round, rc.Label)
		}
		ct, useLabel = rc.CCA, rc.Label
		fmt.Fprintf(os.Stderr, "armored round %d, opens at %s\n", rc.Round, rc.Label)
	} else {
		env, err := codec.UnmarshalEnvelope(raw)
		if err != nil {
			return err
		}
		if env.Kind != tre.KindCCA {
			return fmt.Errorf("envelope kind %s not supported by this tool (use the library API)", env.Kind)
		}
		if ct, err = codec.UnmarshalCCACiphertext(env.Payload); err != nil {
			return err
		}
		useLabel = env.Label
		if *label != "" {
			useLabel = *label
		}
		if useLabel == "" {
			return fmt.Errorf("the envelope withholds its release label; pass -label")
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 24*time.Hour)
	defer cancel()
	var upd tre.KeyUpdate
	switch {
	case len(members) > 0:
		// Threshold mode: -server-pub is the GROUP key; each member is
		// an ordinary time server pinned to its own share key.
		if *kFlag < 1 || *kFlag > len(members) {
			return fmt.Errorf("threshold mode needs 1 ≤ -k ≤ #members, got k=%d members=%d", *kFlag, len(members))
		}
		shards, err := parseMembers(set, codec, members)
		if err != nil {
			return err
		}
		qc := &tre.QuorumClient{Set: set, GroupPub: spub, K: *kFlag, Shards: shards}
		if *wait {
			upd, err = qc.WaitForRelease(ctx, useLabel, 2*time.Second)
		} else {
			upd, err = qc.Update(ctx, useLabel)
		}
		if err != nil {
			return err
		}
	case *serverURL != "":
		client := tre.NewTimeClient(*serverURL, set, spub)
		if *wait {
			upd, err = client.WaitForRelease(ctx, useLabel, 2*time.Second)
		} else {
			upd, err = client.Update(ctx, useLabel)
		}
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("-server (single server) or -member/-k (threshold quorum) is required")
	}

	msg, err := scheme.DecryptCCA(spub, key, upd, ct)
	if err != nil {
		return err
	}
	return writeOutput(*out, msg)
}

func update(args []string) error {
	fs := flag.NewFlagSet("update", flag.ContinueOnError)
	preset := fs.String("preset", "SS512", "parameter preset")
	backendName := fs.String("backend", "", "pairing backend: symmetric (default) or bls12381")
	serverURL := fs.String("server", "", "time server base URL")
	serverPub := fs.String("server-pub", "server.pub", "time server public key (pinned)")
	label := fs.String("label", "", "release label")
	wait := fs.Bool("wait", false, "wait until published")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *serverURL == "" || *label == "" {
		return fmt.Errorf("-server and -label are required")
	}
	set, _, codec, err := loadSet(*preset, *backendName)
	if err != nil {
		return err
	}
	spub, err := loadServerPub(codec, *serverPub)
	if err != nil {
		return err
	}
	client := tre.NewTimeClient(*serverURL, set, spub)
	ctx, cancel := context.WithTimeout(context.Background(), 24*time.Hour)
	defer cancel()
	var upd tre.KeyUpdate
	if *wait {
		upd, err = client.WaitForRelease(ctx, *label, 2*time.Second)
	} else {
		upd, err = client.Update(ctx, *label)
	}
	if err != nil {
		return err
	}
	fmt.Printf("update %s verified: %x\n", upd.Label, codec.MarshalKeyUpdate(upd))
	return nil
}

func verifyUserPub(args []string) error {
	fs := flag.NewFlagSet("verify-user-pub", flag.ContinueOnError)
	preset := fs.String("preset", "SS512", "parameter preset")
	backendName := fs.String("backend", "", "pairing backend: symmetric (default) or bls12381")
	serverPub := fs.String("server-pub", "server.pub", "time server public key")
	userPub := fs.String("user-pub", "user.pub", "receiver public key to check")
	if err := fs.Parse(args); err != nil {
		return err
	}
	_, scheme, codec, err := loadSet(*preset, *backendName)
	if err != nil {
		return err
	}
	spub, err := loadServerPub(codec, *serverPub)
	if err != nil {
		return err
	}
	rawU, err := keyfile.LoadPublic(*userPub)
	if err != nil {
		return err
	}
	upub, err := codec.UnmarshalUserPublicKey(rawU)
	if err != nil {
		return err
	}
	if !scheme.VerifyUserPublicKey(spub, upub) {
		return fmt.Errorf("public key FAILED the well-formedness check ê(aG,sG)=ê(G,asG)")
	}
	fmt.Println("ok: public key is well-formed for this time server")
	return nil
}

func readInput(path string) ([]byte, error) {
	if path == "" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

func writeOutput(path string, data []byte) error {
	if path == "" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// catchup fetches and batch-verifies every update in a label range —
// the "I was offline" recovery flow.
func catchup(args []string) error {
	fs := flag.NewFlagSet("catchup", flag.ContinueOnError)
	preset := fs.String("preset", "SS512", "parameter preset")
	backendName := fs.String("backend", "", "pairing backend: symmetric (default) or bls12381")
	serverURL := fs.String("server", "", "time server base URL")
	serverPub := fs.String("server-pub", "server.pub", "time server public key (pinned)")
	from := fs.String("from", "", "first label (RFC 3339, on the server's grid)")
	to := fs.String("to", "", "fetch labels strictly before this instant (RFC 3339)")
	granularity := fs.Duration("granularity", time.Minute, "server epoch width")
	limit := fs.Int("limit", 10000, "maximum labels to fetch")
	wallet := fs.String("wallet", "", "token wallet file for a gated server (see trectl tokens fetch)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *serverURL == "" || *from == "" || *to == "" {
		return fmt.Errorf("-server, -from and -to are required")
	}
	set, _, codec, err := loadSet(*preset, *backendName)
	if err != nil {
		return err
	}
	spub, err := loadServerPub(codec, *serverPub)
	if err != nil {
		return err
	}
	sched, err := tre.NewSchedule(*granularity)
	if err != nil {
		return err
	}
	fromT, err := sched.ParseLabel(*from)
	if err != nil {
		return err
	}
	toT, err := time.Parse(time.RFC3339Nano, *to)
	if err != nil {
		return fmt.Errorf("bad -to: %w", err)
	}
	labels := sched.LabelsBetween(fromT, toT, *limit)
	if len(labels) == 0 {
		return fmt.Errorf("no labels in [%s, %s)", *from, *to)
	}
	reg := tre.NewMetrics()
	opts := []tre.TimeClientOption{tre.WithClientMetrics(reg)}
	if *wallet != "" {
		w, err := tre.OpenTokenWallet(*wallet, set)
		if err != nil {
			return err
		}
		opts = append(opts, tre.WithTokenWallet(w))
	}
	client := tre.NewTimeClient(*serverURL, set, spub, opts...)
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	start := time.Now()
	ups, err := client.CatchUp(ctx, labels)
	elapsed := time.Since(start)
	// A degraded catch-up still delivered a verified subset: print what
	// we have, report exactly what is missing, and exit non-zero so
	// scripts know to come back for the rest.
	var partial *tre.PartialError
	if err != nil && !errors.As(err, &partial) {
		return err
	}
	for _, u := range ups {
		fmt.Printf("%s %x\n", u.Label, codec.MarshalKeyUpdate(u))
	}
	// Pairing work is the cost the passive-server design pushes to this
	// edge; the counters show which verification path paid it (one
	// aggregate product per range page vs one blinded batch equation).
	s := reg.Snapshot()
	how := fmt.Sprintf("%d pairings, %d aggregate range page(s), %d batch(es), %d fallback(s), %v",
		s.Counters["core.pairings"], s.Counters["client.catchup_aggregate"],
		s.Counters["client.catchup_batches"], s.Counters["client.catchup_fallback"],
		elapsed.Round(time.Millisecond))
	if partial != nil {
		fmt.Fprintf(os.Stderr, "caught up %d/%d updates (%s); %d missing:\n",
			len(ups), len(labels), how, len(partial.Missing))
		for _, l := range partial.Missing {
			fmt.Fprintf(os.Stderr, "  %s: %v\n", l, partial.Causes[l])
		}
		return fmt.Errorf("degraded catch-up: %d label(s) missing", len(partial.Missing))
	}
	fmt.Fprintf(os.Stderr, "caught up %d updates (%s)\n", len(ups), how)
	return nil
}

// archiveCmd dispatches the archive operator subcommands.
func archiveCmd(args []string) error {
	if len(args) == 0 || args[0] != "verify" {
		fmt.Fprintln(os.Stderr, `usage: trectl archive verify -dir DIR [-preset P] [-server-pub server.pub]`)
		return fmt.Errorf("unknown or missing archive subcommand")
	}
	return archiveVerify(args[1:])
}

// archiveVerify replays an update-log directory offline — without
// touching it — and reports every torn or invalid record, so operators
// and CI can audit a server's archive before (or instead of) letting a
// restart repair it. Structural checks (framing + per-record checksum)
// always run; with -server-pub every record is additionally re-verified
// against ê(G, I_T) = ê(sG, H1(T)). Any damage exits non-zero.
func archiveVerify(args []string) error {
	fs := flag.NewFlagSet("archive verify", flag.ContinueOnError)
	preset := fs.String("preset", "SS512", "parameter preset")
	backendName := fs.String("backend", "", "pairing backend: symmetric (default) or bls12381")
	dir := fs.String("dir", "", "archive directory (as given to treserver -archive-dir)")
	serverPub := fs.String("server-pub", "", "time server public key; enables cryptographic re-verification")
	quiet := fs.Bool("q", false, "print only the summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}
	set, scheme, codec, err := loadSet(*preset, *backendName)
	if err != nil {
		return err
	}
	_ = set
	var verify func(tre.KeyUpdate) bool
	if *serverPub != "" {
		spub, err := loadServerPub(codec, *serverPub)
		if err != nil {
			return err
		}
		verify = func(u tre.KeyUpdate) bool { return scheme.VerifyUpdate(spub, u) }
	}
	rep, err := tre.AuditArchiveDir(*dir, set, verify)
	if err != nil {
		return err
	}
	intact := 0
	for _, r := range rep.Records {
		if r.Err == nil {
			intact++
			if !*quiet {
				fmt.Printf("ok      %8d  %s\n", r.Offset, r.Label)
			}
			continue
		}
		label := r.Label
		if label == "" {
			label = "(undecodable)"
		}
		fmt.Printf("BAD     %8d  %s: %v\n", r.Offset, label, r.Err)
	}
	mode := "structural checks only (pass -server-pub to re-verify signatures)"
	if verify != nil {
		mode = "records re-verified against the server key"
	}
	fmt.Fprintf(os.Stderr, "%d intact, %d invalid, torn tail: %v (%d bytes); %s\n",
		intact, rep.Invalid, rep.Torn, rep.TornBytes, mode)
	// The checkpoint sidecar is derived data — a restart rebuilds it —
	// but a server must never serve a range aggregate from a sidecar
	// that disagrees with its records, so the audit refuses to call the
	// directory clean until then.
	fmt.Fprintf(os.Stderr, "checkpoints: %d audited, %d disagree with the records, torn: %v\n",
		rep.Checkpoints, rep.CheckpointsBad, rep.CheckpointsTorn)
	if !rep.Clean() {
		return fmt.Errorf("archive damaged: %d invalid record(s), torn=%v, %d bad checkpoint(s), checkpoints torn=%v",
			rep.Invalid, rep.Torn, rep.CheckpointsBad, rep.CheckpointsTorn)
	}
	fmt.Fprintln(os.Stderr, "archive clean")
	return nil
}

// tokensCmd dispatches the anonymous-access-token subcommands.
func tokensCmd(args []string) error {
	if len(args) > 0 {
		switch args[0] {
		case "fetch":
			return tokensFetch(args[1:])
		case "verify":
			return tokensVerify(args[1:])
		}
	}
	fmt.Fprintln(os.Stderr, `usage: trectl tokens fetch  -server URL -server-pub server.pub -wallet FILE [-n N]
       trectl tokens verify -dir DIR`)
	return fmt.Errorf("unknown or missing tokens subcommand")
}

// tokensFetch buys a batch of blind-signed access tokens from a gated
// server and banks them in a wallet file. The server signs blinded
// points, so nothing in the wallet is linkable to this request — see
// docs/TOKENS.md for the unblinding argument.
func tokensFetch(args []string) error {
	fs := flag.NewFlagSet("tokens fetch", flag.ContinueOnError)
	preset := fs.String("preset", "SS512", "parameter preset")
	backendName := fs.String("backend", "", "pairing backend: symmetric (default) or bls12381")
	serverURL := fs.String("server", "", "time server base URL")
	serverPub := fs.String("server-pub", "server.pub", "time server public key (pinned)")
	wallet := fs.String("wallet", "tokens.wallet", "wallet file to append into (created if missing)")
	n := fs.Int("n", 16, "tokens to fetch")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *serverURL == "" {
		return fmt.Errorf("-server is required")
	}
	set, _, codec, err := loadSet(*preset, *backendName)
	if err != nil {
		return err
	}
	spub, err := loadServerPub(codec, *serverPub)
	if err != nil {
		return err
	}
	w, err := tre.OpenTokenWallet(*wallet, set)
	if err != nil {
		return err
	}
	client := tre.NewTimeClient(*serverURL, set, spub, tre.WithTokenWallet(w))
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := client.FetchTokens(ctx, *n); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fetched %d token(s); wallet %s now holds %d\n", *n, *wallet, w.Len())
	return nil
}

// tokensVerify audits a gated server's spend.log offline — without
// modifying it — mirroring `trectl archive verify` for the
// double-spend ledger: framing and checksums are checked, duplicate
// spends and torn tails are reported, and any damage exits non-zero.
func tokensVerify(args []string) error {
	fs := flag.NewFlagSet("tokens verify", flag.ContinueOnError)
	dir := fs.String("dir", "", "server archive directory holding spend.log")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}
	stats, err := tre.AuditTokenSpendLog(*dir)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%d spend record(s), %d duplicate(s), torn tail: %v (%d bytes)\n",
		stats.Records, stats.Duplicates, stats.Torn, stats.TornBytes)
	// A torn tail is survivable (the server truncates it on restart and
	// the token merely becomes spendable again) but still evidence of a
	// crash mid-redemption; duplicates should be impossible and mean
	// the log was edited or corrupted.
	if stats.Duplicates > 0 || stats.Torn {
		return fmt.Errorf("spend log damaged: %d duplicate(s), torn=%v", stats.Duplicates, stats.Torn)
	}
	fmt.Fprintln(os.Stderr, "spend log clean")
	return nil
}

package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"timedrelease/internal/bench"
)

func TestParseFlagsDefaults(t *testing.T) {
	opts, err := parseFlags(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if opts.out != "" || opts.markdown || opts.cfg.Quick || opts.cfg.BaseURL != "" {
		t.Fatalf("wrong defaults: %+v", opts)
	}
	if opts.cfg.Presets != nil || opts.cfg.Clients != nil || opts.cfg.Mixes != nil {
		t.Fatalf("sweep lists must stay unset for bench defaults: %+v", opts.cfg)
	}
}

func TestParseFlagsOverrides(t *testing.T) {
	opts, err := parseFlags([]string{
		"-out", "x.json", "-quick", "-markdown",
		"-preset", "Test160, SS512", "-clients", "2,8", "-mixes", "fetch,mixed",
		"-duration", "100ms", "-url", "http://localhost:8440",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if opts.out != "x.json" || !opts.cfg.Quick || !opts.markdown {
		t.Fatalf("overrides not applied: %+v", opts)
	}
	if len(opts.cfg.Presets) != 2 || opts.cfg.Presets[1] != "SS512" {
		t.Fatalf("presets = %v", opts.cfg.Presets)
	}
	if len(opts.cfg.Clients) != 2 || opts.cfg.Clients[0] != 2 || opts.cfg.Clients[1] != 8 {
		t.Fatalf("clients = %v", opts.cfg.Clients)
	}
	if len(opts.cfg.Mixes) != 2 || opts.cfg.CellDuration != 100*time.Millisecond {
		t.Fatalf("mixes/duration = %v/%v", opts.cfg.Mixes, opts.cfg.CellDuration)
	}
	if opts.cfg.BaseURL != "http://localhost:8440" {
		t.Fatalf("url = %q", opts.cfg.BaseURL)
	}
}

func TestParseFlagsProfiles(t *testing.T) {
	opts, err := parseFlags([]string{
		"-mutexprofile", "m.pb.gz", "-blockprofile", "b.pb.gz",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if opts.mutexProfile != "m.pb.gz" || opts.blockProfile != "b.pb.gz" {
		t.Fatalf("profile paths not applied: %+v", opts)
	}
	opts, err = parseFlags(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if opts.mutexProfile != "" || opts.blockProfile != "" {
		t.Fatalf("profiling must default off: %+v", opts)
	}
}

// TestRunWritesProfiles runs a tiny sweep with contention profiling on
// and checks both pprof documents appear.
func TestRunWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	mp := filepath.Join(dir, "mutex.pb.gz")
	bp := filepath.Join(dir, "block.pb.gz")
	opts, err := parseFlags([]string{
		"-quick", "-clients", "2", "-mixes", "encdec", "-duration", "40ms",
		"-mutexprofile", mp, "-blockprofile", bp,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if err := run(opts, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{mp, bp} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestParseFlagsSubscribersAndMerge(t *testing.T) {
	opts, err := parseFlags([]string{
		"-subscribers", "1000, 50000", "-merge", "-out", "x.json",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts.cfg.Subscribers) != 2 || opts.cfg.Subscribers[1] != 50000 {
		t.Fatalf("subscribers = %v", opts.cfg.Subscribers)
	}
	if !opts.merge {
		t.Fatalf("merge not applied: %+v", opts)
	}
}

func TestParseFlagsErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-clients", "zero"},
		{"-clients", "0"},
		{"-clients", "-3"},
		{"-subscribers", "many"},
		{"-subscribers", "0"},
		{"-merge"}, // -merge without -out has nothing to merge into
		{"-duration", "fast"},
		{"-nosuchflag"},
		{"stray-positional"},
	} {
		if _, err := parseFlags(args, io.Discard); err == nil {
			t.Fatalf("parseFlags(%v) accepted bad input", args)
		}
	}
}

// TestMergeReport checks the -merge row algebra: same-identity rows are
// replaced by the fresh run, everything else survives in order.
func TestMergeReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_server.json")
	old := &bench.ServerReport{Rows: []bench.ServerRow{
		{Preset: "Test160", Mix: "fetch", Clients: 4, Ops: 1},
		{Preset: "Test160", Mix: "stream", Subscribers: 1000, Ops: 2},
		{Preset: "SS512", Mix: "fetch", Clients: 4, Ops: 3},
	}}
	raw, err := old.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := &bench.ServerReport{Description: "d", Rows: []bench.ServerRow{
		{Preset: "Test160", Mix: "stream", Subscribers: 1000, Ops: 20},
		{Preset: "Test160", Mix: "relay", Subscribers: 50000, Ops: 30},
	}}
	if err := mergeReport(fresh, path); err != nil {
		t.Fatal(err)
	}
	if len(fresh.Rows) != 4 {
		t.Fatalf("got %d rows, want 4: %+v", len(fresh.Rows), fresh.Rows)
	}
	for _, r := range fresh.Rows {
		if r.Mix == "stream" && r.Ops != 20 {
			t.Fatalf("stale stream row survived the merge: %+v", r)
		}
	}
	if fresh.Rows[0].Preset != "Test160" || fresh.Rows[0].Mix != "fetch" {
		t.Fatalf("kept rows must precede fresh rows: %+v", fresh.Rows)
	}

	// Missing file: plain write semantics, no error.
	if err := mergeReport(fresh, filepath.Join(t.TempDir(), "absent.json")); err != nil {
		t.Fatal(err)
	}
	// Corrupt file: refuse rather than discard checked-in numbers.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := mergeReport(fresh, bad); err == nil {
		t.Fatal("corrupt report accepted for merge")
	}
}

// TestRunWritesReport runs a tiny real sweep end to end and checks the
// JSON document has the promised shape.
func TestRunWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_server.json")
	opts, err := parseFlags([]string{
		"-quick", "-out", out,
		"-clients", "2", "-mixes", "fetch,mixed", "-duration", "50ms",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if err := run(opts, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "Test160/fetch") {
		t.Fatalf("table missing cells:\n%s", stdout.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep bench.ServerReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rep.Rows))
	}
	for _, r := range rep.Rows {
		if r.Ops <= 0 || r.RPS <= 0 || r.P50NS <= 0 || r.P95NS < r.P50NS || r.P99NS < r.P95NS {
			t.Fatalf("implausible row: %+v", r)
		}
		if r.Errors != 0 {
			t.Fatalf("load errors against a healthy in-process server: %+v", r)
		}
	}
}

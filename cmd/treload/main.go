// Command treload drives a time server with N concurrent verifying
// clients under mixed publish/fetch/catch-up workloads and reports
// sustained RPS plus p50/p95/p99 per-operation latency.
//
//	treload -out BENCH_server.json             # in-process server, full sweep
//	treload -quick                             # fast reduced sweep (Test160)
//	treload -url http://host:8440              # drive a running treserver
//	treload -clients 8,32 -mixes fetch,mixed   # custom cells
//	treload -mixes stream,relay -subscribers 1000,50000   # fan-out cells
//	treload -mixes tokens                      # gated access-token lifecycle
//	treload -merge -out BENCH_server.json      # update matching rows in place
//	treload -duration 5s -markdown
//	treload -mutexprofile mutex.pb.gz          # lock-contention profile of the run
//	treload -blockprofile block.pb.gz          # blocking profile of the run
//
// Without -url the harness boots an in-process server per preset over
// real HTTP (httptest), pre-publishes a window of epochs and hammers
// it. With -url it bootstraps parameters from the remote server; the
// publish share of the mixed workload degrades to /v1/latest fetches
// because the harness holds no signing key.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"timedrelease/internal/bench"
)

// options is the parsed command line.
type options struct {
	cfg      bench.ServerLoadConfig
	out      string
	markdown bool

	// merge folds this run's rows into an existing -out report instead
	// of overwriting it: rows with the same cell identity (preset, mix,
	// clients, epochs, subscribers) are replaced, everything else is
	// kept. Lets the cheap nightly stream sweep refresh its rows without
	// discarding the full-sweep rows (and vice versa).
	merge bool

	// mutexProfile/blockProfile are output paths for opt-in contention
	// profiling of the whole sweep; empty disables the (costly)
	// instrumentation entirely.
	mutexProfile string
	blockProfile string
}

// parseFlags parses args (not including the program name) without
// touching global flag state, so tests can exercise it directly.
func parseFlags(args []string, stderr io.Writer) (*options, error) {
	fs := flag.NewFlagSet("treload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		opts        options
		presets     string
		clients     string
		mixes       string
		coldstart   string
		subscribers string
		duration    time.Duration
	)
	fs.StringVar(&opts.out, "out", "", "write the JSON report to this file")
	fs.BoolVar(&opts.markdown, "markdown", false, "emit GitHub-flavoured markdown")
	fs.BoolVar(&opts.cfg.Quick, "quick", false, "reduced sweep (Test160, short cells)")
	fs.StringVar(&presets, "preset", "", "comma-separated parameter presets (default Test160,SS512)")
	fs.StringVar(&clients, "clients", "", "comma-separated concurrency levels (default 4,16)")
	fs.StringVar(&mixes, "mixes", "", "comma-separated workload mixes (default fetch,catchup,mixed)")
	fs.StringVar(&coldstart, "coldstart", "", "comma-separated missed-epoch counts for the coldstart mixes (default 1000,10000)")
	fs.StringVar(&subscribers, "subscribers", "", "comma-separated subscriber counts for the stream/relay mixes (default 1000,50000)")
	fs.BoolVar(&opts.merge, "merge", false, "merge rows into an existing -out report instead of overwriting it")
	fs.DurationVar(&duration, "duration", 0, "wall time per cell (default 2s, 250ms with -quick)")
	fs.StringVar(&opts.cfg.BaseURL, "url", "", "drive a running treserver at this base URL instead of in-process")
	fs.StringVar(&opts.mutexProfile, "mutexprofile", "", "write a mutex-contention profile of the sweep to this file")
	fs.StringVar(&opts.blockProfile, "blockprofile", "", "write a goroutine-blocking profile of the sweep to this file")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() != 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	opts.cfg.CellDuration = duration
	opts.cfg.Presets = splitList(presets)
	opts.cfg.Mixes = splitList(mixes)
	for _, c := range splitList(clients) {
		n, err := strconv.Atoi(c)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -clients value %q: want positive integers", c)
		}
		opts.cfg.Clients = append(opts.cfg.Clients, n)
	}
	for _, e := range splitList(coldstart) {
		n, err := strconv.Atoi(e)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -coldstart value %q: want positive integers", e)
		}
		opts.cfg.ColdStartEpochs = append(opts.cfg.ColdStartEpochs, n)
	}
	for _, s := range splitList(subscribers) {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -subscribers value %q: want positive integers", s)
		}
		opts.cfg.Subscribers = append(opts.cfg.Subscribers, n)
	}
	if opts.merge && opts.out == "" {
		return nil, fmt.Errorf("-merge requires -out")
	}
	return &opts, nil
}

// splitList turns "a,b , c" into {"a","b","c"} and "" into nil.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	opts, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		os.Exit(2)
	}
	if err := run(opts, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "treload:", err)
		os.Exit(1)
	}
}

// run executes the sweep, prints the table to stdout and writes the
// JSON report when -out is set.
func run(opts *options, stdout, stderr io.Writer) error {
	if opts.mutexProfile != "" {
		// Sample every contended mutex acquisition for the whole sweep.
		runtime.SetMutexProfileFraction(1)
		defer runtime.SetMutexProfileFraction(0)
	}
	if opts.blockProfile != "" {
		// Record every blocking event (channel waits, lock waits).
		runtime.SetBlockProfileRate(1)
		defer runtime.SetBlockProfileRate(0)
	}

	start := time.Now()
	rep, table, err := bench.RunServerLoad(opts.cfg)
	if err != nil {
		return err
	}

	if err := writeProfile("mutex", opts.mutexProfile); err != nil {
		return err
	}
	if err := writeProfile("block", opts.blockProfile); err != nil {
		return err
	}
	if opts.out != "" {
		if opts.merge {
			if err := mergeReport(rep, opts.out); err != nil {
				return err
			}
		}
		out, err := rep.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(opts.out, out, 0o644); err != nil {
			return err
		}
	}
	if opts.markdown {
		fmt.Fprint(stdout, table.Markdown())
	} else {
		fmt.Fprint(stdout, table.String())
	}
	fmt.Fprintf(stderr, "\ntreload: %d cell(s) in %v", len(rep.Rows), time.Since(start).Round(time.Millisecond))
	if opts.out != "" {
		fmt.Fprintf(stderr, ", report written to %s", opts.out)
	}
	fmt.Fprintln(stderr)
	return nil
}

// cellKey identifies one bench cell for -merge: two rows with the same
// key describe the same measurement and the fresh one wins.
func cellKey(r bench.ServerRow) string {
	return fmt.Sprintf("%s/%s/c%d/e%d/s%d", r.Preset, r.Mix, r.Clients, r.Epochs, r.Subscribers)
}

// mergeReport prepends the rows of an existing report at path that this
// run did not re-measure, keeping their original order. A missing file
// degrades to a plain write; a corrupt one is an error (refuse to
// silently discard checked-in numbers).
func mergeReport(rep *bench.ServerReport, path string) error {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var old bench.ServerReport
	if err := json.Unmarshal(raw, &old); err != nil {
		return fmt.Errorf("cannot merge into %s: %w", path, err)
	}
	fresh := make(map[string]bool, len(rep.Rows))
	for _, r := range rep.Rows {
		fresh[cellKey(r)] = true
	}
	var kept []bench.ServerRow
	for _, r := range old.Rows {
		if !fresh[cellKey(r)] {
			kept = append(kept, r)
		}
	}
	rep.Rows = append(kept, rep.Rows...)
	return nil
}

// writeProfile dumps the named runtime profile (pprof format) to path;
// an empty path is a no-op.
func writeProfile(name, path string) error {
	if path == "" {
		return nil
	}
	p := pprof.Lookup(name)
	if p == nil {
		return fmt.Errorf("unknown runtime profile %q", name)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.WriteTo(f, 0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestListShowValidate(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatalf("list: %v", err)
	}
	if err := run([]string{"show", "-preset", "Test160"}); err != nil {
		t.Fatalf("show: %v", err)
	}
	if err := run([]string{"show", "-preset", "NoSuch"}); err == nil {
		t.Fatal("show unknown preset must fail")
	}
}

func TestGenAndValidateFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "p.params")
	if err := run([]string{"gen", "-pbits", "128", "-qbits", "64", "-out", out}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if err := run([]string{"validate", "-in", out}); err != nil {
		t.Fatalf("validate: %v", err)
	}
	// Corrupt it: flip a digit of p.
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	bad := make([]byte, len(raw))
	copy(bad, raw)
	for i := range bad {
		if bad[i] == 'p' && i+3 < len(bad) && bad[i+1] == '=' {
			if bad[i+2] == '1' {
				bad[i+2] = '2'
			} else {
				bad[i+2] = '1'
			}
			break
		}
	}
	if err := os.WriteFile(out, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"validate", "-in", out}); err == nil {
		t.Fatal("validate of corrupted params must fail")
	}
}

func TestBadUsage(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no args must fail")
	}
	if err := run([]string{"validate"}); err == nil {
		t.Fatal("validate without -in must fail")
	}
}

// Command treparams generates, validates and inspects pairing parameter
// sets.
//
//	treparams list
//	treparams show -preset SS512
//	treparams gen -pbits 1536 -qbits 256 -out my.params
//	treparams validate -in my.params
package main

import (
	"flag"
	"fmt"
	"os"

	"timedrelease/tre"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "treparams:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return usage()
	}
	switch args[0] {
	case "list":
		for _, n := range tre.PresetNames() {
			set := tre.MustPreset(n)
			kind := "type-1 symmetric"
			if set.Asymmetric() {
				kind = "type-3 " + set.B.Name()
			}
			fmt.Printf("%-9s |p|=%4d bits  |q|=%3d bits  %s\n", n, set.P.BitLen(), set.Q.BitLen(), kind)
		}
		return nil

	case "show":
		fs := flag.NewFlagSet("show", flag.ContinueOnError)
		preset := fs.String("preset", "SS512", "preset name")
		backendName := fs.String("backend", "", "pairing backend: symmetric (default) or bls12381")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		set, err := tre.ResolvePreset(*preset, *backendName)
		if err != nil {
			return err
		}
		os.Stdout.Write(set.Marshal())
		return nil

	case "gen":
		fs := flag.NewFlagSet("gen", flag.ContinueOnError)
		pBits := fs.Int("pbits", 1536, "field prime size in bits")
		qBits := fs.Int("qbits", 256, "group order size in bits")
		out := fs.String("out", "", "output file (default stdout)")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		set, err := tre.GenerateParams(nil, *pBits, *qBits)
		if err != nil {
			return err
		}
		if err := set.Validate(); err != nil {
			return fmt.Errorf("generated set failed validation: %w", err)
		}
		if *out == "" {
			os.Stdout.Write(set.Marshal())
			return nil
		}
		return os.WriteFile(*out, set.Marshal(), 0o644)

	case "validate":
		fs := flag.NewFlagSet("validate", flag.ContinueOnError)
		in := fs.String("in", "", "parameter file to validate")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if *in == "" {
			return fmt.Errorf("-in is required")
		}
		raw, err := os.ReadFile(*in)
		if err != nil {
			return err
		}
		set, err := tre.UnmarshalParams(raw)
		if err != nil {
			return err
		}
		if err := set.Validate(); err != nil {
			return err
		}
		fmt.Printf("ok: %s |p|=%d |q|=%d\n", set.Name, set.P.BitLen(), set.Q.BitLen())
		return nil

	default:
		return usage()
	}
}

func usage() error {
	fmt.Fprintln(os.Stderr, `usage:
  treparams list
  treparams show -preset <name>
  treparams gen -pbits N -qbits N [-out file]
  treparams validate -in file`)
	return fmt.Errorf("unknown or missing subcommand")
}

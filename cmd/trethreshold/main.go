// Command trethreshold operates the k-of-n threshold time-authority
// extension: deal shares, run one member as a network time server,
// export a share as an ordinary treserver key, issue partial updates
// offline, and combine partials into the group's key update.
//
//	trethreshold deal    -preset SS512 -k 3 -n 5 -out-dir ./authority
//	trethreshold serve   -preset SS512 -share authority/share-1.key -addr :8441
//	trethreshold export-server-key -preset SS512 -share authority/share-1.key -out shard1.key
//	trethreshold partial -preset SS512 -share authority/share-2.key \
//	                     -label 2027-01-01T00:00:00Z -out p2.bin
//	trethreshold combine -preset SS512 -group authority/group.pub -k 3 \
//	                     -in p1.bin -in p2.bin -in p3.bin -out update.bin
//
// The group public key written by `deal` is an ordinary TRE server
// public key: receivers use it with trectl/the library unchanged, and
// the combined update is byte-identical to a single-server one. `deal`
// also writes one member-N.pub per share — the ordinary server public
// key a member's `serve` process answers under, which clients pin with
// `trectl decrypt -member N=url=member-N.pub`.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"timedrelease/internal/keyfile"
	"timedrelease/internal/threshold"
	"timedrelease/tre"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "trethreshold:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return usage()
	}
	switch args[0] {
	case "deal":
		return deal(args[1:])
	case "serve":
		cfg, err := parseServeFlags(args[1:], os.Stderr)
		if err != nil {
			return err
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		return runServe(ctx, cfg, os.Stdout)
	case "export-server-key":
		return exportServerKey(args[1:])
	case "partial":
		return partial(args[1:])
	case "combine":
		return combine(args[1:])
	default:
		return usage()
	}
}

func usage() error {
	fmt.Fprintln(os.Stderr, `usage: trethreshold <deal|serve|export-server-key|partial|combine> [flags]
run a subcommand with -h for its flags`)
	return fmt.Errorf("unknown or missing subcommand")
}

func deal(args []string) error {
	fs := flag.NewFlagSet("deal", flag.ContinueOnError)
	preset := fs.String("preset", "SS512", "parameter preset")
	k := fs.Int("k", 3, "threshold")
	n := fs.Int("n", 5, "number of shares")
	outDir := fs.String("out-dir", ".", "directory for share files and group.pub")
	if err := fs.Parse(args); err != nil {
		return err
	}
	set, err := tre.Preset(*preset)
	if err != nil {
		return err
	}
	setup, err := tre.ThresholdDeal(set, nil, *k, *n)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o700); err != nil {
		return err
	}
	for _, share := range setup.Shares {
		path := filepath.Join(*outDir, fmt.Sprintf("share-%d.key", share.Index))
		if err := keyfile.SaveShare(path, set, setup, share); err != nil {
			return err
		}
	}
	codec := tre.NewCodec(set)
	// Each member's serve process answers under its own ordinary server
	// key; clients pin these per-member keys in quorum mode.
	for _, share := range setup.Shares {
		memberPub := tre.ShardServerKey(set, share).Pub
		path := filepath.Join(*outDir, fmt.Sprintf("member-%d.pub", share.Index))
		if err := keyfile.SavePublic(path, codec.MarshalServerPublicKey(memberPub)); err != nil {
			return err
		}
	}
	groupPath := filepath.Join(*outDir, "group.pub")
	if err := keyfile.SavePublic(groupPath, codec.MarshalServerPublicKey(setup.GroupPub)); err != nil {
		return err
	}
	fmt.Printf("dealt %d-of-%d: %d share files, %d member-N.pub files + %s\n", *k, *n, *n, *n, groupPath)
	fmt.Println("distribute each share to one operator over a secure channel, then DELETE the local copies")
	return nil
}

func exportServerKey(args []string) error {
	fs := flag.NewFlagSet("export-server-key", flag.ContinueOnError)
	preset := fs.String("preset", "SS512", "parameter preset")
	sharePath := fs.String("share", "", "share file")
	out := fs.String("out", "", "treserver key file to write")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sharePath == "" || *out == "" {
		return fmt.Errorf("-share and -out are required")
	}
	set, err := tre.Preset(*preset)
	if err != nil {
		return err
	}
	loaded, err := keyfile.LoadShare(*sharePath, set)
	if err != nil {
		return err
	}
	key := tre.ShardServerKey(set, loaded.Share)
	if err := keyfile.SaveServerKey(*out, set, key); err != nil {
		return err
	}
	fmt.Printf("share %d exported; run: treserver -preset %s -key %s\n", loaded.Share.Index, *preset, *out)
	return nil
}

func partial(args []string) error {
	fs := flag.NewFlagSet("partial", flag.ContinueOnError)
	preset := fs.String("preset", "SS512", "parameter preset")
	sharePath := fs.String("share", "", "share file")
	label := fs.String("label", "", "release label")
	out := fs.String("out", "", "partial-update file (default stdout hex)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sharePath == "" || *label == "" {
		return fmt.Errorf("-share and -label are required")
	}
	set, err := tre.Preset(*preset)
	if err != nil {
		return err
	}
	loaded, err := keyfile.LoadShare(*sharePath, set)
	if err != nil {
		return err
	}
	pu := tre.IssuePartialUpdate(set, loaded.Share, *label)
	encoded := threshold.MarshalPartial(set, pu)
	if *out == "" {
		fmt.Printf("%x\n", encoded)
		return nil
	}
	return os.WriteFile(*out, encoded, 0o644)
}

func combine(args []string) error {
	fs := flag.NewFlagSet("combine", flag.ContinueOnError)
	preset := fs.String("preset", "SS512", "parameter preset")
	groupPath := fs.String("group", "group.pub", "group public key file")
	k := fs.Int("k", 0, "threshold")
	out := fs.String("out", "", "combined-update file (default stdout hex)")
	var ins stringList
	fs.Var(&ins, "in", "partial-update file (repeat for each)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *k < 1 || len(ins) == 0 {
		return fmt.Errorf("-k and at least one -in are required")
	}
	set, err := tre.Preset(*preset)
	if err != nil {
		return err
	}
	codec := tre.NewCodec(set)
	rawGroup, err := keyfile.LoadPublic(*groupPath)
	if err != nil {
		return err
	}
	groupPub, err := codec.UnmarshalServerPublicKey(rawGroup)
	if err != nil {
		return err
	}
	var partials []tre.PartialUpdate
	for _, path := range ins {
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		pu, err := threshold.UnmarshalPartial(set, raw)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		partials = append(partials, pu)
	}
	upd, err := tre.CombinePartialUpdates(set, groupPub, partials, *k)
	if err != nil {
		return err
	}
	encoded := codec.MarshalKeyUpdate(upd)
	fmt.Fprintf(os.Stderr, "combined update for %s verifies against the group key\n", upd.Label)
	if *out == "" {
		fmt.Printf("%x\n", encoded)
		return nil
	}
	return os.WriteFile(*out, encoded, 0o644)
}

// stringList is a repeatable -in flag.
type stringList []string

func (s *stringList) String() string { return fmt.Sprint(*s) }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"timedrelease/internal/keyfile"
	"timedrelease/tre"
)

func TestParseServeFlagsDefaults(t *testing.T) {
	cfg, err := parseServeFlags([]string{"-share", "s.key"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.preset != "SS512" || cfg.addr != ":8441" || cfg.granularity != time.Minute {
		t.Fatalf("wrong defaults: %+v", cfg)
	}
	if cfg.sharePath != "s.key" || cfg.archDir != "" {
		t.Fatalf("wrong defaults: %+v", cfg)
	}
}

func TestParseServeFlagsErrors(t *testing.T) {
	for _, args := range [][]string{
		nil, // -share is required
		{"-share", "s.key", "-granularity", "notaduration"},
		{"-share", "s.key", "-nosuchflag"},
		{"-share", "s.key", "stray-positional"},
	} {
		if _, err := parseServeFlags(args, io.Discard); err == nil {
			t.Fatalf("parseServeFlags(%v) accepted bad input", args)
		}
	}
}

// startMember runs `serve` for one share file and returns its bound
// address and a shutdown func that cancels the context and returns
// runServe's error.
func startMember(t *testing.T, sharePath string, granularity time.Duration) (string, func() error) {
	t.Helper()
	cfg, err := parseServeFlags([]string{
		"-preset", "Test160",
		"-addr", "127.0.0.1:0",
		"-share", sharePath,
		"-granularity", granularity.String(),
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	ready := make(chan string, 1)
	cfg.onReady = func(addr string) { ready <- addr }
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- runServe(ctx, cfg, io.Discard) }()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("runServe exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("member did not come up")
	}
	stopped := false
	stop := func() error {
		if stopped {
			return nil
		}
		stopped = true
		cancel()
		select {
		case err := <-done:
			return err
		case <-time.After(30 * time.Second):
			return errors.New("runServe did not return after cancel")
		}
	}
	t.Cleanup(func() { stop() })
	return addr, stop
}

func TestServeGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"deal", "-preset", "Test160", "-k", "1", "-n", "1", "-out-dir", dir}); err != nil {
		t.Fatal(err)
	}
	addr, stop := startMember(t, filepath.Join(dir, "share-1.key"), time.Minute)
	resp, err := http.Get(fmt.Sprintf("http://%s/v1/healthz", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	if err := stop(); err != nil {
		t.Fatalf("runServe returned %v on context cancel, want nil", err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/v1/healthz", addr)); err == nil {
		t.Fatal("member still accepting connections after shutdown")
	}
}

func TestServeRejectsBadShareFile(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "missing.key")
	cfg, err := parseServeFlags([]string{"-preset", "Test160", "-share", bad, "-addr", "127.0.0.1:0"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := runServe(context.Background(), cfg, io.Discard); err == nil {
		t.Fatal("runServe with a missing share file must fail")
	}
}

// End to end: deal a 2-of-3 group, run two members as real serve
// processes, encrypt to the next beacon round against the group key,
// and decrypt the armored file with a quorum client pinned to the
// member-N.pub files deal wrote. The third member never starts.
func TestArmoredRoundTripThroughServingMembers(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"deal", "-preset", "Test160", "-k", "2", "-n", "3", "-out-dir", dir}); err != nil {
		t.Fatal(err)
	}
	set := tre.MustPreset("Test160")
	codec := tre.NewCodec(set)
	scheme := tre.NewScheme(set)

	loadPub := func(name string) tre.ServerPublicKey {
		raw, err := keyfile.LoadPublic(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		pub, err := codec.UnmarshalServerPublicKey(raw)
		if err != nil {
			t.Fatal(err)
		}
		return pub
	}
	groupPub := loadPub("group.pub")

	// 1-second epochs so the round boundary arrives within the test.
	const period = time.Second
	addr1, _ := startMember(t, filepath.Join(dir, "share-1.key"), period)
	addr3, _ := startMember(t, filepath.Join(dir, "share-3.key"), period)

	// Members run on the wall clock; the round clock's genesis must be on
	// their epoch grid.
	genesis := time.Now().UTC().Truncate(24 * time.Hour)
	clock, err := tre.NewRoundClock(period, genesis)
	if err != nil {
		t.Fatal(err)
	}
	round, err := clock.At(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	round++ // next round: strictly future at encrypt time

	user, err := scheme.UserKeyGen(groupPub, nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("2-of-3 beacon round trip")
	armored, err := tre.EncryptToRound(nil, scheme, clock, groupPub, user.Pub, round, msg)
	if err != nil {
		t.Fatal(err)
	}

	shards := []tre.Shard{
		{Index: 1, Client: tre.NewTimeClient("http://"+addr1, set, loadPub("member-1.pub"))},
		{Index: 3, Client: tre.NewTimeClient("http://"+addr3, set, loadPub("member-3.pub"))},
	}
	qc := &tre.QuorumClient{Set: set, GroupPub: groupPub, K: 2, Shards: shards}

	rc, err := tre.DecodeArmored(scheme, armored)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Round != round {
		t.Fatalf("armored round = %d, want %d", rc.Round, round)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	upd, err := qc.WaitForRelease(ctx, rc.Label, 50*time.Millisecond)
	if err != nil {
		t.Fatalf("WaitForRelease through serving members: %v", err)
	}
	got, err := tre.DecryptArmored(scheme, groupPub, user, upd, armored)
	if err != nil {
		t.Fatalf("DecryptArmored: %v", err)
	}
	if string(got) != string(msg) {
		t.Fatalf("round trip = %q, want %q", got, msg)
	}
}

func TestDealWritesMemberPubFiles(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"deal", "-preset", "Test160", "-k", "2", "-n", "3", "-out-dir", dir}); err != nil {
		t.Fatal(err)
	}
	set := tre.MustPreset("Test160")
	codec := tre.NewCodec(set)
	for i := 1; i <= 3; i++ {
		raw, err := keyfile.LoadPublic(filepath.Join(dir, fmt.Sprintf("member-%d.pub", i)))
		if err != nil {
			t.Fatalf("member-%d.pub: %v", i, err)
		}
		mpub, err := codec.UnmarshalServerPublicKey(raw)
		if err != nil {
			t.Fatalf("member-%d.pub: %v", i, err)
		}
		// The member key must agree with the share file it was derived
		// from — serve answers under exactly this key.
		loaded, err := keyfile.LoadShare(filepath.Join(dir, fmt.Sprintf("share-%d.key", i)), set)
		if err != nil {
			t.Fatal(err)
		}
		want := tre.ShardServerKey(set, loaded.Share).Pub
		if !set.Curve.Equal(mpub.SG, want.SG) {
			t.Fatalf("member-%d.pub does not match share-%d.key", i, i)
		}
	}
}

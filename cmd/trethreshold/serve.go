package main

// The serve subcommand runs one threshold member as a network time
// server. A member is an ordinary passive server over its share key
// (s_i · H1(T) per epoch); nothing threshold-specific happens online —
// clients gather any k member updates and interpolate.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"timedrelease/internal/keyfile"
	"timedrelease/internal/timeserver"
	"timedrelease/tre"
)

// serveConfig is the parsed `serve` command line.
type serveConfig struct {
	preset      string
	addr        string
	sharePath   string
	granularity time.Duration
	archDir     string
	headerWait  time.Duration

	// onReady, when set (tests), receives the bound listen address
	// once the HTTP listener is up.
	onReady func(addr string)
}

// parseServeFlags parses args (not including "serve") into a config
// without touching global flag state, so tests can exercise it
// directly.
func parseServeFlags(args []string, stderr io.Writer) (*serveConfig, error) {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := &serveConfig{}
	fs.StringVar(&cfg.preset, "preset", "SS512", "parameter preset")
	fs.StringVar(&cfg.addr, "addr", ":8441", "listen address")
	fs.StringVar(&cfg.sharePath, "share", "", "this member's share file (from deal)")
	fs.DurationVar(&cfg.granularity, "granularity", time.Minute, "epoch width (must divide 24h)")
	fs.StringVar(&cfg.archDir, "archive-dir", "", "durable archive directory (in-memory if empty)")
	fs.DurationVar(&cfg.headerWait, "read-header-timeout", timeserver.DefaultReadHeaderTimeout,
		"max time to wait for a request header (slowloris guard)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() != 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if cfg.sharePath == "" {
		return nil, fmt.Errorf("-share is required")
	}
	return cfg, nil
}

// runServe serves one member until ctx is cancelled, then shuts the
// HTTP server down gracefully. It returns nil on a clean shutdown.
func runServe(ctx context.Context, cfg *serveConfig, stdout io.Writer) error {
	set, err := tre.Preset(cfg.preset)
	if err != nil {
		return err
	}
	sched, err := tre.NewSchedule(cfg.granularity)
	if err != nil {
		return err
	}
	loaded, err := keyfile.LoadShare(cfg.sharePath, set)
	if err != nil {
		return err
	}
	key := tre.ShardServerKey(set, loaded.Share)

	srvOpts := make([]timeserver.Option, 0, 1)
	if cfg.archDir != "" {
		// Same crash-recovery contract as treserver: replayed updates are
		// re-verified against this member's key, torn tails truncated.
		scheme := tre.NewScheme(set)
		arch, err := tre.OpenDirArchive(cfg.archDir, set, func(u tre.KeyUpdate) bool {
			return scheme.VerifyUpdate(key.Pub, u)
		})
		if err != nil {
			return err
		}
		defer arch.Close()
		stats := arch.Stats()
		fmt.Fprintf(stdout, "trethreshold: member %d recovered %d updates from %s (torn tail: %d bytes dropped)\n",
			loaded.Share.Index, stats.Records, cfg.archDir, stats.TornBytes)
		srvOpts = append(srvOpts, tre.WithArchive(arch))
	}
	srv := tre.NewTimeServer(set, key, sched, srvOpts...)

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	httpServer := timeserver.NewHTTPServer(srv.Handler(), cfg.headerWait)

	fmt.Fprintf(stdout, "trethreshold: member %d of %d-of-%d group, %s params, %v epochs, listening on %s\n",
		loaded.Share.Index, loaded.K, loaded.N, set.Name, cfg.granularity, ln.Addr())
	if cfg.onReady != nil {
		cfg.onReady(ln.Addr().String())
	}

	errCh := make(chan error, 2)
	go func() {
		if err := httpServer.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()
	go func() {
		if err := srv.Run(ctx); !errors.Is(err, context.Canceled) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	select {
	case <-ctx.Done():
		fmt.Fprintf(stdout, "trethreshold: member %d shutting down\n", loaded.Share.Index)
	case err := <-errCh:
		if err != nil {
			httpServer.Close()
			return err
		}
	}
	// Drain long-polls first so Shutdown's grace period is spent on
	// genuinely in-flight work, not parked waiters.
	srv.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return httpServer.Shutdown(shutdownCtx)
}

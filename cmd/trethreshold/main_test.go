package main

import (
	"os"
	"path/filepath"
	"testing"

	"timedrelease/internal/keyfile"
	"timedrelease/tre"
)

func TestDealPartialCombineFlow(t *testing.T) {
	dir := t.TempDir()
	const preset = "Test160"

	if err := run([]string{"deal", "-preset", preset, "-k", "2", "-n", "3", "-out-dir", dir}); err != nil {
		t.Fatalf("deal: %v", err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := os.Stat(filepath.Join(dir, "share-1.key")); err != nil {
			t.Fatalf("share %d missing: %v", i, err)
		}
	}

	const label = "2027-01-01T00:00:00Z"
	p1 := filepath.Join(dir, "p1.bin")
	p3 := filepath.Join(dir, "p3.bin")
	if err := run([]string{"partial", "-preset", preset, "-share", filepath.Join(dir, "share-1.key"), "-label", label, "-out", p1}); err != nil {
		t.Fatalf("partial 1: %v", err)
	}
	if err := run([]string{"partial", "-preset", preset, "-share", filepath.Join(dir, "share-3.key"), "-label", label, "-out", p3}); err != nil {
		t.Fatalf("partial 3: %v", err)
	}

	updPath := filepath.Join(dir, "update.bin")
	if err := run([]string{"combine", "-preset", preset, "-group", filepath.Join(dir, "group.pub"),
		"-k", "2", "-in", p1, "-in", p3, "-out", updPath}); err != nil {
		t.Fatalf("combine: %v", err)
	}

	// The combined update must decrypt real traffic sealed to the group
	// key.
	set := tre.MustPreset(preset)
	codec := tre.NewCodec(set)
	rawGroup, err := keyfile.LoadPublic(filepath.Join(dir, "group.pub"))
	if err != nil {
		t.Fatal(err)
	}
	groupPub, err := codec.UnmarshalServerPublicKey(rawGroup)
	if err != nil {
		t.Fatal(err)
	}
	rawUpd, err := os.ReadFile(updPath)
	if err != nil {
		t.Fatal(err)
	}
	upd, err := codec.UnmarshalKeyUpdate(rawUpd)
	if err != nil {
		t.Fatal(err)
	}
	scheme := tre.NewScheme(set)
	if !scheme.VerifyUpdate(groupPub, upd) {
		t.Fatal("combined update must verify against the group key")
	}
	user, err := scheme.UserKeyGen(groupPub, nil)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := scheme.EncryptCCA(nil, groupPub, user.Pub, label, []byte("threshold CLI flow"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := scheme.DecryptCCA(groupPub, user, upd, ct)
	if err != nil || string(got) != "threshold CLI flow" {
		t.Fatalf("decrypt: %q %v", got, err)
	}
}

func TestCombineRejectsTooFew(t *testing.T) {
	dir := t.TempDir()
	const preset = "Test160"
	if err := run([]string{"deal", "-preset", preset, "-k", "2", "-n", "3", "-out-dir", dir}); err != nil {
		t.Fatal(err)
	}
	p1 := filepath.Join(dir, "p1.bin")
	if err := run([]string{"partial", "-preset", preset, "-share", filepath.Join(dir, "share-1.key"), "-label", "l", "-out", p1}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"combine", "-preset", preset, "-group", filepath.Join(dir, "group.pub"),
		"-k", "2", "-in", p1}); err == nil {
		t.Fatal("combine with one partial for k=2 must fail")
	}
}

func TestExportServerKey(t *testing.T) {
	dir := t.TempDir()
	const preset = "Test160"
	if err := run([]string{"deal", "-preset", preset, "-k", "1", "-n", "2", "-out-dir", dir}); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "shard1.key")
	if err := run([]string{"export-server-key", "-preset", preset,
		"-share", filepath.Join(dir, "share-1.key"), "-out", out}); err != nil {
		t.Fatalf("export-server-key: %v", err)
	}
	set := tre.MustPreset(preset)
	if _, err := keyfile.LoadServerKey(out, set); err != nil {
		t.Fatalf("exported key must load as an ordinary server key: %v", err)
	}
}

func TestUsageErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no args must fail")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("bad subcommand must fail")
	}
	if err := run([]string{"partial"}); err == nil {
		t.Fatal("partial without flags must fail")
	}
	if err := run([]string{"combine"}); err == nil {
		t.Fatal("combine without flags must fail")
	}
}

package main

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"timedrelease/tre"
)

func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags([]string{"-upstream", "http://origin:8440"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.upstream != "http://origin:8440" || cfg.addr != ":8441" || cfg.metrics || cfg.pinPath != "" {
		t.Fatalf("wrong defaults: %+v", cfg)
	}
}

func TestParseFlagsErrors(t *testing.T) {
	for _, args := range [][]string{
		nil, // -upstream is required
		{"-upstream", "http://x", "-nosuchflag"},
		{"-upstream", "http://x", "stray"},
	} {
		if _, err := parseFlags(args, io.Discard); err == nil {
			t.Fatalf("parseFlags(%v) accepted bad input", args)
		}
	}
}

// startOrigin runs an in-process origin time server on its real
// publication loop and returns everything a relay consumer needs.
func startOrigin(t *testing.T) (string, *tre.Params, *tre.ServerKeyPair, tre.Schedule) {
	t.Helper()
	set := tre.MustPreset("Test160")
	scheme := tre.NewScheme(set)
	key, err := scheme.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	sched := tre.MustSchedule(500 * time.Millisecond)
	srv := tre.NewTimeServer(set, key, sched)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("origin: %v", err)
		}
	}()
	t.Cleanup(func() { cancel(); <-done })
	return ts.URL, set, key, sched
}

// startRelay runs the command against upstream and returns its bound
// address and a shutdown func returning run's error.
func startRelay(t *testing.T, upstream string, extraArgs ...string) (string, func() error) {
	t.Helper()
	args := append([]string{"-upstream", upstream, "-addr", "127.0.0.1:0"}, extraArgs...)
	cfg, err := parseFlags(args, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	ready := make(chan string, 1)
	cfg.onReady = func(addr string) { ready <- addr }
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, io.Discard) }()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("relay did not come up")
	}
	stopped := false
	stop := func() error {
		if stopped {
			return nil
		}
		stopped = true
		cancel()
		select {
		case err := <-done:
			return err
		case <-time.After(30 * time.Second):
			return errors.New("run did not return after cancel")
		}
	}
	t.Cleanup(func() { stop() })
	return addr, stop
}

func TestRelaySmokeSubscribePublishDecrypt(t *testing.T) {
	// The ci smoke chain: origin publishes, the relay binary subscribes
	// and re-serves, and a downstream receiver — bootstrapped and waiting
	// entirely through the relay — decrypts a message sealed to a future
	// epoch.
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	originURL, set, key, sched := startOrigin(t)
	addr, stop := startRelay(t, originURL)
	relayURL := "http://" + addr

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Bootstrap downstream FROM THE RELAY; the pinned key must still be
	// authenticated out of band — here against the origin key we hold.
	bset, bpub, bsched, err := tre.FetchBootstrap(ctx, relayURL, nil)
	if err != nil {
		t.Fatalf("bootstrap via relay: %v", err)
	}
	if bset.Name != set.Name || bsched.Granularity != sched.Granularity || !set.Curve.Equal(bpub.SG, key.Pub.SG) {
		t.Fatal("relay-served bootstrap differs from origin")
	}

	scheme := tre.NewScheme(set)
	alice, err := scheme.UserKeyGen(key.Pub, nil)
	if err != nil {
		t.Fatal(err)
	}
	releaseAt := sched.LabelAt(sched.Index(time.Now()) + 2)
	msg := []byte("relayed timed release")
	ct, err := scheme.EncryptCCA(nil, key.Pub, alice.Pub, releaseAt, msg)
	if err != nil {
		t.Fatal(err)
	}

	down := tre.NewTimeClient(relayURL, set, key.Pub)
	upd, err := down.WaitFor(ctx, releaseAt)
	if err != nil {
		t.Fatalf("wait via relay: %v", err)
	}
	got, err := scheme.DecryptCCA(key.Pub, alice, upd, ct)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("decrypt after relayed release: %q %v", got, err)
	}
	if err := stop(); err != nil {
		t.Fatalf("relay shutdown: %v", err)
	}
}

func TestRelayPinMismatchRefusesToStart(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	originURL, _, _, _ := startOrigin(t)
	pin := filepath.Join(t.TempDir(), "pin")
	if err := os.WriteFile(pin, []byte("deadbeefdeadbeef\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	cfg, err := parseFlags([]string{"-upstream", originURL, "-addr", "127.0.0.1:0", "-pin", pin}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := run(ctx, cfg, io.Discard); err == nil {
		t.Fatal("relay started despite a server-key fingerprint mismatch")
	}
}

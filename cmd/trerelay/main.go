// Command trerelay runs a stateless fan-out relay: it subscribes to an
// upstream time server (or another relay) over /v1/stream, verifies
// every key update once against the server's public key, and re-serves
// the full public HTTP surface — /v1/stream, /v1/wait, /v1/update,
// /v1/catchup and the bootstrap routes — to downstream consumers.
//
//	trerelay -upstream http://origin:8440 -addr :8441 -metrics
//
// Relays hold NO secret material. Because updates self-authenticate
// via the pairing check ê(sG, H1(T)) = ê(G, I_T), a relay (even a
// compromised one) can only withhold updates, never forge them, so
// fan-out capacity scales horizontally without widening the trust
// base: downstream clients keep verifying against the origin key,
// which the relay fetches at startup and prints as a fingerprint for
// out-of-band comparison (or pins from a previous run via -pin).
//
// The relay reconnects forever: on an upstream outage it backs off,
// converges over the gap with one aggregate catch-up request, and
// resumes streaming. Downstream service continues from the local
// archive throughout.
package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"timedrelease/internal/timeserver"
	"timedrelease/tre"
)

// config is the parsed command line.
type config struct {
	upstream   string
	addr       string
	metrics    bool
	pinPath    string
	headerWait time.Duration

	// onReady, when set (tests), receives the bound listen address once
	// the HTTP listener is up.
	onReady func(addr string)
}

// parseFlags parses args (not including the program name) into a
// config without touching global flag state, so tests can exercise it
// directly.
func parseFlags(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("trerelay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := &config{}
	fs.StringVar(&cfg.upstream, "upstream", "", "upstream server or relay base URL (required)")
	fs.StringVar(&cfg.addr, "addr", ":8441", "downstream listen address")
	fs.BoolVar(&cfg.metrics, "metrics", false, "serve /metrics (JSON), log ingest events")
	fs.StringVar(&cfg.pinPath, "pin", "", "file holding the expected server key fingerprint (created if missing)")
	fs.DurationVar(&cfg.headerWait, "read-header-timeout", timeserver.DefaultReadHeaderTimeout,
		"max time to wait for a request header (slowloris guard)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() != 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if cfg.upstream == "" {
		return nil, errors.New("-upstream is required")
	}
	return cfg, nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "trerelay:", err)
		os.Exit(1)
	}
}

// keyFingerprint is a short stable digest of the upstream server public
// key, printed for out-of-band comparison and optionally pinned across
// restarts with -pin.
func keyFingerprint(set *tre.Params, spub tre.ServerPublicKey) string {
	sum := sha256.Sum256(tre.NewCodec(set).MarshalServerPublicKey(spub))
	return hex.EncodeToString(sum[:8])
}

// checkPin compares the upstream key fingerprint against the pin file,
// creating the file on first use (trust on first use; authenticate the
// printed fingerprint out of band for a stronger anchor).
func checkPin(path, fp string, stdout io.Writer) error {
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		if err := os.WriteFile(path, []byte(fp+"\n"), 0o600); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "trerelay: pinned server key fingerprint %s in %s\n", fp, path)
		return nil
	}
	if err != nil {
		return err
	}
	want := string(raw)
	for len(want) > 0 && (want[len(want)-1] == '\n' || want[len(want)-1] == '\r') {
		want = want[:len(want)-1]
	}
	if want != fp {
		return fmt.Errorf("server key fingerprint %s does not match pinned %s (from %s): refusing to relay", fp, want, path)
	}
	return nil
}

// run builds and serves the relay until ctx is cancelled, then shuts
// down gracefully. It returns nil on a clean shutdown.
func run(ctx context.Context, cfg *config, stdout io.Writer) error {
	// Bootstrap from upstream: parameter set, server public key and
	// schedule all come from the origin — a relay adds nothing.
	bctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	set, spub, sched, err := tre.FetchBootstrap(bctx, cfg.upstream, nil)
	cancel()
	if err != nil {
		return fmt.Errorf("bootstrap from %s: %w", cfg.upstream, err)
	}
	fp := keyFingerprint(set, spub)
	fmt.Fprintf(stdout, "trerelay: upstream %s, %s params, server key fingerprint %s\n", cfg.upstream, set.Name, fp)
	if cfg.pinPath != "" {
		if err := checkPin(cfg.pinPath, fp, stdout); err != nil {
			return err
		}
	}

	clientOpts := []timeserver.ClientOption{}
	relayOpts := []timeserver.RelayOption{}
	var metrics *tre.Metrics
	if cfg.metrics {
		metrics = tre.NewMetrics()
		clientOpts = append(clientOpts, tre.WithClientMetrics(metrics))
		relayOpts = append(relayOpts,
			tre.RelayWithMetrics(metrics),
			tre.RelayWithLogger(tre.NewEventLogger(stdout)))
	}
	up := tre.NewTimeClient(cfg.upstream, set, spub, clientOpts...)
	relay := tre.NewRelay(up, sched, relayOpts...)

	handler := http.Handler(relay.Handler())
	if cfg.metrics {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.Handle("GET /metrics", metrics.Handler())
		handler = mux
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	httpServer := timeserver.NewHTTPServer(handler, cfg.headerWait)

	fmt.Fprintf(stdout, "trerelay: listening on %s\n", ln.Addr())
	if cfg.onReady != nil {
		cfg.onReady(ln.Addr().String())
	}

	errCh := make(chan error, 2)
	go func() {
		if err := httpServer.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()
	go func() {
		if err := relay.Run(ctx); !errors.Is(err, context.Canceled) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	select {
	case <-ctx.Done():
		fmt.Fprintln(stdout, "trerelay: shutting down")
	case err := <-errCh:
		if err != nil {
			httpServer.Close()
			return err
		}
	}
	// Drain streams and long-polls first so Shutdown's grace period is
	// spent on in-flight catch-up fetches, not parked subscribers.
	relay.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return httpServer.Shutdown(shutdownCtx)
}

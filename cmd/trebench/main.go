// Command trebench regenerates every experiment table in EXPERIMENTS.md
// (E1–E10, one per quantitative claim of the paper; see DESIGN.md §3).
//
//	trebench                  # run everything at full scope (SS512)
//	trebench -quick           # fast reduced sweeps (Test160)
//	trebench -exp E2          # one experiment
//	trebench -preset SS1024   # different parameter size
//	trebench -backend bls12381 # pin the Type-3 BLS12-381 backend
//	trebench -markdown        # emit markdown instead of aligned text
//	trebench -pairing F.json  # pairing-strategy comparison → JSON file
//	trebench -field F.json    # field-backend micro-benchmark → JSON file
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"timedrelease/internal/bench"
	"timedrelease/tre"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "reduced sweeps and iteration counts")
		exp      = flag.String("exp", "", "run a single experiment (E1..E10)")
		preset   = flag.String("preset", "", "parameter preset (default SS512, Test160 with -quick)")
		backendN = flag.String("backend", "", "pairing backend: symmetric (default) or bls12381")
		markdown = flag.Bool("markdown", false, "emit GitHub-flavoured markdown")
		pairingF = flag.String("pairing", "", "run the pairing-strategy comparison and write the JSON report to this file")
		fieldF   = flag.String("field", "", "run the field-backend micro-benchmark and write the JSON report to this file")
	)
	flag.Parse()

	cfg := bench.Config{Quick: *quick, Preset: *preset}
	if *backendN != "" {
		// -backend pins the run to the backend's preset (bls12381 →
		// BLS12-381); an explicit -preset must agree with it.
		set, err := tre.ResolvePreset(*preset, *backendN)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trebench:", err)
			os.Exit(2)
		}
		if *preset != "" && *preset != set.Name {
			fmt.Fprintf(os.Stderr, "trebench: -preset %s conflicts with -backend %s\n", *preset, *backendN)
			os.Exit(2)
		}
		cfg.Preset = set.Name
	}

	if *fieldF != "" {
		rep, table, err := bench.RunField(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trebench:", err)
			os.Exit(1)
		}
		out, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "trebench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*fieldF, out, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "trebench:", err)
			os.Exit(1)
		}
		if *markdown {
			fmt.Print(table.Markdown())
		} else {
			fmt.Print(table.String())
		}
		fmt.Fprintf(os.Stderr, "\ntrebench: field report written to %s\n", *fieldF)
		return
	}

	if *pairingF != "" {
		rep, table, err := bench.RunPairing(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trebench:", err)
			os.Exit(1)
		}
		out, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "trebench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*pairingF, out, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "trebench:", err)
			os.Exit(1)
		}
		if *markdown {
			fmt.Print(table.Markdown())
		} else {
			fmt.Print(table.String())
		}
		fmt.Fprintf(os.Stderr, "\ntrebench: pairing report written to %s\n", *pairingF)
		return
	}

	var (
		tables []*bench.Table
		err    error
	)
	start := time.Now()
	if *exp != "" {
		var t *bench.Table
		t, err = bench.RunOne(*exp, cfg)
		tables = []*bench.Table{t}
	} else {
		tables, err = bench.RunAll(cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "trebench:", err)
		os.Exit(1)
	}

	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		if *markdown {
			fmt.Print(t.Markdown())
		} else {
			fmt.Print(t.String())
		}
	}
	fmt.Fprintf(os.Stderr, "\ntrebench: %d experiment(s) in %v\n", len(tables), time.Since(start).Round(time.Millisecond))
}

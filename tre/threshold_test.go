package tre_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"timedrelease/tre"
)

func TestPublicThresholdFlow(t *testing.T) {
	set := tre.MustPreset("Test160")
	scheme := tre.NewScheme(set)

	setup, err := tre.ThresholdDeal(set, nil, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := scheme.UserKeyGen(setup.GroupPub, nil)
	if err != nil {
		t.Fatal(err)
	}
	const label = "2027-01-01T00:00:00Z"
	msg := []byte("threshold via the public API")
	ct, err := scheme.EncryptCCA(nil, setup.GroupPub, receiver.Pub, label, msg)
	if err != nil {
		t.Fatal(err)
	}

	partials := []tre.PartialUpdate{
		tre.IssuePartialUpdate(set, setup.Shares[0], label),
		tre.IssuePartialUpdate(set, setup.Shares[2], label),
	}
	for i, idx := range []int{0, 2} {
		if !tre.VerifyPartialUpdate(set, setup.Shares[idx].Pub, partials[i]) {
			t.Fatalf("partial %d failed verification", idx)
		}
	}
	upd, err := tre.CombinePartialUpdates(set, setup.GroupPub, partials, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := scheme.DecryptCCA(setup.GroupPub, receiver, upd, ct)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("decrypt: %q %v", got, err)
	}
}

func TestPublicQuorumOverHTTP(t *testing.T) {
	set := tre.MustPreset("Test160")
	setup, err := tre.ThresholdDeal(set, nil, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	sched := tre.MustSchedule(time.Minute)
	now := time.Date(2026, 7, 5, 12, 0, 30, 0, time.UTC)

	var shards []tre.Shard
	for _, share := range setup.Shares {
		key := tre.ShardServerKey(set, share)
		srv := tre.NewTimeServer(set, key, sched, tre.WithClock(func() time.Time { return now }))
		if _, err := srv.PublishUpTo(now); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		shards = append(shards, tre.Shard{
			Index:  share.Index,
			Client: tre.NewTimeClient(ts.URL, set, key.Pub, tre.WithHTTPClient(ts.Client())),
		})
	}

	qc := &tre.QuorumClient{Set: set, GroupPub: setup.GroupPub, K: 2, Shards: shards}
	label := sched.Label(now)
	upd, err := qc.Update(context.Background(), label)
	if err != nil {
		t.Fatal(err)
	}
	if !tre.NewScheme(set).VerifyUpdate(setup.GroupPub, upd) {
		t.Fatal("quorum update must verify against the group key")
	}
}

func TestPublicCatchUpAndLongPoll(t *testing.T) {
	set := tre.MustPreset("Test160")
	scheme := tre.NewScheme(set)
	key, err := scheme.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	sched := tre.MustSchedule(time.Minute)
	now := time.Date(2026, 7, 5, 12, 0, 30, 0, time.UTC)
	srv := tre.NewTimeServer(set, key, sched, tre.WithClock(func() time.Time { return now }))
	if _, err := srv.PublishUpTo(now); err != nil {
		t.Fatal(err)
	}
	now = now.Add(4 * time.Minute)
	if _, err := srv.PublishUpTo(now); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client := tre.NewTimeClient(ts.URL, set, key.Pub, tre.WithHTTPClient(ts.Client()))

	labels, err := client.Labels(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ups, err := client.CatchUp(context.Background(), labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != len(labels) {
		t.Fatalf("caught up %d of %d", len(ups), len(labels))
	}
	if _, err := client.WaitForReleaseLongPoll(context.Background(), labels[0]); err != nil {
		t.Fatalf("long-poll on published label: %v", err)
	}
}

package tre_test

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"timedrelease/tre"
)

// These tests exercise the library exclusively through the public facade
// — what a downstream user sees. Deep behaviour is covered by the
// internal packages' suites; here we pin that the public surface is
// complete and composes.

func TestPublicQuickstartFlow(t *testing.T) {
	set := tre.MustPreset("Test160")
	scheme := tre.NewScheme(set)

	server, err := scheme.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	alice, err := scheme.UserKeyGen(server.Pub, nil)
	if err != nil {
		t.Fatal(err)
	}
	const label = "2027-01-01T00:00:00Z"
	msg := []byte("public API round trip")

	ct, err := scheme.EncryptCCA(nil, server.Pub, alice.Pub, label, msg)
	if err != nil {
		t.Fatal(err)
	}
	upd := scheme.IssueUpdate(server, label)
	if !scheme.VerifyUpdate(server.Pub, upd) {
		t.Fatal("update must verify")
	}
	got, err := scheme.DecryptCCA(server.Pub, alice, upd, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("round trip mismatch")
	}
}

func TestPublicVariantsExist(t *testing.T) {
	set := tre.MustPreset("Test160")
	scheme := tre.NewScheme(set)
	server, err := scheme.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}

	// ID-TRE through the facade.
	id := tre.NewIDScheme(set)
	priv := id.ExtractUserKey(server, "alice")
	idCT, err := id.Encrypt(nil, server.Pub, "alice", "label", []byte("id"))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := id.Decrypt(priv, scheme.IssueUpdate(server, "label"), idCT); err != nil || string(got) != "id" {
		t.Fatalf("ID-TRE: %q %v", got, err)
	}

	// Policy lock through the facade.
	pl := tre.NewPolicyScheme(set)
	user, err := scheme.UserKeyGen(server.Pub, nil)
	if err != nil {
		t.Fatal(err)
	}
	policy, err := tre.ParsePolicy("a & b")
	if err != nil {
		t.Fatal(err)
	}
	plCT, err := pl.Encrypt(nil, server.Pub, user.Pub, policy, []byte("pl"))
	if err != nil {
		t.Fatal(err)
	}
	atts := []tre.Attestation{pl.Attest(server, "a"), pl.Attest(server, "b")}
	if got, err := pl.Decrypt(user, atts, plCT); err != nil || string(got) != "pl" {
		t.Fatalf("policy lock: %q %v", got, err)
	}
	if _, err := pl.Decrypt(user, atts[:1], plCT); !errors.Is(err, tre.ErrPolicyUnsatisfied) {
		t.Fatalf("partial attestation: %v", err)
	}

	// Multi-server through the facade.
	multi := tre.NewMultiScheme(set)
	group := tre.ServerGroup{server.Pub}
	mUser, err := multi.UserKeyGen(group, nil)
	if err != nil {
		t.Fatal(err)
	}
	mCT, err := multi.Encrypt(nil, group, mUser.Pub, "label", []byte("ms"))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := multi.Decrypt(mUser, []tre.KeyUpdate{scheme.IssueUpdate(server, "label")}, mCT); err != nil || string(got) != "ms" {
		t.Fatalf("multi-server: %q %v", got, err)
	}

	// Resilient time tree through the facade.
	rs, err := tre.NewResilientScheme(set, 4)
	if err != nil {
		t.Fatal(err)
	}
	root, err := rs.H.RootKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	rCT, err := rs.Encrypt(nil, root.Pub, 3, []byte("tree"))
	if err != nil {
		t.Fatal(err)
	}
	cover, err := rs.PublishCover(root, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := rs.Decrypt(cover, 3, rCT); err != nil || string(got) != "tree" {
		t.Fatalf("resilient: %q %v", got, err)
	}
}

func TestPublicTimeServerFlow(t *testing.T) {
	set := tre.MustPreset("Test160")
	scheme := tre.NewScheme(set)
	key, err := scheme.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	sched := tre.MustSchedule(time.Minute)
	now := time.Date(2026, 7, 5, 12, 0, 30, 0, time.UTC)
	srv := tre.NewTimeServer(set, key, sched, tre.WithClock(func() time.Time { return now }))
	if _, err := srv.PublishUpTo(now); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	client := tre.NewTimeClient(ts.URL, set, key.Pub, tre.WithHTTPClient(ts.Client()))
	label := sched.Label(now)
	upd, err := client.Update(context.Background(), label)
	if err != nil {
		t.Fatal(err)
	}
	if !scheme.VerifyUpdate(key.Pub, upd) {
		t.Fatal("fetched update must verify")
	}
	if _, err := client.Update(context.Background(), sched.Next(now)); !errors.Is(err, tre.ErrNotYetPublished) {
		t.Fatalf("future label: %v", err)
	}
}

func TestPublicCodecAndEnvelope(t *testing.T) {
	set := tre.MustPreset("Test160")
	scheme := tre.NewScheme(set)
	codec := tre.NewCodec(set)
	server, err := scheme.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	user, err := scheme.UserKeyGen(server.Pub, nil)
	if err != nil {
		t.Fatal(err)
	}
	const label = "2026-07-05T12:00:00Z"
	ct, err := scheme.EncryptCCA(nil, server.Pub, user.Pub, label, []byte("sealed"))
	if err != nil {
		t.Fatal(err)
	}
	env, err := codec.UnmarshalEnvelope(codec.SealCCA(label, ct))
	if err != nil {
		t.Fatal(err)
	}
	if env.Kind != tre.KindCCA || env.Label != label {
		t.Fatalf("envelope: %v %q", env.Kind, env.Label)
	}
}

func TestPublicParamsLifecycle(t *testing.T) {
	names := tre.PresetNames()
	if len(names) < 4 {
		t.Fatalf("presets: %v", names)
	}
	set, err := tre.GenerateParams(nil, 128, 64)
	if err != nil {
		t.Fatal(err)
	}
	back, err := tre.UnmarshalParams(set.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.P.Cmp(set.P) != 0 {
		t.Fatal("params round trip mismatch")
	}
	if _, err := tre.Preset("bogus"); err == nil {
		t.Fatal("unknown preset must fail")
	}
}

func TestPublicArchives(t *testing.T) {
	set := tre.MustPreset("Test160")
	scheme := tre.NewScheme(set)
	key, err := scheme.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	mem := tre.NewMemoryArchive()
	if err := mem.Put(scheme.IssueUpdate(key, "l1")); err != nil {
		t.Fatal(err)
	}
	if mem.Len() != 1 {
		t.Fatal("memory archive put failed")
	}
	fa, err := tre.OpenDirArchive(t.TempDir(), set, func(u tre.KeyUpdate) bool {
		return scheme.VerifyUpdate(key.Pub, u)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fa.Close()
	if err := fa.Put(scheme.IssueUpdate(key, "l2")); err != nil {
		t.Fatal(err)
	}
	if _, ok := fa.Get("l2"); !ok {
		t.Fatal("durable archive get failed")
	}
}

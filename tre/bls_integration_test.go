package tre_test

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"timedrelease/tre"
)

// The end-to-end flows below run the public facade on the Type-3
// BLS12-381 backend — the same scenarios the symmetric presets cover
// in tre_test.go, threshold_test.go and beacon_test.go, proving the
// backend swap is invisible above the wire layer.

func blsParams(t *testing.T) *tre.Params {
	t.Helper()
	// Resolve through the CLI flag-pair path so the selector itself
	// stays covered.
	set, err := tre.ResolvePreset("Test160", "bls12381")
	if err != nil {
		t.Fatal(err)
	}
	if set.Name != tre.PresetBLS12381 || !set.Asymmetric() {
		t.Fatalf("ResolvePreset(bls12381) = %q (asymmetric=%v)", set.Name, set.Asymmetric())
	}
	return set
}

// TestBLSResolvePreset pins the -preset/-backend flag-pair contract.
func TestBLSResolvePreset(t *testing.T) {
	if set, err := tre.ResolvePreset("SS512", "symmetric"); err != nil || set.Name != "SS512" {
		t.Fatalf("symmetric backend: set=%v err=%v", set, err)
	}
	if set, err := tre.ResolvePreset("SS512", ""); err != nil || set.Name != "SS512" {
		t.Fatalf("empty backend: set=%v err=%v", set, err)
	}
	if _, err := tre.ResolvePreset("SS512", "bn254"); err == nil {
		t.Fatal("unknown backend must be rejected")
	}
	blsParams(t)
}

// TestBLSPublishCatchUpDecrypt is the paper's core flow on BLS12-381:
// a sender encrypts to a future minute, the time server publishes
// updates over real HTTP, a verifying client bootstraps the
// parameters from the server, catches up, and the receiver decrypts.
func TestBLSPublishCatchUpDecrypt(t *testing.T) {
	set := blsParams(t)
	scheme := tre.NewScheme(set)
	key, err := scheme.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	user, err := scheme.UserKeyGen(key.Pub, nil)
	if err != nil {
		t.Fatal(err)
	}
	sched := tre.MustSchedule(time.Minute)
	now := time.Date(2026, 7, 5, 12, 0, 30, 0, time.UTC)
	srv := tre.NewTimeServer(set, key, sched, tre.WithClock(func() time.Time { return now }))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// The sender seals to a label three minutes out, before the server
	// has published anything near it.
	release := sched.Label(now.Add(3 * time.Minute))
	msg := []byte("sealed for three minutes on BLS12-381")
	ct, err := scheme.EncryptCCA(nil, key.Pub, user.Pub, release, msg)
	if err != nil {
		t.Fatal(err)
	}

	// A fresh client bootstraps everything from the server itself —
	// this round-trips the parameter marshalling (including the
	// backend= line) over HTTP.
	bset, bpub, bsched, err := tre.FetchBootstrap(context.Background(), ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	if bset.Name != set.Name || !bset.Asymmetric() {
		t.Fatalf("bootstrapped set %q (asymmetric=%v)", bset.Name, bset.Asymmetric())
	}
	if bsched.Label(now) != sched.Label(now) {
		t.Fatalf("bootstrapped schedule label %q, want %q", bsched.Label(now), sched.Label(now))
	}
	client := tre.NewTimeClient(ts.URL, bset, bpub, tre.WithHTTPClient(ts.Client()))

	// Before release: the update must not exist yet.
	if _, err := srv.PublishUpTo(now); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Update(context.Background(), release); err == nil {
		t.Fatal("future update served before its time")
	}

	// Time passes; the server publishes through the release minute.
	now = now.Add(4 * time.Minute)
	if _, err := srv.PublishUpTo(now); err != nil {
		t.Fatal(err)
	}
	labels, err := client.Labels(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ups, err := client.CatchUp(context.Background(), labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != len(labels) {
		t.Fatalf("caught up %d of %d labels", len(ups), len(labels))
	}
	upd, err := client.Update(context.Background(), release)
	if err != nil {
		t.Fatal(err)
	}
	got, err := scheme.DecryptCCA(key.Pub, user, upd, ct)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("decrypt: %q %v", got, err)
	}

	// An update for a different minute must not open it.
	other, err := client.Update(context.Background(), sched.Label(now))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := scheme.DecryptCCA(key.Pub, user, other, ct); !errors.Is(err, tre.ErrAuthFailed) {
		t.Fatalf("wrong-label decrypt: got %v, want ErrAuthFailed", err)
	}
}

// TestBLSBeaconArmoredRoundTrip seals to a beacon round on BLS12-381,
// ships the armored file, and opens it with the round's update.
func TestBLSBeaconArmoredRoundTrip(t *testing.T) {
	set := blsParams(t)
	scheme := tre.NewScheme(set)
	server, err := scheme.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	user, err := scheme.UserKeyGen(server.Pub, nil)
	if err != nil {
		t.Fatal(err)
	}
	clock := tre.MustRoundClock(time.Minute, time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	msg := []byte("opens at round 42 on BLS12-381")

	file, err := tre.EncryptToRound(nil, scheme, clock, server.Pub, user.Pub, 42, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !tre.IsArmored(file) {
		t.Fatal("EncryptToRound output is not armored")
	}

	rc, err := tre.DecodeArmored(scheme, file)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Round != 42 || !rc.Clock.Equal(clock) {
		t.Fatalf("decoded round %d, clock equal=%v", rc.Round, rc.Clock.Equal(clock))
	}
	upd := scheme.IssueUpdate(server, rc.Label)
	got, err := tre.DecryptArmored(scheme, server.Pub, user, upd, file)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("armored decrypt: %q %v", got, err)
	}

	// The wrong round's update must not open it.
	wrongLabel, _ := clock.Label(43)
	wrong := scheme.IssueUpdate(server, wrongLabel)
	if _, err := tre.DecryptArmored(scheme, server.Pub, user, wrong, file); !errors.Is(err, tre.ErrLabelMismatch) {
		t.Fatalf("wrong-round decrypt: got %v, want ErrLabelMismatch", err)
	}

	// A symmetric-set receiver rejects the file by fingerprint — the
	// typed error, not garbage decryption.
	symScheme := tre.NewScheme(tre.MustPreset("Test160"))
	if _, err := tre.DecodeArmored(symScheme, file); !errors.Is(err, tre.ErrParamsMismatch) {
		t.Fatalf("BLS armored file under Test160: got %v, want ErrParamsMismatch", err)
	}
}

// TestBLSQuorumOverHTTP runs a 3-of-5 threshold beacon round on
// BLS12-381: five shard servers over real HTTP, a quorum client
// combining partial updates, and a receiver decrypting with the
// combined update against the group key.
func TestBLSQuorumOverHTTP(t *testing.T) {
	set := blsParams(t)
	scheme := tre.NewScheme(set)
	setup, err := tre.ThresholdDeal(set, nil, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := scheme.UserKeyGen(setup.GroupPub, nil)
	if err != nil {
		t.Fatal(err)
	}
	sched := tre.MustSchedule(time.Minute)
	now := time.Date(2026, 7, 5, 12, 0, 30, 0, time.UTC)
	label := sched.Label(now)

	msg := []byte("3-of-5 quorum on BLS12-381")
	ct, err := scheme.EncryptCCA(nil, setup.GroupPub, receiver.Pub, label, msg)
	if err != nil {
		t.Fatal(err)
	}

	var shards []tre.Shard
	for _, share := range setup.Shares {
		key := tre.ShardServerKey(set, share)
		srv := tre.NewTimeServer(set, key, sched, tre.WithClock(func() time.Time { return now }))
		if _, err := srv.PublishUpTo(now); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		shards = append(shards, tre.Shard{
			Index:  share.Index,
			Client: tre.NewTimeClient(ts.URL, set, key.Pub, tre.WithHTTPClient(ts.Client())),
		})
	}

	qc := &tre.QuorumClient{Set: set, GroupPub: setup.GroupPub, K: 3, Shards: shards}
	upd, err := qc.Update(context.Background(), label)
	if err != nil {
		t.Fatal(err)
	}
	if !scheme.VerifyUpdate(setup.GroupPub, upd) {
		t.Fatal("quorum update must verify against the group key")
	}
	got, err := scheme.DecryptCCA(setup.GroupPub, receiver, upd, ct)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("decrypt with quorum update: %q %v", got, err)
	}
}

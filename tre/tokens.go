package tre

import (
	"io"

	"timedrelease/internal/bls"
	"timedrelease/internal/params"
	"timedrelease/internal/timeserver"
	"timedrelease/internal/token"
)

// Anonymous metered access: Privacy Pass-style blind tokens over the
// pairing backend (docs/TOKENS.md). A gated server meters /v1/catchup
// and /v1/stream without ever learning which subscriber redeems which
// token — issuance sees only a blinded point, redemption only the
// unblinded credential, and no blinding factor connects the two.
type (
	// TokenIssuer blind-signs token batches with a DEDICATED issuance
	// key (never the timed-release key; NewTimeServer refuses that).
	TokenIssuer = token.Issuer
	// TokenVerifier admits redemptions: one prepared pairing plus a
	// double-spend ledger lookup.
	TokenVerifier = token.Verifier
	// TokenLedger is the sharded, optionally durable double-spend set.
	TokenLedger = token.Ledger
	// TokenWallet holds a client's unspent tokens, optionally mirrored
	// to a file.
	TokenWallet = token.Wallet
	// AccessToken is one unblinded credential (seed + blind signature).
	AccessToken = token.Token
	// SpendLogStats is the read-only spend.log audit report.
	SpendLogStats = token.SpendLogStats
	// TokenLedgerStats describes what opening a durable ledger
	// recovered.
	TokenLedgerStats = token.LedgerStats
)

// Typed failures of the token path.
var (
	// ErrTokenRequired: the server demands a token and the wallet is
	// absent or empty.
	ErrTokenRequired = timeserver.ErrTokenRequired
	// ErrTokenDoubleSpend: the presented token was already redeemed.
	ErrTokenDoubleSpend = token.ErrDoubleSpend
	// ErrBadToken: the token fails verification against the issuance
	// key.
	ErrBadToken = token.ErrBadToken
)

// NewTokenIssuer generates a fresh, dedicated issuance key pair.
func NewTokenIssuer(set *params.Set, rng io.Reader) (*TokenIssuer, error) {
	return token.GenerateIssuer(set, rng)
}

// TokenIssuerFromKey wraps an existing (persisted) issuance key.
func TokenIssuerFromKey(set *params.Set, key *bls.PrivateKey) (*TokenIssuer, error) {
	return token.NewIssuer(set, key)
}

// NewTokenVerifier builds the redemption gate for an issuance public
// key over led (NewTokenLedger / OpenTokenLedger).
func NewTokenVerifier(set *params.Set, pub bls.PublicKey, led *TokenLedger) *TokenVerifier {
	return token.NewVerifier(set, pub, led)
}

// NewTokenLedger returns an in-memory double-spend set (state lost on
// restart — fine for relays fronting a durable origin).
func NewTokenLedger() *TokenLedger { return token.NewLedger() }

// OpenTokenLedger opens the durable ledger backed by dir/spend.log,
// truncating a torn tail exactly like archive recovery.
func OpenTokenLedger(dir string) (*TokenLedger, TokenLedgerStats, error) {
	return token.OpenLedger(dir)
}

// OpenTokenWallet loads (creating if absent) a wallet file.
func OpenTokenWallet(path string, set *params.Set) (*TokenWallet, error) {
	return token.OpenWallet(path, set)
}

// NewTokenWallet returns an in-memory wallet.
func NewTokenWallet(set *params.Set) *TokenWallet { return token.NewWallet(set) }

// AuditTokenSpendLog inspects dir/spend.log without modifying it.
func AuditTokenSpendLog(dir string) (SpendLogStats, error) {
	return token.AuditSpendLog(dir)
}

// WithTokenIssuer enables POST /v1/tokens/issue + GET /v1/tokens/key.
func WithTokenIssuer(iss *TokenIssuer) timeserver.Option {
	return timeserver.WithTokenIssuer(iss)
}

// WithTokenGate requires a valid unspent token on /v1/catchup and
// /v1/stream.
func WithTokenGate(v *TokenVerifier) timeserver.Option {
	return timeserver.WithTokenGate(v)
}

// WithTokenWallet attaches a wallet to a TimeClient: gated requests
// spend from it transparently.
func WithTokenWallet(w *TokenWallet) timeserver.ClientOption {
	return timeserver.WithTokenWallet(w)
}

package tre_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"timedrelease/tre"
)

func beaconFixtures(t *testing.T) (*tre.Params, *tre.Scheme, *tre.ServerKeyPair, *tre.UserKeyPair, tre.RoundClock) {
	t.Helper()
	set := tre.MustPreset("Test160")
	scheme := tre.NewScheme(set)
	server, err := scheme.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	user, err := scheme.UserKeyGen(server.Pub, nil)
	if err != nil {
		t.Fatal(err)
	}
	clock := tre.MustRoundClock(time.Minute, time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	return set, scheme, server, user, clock
}

func TestEncryptToRoundArmoredRoundTrip(t *testing.T) {
	_, scheme, server, user, clock := beaconFixtures(t)
	msg := []byte("open at round 42")

	file, err := tre.EncryptToRound(nil, scheme, clock, server.Pub, user.Pub, 42, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !tre.IsArmored(file) {
		t.Fatal("EncryptToRound output is not armored")
	}

	rc, err := tre.DecodeArmored(scheme, file)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Round != 42 {
		t.Fatalf("round = %d, want 42", rc.Round)
	}
	wantLabel, _ := clock.Label(42)
	if rc.Label != wantLabel {
		t.Fatalf("label = %q, want %q", rc.Label, wantLabel)
	}
	if !rc.Clock.Equal(clock) {
		t.Fatal("decoded clock differs from the sender's")
	}

	// The round's label is served by a completely ordinary server.
	upd := scheme.IssueUpdate(server, rc.Label)
	got, err := tre.DecryptArmored(scheme, server.Pub, user, upd, file)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("decrypted %q, want %q", got, msg)
	}

	// The wrong round's update must not open it.
	otherLabel, _ := clock.Label(43)
	wrong := scheme.IssueUpdate(server, otherLabel)
	if _, err := tre.DecryptArmored(scheme, server.Pub, user, wrong, file); !errors.Is(err, tre.ErrLabelMismatch) {
		t.Fatalf("wrong-round decrypt: got %v, want ErrLabelMismatch", err)
	}
}

func TestEncryptToDuration(t *testing.T) {
	_, scheme, server, user, clock := beaconFixtures(t)
	now := time.Date(2026, 1, 1, 0, 10, 12, 0, time.UTC)

	round, file, err := tre.EncryptToDuration(nil, scheme, clock, server.Pub, user.Pub, now, 5*time.Minute, []byte("after five minutes"))
	if err != nil {
		t.Fatal(err)
	}
	// now+5m = 00:15:12 → first boundary after is round 16 (00:16:00).
	if round != 16 {
		t.Fatalf("round = %d, want 16", round)
	}
	rc, err := tre.DecodeArmored(scheme, file)
	if err != nil {
		t.Fatal(err)
	}
	start, _ := clock.Time(round)
	if start.Before(now.Add(5 * time.Minute)) {
		t.Fatalf("round %d opens at %s, before now+5m", round, start)
	}
	upd := scheme.IssueUpdate(server, rc.Label)
	got, err := tre.DecryptArmored(scheme, server.Pub, user, upd, file)
	if err != nil || !bytes.Equal(got, []byte("after five minutes")) {
		t.Fatalf("decrypt: %q, %v", got, err)
	}
}

func TestDecodeArmoredRejectsWrongParams(t *testing.T) {
	_, scheme, server, user, clock := beaconFixtures(t)
	file, err := tre.EncryptToRound(nil, scheme, clock, server.Pub, user.Pub, 1, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	other := tre.NewScheme(tre.MustPreset("SS512"))
	if _, err := tre.DecodeArmored(other, file); !errors.Is(err, tre.ErrParamsMismatch) {
		t.Fatalf("got %v, want ErrParamsMismatch", err)
	}
	if _, err := tre.DecodeArmored(scheme, []byte("plain text")); !errors.Is(err, tre.ErrNotArmored) {
		t.Fatalf("got %v, want ErrNotArmored", err)
	}
}

// Beacon mode composes with the threshold deployment: encrypt to a
// round under the GROUP key, combine a quorum's partials for the
// round's label, decrypt the armored file — receivers cannot tell a
// threshold beacon from a single-server one.
func TestEncryptToRoundAgainstThresholdQuorum(t *testing.T) {
	set := tre.MustPreset("Test160")
	scheme := tre.NewScheme(set)
	setup, err := tre.ThresholdDeal(set, nil, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	user, err := scheme.UserKeyGen(setup.GroupPub, nil)
	if err != nil {
		t.Fatal(err)
	}
	clock := tre.MustRoundClock(time.Minute, time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	msg := []byte("threshold beacon round 9")

	file, err := tre.EncryptToRound(nil, scheme, clock, setup.GroupPub, user.Pub, 9, msg)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := tre.DecodeArmored(scheme, file)
	if err != nil {
		t.Fatal(err)
	}
	partials := []tre.PartialUpdate{
		tre.IssuePartialUpdate(set, setup.Shares[1], rc.Label),
		tre.IssuePartialUpdate(set, setup.Shares[2], rc.Label),
	}
	upd, err := tre.CombinePartialUpdates(set, setup.GroupPub, partials, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tre.DecryptArmored(scheme, setup.GroupPub, user, upd, file)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("decrypt via quorum: %q, %v", got, err)
	}
}

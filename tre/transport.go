package tre

import (
	"context"
	"io"
	"net/http"
	"time"

	"timedrelease/internal/archive"
	"timedrelease/internal/hibe"
	"timedrelease/internal/obs"
	"timedrelease/internal/resilient"
	"timedrelease/internal/timefmt"
	"timedrelease/internal/timeserver"
	"timedrelease/internal/wire"
)

// Observability (see docs/OBSERVABILITY.md).
type (
	// Metrics is a registry of counters, gauges and latency histograms;
	// its Handler serves the /metrics JSON snapshot.
	Metrics = obs.Registry
	// EventLogger emits structured one-line JSON events.
	EventLogger = obs.Logger
)

// NewMetrics returns an empty metric registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// NewEventLogger returns a logger writing JSON event lines to w.
func NewEventLogger(w io.Writer) *EventLogger { return obs.NewLogger(w) }

// Time labels and schedules.
type (
	// Schedule carves time into fixed-width epochs with canonical
	// RFC 3339 labels.
	Schedule = timefmt.Schedule
)

// NewSchedule returns a schedule with the given epoch width (must
// divide 24h).
func NewSchedule(granularity time.Duration) (Schedule, error) {
	return timefmt.NewSchedule(granularity)
}

// MustSchedule is NewSchedule for known-good constants.
func MustSchedule(granularity time.Duration) Schedule {
	return timefmt.MustSchedule(granularity)
}

// The passive time server and its verifying client.
type (
	// TimeServer publishes one self-authenticating update per epoch and
	// keeps the public archive; request handling cannot reach the signing
	// key.
	TimeServer = timeserver.Server
	// TimeClient fetches updates and verifies every one against a pinned
	// server key before use.
	TimeClient = timeserver.Client
	// Archive stores published updates (see NewMemoryArchive /
	// OpenDirArchive).
	Archive = archive.Archive
	// DurableArchive is the disk-backed archive: an append-only,
	// checksummed log that survives restarts; recovery truncates torn
	// tails and re-verifies every update against the server key.
	DurableArchive = archive.Log
	// RecoverStats describes what durable-archive recovery found and
	// repaired.
	RecoverStats = archive.RecoverStats
	// ArchiveAuditReport is the outcome of an offline archive replay
	// (trectl archive verify).
	ArchiveAuditReport = archive.AuditReport
)

// Time-server errors.
var (
	ErrNotYetPublished = timeserver.ErrNotYetPublished
	ErrBadUpdate       = timeserver.ErrBadUpdate
	ErrFutureLabel     = timeserver.ErrFutureLabel
)

// PartialError reports a degraded CatchUp: the verified updates were
// returned, and this error names the labels that could not be fetched
// (errors.As to read them; errors.Is sees through to the per-label
// causes).
type PartialError = timeserver.PartialError

// RetryPolicy governs the client's transport-level retries (capped
// exponential backoff with jitter, per-attempt timeouts).
type RetryPolicy = timeserver.RetryPolicy

// Retry policies: the client uses DefaultRetry unless WithRetry says
// otherwise; NoRetry fails fast.
var (
	DefaultRetry = timeserver.DefaultRetry
	NoRetry      = timeserver.NoRetry
)

// WithRetry substitutes the client's retry policy.
func WithRetry(p RetryPolicy) timeserver.ClientOption { return timeserver.WithRetry(p) }

// NewTimeServer creates a passive time server.
func NewTimeServer(set *Params, key *ServerKeyPair, sched Schedule, opts ...timeserver.Option) *TimeServer {
	return timeserver.NewServer(set, key, sched, opts...)
}

// WithArchive substitutes the server's update archive.
func WithArchive(a Archive) timeserver.Option { return timeserver.WithArchive(a) }

// WithClock substitutes the server's time source (tests, simulations).
func WithClock(clock func() time.Time) timeserver.Option { return timeserver.WithClock(clock) }

// WithMetrics instruments the server against a metric registry.
func WithMetrics(m *Metrics) timeserver.Option { return timeserver.WithMetrics(m) }

// WithLogger emits the server's structured events to l.
func WithLogger(l *EventLogger) timeserver.Option { return timeserver.WithLogger(l) }

// Relay is a stateless fan-out node: it subscribes to an upstream
// server (or relay) through a verifying TimeClient, checks each update
// once against the pinned server key, and re-serves the identical
// public HTTP surface downstream. It holds no secret material — a
// relay can withhold updates but never forge one, because updates are
// self-authenticating.
type Relay = timeserver.Relay

// NewRelay builds a relay over an upstream verifying client; the
// client's pinned key is the relay's trust anchor.
func NewRelay(upstream *TimeClient, sched Schedule, opts ...timeserver.RelayOption) *Relay {
	return timeserver.NewRelay(upstream, sched, opts...)
}

// RelayWithArchive substitutes the relay's local update store.
func RelayWithArchive(a Archive) timeserver.RelayOption { return timeserver.RelayWithArchive(a) }

// RelayWithMetrics instruments the relay against a metric registry.
func RelayWithMetrics(m *Metrics) timeserver.RelayOption { return timeserver.RelayWithMetrics(m) }

// RelayWithLogger emits the relay's structured events to l.
func RelayWithLogger(l *EventLogger) timeserver.RelayOption { return timeserver.RelayWithLogger(l) }

// RelayWithRetry substitutes the relay's upstream reconnect backoff.
func RelayWithRetry(p RetryPolicy) timeserver.RelayOption { return timeserver.RelayWithRetry(p) }

// NewHTTPServer wraps a handler in an http.Server with production
// limits (header-read timeout, idle timeout, header size cap) suited
// to the long-lived /v1/wait and /v1/stream connections.
func NewHTTPServer(h http.Handler, readHeaderTimeout time.Duration) *http.Server {
	return timeserver.NewHTTPServer(h, readHeaderTimeout)
}

// TimeClientOption configures NewTimeClient (WithHTTPClient,
// WithClientMetrics, WithoutCache, WithRetry, WithTokenWallet, ...).
type TimeClientOption = timeserver.ClientOption

// NewTimeClient creates a client pinned to the given server public key.
func NewTimeClient(baseURL string, set *Params, spub ServerPublicKey, opts ...TimeClientOption) *TimeClient {
	return timeserver.NewClient(baseURL, set, spub, opts...)
}

// WithHTTPClient substitutes the client's HTTP transport.
func WithHTTPClient(h *http.Client) timeserver.ClientOption {
	return timeserver.WithHTTPClient(h)
}

// WithClientMetrics instruments the client against a metric registry.
func WithClientMetrics(m *Metrics) timeserver.ClientOption {
	return timeserver.WithClientMetrics(m)
}

// WithoutCache disables the client's verified-update cache (every
// fetch hits the network and re-verifies).
func WithoutCache() timeserver.ClientOption { return timeserver.WithoutCache() }

// FetchBootstrap retrieves (params, server key, schedule) for first-time
// setup; authenticate the key out of band before pinning.
func FetchBootstrap(ctx context.Context, baseURL string, h *http.Client) (*Params, ServerPublicKey, Schedule, error) {
	return timeserver.FetchBootstrap(ctx, baseURL, h)
}

// NewMemoryArchive returns an in-memory update archive.
func NewMemoryArchive() Archive { return archive.NewMemory() }

// OpenDirArchive opens (or creates) the durable archive in dir and
// recovers it: torn tails (crash mid-append) are truncated away and,
// when verify is non-nil, every replayed update is re-checked against
// the server key before it is served. Recovery details are available
// via the returned archive's Stats.
func OpenDirArchive(dir string, set *Params, verify func(KeyUpdate) bool) (*DurableArchive, error) {
	var opts []archive.LogOption
	if verify != nil {
		opts = append(opts, archive.WithVerifier(verify))
	}
	return archive.OpenDir(dir, wire.NewCodec(set), opts...)
}

// AuditArchiveDir replays the log in dir offline (read-only),
// classifying every record as intact, torn or invalid. verify may be
// nil to run structural checks only.
func AuditArchiveDir(dir string, set *Params, verify func(KeyUpdate) bool) (ArchiveAuditReport, error) {
	return archive.AuditDir(dir, wire.NewCodec(set), verify)
}

// Wire encodings.
type (
	// Codec marshals keys, updates, ciphertexts and envelopes.
	Codec = wire.Codec
	// Envelope is the application-level message wrapper (optional label +
	// ciphertext payload).
	Envelope = wire.Envelope
	// EnvelopeKind tags the ciphertext variant inside an envelope.
	EnvelopeKind = wire.Kind
)

// Envelope kinds.
const (
	KindBasic  = wire.KindBasic
	KindCCA    = wire.KindCCA
	KindREACT  = wire.KindREACT
	KindHybrid = wire.KindHybrid
)

// NewCodec returns a codec for the parameter set.
func NewCodec(set *Params) *Codec { return wire.NewCodec(set) }

// Missing-update resilience (paper §6 future work): a HIBE time tree
// whose per-epoch publication covers ALL past epochs in O(log N) keys.
type (
	// ResilientScheme is the time-tree scheme.
	ResilientScheme = resilient.Scheme
	// TreeRootKey is the time server's HIBE root key.
	TreeRootKey = hibe.RootKey
	// TreeNodeKey is a published (or derived) subtree key bundle.
	TreeNodeKey = hibe.NodeKey
	// TreeCiphertext is a ciphertext addressed to one epoch leaf.
	TreeCiphertext = hibe.Ciphertext
)

// ErrNotCovered reports that the published cover does not reach the
// requested epoch yet.
var ErrNotCovered = resilient.ErrNotCovered

// NewResilientScheme returns a time-tree scheme over 2^depth epochs.
func NewResilientScheme(set *Params, depth int) (*ResilientScheme, error) {
	return resilient.NewScheme(set, depth)
}

package tre

import (
	"timedrelease/internal/idtre"
	"timedrelease/internal/multiserver"
	"timedrelease/internal/policylock"
)

// Identity-based timed release encryption (paper §5.2). The same time
// server and key updates serve both TRE and ID-TRE; the trade-off is
// inherent key escrow (the server can decrypt).
type (
	// IDScheme exposes the ID-TRE algorithms.
	IDScheme = idtre.Scheme
	// IDUserPrivateKey is an extracted identity key s·H1(ID).
	IDUserPrivateKey = idtre.UserPrivateKey
	// IDCiphertext is the ID-TRE ciphertext.
	IDCiphertext = idtre.Ciphertext
	// IDCCACiphertext is the FO-transformed ID-TRE ciphertext.
	IDCCACiphertext = idtre.CCACiphertext
)

// NewIDScheme returns an ID-TRE instance over the parameter set.
func NewIDScheme(set *Params) *IDScheme { return idtre.NewScheme(set) }

// Multi-server timed release encryption (paper §5.3.5): decryption
// requires the updates of ALL chosen servers.
type (
	// MultiScheme exposes the multi-server algorithms.
	MultiScheme = multiserver.Scheme
	// ServerGroup is the ordered list of chosen time servers.
	ServerGroup = multiserver.ServerGroup
	// MultiUserKeyPair is a receiver's key for a server group.
	MultiUserKeyPair = multiserver.UserKeyPair
	// MultiUserPublicKey is (aG, a·Σ sᵢGᵢ).
	MultiUserPublicKey = multiserver.UserPublicKey
	// MultiCiphertext carries one header point per server.
	MultiCiphertext = multiserver.Ciphertext
)

// NewMultiScheme returns a multi-server TRE instance.
func NewMultiScheme(set *Params) *MultiScheme { return multiserver.NewScheme(set) }

// Policy-lock encryption (paper §5.3.2): release is gated on witness
// attestations of arbitrary conditions instead of the passage of time.
type (
	// PolicyScheme exposes the policy-lock algorithms.
	PolicyScheme = policylock.Scheme
	// Policy is a monotone DNF access structure.
	Policy = policylock.Policy
	// Attestation is the witness's signature on a condition.
	Attestation = policylock.Attestation
	// PolicyCiphertext is a policy-locked message.
	PolicyCiphertext = policylock.Ciphertext
)

// ErrPolicyUnsatisfied is returned when no policy clause is fully
// attested.
var ErrPolicyUnsatisfied = policylock.ErrPolicyUnsatisfied

// NewPolicyScheme returns a policy-lock instance.
func NewPolicyScheme(set *Params) *PolicyScheme { return policylock.NewScheme(set) }

// ParsePolicy parses "a & b | c" (AND binds tighter than OR).
func ParsePolicy(expr string) (Policy, error) { return policylock.ParsePolicy(expr) }

// ThresholdPolicy builds the k-of-n policy over the conditions as a DNF
// expansion (refused beyond 256 clauses).
func ThresholdPolicy(k int, conditions []string) (Policy, error) {
	return policylock.Threshold(k, conditions)
}

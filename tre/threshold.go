package tre

import (
	"io"

	"timedrelease/internal/curve"
	"timedrelease/internal/threshold"
)

// k-of-n threshold time servers (extension; see DESIGN.md): the server
// secret is Shamir-shared, each server publishes a partial update, and
// any k partials interpolate into the ordinary update s·H1(T) — byte-
// identical to the single-server one, so receivers are unchanged. This
// is the availability-oriented dual of the §5.3.5 N-of-N construction.
type (
	// ThresholdSetup is the output of the dealing ceremony.
	ThresholdSetup = threshold.Setup
	// ThresholdShare is one server's signing share.
	ThresholdShare = threshold.Share
	// PartialUpdate is one server's per-epoch contribution.
	PartialUpdate = threshold.PartialUpdate
)

// ErrBadCombination reports a threshold combination that failed the
// group self-authentication check.
var ErrBadCombination = threshold.ErrBadCombination

// QuorumError reports a combine or quorum fan-out that could not gather
// k usable partials; errors.As to read the shortfall and per-shard
// causes.
type QuorumError = threshold.QuorumError

// ThresholdDeal runs the trusted dealing ceremony for k-of-n servers.
func ThresholdDeal(set *Params, rng io.Reader, k, n int) (*ThresholdSetup, error) {
	return threshold.Deal(set, rng, k, n)
}

// IssuePartialUpdate produces one server's partial update for a label.
func IssuePartialUpdate(set *Params, share ThresholdShare, label string) PartialUpdate {
	return threshold.IssuePartial(set, share, label)
}

// VerifyPartialUpdate checks a partial against the issuing server's
// public share point (ThresholdShare.Pub).
func VerifyPartialUpdate(set *Params, sharePub curve.Point, pu PartialUpdate) bool {
	return threshold.VerifyPartial(set, sharePub, pu)
}

// CombinePartialUpdates interpolates any k verified partials into the
// ordinary key update and checks it against the group public key.
func CombinePartialUpdates(set *Params, groupPub ServerPublicKey, partials []PartialUpdate, k int) (KeyUpdate, error) {
	return threshold.Combine(set, groupPub, partials, k)
}

// Point is a point of the pairing group G1, as it appears inside public
// keys, updates and ciphertexts.
type Point = curve.Point

// Shard pairs a share index with a verifying client pinned to that
// shard's public key.
type Shard = threshold.Shard

// QuorumClient fetches partial updates from threshold shards
// concurrently and combines the first k that verify.
type QuorumClient = threshold.QuorumClient

// ShardServerKey converts a dealt share into the key pair its (ordinary,
// unmodified) time-server process runs with.
func ShardServerKey(set *Params, share ThresholdShare) *ServerKeyPair {
	return threshold.ShardServerKey(set, share)
}

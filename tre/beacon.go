package tre

import (
	"fmt"
	"io"
	"time"

	"timedrelease/internal/beacon"
	"timedrelease/internal/wire"
)

// Beacon mode (drand/tlock-style rounds): instead of naming a release
// instant, a sender names a round of a round clock — a fixed round
// duration plus a genesis time. Round r's release label is exactly the
// schedule label of genesis + r·period, so beacon mode runs on
// completely unmodified time servers (single or threshold); only the
// addressing and the at-rest file format change.

type (
	// RoundClock maps round numbers to release labels and back.
	RoundClock = beacon.Clock
	// ArmoredCiphertext is a decoded armored round-ciphertext file:
	// the round, the sender's clock parameters and the wire envelope.
	ArmoredCiphertext = wire.Armored
)

// Beacon-mode errors.
var (
	// ErrBeforeGenesis reports a label or instant earlier than round 0.
	ErrBeforeGenesis = beacon.ErrBeforeGenesis
	// ErrRoundRange reports an unaddressable round number.
	ErrRoundRange = beacon.ErrRoundRange
	// ErrNotArmored reports input without the armor framing.
	ErrNotArmored = wire.ErrNotArmored
	// ErrParamsMismatch reports an armored file produced under a
	// different parameter set.
	ErrParamsMismatch = wire.ErrParamsMismatch
)

// NewRoundClock returns a round clock with the given period and
// genesis. The period must divide 24h and the genesis must lie exactly
// on the period grid.
func NewRoundClock(period time.Duration, genesis time.Time) (RoundClock, error) {
	return beacon.New(period, genesis)
}

// MustRoundClock is NewRoundClock for known-good constants.
func MustRoundClock(period time.Duration, genesis time.Time) RoundClock {
	return beacon.Must(period, genesis)
}

// IsArmored reports whether data looks like an armored round
// ciphertext.
func IsArmored(data []byte) bool { return wire.IsArmored(data) }

// EncryptToRound encrypts msg (CCA mode) so it opens at the given
// round, returning the armored ciphertext file. The file embeds the
// clock parameters and the round number, so the receiver reconstructs
// the release label locally.
func EncryptToRound(rng io.Reader, sc *Scheme, clock RoundClock, spub ServerPublicKey, upub UserPublicKey, round uint64, msg []byte) ([]byte, error) {
	label, err := clock.Label(round)
	if err != nil {
		return nil, err
	}
	ct, err := sc.EncryptCCA(rng, spub, upub, label, msg)
	if err != nil {
		return nil, err
	}
	codec := wire.NewCodec(sc.Set)
	return codec.EncodeArmored(wire.Armored{
		Round:    round,
		Period:   clock.Period(),
		Genesis:  clock.Genesis(),
		Envelope: codec.SealCCA(label, ct),
	}), nil
}

// EncryptToDuration encrypts msg to the earliest round opening at or
// after now+d ("open after d"), returning the chosen round alongside
// the armored file.
func EncryptToDuration(rng io.Reader, sc *Scheme, clock RoundClock, spub ServerPublicKey, upub UserPublicKey, now time.Time, d time.Duration, msg []byte) (uint64, []byte, error) {
	round, err := clock.After(now, d)
	if err != nil {
		return 0, nil, err
	}
	out, err := EncryptToRound(rng, sc, clock, spub, upub, round, msg)
	if err != nil {
		return 0, nil, err
	}
	return round, out, nil
}

// RoundCiphertext is a fully decoded armored round ciphertext, ready
// for decryption once the round's update is published.
type RoundCiphertext struct {
	Round uint64
	Clock RoundClock
	Label string // release label derived from (clock, round)
	CCA   *CCACiphertext
}

// DecodeArmored parses an armored round-ciphertext file, checks its
// parameter fingerprint against the scheme, rebuilds the sender's
// round clock, and derives the release label. The envelope's optional
// label, when present, must agree with the derived one.
func DecodeArmored(sc *Scheme, data []byte) (*RoundCiphertext, error) {
	codec := wire.NewCodec(sc.Set)
	a, err := codec.DecodeArmored(data)
	if err != nil {
		return nil, err
	}
	clock, err := beacon.New(a.Period, a.Genesis)
	if err != nil {
		return nil, fmt.Errorf("tre: armored clock parameters: %w", err)
	}
	label, err := clock.Label(a.Round)
	if err != nil {
		return nil, fmt.Errorf("tre: armored round: %w", err)
	}
	env, err := codec.UnmarshalEnvelope(a.Envelope)
	if err != nil {
		return nil, err
	}
	if env.Label != "" && env.Label != label {
		return nil, fmt.Errorf("tre: armored envelope label %q disagrees with round %d (%q)", env.Label, a.Round, label)
	}
	if env.Kind != KindCCA {
		return nil, fmt.Errorf("tre: armored envelope kind %s not supported", env.Kind)
	}
	ct, err := codec.UnmarshalCCACiphertext(env.Payload)
	if err != nil {
		return nil, err
	}
	return &RoundCiphertext{Round: a.Round, Clock: clock, Label: label, CCA: ct}, nil
}

// DecryptArmored decodes an armored file and decrypts it with the
// round's key update (fetched by the caller — from a single server or
// a threshold quorum; the update's label must be the round's label).
func DecryptArmored(sc *Scheme, spub ServerPublicKey, key *UserKeyPair, upd KeyUpdate, data []byte) ([]byte, error) {
	rc, err := DecodeArmored(sc, data)
	if err != nil {
		return nil, err
	}
	if upd.Label != rc.Label {
		return nil, fmt.Errorf("tre: update label %q is not round %d's label %q: %w", upd.Label, rc.Round, rc.Label, ErrLabelMismatch)
	}
	return sc.DecryptCCA(spub, key, upd, rc.CCA)
}

// Package tre is the public API of this repository: a complete
// implementation of Chan–Blake "Scalable, Server-Passive, User-Anonymous
// Timed Release Cryptography" (ICDCS 2005).
//
// It re-exports the core TRE scheme and every companion facility —
// parameters, the passive time server and verifying client, the
// identity-based variant, multi-server encryption, policy locks, the
// missing-update-resilient time tree, and wire encodings — so downstream
// users import exactly one module path. The implementations live in
// internal/ packages, one per subsystem; see DESIGN.md for the map.
//
// # Quickstart
//
//	set := tre.MustPreset("SS512")
//	scheme := tre.NewScheme(set)
//
//	server, _ := scheme.ServerKeyGen(nil)     // the time server, once
//	alice, _ := scheme.UserKeyGen(server.Pub, nil)
//
//	// Sender: no interaction with the server.
//	ct, _ := scheme.EncryptCCA(nil, server.Pub, alice.Pub,
//	    "2027-01-01T00:00:00Z", []byte("happy new year"))
//
//	// Time passes; the server publishes one update for everyone.
//	upd := scheme.IssueUpdate(server, "2027-01-01T00:00:00Z")
//
//	// Receiver: private key + public update.
//	msg, _ := scheme.DecryptCCA(server.Pub, alice, upd, ct)
//
// Security rests on the Bilinear Diffie-Hellman assumption in the
// random-oracle model. Two pairing backends are available: the paper's
// supersingular curve with a Type-1 Tate pairing (presets Test160,
// SS512, SS1024, SS1536) and a Type-3 BLS12-381 port with the optimal
// ate pairing (preset "BLS12-381", or ResolvePreset with backend
// "bls12381") — stronger and faster, but without the inherently
// symmetric variant schemes; docs/BACKENDS.md has the decision table.
// The implementation is NOT constant-time; see README.md for the
// threat model.
package tre

import (
	"fmt"
	"io"

	"timedrelease/internal/core"
	"timedrelease/internal/params"
)

// Core scheme types (paper §5.1, §5.3).
type (
	// Params is a validated parameter set: the primes (p, q), the curve,
	// the pairing and the canonical generator.
	Params = params.Set
	// Scheme exposes the TRE algorithms over one parameter set.
	Scheme = core.Scheme
	// ServerKeyPair is the time server's key material.
	ServerKeyPair = core.ServerKeyPair
	// ServerPublicKey is PK_S = (G, sG).
	ServerPublicKey = core.ServerPublicKey
	// UserKeyPair is a receiver's key material.
	UserKeyPair = core.UserKeyPair
	// UserPublicKey is PK_U = (aG, a·sG).
	UserPublicKey = core.UserPublicKey
	// KeyUpdate is the self-authenticating time-bound key update s·H1(T).
	KeyUpdate = core.KeyUpdate
	// Ciphertext is the basic (CPA) ciphertext ⟨rG, M ⊕ H2(K)⟩.
	Ciphertext = core.Ciphertext
	// CCACiphertext is the Fujisaki–Okamoto-transformed ciphertext.
	CCACiphertext = core.CCACiphertext
	// REACTCiphertext is the REACT-transformed ciphertext.
	REACTCiphertext = core.REACTCiphertext
	// HybridCiphertext is the AES-CTR+HMAC bulk-message ciphertext.
	HybridCiphertext = core.HybridCiphertext
	// EpochKey is the key-insulation credential a·I_T (§5.3.3).
	EpochKey = core.EpochKey
)

// Sentinel errors.
var (
	ErrInvalidPublicKey  = core.ErrInvalidPublicKey
	ErrInvalidUpdate     = core.ErrInvalidUpdate
	ErrInvalidCiphertext = core.ErrInvalidCiphertext
	ErrLabelMismatch     = core.ErrLabelMismatch
	ErrAuthFailed        = core.ErrAuthFailed
	ErrUnsafeLabel       = core.ErrUnsafeLabel
)

// NewScheme returns a TRE scheme over the parameter set.
func NewScheme(set *Params) *Scheme { return core.NewScheme(set) }

// Preset returns an embedded parameter set by name: "Test160" (fast,
// INSECURE, for tests), "SS512" (the paper-era size), "SS1024",
// "SS1536" (conservative modern), or "BLS12-381" (Type-3 asymmetric,
// ~128-bit security and roughly an order of magnitude faster).
func Preset(name string) (*Params, error) { return params.Preset(name) }

// PresetBLS12381 names the Type-3 BLS12-381 parameter set.
const PresetBLS12381 = params.PresetBLS12381

// ResolvePreset resolves the CLI -preset/-backend flag pair. An empty
// or "symmetric" backend keeps the named preset; "bls12381" selects the
// BLS12-381 preset (overriding -preset, whose symmetric default would
// otherwise mask the choice); anything else is an error. This keeps
// existing -preset invocations working while letting every tool opt
// into the asymmetric backend with one flag.
func ResolvePreset(preset, backendName string) (*Params, error) {
	switch backendName {
	case "", "symmetric":
		return Preset(preset)
	case "bls12381":
		return Preset(PresetBLS12381)
	default:
		return nil, fmt.Errorf("tre: unknown backend %q (want symmetric or bls12381)", backendName)
	}
}

// MustPreset is Preset for known-good names; panics on error.
func MustPreset(name string) *Params { return params.MustPreset(name) }

// PresetNames lists the embedded parameter sets.
func PresetNames() []string { return params.PresetNames() }

// GenerateParams creates a fresh parameter set with a pBits-bit field
// prime and a qBits-bit group order (e.g. 1536, 256). Pass a nil reader
// to use crypto/rand.
func GenerateParams(rng io.Reader, pBits, qBits int) (*Params, error) {
	return params.Generate(rng, pBits, qBits)
}

// UnmarshalParams parses the self-describing parameter format produced
// by (*Params).Marshal.
func UnmarshalParams(data []byte) (*Params, error) { return params.Unmarshal(data) }

package tre_test

import (
	"fmt"
	"log"

	"timedrelease/tre"
)

// The complete paper flow: passive server, one broadcast update, both
// keys needed to decrypt.
func Example() {
	set := tre.MustPreset("Test160")
	scheme := tre.NewScheme(set)

	server, err := scheme.ServerKeyGen(nil)
	if err != nil {
		log.Fatal(err)
	}
	alice, err := scheme.UserKeyGen(server.Pub, nil)
	if err != nil {
		log.Fatal(err)
	}

	const releaseAt = "2027-01-01T00:00:00Z"
	ct, err := scheme.EncryptCCA(nil, server.Pub, alice.Pub, releaseAt, []byte("happy new year"))
	if err != nil {
		log.Fatal(err)
	}

	// The instant arrives: one self-authenticating update for everyone.
	upd := scheme.IssueUpdate(server, releaseAt)
	fmt.Println("update verifies:", scheme.VerifyUpdate(server.Pub, upd))

	msg, err := scheme.DecryptCCA(server.Pub, alice, upd, ct)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("opened: %s\n", msg)
	// Output:
	// update verifies: true
	// opened: happy new year
}

// Key insulation (§5.3.3): the insecure device holds only the epoch key.
func ExampleScheme_DeriveEpochKey() {
	set := tre.MustPreset("Test160")
	scheme := tre.NewScheme(set)
	server, _ := scheme.ServerKeyGen(nil)
	alice, _ := scheme.UserKeyGen(server.Pub, nil)

	const label = "2026-07-05T12:00:00Z"
	ct, _ := scheme.Encrypt(nil, server.Pub, alice.Pub, label, []byte("for the laptop"))

	upd := scheme.IssueUpdate(server, label)
	epochKey := scheme.DeriveEpochKey(alice, upd) // on the smart card

	msg, _ := scheme.DecryptWithEpochKey(epochKey, ct) // on the laptop
	fmt.Printf("%s\n", msg)
	// Output:
	// for the laptop
}

// Policy locks (§5.3.2): witness-attested conditions instead of time.
func ExamplePolicyScheme() {
	set := tre.MustPreset("Test160")
	scheme := tre.NewScheme(set)
	pl := tre.NewPolicyScheme(set)
	witness, _ := scheme.ServerKeyGen(nil)
	alice, _ := scheme.UserKeyGen(witness.Pub, nil)

	policy, _ := tre.ParsePolicy("ceo approves & cfo approves | emergency")
	ct, _ := pl.Encrypt(nil, witness.Pub, alice.Pub, policy, []byte("break glass"))

	atts := []tre.Attestation{pl.Attest(witness, "emergency")}
	msg, _ := pl.Decrypt(alice, atts, ct)
	fmt.Printf("%s\n", msg)
	// Output:
	// break glass
}

// Threshold time servers: any 2 of 3 shards release the epoch.
func ExampleThresholdDeal() {
	set := tre.MustPreset("Test160")
	scheme := tre.NewScheme(set)
	setup, _ := tre.ThresholdDeal(set, nil, 2, 3)
	alice, _ := scheme.UserKeyGen(setup.GroupPub, nil)

	const label = "2027-01-01T00:00:00Z"
	ct, _ := scheme.EncryptCCA(nil, setup.GroupPub, alice.Pub, label, []byte("quorum-released"))

	partials := []tre.PartialUpdate{
		tre.IssuePartialUpdate(set, setup.Shares[0], label),
		tre.IssuePartialUpdate(set, setup.Shares[2], label),
	}
	upd, _ := tre.CombinePartialUpdates(set, setup.GroupPub, partials, 2)
	msg, _ := scheme.DecryptCCA(setup.GroupPub, alice, upd, ct)
	fmt.Printf("%s\n", msg)
	// Output:
	// quorum-released
}

package archive

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

var testFrameMagic = []byte("TRETEST\n")

func TestFrameLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "frames.log")
	fl, stats, err := OpenFrameLog(path, testFrameMagic, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 0 || stats.Truncated {
		t.Fatalf("fresh log stats: %+v", stats)
	}
	want := [][]byte{[]byte("one"), []byte("two"), []byte("three")}
	for _, p := range want {
		if err := fl.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	fl.Close()

	var got [][]byte
	fl2, stats, err := OpenFrameLog(path, testFrameMagic, func(p []byte) error {
		got = append(got, append([]byte{}, p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fl2.Close()
	if stats.Records != len(want) || stats.Truncated {
		t.Fatalf("reopen stats: %+v", stats)
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Fatalf("record %d: got %q want %q", i, got[i], want[i])
		}
	}
}

func TestFrameLogTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "frames.log")
	fl, _, err := OpenFrameLog(path, testFrameMagic, nil)
	if err != nil {
		t.Fatal(err)
	}
	fl.Append([]byte("keep"))
	fl.Append([]byte("lose"))
	fl.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o600); err != nil {
		t.Fatal(err)
	}

	var got [][]byte
	fl2, stats, err := OpenFrameLog(path, testFrameMagic, func(p []byte) error {
		got = append(got, append([]byte{}, p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Truncated || stats.Records != 1 || string(got[0]) != "keep" {
		t.Fatalf("torn recovery: stats %+v records %q", stats, got)
	}
	// Appends continue over the repaired tail and survive a reopen.
	if err := fl2.Append([]byte("again")); err != nil {
		t.Fatal(err)
	}
	fl2.Close()
	count := 0
	fl3, stats, err := OpenFrameLog(path, testFrameMagic, func([]byte) error { count++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	fl3.Close()
	if stats.Truncated || count != 2 {
		t.Fatalf("post-repair reopen: stats %+v count %d", stats, count)
	}
}

func TestFrameLogCallbackRejectionTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "frames.log")
	fl, _, err := OpenFrameLog(path, testFrameMagic, nil)
	if err != nil {
		t.Fatal(err)
	}
	fl.Append([]byte("good"))
	fl.Append([]byte("bad-semantics"))
	fl.Close()

	fl2, stats, err := OpenFrameLog(path, testFrameMagic, func(p []byte) error {
		if string(p) != "good" {
			return errors.New("rejected")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fl2.Close()
	if !stats.Truncated || stats.Records != 1 {
		t.Fatalf("callback rejection: %+v", stats)
	}
}

func TestFrameLogWrongMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "frames.log")
	if err := os.WriteFile(path, []byte("NOTMINE\nxxxx"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenFrameLog(path, testFrameMagic, nil); !errors.Is(err, ErrBadFrameMagic) {
		t.Fatalf("wrong magic: %v", err)
	}
}

func TestReplayFramesReadOnly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "frames.log")
	// Missing file: empty stats, no error, no file created.
	stats, err := ReplayFrames(path, testFrameMagic, nil)
	if err != nil || stats.Records != 0 {
		t.Fatalf("missing file: %+v %v", stats, err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("read-only replay created the file")
	}
}

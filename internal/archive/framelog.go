package archive

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// FrameLog is the update log's durable substrate made reusable: an
// append-only file of crc-framed records behind a caller-chosen magic,
// with the same crash-tail discipline as the update log itself —
// every append is fsynced before it returns, and opening replays the
// intact prefix and truncates a torn tail instead of failing. The
// spend ledger (internal/token) persists redeemed-token IDs through
// it; the payload semantics stay entirely with the caller via the
// replay callback.
//
//	file   = magic ‖ record…
//	record = u32 len ‖ payload ‖ u32 crc   (crc32-IEEE over len ‖ payload)
type FrameLog struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// FrameLogStats describes what opening (or auditing) a frame log found.
type FrameLogStats struct {
	Records   int   // intact records replayed
	TornBytes int64 // bytes truncated (Open) or unreadable (ReplayFrames)
	Truncated bool  // whether a torn tail was found
}

// ErrBadFrameMagic reports a file that does not start with the
// caller's magic — a different log format, not a torn one.
var ErrBadFrameMagic = errors.New("archive: frame log has wrong magic")

// OpenFrameLog opens (creating if absent) the frame log at path and
// replays every intact record through replay, in append order. A
// record the callback rejects is treated exactly like a checksum
// failure: structural damage at that offset, so the file is truncated
// there and the log keeps serving the intact prefix. The returned log
// is ready for Append.
func OpenFrameLog(path string, magic []byte, replay func(payload []byte) error) (*FrameLog, FrameLogStats, error) {
	var stats FrameLogStats
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return nil, stats, fmt.Errorf("archive: opening frame log: %w", err)
	}
	end, err := replayFrames(f, magic, func(_ int64, payload []byte) error {
		if replay == nil {
			return nil
		}
		return replay(payload)
	}, &stats)
	if err != nil {
		f.Close()
		return nil, stats, err
	}
	// Drop the torn tail so the next append extends the intact prefix.
	if stats.Truncated {
		if err := f.Truncate(end); err != nil {
			f.Close()
			return nil, stats, fmt.Errorf("archive: truncating torn frame-log tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, stats, fmt.Errorf("archive: seeking frame log: %w", err)
	}
	return &FrameLog{f: f, path: path}, stats, nil
}

// Append durably appends one record: the payload is framed,
// checksummed, written and fsynced before Append returns. A failed
// append may leave a torn tail; it is never acknowledged, and the next
// Open truncates it.
func (fl *FrameLog) Append(payload []byte) error {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.f == nil {
		return errors.New("archive: frame log is closed")
	}
	return appendFrame(fl.f, payload)
}

// Path returns the file the log writes to.
func (fl *FrameLog) Path() string { return fl.path }

// Close releases the underlying file. Appends after Close fail.
func (fl *FrameLog) Close() error {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.f == nil {
		return nil
	}
	err := fl.f.Close()
	fl.f = nil
	return err
}

// ReplayFrames reads the frame log at path without opening it for
// writing: every intact record is handed to fn with its file offset.
// A missing file is an empty log. Used by audits (`trectl tokens
// verify`) that must not mutate the file they are inspecting — torn
// tails are reported in the stats, never repaired.
func ReplayFrames(path string, magic []byte, fn func(offset int64, payload []byte) error) (FrameLogStats, error) {
	var stats FrameLogStats
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return stats, nil
	}
	if err != nil {
		return stats, fmt.Errorf("archive: opening frame log: %w", err)
	}
	defer f.Close()
	_, err = replayFrames(f, magic, fn, &stats)
	return stats, err
}

// replayFrames reads magic ‖ record… from the current position,
// calling fn per intact record, and returns the offset of the first
// damaged byte (== file size when the log is clean). An empty file
// gets the magic written (fresh log); any other magic mismatch is
// ErrBadFrameMagic. fn returning an error marks structural damage at
// that record, ending the replay there.
func replayFrames(f *os.File, magic []byte, fn func(offset int64, payload []byte) error, stats *FrameLogStats) (int64, error) {
	info, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("archive: stat frame log: %w", err)
	}
	if info.Size() == 0 {
		// Fresh log: stamp the magic. Read-only replays never get here
		// (a missing file short-circuits earlier, and an existing file
		// has a size).
		if _, err := f.Write(magic); err != nil {
			return 0, fmt.Errorf("archive: writing frame-log magic: %w", err)
		}
		if err := f.Sync(); err != nil {
			return 0, fmt.Errorf("archive: syncing frame-log magic: %w", err)
		}
		return int64(len(magic)), nil
	}
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(f, head); err != nil || string(head) != string(magic) {
		return 0, ErrBadFrameMagic
	}
	offset := int64(len(magic))
	var lenBuf [4]byte
	crcBuf := make([]byte, 4)
	for offset < info.Size() {
		payload, recLen, err := readFrame(f, lenBuf[:], crcBuf)
		if err != nil {
			// Torn or corrupt from here on.
			stats.TornBytes = info.Size() - offset
			stats.Truncated = true
			return offset, nil
		}
		if fn != nil {
			if err := fn(offset, payload); err != nil {
				stats.TornBytes = info.Size() - offset
				stats.Truncated = true
				return offset, nil
			}
		}
		offset += recLen
		stats.Records++
	}
	return offset, nil
}

package archive

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"timedrelease/internal/backend"
	"timedrelease/internal/core"
	"timedrelease/internal/curve"
	"timedrelease/internal/wire"
)

// Checkpoint aggregates. Every interval records the durable log writes
// one checkpoint to a sidecar file, committing to the whole log prefix
// it has seen:
//
//	file       = magic ‖ record…
//	magic      = "TRECKPT1\n"
//	record     = u32 len ‖ payload ‖ u32 crc       (same framing as updates.log)
//	payload    = u32 count ‖ aggregate point ‖ 32-byte Merkle root
//
// count is the number of log records covered, aggregate is the sum of
// their signature points (a same-key BLS aggregate, internal/bls) and
// the root is the Merkle commitment over their wire payloads
// (commit.go). Range requests then need only the two checkpoints
// bracketing the range: aggregate(range) = prefix(hi) − prefix(lo),
// at most 2·(interval−1) point additions instead of one per record.
//
// The sidecar is DERIVED data. Recovery recomputes every checkpoint
// from the verified main log and rewrites any sidecar record that is
// torn, missing or disagrees — the log never serves an aggregate that
// was not just recomputed from records that passed the verifier, so a
// corrupted sidecar can cost a rebuild but never a wrong aggregate.

// checkpointName is the sidecar file inside an archive directory.
const checkpointName = "checkpoints.log"

// checkpointMagic identifies (and versions) the sidecar format.
var checkpointMagic = []byte("TRECKPT1\n")

// DefaultCheckpointInterval is the records-per-checkpoint default: 256
// keeps range aggregation under ~512 point additions while a year of
// minute epochs needs only ~2k checkpoints (~140 KiB on SS512).
const DefaultCheckpointInterval = 256

// checkpoint is one prefix commitment: the aggregate signature and
// Merkle root over the first count records of the log.
type checkpoint struct {
	count int
	agg   curve.Point
	root  [32]byte
}

// marshalCheckpoint encodes one checkpoint payload.
func marshalCheckpoint(codec *wire.Codec, c checkpoint) []byte {
	out := binary.BigEndian.AppendUint32(nil, uint32(c.count))
	out = codec.Set.B.AppendPoint(out, backend.G2, c.agg)
	return append(out, c.root[:]...)
}

// unmarshalCheckpoint decodes one checkpoint payload strictly.
func unmarshalCheckpoint(codec *wire.Codec, payload []byte) (checkpoint, error) {
	ptLen := codec.Set.B.PointLen(backend.G2)
	if len(payload) != 4+ptLen+32 {
		return checkpoint{}, errors.New("checkpoint payload size mismatch")
	}
	c := checkpoint{count: int(binary.BigEndian.Uint32(payload))}
	p, err := codec.Set.B.ParsePoint(backend.G2, payload[4:4+ptLen])
	if err != nil {
		return checkpoint{}, fmt.Errorf("checkpoint aggregate: %w", err)
	}
	c.agg = p
	copy(c.root[:], payload[4+ptLen:])
	return c, nil
}

// equalCheckpoint compares a parsed checkpoint with a recomputed one.
func equalCheckpoint(b backend.Backend, x, y checkpoint) bool {
	return x.count == y.count && b.Equal(backend.G2, x.agg, y.agg) && x.root == y.root
}

// resetAggregates recomputes the running aggregate, sortedness flag and
// expected checkpoint list from l.recs. Called under l.mu whenever the
// record list is rebuilt (Recover).
func (l *Log) resetAggregates() {
	b := l.codec.Set.B
	l.agg = b.Infinity(backend.G2)
	l.sorted = true
	for i, r := range l.recs {
		l.agg = b.Add(backend.G2, l.agg, r.point)
		if i > 0 && l.recs[i-1].label >= r.label {
			l.sorted = false
		}
	}
	l.ckpts = l.expectedCheckpoints()
}

// note folds one just-appended record into the serving state. Called
// under l.mu by Put, after the record is durable and indexed.
func (l *Log) note(u core.KeyUpdate, payload []byte) {
	if n := len(l.recs); n > 0 && l.recs[n-1].label >= u.Label {
		l.sorted = false
	}
	l.recs = append(l.recs, recMeta{label: u.Label, point: u.Point, leaf: LeafHash(payload)})
	l.agg = l.codec.Set.B.Add(backend.G2, l.agg, u.Point)
}

// currentCheckpoint commits to the entire record list seen so far.
func (l *Log) currentCheckpoint() checkpoint {
	leaves := make([][32]byte, len(l.recs))
	for i, r := range l.recs {
		leaves[i] = r.leaf
	}
	return checkpoint{count: len(l.recs), agg: l.agg, root: MerkleRoot(leaves)}
}

// appendCheckpoint durably appends one checkpoint to the sidecar and
// records it in the in-memory list.
func (l *Log) appendCheckpoint(c checkpoint) error {
	if err := appendFrame(l.ckptF, marshalCheckpoint(l.codec, c)); err != nil {
		return err
	}
	l.ckpts = append(l.ckpts, c)
	return nil
}

// expectedCheckpoints recomputes, from the (already verified) record
// list, every checkpoint the sidecar is supposed to contain.
func (l *Log) expectedCheckpoints() []checkpoint {
	if l.interval <= 0 {
		return nil
	}
	b := l.codec.Set.B
	var out []checkpoint
	agg := b.Infinity(backend.G2)
	leaves := make([][32]byte, 0, len(l.recs))
	for i, r := range l.recs {
		agg = b.Add(backend.G2, agg, r.point)
		leaves = append(leaves, r.leaf)
		if (i+1)%l.interval == 0 {
			out = append(out, checkpoint{count: i + 1, agg: agg, root: MerkleRoot(leaves)})
		}
	}
	return out
}

// recoverCheckpoints reconciles the sidecar with the recovered main
// log: structurally damaged or disagreeing sidecar records are
// truncated away and every missing checkpoint is rewritten from the
// verified records. Called under l.mu at the end of Recover; after it
// returns, the in-memory checkpoints and the sidecar agree with the
// main log exactly.
func (l *Log) recoverCheckpoints(stats *RecoverStats) error {
	start := time.Now()
	expected := l.expectedCheckpoints()
	l.ckpts = expected

	f := l.ckptF
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return fmt.Errorf("archive: sizing checkpoint sidecar: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("archive: seeking checkpoint sidecar: %w", err)
	}

	if size == 0 {
		if _, err := f.Write(checkpointMagic); err != nil {
			return fmt.Errorf("archive: writing checkpoint magic: %w", err)
		}
		if err := f.Sync(); err != nil {
			return fmt.Errorf("archive: syncing checkpoint magic: %w", err)
		}
		size = int64(len(checkpointMagic))
	} else {
		magic := make([]byte, len(checkpointMagic))
		if _, err := io.ReadFull(f, magic); err != nil || string(magic) != string(checkpointMagic) {
			// Not ours (or torn inside the magic): rebuild wholesale.
			if err := l.rewriteSidecar(expected); err != nil {
				return err
			}
			stats.CheckpointsRebuilt = len(expected)
			stats.Checkpoints = len(expected)
			stats.CheckpointRebuild = time.Since(start)
			return nil
		}
	}

	// Replay the sidecar, stopping at the first record that is torn or
	// disagrees with the recomputed checkpoints.
	goodOffset := int64(len(checkpointMagic))
	good := 0
	var lenBuf [4]byte
	crcBuf := make([]byte, 4)
	for goodOffset < size && good < len(expected) {
		payload, recLen, err := readFrame(f, lenBuf[:], crcBuf)
		if err != nil {
			break
		}
		ck, err := unmarshalCheckpoint(l.codec, payload)
		if err != nil || !equalCheckpoint(l.codec.Set.B, ck, expected[good]) {
			break
		}
		goodOffset += recLen
		good++
	}

	rebuilt := len(expected) - good
	if goodOffset < size {
		// Torn, disagreeing or surplus tail (e.g. the log itself lost a
		// torn tail the sidecar had already summarised): drop it.
		if err := f.Truncate(goodOffset); err != nil {
			return fmt.Errorf("archive: truncating checkpoint sidecar: %w", err)
		}
		if err := f.Sync(); err != nil {
			return fmt.Errorf("archive: syncing checkpoint truncation: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("archive: seeking checkpoint sidecar end: %w", err)
	}
	for _, ck := range expected[good:] {
		if err := appendFrame(f, marshalCheckpoint(l.codec, ck)); err != nil {
			return err
		}
	}
	stats.CheckpointsRebuilt = rebuilt
	stats.Checkpoints = len(expected)
	stats.CheckpointRebuild = time.Since(start)
	return nil
}

// rewriteSidecar replaces the whole sidecar with the expected
// checkpoint list.
func (l *Log) rewriteSidecar(expected []checkpoint) error {
	f := l.ckptF
	if err := f.Truncate(0); err != nil {
		return fmt.Errorf("archive: truncating checkpoint sidecar: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if _, err := f.Write(checkpointMagic); err != nil {
		return fmt.Errorf("archive: writing checkpoint magic: %w", err)
	}
	for _, ck := range expected {
		if err := appendFrame(f, marshalCheckpoint(l.codec, ck)); err != nil {
			return err
		}
	}
	return f.Sync()
}

// Checkpoints reports how many checkpoint aggregates are serving.
func (l *Log) Checkpoints() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ckpts)
}

// prefixAgg returns the aggregate over recs[:m], starting from the
// nearest checkpoint at or below m — at most interval−1 point
// additions.
func prefixAgg(b backend.Backend, recs []recMeta, ckpts []checkpoint, interval, m int) curve.Point {
	acc := b.Infinity(backend.G2)
	from := 0
	if interval > 0 {
		if k := min(m/interval, len(ckpts)); k > 0 {
			acc = ckpts[k-1].agg
			from = ckpts[k-1].count
		}
	}
	for i := from; i < m; i++ {
		acc = b.Add(backend.G2, acc, recs[i].point)
	}
	return acc
}

// Range implements the Ranger fast path over checkpoint aggregates:
// when the log was appended in label order (the normal forward-publish
// pattern) the range aggregate is prefix(hi) − prefix(lo), costing at
// most 2·(interval−1) additions however long the range is. A log with
// out-of-order backfills falls back to a direct scan-and-sum.
//
// The edge additions and the Merkle tree (up to 64k leaves) run on a
// snapshot taken under the lock, not under it: recs and ckpts are
// append-only — Put appends, Recover swaps in fresh slices — so a
// length-bounded view stays immutable once the lock is dropped, and a
// large catch-up request never stalls Put (the publish path) or other
// range requests.
func (l *Log) Range(from, to string, limit int) (RangeResult, error) {
	if from > to {
		return RangeResult{}, ErrBadRange
	}
	l.mu.Lock()
	recs, ckpts, sorted, interval := l.recs, l.ckpts, l.sorted, l.interval
	l.mu.Unlock()
	b := l.codec.Set.B
	if !sorted {
		return rangeScan(b, recs, from, to, limit), nil
	}
	lo := sort.Search(len(recs), func(i int) bool { return recs[i].label >= from })
	hi := sort.Search(len(recs), func(i int) bool { return recs[i].label > to })
	total := hi - lo
	if limit > 0 && total > limit {
		hi = lo + limit
	}
	res := RangeResult{Total: total}
	res.Aggregate = b.Add(backend.G2,
		prefixAgg(b, recs, ckpts, interval, hi),
		b.Neg(backend.G2, prefixAgg(b, recs, ckpts, interval, lo)))
	leaves := make([][32]byte, 0, hi-lo)
	for _, r := range recs[lo:hi] {
		res.Updates = append(res.Updates, core.KeyUpdate{Label: r.label, Point: r.point})
		leaves = append(leaves, r.leaf)
	}
	res.Root = MerkleRoot(leaves)
	return res, nil
}

// rangeScan is the unsorted-log fallback: gather, sort, sum over a
// snapshot of the record list.
func rangeScan(b backend.Backend, recs []recMeta, from, to string, limit int) RangeResult {
	var match []recMeta
	for _, r := range recs {
		if r.label >= from && r.label <= to {
			match = append(match, r)
		}
	}
	sort.Slice(match, func(i, j int) bool { return match[i].label < match[j].label })
	total := len(match)
	if limit > 0 && total > limit {
		match = match[:limit]
	}
	res := RangeResult{Total: total, Aggregate: b.Infinity(backend.G2)}
	leaves := make([][32]byte, 0, len(match))
	for _, r := range match {
		res.Updates = append(res.Updates, core.KeyUpdate{Label: r.label, Point: r.point})
		res.Aggregate = b.Add(backend.G2, res.Aggregate, r.point)
		leaves = append(leaves, r.leaf)
	}
	res.Root = MerkleRoot(leaves)
	return res
}

var _ Ranger = (*Log)(nil)

// auditCheckpoints replays the sidecar in dir offline (read-only)
// against the records replayed from the main log, filling the
// checkpoint fields of rep. The checkpoint interval is inferred from
// the first sidecar record, since an auditor has no Log configuration.
func auditCheckpoints(dir string, codec *wire.Codec, recs []recMeta, rep *AuditReport) {
	f, err := os.Open(filepath.Join(dir, checkpointName))
	if err != nil {
		return // no sidecar: nothing to audit (pre-checkpoint directory)
	}
	defer f.Close()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil || size == 0 {
		return
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return
	}
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(f, magic); err != nil || string(magic) != string(checkpointMagic) {
		rep.CheckpointsTorn = true
		return
	}

	// Recompute prefix state lazily while walking the sidecar.
	b := codec.Set.B
	agg := b.Infinity(backend.G2)
	leaves := make([][32]byte, 0, len(recs))
	covered := 0
	prefixTo := func(n int) {
		for ; covered < n && covered < len(recs); covered++ {
			agg = b.Add(backend.G2, agg, recs[covered].point)
			leaves = append(leaves, recs[covered].leaf)
		}
	}

	offset := int64(len(checkpointMagic))
	interval := 0
	var lenBuf [4]byte
	crcBuf := make([]byte, 4)
	for offset < size {
		payload, recLen, err := readFrame(f, lenBuf[:], crcBuf)
		if err != nil {
			rep.CheckpointsTorn = true
			return
		}
		offset += recLen
		ck, err := unmarshalCheckpoint(codec, payload)
		if err != nil {
			rep.CheckpointsTorn = true
			return
		}
		rep.Checkpoints++
		if interval == 0 {
			interval = ck.count
		}
		wantCount := interval * rep.Checkpoints
		if interval <= 0 || ck.count != wantCount || ck.count > len(recs) {
			rep.CheckpointsBad++
			continue
		}
		prefixTo(ck.count)
		want := checkpoint{count: ck.count, agg: agg, root: MerkleRoot(leaves[:ck.count])}
		if !equalCheckpoint(b, ck, want) {
			rep.CheckpointsBad++
		}
	}
}

// Package archive stores published time-bound key updates. The paper's
// model (§3) has the server "keep a list of old key updates (whose
// release time has passed) at a publicly accessible place", so a
// receiver who missed a broadcast can always catch up. The archive is
// the only state the time server accumulates — none of it is about
// users.
package archive

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"timedrelease/internal/core"
	"timedrelease/internal/wire"
)

// Archive is the store of published updates. Implementations must be
// safe for concurrent use.
type Archive interface {
	// Put stores an update. Storing the same label twice is a no-op if
	// the points agree and an error if they conflict (a server must never
	// publish two different updates for one instant).
	Put(u core.KeyUpdate) error
	// Get returns the update for a label, if published.
	Get(label string) (core.KeyUpdate, bool)
	// Labels returns all published labels in lexicographic order (which,
	// for canonical RFC 3339 labels, is chronological order).
	Labels() []string
	// Len returns the number of stored updates.
	Len() int
}

// ErrConflict reports two different updates for the same label.
var ErrConflict = errors.New("archive: conflicting update for label")

// Memory is an in-memory archive.
type Memory struct {
	mu sync.RWMutex
	m  map[string]core.KeyUpdate
}

// NewMemory returns an empty in-memory archive.
func NewMemory() *Memory {
	return &Memory{m: make(map[string]core.KeyUpdate)}
}

// Put implements Archive.
func (a *Memory) Put(u core.KeyUpdate) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if prev, ok := a.m[u.Label]; ok {
		if prev.Point.X == nil || u.Point.X == nil {
			if prev.Point.IsInfinity() != u.Point.IsInfinity() {
				return ErrConflict
			}
			return nil
		}
		if prev.Point.X.Cmp(u.Point.X) != 0 || prev.Point.Y.Cmp(u.Point.Y) != 0 {
			return ErrConflict
		}
		return nil
	}
	a.m[u.Label] = u
	return nil
}

// Get implements Archive.
func (a *Memory) Get(label string) (core.KeyUpdate, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	u, ok := a.m[label]
	return u, ok
}

// Labels implements Archive. The returned slice is a fresh snapshot in
// lexicographic order: the read lock is held only while copying the
// keys, and the O(n log n) sort runs after it is released, so a large
// archive never stalls concurrent Put/Get behind sorting. Labels
// published concurrently with the call may or may not appear — the
// snapshot is consistent with SOME moment during the call, which is all
// the catch-up protocol needs.
func (a *Memory) Labels() []string {
	a.mu.RLock()
	out := make([]string, 0, len(a.m))
	for l := range a.m {
		out = append(out, l)
	}
	a.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Len implements Archive.
func (a *Memory) Len() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.m)
}

// File is a durable archive: an append-only log of wire-encoded updates
// with an in-memory index. It survives server restarts, so an operator
// can restore the full public history.
type File struct {
	mem   *Memory
	codec *wire.Codec

	mu sync.Mutex // serialises appends
	f  *os.File
}

// OpenFile opens (or creates) a file-backed archive, replaying existing
// records into the in-memory index.
func OpenFile(path string, codec *wire.Codec) (*File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o600)
	if err != nil {
		return nil, fmt.Errorf("archive: opening %s: %w", path, err)
	}
	a := &File{mem: NewMemory(), codec: codec, f: f}
	if err := a.replay(); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("archive: seeking to end: %w", err)
	}
	return a, nil
}

// replay loads every length-prefixed record from the log.
func (a *File) replay() error {
	if _, err := a.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("archive: seeking to start: %w", err)
	}
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(a.f, lenBuf[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("archive: corrupt log (record length): %w", err)
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n > 1<<20 {
			return errors.New("archive: corrupt log (oversized record)")
		}
		rec := make([]byte, n)
		if _, err := io.ReadFull(a.f, rec); err != nil {
			return fmt.Errorf("archive: corrupt log (record body): %w", err)
		}
		u, err := a.codec.UnmarshalKeyUpdate(rec)
		if err != nil {
			return fmt.Errorf("archive: corrupt log (record decode): %w", err)
		}
		if err := a.mem.Put(u); err != nil {
			return err
		}
	}
}

// Put implements Archive, appending new records durably.
func (a *File) Put(u core.KeyUpdate) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.mem.Get(u.Label); ok {
		return a.mem.Put(u) // dedupe/conflict check only; nothing to append
	}
	rec := a.codec.MarshalKeyUpdate(u)
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(rec)))
	if _, err := a.f.Write(lenBuf[:]); err != nil {
		return fmt.Errorf("archive: appending record: %w", err)
	}
	if _, err := a.f.Write(rec); err != nil {
		return fmt.Errorf("archive: appending record: %w", err)
	}
	if err := a.f.Sync(); err != nil {
		return fmt.Errorf("archive: syncing log: %w", err)
	}
	return a.mem.Put(u)
}

// Get implements Archive.
func (a *File) Get(label string) (core.KeyUpdate, bool) { return a.mem.Get(label) }

// Labels implements Archive.
func (a *File) Labels() []string { return a.mem.Labels() }

// Len implements Archive.
func (a *File) Len() int { return a.mem.Len() }

// Close releases the underlying file.
func (a *File) Close() error { return a.f.Close() }

// Interface compliance.
var (
	_ Archive = (*Memory)(nil)
	_ Archive = (*File)(nil)
)

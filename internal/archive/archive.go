// Package archive stores published time-bound key updates. The paper's
// model (§3) has the server "keep a list of old key updates (whose
// release time has passed) at a publicly accessible place", so a
// receiver who missed a broadcast can always catch up. The archive is
// the only state the time server accumulates — none of it is about
// users.
package archive

import (
	"errors"
	"sort"
	"sync"

	"timedrelease/internal/core"
)

// Archive is the store of published updates. Implementations must be
// safe for concurrent use.
type Archive interface {
	// Put stores an update. Storing the same label twice is a no-op if
	// the points agree and an error if they conflict (a server must never
	// publish two different updates for one instant).
	Put(u core.KeyUpdate) error
	// Get returns the update for a label, if published.
	Get(label string) (core.KeyUpdate, bool)
	// Labels returns all published labels in lexicographic order (which,
	// for canonical RFC 3339 labels, is chronological order).
	Labels() []string
	// Len returns the number of stored updates.
	Len() int
}

// ErrConflict reports two different updates for the same label.
var ErrConflict = errors.New("archive: conflicting update for label")

// Memory is an in-memory archive.
type Memory struct {
	mu sync.RWMutex
	m  map[string]core.KeyUpdate
}

// NewMemory returns an empty in-memory archive.
func NewMemory() *Memory {
	return &Memory{m: make(map[string]core.KeyUpdate)}
}

// Put implements Archive.
func (a *Memory) Put(u core.KeyUpdate) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if prev, ok := a.m[u.Label]; ok {
		if prev.Point.X == nil || u.Point.X == nil {
			if prev.Point.IsInfinity() != u.Point.IsInfinity() {
				return ErrConflict
			}
			return nil
		}
		if prev.Point.X.Cmp(u.Point.X) != 0 || prev.Point.Y.Cmp(u.Point.Y) != 0 {
			return ErrConflict
		}
		return nil
	}
	a.m[u.Label] = u
	return nil
}

// Get implements Archive.
func (a *Memory) Get(label string) (core.KeyUpdate, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	u, ok := a.m[label]
	return u, ok
}

// Labels implements Archive. The returned slice is a fresh snapshot in
// lexicographic order: the read lock is held only while copying the
// keys, and the O(n log n) sort runs after it is released, so a large
// archive never stalls concurrent Put/Get behind sorting. Labels
// published concurrently with the call may or may not appear — the
// snapshot is consistent with SOME moment during the call, which is all
// the catch-up protocol needs.
func (a *Memory) Labels() []string {
	a.mu.RLock()
	out := make([]string, 0, len(a.m))
	for l := range a.m {
		out = append(out, l)
	}
	a.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Len implements Archive.
func (a *Memory) Len() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.m)
}

// Interface compliance.
var _ Archive = (*Memory)(nil)

package archive

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"timedrelease/internal/core"
	"timedrelease/internal/curve"
	"timedrelease/internal/wire"
)

// minuteLabels returns n ascending canonical labels.
func minuteLabels(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("2026-07-05T%02d:%02d:00Z", 10+i/60, i%60)
	}
	return out
}

// openCkptLog opens a Log with a small checkpoint interval for tests.
func openCkptLog(t *testing.T, dir string, codec *wire.Codec, opts ...LogOption) *Log {
	t.Helper()
	l, err := OpenDir(dir, codec, append([]LogOption{WithCheckpointInterval(4)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// checkRange asserts the Log's checkpoint-backed Range agrees exactly
// with a direct recomputation over the generic archive path.
func checkRange(t *testing.T, l *Log, codec *wire.Codec, from, to string, limit int) RangeResult {
	t.Helper()
	got, err := l.Range(from, to, limit)
	if err != nil {
		t.Fatalf("Range(%s, %s, %d): %v", from, to, limit, err)
	}
	want, err := RangeOf(l.mem, codec, from, to, limit) // Memory has no Ranger: generic path
	if err != nil {
		t.Fatal(err)
	}
	c := codec.Set.Curve
	if got.Total != want.Total || len(got.Updates) != len(want.Updates) {
		t.Fatalf("range shape: got %d/%d, want %d/%d", len(got.Updates), got.Total, len(want.Updates), want.Total)
	}
	for i := range got.Updates {
		if got.Updates[i].Label != want.Updates[i].Label || !c.Equal(got.Updates[i].Point, want.Updates[i].Point) {
			t.Fatalf("range update %d differs", i)
		}
	}
	if !c.Equal(got.Aggregate, want.Aggregate) {
		t.Fatal("checkpoint-backed aggregate differs from direct sum")
	}
	if got.Root != want.Root {
		t.Fatal("checkpoint-backed root differs from direct recomputation")
	}
	return got
}

func TestLogRangeMatchesDirectSum(t *testing.T) {
	sc, key, codec := fixtures(t)
	dir := t.TempDir()
	l := openCkptLog(t, dir, codec)
	labels := minuteLabels(11) // interval 4 → 2 checkpoints + tail of 3
	for _, lab := range labels {
		if err := l.Put(sc.IssueUpdate(key, lab)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Checkpoints() != 2 {
		t.Fatalf("checkpoints = %d, want 2", l.Checkpoints())
	}
	// Whole range, sub-ranges crossing checkpoint boundaries, single
	// record, empty range, and a truncating limit.
	checkRange(t, l, codec, labels[0], labels[len(labels)-1], 0)
	checkRange(t, l, codec, labels[2], labels[9], 0)
	checkRange(t, l, codec, labels[5], labels[5], 0)
	checkRange(t, l, codec, "2020-01-01T00:00:00Z", "2020-01-02T00:00:00Z", 0)
	got := checkRange(t, l, codec, labels[0], labels[len(labels)-1], 5)
	if got.Total != 11 || len(got.Updates) != 5 {
		t.Fatalf("limited range: %d/%d, want 5/11", len(got.Updates), got.Total)
	}
	if got.Updates[0].Label != labels[0] {
		t.Fatal("truncation must keep the OLDEST records")
	}
	if _, err := l.Range(labels[3], labels[1], 0); err == nil {
		t.Fatal("inverted range must error")
	}

	// Aggregate of the full range verifies as one signature run.
	full, _ := l.Range(labels[0], labels[len(labels)-1], 0)
	if !sc.VerifyUpdateAggregate(key.Pub, full.Updates, full.Aggregate) {
		t.Fatal("served range aggregate must verify against the server key")
	}
}

func TestLogRangeUnsortedBackfill(t *testing.T) {
	sc, key, codec := fixtures(t)
	l := openCkptLog(t, t.TempDir(), codec)
	labels := minuteLabels(9)
	// Append out of order: forward publishes, then a backfill.
	order := []int{2, 3, 4, 5, 6, 7, 8, 0, 1}
	for _, i := range order {
		if err := l.Put(sc.IssueUpdate(key, labels[i])); err != nil {
			t.Fatal(err)
		}
	}
	checkRange(t, l, codec, labels[0], labels[8], 0)
	checkRange(t, l, codec, labels[1], labels[6], 3)
}

func TestLogCheckpointRestartRoundTrip(t *testing.T) {
	sc, key, codec := fixtures(t)
	dir := t.TempDir()
	labels := minuteLabels(10)

	l := openCkptLog(t, dir, codec)
	for _, lab := range labels {
		if err := l.Put(sc.IssueUpdate(key, lab)); err != nil {
			t.Fatal(err)
		}
	}
	want, err := l.Range(labels[0], labels[9], 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the sidecar must be accepted as-is (nothing rebuilt) and
	// serve identical ranges.
	l2 := openCkptLog(t, dir, codec, WithVerifier(func(u core.KeyUpdate) bool {
		return sc.VerifyUpdate(key.Pub, u)
	}))
	st := l2.Stats()
	if st.Checkpoints != 2 || st.CheckpointsRebuilt != 0 {
		t.Fatalf("restart: checkpoints=%d rebuilt=%d, want 2/0", st.Checkpoints, st.CheckpointsRebuilt)
	}
	got, err := l2.Range(labels[0], labels[9], 0)
	if err != nil {
		t.Fatal(err)
	}
	if !codec.Set.Curve.Equal(got.Aggregate, want.Aggregate) || got.Root != want.Root {
		t.Fatal("range served after restart differs")
	}
	// And appends keep checkpointing where the old process left off.
	for _, lab := range minuteLabels(12)[10:] {
		if err := l2.Put(sc.IssueUpdate(key, lab)); err != nil {
			t.Fatal(err)
		}
	}
	if l2.Checkpoints() != 3 {
		t.Fatalf("checkpoints after more appends = %d, want 3", l2.Checkpoints())
	}
}

func TestLogCheckpointTornSidecarTail(t *testing.T) {
	sc, key, codec := fixtures(t)
	dir := t.TempDir()
	labels := minuteLabels(9)
	l := openCkptLog(t, dir, codec)
	for _, lab := range labels {
		if err := l.Put(sc.IssueUpdate(key, lab)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the sidecar mid-record (crash during a checkpoint append).
	side := filepath.Join(dir, checkpointName)
	raw, err := os.ReadFile(side)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(side, raw[:len(raw)-7], 0o600); err != nil {
		t.Fatal(err)
	}

	rep, err := AuditDir(dir, codec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.CheckpointsTorn || rep.Clean() {
		t.Fatalf("audit must flag the torn sidecar: %+v", rep)
	}

	l2 := openCkptLog(t, dir, codec)
	st := l2.Stats()
	if st.Checkpoints != 2 || st.CheckpointsRebuilt != 1 {
		t.Fatalf("torn tail: checkpoints=%d rebuilt=%d, want 2/1", st.Checkpoints, st.CheckpointsRebuilt)
	}
	checkRange(t, l2, codec, labels[0], labels[8], 0)
	if rep, err := AuditDir(dir, codec, nil); err != nil || !rep.Clean() {
		t.Fatalf("sidecar must audit clean after recovery: %+v (%v)", rep, err)
	}
}

func TestLogCheckpointMismatchRebuilds(t *testing.T) {
	// A checkpoint that disagrees with the log (bit-rot that kept its
	// CRC consistent, i.e. a rewritten sidecar) must never be served:
	// recovery rebuilds it from the verified records, and until then an
	// audit refuses to call the directory clean.
	sc, key, codec := fixtures(t)
	dir := t.TempDir()
	labels := minuteLabels(9)
	l := openCkptLog(t, dir, codec)
	for _, lab := range labels {
		if err := l.Put(sc.IssueUpdate(key, lab)); err != nil {
			t.Fatal(err)
		}
	}
	honest, err := l.Range(labels[0], labels[8], 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Rewrite the first checkpoint with a wrong (but well-formed,
	// correctly CRC-framed) aggregate: the identity point.
	side := filepath.Join(dir, checkpointName)
	forged := checkpoint{count: 4, agg: curve.Infinity()}
	var rest []checkpoint
	{
		l3 := openCkptLog(t, dir, codec)
		rest = append([]checkpoint(nil), l3.ckpts[1:]...)
		forged.root = l3.ckpts[0].root
		l3.Close()
	}
	f, err := os.OpenFile(side, os.O_WRONLY|os.O_TRUNC, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(checkpointMagic); err != nil {
		t.Fatal(err)
	}
	for _, ck := range append([]checkpoint{forged}, rest...) {
		if err := appendFrame(f, marshalCheckpoint(codec, ck)); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()

	rep, err := AuditDir(dir, codec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CheckpointsBad == 0 || rep.Clean() {
		t.Fatalf("audit must flag the forged checkpoint: %+v", rep)
	}

	// Recovery must rebuild from the forged record on and serve the
	// honest aggregate.
	l2 := openCkptLog(t, dir, codec, WithVerifier(func(u core.KeyUpdate) bool {
		return sc.VerifyUpdate(key.Pub, u)
	}))
	st := l2.Stats()
	if st.CheckpointsRebuilt != 2 || st.Checkpoints != 2 {
		t.Fatalf("mismatch: checkpoints=%d rebuilt=%d, want 2/2", st.Checkpoints, st.CheckpointsRebuilt)
	}
	got, err := l2.Range(labels[0], labels[8], 0)
	if err != nil {
		t.Fatal(err)
	}
	if !codec.Set.Curve.Equal(got.Aggregate, honest.Aggregate) {
		t.Fatal("recovery served a range built from the forged checkpoint")
	}
	if !sc.VerifyUpdateAggregate(key.Pub, got.Updates, got.Aggregate) {
		t.Fatal("served aggregate must verify")
	}
	if rep, err := AuditDir(dir, codec, nil); err != nil || !rep.Clean() {
		t.Fatalf("sidecar must audit clean after rebuild: %+v (%v)", rep, err)
	}
}

func TestLogForeignSidecarRebuiltWholesale(t *testing.T) {
	sc, key, codec := fixtures(t)
	dir := t.TempDir()
	labels := minuteLabels(8)
	l := openCkptLog(t, dir, codec)
	for _, lab := range labels {
		if err := l.Put(sc.IssueUpdate(key, lab)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, checkpointName), []byte("not a sidecar"), 0o600); err != nil {
		t.Fatal(err)
	}
	l2 := openCkptLog(t, dir, codec)
	st := l2.Stats()
	if st.Checkpoints != 2 || st.CheckpointsRebuilt != 2 {
		t.Fatalf("foreign sidecar: checkpoints=%d rebuilt=%d, want 2/2", st.Checkpoints, st.CheckpointsRebuilt)
	}
	checkRange(t, l2, codec, labels[0], labels[7], 0)
}

func TestMerkleRootProperties(t *testing.T) {
	leaves := make([][32]byte, 0, 6)
	for i := 0; i < 6; i++ {
		leaves = append(leaves, LeafHash([]byte{byte(i)}))
	}
	if MerkleRoot(nil) != ([32]byte{}) {
		t.Fatal("empty forest must commit to the zero root")
	}
	if MerkleRoot(leaves[:1]) != leaves[0] {
		t.Fatal("single leaf is its own root")
	}
	// Order and membership sensitivity.
	root := MerkleRoot(leaves)
	swapped := append([][32]byte(nil), leaves...)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if MerkleRoot(swapped) == root {
		t.Fatal("root must depend on leaf order")
	}
	if MerkleRoot(leaves[:5]) == root {
		t.Fatal("root must depend on membership")
	}
	// Input slice must not be clobbered by level folding.
	if leaves[1] != LeafHash([]byte{1}) {
		t.Fatal("MerkleRoot mutated its input")
	}
}

func TestLogRangeConcurrentWithPut(t *testing.T) {
	// Range computes its edge additions and Merkle tree on a snapshot,
	// outside the log mutex, so catch-up traffic cannot stall Put (the
	// publish path). Race-detector coverage: publishers and range
	// readers running together, with every returned range internally
	// consistent for the records it saw.
	sc, key, codec := fixtures(t)
	l := openCkptLog(t, t.TempDir(), codec)
	labels := minuteLabels(64)
	for _, lab := range labels[:8] {
		if err := l.Put(sc.IssueUpdate(key, lab)); err != nil {
			t.Fatal(err)
		}
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, lab := range labels[8:] {
			if err := l.Put(sc.IssueUpdate(key, lab)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	c := codec.Set.Curve
	for i := 0; i < 50; i++ {
		res, err := l.Range(labels[0], labels[len(labels)-1], 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Updates) < 8 || res.Total != len(res.Updates) {
			t.Fatalf("snapshot range shape: %d updates, total %d", len(res.Updates), res.Total)
		}
		agg := curve.Infinity()
		leaves := make([][32]byte, len(res.Updates))
		for j, u := range res.Updates {
			agg = c.Add(agg, u.Point)
			leaves[j] = LeafHash(codec.MarshalKeyUpdate(u))
		}
		if !c.Equal(agg, res.Aggregate) || MerkleRoot(leaves) != res.Root {
			t.Fatal("concurrent range not internally consistent")
		}
	}
	<-done
}

package archive

import (
	"crypto/sha256"
	"errors"
	"sort"

	"timedrelease/internal/bls"
	"timedrelease/internal/core"
	"timedrelease/internal/curve"
	"timedrelease/internal/wire"
)

// Completeness commitments for range (catch-up) responses.
//
// A /v1/catchup response carries N updates, one aggregate signature and
// a Merkle root over the updates' wire encodings. The aggregate proves
// the SUM of the delivered points was signed (one pairing product,
// internal/bls — per-update binding is the client's blinded batch
// admission check); the root commits the server to exactly which
// records the range contained, so a client can detect a response whose
// update list and aggregate were recomputed inconsistently. Leaves hash the full wire KeyUpdate
// payload rather than the log's CRC32 frame checksums: CRC32 is not
// collision-resistant, so a commitment over CRCs would commit to
// nothing an adversary cares about.
//
// Domain separation: leaves are H(0x00 ‖ payload), interior nodes
// H(0x01 ‖ left ‖ right), which blocks leaf/node confusion attacks. An
// odd node at any level is promoted unchanged. The empty range commits
// to the all-zero root.

// LeafHash is the Merkle leaf over one record's wire KeyUpdate payload.
func LeafHash(payload []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte{0x00})
	h.Write(payload)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// nodeHash combines two subtree roots.
func nodeHash(left, right [32]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte{0x01})
	h.Write(left[:])
	h.Write(right[:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// MerkleRoot computes the commitment root over leaves in order. The
// empty sequence commits to the zero root.
func MerkleRoot(leaves [][32]byte) [32]byte {
	if len(leaves) == 0 {
		return [32]byte{}
	}
	level := append([][32]byte(nil), leaves...)
	for len(level) > 1 {
		next := level[:0:len(level)]
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, nodeHash(level[i], level[i+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return level[0]
}

// RangeResult is a label-range slice of an archive together with its
// aggregate signature and completeness commitment — the body of one
// /v1/catchup response.
type RangeResult struct {
	// Updates are the matching records in ascending label order (at
	// most Limit of them, oldest first).
	Updates []core.KeyUpdate
	// Aggregate is Σ of the update points: the same-key BLS aggregate
	// over the returned labels.
	Aggregate curve.Point
	// Root is the Merkle root over the returned records' wire payloads.
	Root [32]byte
	// Total counts ALL archived records in [from, to], before Limit
	// truncation; Total > len(Updates) tells the client the response
	// was truncated and more requests are needed.
	Total int
}

// Ranger is the optional fast-path capability a range-serving archive
// can implement; the durable Log serves ranges from its checkpoint
// aggregates instead of re-summing every point.
type Ranger interface {
	Range(from, to string, limit int) (RangeResult, error)
}

// ErrBadRange reports an inverted or empty label interval.
var ErrBadRange = errors.New("archive: range from > to")

// RangeOf serves the label range [from, to] (inclusive, lexicographic —
// which is chronological for canonical schedule labels) from any
// Archive, truncating to the oldest `limit` records when limit > 0. It
// dispatches to the archive's own Ranger fast path when there is one
// and otherwise recomputes aggregate and root directly.
func RangeOf(a Archive, codec *wire.Codec, from, to string, limit int) (RangeResult, error) {
	if from > to {
		return RangeResult{}, ErrBadRange
	}
	if r, ok := a.(Ranger); ok {
		return r.Range(from, to, limit)
	}
	labels := a.Labels() // sorted ascending
	lo := sort.SearchStrings(labels, from)
	hi := sort.Search(len(labels), func(i int) bool { return labels[i] > to })
	total := hi - lo
	if limit > 0 && total > limit {
		hi = lo + limit
	}
	res := RangeResult{Aggregate: curve.Infinity(), Total: total}
	leaves := make([][32]byte, 0, hi-lo)
	for _, label := range labels[lo:hi] {
		u, ok := a.Get(label)
		if !ok {
			return RangeResult{}, errors.New("archive: label vanished during range scan: " + label)
		}
		res.Updates = append(res.Updates, u)
		res.Aggregate = bls.AggregateInto(codec.Set, bls.Signature{Point: res.Aggregate}, bls.Signature{Point: u.Point}).Point
		leaves = append(leaves, LeafHash(codec.MarshalKeyUpdate(u)))
	}
	res.Root = MerkleRoot(leaves)
	return res, nil
}

package archive

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"timedrelease/internal/core"
	"timedrelease/internal/curve"
	"timedrelease/internal/wire"
)

// The durable archive is an append-only log of wire-encoded updates in
// a directory. Every record is independently framed and checksummed so
// a crash mid-append (power loss, SIGKILL) leaves at worst a torn tail
// that Recover detects and truncates — never a silently wrong update:
//
//	file   = magic ‖ record…
//	magic  = "TRELOG1\n"                      (8 bytes)
//	record = u32 len ‖ payload ‖ u32 crc      (crc32-IEEE over len ‖ payload)
//
// The payload is the wire KeyUpdate encoding (docs/PROTOCOL.md). The
// integrity chain is layered: the CRC catches torn or bit-rotted
// records (structural damage → truncate and keep serving), while the
// pairing check ê(G, I_T) = ê(sG, H1(T)) run by Recover's verifier
// catches records an attacker rewrote wholesale, CRC included
// (cryptographic damage → refuse to serve). CRCs are not authentication;
// the pairing equation is.

// logName is the log file inside an archive directory.
const logName = "updates.log"

// logMagic identifies (and versions) the on-disk format.
var logMagic = []byte("TRELOG1\n")

// maxRecord bounds a single record; anything larger is structural
// corruption (a real update is a label plus one compressed point).
const maxRecord = 1 << 20

// ErrInvalidRecord reports a record that is structurally intact
// (framing and checksum pass) but whose update fails the verifier —
// i.e. the log was rewritten, not torn. Unlike a torn tail this is
// never repaired automatically.
var ErrInvalidRecord = errors.New("archive: record fails update verification")

// ErrNotLog reports a file that does not start with the log magic.
var ErrNotLog = errors.New("archive: not an update log (bad magic)")

// RecoverStats describes what Recover found and repaired.
type RecoverStats struct {
	Records   int           // intact records now served
	Verified  int           // records re-verified against the server key
	TornBytes int64         // bytes truncated from the tail
	Truncated bool          // whether a torn tail was dropped
	Elapsed   time.Duration // replay wall time

	// Checkpoint-sidecar reconciliation (see checkpoint.go). The
	// sidecar is derived data: recovery recomputes every checkpoint
	// from the verified main log and rewrites anything that disagrees,
	// so a served aggregate is never sourced from a bad checkpoint.
	Checkpoints        int           // checkpoints now on disk and serving
	CheckpointsRebuilt int           // sidecar records recovery had to (re)write
	CheckpointRebuild  time.Duration // sidecar reconciliation wall time
}

// recMeta is the in-memory per-record state behind checkpoint
// aggregates and range serving: the label, the signature point and the
// Merkle leaf of the record's wire payload, in append order.
type recMeta struct {
	label string
	point curve.Point
	leaf  [32]byte
}

// Log is the durable archive: an append-only, checksummed log of
// published updates with an in-memory index. Safe for concurrent use.
type Log struct {
	mem      *Memory
	codec    *wire.Codec
	verify   func(core.KeyUpdate) bool // nil → structural checks only
	path     string
	interval int // records per checkpoint (DefaultCheckpointInterval)

	mu    sync.Mutex // serialises appends and recovery; Range only snapshots under it
	f     *os.File
	ckptF *os.File // checkpoints.log sidecar
	stats RecoverStats

	// Range-serving state, maintained by Recover and Put. recs and
	// ckpts are append-only (Recover swaps in fresh slices), so Range
	// can snapshot their headers under mu and compute outside it.
	recs   []recMeta    // every intact record, append order
	ckpts  []checkpoint // prefix aggregates every interval records
	agg    curve.Point  // running aggregate over recs
	sorted bool         // recs are in ascending label order
}

// LogOption configures a Log.
type LogOption func(*Log)

// WithCheckpointInterval sets how many records each checkpoint
// aggregate covers (default DefaultCheckpointInterval). Smaller
// intervals make range aggregation cheaper at the cost of a bigger
// sidecar. The interval is a serving-time tuning knob, not a format
// parameter: reopening a log with a different interval simply rebuilds
// the sidecar.
func WithCheckpointInterval(k int) LogOption {
	return func(l *Log) {
		if k > 0 {
			l.interval = k
		}
	}
}

// WithVerifier makes Recover re-verify every replayed update (the
// paper's self-authentication check ê(G, I_T) = ê(sG, H1(T)) bound to
// the server key) before it is served. A record that fails is reported
// as ErrInvalidRecord — the archive refuses to serve it.
func WithVerifier(v func(core.KeyUpdate) bool) LogOption {
	return func(l *Log) { l.verify = v }
}

// OpenDir opens (or creates) the durable archive in dir and runs
// Recover, so a returned *Log is always consistent: torn tails have
// been truncated and, with WithVerifier, every served update has been
// re-verified.
func OpenDir(dir string, codec *wire.Codec, opts ...LogOption) (*Log, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("archive: creating %s: %w", dir, err)
	}
	path := filepath.Join(dir, logName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o600)
	if err != nil {
		return nil, fmt.Errorf("archive: opening %s: %w", path, err)
	}
	ckptPath := filepath.Join(dir, checkpointName)
	ckptF, err := os.OpenFile(ckptPath, os.O_CREATE|os.O_RDWR, 0o600)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("archive: opening %s: %w", ckptPath, err)
	}
	l := &Log{mem: NewMemory(), codec: codec, path: path, f: f, ckptF: ckptF,
		interval: DefaultCheckpointInterval}
	for _, o := range opts {
		o(l)
	}
	if _, err := l.Recover(); err != nil {
		f.Close()
		ckptF.Close()
		return nil, err
	}
	return l, nil
}

// Recover replays the log from disk, rebuilding the in-memory index.
// A torn tail — short read, oversized length, checksum mismatch or
// undecodable payload — is truncated away and everything before it is
// kept, so a crash mid-append costs at most the record being written.
// With a verifier configured, every replayed update is re-checked
// against the server key; a checksummed record that fails is
// cryptographic (not crash) damage and aborts recovery with
// ErrInvalidRecord. Recover is also safe to call on a live Log.
func (l *Log) Recover() (RecoverStats, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	start := time.Now()

	size, err := l.f.Seek(0, io.SeekEnd)
	if err != nil {
		return RecoverStats{}, fmt.Errorf("archive: sizing log: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return RecoverStats{}, fmt.Errorf("archive: seeking to start: %w", err)
	}

	stats := RecoverStats{}
	mem := NewMemory()
	var recs []recMeta
	var offset int64

	if size == 0 {
		// Fresh log: stamp the magic durably before the first record.
		if _, err := l.f.Write(logMagic); err != nil {
			return RecoverStats{}, fmt.Errorf("archive: writing magic: %w", err)
		}
		if err := l.f.Sync(); err != nil {
			return RecoverStats{}, fmt.Errorf("archive: syncing magic: %w", err)
		}
		l.mem, l.recs = mem, nil
		l.resetAggregates()
		if err := l.recoverCheckpoints(&stats); err != nil {
			return RecoverStats{}, err
		}
		l.stats = stats
		return stats, nil
	}

	magic := make([]byte, len(logMagic))
	if _, err := io.ReadFull(l.f, magic); err != nil || string(magic) != string(logMagic) {
		// A file this short cannot even be an empty log; do not "repair"
		// what was never ours to begin with.
		return RecoverStats{}, fmt.Errorf("%w: %s", ErrNotLog, l.path)
	}
	offset = int64(len(logMagic))

	var lenBuf [4]byte
	crcBuf := make([]byte, 4)
	for offset < size {
		u, payload, recLen, err := readRecord(l.f, l.codec, lenBuf[:], crcBuf)
		if err != nil {
			// Structural damage: everything from offset on is the torn
			// tail. Truncate it and keep the intact prefix.
			stats.Truncated = true
			stats.TornBytes = size - offset
			if err := l.f.Truncate(offset); err != nil {
				return RecoverStats{}, fmt.Errorf("archive: truncating torn tail: %w", err)
			}
			if err := l.f.Sync(); err != nil {
				return RecoverStats{}, fmt.Errorf("archive: syncing truncation: %w", err)
			}
			break
		}
		if l.verify != nil {
			if !l.verify(u) {
				return RecoverStats{}, fmt.Errorf("%w (label %q, offset %d)", ErrInvalidRecord, u.Label, offset)
			}
			stats.Verified++
		}
		if err := mem.Put(u); err != nil {
			return RecoverStats{}, fmt.Errorf("archive: replay at offset %d: %w", offset, err)
		}
		recs = append(recs, recMeta{label: u.Label, point: u.Point, leaf: LeafHash(payload)})
		offset += recLen
		stats.Records++
	}

	if _, err := l.f.Seek(0, io.SeekEnd); err != nil {
		return RecoverStats{}, fmt.Errorf("archive: seeking to end: %w", err)
	}
	l.mem, l.recs = mem, recs
	l.resetAggregates()
	if err := l.recoverCheckpoints(&stats); err != nil {
		return RecoverStats{}, err
	}
	stats.Elapsed = time.Since(start)
	l.stats = stats
	return stats, nil
}

// readFrame reads one crc-framed record (u32 len ‖ payload ‖ u32 crc)
// at the current file position, returning the payload and total frame
// length. Any error means structural damage at this offset.
func readFrame(r io.Reader, lenBuf, crcBuf []byte) ([]byte, int64, error) {
	if _, err := io.ReadFull(r, lenBuf); err != nil {
		return nil, 0, fmt.Errorf("record length: %w", err)
	}
	n := binary.BigEndian.Uint32(lenBuf)
	if n > maxRecord {
		return nil, 0, errors.New("oversized record")
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, fmt.Errorf("record body: %w", err)
	}
	if _, err := io.ReadFull(r, crcBuf); err != nil {
		return nil, 0, fmt.Errorf("record checksum: %w", err)
	}
	crc := crc32.NewIEEE()
	crc.Write(lenBuf)
	crc.Write(payload)
	if crc.Sum32() != binary.BigEndian.Uint32(crcBuf) {
		return nil, 0, errors.New("checksum mismatch")
	}
	return payload, int64(4 + len(payload) + 4), nil
}

// readRecord reads one update record at the current file position,
// returning the decoded update, its wire payload and total record
// length (frame + payload + crc). Any error means structural damage at
// this offset.
func readRecord(r io.Reader, codec *wire.Codec, lenBuf, crcBuf []byte) (core.KeyUpdate, []byte, int64, error) {
	payload, recLen, err := readFrame(r, lenBuf, crcBuf)
	if err != nil {
		return core.KeyUpdate{}, nil, 0, err
	}
	u, err := codec.UnmarshalKeyUpdate(payload)
	if err != nil {
		return core.KeyUpdate{}, nil, 0, fmt.Errorf("record decode: %w", err)
	}
	return u, payload, recLen, nil
}

// appendFrame durably appends one crc-framed payload to f.
func appendFrame(f *os.File, payload []byte) error {
	rec := make([]byte, 0, 4+len(payload)+4)
	rec = binary.BigEndian.AppendUint32(rec, uint32(len(payload)))
	rec = append(rec, payload...)
	rec = binary.BigEndian.AppendUint32(rec, crc32.ChecksumIEEE(rec))
	if _, err := f.Write(rec); err != nil {
		return fmt.Errorf("archive: appending record: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("archive: syncing log: %w", err)
	}
	return nil
}

// appendRecord encodes and durably appends one update: the write is
// fsynced before the in-memory index (and therefore any reader) sees
// it, so a served update is always a durable update. It returns the
// wire payload for checkpoint bookkeeping.
func (l *Log) appendRecord(u core.KeyUpdate) ([]byte, error) {
	payload := l.codec.MarshalKeyUpdate(u)
	if err := appendFrame(l.f, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// Put implements Archive, appending new records durably. A failed
// append may leave a torn tail on disk; it is never indexed, and the
// next Recover truncates it.
func (l *Log) Put(u core.KeyUpdate) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.mem.Get(u.Label); ok {
		return l.mem.Put(u) // dedupe/conflict check only; nothing to append
	}
	payload, err := l.appendRecord(u)
	if err != nil {
		return err
	}
	if err := l.mem.Put(u); err != nil {
		return err
	}
	l.note(u, payload)
	if l.interval > 0 && len(l.recs)%l.interval == 0 {
		// The update itself is already durable and indexed; a failed
		// sidecar append is surfaced but costs only a rebuild on the
		// next Recover — checkpoints are derived data.
		if err := l.appendCheckpoint(l.currentCheckpoint()); err != nil {
			return fmt.Errorf("archive: appending checkpoint: %w", err)
		}
	}
	return nil
}

// Get implements Archive.
func (l *Log) Get(label string) (core.KeyUpdate, bool) { return l.mem.Get(label) }

// Labels implements Archive.
func (l *Log) Labels() []string { return l.mem.Labels() }

// Len implements Archive.
func (l *Log) Len() int { return l.mem.Len() }

// Stats returns what the last Recover found.
func (l *Log) Stats() RecoverStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Path returns the log file path (operator diagnostics).
func (l *Log) Path() string { return l.path }

// Close releases the underlying files.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.f.Close()
	if cerr := l.ckptF.Close(); err == nil {
		err = cerr
	}
	return err
}

var _ Archive = (*Log)(nil)

// AuditRecord is one record's offline-audit result.
type AuditRecord struct {
	Offset int64  // file offset of the record frame
	Label  string // decoded label ("" if undecodable)
	Err    error  // nil = structurally intact and (if checked) verified
}

// AuditReport is the outcome of replaying a log offline.
type AuditReport struct {
	Records   []AuditRecord // every intact record, plus one entry for a torn tail
	Torn      bool          // structural damage found (framing/checksum/decode)
	TornBytes int64         // bytes after the damage point
	Invalid   int           // intact records failing the verifier

	// Checkpoint-sidecar audit (checkpoints.log). The sidecar is
	// derived data, so damage here never loses an update — but a bad
	// checkpoint would let the server hand out a wrong range aggregate,
	// so it fails Clean until Recover rebuilds it.
	Checkpoints     int  // intact sidecar checkpoints replayed
	CheckpointsBad  int  // checkpoints disagreeing with the log's records
	CheckpointsTorn bool // structural damage in the sidecar
}

// Clean reports whether the log replayed with no damage at all.
func (r AuditReport) Clean() bool {
	return !r.Torn && r.Invalid == 0 && !r.CheckpointsTorn && r.CheckpointsBad == 0
}

// AuditDir replays the log in dir without modifying it, classifying
// every record: intact, torn (structural damage — the file is reported
// from the first damaged byte, as Recover would truncate it) or
// invalid (checksummed but failing the verifier — cryptographic
// damage Recover refuses to serve). Operators and CI run this through
// `trectl archive verify`.
func AuditDir(dir string, codec *wire.Codec, verify func(core.KeyUpdate) bool) (AuditReport, error) {
	path := filepath.Join(dir, logName)
	f, err := os.Open(path)
	if err != nil {
		return AuditReport{}, fmt.Errorf("archive: opening %s: %w", path, err)
	}
	defer f.Close()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return AuditReport{}, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return AuditReport{}, err
	}
	var rep AuditReport
	if size == 0 {
		return rep, nil // empty (or never-written) log: trivially clean
	}
	magic := make([]byte, len(logMagic))
	if _, err := io.ReadFull(f, magic); err != nil || string(magic) != string(logMagic) {
		return AuditReport{}, fmt.Errorf("%w: %s", ErrNotLog, path)
	}
	offset := int64(len(logMagic))
	var lenBuf [4]byte
	crcBuf := make([]byte, 4)
	var recs []recMeta
	for offset < size {
		u, payload, recLen, err := readRecord(f, codec, lenBuf[:], crcBuf)
		if err != nil {
			rep.Torn = true
			rep.TornBytes = size - offset
			rep.Records = append(rep.Records, AuditRecord{Offset: offset, Err: fmt.Errorf("torn: %w", err)})
			break
		}
		rec := AuditRecord{Offset: offset, Label: u.Label}
		if verify != nil && !verify(u) {
			rec.Err = ErrInvalidRecord
			rep.Invalid++
		}
		rep.Records = append(rep.Records, rec)
		recs = append(recs, recMeta{label: u.Label, point: u.Point, leaf: LeafHash(payload)})
		offset += recLen
	}
	auditCheckpoints(dir, codec, recs, &rep)
	return rep, nil
}

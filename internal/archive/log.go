package archive

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"timedrelease/internal/core"
	"timedrelease/internal/wire"
)

// The durable archive is an append-only log of wire-encoded updates in
// a directory. Every record is independently framed and checksummed so
// a crash mid-append (power loss, SIGKILL) leaves at worst a torn tail
// that Recover detects and truncates — never a silently wrong update:
//
//	file   = magic ‖ record…
//	magic  = "TRELOG1\n"                      (8 bytes)
//	record = u32 len ‖ payload ‖ u32 crc      (crc32-IEEE over len ‖ payload)
//
// The payload is the wire KeyUpdate encoding (docs/PROTOCOL.md). The
// integrity chain is layered: the CRC catches torn or bit-rotted
// records (structural damage → truncate and keep serving), while the
// pairing check ê(G, I_T) = ê(sG, H1(T)) run by Recover's verifier
// catches records an attacker rewrote wholesale, CRC included
// (cryptographic damage → refuse to serve). CRCs are not authentication;
// the pairing equation is.

// logName is the log file inside an archive directory.
const logName = "updates.log"

// logMagic identifies (and versions) the on-disk format.
var logMagic = []byte("TRELOG1\n")

// maxRecord bounds a single record; anything larger is structural
// corruption (a real update is a label plus one compressed point).
const maxRecord = 1 << 20

// ErrInvalidRecord reports a record that is structurally intact
// (framing and checksum pass) but whose update fails the verifier —
// i.e. the log was rewritten, not torn. Unlike a torn tail this is
// never repaired automatically.
var ErrInvalidRecord = errors.New("archive: record fails update verification")

// ErrNotLog reports a file that does not start with the log magic.
var ErrNotLog = errors.New("archive: not an update log (bad magic)")

// RecoverStats describes what Recover found and repaired.
type RecoverStats struct {
	Records   int           // intact records now served
	Verified  int           // records re-verified against the server key
	TornBytes int64         // bytes truncated from the tail
	Truncated bool          // whether a torn tail was dropped
	Elapsed   time.Duration // replay wall time
}

// Log is the durable archive: an append-only, checksummed log of
// published updates with an in-memory index. Safe for concurrent use.
type Log struct {
	mem    *Memory
	codec  *wire.Codec
	verify func(core.KeyUpdate) bool // nil → structural checks only
	path   string

	mu    sync.Mutex // serialises appends and recovery
	f     *os.File
	stats RecoverStats
}

// LogOption configures a Log.
type LogOption func(*Log)

// WithVerifier makes Recover re-verify every replayed update (the
// paper's self-authentication check ê(G, I_T) = ê(sG, H1(T)) bound to
// the server key) before it is served. A record that fails is reported
// as ErrInvalidRecord — the archive refuses to serve it.
func WithVerifier(v func(core.KeyUpdate) bool) LogOption {
	return func(l *Log) { l.verify = v }
}

// OpenDir opens (or creates) the durable archive in dir and runs
// Recover, so a returned *Log is always consistent: torn tails have
// been truncated and, with WithVerifier, every served update has been
// re-verified.
func OpenDir(dir string, codec *wire.Codec, opts ...LogOption) (*Log, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("archive: creating %s: %w", dir, err)
	}
	path := filepath.Join(dir, logName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o600)
	if err != nil {
		return nil, fmt.Errorf("archive: opening %s: %w", path, err)
	}
	l := &Log{mem: NewMemory(), codec: codec, path: path, f: f}
	for _, o := range opts {
		o(l)
	}
	if _, err := l.Recover(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// Recover replays the log from disk, rebuilding the in-memory index.
// A torn tail — short read, oversized length, checksum mismatch or
// undecodable payload — is truncated away and everything before it is
// kept, so a crash mid-append costs at most the record being written.
// With a verifier configured, every replayed update is re-checked
// against the server key; a checksummed record that fails is
// cryptographic (not crash) damage and aborts recovery with
// ErrInvalidRecord. Recover is also safe to call on a live Log.
func (l *Log) Recover() (RecoverStats, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	start := time.Now()

	size, err := l.f.Seek(0, io.SeekEnd)
	if err != nil {
		return RecoverStats{}, fmt.Errorf("archive: sizing log: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return RecoverStats{}, fmt.Errorf("archive: seeking to start: %w", err)
	}

	stats := RecoverStats{}
	mem := NewMemory()
	var offset int64

	if size == 0 {
		// Fresh log: stamp the magic durably before the first record.
		if _, err := l.f.Write(logMagic); err != nil {
			return RecoverStats{}, fmt.Errorf("archive: writing magic: %w", err)
		}
		if err := l.f.Sync(); err != nil {
			return RecoverStats{}, fmt.Errorf("archive: syncing magic: %w", err)
		}
		l.mem, l.stats = mem, stats
		return stats, nil
	}

	magic := make([]byte, len(logMagic))
	if _, err := io.ReadFull(l.f, magic); err != nil || string(magic) != string(logMagic) {
		// A file this short cannot even be an empty log; do not "repair"
		// what was never ours to begin with.
		return RecoverStats{}, fmt.Errorf("%w: %s", ErrNotLog, l.path)
	}
	offset = int64(len(logMagic))

	var lenBuf [4]byte
	crcBuf := make([]byte, 4)
	for offset < size {
		u, recLen, err := readRecord(l.f, l.codec, lenBuf[:], crcBuf)
		if err != nil {
			// Structural damage: everything from offset on is the torn
			// tail. Truncate it and keep the intact prefix.
			stats.Truncated = true
			stats.TornBytes = size - offset
			if err := l.f.Truncate(offset); err != nil {
				return RecoverStats{}, fmt.Errorf("archive: truncating torn tail: %w", err)
			}
			if err := l.f.Sync(); err != nil {
				return RecoverStats{}, fmt.Errorf("archive: syncing truncation: %w", err)
			}
			break
		}
		if l.verify != nil {
			if !l.verify(u) {
				return RecoverStats{}, fmt.Errorf("%w (label %q, offset %d)", ErrInvalidRecord, u.Label, offset)
			}
			stats.Verified++
		}
		if err := mem.Put(u); err != nil {
			return RecoverStats{}, fmt.Errorf("archive: replay at offset %d: %w", offset, err)
		}
		offset += recLen
		stats.Records++
	}

	if _, err := l.f.Seek(0, io.SeekEnd); err != nil {
		return RecoverStats{}, fmt.Errorf("archive: seeking to end: %w", err)
	}
	stats.Elapsed = time.Since(start)
	l.mem, l.stats = mem, stats
	return stats, nil
}

// readRecord reads one record at the current file position, returning
// the decoded update and total record length (frame + payload + crc).
// Any error means structural damage at this offset.
func readRecord(r io.Reader, codec *wire.Codec, lenBuf, crcBuf []byte) (core.KeyUpdate, int64, error) {
	if _, err := io.ReadFull(r, lenBuf); err != nil {
		return core.KeyUpdate{}, 0, fmt.Errorf("record length: %w", err)
	}
	n := binary.BigEndian.Uint32(lenBuf)
	if n > maxRecord {
		return core.KeyUpdate{}, 0, errors.New("oversized record")
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return core.KeyUpdate{}, 0, fmt.Errorf("record body: %w", err)
	}
	if _, err := io.ReadFull(r, crcBuf); err != nil {
		return core.KeyUpdate{}, 0, fmt.Errorf("record checksum: %w", err)
	}
	crc := crc32.NewIEEE()
	crc.Write(lenBuf)
	crc.Write(payload)
	if crc.Sum32() != binary.BigEndian.Uint32(crcBuf) {
		return core.KeyUpdate{}, 0, errors.New("checksum mismatch")
	}
	u, err := codec.UnmarshalKeyUpdate(payload)
	if err != nil {
		return core.KeyUpdate{}, 0, fmt.Errorf("record decode: %w", err)
	}
	return u, int64(4 + len(payload) + 4), nil
}

// appendRecord encodes and durably appends one update: the write is
// fsynced before the in-memory index (and therefore any reader) sees
// it, so a served update is always a durable update.
func (l *Log) appendRecord(u core.KeyUpdate) error {
	payload := l.codec.MarshalKeyUpdate(u)
	rec := make([]byte, 0, 4+len(payload)+4)
	rec = binary.BigEndian.AppendUint32(rec, uint32(len(payload)))
	rec = append(rec, payload...)
	rec = binary.BigEndian.AppendUint32(rec, crc32.ChecksumIEEE(rec))
	if _, err := l.f.Write(rec); err != nil {
		return fmt.Errorf("archive: appending record: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("archive: syncing log: %w", err)
	}
	return nil
}

// Put implements Archive, appending new records durably. A failed
// append may leave a torn tail on disk; it is never indexed, and the
// next Recover truncates it.
func (l *Log) Put(u core.KeyUpdate) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.mem.Get(u.Label); ok {
		return l.mem.Put(u) // dedupe/conflict check only; nothing to append
	}
	if err := l.appendRecord(u); err != nil {
		return err
	}
	return l.mem.Put(u)
}

// Get implements Archive.
func (l *Log) Get(label string) (core.KeyUpdate, bool) { return l.mem.Get(label) }

// Labels implements Archive.
func (l *Log) Labels() []string { return l.mem.Labels() }

// Len implements Archive.
func (l *Log) Len() int { return l.mem.Len() }

// Stats returns what the last Recover found.
func (l *Log) Stats() RecoverStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Path returns the log file path (operator diagnostics).
func (l *Log) Path() string { return l.path }

// Close releases the underlying file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

var _ Archive = (*Log)(nil)

// AuditRecord is one record's offline-audit result.
type AuditRecord struct {
	Offset int64  // file offset of the record frame
	Label  string // decoded label ("" if undecodable)
	Err    error  // nil = structurally intact and (if checked) verified
}

// AuditReport is the outcome of replaying a log offline.
type AuditReport struct {
	Records   []AuditRecord // every intact record, plus one entry for a torn tail
	Torn      bool          // structural damage found (framing/checksum/decode)
	TornBytes int64         // bytes after the damage point
	Invalid   int           // intact records failing the verifier
}

// Clean reports whether the log replayed with no damage at all.
func (r AuditReport) Clean() bool { return !r.Torn && r.Invalid == 0 }

// AuditDir replays the log in dir without modifying it, classifying
// every record: intact, torn (structural damage — the file is reported
// from the first damaged byte, as Recover would truncate it) or
// invalid (checksummed but failing the verifier — cryptographic
// damage Recover refuses to serve). Operators and CI run this through
// `trectl archive verify`.
func AuditDir(dir string, codec *wire.Codec, verify func(core.KeyUpdate) bool) (AuditReport, error) {
	path := filepath.Join(dir, logName)
	f, err := os.Open(path)
	if err != nil {
		return AuditReport{}, fmt.Errorf("archive: opening %s: %w", path, err)
	}
	defer f.Close()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return AuditReport{}, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return AuditReport{}, err
	}
	var rep AuditReport
	if size == 0 {
		return rep, nil // empty (or never-written) log: trivially clean
	}
	magic := make([]byte, len(logMagic))
	if _, err := io.ReadFull(f, magic); err != nil || string(magic) != string(logMagic) {
		return AuditReport{}, fmt.Errorf("%w: %s", ErrNotLog, path)
	}
	offset := int64(len(logMagic))
	var lenBuf [4]byte
	crcBuf := make([]byte, 4)
	for offset < size {
		u, recLen, err := readRecord(f, codec, lenBuf[:], crcBuf)
		if err != nil {
			rep.Torn = true
			rep.TornBytes = size - offset
			rep.Records = append(rep.Records, AuditRecord{Offset: offset, Err: fmt.Errorf("torn: %w", err)})
			break
		}
		rec := AuditRecord{Offset: offset, Label: u.Label}
		if verify != nil && !verify(u) {
			rec.Err = ErrInvalidRecord
			rep.Invalid++
		}
		rep.Records = append(rep.Records, rec)
		offset += recLen
	}
	return rep, nil
}

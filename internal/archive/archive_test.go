package archive

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"timedrelease/internal/core"
	"timedrelease/internal/params"
	"timedrelease/internal/wire"
)

func fixtures(t *testing.T) (*core.Scheme, *core.ServerKeyPair, *wire.Codec) {
	t.Helper()
	set := params.MustPreset("Test160")
	sc := core.NewScheme(set)
	key, err := sc.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	return sc, key, wire.NewCodec(set)
}

func testArchiveContract(t *testing.T, a Archive, sc *core.Scheme, key *core.ServerKeyPair) {
	t.Helper()
	labels := []string{
		"2026-07-05T10:00:00Z",
		"2026-07-05T11:00:00Z",
		"2026-07-05T12:00:00Z",
	}
	// Insert out of order; Labels() must sort.
	for _, i := range []int{2, 0, 1} {
		if err := a.Put(sc.IssueUpdate(key, labels[i])); err != nil {
			t.Fatalf("Put(%s): %v", labels[i], err)
		}
	}
	if a.Len() != 3 {
		t.Fatalf("Len = %d, want 3", a.Len())
	}
	got := a.Labels()
	for i := range labels {
		if got[i] != labels[i] {
			t.Fatalf("Labels()[%d] = %q, want %q", i, got[i], labels[i])
		}
	}
	u, ok := a.Get(labels[1])
	if !ok || u.Label != labels[1] {
		t.Fatalf("Get(%s): %v %v", labels[1], u, ok)
	}
	if _, ok := a.Get("2030-01-01T00:00:00Z"); ok {
		t.Fatal("Get of unpublished label must miss")
	}
	// Idempotent re-put.
	if err := a.Put(sc.IssueUpdate(key, labels[0])); err != nil {
		t.Fatalf("idempotent Put: %v", err)
	}
	if a.Len() != 3 {
		t.Fatalf("Len after re-put = %d", a.Len())
	}
	// Conflicting update for the same label is rejected.
	conflict := core.KeyUpdate{Label: labels[0], Point: sc.Set.G}
	if err := a.Put(conflict); !errors.Is(err, ErrConflict) {
		t.Fatalf("conflicting Put: err=%v, want ErrConflict", err)
	}
}

func TestMemoryArchive(t *testing.T) {
	sc, key, _ := fixtures(t)
	testArchiveContract(t, NewMemory(), sc, key)
}

func TestLogArchive(t *testing.T) {
	sc, key, codec := fixtures(t)
	dir := t.TempDir()
	a, err := OpenDir(dir, codec)
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	testArchiveContract(t, a, sc, key)
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen with a verifier: everything must be back and re-verified.
	b, err := OpenDir(dir, codec, WithVerifier(func(u core.KeyUpdate) bool {
		return sc.VerifyUpdate(key.Pub, u)
	}))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer b.Close()
	if b.Len() != 3 {
		t.Fatalf("Len after reopen = %d, want 3", b.Len())
	}
	stats := b.Stats()
	if stats.Records != 3 || stats.Verified != 3 || stats.Truncated {
		t.Fatalf("recover stats = %+v, want 3 records, 3 verified, no truncation", stats)
	}
	for _, l := range b.Labels() {
		u, ok := b.Get(l)
		if !ok {
			t.Fatalf("lost update %s", l)
		}
		if !sc.VerifyUpdate(key.Pub, u) {
			t.Fatalf("update %s no longer verifies after reload", l)
		}
	}
	// Appending after reopen must work.
	if err := b.Put(sc.IssueUpdate(key, "2026-07-05T13:00:00Z")); err != nil {
		t.Fatalf("Put after reopen: %v", err)
	}
}

// putUpdates writes updates signed by key into dir's log and returns
// the log path.
func putUpdates(t *testing.T, sc *core.Scheme, key *core.ServerKeyPair, codec *wire.Codec, dir string, labels ...string) string {
	t.Helper()
	a, err := OpenDir(dir, codec)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range labels {
		if err := a.Put(sc.IssueUpdate(key, l)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, logName)
}

func TestLogRecoverTruncatesTornTail(t *testing.T) {
	sc, key, codec := fixtures(t)
	labels := []string{"2026-07-05T10:00:00Z", "2026-07-05T11:00:00Z", "2026-07-05T12:00:00Z"}
	dir := t.TempDir()
	path := putUpdates(t, sc, key, codec, dir, labels...)

	// Simulate a crash mid-append: cut the last record short.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	a, err := OpenDir(dir, codec, WithVerifier(func(u core.KeyUpdate) bool {
		return sc.VerifyUpdate(key.Pub, u)
	}))
	if err != nil {
		t.Fatalf("recovery over torn log: %v", err)
	}
	defer a.Close()
	stats := a.Stats()
	if !stats.Truncated || stats.TornBytes == 0 {
		t.Fatalf("stats = %+v, want a truncated tail", stats)
	}
	if a.Len() != 2 {
		t.Fatalf("Len after torn-tail recovery = %d, want 2", a.Len())
	}
	if _, ok := a.Get(labels[2]); ok {
		t.Fatal("torn record must not be served")
	}
	// The surviving prefix still verifies and the log accepts appends —
	// including re-publishing the label whose record was torn.
	if err := a.Put(sc.IssueUpdate(key, labels[2])); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}

	// After the repair + re-append, a reopen sees all three.
	a.Close()
	b, err := OpenDir(dir, codec)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Len() != 3 {
		t.Fatalf("Len after repair = %d, want 3", b.Len())
	}
}

func TestLogRecoverTruncatesCorruptedChecksum(t *testing.T) {
	sc, key, codec := fixtures(t)
	dir := t.TempDir()
	path := putUpdates(t, sc, key, codec, dir, "2026-07-05T10:00:00Z", "2026-07-05T11:00:00Z")

	// Flip one bit inside the SECOND record's payload: the CRC catches
	// it, and recovery keeps the first record.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recLen := (len(raw) - len(logMagic)) / 2
	raw[len(logMagic)+recLen+10] ^= 0x01
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		t.Fatal(err)
	}

	a, err := OpenDir(dir, codec)
	if err != nil {
		t.Fatalf("recovery over bit-rotted log: %v", err)
	}
	defer a.Close()
	if a.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (second record dropped)", a.Len())
	}
	stats := a.Stats()
	if !stats.Truncated || stats.TornBytes != int64(recLen) {
		t.Fatalf("stats = %+v, want %d torn bytes", stats, recLen)
	}
}

func TestLogRecoverRejectsForgedRecord(t *testing.T) {
	// A record whose framing and CRC are intact but whose point was not
	// signed by the server key is cryptographic damage: with a verifier,
	// recovery must refuse to serve the archive rather than repair it.
	sc, key, codec := fixtures(t)
	dir := t.TempDir()
	putUpdates(t, sc, key, codec, dir, "2026-07-05T10:00:00Z")

	impostor, err := sc.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Append the forged record through the log itself (valid framing).
	a, err := OpenDir(dir, codec)
	if err != nil {
		t.Fatal(err)
	}
	forgedLabel := "2026-07-05T11:00:00Z"
	if err := a.Put(sc.IssueUpdate(impostor, forgedLabel)); err != nil {
		t.Fatal(err)
	}
	a.Close()

	_, err = OpenDir(dir, codec, WithVerifier(func(u core.KeyUpdate) bool {
		return sc.VerifyUpdate(key.Pub, u)
	}))
	if !errors.Is(err, ErrInvalidRecord) {
		t.Fatalf("err = %v, want ErrInvalidRecord", err)
	}
	if err == nil || !strings.Contains(err.Error(), forgedLabel) {
		t.Fatalf("error %v does not name the forged label", err)
	}
	// Without a verifier the structural checks alone accept it — which
	// is exactly why treserver always installs one.
	b, err := OpenDir(dir, codec)
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
}

func TestLogRejectsForeignFile(t *testing.T) {
	_, _, codec := fixtures(t)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, logName), []byte("not an update log at all"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(dir, codec); !errors.Is(err, ErrNotLog) {
		t.Fatalf("err = %v, want ErrNotLog", err)
	}
}

func TestAuditDir(t *testing.T) {
	sc, key, codec := fixtures(t)
	verify := func(u core.KeyUpdate) bool { return sc.VerifyUpdate(key.Pub, u) }

	t.Run("clean", func(t *testing.T) {
		dir := t.TempDir()
		putUpdates(t, sc, key, codec, dir, "2026-07-05T10:00:00Z", "2026-07-05T11:00:00Z")
		rep, err := AuditDir(dir, codec, verify)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Clean() || len(rep.Records) != 2 {
			t.Fatalf("report = %+v, want 2 clean records", rep)
		}
	})

	t.Run("torn", func(t *testing.T) {
		dir := t.TempDir()
		path := putUpdates(t, sc, key, codec, dir, "2026-07-05T10:00:00Z", "2026-07-05T11:00:00Z")
		info, _ := os.Stat(path)
		if err := os.Truncate(path, info.Size()-5); err != nil {
			t.Fatal(err)
		}
		rep, err := AuditDir(dir, codec, verify)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Clean() || !rep.Torn || rep.TornBytes == 0 {
			t.Fatalf("report = %+v, want torn", rep)
		}
		// Audit must NOT repair: the file is unchanged.
		after, _ := os.Stat(path)
		if after.Size() != info.Size()-5 {
			t.Fatal("audit modified the log")
		}
	})

	t.Run("invalid", func(t *testing.T) {
		dir := t.TempDir()
		putUpdates(t, sc, key, codec, dir, "2026-07-05T10:00:00Z")
		impostor, err := sc.ServerKeyGen(nil)
		if err != nil {
			t.Fatal(err)
		}
		a, err := OpenDir(dir, codec)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Put(sc.IssueUpdate(impostor, "2026-07-05T11:00:00Z")); err != nil {
			t.Fatal(err)
		}
		a.Close()
		rep, err := AuditDir(dir, codec, verify)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Clean() || rep.Invalid != 1 || rep.Torn {
			t.Fatalf("report = %+v, want exactly one invalid record", rep)
		}
	})
}

// TestMemoryLabelsOrderingContract pins the documented Labels()
// contract: a fresh lexicographically-sorted snapshot on every call,
// which for canonical RFC 3339 labels is chronological order, even
// under interleaved inserts in adversarial order.
func TestMemoryLabelsOrderingContract(t *testing.T) {
	sc, key, _ := fixtures(t)
	a := NewMemory()
	labels := []string{
		"2026-07-05T23:59:00Z",
		"2026-07-05T00:00:00Z",
		"2026-12-31T00:00:00Z",
		"2026-07-05T12:00:00Z",
		"2025-01-01T00:00:00Z",
		"2026-07-05T12:00:30Z",
	}
	want := make([]string, 0, len(labels))
	for i, l := range labels {
		if err := a.Put(sc.IssueUpdate(key, l)); err != nil {
			t.Fatal(err)
		}
		want = append(want, l)
		sort.Strings(want)
		got := a.Labels()
		if len(got) != len(want) {
			t.Fatalf("after %d puts: %d labels, want %d", i+1, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("after %d puts: Labels()[%d] = %q, want %q", i+1, j, got[j], want[j])
			}
		}
		// The snapshot must be FRESH: mutating it cannot corrupt the
		// archive's own state.
		if len(got) > 0 {
			got[0] = "mutated"
			if a.Labels()[0] == "mutated" {
				t.Fatal("Labels() returned shared state")
			}
		}
	}
	// Chronological == lexicographic for canonical labels: verify the
	// sorted sequence parses to non-decreasing instants.
	sorted := a.Labels()
	var prev time.Time
	for i, l := range sorted {
		ts, err := time.Parse(time.RFC3339, l)
		if err != nil {
			t.Fatalf("label %q not RFC 3339: %v", l, err)
		}
		if i > 0 && ts.Before(prev) {
			t.Fatalf("labels out of chronological order: %q before %q", sorted[i-1], l)
		}
		prev = ts
	}
}

func TestMemoryArchiveConcurrent(t *testing.T) {
	sc, key, _ := fixtures(t)
	a := NewMemory()
	done := make(chan struct{})
	labels := []string{"a", "b", "c", "d"}
	ups := make([]core.KeyUpdate, len(labels))
	for i, l := range labels {
		ups[i] = sc.IssueUpdate(key, l)
	}
	for i := 0; i < 4; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 100; j++ {
				if err := a.Put(ups[i%len(ups)]); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				a.Get(labels[j%len(labels)])
				a.Labels()
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if a.Len() != len(labels) {
		t.Fatalf("Len = %d, want %d", a.Len(), len(labels))
	}
}

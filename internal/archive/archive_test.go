package archive

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"timedrelease/internal/core"
	"timedrelease/internal/params"
	"timedrelease/internal/wire"
)

func fixtures(t *testing.T) (*core.Scheme, *core.ServerKeyPair, *wire.Codec) {
	t.Helper()
	set := params.MustPreset("Test160")
	sc := core.NewScheme(set)
	key, err := sc.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	return sc, key, wire.NewCodec(set)
}

func testArchiveContract(t *testing.T, a Archive, sc *core.Scheme, key *core.ServerKeyPair) {
	t.Helper()
	labels := []string{
		"2026-07-05T10:00:00Z",
		"2026-07-05T11:00:00Z",
		"2026-07-05T12:00:00Z",
	}
	// Insert out of order; Labels() must sort.
	for _, i := range []int{2, 0, 1} {
		if err := a.Put(sc.IssueUpdate(key, labels[i])); err != nil {
			t.Fatalf("Put(%s): %v", labels[i], err)
		}
	}
	if a.Len() != 3 {
		t.Fatalf("Len = %d, want 3", a.Len())
	}
	got := a.Labels()
	for i := range labels {
		if got[i] != labels[i] {
			t.Fatalf("Labels()[%d] = %q, want %q", i, got[i], labels[i])
		}
	}
	u, ok := a.Get(labels[1])
	if !ok || u.Label != labels[1] {
		t.Fatalf("Get(%s): %v %v", labels[1], u, ok)
	}
	if _, ok := a.Get("2030-01-01T00:00:00Z"); ok {
		t.Fatal("Get of unpublished label must miss")
	}
	// Idempotent re-put.
	if err := a.Put(sc.IssueUpdate(key, labels[0])); err != nil {
		t.Fatalf("idempotent Put: %v", err)
	}
	if a.Len() != 3 {
		t.Fatalf("Len after re-put = %d", a.Len())
	}
	// Conflicting update for the same label is rejected.
	conflict := core.KeyUpdate{Label: labels[0], Point: sc.Set.G}
	if err := a.Put(conflict); !errors.Is(err, ErrConflict) {
		t.Fatalf("conflicting Put: err=%v, want ErrConflict", err)
	}
}

func TestMemoryArchive(t *testing.T) {
	sc, key, _ := fixtures(t)
	testArchiveContract(t, NewMemory(), sc, key)
}

func TestFileArchive(t *testing.T) {
	sc, key, codec := fixtures(t)
	path := filepath.Join(t.TempDir(), "updates.log")
	a, err := OpenFile(path, codec)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	testArchiveContract(t, a, sc, key)
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: everything must be back, and updates must still verify.
	b, err := OpenFile(path, codec)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer b.Close()
	if b.Len() != 3 {
		t.Fatalf("Len after reopen = %d, want 3", b.Len())
	}
	for _, l := range b.Labels() {
		u, ok := b.Get(l)
		if !ok {
			t.Fatalf("lost update %s", l)
		}
		if !sc.VerifyUpdate(key.Pub, u) {
			t.Fatalf("update %s no longer verifies after reload", l)
		}
	}
	// Appending after reopen must work.
	if err := b.Put(sc.IssueUpdate(key, "2026-07-05T13:00:00Z")); err != nil {
		t.Fatalf("Put after reopen: %v", err)
	}
}

func TestFileArchiveRejectsCorruptLog(t *testing.T) {
	sc, key, codec := fixtures(t)
	path := filepath.Join(t.TempDir(), "updates.log")
	a, err := OpenFile(path, codec)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put(sc.IssueUpdate(key, "2026-07-05T10:00:00Z")); err != nil {
		t.Fatal(err)
	}
	a.Close()

	// Truncate mid-record.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path, codec); err == nil {
		t.Fatal("corrupt log must be rejected")
	}
}

func TestMemoryArchiveConcurrent(t *testing.T) {
	sc, key, _ := fixtures(t)
	a := NewMemory()
	done := make(chan struct{})
	labels := []string{"a", "b", "c", "d"}
	ups := make([]core.KeyUpdate, len(labels))
	for i, l := range labels {
		ups[i] = sc.IssueUpdate(key, l)
	}
	for i := 0; i < 4; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 100; j++ {
				if err := a.Put(ups[i%len(ups)]); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				a.Get(labels[j%len(labels)])
				a.Labels()
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if a.Len() != len(labels) {
		t.Fatalf("Len = %d, want %d", a.Len(), len(labels))
	}
}

package keyfile

import (
	"bytes"
	"fmt"
	"math/big"
	"os"
	"strconv"
	"strings"

	"timedrelease/internal/backend"
	"timedrelease/internal/core"
	"timedrelease/internal/params"
	"timedrelease/internal/threshold"
	"timedrelease/internal/wire"
)

// Threshold-share files: like key files but carrying the share index and
// the group public key, so a shard operator's file is self-contained.

const shareHeader = "tre-share-v1"

// SaveShare writes one threshold share plus the group public key.
func SaveShare(path string, set *params.Set, setup *threshold.Setup, share threshold.Share) error {
	codec := wire.NewCodec(set)
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s\nset=%s\nk=%d\nn=%d\nindex=%d\nscalar=%s\npub=%x\ngroup=%x\n",
		shareHeader, set.Name, setup.K, setup.N, share.Index, share.S.Text(16),
		set.B.AppendPoint(nil, backend.G1, share.Pub),
		codec.MarshalServerPublicKey(setup.GroupPub))
	return os.WriteFile(path, b.Bytes(), 0o600)
}

// LoadedShare is a share file's contents.
type LoadedShare struct {
	K, N     int
	Share    threshold.Share
	GroupPub core.ServerPublicKey // decoded, validated group public key
}

// LoadShare reads and validates a share file.
func LoadShare(path string, set *params.Set) (*LoadedShare, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("keyfile: %w", err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) == 0 || lines[0] != shareHeader {
		return nil, fmt.Errorf("keyfile: %s: bad share header", path)
	}
	kv := map[string]string{}
	for _, line := range lines[1:] {
		k, v, ok := strings.Cut(strings.TrimSpace(line), "=")
		if !ok {
			return nil, fmt.Errorf("keyfile: %s: malformed line %q", path, line)
		}
		kv[k] = v
	}
	if name, ok := kv["set"]; ok && name != set.Name {
		return nil, fmt.Errorf("keyfile: %s: %w (file %q, loading %q)", path, ErrSetMismatch, name, set.Name)
	}
	k, err1 := strconv.Atoi(kv["k"])
	n, err2 := strconv.Atoi(kv["n"])
	idx, err3 := strconv.Atoi(kv["index"])
	if err1 != nil || err2 != nil || err3 != nil || k < 1 || n < k || idx < 1 || idx > n {
		return nil, fmt.Errorf("keyfile: %s: bad k/n/index", path)
	}
	scalar, ok := new(big.Int).SetString(kv["scalar"], 16)
	if !ok {
		return nil, fmt.Errorf("keyfile: %s: bad scalar", path)
	}
	if err := checkScalar(scalar, set); err != nil {
		return nil, fmt.Errorf("keyfile: %s: %w", path, err)
	}
	var pubRaw, groupRaw []byte
	if _, err := fmt.Sscanf(kv["pub"], "%x", &pubRaw); err != nil {
		return nil, fmt.Errorf("keyfile: %s: bad pub: %w", path, err)
	}
	if _, err := fmt.Sscanf(kv["group"], "%x", &groupRaw); err != nil {
		return nil, fmt.Errorf("keyfile: %s: bad group: %w", path, err)
	}
	pub, err := set.B.ParsePoint(backend.G1, pubRaw)
	if err != nil {
		return nil, fmt.Errorf("keyfile: %s: pub: %w", path, err)
	}
	if !set.B.Equal(backend.G1, pub, set.B.ScalarMult(backend.G1, scalar, set.G)) {
		return nil, fmt.Errorf("keyfile: %s: share public point does not match scalar", path)
	}
	groupPub, err := wire.NewCodec(set).UnmarshalServerPublicKey(groupRaw)
	if err != nil {
		return nil, fmt.Errorf("keyfile: %s: group key: %w", path, err)
	}
	return &LoadedShare{
		K: k, N: n,
		Share:    threshold.Share{Index: idx, S: scalar, Pub: pub},
		GroupPub: groupPub,
	}, nil
}

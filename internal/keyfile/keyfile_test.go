package keyfile

import (
	"math/big"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"timedrelease/internal/core"
	"timedrelease/internal/params"
	"timedrelease/internal/threshold"
	"timedrelease/internal/wire"
)

func TestServerKeyRoundTrip(t *testing.T) {
	set := params.MustPreset("Test160")
	sc := core.NewScheme(set)
	key, err := sc.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "server.key")
	if err := SaveServerKey(path, set, key); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o600 {
		t.Fatalf("private key file mode %v, want 0600", info.Mode().Perm())
	}
	back, err := LoadServerKey(path, set)
	if err != nil {
		t.Fatal(err)
	}
	if back.S.Cmp(key.S) != 0 || !set.Curve.Equal(back.Pub.SG, key.Pub.SG) {
		t.Fatal("round trip mismatch")
	}
}

func TestUserKeyRoundTrip(t *testing.T) {
	set := params.MustPreset("Test160")
	sc := core.NewScheme(set)
	server, err := sc.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	user, err := sc.UserKeyGen(server.Pub, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "user.key")
	if err := SaveUserKey(path, set, user); err != nil {
		t.Fatal(err)
	}
	back, err := LoadUserKey(path, set)
	if err != nil {
		t.Fatal(err)
	}
	if back.A.Cmp(user.A) != 0 || !set.Curve.Equal(back.Pub.ASG, user.Pub.ASG) {
		t.Fatal("round trip mismatch")
	}
}

func TestLoadRejectsTamperedFiles(t *testing.T) {
	set := params.MustPreset("Test160")
	sc := core.NewScheme(set)
	key, err := sc.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "server.key")
	if err := SaveServerKey(path, set, key); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string]string{
		"bad header":      strings.Replace(string(raw), "tre-key-v1", "nope", 1),
		"wrong type":      strings.Replace(string(raw), "type=server", "type=user", 1),
		"scalar mismatch": strings.Replace(string(raw), "scalar=", "scalar=1", 1),
	}
	for name, content := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o600); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadServerKey(p, set); err == nil {
			t.Errorf("%s: load must fail", name)
		}
	}
}

func TestLoadRejectsOutOfRangeScalar(t *testing.T) {
	set := params.MustPreset("Test160")
	codec := wire.NewCodec(set)
	sc := core.NewScheme(set)
	key, err := sc.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Scalar q (out of range) with a matching pub is impossible, but the
	// range check must fire before the match check.
	body := render(typeServer, set.Name, new(big.Int).Set(set.Q), codec.MarshalServerPublicKey(key.Pub))
	path := filepath.Join(t.TempDir(), "bad.key")
	if err := os.WriteFile(path, body, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadServerKey(path, set); err == nil {
		t.Fatal("out-of-range scalar must be rejected")
	}
}

func TestPublicRoundTrip(t *testing.T) {
	set := params.MustPreset("Test160")
	sc := core.NewScheme(set)
	key, err := sc.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	enc := wire.NewCodec(set).MarshalServerPublicKey(key.Pub)
	path := filepath.Join(t.TempDir(), "server.pub")
	if err := SavePublic(path, enc); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPublic(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != string(enc) {
		t.Fatal("round trip mismatch")
	}
}

func TestShareRoundTrip(t *testing.T) {
	set := params.MustPreset("Test160")
	setup, err := threshold.Deal(set, nil, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, share := range setup.Shares {
		path := filepath.Join(dir, "share.key")
		if err := SaveShare(path, set, setup, share); err != nil {
			t.Fatalf("SaveShare: %v", err)
		}
		loaded, err := LoadShare(path, set)
		if err != nil {
			t.Fatalf("LoadShare: %v", err)
		}
		if loaded.K != 2 || loaded.N != 3 || loaded.Share.Index != share.Index {
			t.Fatalf("metadata mismatch: %+v", loaded)
		}
		if loaded.Share.S.Cmp(share.S) != 0 {
			t.Fatal("scalar mismatch")
		}
		if !set.Curve.Equal(loaded.Share.Pub, share.Pub) {
			t.Fatal("pub mismatch")
		}
	}
}

func TestLoadShareRejectsTampering(t *testing.T) {
	set := params.MustPreset("Test160")
	setup, err := threshold.Deal(set, nil, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "share.key")
	if err := SaveShare(path, set, setup, setup.Shares[0]); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"bad header": strings.Replace(string(raw), "tre-share-v1", "nah", 1),
		"bad index":  strings.Replace(string(raw), "index=1", "index=9", 1),
		"scalar":     strings.Replace(string(raw), "scalar=", "scalar=f", 1),
	}
	for name, content := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o600); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadShare(p, set); err == nil {
			t.Errorf("%s: LoadShare must fail", name)
		}
	}
}

// Package keyfile stores key material on disk for the CLI tools: a
// small text format with hex-encoded fields, private files written with
// 0600 permissions. Public halves are embedded so a key file is
// self-contained (no recomputation against a possibly-changed parameter
// set can silently alter the public key).
//
// Files written since the backend refactor also carry a set= line
// naming the parameter set they were generated under; loading such a
// file against a different set fails with ErrSetMismatch before any
// point decoding is attempted. Legacy files without the line still load
// (their point encodings are validated against the set as always).
package keyfile

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"math/big"
	"os"
	"strings"

	"timedrelease/internal/backend"
	"timedrelease/internal/core"
	"timedrelease/internal/params"
	"timedrelease/internal/wire"
)

const (
	header     = "tre-key-v1"
	typeServer = "server"
	typeUser   = "user"
)

// ErrSetMismatch reports a key file generated under a different
// parameter set than the one loading it. Point decoding is not even
// attempted — the set name recorded in the file disagrees.
var ErrSetMismatch = errors.New("keyfile: key file was written under a different parameter set")

// SaveServerKey writes a time-server key pair.
func SaveServerKey(path string, set *params.Set, key *core.ServerKeyPair) error {
	codec := wire.NewCodec(set)
	body := render(typeServer, set.Name, key.S, codec.MarshalServerPublicKey(key.Pub))
	return os.WriteFile(path, body, 0o600)
}

// LoadServerKey reads a time-server key pair.
func LoadServerKey(path string, set *params.Set) (*core.ServerKeyPair, error) {
	scalar, pub, err := parse(path, typeServer, set)
	if err != nil {
		return nil, err
	}
	spub, err := wire.NewCodec(set).UnmarshalServerPublicKey(pub)
	if err != nil {
		return nil, fmt.Errorf("keyfile: %s: %w", path, err)
	}
	if err := checkScalar(scalar, set); err != nil {
		return nil, fmt.Errorf("keyfile: %s: %w", path, err)
	}
	if !set.B.Equal(backend.G1, spub.SG, set.B.ScalarMult(backend.G1, scalar, spub.G)) {
		return nil, fmt.Errorf("keyfile: %s: public key does not match scalar", path)
	}
	return &core.ServerKeyPair{S: scalar, Pub: spub}, nil
}

// SaveUserKey writes a user key pair.
func SaveUserKey(path string, set *params.Set, key *core.UserKeyPair) error {
	codec := wire.NewCodec(set)
	body := render(typeUser, set.Name, key.A, codec.MarshalUserPublicKey(key.Pub))
	return os.WriteFile(path, body, 0o600)
}

// LoadUserKey reads a user key pair.
func LoadUserKey(path string, set *params.Set) (*core.UserKeyPair, error) {
	scalar, pub, err := parse(path, typeUser, set)
	if err != nil {
		return nil, err
	}
	upub, err := wire.NewCodec(set).UnmarshalUserPublicKey(pub)
	if err != nil {
		return nil, fmt.Errorf("keyfile: %s: %w", path, err)
	}
	if err := checkScalar(scalar, set); err != nil {
		return nil, fmt.Errorf("keyfile: %s: %w", path, err)
	}
	if !set.B.Equal(backend.G1, upub.AG, set.B.ScalarMult(backend.G1, scalar, set.G)) {
		return nil, fmt.Errorf("keyfile: %s: public key does not match scalar", path)
	}
	return &core.UserKeyPair{A: scalar, Pub: upub}, nil
}

// SavePublic writes raw public-key bytes (server or user wire encoding).
func SavePublic(path string, encoded []byte) error {
	return os.WriteFile(path, []byte(fmt.Sprintf("%x\n", encoded)), 0o644)
}

// LoadPublic reads raw public-key bytes written by SavePublic.
func LoadPublic(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("keyfile: %w", err)
	}
	var out []byte
	if _, err := fmt.Sscanf(strings.TrimSpace(string(raw)), "%x", &out); err != nil {
		return nil, fmt.Errorf("keyfile: %s: bad hex: %w", path, err)
	}
	return out, nil
}

func render(kind, setName string, scalar *big.Int, pub []byte) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s\ntype=%s\nset=%s\nscalar=%s\npub=%x\n", header, kind, setName, scalar.Text(16), pub)
	return b.Bytes()
}

func parse(path, wantKind string, set *params.Set) (*big.Int, []byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("keyfile: %w", err)
	}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	if !sc.Scan() || sc.Text() != header {
		return nil, nil, fmt.Errorf("keyfile: %s: bad header", path)
	}
	kv := map[string]string{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		k, v, ok := strings.Cut(line, "=")
		if !ok {
			return nil, nil, fmt.Errorf("keyfile: %s: malformed line %q", path, line)
		}
		kv[k] = v
	}
	if kv["type"] != wantKind {
		return nil, nil, fmt.Errorf("keyfile: %s: type %q, want %q", path, kv["type"], wantKind)
	}
	if name, ok := kv["set"]; ok && name != set.Name {
		return nil, nil, fmt.Errorf("keyfile: %s: %w (file %q, loading %q)", path, ErrSetMismatch, name, set.Name)
	}
	scalar, ok := new(big.Int).SetString(kv["scalar"], 16)
	if !ok {
		return nil, nil, fmt.Errorf("keyfile: %s: bad scalar", path)
	}
	var pub []byte
	if _, err := fmt.Sscanf(kv["pub"], "%x", &pub); err != nil {
		return nil, nil, fmt.Errorf("keyfile: %s: bad pub: %w", path, err)
	}
	return scalar, pub, nil
}

func checkScalar(s *big.Int, set *params.Set) error {
	if s.Sign() <= 0 || s.Cmp(set.Q) >= 0 {
		return errors.New("scalar out of range [1, q-1]")
	}
	return nil
}

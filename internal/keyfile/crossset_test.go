package keyfile

import (
	"errors"
	"path/filepath"
	"testing"

	"timedrelease/internal/core"
	"timedrelease/internal/params"
)

// TestCrossBackendLoadRejected pins the set= guard across backend
// families: a key file written under the symmetric Test160 set must
// fail to load against the BLS12-381 set (and vice versa) with
// ErrSetMismatch — the name check fires before any point parsing, so
// the error names both sets instead of complaining about bad bytes.
func TestCrossBackendLoadRejected(t *testing.T) {
	symSet := params.MustPreset("Test160")
	blsSet := params.MustPreset(params.PresetBLS12381)
	dir := t.TempDir()

	symKey, err := core.NewScheme(symSet).ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	symPath := filepath.Join(dir, "sym.key")
	if err := SaveServerKey(symPath, symSet, symKey); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadServerKey(symPath, blsSet); !errors.Is(err, ErrSetMismatch) {
		t.Fatalf("Test160 key under BLS12-381 set: err=%v, want ErrSetMismatch", err)
	}

	blsSC := core.NewScheme(blsSet)
	blsKey, err := blsSC.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	blsPath := filepath.Join(dir, "bls.key")
	if err := SaveServerKey(blsPath, blsSet, blsKey); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadServerKey(blsPath, symSet); !errors.Is(err, ErrSetMismatch) {
		t.Fatalf("BLS12-381 key under Test160 set: err=%v, want ErrSetMismatch", err)
	}

	// Under the right set the BLS key file round-trips, including the
	// G2 mirror of the public key.
	back, err := LoadServerKey(blsPath, blsSet)
	if err != nil {
		t.Fatal(err)
	}
	if back.S.Cmp(blsKey.S) != 0 || !blsSet.Curve.Equal(back.Pub.SG, blsKey.Pub.SG) {
		t.Fatal("BLS key round trip mismatch")
	}

	// User key files carry the same guard.
	user, err := blsSC.UserKeyGen(blsKey.Pub, nil)
	if err != nil {
		t.Fatal(err)
	}
	userPath := filepath.Join(dir, "user.key")
	if err := SaveUserKey(userPath, blsSet, user); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadUserKey(userPath, symSet); !errors.Is(err, ErrSetMismatch) {
		t.Fatalf("BLS user key under Test160 set: err=%v, want ErrSetMismatch", err)
	}
}

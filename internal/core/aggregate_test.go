package core

import (
	"fmt"
	"testing"

	"timedrelease/internal/curve"
	"timedrelease/internal/obs"
)

// issueRun publishes n consecutive updates plus their true aggregate.
func issueRun(e *testEnv, n int) ([]KeyUpdate, curve.Point) {
	ups := make([]KeyUpdate, n)
	agg := curve.Infinity()
	for i := range ups {
		ups[i] = e.sc.IssueUpdate(e.server, fmt.Sprintf("2026-07-05T12:%02d:00Z", i))
		agg = e.sc.Set.Curve.Add(agg, ups[i].Point)
	}
	return ups, agg
}

func TestVerifyUpdateAggregate(t *testing.T) {
	e := newTestEnv(t)
	ups, agg := issueRun(e, 12)

	if !e.sc.VerifyUpdateAggregate(e.server.Pub, ups, agg) {
		t.Fatal("genuine run must aggregate-verify")
	}
	// Empty run: identity aggregate only.
	if !e.sc.VerifyUpdateAggregate(e.server.Pub, nil, curve.Infinity()) {
		t.Fatal("empty run with identity aggregate must verify")
	}
	if e.sc.VerifyUpdateAggregate(e.server.Pub, nil, agg) {
		t.Fatal("empty run with non-identity aggregate must not verify")
	}
	// Wrong aggregate point.
	if e.sc.VerifyUpdateAggregate(e.server.Pub, ups, ups[0].Point) {
		t.Fatal("mismatched aggregate must not verify")
	}
	// A run missing one update no longer matches the aggregate.
	if e.sc.VerifyUpdateAggregate(e.server.Pub, ups[:len(ups)-1], agg) {
		t.Fatal("truncated run must not verify against the full aggregate")
	}
}

// TestAggregateDetectsForgedUpdateDifferential is the acceptance-
// criteria check: a single forged update inside an aggregated range is
// detected by the aggregate verifier, and the per-update batch verifier
// agrees — so a client falling back from one to the other reaches the
// same wholesale rejection.
func TestAggregateDetectsForgedUpdateDifferential(t *testing.T) {
	e := newTestEnv(t)
	impostor, err := e.sc.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	for forgeAt := 0; forgeAt < 10; forgeAt += 3 {
		ups, _ := issueRun(e, 10)
		ups[forgeAt] = e.sc.IssueUpdate(impostor, ups[forgeAt].Label) // right label, wrong key
		agg := curve.Infinity()
		for _, u := range ups {
			agg = e.sc.Set.Curve.Add(agg, u.Point) // honest sum over the tampered run
		}
		if e.sc.VerifyUpdateAggregate(e.server.Pub, ups, agg) {
			t.Fatalf("aggregate verify accepted a run with a forgery at %d", forgeAt)
		}
		batchOK, err := e.sc.VerifyUpdateBatch(e.server.Pub, ups)
		if err != nil {
			t.Fatal(err)
		}
		if batchOK {
			t.Fatalf("batch verify accepted a run with a forgery at %d", forgeAt)
		}
		// And the per-update check localises exactly the forgery.
		for i, u := range ups {
			if got := e.sc.VerifyUpdate(e.server.Pub, u); got != (i != forgeAt) {
				t.Fatalf("per-update verify at %d = %v with forgery at %d", i, got, forgeAt)
			}
		}
	}
}

// TestVerifyUpdateAggregateIsTwoPairings pins the acceptance criterion
// directly: however long the run, the aggregate check costs one pairing
// product (two pairings on the core.pairings counter).
func TestVerifyUpdateAggregateIsTwoPairings(t *testing.T) {
	e := newTestEnv(t)
	ups, agg := issueRun(e, 50)
	reg := obs.NewRegistry()
	e.sc.Instrument(reg)
	if !e.sc.VerifyUpdateAggregate(e.server.Pub, ups, agg) {
		t.Fatal("genuine run must verify")
	}
	if got := reg.Counter("core.pairings").Load(); got != 2 {
		t.Fatalf("aggregate verification of 50 updates cost %d pairings, want 2", got)
	}
}

// TestAggregateSumBindingCaveat documents (executably) the known limit
// of the plain aggregate equation: it binds the SUM of the delivered
// points, so two compensating tampers cancel — which is exactly why the
// client treats the blinded batch verifier as authoritative on any
// mismatch and why ciphertext-level authentication still guards
// decryption (docs/PROTOCOL.md).
func TestAggregateSumBindingCaveat(t *testing.T) {
	e := newTestEnv(t)
	ups, agg := issueRun(e, 4)
	c := e.sc.Set.Curve
	delta := e.sc.IssueUpdate(e.server, "some-other-label").Point
	ups[1].Point = c.Add(ups[1].Point, delta)
	ups[2].Point = c.Add(ups[2].Point, c.Neg(delta))
	if !e.sc.VerifyUpdateAggregate(e.server.Pub, ups, agg) {
		t.Fatal("compensating tamper unexpectedly caught — update the PROTOCOL.md threat model if the equation changed")
	}
	// The blinded batch verifier DOES catch it: per-update blinders
	// break the cancellation.
	ok, err := e.sc.VerifyUpdateBatch(e.server.Pub, ups)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("blinded batch verify must reject compensating tampers")
	}
}

package core

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"io"

	"timedrelease/internal/backend"
	"timedrelease/internal/curve"
	"timedrelease/internal/rohash"
)

// HybridCiphertext is a KEM/DEM ciphertext for bulk messages: the TRE
// pairing value acts as a key-encapsulation, and the payload is sealed
// with AES-256-CTR + HMAC-SHA-256 (encrypt-then-MAC). This is the
// production path for large plaintexts — the random-oracle XOR stream of
// the basic scheme is faithful to the paper but hashes the whole message
// length, while AES-CTR runs an order of magnitude faster on bulk data.
type HybridCiphertext struct {
	U   curve.Point // rG
	Box []byte      // IV ‖ AES-CTR body ‖ HMAC tag
}

const (
	hybridKeyLen = 64 // 32 bytes AES-256 + 32 bytes HMAC
	hybridIVLen  = aes.BlockSize
	hybridTagLen = sha256.Size
)

// EncryptHybrid encapsulates a DEM key to (receiver, label) and seals
// msg under it.
func (sc *Scheme) EncryptHybrid(rng io.Reader, spub ServerPublicKey, upub UserPublicKey, label string, msg []byte) (*HybridCiphertext, error) {
	if !sc.VerifyUserPublicKey(spub, upub) {
		return nil, ErrInvalidPublicKey
	}
	if rng == nil {
		rng = rand.Reader
	}
	r, err := sc.Set.B.RandScalar(rng)
	if err != nil {
		return nil, fmt.Errorf("tre: sampling encryption randomness: %w", err)
	}
	u, k, err := sc.encapsulate(spub, upub, label, r)
	if err != nil {
		return nil, err
	}
	box, err := demSeal(rng, sc.demKey(k), msg)
	if err != nil {
		return nil, err
	}
	return &HybridCiphertext{U: u, Box: box}, nil
}

// DecryptHybrid decapsulates with (private key, update) and opens the
// DEM. A wrong update or tampered box fails the MAC check.
func (sc *Scheme) DecryptHybrid(upriv *UserKeyPair, upd KeyUpdate, ct *HybridCiphertext) ([]byte, error) {
	if ct == nil || !sc.Set.B.IsOnCurve(backend.G1, ct.U) || ct.U.IsInfinity() {
		return nil, ErrInvalidCiphertext
	}
	k := sc.decapsulate(upriv, upd, ct.U)
	return demOpen(sc.demKey(k), ct.Box)
}

// demKey derives the 64-byte DEM key from the pairing value.
func (sc *Scheme) demKey(k backend.GT) []byte {
	return rohash.Expand("TRE-DEM", sc.Set.B.GTBytes(k), hybridKeyLen)
}

// demSeal encrypts msg with AES-256-CTR and appends an HMAC-SHA-256 tag
// over IV‖body (encrypt-then-MAC).
func demSeal(rng io.Reader, key, msg []byte) ([]byte, error) {
	block, err := aes.NewCipher(key[:32])
	if err != nil {
		return nil, fmt.Errorf("tre: dem cipher: %w", err)
	}
	out := make([]byte, hybridIVLen+len(msg), hybridIVLen+len(msg)+hybridTagLen)
	if _, err := io.ReadFull(rng, out[:hybridIVLen]); err != nil {
		return nil, fmt.Errorf("tre: sampling IV: %w", err)
	}
	cipher.NewCTR(block, out[:hybridIVLen]).XORKeyStream(out[hybridIVLen:], msg)
	mac := hmac.New(sha256.New, key[32:])
	mac.Write(out)
	return mac.Sum(out), nil
}

// demOpen verifies the tag and decrypts.
func demOpen(key, box []byte) ([]byte, error) {
	if len(box) < hybridIVLen+hybridTagLen {
		return nil, ErrInvalidCiphertext
	}
	body, tag := box[:len(box)-hybridTagLen], box[len(box)-hybridTagLen:]
	mac := hmac.New(sha256.New, key[32:])
	mac.Write(body)
	if !hmac.Equal(tag, mac.Sum(nil)) {
		return nil, ErrAuthFailed
	}
	block, err := aes.NewCipher(key[:32])
	if err != nil {
		return nil, fmt.Errorf("tre: dem cipher: %w", err)
	}
	msg := make([]byte, len(body)-hybridIVLen)
	cipher.NewCTR(block, body[:hybridIVLen]).XORKeyStream(msg, body[hybridIVLen:])
	return msg, nil
}

package core

import (
	"crypto/rand"
	"fmt"
	"io"
	"sync"

	"timedrelease/internal/backend"
	"timedrelease/internal/rohash"
)

// Encryptor amortises the expensive parts of encryption across many
// messages to the same receiver:
//
//   - the public-key well-formedness check (two Miller loops) runs once
//     at construction instead of per message;
//   - for each release label, the pairing base g_T = ê(asG, H1(T)) is
//     computed once and cached; subsequent messages need only a G1
//     scalar multiplication (for U = rG) and a G2 exponentiation
//     K = g_T^r — no Miller loop at all.
//
// Both paths produce EXACTLY the ciphertext distribution of
// Scheme.Encrypt / Scheme.EncryptCCA (same K for the same r, because
// ê(r·asG, H1(T)) = ê(asG, H1(T))^r); agreement is pinned by tests and
// the speedup is measured in experiment E11. An Encryptor is safe for
// concurrent use.
type Encryptor struct {
	sc   *Scheme
	spub ServerPublicKey
	upub UserPublicKey

	mu    sync.Mutex
	bases map[string]backend.GT // label → ê(asG, H1(label))
}

// NewEncryptor verifies the receiver's public key once and returns a
// caching encryptor for the (server, receiver) pair.
func (sc *Scheme) NewEncryptor(spub ServerPublicKey, upub UserPublicKey) (*Encryptor, error) {
	if !sc.VerifyUserPublicKey(spub, upub) {
		return nil, ErrInvalidPublicKey
	}
	return &Encryptor{
		sc:    sc,
		spub:  spub,
		upub:  upub,
		bases: make(map[string]backend.GT),
	}, nil
}

// base returns (computing and caching if needed) ê(asG, H1(label)),
// applying the same §5.1 item 6 label check as Scheme.Encrypt.
func (e *Encryptor) base(label string) (backend.GT, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if g, ok := e.bases[label]; ok {
		return g, nil
	}
	h := e.sc.hashLabel(label)
	if !e.sc.SafeLabel(e.spub, label) {
		return nil, ErrUnsafeLabel
	}
	g := e.sc.Set.B.Pair(e.upub.ASG, h)
	e.bases[label] = g
	return g, nil
}

// Encrypt produces a basic (CPA) ciphertext, byte-compatible with
// Scheme.Encrypt.
func (e *Encryptor) Encrypt(rng io.Reader, label string, msg []byte) (*Ciphertext, error) {
	r, err := e.sc.Set.B.RandScalar(rng)
	if err != nil {
		return nil, fmt.Errorf("tre: sampling encryption randomness: %w", err)
	}
	base, err := e.base(label)
	if err != nil {
		return nil, err
	}
	u := e.sc.Set.B.ScalarMultBase(e.sc.baseTable(backend.G1, e.spub.G), r)
	// Pairing values are unitary (norm 1 after the final exponentiation),
	// so the signed-window ladder with free inversion applies.
	k := e.sc.Set.B.GTExpUnitary(base, r)
	return &Ciphertext{U: u, V: rohash.XOR(msg, e.sc.maskH2(k, len(msg)))}, nil
}

// EncryptCCA produces a Fujisaki–Okamoto ciphertext, byte-compatible
// with Scheme.EncryptCCA.
func (e *Encryptor) EncryptCCA(rng io.Reader, label string, msg []byte) (*CCACiphertext, error) {
	if rng == nil {
		rng = rand.Reader
	}
	sigma := make([]byte, seedLen)
	if _, err := io.ReadFull(rng, sigma); err != nil {
		return nil, fmt.Errorf("tre: sampling FO seed: %w", err)
	}
	r := rohash.ToScalarNonZero("TRE-H3", rohash.Concat(sigma, msg), e.sc.Set.Q)
	base, err := e.base(label)
	if err != nil {
		return nil, err
	}
	u := e.sc.Set.B.ScalarMultBase(e.sc.baseTable(backend.G1, e.spub.G), r)
	k := e.sc.Set.B.GTExpUnitary(base, r) // unitary: pairing value
	return &CCACiphertext{
		U: u,
		W: rohash.XOR(sigma, e.sc.maskH2(k, seedLen)),
		V: rohash.XOR(msg, rohash.Expand("TRE-H4", sigma, len(msg))),
	}, nil
}

// CachedLabels reports how many label bases the encryptor holds.
func (e *Encryptor) CachedLabels() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.bases)
}

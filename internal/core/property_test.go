package core

import (
	"bytes"
	"testing"
	"testing/quick"
)

// Property tests over randomly drawn messages, labels and keys: the
// invariants that must hold for EVERY input, checked with testing/quick.

func TestPropertyRoundTripAnyMessageAnyLabel(t *testing.T) {
	e := newTestEnv(t)
	prop := func(msg []byte, label string) bool {
		ct, err := e.sc.Encrypt(nil, e.server.Pub, e.user.Pub, label, msg)
		if err != nil {
			return false
		}
		upd := e.sc.IssueUpdate(e.server, label)
		got, err := e.sc.Decrypt(e.user, upd, ct)
		return err == nil && bytes.Equal(got, msg)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCCARoundTripAndTamperReject(t *testing.T) {
	e := newTestEnv(t)
	upd := e.sc.IssueUpdate(e.server, testLabel)
	prop := func(msg []byte, flipByte uint8) bool {
		ct, err := e.sc.EncryptCCA(nil, e.server.Pub, e.user.Pub, testLabel, msg)
		if err != nil {
			return false
		}
		got, err := e.sc.DecryptCCA(e.server.Pub, e.user, upd, ct)
		if err != nil || !bytes.Equal(got, msg) {
			return false
		}
		// Any single-byte flip anywhere in W (or V when non-empty) must be
		// rejected.
		ct.W[int(flipByte)%len(ct.W)] ^= 1
		_, err = e.sc.DecryptCCA(e.server.Pub, e.user, upd, ct)
		return err != nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCiphertextsAreRandomised(t *testing.T) {
	// Encrypting the same message twice must give distinct ciphertexts
	// (fresh r each time) that both decrypt correctly.
	e := newTestEnv(t)
	upd := e.sc.IssueUpdate(e.server, testLabel)
	prop := func(msg []byte) bool {
		if len(msg) == 0 {
			msg = []byte{0}
		}
		c1, err := e.sc.Encrypt(nil, e.server.Pub, e.user.Pub, testLabel, msg)
		if err != nil {
			return false
		}
		c2, err := e.sc.Encrypt(nil, e.server.Pub, e.user.Pub, testLabel, msg)
		if err != nil {
			return false
		}
		if e.sc.Set.Curve.Equal(c1.U, c2.U) || bytes.Equal(c1.V, c2.V) {
			return false // randomness reuse!
		}
		g1, err := e.sc.Decrypt(e.user, upd, c1)
		if err != nil {
			return false
		}
		g2, err := e.sc.Decrypt(e.user, upd, c2)
		if err != nil {
			return false
		}
		return bytes.Equal(g1, msg) && bytes.Equal(g2, msg)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDistinctLabelsGiveDistinctUpdates(t *testing.T) {
	e := newTestEnv(t)
	seen := map[string]string{}
	prop := func(label string) bool {
		upd := e.sc.IssueUpdate(e.server, label)
		if !e.sc.VerifyUpdate(e.server.Pub, upd) {
			return false
		}
		key := upd.Point.String()
		if prev, ok := seen[key]; ok {
			return prev == label // same point ⇒ must be the same label
		}
		seen[key] = label
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyUpdateBindsExactLabel(t *testing.T) {
	// An update never verifies under any other label (tests the BLS
	// binding across random label pairs).
	e := newTestEnv(t)
	prop := func(l1, l2 string) bool {
		upd := e.sc.IssueUpdate(e.server, l1)
		relabelled := upd
		relabelled.Label = l2
		ok := e.sc.VerifyUpdate(e.server.Pub, relabelled)
		if l1 == l2 {
			return ok
		}
		return !ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPropertyEpochKeyMatchesDirectDecryption(t *testing.T) {
	e := newTestEnv(t)
	prop := func(msg []byte, label string) bool {
		upd := e.sc.IssueUpdate(e.server, label)
		ek := e.sc.DeriveEpochKey(e.user, upd)
		ct, err := e.sc.Encrypt(nil, e.server.Pub, e.user.Pub, label, msg)
		if err != nil {
			return false
		}
		direct, err := e.sc.Decrypt(e.user, upd, ct)
		if err != nil {
			return false
		}
		insulated, err := e.sc.DecryptWithEpochKey(ek, ct)
		if err != nil {
			return false
		}
		return bytes.Equal(direct, insulated) && bytes.Equal(direct, msg)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

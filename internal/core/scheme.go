// Package core implements the paper's primary contribution: the TRE
// timed-release public-key encryption scheme of Chan–Blake §5.1,
// together with the CCA-secure variants (§5: Fujisaki–Okamoto and
// REACT), the key-insulation mechanism (§5.3.3) and server-change
// re-keying (§5.3.4).
//
// Roles and flow:
//
//   - The time server generates (G, sG) once, then — completely
//     passively — publishes the time-bound key update I_T = s·H1(T) when
//     each instant T arrives. One update serves every user.
//   - A user generates private a and public key (aG, a·sG).
//   - A sender encrypts to (receiver public key, release label T) with
//     no server interaction: C = ⟨rG, M ⊕ H2(ê(r·asG, H1(T)))⟩.
//   - The receiver decrypts with private key a and the (public) update:
//     K' = ê(U, I_T)^a.
//
// Decryption therefore requires BOTH the receiver's private key and the
// server's update — neither alone suffices, the server never learns who
// communicates, and one broadcast update unlocks every ciphertext with
// that release time.
package core

import (
	"crypto/sha256"
	"errors"
	"io"
	"math/big"

	"timedrelease/internal/backend"
	"timedrelease/internal/bls"
	"timedrelease/internal/curve"
	"timedrelease/internal/obs"
	"timedrelease/internal/params"
	"timedrelease/internal/rohash"
)

// TimeDomain is the H1 domain-separation tag for time labels. Key
// updates and encryption must agree on it, and it is distinct from every
// other oracle in the repository (identities, policies, HIBE nodes).
const TimeDomain = "time-label"

// Errors returned by the scheme.
var (
	ErrInvalidPublicKey  = errors.New("tre: user public key fails the pairing well-formedness check")
	ErrInvalidUpdate     = errors.New("tre: time-bound key update fails verification")
	ErrInvalidCiphertext = errors.New("tre: ciphertext is malformed or inconsistent")
	ErrLabelMismatch     = errors.New("tre: key update is for a different label")
	ErrAuthFailed        = errors.New("tre: ciphertext integrity check failed")
	ErrUnsafeLabel       = errors.New("tre: release label hashes onto the server generator (paper §5.1 item 6); perturb the label")
)

// Scheme binds the TRE algorithms to a parameter set.
type Scheme struct {
	Set *params.Set

	// prepared caches fixed-argument pairing precomputations per server
	// key (keyed by a digest of the compressed encodings of G and sG).
	// The points of a server key stay fixed across every update and
	// public-key verification, so each Miller-loop line schedule is
	// computed once per key and reused for the lifetime of the Scheme.
	// The cache is sharded with lock-free reads, single-flight builds
	// and LRU eviction (cache.go); in practice it holds one entry, or a
	// handful under server change (§5.3.4).
	prepared pointCache[bls.PreparedPublicKey]

	// bases caches fixed-base scalar-multiplication tables, keyed like
	// prepared. The multiplied points of keygen and encryption are the
	// canonical generator and the server key halves — all fixed for the
	// lifetime of a Scheme — so a·G, a·sG and r·G all run on the
	// windowed fixed-base ladder after the first use of each point.
	bases pointCache[backend.BaseTable]

	// labels caches H1(label) hash-to-point results, keyed by a digest
	// of the label string. Hash-to-group is try-and-increment (a
	// Legendre symbol per candidate plus a square root), which dominates
	// the allocation profile of Encrypt — and one release label serves
	// every user of an epoch, so the same handful of labels is hashed
	// over and over by Encrypt, Decrypt and VerifyUpdate. Entries are
	// immutable points; the LRU cap bounds growth under label churn.
	labels pointCache[curve.Point]

	// met holds the scheme's observability hooks. All fields are nil
	// until Instrument is called; obs types no-op on nil, so the
	// uninstrumented hot path pays one branch per event.
	met schemeMetrics
}

// schemeMetrics are the core-layer counters (see docs/OBSERVABILITY.md
// for the metric name registry).
type schemeMetrics struct {
	pairings     *obs.Counter // pairing evaluations (Miller loop + final exp)
	preparedHit  *obs.Counter // prepared server-key cache hits
	preparedMiss *obs.Counter // … and misses (one Precompute each)
	baseHit      *obs.Counter // fixed-base table cache hits
	baseMiss     *obs.Counter // … and misses (one PrecomputeBase each)
	labelHit     *obs.Counter // H1(label) point cache hits
	labelMiss    *obs.Counter // … and misses (one HashToGroup each)
}

// Instrument registers the scheme's counters on r (metric names
// core.*) and starts recording. Call before concurrent use; returns sc
// for chaining.
func (sc *Scheme) Instrument(r *obs.Registry) *Scheme {
	sc.met = schemeMetrics{
		pairings:     r.Counter("core.pairings"),
		preparedHit:  r.Counter("core.prepared_cache_hit"),
		preparedMiss: r.Counter("core.prepared_cache_miss"),
		baseHit:      r.Counter("core.basetable_cache_hit"),
		baseMiss:     r.Counter("core.basetable_cache_miss"),
		labelHit:     r.Counter("core.labelpoint_cache_hit"),
		labelMiss:    r.Counter("core.labelpoint_cache_miss"),
	}
	return sc
}

// NewScheme returns a TRE scheme instance over the given parameters.
func NewScheme(set *params.Set) *Scheme {
	return &Scheme{Set: set}
}

// pointKeyBuf sizes the stack buffer the cache-key builders marshal
// into: two compressed points of the widest supported modulus
// (maxMontLimbs · 8 bytes each, plus tags). Wider custom fields spill
// to a heap append inside AppendMarshal — correct, just not
// allocation-free.
const pointKeyBuf = 2 * (1 + 32*8)

// pointKey digests one group-tagged compressed point encoding into a
// cache key without heap allocation. The tag byte keeps a G1 and a G2
// point with coincidentally equal encodings apart (the key is internal
// to the cache, never serialized).
func (sc *Scheme) pointKey(g backend.Group, p curve.Point) cacheKey {
	var buf [pointKeyBuf]byte
	b := append(buf[:0], byte(g))
	return sha256.Sum256(sc.Set.B.AppendPoint(b, g, p))
}

// pointKey2 digests two group-tagged compressed point encodings into a
// cache key.
func (sc *Scheme) pointKey2(g backend.Group, p, q curve.Point) cacheKey {
	var buf [pointKeyBuf]byte
	b := append(buf[:0], byte(g))
	b = sc.Set.B.AppendPoint(b, g, p)
	return sha256.Sum256(sc.Set.B.AppendPoint(b, g, q))
}

// baseTable returns the cached fixed-base table for p, building it on
// first use. Safe for concurrent use — reads are lock-free and a miss
// builds the table exactly once however many goroutines race on it;
// the returned table is immutable.
func (sc *Scheme) baseTable(g backend.Group, p curve.Point) backend.BaseTable {
	return *sc.bases.getOrBuild(sc.pointKey(g, p), func() *backend.BaseTable {
		t := sc.Set.B.PrecomputeBase(g, p)
		return &t
	}, sc.met.baseHit, sc.met.baseMiss)
}

// PreparedServerKey returns the cached fixed-argument pairing
// precomputation for a server key, building it on first use. Safe for
// concurrent use — reads are lock-free and a miss runs Precompute
// exactly once per key (single-flight); the returned key is immutable.
func (sc *Scheme) PreparedServerKey(spub ServerPublicKey) *bls.PreparedPublicKey {
	return sc.prepared.getOrBuild(sc.pointKey2(backend.G1, spub.G, spub.SG), func() *bls.PreparedPublicKey {
		return bls.PreparePublicKey(sc.Set, bls.PublicKey(spub))
	}, sc.met.preparedHit, sc.met.preparedMiss)
}

// ServerPublicKey is the time server's public key PK_S = (G, sG),
// plus — on asymmetric backends — the G2 mirror sG2 = s·G2 that the
// user-key well-formedness check pairs against. On symmetric backends
// SG2 is the same point as SG. The field layout matches bls.PublicKey
// so the two convert directly.
type ServerPublicKey struct {
	G   curve.Point // the server's generator ∈ G1
	SG  curve.Point // s·G ∈ G1
	SG2 curve.Point // s·G2 ∈ G2 (same point as SG when symmetric)
}

// ServerKeyPair holds the time server's private scalar and public key.
type ServerKeyPair struct {
	S   *big.Int
	Pub ServerPublicKey
}

// ServerKeyGen generates a time-server key pair over the canonical
// generator of the parameter set.
func (sc *Scheme) ServerKeyGen(rng io.Reader) (*ServerKeyPair, error) {
	k, err := bls.GenerateKey(sc.Set, rng)
	if err != nil {
		return nil, err
	}
	return &ServerKeyPair{S: k.S, Pub: ServerPublicKey{G: k.Pub.G, SG: k.Pub.SG, SG2: k.Pub.SG2}}, nil
}

// KeyUpdate is the time-bound key update I_T = s·H1(T): a BLS short
// signature on the time label, identical for all users, and
// self-authenticating against the server public key.
type KeyUpdate struct {
	Label string
	Point curve.Point // s·H1(Label)
}

// IssueUpdate produces the update for a label. In deployment this is
// called by the time server exactly when the labelled instant arrives —
// the scheme itself has no notion of clocks (see internal/timeserver).
func (sc *Scheme) IssueUpdate(server *ServerKeyPair, label string) KeyUpdate {
	k := bls.PrivateKey{S: server.S, Pub: bls.PublicKey(server.Pub)}
	sig := k.Sign(sc.Set, TimeDomain, []byte(label))
	return KeyUpdate{Label: label, Point: sig.Point}
}

// VerifyUpdate checks the self-authentication equation
// ê(G, I_T) = ê(sG, H1(T)). Both first pairing arguments are the fixed
// server key, so the check runs on the cached prepared path, and H1(T)
// comes from the scheme's label cache (an encrypting sender has
// usually already hashed the same label).
func (sc *Scheme) VerifyUpdate(spub ServerPublicKey, u KeyUpdate) bool {
	sc.met.pairings.Add(2) // one pairing per side of the check
	return sc.PreparedServerKey(spub).VerifyHash(sc.Set, sc.hashLabel(u.Label), bls.Signature{Point: u.Point})
}

// VerifyUpdateBatch checks many updates against one blinded batched
// pairing equation — two pairings total instead of two per update. It
// only reports whether the whole batch verifies; callers wanting to
// locate an offender fall back to per-update VerifyUpdate.
func (sc *Scheme) VerifyUpdateBatch(spub ServerPublicKey, updates []KeyUpdate) (bool, error) {
	if len(updates) == 0 {
		return true, nil
	}
	msgs := make([][]byte, len(updates))
	sigs := make([]bls.Signature, len(updates))
	for i, u := range updates {
		msgs[i] = []byte(u.Label)
		sigs[i] = bls.Signature{Point: u.Point}
	}
	sc.met.pairings.Add(2) // the whole batch collapses to one two-pairing check
	return sc.PreparedServerKey(spub).VerifyBatch(sc.Set, TimeDomain, msgs, sigs, nil)
}

// VerifyUpdateAggregate checks a whole run of updates against ONE
// aggregate signature with a single prepared pairing product:
//
//	Σ I_i = agg   and   ê(G, agg) = ê(sG, Σ H1(T_i))
//
// This is the O(1)-pairing catch-up check: n point additions plus two
// pairings, with every H1(T_i) served from the sharded label cache.
// The equation binds agg to the SUM of the updates, so a transport
// substituting compensating forgeries across two updates (+Δ on one,
// −Δ on another) defeats the sum check alone — which is why this is
// only a pre-filter: the client admits a range page to its verified
// cache only after the blinded per-update batch verify, whose random
// blinders break any cancellation (and ciphertext-level authentication
// still guards decryption). An empty run verifies iff agg is the
// identity.
func (sc *Scheme) VerifyUpdateAggregate(spub ServerPublicKey, updates []KeyUpdate, agg curve.Point) bool {
	b := sc.Set.B
	if len(updates) == 0 {
		return agg.IsInfinity()
	}
	sum := b.Infinity(backend.G2)
	hashes := make([]curve.Point, len(updates))
	for i, u := range updates {
		if u.Point.IsInfinity() || !b.InSubgroup(backend.G2, u.Point) {
			return false
		}
		sum = b.Add(backend.G2, sum, u.Point)
		hashes[i] = sc.hashLabel(u.Label)
	}
	if !b.Equal(backend.G2, sum, agg) {
		return false
	}
	sc.met.pairings.Add(2) // the whole run collapses to one two-pairing check
	return sc.PreparedServerKey(spub).VerifyAggregatePrepared(sc.Set, hashes, bls.Signature{Point: agg})
}

// UserPublicKey is PK_U = (aG, a·sG). AG is always taken over the
// canonical parameter-set generator (this is the CA-certified half and
// stays fixed across server changes, §5.3.4); ASG binds the key to the
// chosen server's secret so decryption necessarily involves a key
// update.
type UserPublicKey struct {
	AG  curve.Point // a·G
	ASG curve.Point // a·sG
}

// UserKeyPair holds a user's private scalar and public key.
type UserKeyPair struct {
	A   *big.Int
	Pub UserPublicKey
}

// UserKeyGen generates a user key pair bound to the given time server.
func (sc *Scheme) UserKeyGen(spub ServerPublicKey, rng io.Reader) (*UserKeyPair, error) {
	a, err := sc.Set.B.RandScalar(rng)
	if err != nil {
		return nil, err
	}
	return sc.UserKeyFromScalar(spub, a)
}

// UserKeyFromScalar derives the key pair for an explicit private scalar
// a ∈ [1, q-1].
func (sc *Scheme) UserKeyFromScalar(spub ServerPublicKey, a *big.Int) (*UserKeyPair, error) {
	if a.Sign() <= 0 || a.Cmp(sc.Set.Q) >= 0 {
		return nil, errors.New("tre: private scalar out of range [1, q-1]")
	}
	b := sc.Set.B
	return &UserKeyPair{
		A: new(big.Int).Set(a),
		Pub: UserPublicKey{
			AG:  b.ScalarMultBase(sc.baseTable(backend.G1, sc.Set.G), a),
			ASG: b.ScalarMultBase(sc.baseTable(backend.G1, spub.SG), a),
		},
	}, nil
}

// UserKeyFromPassword derives the private scalar from a human-memorable
// password and salt, as the paper suggests ("the secret key a could be
// generated by applying a good hash function to a human-memorable
// password"). The salt must be unique per user.
func (sc *Scheme) UserKeyFromPassword(spub ServerPublicKey, password, salt []byte) (*UserKeyPair, error) {
	a := rohash.ToScalarNonZero("TRE-password-key", rohash.Concat(salt, password), sc.Set.Q)
	return sc.UserKeyFromScalar(spub, a)
}

// VerifyUserPublicKey performs the sender-side well-formedness check
// ê(aG, sG) = ê(G, a·sG) (Encryption step 1): it guarantees the key is
// really of the form (aG, a·sG), so the receiver cannot decrypt without
// the server's update. The first pairing argument pairs the certified
// AG (over the canonical generator) with the server's sG; the second
// pairs the canonical generator with ASG — equal exactly when
// ASG = a·sG for the same a.
func (sc *Scheme) VerifyUserPublicKey(spub ServerPublicKey, upub UserPublicKey) bool {
	if upub.AG.IsInfinity() || upub.ASG.IsInfinity() {
		return false
	}
	b := sc.Set.B
	if !b.InSubgroup(backend.G1, upub.AG) || !b.InSubgroup(backend.G1, upub.ASG) {
		return false
	}
	// The fixed server points sit in the prepared key (on a symmetric
	// backend the line schedules of G and sG; on BLS12-381 the prepared
	// G2 schedules of the generator and sG2); the varying user points
	// pair as cheap per-call arguments.
	pk := sc.PreparedServerKey(ServerPublicKey{G: sc.Set.G, SG: spub.SG, SG2: spub.SG2})
	sc.met.pairings.Add(2)
	return pk.SameKey(upub.AG, upub.ASG)
}

// hashLabel is the paper's H1 applied to a time label, memoised in the
// scheme's sharded label cache: one epoch's label is hashed by every
// Encrypt, Decrypt and update verification, and try-and-increment
// hash-to-point is the single most allocation-heavy step of
// encryption. The cached point is shared and must be treated as
// immutable by callers (all curve operations copy their inputs).
func (sc *Scheme) hashLabel(label string) curve.Point {
	return *sc.labels.getOrBuild(sha256.Sum256([]byte(label)), func() *curve.Point {
		p := sc.Set.B.HashToG2(TimeDomain, []byte(label))
		return &p
	}, sc.met.labelHit, sc.met.labelMiss)
}

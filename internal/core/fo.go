package core

import (
	"crypto/rand"
	"crypto/subtle"
	"fmt"
	"io"

	"timedrelease/internal/backend"
	"timedrelease/internal/curve"
	"timedrelease/internal/rohash"
)

// seedLen is the length of the Fujisaki-Okamoto seed σ and of the REACT
// ephemeral secret R.
const seedLen = 32

// CCACiphertext is the Fujisaki–Okamoto-transformed ciphertext
//
//	C = ⟨ rG, σ ⊕ H2(K), M ⊕ H4(σ) ⟩  with  r = H3(σ ‖ M)
//
// making the basic scheme chosen-ciphertext secure in the random-oracle
// model, as §5 prescribes ("the Fujisaki-Okamoto transform can be
// applied to our schemes to obtain chosen-ciphertext secure schemes").
type CCACiphertext struct {
	U curve.Point // rG, r derived from (σ, M)
	W []byte      // σ ⊕ H2(K), seedLen bytes
	V []byte      // M ⊕ H4(σ)
}

// EncryptCCA encrypts msg under the Fujisaki–Okamoto transform.
func (sc *Scheme) EncryptCCA(rng io.Reader, spub ServerPublicKey, upub UserPublicKey, label string, msg []byte) (*CCACiphertext, error) {
	if !sc.VerifyUserPublicKey(spub, upub) {
		return nil, ErrInvalidPublicKey
	}
	if rng == nil {
		rng = rand.Reader
	}
	sigma := make([]byte, seedLen)
	if _, err := io.ReadFull(rng, sigma); err != nil {
		return nil, fmt.Errorf("tre: sampling FO seed: %w", err)
	}
	r := rohash.ToScalarNonZero("TRE-H3", rohash.Concat(sigma, msg), sc.Set.Q)
	u, k, err := sc.encapsulate(spub, upub, label, r)
	if err != nil {
		return nil, err
	}
	return &CCACiphertext{
		U: u,
		W: rohash.XOR(sigma, sc.maskH2(k, seedLen)),
		V: rohash.XOR(msg, rohash.Expand("TRE-H4", sigma, len(msg))),
	}, nil
}

// DecryptCCA decrypts and authenticates an FO ciphertext: it recovers
// (σ, M), recomputes r = H3(σ ‖ M) and rejects unless U = rG — the
// re-encryption check that defeats chosen-ciphertext attacks and also
// catches decryption under a wrong or forged key update.
func (sc *Scheme) DecryptCCA(spub ServerPublicKey, upriv *UserKeyPair, upd KeyUpdate, ct *CCACiphertext) ([]byte, error) {
	if ct == nil || len(ct.W) != seedLen || !sc.Set.B.IsOnCurve(backend.G1, ct.U) || ct.U.IsInfinity() {
		return nil, ErrInvalidCiphertext
	}
	k := sc.decapsulate(upriv, upd, ct.U)
	return sc.foOpen(spub, k, ct)
}

// foOpen completes FO decryption from the recovered pairing value:
// unmask σ and M, recompute r, and run the re-encryption check.
func (sc *Scheme) foOpen(spub ServerPublicKey, k backend.GT, ct *CCACiphertext) ([]byte, error) {
	sigma := rohash.XOR(ct.W, sc.maskH2(k, seedLen))
	msg := rohash.XOR(ct.V, rohash.Expand("TRE-H4", sigma, len(ct.V)))
	r := rohash.ToScalarNonZero("TRE-H3", rohash.Concat(sigma, msg), sc.Set.Q)
	if !sc.Set.B.Equal(backend.G1, ct.U, sc.Set.B.ScalarMultBase(sc.baseTable(backend.G1, spub.G), r)) {
		return nil, ErrAuthFailed
	}
	return msg, nil
}

// constEq is constant-time byte-slice equality.
func constEq(a, b []byte) bool {
	return len(a) == len(b) && subtle.ConstantTimeCompare(a, b) == 1
}

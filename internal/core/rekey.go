package core

import (
	"timedrelease/internal/backend"
	"timedrelease/internal/curve"
)

// ReKeyForServer implements §5.3.4: when a sender insists on a different
// time server S' (public key (G', s'G')), the receiver derives a new
// public key (aG, a·s'G') from the same private scalar. No new CA
// certificate is needed — the original certified aG vouches for the new
// key via VerifyReKeyedKey.
func (sc *Scheme) ReKeyForServer(upriv *UserKeyPair, newServer ServerPublicKey) UserPublicKey {
	return UserPublicKey{
		AG:  upriv.Pub.AG.Clone(), // the CA-certified half is unchanged
		ASG: sc.Set.B.ScalarMult(backend.G1, upriv.A, newServer.SG),
	}
}

// VerifyReKeyedKey checks a re-keyed public key against the certified
// aG: ê(G, a·s'G') = ê(s'G', aG). Only the holder of a can produce an
// ASG' satisfying this, so the original certificate transfers to the new
// server binding. certifiedAG is the aG from the user's original,
// CA-certified public key; the check is generator-agnostic (the new
// server may use a different generator).
func (sc *Scheme) VerifyReKeyedKey(certifiedAG curve.Point, newServer ServerPublicKey, newPub UserPublicKey) bool {
	if !sc.Set.B.Equal(backend.G1, certifiedAG, newPub.AG) {
		return false
	}
	if newPub.ASG.IsInfinity() || !sc.Set.B.InSubgroup(backend.G1, newPub.ASG) {
		return false
	}
	// ê(G, ASG') = ê(G, G')^{as'} must equal ê(s'G', aG) = ê(G', G)^{s'a}
	// — the same-key equation over the new server's key. Both fixed
	// arguments (the canonical generator and the new server's s'G') sit
	// in the prepared cache.
	pk := sc.PreparedServerKey(ServerPublicKey{G: sc.Set.G, SG: newServer.SG, SG2: newServer.SG2})
	sc.met.pairings.Add(2)
	return pk.SameKey(certifiedAG, newPub.ASG)
}

package core

import (
	"sync"
	"testing"

	"timedrelease/internal/backend"
	"timedrelease/internal/bls"
	"timedrelease/internal/curve"
	"timedrelease/internal/obs"
	"timedrelease/internal/params"
)

// TestPreparedCacheSingleFlight hammers the prepared-key cache from many
// goroutines over a mix of shared and distinct server keys and asserts
// the single-flight contract: Precompute runs exactly once per distinct
// key (miss counter == distinct keys), every caller for a given key
// observes the same immutable value, and the race detector sees no
// unsynchronised access. Run with -race (make check does).
func TestPreparedCacheSingleFlight(t *testing.T) {
	set := params.MustPreset("Test160")
	sc := NewScheme(set).Instrument(obs.NewRegistry())

	const distinctKeys = 4
	servers := make([]*ServerKeyPair, distinctKeys)
	for i := range servers {
		k, err := sc.ServerKeyGen(nil)
		if err != nil {
			t.Fatalf("ServerKeyGen: %v", err)
		}
		servers[i] = k
	}

	const goroutines = 16
	const iters = 8
	results := make([][distinctKeys]*bls.PreparedPublicKey, goroutines)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for it := 0; it < iters; it++ {
				for i, srv := range servers {
					pk := sc.PreparedServerKey(srv.Pub)
					if pk == nil {
						t.Errorf("nil prepared key")
						return
					}
					if results[g][i] == nil {
						results[g][i] = pk
					} else if results[g][i] != pk {
						t.Errorf("goroutine %d key %d: prepared pointer changed between calls", g, i)
						return
					}
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()

	// Every goroutine must have observed the same pointer per key: one
	// Precompute per key, shared by all callers.
	for i := 0; i < distinctKeys; i++ {
		for g := 1; g < goroutines; g++ {
			if results[g][i] != results[0][i] {
				t.Fatalf("key %d: goroutine %d saw a different prepared value than goroutine 0", i, g)
			}
		}
	}

	if miss := sc.met.preparedMiss.Load(); miss != distinctKeys {
		t.Fatalf("preparedMiss = %d, want %d (duplicate Precompute work)", miss, distinctKeys)
	}
	wantHits := int64(goroutines*iters*distinctKeys - distinctKeys)
	if hit := sc.met.preparedHit.Load(); hit != wantHits {
		t.Fatalf("preparedHit = %d, want %d", hit, wantHits)
	}
	if n := sc.prepared.size(); n != distinctKeys {
		t.Fatalf("cache holds %d entries, want %d", n, distinctKeys)
	}
}

// TestBaseTableCacheBoundedUnderChurn floods the base-table cache with
// far more distinct keys than its capacity, concurrently, and asserts
// the eviction policy keeps it bounded while lookups keep returning
// correct tables.
func TestBaseTableCacheBoundedUnderChurn(t *testing.T) {
	set := params.MustPreset("Test160")
	sc := NewScheme(set).Instrument(obs.NewRegistry())
	c := set.Curve

	const churnKeys = 3 * cacheShards * cacheShardCap
	pts := make([]curve.Point, churnKeys)
	for i := range pts {
		p, err := c.RandomSubgroupPoint(nil)
		if err != nil {
			t.Fatalf("RandomSubgroupPoint: %v", err)
		}
		pts[i] = p
	}

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < churnKeys; i += goroutines {
				tab := sc.baseTable(backend.G1, pts[i])
				if tab.IsInfinity() {
					t.Errorf("unexpected infinity table")
					return
				}
				base := tab.Base()
				if base.X.Cmp(pts[i].X) != 0 || base.Y.Cmp(pts[i].Y) != 0 {
					t.Errorf("table base mismatch for key %d", i)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if n := sc.bases.size(); n > cacheShards*cacheShardCap {
		t.Fatalf("cache grew to %d entries under churn, cap is %d", n, cacheShards*cacheShardCap)
	}
}

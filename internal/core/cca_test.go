package core

import (
	"bytes"
	"errors"
	"testing"
)

func TestFORoundTrip(t *testing.T) {
	e := newTestEnv(t)
	msg := []byte("chosen-ciphertext secure payload")
	ct, err := e.sc.EncryptCCA(nil, e.server.Pub, e.user.Pub, testLabel, msg)
	if err != nil {
		t.Fatalf("EncryptCCA: %v", err)
	}
	upd := e.sc.IssueUpdate(e.server, testLabel)
	got, err := e.sc.DecryptCCA(e.server.Pub, e.user, upd, ct)
	if err != nil {
		t.Fatalf("DecryptCCA: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("round trip mismatch: %q != %q", got, msg)
	}
}

func TestFORejectsWrongUpdate(t *testing.T) {
	e := newTestEnv(t)
	ct, err := e.sc.EncryptCCA(nil, e.server.Pub, e.user.Pub, testLabel, []byte("early bird"))
	if err != nil {
		t.Fatalf("EncryptCCA: %v", err)
	}
	wrong := e.sc.IssueUpdate(e.server, "earlier label")
	if _, err := e.sc.DecryptCCA(e.server.Pub, e.user, wrong, ct); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("decrypting with wrong update: err=%v, want ErrAuthFailed", err)
	}
}

func TestFORejectsTampering(t *testing.T) {
	e := newTestEnv(t)
	msg := []byte("integrity matters")
	upd := e.sc.IssueUpdate(e.server, testLabel)

	mutations := map[string]func(*CCACiphertext){
		"flip V byte": func(ct *CCACiphertext) { ct.V[0] ^= 1 },
		"flip W byte": func(ct *CCACiphertext) { ct.W[0] ^= 1 },
		"replace U":   func(ct *CCACiphertext) { ct.U = e.sc.Set.Curve.Add(ct.U, e.sc.Set.G) },
	}
	for name, mutate := range mutations {
		ct, err := e.sc.EncryptCCA(nil, e.server.Pub, e.user.Pub, testLabel, msg)
		if err != nil {
			t.Fatalf("EncryptCCA: %v", err)
		}
		mutate(ct)
		if _, err := e.sc.DecryptCCA(e.server.Pub, e.user, upd, ct); err == nil {
			t.Fatalf("%s: tampered ciphertext must be rejected", name)
		}
	}
}

func TestFORejectsMalformedCiphertext(t *testing.T) {
	e := newTestEnv(t)
	upd := e.sc.IssueUpdate(e.server, testLabel)
	if _, err := e.sc.DecryptCCA(e.server.Pub, e.user, upd, nil); !errors.Is(err, ErrInvalidCiphertext) {
		t.Fatalf("nil ciphertext: err=%v", err)
	}
	ct := &CCACiphertext{W: []byte("short")}
	if _, err := e.sc.DecryptCCA(e.server.Pub, e.user, upd, ct); !errors.Is(err, ErrInvalidCiphertext) {
		t.Fatalf("short W: err=%v", err)
	}
}

func TestREACTRoundTrip(t *testing.T) {
	e := newTestEnv(t)
	msg := []byte("REACT payload")
	ct, err := e.sc.EncryptREACT(nil, e.server.Pub, e.user.Pub, testLabel, msg)
	if err != nil {
		t.Fatalf("EncryptREACT: %v", err)
	}
	upd := e.sc.IssueUpdate(e.server, testLabel)
	got, err := e.sc.DecryptREACT(e.user, upd, ct)
	if err != nil {
		t.Fatalf("DecryptREACT: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("round trip mismatch: %q != %q", got, msg)
	}
}

func TestREACTRejectsTampering(t *testing.T) {
	e := newTestEnv(t)
	upd := e.sc.IssueUpdate(e.server, testLabel)
	mutations := map[string]func(*REACTCiphertext){
		"flip V byte":   func(ct *REACTCiphertext) { ct.V[0] ^= 1 },
		"flip W byte":   func(ct *REACTCiphertext) { ct.W[0] ^= 1 },
		"flip tag byte": func(ct *REACTCiphertext) { ct.Tag[0] ^= 1 },
		"replace U":     func(ct *REACTCiphertext) { ct.U = e.sc.Set.Curve.Add(ct.U, e.sc.Set.G) },
	}
	for name, mutate := range mutations {
		ct, err := e.sc.EncryptREACT(nil, e.server.Pub, e.user.Pub, testLabel, []byte("payload"))
		if err != nil {
			t.Fatalf("EncryptREACT: %v", err)
		}
		mutate(ct)
		if _, err := e.sc.DecryptREACT(e.user, upd, ct); !errors.Is(err, ErrAuthFailed) {
			t.Fatalf("%s: err=%v, want ErrAuthFailed", name, err)
		}
	}
}

func TestREACTRejectsWrongUpdate(t *testing.T) {
	e := newTestEnv(t)
	ct, err := e.sc.EncryptREACT(nil, e.server.Pub, e.user.Pub, testLabel, []byte("m"))
	if err != nil {
		t.Fatalf("EncryptREACT: %v", err)
	}
	wrong := e.sc.IssueUpdate(e.server, "another label")
	if _, err := e.sc.DecryptREACT(e.user, wrong, ct); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("wrong update: err=%v, want ErrAuthFailed", err)
	}
}

func TestHybridRoundTripAndTampering(t *testing.T) {
	e := newTestEnv(t)
	msg := bytes.Repeat([]byte("bulk data "), 1000)
	ct, err := e.sc.EncryptHybrid(nil, e.server.Pub, e.user.Pub, testLabel, msg)
	if err != nil {
		t.Fatalf("EncryptHybrid: %v", err)
	}
	upd := e.sc.IssueUpdate(e.server, testLabel)
	got, err := e.sc.DecryptHybrid(e.user, upd, ct)
	if err != nil {
		t.Fatalf("DecryptHybrid: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("hybrid round trip mismatch")
	}

	ct.Box[len(ct.Box)/2] ^= 1
	if _, err := e.sc.DecryptHybrid(e.user, upd, ct); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("tampered box: err=%v, want ErrAuthFailed", err)
	}

	wrong := e.sc.IssueUpdate(e.server, "different label")
	ct2, err := e.sc.EncryptHybrid(nil, e.server.Pub, e.user.Pub, testLabel, msg)
	if err != nil {
		t.Fatalf("EncryptHybrid: %v", err)
	}
	if _, err := e.sc.DecryptHybrid(e.user, wrong, ct2); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("wrong update: err=%v, want ErrAuthFailed", err)
	}
}

func TestEpochKeyDecryption(t *testing.T) {
	e := newTestEnv(t)
	msg := []byte("decrypted on the insecure device")
	upd := e.sc.IssueUpdate(e.server, testLabel)
	ek := e.sc.DeriveEpochKey(e.user, upd)

	if !e.sc.VerifyEpochKey(e.server.Pub, e.user.Pub, upd, ek) {
		t.Fatal("honest epoch key must verify")
	}

	ct, err := e.sc.Encrypt(nil, e.server.Pub, e.user.Pub, testLabel, msg)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	got, err := e.sc.DecryptWithEpochKey(ek, ct)
	if err != nil {
		t.Fatalf("DecryptWithEpochKey: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("epoch-key decryption mismatch")
	}

	// CCA variant.
	cct, err := e.sc.EncryptCCA(nil, e.server.Pub, e.user.Pub, testLabel, msg)
	if err != nil {
		t.Fatalf("EncryptCCA: %v", err)
	}
	got, err = e.sc.DecryptCCAWithEpochKey(e.server.Pub, ek, cct)
	if err != nil {
		t.Fatalf("DecryptCCAWithEpochKey: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("epoch-key CCA decryption mismatch")
	}
}

func TestEpochKeyIsolation(t *testing.T) {
	// A compromised epoch key must not decrypt another epoch's traffic —
	// the key-insulation property (§5.3.3).
	e := newTestEnv(t)
	msg := []byte("next epoch's secret")
	updNow := e.sc.IssueUpdate(e.server, "epoch-1")
	ekNow := e.sc.DeriveEpochKey(e.user, updNow)

	ct, err := e.sc.Encrypt(nil, e.server.Pub, e.user.Pub, "epoch-2", msg)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	got, err := e.sc.DecryptWithEpochKey(ekNow, ct)
	if err != nil {
		t.Fatalf("DecryptWithEpochKey: %v", err)
	}
	if bytes.Equal(got, msg) {
		t.Fatal("epoch-1 key must not decrypt epoch-2 ciphertexts")
	}

	// Verification must also bind the epoch key to its label.
	updNext := e.sc.IssueUpdate(e.server, "epoch-2")
	if e.sc.VerifyEpochKey(e.server.Pub, e.user.Pub, updNext, ekNow) {
		t.Fatal("epoch key must not verify against another epoch's update")
	}
}

func TestReKeyForNewServer(t *testing.T) {
	e := newTestEnv(t)
	newServer, err := e.sc.ServerKeyGen(nil)
	if err != nil {
		t.Fatalf("ServerKeyGen: %v", err)
	}
	newPub := e.sc.ReKeyForServer(e.user, newServer.Pub)

	if !e.sc.VerifyReKeyedKey(e.user.Pub.AG, newServer.Pub, newPub) {
		t.Fatal("honest re-keyed public key must verify against the certified AG")
	}
	if !e.sc.VerifyUserPublicKey(newServer.Pub, newPub) {
		t.Fatal("re-keyed key must be well-formed for the new server")
	}

	// An attacker who doesn't know a cannot fake a key for the new
	// server that links to the victim's certified AG.
	attacker, err := e.sc.UserKeyGen(newServer.Pub, nil)
	if err != nil {
		t.Fatalf("UserKeyGen: %v", err)
	}
	forged := UserPublicKey{AG: e.user.Pub.AG, ASG: attacker.Pub.ASG}
	if e.sc.VerifyReKeyedKey(e.user.Pub.AG, newServer.Pub, forged) {
		t.Fatal("forged re-keyed key must be rejected")
	}

	// End-to-end under the new server.
	msg := []byte("new server, same certificate")
	ct, err := e.sc.Encrypt(nil, newServer.Pub, newPub, testLabel, msg)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	upd := e.sc.IssueUpdate(newServer, testLabel)
	got, err := e.sc.Decrypt(e.user, upd, ct)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("round trip under the new server failed")
	}
}

func TestMultiRecipientRoundTrip(t *testing.T) {
	e := newTestEnv(t)
	// Three recipients including e.user.
	users := []*UserKeyPair{e.user}
	for i := 0; i < 2; i++ {
		u, err := e.sc.UserKeyGen(e.server.Pub, nil)
		if err != nil {
			t.Fatal(err)
		}
		users = append(users, u)
	}
	pubs := make([]UserPublicKey, len(users))
	for i, u := range users {
		pubs[i] = u.Pub
	}
	msg := []byte("press release under embargo")
	ct, err := e.sc.EncryptMulti(nil, e.server.Pub, pubs, testLabel, msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ct.Vs) != len(users) {
		t.Fatalf("slots = %d", len(ct.Vs))
	}
	upd := e.sc.IssueUpdate(e.server, testLabel)
	for i, u := range users {
		got, err := e.sc.DecryptMulti(u, upd, ct, i)
		if err != nil || !bytes.Equal(got, msg) {
			t.Fatalf("recipient %d: %q %v", i, got, err)
		}
	}
	// Wrong slot yields garbage (different recipient's mask).
	got, err := e.sc.DecryptMulti(users[0], upd, ct, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, msg) {
		t.Fatal("cross-slot decryption must not succeed")
	}
	// Validation.
	if _, err := e.sc.DecryptMulti(users[0], upd, ct, 99); !errors.Is(err, ErrInvalidCiphertext) {
		t.Fatalf("bad index: err=%v", err)
	}
	if _, err := e.sc.EncryptMulti(nil, e.server.Pub, nil, testLabel, msg); err == nil {
		t.Fatal("no recipients must fail")
	}
	bad := pubs
	bad[1].ASG = e.sc.Set.Curve.Add(bad[1].ASG, e.sc.Set.G)
	if _, err := e.sc.EncryptMulti(nil, e.server.Pub, bad, testLabel, msg); !errors.Is(err, ErrInvalidPublicKey) {
		t.Fatalf("malformed recipient: err=%v", err)
	}
}

func TestMultiRecipientSizeAdvantage(t *testing.T) {
	// The shared header saves (n-1) points versus n separate ciphertexts.
	e := newTestEnv(t)
	const n, msgLen = 10, 64
	multi := e.sc.MultiSize(n, msgLen)
	point := e.sc.Set.Curve.MarshalSize()
	separate := n * (point + msgLen)
	if multi >= separate {
		t.Fatalf("multi %dB must beat %dB separate", multi, separate)
	}
	if separate-multi != (n-1)*point {
		t.Fatalf("saving = %dB, want %dB", separate-multi, (n-1)*point)
	}
}

package core

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

func TestEncryptorMatchesScheme(t *testing.T) {
	// The amortised path must produce ciphertexts the normal decryption
	// path opens, across several labels.
	e := newTestEnv(t)
	enc, err := e.sc.NewEncryptor(e.server.Pub, e.user.Pub)
	if err != nil {
		t.Fatal(err)
	}
	labels := []string{"epoch-1", "epoch-2", "epoch-1"} // repeat hits the cache
	for i, label := range labels {
		msg := []byte{byte(i), 'm', 's', 'g'}
		ct, err := enc.Encrypt(nil, label, msg)
		if err != nil {
			t.Fatal(err)
		}
		upd := e.sc.IssueUpdate(e.server, label)
		got, err := e.sc.Decrypt(e.user, upd, ct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("label %s: round trip mismatch", label)
		}
	}
	if enc.CachedLabels() != 2 {
		t.Fatalf("CachedLabels = %d, want 2", enc.CachedLabels())
	}
}

func TestEncryptorCCAMatchesScheme(t *testing.T) {
	e := newTestEnv(t)
	enc, err := e.sc.NewEncryptor(e.server.Pub, e.user.Pub)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("amortised FO")
	ct, err := enc.EncryptCCA(nil, testLabel, msg)
	if err != nil {
		t.Fatal(err)
	}
	upd := e.sc.IssueUpdate(e.server, testLabel)
	got, err := e.sc.DecryptCCA(e.server.Pub, e.user, upd, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("FO round trip mismatch")
	}
}

func TestEncryptorDeterministicAgreement(t *testing.T) {
	// With the same FO seed and message, the encryptor and the scheme
	// must produce byte-identical ciphertexts (they share r = H3(σ‖M)).
	e := newTestEnv(t)
	enc, err := e.sc.NewEncryptor(e.server.Pub, e.user.Pub)
	if err != nil {
		t.Fatal(err)
	}
	seed := bytes.Repeat([]byte{0x42}, 64) // deterministic "rng"
	msg := []byte("identical output check")
	ct1, err := enc.EncryptCCA(bytes.NewReader(seed), testLabel, msg)
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := e.sc.EncryptCCA(bytes.NewReader(seed), e.server.Pub, e.user.Pub, testLabel, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !e.sc.Set.Curve.Equal(ct1.U, ct2.U) || !bytes.Equal(ct1.W, ct2.W) || !bytes.Equal(ct1.V, ct2.V) {
		t.Fatal("amortised and direct FO encryption must agree byte-for-byte for equal randomness")
	}
}

func TestEncryptorRejectsBadKey(t *testing.T) {
	e := newTestEnv(t)
	bad := e.user.Pub
	bad.ASG = e.sc.Set.Curve.Add(bad.ASG, e.sc.Set.G)
	if _, err := e.sc.NewEncryptor(e.server.Pub, bad); !errors.Is(err, ErrInvalidPublicKey) {
		t.Fatalf("err=%v, want ErrInvalidPublicKey", err)
	}
}

func TestEncryptorConcurrent(t *testing.T) {
	e := newTestEnv(t)
	enc, err := e.sc.NewEncryptor(e.server.Pub, e.user.Pub)
	if err != nil {
		t.Fatal(err)
	}
	upd := e.sc.IssueUpdate(e.server, testLabel)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				msg := []byte{byte(g), byte(i)}
				ct, err := enc.Encrypt(nil, testLabel, msg)
				if err != nil {
					t.Errorf("Encrypt: %v", err)
					return
				}
				got, err := e.sc.Decrypt(e.user, upd, ct)
				if err != nil || !bytes.Equal(got, msg) {
					t.Errorf("round trip: %q %v", got, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

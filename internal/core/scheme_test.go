package core

import (
	"bytes"
	"errors"
	"math/big"
	"testing"

	"timedrelease/internal/params"
)

// testEnv bundles the fixtures most tests need: a scheme over the fast
// test parameters, a server key pair, and a user bound to that server.
type testEnv struct {
	sc     *Scheme
	server *ServerKeyPair
	user   *UserKeyPair
}

func newTestEnv(t *testing.T) *testEnv {
	t.Helper()
	set := params.MustPreset("Test160")
	sc := NewScheme(set)
	server, err := sc.ServerKeyGen(nil)
	if err != nil {
		t.Fatalf("ServerKeyGen: %v", err)
	}
	user, err := sc.UserKeyGen(server.Pub, nil)
	if err != nil {
		t.Fatalf("UserKeyGen: %v", err)
	}
	return &testEnv{sc: sc, server: server, user: user}
}

const testLabel = "2026-07-05T12:00:00Z"

func TestEncryptDecryptRoundTrip(t *testing.T) {
	e := newTestEnv(t)
	msgs := [][]byte{
		[]byte("x"),
		[]byte("the bid is $1,000,000"),
		bytes.Repeat([]byte("long message "), 100),
		{}, // empty message
	}
	upd := e.sc.IssueUpdate(e.server, testLabel)
	for _, msg := range msgs {
		ct, err := e.sc.Encrypt(nil, e.server.Pub, e.user.Pub, testLabel, msg)
		if err != nil {
			t.Fatalf("Encrypt(%d bytes): %v", len(msg), err)
		}
		got, err := e.sc.Decrypt(e.user, upd, ct)
		if err != nil {
			t.Fatalf("Decrypt: %v", err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("round trip mismatch: got %q want %q", got, msg)
		}
	}
}

func TestDecryptWithWrongUpdateYieldsGarbage(t *testing.T) {
	e := newTestEnv(t)
	msg := []byte("sealed until the right time")
	ct, err := e.sc.Encrypt(nil, e.server.Pub, e.user.Pub, testLabel, msg)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	wrong := e.sc.IssueUpdate(e.server, "some other label")
	got, err := e.sc.Decrypt(e.user, wrong, ct)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if bytes.Equal(got, msg) {
		t.Fatal("decryption with the wrong update must not reveal the plaintext")
	}
}

func TestDecryptWithWrongUserKeyYieldsGarbage(t *testing.T) {
	e := newTestEnv(t)
	other, err := e.sc.UserKeyGen(e.server.Pub, nil)
	if err != nil {
		t.Fatalf("UserKeyGen: %v", err)
	}
	msg := []byte("for the intended receiver only")
	ct, err := e.sc.Encrypt(nil, e.server.Pub, e.user.Pub, testLabel, msg)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	upd := e.sc.IssueUpdate(e.server, testLabel)
	got, err := e.sc.Decrypt(other, upd, ct)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if bytes.Equal(got, msg) {
		t.Fatal("another user's key must not decrypt the message")
	}
}

func TestUpdateSelfAuthentication(t *testing.T) {
	e := newTestEnv(t)
	upd := e.sc.IssueUpdate(e.server, testLabel)
	if !e.sc.VerifyUpdate(e.server.Pub, upd) {
		t.Fatal("genuine update must verify")
	}

	forged := upd
	forged.Label = "forged label"
	if e.sc.VerifyUpdate(e.server.Pub, forged) {
		t.Fatal("update must not verify under a different label")
	}

	// An update from a different server must not verify.
	other, err := e.sc.ServerKeyGen(nil)
	if err != nil {
		t.Fatalf("ServerKeyGen: %v", err)
	}
	alien := e.sc.IssueUpdate(other, testLabel)
	if e.sc.VerifyUpdate(e.server.Pub, alien) {
		t.Fatal("update signed by another server must not verify")
	}

	// Tampered update point.
	bad := upd
	bad.Point = e.sc.Set.Curve.Add(upd.Point, e.sc.Set.G)
	if e.sc.VerifyUpdate(e.server.Pub, bad) {
		t.Fatal("tampered update must not verify")
	}
}

func TestUpdateIsIdenticalForAllUsers(t *testing.T) {
	// The paper's headline scalability property: the update depends only
	// on (server key, label) — no per-user material enters IssueUpdate.
	e := newTestEnv(t)
	u1 := e.sc.IssueUpdate(e.server, testLabel)
	u2 := e.sc.IssueUpdate(e.server, testLabel)
	if !e.sc.Set.Curve.Equal(u1.Point, u2.Point) {
		t.Fatal("updates for the same label must be identical")
	}
}

func TestVerifyUserPublicKey(t *testing.T) {
	e := newTestEnv(t)
	if !e.sc.VerifyUserPublicKey(e.server.Pub, e.user.Pub) {
		t.Fatal("honest public key must verify")
	}

	// A key whose ASG half is not a·sG must be rejected (encryption
	// step 1 exists exactly to catch this).
	c := e.sc.Set.Curve
	bad := e.user.Pub
	bad.ASG = c.Add(bad.ASG, e.sc.Set.G)
	if e.sc.VerifyUserPublicKey(e.server.Pub, bad) {
		t.Fatal("malformed ASG must be rejected")
	}

	// A key built against a different server must be rejected for this
	// server.
	other, err := e.sc.ServerKeyGen(nil)
	if err != nil {
		t.Fatalf("ServerKeyGen: %v", err)
	}
	alienUser, err := e.sc.UserKeyGen(other.Pub, nil)
	if err != nil {
		t.Fatalf("UserKeyGen: %v", err)
	}
	if e.sc.VerifyUserPublicKey(e.server.Pub, alienUser.Pub) {
		t.Fatal("key bound to another server must be rejected")
	}

	// Identity points must be rejected.
	var zero UserPublicKey
	if e.sc.VerifyUserPublicKey(e.server.Pub, zero) {
		t.Fatal("identity public key must be rejected")
	}
}

func TestEncryptRejectsMalformedPublicKey(t *testing.T) {
	e := newTestEnv(t)
	bad := e.user.Pub
	bad.ASG = e.sc.Set.Curve.Add(bad.ASG, e.sc.Set.G)
	if _, err := e.sc.Encrypt(nil, e.server.Pub, bad, testLabel, []byte("m")); !errors.Is(err, ErrInvalidPublicKey) {
		t.Fatalf("Encrypt with malformed key: err=%v, want ErrInvalidPublicKey", err)
	}
}

func TestUserKeyFromPasswordDeterministic(t *testing.T) {
	e := newTestEnv(t)
	k1, err := e.sc.UserKeyFromPassword(e.server.Pub, []byte("hunter2"), []byte("salt"))
	if err != nil {
		t.Fatalf("UserKeyFromPassword: %v", err)
	}
	k2, err := e.sc.UserKeyFromPassword(e.server.Pub, []byte("hunter2"), []byte("salt"))
	if err != nil {
		t.Fatalf("UserKeyFromPassword: %v", err)
	}
	if k1.A.Cmp(k2.A) != 0 {
		t.Fatal("password-derived keys must be deterministic")
	}
	k3, err := e.sc.UserKeyFromPassword(e.server.Pub, []byte("hunter2"), []byte("other salt"))
	if err != nil {
		t.Fatalf("UserKeyFromPassword: %v", err)
	}
	if k1.A.Cmp(k3.A) == 0 {
		t.Fatal("different salts must give different keys")
	}
	if !e.sc.VerifyUserPublicKey(e.server.Pub, k1.Pub) {
		t.Fatal("password-derived public key must verify")
	}
}

func TestUserKeyFromScalarRange(t *testing.T) {
	e := newTestEnv(t)
	for _, a := range []*big.Int{big.NewInt(0), new(big.Int).Set(e.sc.Set.Q), new(big.Int).Neg(big.NewInt(1))} {
		if _, err := e.sc.UserKeyFromScalar(e.server.Pub, a); err == nil {
			t.Fatalf("scalar %v out of range must be rejected", a)
		}
	}
	if _, err := e.sc.UserKeyFromScalar(e.server.Pub, big.NewInt(1)); err != nil {
		t.Fatalf("scalar 1 is valid: %v", err)
	}
}

func TestUnsafeLabelDefense(t *testing.T) {
	// §5.1 item 6: a cheating server chooses its generator as G = H1(T*)
	// for the instant T* it wants to eavesdrop (then ê(rG, I_T*) alone
	// would decrypt). The sender-side defence must refuse exactly that
	// label and accept a perturbed one.
	set := params.MustPreset("Test160")
	sc := NewScheme(set)
	const target = "2026-07-05T12:00:00Z"

	evilG := sc.hashLabel(target)
	s, err := set.Curve.RandScalar(nil)
	if err != nil {
		t.Fatal(err)
	}
	evil := &ServerKeyPair{S: s, Pub: ServerPublicKey{G: evilG, SG: set.Curve.ScalarMult(s, evilG)}}
	user, err := sc.UserKeyGen(evil.Pub, nil)
	if err != nil {
		t.Fatal(err)
	}

	if sc.SafeLabel(evil.Pub, target) {
		t.Fatal("SafeLabel must flag the colliding label")
	}
	if _, err := sc.Encrypt(nil, evil.Pub, user.Pub, target, []byte("m")); !errors.Is(err, ErrUnsafeLabel) {
		t.Fatalf("Encrypt: err=%v, want ErrUnsafeLabel", err)
	}
	if _, err := sc.EncryptCCA(nil, evil.Pub, user.Pub, target, []byte("m")); !errors.Is(err, ErrUnsafeLabel) {
		t.Fatalf("EncryptCCA: err=%v, want ErrUnsafeLabel", err)
	}
	enc, err := sc.NewEncryptor(evil.Pub, user.Pub)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.Encrypt(nil, target, []byte("m")); !errors.Is(err, ErrUnsafeLabel) {
		t.Fatalf("Encryptor: err=%v, want ErrUnsafeLabel", err)
	}

	// "T plus one second" is fine.
	const perturbed = "2026-07-05T12:00:01Z"
	if !sc.SafeLabel(evil.Pub, perturbed) {
		t.Fatal("perturbed label must be safe")
	}
	if _, err := sc.Encrypt(nil, evil.Pub, user.Pub, perturbed, []byte("m")); err != nil {
		t.Fatalf("Encrypt with perturbed label: %v", err)
	}
}

package core

import (
	"crypto/rand"
	"fmt"
	"io"

	"timedrelease/internal/backend"
	"timedrelease/internal/curve"
	"timedrelease/internal/rohash"
)

// REACTCiphertext is the Okamoto–Pointcheval REACT-transformed
// ciphertext, the alternative CCA conversion the paper mentions
// ("Alternatively, the REACT conversion ... could be used instead"):
//
//	C = ⟨ rG, R ⊕ H2(K), M ⊕ G(R), H(R ‖ M ‖ c1 ‖ c2 ‖ c3) ⟩
//
// where R is a fresh random secret. Unlike FO, decryption needs no
// re-encryption — only one hash check — which makes REACT decryption
// cheaper (measured in experiment E1).
type REACTCiphertext struct {
	U   curve.Point // c1 = rG
	W   []byte      // c2 = R ⊕ H2(K), seedLen bytes
	V   []byte      // c3 = M ⊕ G(R)
	Tag []byte      // c4 = H(R ‖ M ‖ c1 ‖ c2 ‖ c3), seedLen bytes
}

// EncryptREACT encrypts msg under the REACT transform.
func (sc *Scheme) EncryptREACT(rng io.Reader, spub ServerPublicKey, upub UserPublicKey, label string, msg []byte) (*REACTCiphertext, error) {
	if !sc.VerifyUserPublicKey(spub, upub) {
		return nil, ErrInvalidPublicKey
	}
	if rng == nil {
		rng = rand.Reader
	}
	secret := make([]byte, seedLen)
	if _, err := io.ReadFull(rng, secret); err != nil {
		return nil, fmt.Errorf("tre: sampling REACT secret: %w", err)
	}
	r, err := sc.Set.B.RandScalar(rng)
	if err != nil {
		return nil, fmt.Errorf("tre: sampling encryption randomness: %w", err)
	}
	u, k, err := sc.encapsulate(spub, upub, label, r)
	if err != nil {
		return nil, err
	}
	w := rohash.XOR(secret, sc.maskH2(k, seedLen))
	v := rohash.XOR(msg, rohash.Expand("TRE-REACT-G", secret, len(msg)))
	tag := sc.reactTag(secret, msg, u, w, v)
	return &REACTCiphertext{U: u, W: w, V: v, Tag: tag}, nil
}

// DecryptREACT recovers R and M, then authenticates the whole ciphertext
// with the REACT hash check.
func (sc *Scheme) DecryptREACT(upriv *UserKeyPair, upd KeyUpdate, ct *REACTCiphertext) ([]byte, error) {
	if ct == nil || len(ct.W) != seedLen || len(ct.Tag) != seedLen ||
		!sc.Set.B.IsOnCurve(backend.G1, ct.U) || ct.U.IsInfinity() {
		return nil, ErrInvalidCiphertext
	}
	k := sc.decapsulate(upriv, upd, ct.U)
	secret := rohash.XOR(ct.W, sc.maskH2(k, seedLen))
	msg := rohash.XOR(ct.V, rohash.Expand("TRE-REACT-G", secret, len(ct.V)))
	if !constEq(ct.Tag, sc.reactTag(secret, msg, ct.U, ct.W, ct.V)) {
		return nil, ErrAuthFailed
	}
	return msg, nil
}

// reactTag computes c4 = H(R ‖ M ‖ c1 ‖ c2 ‖ c3) with unambiguous
// length-prefixed framing.
func (sc *Scheme) reactTag(secret, msg []byte, u curve.Point, w, v []byte) []byte {
	input := rohash.Concat(secret, msg, sc.Set.B.AppendPoint(nil, backend.G1, u), w, v)
	return rohash.Expand("TRE-REACT-H", input, seedLen)
}

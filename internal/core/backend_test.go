package core

import (
	"bytes"
	"testing"

	"timedrelease/internal/params"
)

// TestRoundTripAcrossBackendsAndPresets is the end-to-end differential
// check of the Montgomery field backend: at both the fast test preset
// and the paper-scale SS512 preset, a full Encrypt/Decrypt round trip
// must succeed, and the encapsulated pairing value computed on the
// routed (Montgomery) path must agree bit-for-bit with the big.Int
// reference pairing.
func TestRoundTripAcrossBackendsAndPresets(t *testing.T) {
	for _, name := range []string{"Test160", "SS512"} {
		t.Run(name, func(t *testing.T) {
			set := params.MustPreset(name)
			if set.Curve.F.Mont() == nil {
				t.Fatalf("%s: no Montgomery backend", name)
			}
			sc := NewScheme(set)
			server, err := sc.ServerKeyGen(nil)
			if err != nil {
				t.Fatal(err)
			}
			user, err := sc.UserKeyGen(server.Pub, nil)
			if err != nil {
				t.Fatal(err)
			}

			// Key material must match the big.Int scalar ladder exactly.
			c := set.Curve
			if !c.Equal(user.Pub.AG, c.ScalarMultBig(user.A, set.G)) ||
				!c.Equal(user.Pub.ASG, c.ScalarMultBig(user.A, server.Pub.SG)) {
				t.Fatal("fixed-base keygen disagrees with reference ladder")
			}

			// Pairing backends must agree on the scheme's own points.
			upd := sc.IssueUpdate(server, testLabel)
			h := sc.hashLabel(testLabel)
			if !set.Pairing.E2.Equal(
				set.Pairing.Pair(user.Pub.ASG, h),
				set.Pairing.PairBig(user.Pub.ASG, h),
			) {
				t.Fatal("Pair and PairBig disagree on scheme points")
			}

			msg := []byte("release at T, not before")
			ct, err := sc.Encrypt(nil, server.Pub, user.Pub, testLabel, msg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sc.Decrypt(user, upd, ct)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, msg) {
				t.Fatal("round trip mismatch")
			}

			cca, err := sc.EncryptCCA(nil, server.Pub, user.Pub, testLabel, msg)
			if err != nil {
				t.Fatal(err)
			}
			got, err = sc.DecryptCCA(server.Pub, user, upd, cca)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, msg) {
				t.Fatal("CCA round trip mismatch")
			}
		})
	}
}

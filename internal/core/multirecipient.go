package core

import (
	"fmt"
	"io"

	"timedrelease/internal/backend"
	"timedrelease/internal/curve"
	"timedrelease/internal/rohash"
)

// MultiRecipientCiphertext addresses one message to many receivers with
// a single shared header point U = rG: the press-release workload of
// §1. Each recipient gets their own mask slot (their pairing value
// K_i = ê(r·a_i·sG, H1(T)) already differs per key, so reusing r across
// recipients is safe in the random-oracle analysis — the masks are
// independent oracle outputs).
//
// Versus n independent ciphertexts this saves n−1 header points on the
// wire and n−1 of the rG scalar multiplications at the sender; the n
// pairings remain (one per recipient key).
type MultiRecipientCiphertext struct {
	U  curve.Point
	Vs [][]byte // one masked copy per recipient, in recipient order
}

// EncryptMulti encrypts msg to every recipient for one release label.
// All recipient keys are well-formedness-checked; order is preserved so
// recipient i decrypts slot i.
func (sc *Scheme) EncryptMulti(rng io.Reader, spub ServerPublicKey, recipients []UserPublicKey, label string, msg []byte) (*MultiRecipientCiphertext, error) {
	if len(recipients) == 0 {
		return nil, fmt.Errorf("tre: no recipients")
	}
	for i, upub := range recipients {
		if !sc.VerifyUserPublicKey(spub, upub) {
			return nil, fmt.Errorf("%w (recipient %d)", ErrInvalidPublicKey, i)
		}
	}
	b := sc.Set.B
	h := sc.hashLabel(label)
	if !sc.SafeLabel(spub, label) {
		return nil, ErrUnsafeLabel
	}
	r, err := b.RandScalar(rng)
	if err != nil {
		return nil, fmt.Errorf("tre: sampling encryption randomness: %w", err)
	}
	ct := &MultiRecipientCiphertext{
		U:  b.ScalarMultBase(sc.baseTable(backend.G1, spub.G), r),
		Vs: make([][]byte, len(recipients)),
	}
	for i, upub := range recipients {
		k := b.Pair(b.ScalarMult(backend.G1, r, upub.ASG), h)
		ct.Vs[i] = rohash.XOR(msg, sc.maskH2(k, len(msg)))
	}
	return ct, nil
}

// DecryptMulti opens recipient slot `index` with that recipient's
// private key and the label's key update.
func (sc *Scheme) DecryptMulti(upriv *UserKeyPair, upd KeyUpdate, ct *MultiRecipientCiphertext, index int) ([]byte, error) {
	if ct == nil || index < 0 || index >= len(ct.Vs) || !sc.Set.B.IsOnCurve(backend.G1, ct.U) {
		return nil, ErrInvalidCiphertext
	}
	k := sc.decapsulate(upriv, upd, ct.U)
	return rohash.XOR(ct.Vs[index], sc.maskH2(k, len(ct.Vs[index]))), nil
}

// Size returns the wire size of the multi-recipient ciphertext for the
// given message length: one point plus n masked copies.
func (sc *Scheme) MultiSize(nRecipients, msgLen int) int {
	return sc.Set.B.PointLen(backend.G1) + nRecipients*msgLen
}

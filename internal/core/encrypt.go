package core

import (
	"fmt"
	"io"
	"math/big"

	"timedrelease/internal/backend"
	"timedrelease/internal/curve"
	"timedrelease/internal/rohash"
)

// Ciphertext is the basic TRE ciphertext C = ⟨U, V⟩ = ⟨rG, M ⊕ H2(K)⟩
// of §5.1. Deliberately, it carries neither the release label nor any
// party identity: the paper's privacy goals include hiding the release
// time, so applications that want to transmit the label do so in an
// outer envelope (package wire).
type Ciphertext struct {
	U curve.Point
	V []byte
}

// Encrypt implements §5.1 Encryption: verify the receiver key's
// well-formedness, pick r ∈ Z_q^*, compute K = ê(r·asG, H1(T)) and
// return ⟨rG, M ⊕ H2(K)⟩. This basic scheme is one-way/CPA-secure (the
// paper presents it pre-Fujisaki-Okamoto); use EncryptCCA for
// chosen-ciphertext security.
func (sc *Scheme) Encrypt(rng io.Reader, spub ServerPublicKey, upub UserPublicKey, label string, msg []byte) (*Ciphertext, error) {
	if !sc.VerifyUserPublicKey(spub, upub) {
		return nil, ErrInvalidPublicKey
	}
	r, err := sc.Set.B.RandScalar(rng)
	if err != nil {
		return nil, fmt.Errorf("tre: sampling encryption randomness: %w", err)
	}
	u, k, err := sc.encapsulate(spub, upub, label, r)
	if err != nil {
		return nil, err
	}
	return &Ciphertext{U: u, V: rohash.XOR(msg, sc.maskH2(k, len(msg)))}, nil
}

// Decrypt implements §5.1 Decryption: K' = ê(U, I_T)^a, M = V ⊕ H2(K').
// The caller should have verified the update against the server public
// key (VerifyUpdate); the basic scheme cannot itself detect a wrong or
// forged update — it simply produces an unrelated bitstring, exactly as
// in the paper. Use the CCA variants for integrity.
func (sc *Scheme) Decrypt(upriv *UserKeyPair, upd KeyUpdate, ct *Ciphertext) ([]byte, error) {
	if ct == nil || !sc.Set.B.IsOnCurve(backend.G1, ct.U) {
		return nil, ErrInvalidCiphertext
	}
	k := sc.decapsulate(upriv, upd, ct.U)
	return rohash.XOR(ct.V, sc.maskH2(k, len(ct.V))), nil
}

// encapsulate computes (U, K) = (rG, ê(r·asG, H1(label))). Computing the
// pairing on the pre-multiplied point r·asG replaces a G2 exponentiation
// with a (cheaper) G1 scalar multiplication.
//
// It also applies the sender-side defence of §5.1 item 6: a cheating
// server could have chosen its generator as G = H1(T*) for a label T*
// it wants to eavesdrop; if the chosen label hashes onto the server's
// generator, encryption refuses ("there should not be a large
// difference, from the sender's point of view, between using T and
// using T plus one second").
func (sc *Scheme) encapsulate(spub ServerPublicKey, upub UserPublicKey, label string, r *big.Int) (curve.Point, backend.GT, error) {
	b := sc.Set.B
	h := sc.hashLabel(label)
	if !sc.SafeLabel(spub, label) {
		return curve.Point{}, nil, ErrUnsafeLabel
	}
	u := b.ScalarMultBase(sc.baseTable(backend.G1, spub.G), r)
	sc.met.pairings.Inc()
	k := b.Pair(b.ScalarMult(backend.G1, r, upub.ASG), h)
	return u, k, nil
}

// SafeLabel reports whether a release label avoids the §5.1 item 6
// generator collision for this server. Encrypt and friends check it
// automatically; senders picking labels programmatically can use it to
// perturb a label (e.g. add one second) instead of failing. On an
// asymmetric backend the check is vacuously true: H1 maps into G2 and
// the server generator lives in G1, so no label can hash onto it.
func (sc *Scheme) SafeLabel(spub ServerPublicKey, label string) bool {
	if sc.Set.Asymmetric() {
		return true
	}
	return !sc.Set.B.Equal(backend.G2, sc.hashLabel(label), spub.G)
}

// decapsulate computes K' = ê(U, I_T)^a as ê(a·U, I_T).
func (sc *Scheme) decapsulate(upriv *UserKeyPair, upd KeyUpdate, u curve.Point) backend.GT {
	b := sc.Set.B
	sc.met.pairings.Inc()
	return b.Pair(b.ScalarMult(backend.G1, upriv.A, u), upd.Point)
}

// maskH2 is the paper's H2: GT → {0,1}^n, instantiated as a
// domain-separated SHA-256 expander over the canonical encoding of K.
func (sc *Scheme) maskH2(k backend.GT, n int) []byte {
	return rohash.Expand("TRE-H2", sc.Set.B.GTBytes(k), n)
}

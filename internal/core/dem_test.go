package core

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"
)

// Direct unit tests for the AES-CTR + HMAC data-encapsulation mechanism
// behind EncryptHybrid (the higher-level paths are covered in cca_test).

func demTestKey(t *testing.T) []byte {
	t.Helper()
	key := make([]byte, hybridKeyLen)
	if _, err := rand.Read(key); err != nil {
		t.Fatal(err)
	}
	return key
}

func TestDEMSealOpenRoundTrip(t *testing.T) {
	key := demTestKey(t)
	for _, msg := range [][]byte{
		{},
		[]byte("x"),
		bytes.Repeat([]byte("block boundary "), 64),
	} {
		box, err := demSeal(rand.Reader, key, msg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := demOpen(key, box)
		if err != nil {
			t.Fatalf("demOpen(%d bytes): %v", len(msg), err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatal("round trip mismatch")
		}
		// Overhead is exactly IV + tag.
		if len(box) != hybridIVLen+len(msg)+hybridTagLen {
			t.Fatalf("box is %d bytes for %d-byte msg", len(box), len(msg))
		}
	}
}

func TestDEMFreshIVs(t *testing.T) {
	key := demTestKey(t)
	msg := []byte("same message twice")
	b1, err := demSeal(rand.Reader, key, msg)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := demSeal(rand.Reader, key, msg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(b1[:hybridIVLen], b2[:hybridIVLen]) {
		t.Fatal("IVs must be fresh per seal")
	}
	if bytes.Equal(b1, b2) {
		t.Fatal("sealing must be randomised")
	}
}

func TestDEMRejects(t *testing.T) {
	key := demTestKey(t)
	box, err := demSeal(rand.Reader, key, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	// Every single-byte flip anywhere in the box must be caught.
	for i := 0; i < len(box); i += 3 {
		mutated := append([]byte(nil), box...)
		mutated[i] ^= 1
		if _, err := demOpen(key, mutated); !errors.Is(err, ErrAuthFailed) {
			t.Fatalf("flip at %d: err=%v, want ErrAuthFailed", i, err)
		}
	}
	// Wrong key.
	if _, err := demOpen(demTestKey(t), box); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("wrong key: err=%v", err)
	}
	// Too short to contain IV+tag.
	if _, err := demOpen(key, box[:hybridIVLen]); !errors.Is(err, ErrInvalidCiphertext) {
		t.Fatalf("short box: err=%v", err)
	}
	// Truncated body (tag over different bytes).
	if _, err := demOpen(key, box[:len(box)-1]); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("truncated box: err=%v", err)
	}
}

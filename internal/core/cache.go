package core

import (
	"crypto/sha256"
	"sync"
	"sync/atomic"

	"timedrelease/internal/obs"
)

// cacheKey is the fixed-size identity of a cached precomputation: a
// SHA-256 digest over the canonical compressed encodings of the points
// it was built from. Hashing the encodings (built into stack buffers
// via curve.AppendMarshal) gives a comparable array key with no heap
// strings on the lookup path, and collision resistance makes two
// distinct keys mapping to one entry a non-issue.
type cacheKey [sha256.Size]byte

const (
	// cacheShards spreads keys over independent copy-on-write maps so
	// concurrent builders of different keys never contend on one lock.
	// Reads never take a lock at all, so sharding only matters for the
	// (rare) write path; 16 is plenty.
	cacheShards = 16

	// cacheShardCap bounds each shard's map. A well-behaved deployment
	// sees a handful of server keys total; the cap exists so adversarial
	// key churn (a flood of distinct never-reused keys) cannot grow the
	// cache without bound. Exceeding the cap evicts the least-recently
	// used entry of the shard.
	cacheShardCap = 8
)

// cacheEntry wraps a cached value with its last-use tick for eviction.
// lastUse is atomic so the lock-free read path can bump it.
type cacheEntry[V any] struct {
	v       *V
	lastUse atomic.Int64
}

type cacheMap[V any] map[cacheKey]*cacheEntry[V]

// cacheShard is one copy-on-write slice of the cache. Readers load the
// map pointer atomically and never block; writers copy the map under
// mu, insert/evict, and publish the new map with a single pointer
// store. inflight carries the single-flight state: at most one
// goroutine builds any given key while the rest wait on its done
// channel.
type cacheShard[V any] struct {
	m        atomic.Pointer[cacheMap[V]]
	mu       sync.Mutex
	inflight map[cacheKey]*inflightCall[V]
}

type inflightCall[V any] struct {
	done chan struct{}
	v    *V
}

// pointCache is a sharded, lock-free-read, single-flight cache of
// immutable precomputations (prepared pairing schedules, fixed-base
// tables) keyed by point encodings. The design is documented in
// docs/PERFORMANCE.md:
//
//   - Reads are wait-free: one atomic map-pointer load plus a map
//     lookup; the steady-state hot path never touches a mutex.
//   - Writes are copy-on-write under a per-shard mutex. Inserts are
//     rare (one per distinct key for the lifetime of the Scheme), so
//     copying a ≤cacheShardCap map is negligible.
//   - Building is single-flight: concurrent requests for the same
//     missing key perform exactly one build; the rest block until it is
//     published. The builder accounts the miss, waiters and lock-free
//     readers account hits — so the miss counter equals the number of
//     builds exactly.
//   - Size is capped at cacheShards·cacheShardCap entries with
//     per-shard LRU eviction (last-use ticks from a global atomic
//     clock).
//
// The zero value is ready to use.
type pointCache[V any] struct {
	shards [cacheShards]cacheShard[V]
	clock  atomic.Int64
}

// getOrBuild returns the cached value for key, building and publishing
// it (once, however many goroutines race here) on a miss. hit and miss
// are the scheme's counters; both are nil-safe.
func (c *pointCache[V]) getOrBuild(key cacheKey, build func() *V, hit, miss *obs.Counter) *V {
	sh := &c.shards[key[0]%cacheShards]
	if mp := sh.m.Load(); mp != nil {
		if e, ok := (*mp)[key]; ok {
			e.lastUse.Store(c.clock.Add(1))
			hit.Inc()
			return e.v
		}
	}

	sh.mu.Lock()
	// Re-check under the lock: the entry may have been published between
	// the lock-free read and here.
	if mp := sh.m.Load(); mp != nil {
		if e, ok := (*mp)[key]; ok {
			sh.mu.Unlock()
			e.lastUse.Store(c.clock.Add(1))
			hit.Inc()
			return e.v
		}
	}
	if call, ok := sh.inflight[key]; ok {
		// Someone else is building this key: wait for it off-lock.
		sh.mu.Unlock()
		<-call.done
		hit.Inc()
		return call.v
	}
	call := &inflightCall[V]{done: make(chan struct{})}
	if sh.inflight == nil {
		sh.inflight = make(map[cacheKey]*inflightCall[V])
	}
	sh.inflight[key] = call
	sh.mu.Unlock()

	// Build off-lock — this is the expensive part (a Miller-loop walk or
	// a 64-entry table) and must not serialise against other keys.
	miss.Inc()
	v := build()
	call.v = v

	e := &cacheEntry[V]{v: v}
	e.lastUse.Store(c.clock.Add(1))
	sh.mu.Lock()
	next := make(cacheMap[V], cacheShardCap)
	if old := sh.m.Load(); old != nil {
		for k, oe := range *old {
			next[k] = oe
		}
	}
	next[key] = e
	for len(next) > cacheShardCap {
		var victim cacheKey
		min := int64(-1)
		for k, oe := range next {
			if k == key {
				continue // never evict the entry being published
			}
			if u := oe.lastUse.Load(); min < 0 || u < min {
				min, victim = u, k
			}
		}
		delete(next, victim)
	}
	sh.m.Store(&next)
	delete(sh.inflight, key)
	sh.mu.Unlock()
	close(call.done)
	return v
}

// size reports the total number of cached entries, for tests.
func (c *pointCache[V]) size() int {
	n := 0
	for i := range c.shards {
		if mp := c.shards[i].m.Load(); mp != nil {
			n += len(*mp)
		}
	}
	return n
}

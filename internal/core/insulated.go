package core

import (
	"timedrelease/internal/backend"
	"timedrelease/internal/curve"
	"timedrelease/internal/rohash"
)

// EpochKey is the key-insulation credential of §5.3.3: a per-epoch
// decryption key computed on a safe device and handed to a relatively
// insecure one. With it, the insecure device can decrypt every
// ciphertext whose release label is Label — and nothing else: deriving
// another epoch's key from it is CDH-hard, so a compromise stays
// confined to one epoch.
//
// Note on the paper's notation: §5.3.3 writes the epoch key as a·H1(Tᵢ),
// but that value cannot complete a decryption (ê(U, a·H1(T)) =
// ê(G, H1(T))^{ra} lacks the server factor s). The key that makes the
// mechanism work — and matches the text's "computes … when a new key
// update is received" — is a·I_T = a·s·H1(Tᵢ), which yields
// ê(U, a·I_T) = ê(G, H1(T))^{ras} = K exactly. We implement the latter;
// see DESIGN.md substitution S3.
type EpochKey struct {
	Label string
	D     curve.Point // a · s·H1(Label)
}

// DeriveEpochKey computes the epoch key a·I_T from the private scalar
// and the epoch's (verified) key update. Run this on the safe device.
func (sc *Scheme) DeriveEpochKey(upriv *UserKeyPair, upd KeyUpdate) EpochKey {
	return EpochKey{
		Label: upd.Label,
		D:     sc.Set.B.ScalarMult(backend.G2, upriv.A, upd.Point),
	}
}

// DecryptWithEpochKey decrypts a basic ciphertext on the insecure device
// using only the epoch key: K' = ê(U, a·I_T). The private scalar a never
// touches this code path.
func (sc *Scheme) DecryptWithEpochKey(ek EpochKey, ct *Ciphertext) ([]byte, error) {
	if ct == nil || !sc.Set.B.IsOnCurve(backend.G1, ct.U) {
		return nil, ErrInvalidCiphertext
	}
	k := sc.Set.B.Pair(ct.U, ek.D)
	return rohash.XOR(ct.V, sc.maskH2(k, len(ct.V))), nil
}

// DecryptCCAWithEpochKey is the FO-authenticated variant of epoch-key
// decryption.
func (sc *Scheme) DecryptCCAWithEpochKey(spub ServerPublicKey, ek EpochKey, ct *CCACiphertext) ([]byte, error) {
	if ct == nil || len(ct.W) != seedLen || !sc.Set.B.IsOnCurve(backend.G1, ct.U) || ct.U.IsInfinity() {
		return nil, ErrInvalidCiphertext
	}
	k := sc.Set.B.Pair(ct.U, ek.D)
	return sc.foOpen(spub, k, ct)
}

// VerifyEpochKey lets the insecure device sanity-check a received epoch
// key against the user's public key and the server's update:
// ê(G, a·I_T) = ê(aG, I_T).
func (sc *Scheme) VerifyEpochKey(spub ServerPublicKey, upub UserPublicKey, upd KeyUpdate, ek EpochKey) bool {
	if ek.Label != upd.Label {
		return false
	}
	if ek.D.IsInfinity() || !sc.Set.B.InSubgroup(backend.G2, ek.D) {
		return false
	}
	return sc.Set.B.SamePairing(spub.G, ek.D, upub.AG, upd.Point)
}

package timeserver

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"timedrelease/internal/core"
	"timedrelease/internal/faulthttp"
	"timedrelease/internal/params"
	"timedrelease/internal/timefmt"
)

// waitSubscribers polls until the server's hub has n subscribers parked
// (subscription happens inside handler goroutines the test can't join).
func waitSubscribers(t *testing.T, count func() int, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for count() != n {
		if time.Now().After(deadline) {
			t.Fatalf("subscribers = %d, want %d", count(), n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestStreamDeliversLivePublishes(t *testing.T) {
	e := newEnv(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	got := make(chan core.KeyUpdate, 4)
	errCh := make(chan error, 1)
	go func() {
		_, err := e.client.StreamUpdates(ctx, "", func(u core.KeyUpdate) error {
			got <- u
			return errStopStream
		})
		errCh <- err
	}()
	waitSubscribers(t, e.server.Subscribers, 1)

	label := e.sched.Label(e.clock.Now())
	if err := e.server.PublishLabel(label); err != nil {
		t.Fatal(err)
	}
	select {
	case u := <-got:
		if u.Label != label || !e.sc.VerifyUpdate(e.key.Pub, u) {
			t.Fatalf("streamed update invalid: %+v", u)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("published update never reached the stream")
	}
	if err := <-errCh; err != nil {
		t.Fatalf("StreamUpdates: %v", err)
	}
}

func TestStreamReplaysArchiveFrom(t *testing.T) {
	e := newEnv(t)
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	e.clock.Advance(3 * time.Minute)
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	labels, err := e.client.Labels(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 4 {
		t.Fatalf("published %d labels, want 4", len(labels))
	}

	// Replay from the second label: expect exactly labels[1:], in order.
	var seen []string
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err = e.client.StreamUpdates(ctx, labels[1], func(u core.KeyUpdate) error {
		seen = append(seen, u.Label)
		if len(seen) == 3 {
			return errStopStream
		}
		return nil
	})
	if err != nil {
		t.Fatalf("StreamUpdates: %v", err)
	}
	for i, l := range labels[1:] {
		if seen[i] != l {
			t.Fatalf("replay order: got %v, want %v", seen, labels[1:])
		}
	}
}

// TestStreamOrdersSubSecondLabelsBySchedule is the regression pin for a
// silent half-loss bug: RFC3339 labels with fractional seconds do not
// sort chronologically as strings ("…T12:00:00.5Z" > "…T12:00:01Z"
// lexicographically, since '.' < 'Z' makes the longer label smaller at
// the tiebreak), so a monotone filter comparing label STRINGS drops
// every sub-second epoch that follows a whole-second one. The stream
// must order by schedule index and deliver every epoch.
func TestStreamOrdersSubSecondLabelsBySchedule(t *testing.T) {
	set := params.MustPreset("Test160")
	sc := core.NewScheme(set)
	key, err := sc.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	sched := timefmt.MustSchedule(500 * time.Millisecond)
	clock := &fakeClock{t: time.Date(2026, 7, 5, 12, 0, 0, 250e6, time.UTC)}
	srv := NewServer(set, key, sched, WithClock(clock.Now))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL, set, key.Pub, WithHTTPClient(ts.Client()))

	if _, err := srv.PublishUpTo(clock.Now()); err != nil {
		t.Fatal(err)
	}
	first := sched.Label(clock.Now())

	want := []string{first}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var seen []string
	done := make(chan error, 1)
	go func() {
		_, serr := client.StreamUpdates(ctx, first, func(u core.KeyUpdate) error {
			seen = append(seen, u.Label)
			if len(seen) == 6 {
				return errStopStream
			}
			return nil
		})
		done <- serr
	}()
	waitSubscribers(t, srv.Subscribers, 1)

	// Cross several whole-second boundaries half an epoch at a time; the
	// labels alternate between ".5Z" and whole-second forms.
	for i := 0; i < 5; i++ {
		clock.Advance(500 * time.Millisecond)
		if _, err := srv.PublishUpTo(clock.Now()); err != nil {
			t.Fatal(err)
		}
		want = append(want, sched.Label(clock.Now()))
	}
	if err := <-done; err != nil {
		t.Fatalf("StreamUpdates: %v", err)
	}
	if fmt.Sprint(seen) != fmt.Sprint(want) {
		t.Fatalf("stream dropped or reordered sub-second epochs:\n got %v\nwant %v", seen, want)
	}
}

func TestStreamIsMonotoneAcrossReplayLiveOverlap(t *testing.T) {
	// An update published between the replay scan and going live is both
	// replayed (if archived in time) and broadcast; the stream must
	// deliver every label exactly once, in order. Exercised by streaming
	// from the start while publishing concurrently.
	e := newEnv(t)
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	first := e.sched.Label(e.clock.Now())

	const extra = 5
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var seen []string
	done := make(chan error, 1)
	go func() {
		_, err := e.client.StreamUpdates(ctx, first, func(u core.KeyUpdate) error {
			seen = append(seen, u.Label)
			if len(seen) == 1+extra {
				return errStopStream
			}
			return nil
		})
		done <- err
	}()
	for i := 0; i < extra; i++ {
		e.clock.Advance(time.Minute)
		if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("StreamUpdates: %v", err)
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] <= seen[i-1] {
			t.Fatalf("stream not strictly monotone: %v", seen)
		}
	}
	if len(seen) != 1+extra {
		t.Fatalf("delivered %d labels, want %d", len(seen), 1+extra)
	}
}

func TestPublishIsOneEncodeOnePassRegardlessOfSubscribers(t *testing.T) {
	// The tentpole contract: publish cost does not scale with parked
	// connections. With S streams and W long-poll waiters attached, one
	// publish performs exactly ONE wire encode and ONE registry pass.
	e := newEnv(t)
	const streams, waiters = 7, 5
	label := e.sched.Label(e.clock.Now())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.client.StreamUpdates(ctx, "", func(core.KeyUpdate) error { return errStopStream })
		}()
	}
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewClient(e.ts.URL, e.set, e.key.Pub, WithHTTPClient(e.ts.Client()))
			c.WaitForReleaseLongPoll(ctx, label)
		}()
	}
	waitSubscribers(t, e.server.Subscribers, streams+waiters)

	encodes, passes := e.server.hub.encodes.Load(), e.server.hub.passes.Load()
	if err := e.server.PublishLabel(label); err != nil {
		t.Fatal(err)
	}
	if d := e.server.hub.encodes.Load() - encodes; d != 1 {
		t.Fatalf("publish with %d subscribers did %d encodes, want 1", streams+waiters, d)
	}
	if d := e.server.hub.passes.Load() - passes; d != 1 {
		t.Fatalf("publish with %d subscribers did %d registry passes, want 1", streams+waiters, d)
	}
	if d := e.server.hub.delivered.Load(); d != streams+waiters {
		t.Fatalf("delivered %d messages, want %d", d, streams+waiters)
	}
	wg.Wait()
}

func TestStreamShedsSlowSubscriberAndTellsIt(t *testing.T) {
	// A consumer that stops reading must be dropped — with a terminal
	// ": dropped" comment — rather than allowed to bloat its queue or
	// slow the publish path.
	old := streamQueueCap
	streamQueueCap = 1
	t.Cleanup(func() { streamQueueCap = old })
	e := newEnv(t)

	conn, err := net.Dial("tcp", strings.TrimPrefix(e.ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET /v1/stream HTTP/1.1\r\nHost: x\r\nAccept: text/event-stream\r\n\r\n")
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := bufio.NewReader(resp.Body)
	line, err := body.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, ": ready") {
		t.Fatalf("handshake: %q, %v", line, err)
	}

	// Publish synthetic pre-encoded updates through the hub without
	// reading the stream. The handler drains its queue into the socket
	// until the kernel buffers fill and it blocks; the queue (cap 1)
	// then overflows and the hub sheds the subscriber.
	payload := e.server.codec.MarshalKeyUpdate(e.sc.IssueUpdate(e.key, e.sched.Label(e.clock.Now())))
	for i := 0; e.server.hub.sheds.Load() == 0; i++ {
		if i >= 1_000_000 {
			t.Fatal("hub never shed the non-reading subscriber")
		}
		e.server.hub.publish(int64(i), fmt.Sprintf("z%07d", i), payload)
	}

	// Now read everything: the stream must end with the dropped comment.
	rest, err := io.ReadAll(body)
	if err != nil {
		t.Fatalf("reading shed stream: %v", err)
	}
	if !strings.Contains(string(rest), ": dropped:") {
		t.Fatalf("shed stream did not carry a dropped comment (got %d bytes)", len(rest))
	}
}

func TestDrainClosesStreamsWithTerminalComment(t *testing.T) {
	// The streaming counterpart of the long-poll drain test: Drain must
	// end every in-flight /v1/stream connection promptly and deliberately
	// (terminal comment + EOF), not leave it parked past shutdown.
	e := newEnv(t)
	conn, err := net.Dial("tcp", strings.TrimPrefix(e.ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET /v1/stream HTTP/1.1\r\nHost: x\r\nAccept: text/event-stream\r\n\r\n")
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := bufio.NewReader(resp.Body)
	if line, err := body.ReadString('\n'); err != nil || !strings.HasPrefix(line, ": ready") {
		t.Fatalf("handshake: %q, %v", line, err)
	}

	start := time.Now()
	e.server.Drain()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	rest, err := io.ReadAll(body)
	if err != nil {
		t.Fatalf("reading drained stream: %v", err)
	}
	if !strings.Contains(string(rest), ": drain:") {
		t.Fatalf("drained stream did not carry a drain comment: %q", rest)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("drain took %v to close the stream", elapsed)
	}

	// And new stream attempts are refused while draining.
	req, _ := http.NewRequest(http.MethodGet, e.ts.URL+"/v1/stream", nil)
	resp2, err := e.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stream while draining = %d, want 503", resp2.StatusCode)
	}
}

func TestWaitForDeliversOverStream(t *testing.T) {
	e := newEnv(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	label := e.sched.Label(e.clock.Now())

	type res struct {
		u   core.KeyUpdate
		err error
	}
	got := make(chan res, 1)
	go func() {
		u, err := e.client.WaitFor(ctx, label)
		got <- res{u, err}
	}()
	waitSubscribers(t, e.server.Subscribers, 1)
	if err := e.server.PublishLabel(label); err != nil {
		t.Fatal(err)
	}
	r := <-got
	if r.err != nil {
		t.Fatalf("WaitFor: %v", r.err)
	}
	if r.u.Label != label || !e.sc.VerifyUpdate(e.key.Pub, r.u) {
		t.Fatal("WaitFor returned an invalid update")
	}
}

func TestWaitForFallsBackToLongPollOn404(t *testing.T) {
	// A pre-stream server answers 404 for /v1/stream; WaitFor must fall
	// back to the long-poll endpoint and still deliver.
	e := newEnv(t)
	ft := faulthttp.New(e.ts.Client().Transport,
		&faulthttp.Rule{PathContains: "/v1/stream", Status: http.StatusNotFound})
	client := NewClient(e.ts.URL, e.set, e.key.Pub, WithHTTPClient(ft.Client()))

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	label := e.sched.Label(e.clock.Now())
	got := make(chan error, 1)
	go func() {
		u, err := client.WaitFor(ctx, label)
		if err == nil && u.Label != label {
			err = errors.New("wrong label")
		}
		got <- err
	}()
	waitSubscribers(t, e.server.Subscribers, 1) // parked via /v1/wait
	if err := e.server.PublishLabel(label); err != nil {
		t.Fatal(err)
	}
	if err := <-got; err != nil {
		t.Fatalf("WaitFor with 404 stream: %v", err)
	}
}

func TestWaitForReconnectsAfterMidStreamCut(t *testing.T) {
	// The first stream connection is cut mid-body (truncated before any
	// event); WaitFor must reconnect under the retry policy and succeed
	// on the second connection.
	e := newEnv(t)
	ft := faulthttp.New(e.ts.Client().Transport,
		&faulthttp.Rule{PathContains: "/v1/stream", From: 1, To: 1, TruncateTo: 3})
	client := NewClient(e.ts.URL, e.set, e.key.Pub,
		WithHTTPClient(ft.Client()),
		WithRetry(RetryPolicy{MaxAttempts: 5, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond}))

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	label := e.sched.Label(e.clock.Now())
	got := make(chan error, 1)
	go func() {
		_, err := client.WaitFor(ctx, label)
		got <- err
	}()
	waitSubscribers(t, e.server.Subscribers, 1) // the SECOND (healthy) stream
	if err := e.server.PublishLabel(label); err != nil {
		t.Fatal(err)
	}
	if err := <-got; err != nil {
		t.Fatalf("WaitFor after mid-stream cut: %v", err)
	}
}

func TestWaitForCatchesUpAcrossDisconnect(t *testing.T) {
	// An update published while the client is disconnected must be caught
	// up via a direct fetch between stream attempts, never missed: here
	// the stream endpoint is permanently broken, so only the catch-up
	// path can deliver.
	e := newEnv(t)
	label := e.sched.Label(e.clock.Now())
	if err := e.server.PublishLabel(label); err != nil {
		t.Fatal(err)
	}
	ft := faulthttp.New(e.ts.Client().Transport,
		&faulthttp.Rule{PathContains: "/v1/stream", TruncateTo: 1})
	client := NewClient(e.ts.URL, e.set, e.key.Pub,
		WithHTTPClient(ft.Client()),
		WithRetry(RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond}))

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	u, err := client.WaitFor(ctx, label)
	if err != nil {
		t.Fatalf("WaitFor with broken stream: %v", err)
	}
	if u.Label != label || !e.sc.VerifyUpdate(e.key.Pub, u) {
		t.Fatal("caught-up update invalid")
	}
}

func TestWaitForGivesUpWhenServerUnreachable(t *testing.T) {
	// When the server is down entirely, WaitFor must give up after
	// MaxAttempts unreachable cycles instead of spinning forever.
	e := newEnv(t)
	ft := faulthttp.New(e.ts.Client().Transport,
		&faulthttp.Rule{Err: errors.New("connection refused")})
	client := NewClient(e.ts.URL, e.set, e.key.Pub,
		WithHTTPClient(ft.Client()),
		WithRetry(RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := client.WaitFor(ctx, e.sched.Label(e.clock.Now())); err == nil {
		t.Fatal("WaitFor succeeded against an unreachable server")
	}
}

func TestStreamRejectsInjectedUpdate(t *testing.T) {
	// Self-authentication end to end: an update from a server whose key
	// does not match the client's pinned key must abort the stream with
	// ErrBadUpdate, not be delivered.
	e := newEnv(t)
	wrong, err := e.sc.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(e.ts.URL, e.set, wrong.Pub, WithHTTPClient(e.ts.Client()))
	if err := e.server.PublishLabel(e.sched.Label(e.clock.Now())); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err = client.StreamUpdates(ctx, e.sched.Label(e.clock.Now()), func(core.KeyUpdate) error { return nil })
	if !errors.Is(err, ErrBadUpdate) {
		t.Fatalf("stream with wrong pinned key: err=%v, want ErrBadUpdate", err)
	}
}

package timeserver

import (
	"context"
	"math/rand/v2"
	"net/http"
	"time"
)

// RetryPolicy governs transport-level retries inside the client. A
// fetch is retried only when the failure could be transient — a
// network error, a truncated response body, or a 429/5xx status. A
// 404 (not yet published), a 200 with a bad signature, or any other
// definitive answer is never retried: retrying cannot change it, and
// hammering a correct server is exactly what the paper's passive
// design avoids.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per request (≥ 1).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// retry (capped at MaxDelay), with ±50% jitter so a fleet of
	// recovering clients does not stampede the server in lockstep.
	BaseDelay time.Duration
	// MaxDelay caps the backoff.
	MaxDelay time.Duration
	// PerAttempt bounds each individual attempt (0 = no per-attempt
	// bound; the caller's context and the http.Client timeout still
	// apply to the whole request).
	PerAttempt time.Duration
}

// DefaultRetry is the client's out-of-the-box policy: three attempts,
// 50ms → 100ms backoff (jittered), 10s per attempt. It rides out a
// restarting server or a dropped connection without turning a
// definitive answer into a wait.
var DefaultRetry = RetryPolicy{
	MaxAttempts: 3,
	BaseDelay:   50 * time.Millisecond,
	MaxDelay:    2 * time.Second,
	PerAttempt:  10 * time.Second,
}

// NoRetry disables retries: one attempt, fail fast.
var NoRetry = RetryPolicy{MaxAttempts: 1}

// WithRetry substitutes the client's retry policy (DefaultRetry unless
// configured; use NoRetry to fail fast).
func WithRetry(p RetryPolicy) ClientOption {
	return func(c *Client) { c.retry = p }
}

// backoff returns the jittered delay before the given retry (retry 1 =
// first re-attempt).
func (p RetryPolicy) backoff(retry int) time.Duration {
	d := p.BaseDelay
	if d <= 0 {
		return 0
	}
	for i := 1; i < retry && d < p.MaxDelay; i++ {
		d *= 2
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	// Jitter in [d/2, d].
	return d/2 + rand.N(d/2+1)
}

// retryableStatus reports whether a status code may be transient.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests,
		http.StatusBadGateway,
		http.StatusServiceUnavailable,
		http.StatusGatewayTimeout,
		http.StatusInternalServerError:
		return true
	}
	return false
}

// sleepCtx sleeps for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

package timeserver

import (
	"context"
	"errors"
	"strings"
	"syscall"
	"testing"
	"time"

	"timedrelease/internal/faulthttp"
	"timedrelease/internal/obs"
)

// fastRetry is DefaultRetry compressed for tests: same shape, no real
// sleeping.
var fastRetry = RetryPolicy{
	MaxAttempts: 3,
	BaseDelay:   time.Millisecond,
	MaxDelay:    4 * time.Millisecond,
	PerAttempt:  5 * time.Second,
}

// faultyEnv is newEnv with a fault-injecting transport between the
// client and the test server, plus an instrumented metric registry.
func faultyEnv(t *testing.T, policy RetryPolicy, rules ...*faulthttp.Rule) (*env, *faulthttp.Transport, *obs.Registry) {
	t.Helper()
	e := newEnv(t)
	ft := faulthttp.New(e.ts.Client().Transport, rules...)
	reg := obs.NewRegistry()
	e.client = NewClient(e.ts.URL, e.set, e.key.Pub,
		WithHTTPClient(ft.Client()),
		WithRetry(policy),
		WithClientMetrics(reg))
	return e, ft, reg
}

func TestRetryRidesOutTransientErrors(t *testing.T) {
	// The first two attempts die with a connection error; the third
	// succeeds. The client should deliver the verified update without
	// surfacing any of it, and count exactly two retries.
	e, ft, reg := faultyEnv(t, fastRetry,
		&faulthttp.Rule{PathContains: "/v1/update/", From: 1, To: 2, Err: syscall.ECONNRESET})
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	label := e.sched.Label(e.clock.Now())
	u, err := e.client.Update(context.Background(), label)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if u.Label != label || !e.sc.VerifyUpdate(e.key.Pub, u) {
		t.Fatal("fetched update invalid")
	}
	if got := ft.Requests(); got != 3 {
		t.Fatalf("requests = %d, want 3 (2 failures + 1 success)", got)
	}
	if got := reg.Counter("client.retries").Load(); got != 2 {
		t.Fatalf("client.retries = %d, want 2", got)
	}
}

func TestRetryRidesOutTruncatedBody(t *testing.T) {
	// A response cut mid-body is a transport failure, not a definitive
	// answer: the client must retry, and must never surface the partial
	// bytes as a decode error.
	e, ft, _ := faultyEnv(t, fastRetry,
		&faulthttp.Rule{PathContains: "/v1/update/", From: 1, To: 1, TruncateTo: 3})
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	label := e.sched.Label(e.clock.Now())
	if _, err := e.client.Update(context.Background(), label); err != nil {
		t.Fatalf("Update after truncated body: %v", err)
	}
	if got := ft.Requests(); got != 2 {
		t.Fatalf("requests = %d, want 2", got)
	}
}

func TestRetryRidesOutTransientStatus(t *testing.T) {
	// 503 from a restarting server (or its load balancer) is transient;
	// the retry must get the real answer.
	e, ft, _ := faultyEnv(t, fastRetry,
		&faulthttp.Rule{PathContains: "/v1/update/", From: 1, To: 1, Status: 503})
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	label := e.sched.Label(e.clock.Now())
	if _, err := e.client.Update(context.Background(), label); err != nil {
		t.Fatalf("Update after 503: %v", err)
	}
	if got := ft.Requests(); got != 2 {
		t.Fatalf("requests = %d, want 2", got)
	}
}

func TestNoRetryOnDefinitiveAnswer(t *testing.T) {
	// 404 means "not yet published" — a correct answer from a correct
	// server. Retrying it would hammer the passive server for nothing,
	// so the policy must not kick in.
	e, ft, reg := faultyEnv(t, fastRetry)
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	future := e.sched.Label(e.clock.Now().Add(time.Hour))
	_, err := e.client.Update(context.Background(), future)
	if !errors.Is(err, ErrNotYetPublished) {
		t.Fatalf("err = %v, want ErrNotYetPublished", err)
	}
	if got := ft.Requests(); got != 1 {
		t.Fatalf("requests = %d, want 1 (definitive answers are never retried)", got)
	}
	if got := reg.Counter("client.retries").Load(); got != 0 {
		t.Fatalf("client.retries = %d, want 0", got)
	}
}

func TestRetryExhaustionNamesTheAttempts(t *testing.T) {
	e, ft, reg := faultyEnv(t, fastRetry,
		&faulthttp.Rule{PathContains: "/v1/update/", Err: syscall.ECONNREFUSED})
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	label := e.sched.Label(e.clock.Now())
	_, err := e.client.Update(context.Background(), label)
	if err == nil {
		t.Fatal("Update succeeded through a dead transport")
	}
	if !errors.Is(err, syscall.ECONNREFUSED) {
		t.Fatalf("err = %v, want to unwrap to ECONNREFUSED", err)
	}
	if !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("err = %v, want attempt count in message", err)
	}
	if got := ft.Requests(); got != 3 {
		t.Fatalf("requests = %d, want 3", got)
	}
	if got := reg.Counter("client.retries").Load(); got != 2 {
		t.Fatalf("client.retries = %d, want 2", got)
	}
}

func TestRetryRespectsContextDuringBackoff(t *testing.T) {
	// Huge backoff, dead transport, short caller deadline: the call must
	// return when the context does, not after the backoff schedule.
	slow := RetryPolicy{MaxAttempts: 5, BaseDelay: time.Hour, MaxDelay: time.Hour}
	e, _, _ := faultyEnv(t, slow,
		&faulthttp.Rule{PathContains: "/v1/update/", Err: syscall.ECONNREFUSED})
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := e.client.Update(ctx, e.sched.Label(e.clock.Now()))
	if err == nil {
		t.Fatal("Update succeeded through a dead transport")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Update blocked %v in backoff after the context expired", elapsed)
	}
}

func TestCatchUpDegradedReturnsVerifiedPrefix(t *testing.T) {
	// Three published labels, the middle one unreachable, plus a label
	// that does not exist yet. CatchUp must hand back the two verified
	// updates it could get and a PartialError naming exactly the rest.
	e := newEnv(t)
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	e.clock.Advance(2 * time.Minute)
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	labels, err := e.client.Labels(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) < 3 {
		t.Fatalf("want ≥3 published labels, got %v", labels)
	}
	unreachable := labels[1]
	future := e.sched.Label(e.clock.Now().Add(time.Hour))

	ft := faulthttp.New(e.ts.Client().Transport,
		&faulthttp.Rule{PathContains: "/v1/update/" + unreachable, Err: syscall.ECONNRESET})
	reg := obs.NewRegistry()
	client := NewClient(e.ts.URL, e.set, e.key.Pub,
		WithHTTPClient(ft.Client()),
		WithRetry(NoRetry),
		WithClientMetrics(reg),
		// Pin the per-label path: this test is about per-label
		// degradation, which the aggregate range mode would route
		// around (a range response does not care that one update's
		// endpoint is unreachable).
		WithoutAggregateCatchUp())

	ask := append(append([]string{}, labels...), future)
	got, err := client.CatchUp(context.Background(), ask)

	var partial *PartialError
	if !errors.As(err, &partial) {
		t.Fatalf("err = %v, want *PartialError", err)
	}
	if len(got) != len(labels)-1 {
		t.Fatalf("got %d verified updates, want %d", len(got), len(labels)-1)
	}
	for _, u := range got {
		if u.Label == unreachable || u.Label == future {
			t.Fatalf("degraded CatchUp returned a missing label %q", u.Label)
		}
		if !e.sc.VerifyUpdate(e.key.Pub, u) {
			t.Fatalf("degraded CatchUp returned unverified update %q", u.Label)
		}
	}
	want := []string{unreachable, future}
	if len(partial.Missing) != 2 || partial.Missing[0] != want[0] || partial.Missing[1] != want[1] {
		t.Fatalf("Missing = %v, want %v", partial.Missing, want)
	}
	if !errors.Is(partial.Causes[future], ErrNotYetPublished) {
		t.Fatalf("Causes[%s] = %v, want ErrNotYetPublished", future, partial.Causes[future])
	}
	if !errors.Is(partial.Causes[unreachable], syscall.ECONNRESET) {
		t.Fatalf("Causes[%s] = %v, want ECONNRESET", unreachable, partial.Causes[unreachable])
	}
	// errors.Is must see through the aggregate to each cause.
	if !errors.Is(err, ErrNotYetPublished) || !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("errors.Is does not see through PartialError: %v", err)
	}
	if got := reg.Counter("client.catchup_degraded").Load(); got != 1 {
		t.Fatalf("client.catchup_degraded = %d, want 1", got)
	}

	// The degraded result is still cached: once the fault clears, a
	// second CatchUp only needs the two missing labels.
	ft2 := faulthttp.New(e.ts.Client().Transport)
	client2 := NewClient(e.ts.URL, e.set, e.key.Pub, WithHTTPClient(ft2.Client()))
	// (fresh client: simpler than mutating the fault rules mid-flight)
	all, err := client2.CatchUp(context.Background(), labels)
	if err != nil {
		t.Fatalf("CatchUp after fault cleared: %v", err)
	}
	if len(all) != len(labels) {
		t.Fatalf("recovered CatchUp returned %d updates, want %d", len(all), len(labels))
	}
}

func TestCatchUpIntegrityFailureAbortsWholesale(t *testing.T) {
	// Degraded mode is about availability only. A server whose update
	// fails the pinned-key check must abort the whole call — returning
	// the other labels would invite "accept the subset, miss the
	// alarm".
	e := newEnv(t)
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	e.clock.Advance(time.Minute)
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	labels, err := e.client.Labels(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// A client pinned to the WRONG key sees every update as forged.
	impostor, err := e.sc.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(e.ts.URL, e.set, impostor.Pub, WithHTTPClient(e.ts.Client()))
	got, err := client.CatchUp(context.Background(), labels)
	if !errors.Is(err, ErrBadUpdate) {
		t.Fatalf("err = %v, want ErrBadUpdate", err)
	}
	var partial *PartialError
	if errors.As(err, &partial) {
		t.Fatal("integrity failure must not be reported as a PartialError")
	}
	if len(got) != 0 {
		t.Fatalf("integrity failure returned %d updates, want 0", len(got))
	}
}

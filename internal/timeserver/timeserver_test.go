package timeserver

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"timedrelease/internal/core"
	"timedrelease/internal/params"
	"timedrelease/internal/timefmt"
)

// fakeClock is a settable time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(d)
}

type env struct {
	set    *params.Set
	sc     *core.Scheme
	key    *core.ServerKeyPair
	sched  timefmt.Schedule
	clock  *fakeClock
	server *Server
	ts     *httptest.Server
	client *Client
}

func newEnv(t *testing.T) *env {
	t.Helper()
	set := params.MustPreset("Test160")
	sc := core.NewScheme(set)
	key, err := sc.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	sched := timefmt.MustSchedule(time.Minute)
	clock := &fakeClock{t: time.Date(2026, 7, 5, 12, 0, 30, 0, time.UTC)}
	srv := NewServer(set, key, sched, WithClock(clock.Now))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL, set, key.Pub, WithHTTPClient(ts.Client()))
	return &env{set: set, sc: sc, key: key, sched: sched, clock: clock, server: srv, ts: ts, client: client}
}

func TestPublishAndFetch(t *testing.T) {
	e := newEnv(t)
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	label := e.sched.Label(e.clock.Now())
	u, err := e.client.Update(context.Background(), label)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if u.Label != label || !e.sc.VerifyUpdate(e.key.Pub, u) {
		t.Fatal("fetched update invalid")
	}
}

func TestFutureUpdateIsRefused(t *testing.T) {
	// The paper's core trust property: no I_t before t. A request for a
	// future label must 404 and must not cause the server to sign it.
	e := newEnv(t)
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	future := e.sched.Next(e.clock.Now())
	_, err := e.client.Update(context.Background(), future)
	if !errors.Is(err, ErrNotYetPublished) {
		t.Fatalf("future label: err=%v, want ErrNotYetPublished", err)
	}
	// Even an explicit publish attempt must fail while t is in the future.
	if err := e.server.PublishLabel(future); !errors.Is(err, ErrFutureLabel) {
		t.Fatalf("PublishLabel(future): err=%v, want ErrFutureLabel", err)
	}
}

func TestCatchUpAfterGap(t *testing.T) {
	// Server down for a while: PublishUpTo must backfill every missed
	// epoch so receivers can look up old updates (§3).
	e := newEnv(t)
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	e.clock.Advance(5 * time.Minute)
	n, err := e.server.PublishUpTo(e.clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("backfilled %d updates, want 5", n)
	}
	labels, err := e.client.Labels(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 6 {
		t.Fatalf("server lists %d labels, want 6", len(labels))
	}
	// A receiver who missed the broadcast gets an old update on demand.
	old := labels[0]
	u, err := e.client.Update(context.Background(), old)
	if err != nil || !e.sc.VerifyUpdate(e.key.Pub, u) {
		t.Fatalf("old update: %v %v", u, err)
	}
}

func TestClientRejectsForgedUpdate(t *testing.T) {
	// A client pinned to server A must reject updates served by
	// impostor B even over a fully compromised transport.
	e := newEnv(t)
	impostorKey, err := e.sc.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	impostor := NewServer(e.set, impostorKey, e.sched, WithClock(e.clock.Now))
	if _, err := impostor.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(impostor.Handler())
	defer ts.Close()

	// Client pins the REAL server key but talks to the impostor.
	c := NewClient(ts.URL, e.set, e.key.Pub, WithHTTPClient(ts.Client()))
	label := e.sched.Label(e.clock.Now())
	if _, err := c.Update(context.Background(), label); !errors.Is(err, ErrBadUpdate) {
		t.Fatalf("forged update: err=%v, want ErrBadUpdate", err)
	}
}

func TestClientCaches(t *testing.T) {
	e := newEnv(t)
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	label := e.sched.Label(e.clock.Now())
	before := e.server.Served()
	for i := 0; i < 5; i++ {
		if _, err := e.client.Update(context.Background(), label); err != nil {
			t.Fatal(err)
		}
	}
	after := e.server.Served()
	if after-before != 1 {
		t.Fatalf("server saw %d requests for one label, want 1 (cache)", after-before)
	}
	if e.client.CachedLen() != 1 {
		t.Fatalf("CachedLen = %d", e.client.CachedLen())
	}
}

func TestLatest(t *testing.T) {
	e := newEnv(t)
	if _, err := e.client.Latest(context.Background()); !errors.Is(err, ErrNotYetPublished) {
		t.Fatal("Latest before any publish must report not-published")
	}
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	e.clock.Advance(3 * time.Minute)
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	u, err := e.client.Latest(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if u.Label != e.sched.Label(e.clock.Now()) {
		t.Fatalf("Latest = %q, want %q", u.Label, e.sched.Label(e.clock.Now()))
	}
}

func TestWaitForRelease(t *testing.T) {
	e := newEnv(t)
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	target := e.sched.Next(e.clock.Now())

	release := make(chan struct{})
	go func() {
		<-release
		e.clock.Advance(time.Minute)
		if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
			t.Errorf("PublishUpTo: %v", err)
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go close(release)
	u, err := e.client.WaitForRelease(ctx, target, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("WaitForRelease: %v", err)
	}
	if u.Label != target {
		t.Fatalf("released %q, want %q", u.Label, target)
	}
}

func TestWaitForReleaseContextCancel(t *testing.T) {
	e := newEnv(t)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := e.client.WaitForRelease(ctx, e.sched.Next(e.clock.Now()), 10*time.Millisecond)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err=%v, want deadline exceeded", err)
	}
}

func TestEndToEndOverHTTP(t *testing.T) {
	// Full flow: bootstrap params from the server, pin the key, encrypt
	// for a future epoch, wait for release, decrypt — sender and receiver
	// never interact with the server beyond reading public data.
	e := newEnv(t)
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	set, spub, sched, err := FetchBootstrap(ctx, e.ts.URL, e.ts.Client())
	if err != nil {
		t.Fatalf("FetchBootstrap: %v", err)
	}
	if set.P.Cmp(e.set.P) != 0 || sched.Granularity != e.sched.Granularity {
		t.Fatal("bootstrap mismatch")
	}
	sc := core.NewScheme(set)
	receiver, err := sc.UserKeyGen(spub, nil)
	if err != nil {
		t.Fatal(err)
	}

	releaseAt := sched.Next(e.clock.Now())
	msg := []byte("sealed bid: $42")
	ct, err := sc.EncryptCCA(nil, spub, receiver.Pub, releaseAt, msg)
	if err != nil {
		t.Fatal(err)
	}

	// Too early: update unavailable.
	c := NewClient(e.ts.URL, set, spub, WithHTTPClient(e.ts.Client()))
	if _, err := c.Update(ctx, releaseAt); !errors.Is(err, ErrNotYetPublished) {
		t.Fatalf("early fetch: err=%v", err)
	}

	// Time passes; the epoch arrives.
	e.clock.Advance(time.Minute)
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	upd, err := c.Update(ctx, releaseAt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sc.DecryptCCA(spub, receiver, upd, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("end-to-end round trip mismatch")
	}
}

func TestRunPublishesOnSchedule(t *testing.T) {
	// Run with a real (fast) schedule: 500ms epochs on the wall clock.
	set := params.MustPreset("Test160")
	sc := core.NewScheme(set)
	key, err := sc.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	sched := timefmt.MustSchedule(500 * time.Millisecond)
	srv := NewServer(set, key, sched)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx) }()

	deadline := time.After(10 * time.Second)
	for srv.Published() < 2 {
		select {
		case <-deadline:
			t.Fatal("Run did not publish 2 updates in 10s")
		case <-time.After(20 * time.Millisecond):
		}
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v", err)
	}
}

func TestServerKeyEndpointRoundTrip(t *testing.T) {
	e := newEnv(t)
	resp, err := e.ts.Client().Get(e.ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

// newTestHTTP serves a Server's handler over httptest with cleanup.
func newTestHTTP(t *testing.T, srv *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

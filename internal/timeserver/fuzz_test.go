package timeserver

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"timedrelease/internal/core"
	"timedrelease/internal/obs"
	"timedrelease/internal/params"
	"timedrelease/internal/wire"
)

// FuzzClientDecodeUpdate feeds arbitrary bytes to the client as an HTTP
// update response — the exact surface a compromised or impersonated
// server controls. The client must never panic, must reject anything
// that is not a correctly-signed update for the requested label, and
// must only return updates that verify against the pinned key. Run a
// campaign with
//
//	go test -fuzz FuzzClientDecodeUpdate ./internal/timeserver
func FuzzClientDecodeUpdate(f *testing.F) {
	set := params.MustPreset("Test160")
	sc := core.NewScheme(set)
	key, err := sc.ServerKeyGen(nil)
	if err != nil {
		f.Fatal(err)
	}
	codec := wire.NewCodec(set)
	const label = "2026-08-06T12:00:00Z"
	genuine := codec.MarshalKeyUpdate(sc.IssueUpdate(key, label))
	otherLabel := codec.MarshalKeyUpdate(sc.IssueUpdate(key, "2026-08-06T12:01:00Z"))
	impostorKey, err := sc.ServerKeyGen(nil)
	if err != nil {
		f.Fatal(err)
	}
	forged := codec.MarshalKeyUpdate(sc.IssueUpdate(impostorKey, label))

	// One server whose response body is the fuzz payload; WithoutCache
	// keeps every Update on the parse path.
	var mu sync.Mutex
	var payload []byte
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		w.Write(payload)
	}))
	f.Cleanup(ts.Close)
	client := NewClient(ts.URL, set, key.Pub,
		WithHTTPClient(ts.Client()), WithoutCache(), WithClientMetrics(obs.NewRegistry()))

	f.Add(genuine)
	f.Add(otherLabel)
	f.Add(forged)
	f.Add([]byte{})
	f.Add([]byte{0, 20, 'x'})
	if len(genuine) > 2 {
		truncated := genuine[:len(genuine)-3]
		f.Add(truncated)
		flipped := append([]byte(nil), genuine...)
		flipped[len(flipped)-1] ^= 0xff
		f.Add(flipped)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		mu.Lock()
		payload = data
		mu.Unlock()
		u, err := client.Update(context.Background(), label)
		if err != nil {
			return
		}
		// Anything accepted must be exactly a verified update for the
		// requested label (only the genuine seed can get here).
		if u.Label != label {
			t.Fatalf("accepted update for label %q, asked for %q", u.Label, label)
		}
		if !sc.VerifyUpdate(key.Pub, u) {
			t.Fatal("accepted update that fails verification")
		}
	})
}

package timeserver

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"timedrelease/internal/core"
)

// notifier broadcasts "something was published" to any number of
// waiting request handlers by closing and replacing a channel. It
// carries no information about what was published or who is waiting —
// consistent with the server's no-user-state property.
type notifier struct {
	mu sync.Mutex
	ch chan struct{}
}

func newNotifier() *notifier {
	return &notifier{ch: make(chan struct{})}
}

// wake releases every current waiter.
func (n *notifier) wake() {
	n.mu.Lock()
	defer n.mu.Unlock()
	close(n.ch)
	n.ch = make(chan struct{})
}

// wait returns a channel closed at the next wake.
func (n *notifier) wait() <-chan struct{} {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ch
}

// Long-poll limits.
const (
	defaultWaitTimeout = 25 * time.Second
	maxWaitTimeout     = 2 * time.Minute
)

// handleWait is the long-poll variant of handleUpdate: it blocks until
// the label's update is published, the requested timeout passes, or the
// client goes away. Receivers "waiting in alert" for a release (paper
// §3) get the update the instant it exists, without polling. The handler
// still only reads published data — it cannot cause a release.
func (v *publicView) handleWait(w http.ResponseWriter, r *http.Request) {
	label := r.PathValue("label")
	timeout := defaultWaitTimeout
	if raw := r.URL.Query().Get("timeout"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d <= 0 {
			http.Error(w, "bad timeout", http.StatusBadRequest)
			return
		}
		timeout = min(d, maxWaitTimeout)
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()

	for {
		// Subscribe BEFORE checking the archive so a publish between the
		// check and the wait cannot be missed.
		woken := v.notify.wait()
		if u, ok := v.arch.Get(label); ok {
			v.archHit.Inc()
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(v.codec.MarshalKeyUpdate(u))
			return
		}
		// A draining server answers instead of holding the poll open, so
		// graceful shutdown is never hostage to a long-poll timeout. The
		// wake() in Drain re-runs this check for already-parked waiters.
		if v.draining.Load() {
			http.Error(w, "server shutting down", http.StatusServiceUnavailable)
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-deadline.C:
			v.archMiss.Inc()
			http.Error(w, "update not published within timeout", http.StatusNotFound)
			return
		case <-woken:
		}
	}
}

// WaitForReleaseLongPoll blocks until the update for label is published,
// using the server's long-poll endpoint instead of client-side polling:
// one outstanding request per ~25s instead of one per poll interval, and
// delivery latency bounded by the network rather than the poll period.
func (c *Client) WaitForReleaseLongPoll(ctx context.Context, label string) (core.KeyUpdate, error) {
	for {
		body, status, err := c.get(ctx, "/v1/wait/"+label+"?timeout="+defaultWaitTimeout.String())
		if err != nil {
			return core.KeyUpdate{}, err
		}
		switch status {
		case http.StatusOK:
			return c.verifyAndCache(label, body)
		case http.StatusNotFound:
			// Timed out server-side; re-issue (also check ctx).
			select {
			case <-ctx.Done():
				return core.KeyUpdate{}, ctx.Err()
			default:
			}
		default:
			return core.KeyUpdate{}, fmt.Errorf("timeserver: unexpected status %d", status)
		}
	}
}

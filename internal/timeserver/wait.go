package timeserver

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"timedrelease/internal/core"
)

// Long-poll limits.
const (
	defaultWaitTimeout = 25 * time.Second
	maxWaitTimeout     = 2 * time.Minute
)

// handleWait is the long-poll variant of handleUpdate: it blocks until
// the label's update is published, the requested timeout passes, or the
// client goes away. Receivers "waiting in alert" for a release (paper
// §3) get the update the instant it exists, without polling.
//
// The handler parks as a one-shot hub subscription for its label: when
// the publish happens, the hub hands every matching waiter the SAME
// already-encoded bytes in one pass, so N parked waiters cost the
// publish path nothing beyond N channel sends — no per-waiter archive
// re-read, no per-waiter re-encode, no thundering re-check herd. The
// handler still only reads published data — it cannot cause a release.
func (v *publicView) handleWait(w http.ResponseWriter, r *http.Request) {
	label := r.PathValue("label")
	timeout := defaultWaitTimeout
	if raw := r.URL.Query().Get("timeout"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d <= 0 {
			http.Error(w, "bad timeout", http.StatusBadRequest)
			return
		}
		timeout = min(d, maxWaitTimeout)
	}

	// Subscribe BEFORE checking the archive so a publish between the
	// check and the park cannot be missed.
	sub := v.hub.subscribe(label)
	defer v.hub.unsubscribe(sub)

	if u, ok := v.arch.Get(label); ok {
		// Already published: answer from the archive (the per-request
		// encode here is the uncontended path, not a publish fan-out).
		v.archHit.Inc()
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(v.codec.MarshalKeyUpdate(u))
		return
	}
	// A draining server answers instead of holding the poll open, so
	// graceful shutdown is never hostage to a long-poll timeout.
	if v.draining.Load() {
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
		return
	}

	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	select {
	case m := <-sub.ch:
		v.hub.gQueue.Add(-1)
		v.archHit.Inc()
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(m.body)
	case <-v.hub.drained:
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
	case <-r.Context().Done():
	case <-deadline.C:
		v.archMiss.Inc()
		http.Error(w, "update not published within timeout", http.StatusNotFound)
	}
}

// WaitForReleaseLongPoll blocks until the update for label is published,
// using the server's long-poll endpoint instead of client-side polling:
// one outstanding request per ~25s instead of one per poll interval, and
// delivery latency bounded by the network rather than the poll period.
// Prefer WaitFor, which rides the push stream and falls back to this.
func (c *Client) WaitForReleaseLongPoll(ctx context.Context, label string) (core.KeyUpdate, error) {
	for {
		body, status, err := c.get(ctx, "/v1/wait/"+label+"?timeout="+defaultWaitTimeout.String())
		if err != nil {
			return core.KeyUpdate{}, err
		}
		switch status {
		case http.StatusOK:
			return c.verifyAndCache(label, body)
		case http.StatusNotFound:
			// Timed out server-side; re-issue (also check ctx).
			select {
			case <-ctx.Done():
				return core.KeyUpdate{}, ctx.Err()
			default:
			}
		default:
			return core.KeyUpdate{}, fmt.Errorf("timeserver: unexpected status %d", status)
		}
	}
}

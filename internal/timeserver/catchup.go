package timeserver

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"timedrelease/internal/core"
)

// CatchUp fetches the updates for many labels (e.g. every epoch missed
// while offline) and verifies them in ONE batched pairing equation
// instead of one per update — the receiver-side complement of the
// archive the paper prescribes for missed broadcasts (§3). Already-
// cached labels are served locally; on batch failure it falls back to
// per-update verification so the offending update is identified in the
// error. All verified updates are cached.
func (c *Client) CatchUp(ctx context.Context, labels []string) ([]core.KeyUpdate, error) {
	out := make([]core.KeyUpdate, len(labels))

	// Partition into cached and to-fetch.
	var missing []int
	for i, label := range labels {
		if u, ok := c.cached(label); ok {
			out[i] = u
		} else {
			missing = append(missing, i)
		}
	}
	if len(missing) == 0 {
		return out, nil
	}

	// Fetch the missing ones (unverified for now).
	fetched := make([]core.KeyUpdate, 0, len(missing))
	for _, i := range missing {
		label := labels[i]
		body, status, err := c.get(ctx, "/v1/update/"+label)
		if err != nil {
			return nil, err
		}
		if status == http.StatusNotFound {
			return nil, fmt.Errorf("%w: %s", ErrNotYetPublished, label)
		}
		if status != http.StatusOK {
			return nil, fmt.Errorf("timeserver: unexpected status %d for %s", status, label)
		}
		u, err := c.codec.UnmarshalKeyUpdate(body)
		if err != nil {
			return nil, err
		}
		if u.Label != label {
			return nil, fmt.Errorf("timeserver: server returned update for %q, asked for %q", u.Label, label)
		}
		fetched = append(fetched, u)
	}

	// Batch-verify everything fetched with one pairing equation, over the
	// Miller-loop schedules precomputed for the pinned server key.
	c.met.catchupBatches.Inc()
	start := time.Now()
	ok, err := c.sc.VerifyUpdateBatch(c.spub, fetched)
	if err != nil {
		return nil, err
	}
	if !ok {
		// Locate the offender for a useful error.
		c.met.catchupFallback.Inc()
		for _, u := range fetched {
			if !c.sc.VerifyUpdate(c.spub, u) {
				return nil, fmt.Errorf("%w (label %s)", ErrBadUpdate, u.Label)
			}
		}
		return nil, ErrBadUpdate // all pass individually?! treat as failure
	}
	c.met.verifyNS.Since(start)

	// Cache and fill results from what was just verified (the cache may
	// be disabled, so out is filled directly).
	byLabel := make(map[string]core.KeyUpdate, len(fetched))
	for _, u := range fetched {
		c.store(u)
		byLabel[u.Label] = u
	}
	for _, i := range missing {
		out[i] = byLabel[labels[i]]
	}
	return out, nil
}

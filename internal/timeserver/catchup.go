package timeserver

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"timedrelease/internal/core"
)

// PartialError reports a degraded catch-up: some labels produced
// verified updates, others could not be fetched. The verified part has
// already been returned — a receiver can decrypt everything whose
// release it now holds and re-request the rest later — so this is an
// error about completeness, never about integrity (an update that
// fails verification is ErrBadUpdate, wholesale).
type PartialError struct {
	// Missing lists the labels with no verified update, in request
	// order.
	Missing []string
	// Causes maps each missing label to why it is missing (e.g.
	// ErrNotYetPublished, or the transport error that survived the
	// retry policy).
	Causes map[string]error
}

// Error summarises the damage without flooding: the count plus the
// first missing label and its cause.
func (e *PartialError) Error() string {
	if len(e.Missing) == 0 {
		return "timeserver: degraded catch-up"
	}
	first := e.Missing[0]
	return fmt.Sprintf("timeserver: degraded catch-up: %d label(s) missing (first: %s: %v)",
		len(e.Missing), first, e.Causes[first])
}

// Unwrap exposes the per-label causes so errors.Is sees through the
// partial error (e.g. errors.Is(err, ErrNotYetPublished) holds when
// any missing label is simply not released yet).
func (e *PartialError) Unwrap() []error {
	out := make([]error, 0, len(e.Causes))
	for _, err := range e.Causes {
		out = append(out, err)
	}
	return out
}

// CatchUp fetches the updates for many labels (e.g. every epoch missed
// while offline) and verifies them in ONE batched pairing equation
// instead of one per update — the receiver-side complement of the
// archive the paper prescribes for missed broadcasts (§3). Already-
// cached labels are served locally; on batch failure it falls back to
// per-update verification so the offending update is identified in the
// error. All verified updates are cached.
//
// CatchUp degrades instead of failing wholesale: a label whose fetch
// fails (not yet published, or a transport error that survived the
// retry policy) is skipped, and the verified updates for every OTHER
// label are still returned — in request order — alongside a
// *PartialError naming the missing labels. err == nil means every
// label was returned. Integrity failures are different: any update
// that fails verification poisons nothing but aborts the call with
// ErrBadUpdate, exactly as before — degraded mode never trades away
// the pinned-key check. ctx cancellation also aborts wholesale.
func (c *Client) CatchUp(ctx context.Context, labels []string) ([]core.KeyUpdate, error) {
	byLabel := make(map[string]core.KeyUpdate, len(labels))

	// Partition into cached and to-fetch.
	var missing []string
	for _, label := range labels {
		if u, ok := c.cached(label); ok {
			byLabel[label] = u
		} else if _, dup := byLabel[label]; !dup {
			missing = append(missing, label)
		}
	}

	// Fetch what we can (unverified for now), remembering what we
	// cannot.
	fetched := make([]core.KeyUpdate, 0, len(missing))
	var partial *PartialError
	skip := func(label string, cause error) {
		if partial == nil {
			partial = &PartialError{Causes: make(map[string]error)}
		}
		partial.Missing = append(partial.Missing, label)
		partial.Causes[label] = cause
	}
	for _, label := range missing {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		body, status, err := c.get(ctx, "/v1/update/"+label)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return nil, err
			}
			skip(label, err)
			continue
		case status == http.StatusNotFound:
			skip(label, ErrNotYetPublished)
			continue
		case status != http.StatusOK:
			skip(label, fmt.Errorf("timeserver: unexpected status %d", status))
			continue
		}
		u, err := c.codec.UnmarshalKeyUpdate(body)
		if err != nil {
			skip(label, err)
			continue
		}
		if u.Label != label {
			skip(label, fmt.Errorf("timeserver: server returned update for %q", u.Label))
			continue
		}
		fetched = append(fetched, u)
	}

	// Batch-verify everything fetched with one pairing equation, over the
	// Miller-loop schedules precomputed for the pinned server key.
	if len(fetched) > 0 {
		c.met.catchupBatches.Inc()
		start := time.Now()
		ok, err := c.sc.VerifyUpdateBatch(c.spub, fetched)
		if err != nil {
			return nil, err
		}
		if !ok {
			// Locate the offender for a useful error.
			c.met.catchupFallback.Inc()
			for _, u := range fetched {
				if !c.sc.VerifyUpdate(c.spub, u) {
					return nil, fmt.Errorf("%w (label %s)", ErrBadUpdate, u.Label)
				}
			}
			return nil, ErrBadUpdate // all pass individually?! treat as failure
		}
		c.met.verifyNS.Since(start)
	}

	// Cache what was just verified (the cache may be disabled, so the
	// results are assembled from byLabel directly).
	for _, u := range fetched {
		c.store(u)
		byLabel[u.Label] = u
	}
	out := make([]core.KeyUpdate, 0, len(byLabel))
	seen := make(map[string]bool, len(byLabel))
	for _, label := range labels {
		if u, ok := byLabel[label]; ok && !seen[label] {
			out = append(out, u)
			seen[label] = true
		}
	}
	if partial != nil {
		c.met.catchupDegraded.Inc()
		return out, partial
	}
	return out, nil
}

package timeserver

import (
	"context"
	"fmt"
	"net/http"

	"timedrelease/internal/bls"
	"timedrelease/internal/core"
)

// CatchUp fetches the updates for many labels (e.g. every epoch missed
// while offline) and verifies them in ONE batched pairing equation
// instead of one per update — the receiver-side complement of the
// archive the paper prescribes for missed broadcasts (§3). Already-
// cached labels are served locally; on batch failure it falls back to
// per-update verification so the offending update is identified in the
// error. All verified updates are cached.
func (c *Client) CatchUp(ctx context.Context, labels []string) ([]core.KeyUpdate, error) {
	out := make([]core.KeyUpdate, len(labels))

	// Partition into cached and to-fetch.
	var missing []int
	c.mu.RLock()
	for i, label := range labels {
		if u, ok := c.cache[label]; ok {
			out[i] = u
		} else {
			missing = append(missing, i)
		}
	}
	c.mu.RUnlock()
	if len(missing) == 0 {
		return out, nil
	}

	// Fetch the missing ones (unverified for now).
	fetched := make([]core.KeyUpdate, 0, len(missing))
	for _, i := range missing {
		label := labels[i]
		body, status, err := c.get(ctx, "/v1/update/"+label)
		if err != nil {
			return nil, err
		}
		if status == http.StatusNotFound {
			return nil, fmt.Errorf("%w: %s", ErrNotYetPublished, label)
		}
		if status != http.StatusOK {
			return nil, fmt.Errorf("timeserver: unexpected status %d for %s", status, label)
		}
		u, err := c.codec.UnmarshalKeyUpdate(body)
		if err != nil {
			return nil, err
		}
		if u.Label != label {
			return nil, fmt.Errorf("timeserver: server returned update for %q, asked for %q", u.Label, label)
		}
		fetched = append(fetched, u)
	}

	// Batch-verify everything fetched with one pairing equation, over the
	// Miller-loop schedules precomputed for the pinned server key.
	msgs := make([][]byte, len(fetched))
	sigs := make([]bls.Signature, len(fetched))
	for i, u := range fetched {
		msgs[i] = []byte(u.Label)
		sigs[i] = bls.Signature{Point: u.Point}
	}
	ok, err := c.sc.PreparedServerKey(c.spub).VerifyBatch(c.sc.Set, core.TimeDomain, msgs, sigs, nil)
	if err != nil {
		return nil, err
	}
	if !ok {
		// Locate the offender for a useful error.
		for _, u := range fetched {
			if !c.sc.VerifyUpdate(c.spub, u) {
				return nil, fmt.Errorf("%w (label %s)", ErrBadUpdate, u.Label)
			}
		}
		return nil, ErrBadUpdate // all pass individually?! treat as failure
	}

	// Cache and fill results.
	c.mu.Lock()
	for _, u := range fetched {
		c.cache[u.Label] = u
	}
	c.mu.Unlock()
	for _, i := range missing {
		c.mu.RLock()
		out[i] = c.cache[labels[i]]
		c.mu.RUnlock()
	}
	return out, nil
}

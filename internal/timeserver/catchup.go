package timeserver

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"time"

	"timedrelease/internal/archive"
	"timedrelease/internal/core"
)

// PartialError reports a degraded catch-up: some labels produced
// verified updates, others could not be fetched. The verified part has
// already been returned — a receiver can decrypt everything whose
// release it now holds and re-request the rest later — so this is an
// error about completeness, never about integrity (an update that
// fails verification is ErrBadUpdate, wholesale).
type PartialError struct {
	// Missing lists the labels with no verified update, in request
	// order.
	Missing []string
	// Causes maps each missing label to why it is missing (e.g.
	// ErrNotYetPublished, or the transport error that survived the
	// retry policy).
	Causes map[string]error
}

// Error summarises the damage without flooding: the count plus the
// first missing label and its cause.
func (e *PartialError) Error() string {
	if len(e.Missing) == 0 {
		return "timeserver: degraded catch-up"
	}
	first := e.Missing[0]
	return fmt.Sprintf("timeserver: degraded catch-up: %d label(s) missing (first: %s: %v)",
		len(e.Missing), first, e.Causes[first])
}

// Unwrap exposes the per-label causes so errors.Is sees through the
// partial error (e.g. errors.Is(err, ErrNotYetPublished) holds when
// any missing label is simply not released yet).
func (e *PartialError) Unwrap() []error {
	out := make([]error, 0, len(e.Causes))
	for _, err := range e.Causes {
		out = append(out, err)
	}
	return out
}

const (
	// catchupRangeMin is the smallest number of uncached labels worth a
	// range request; below it per-label fetches cost the same number of
	// round trips anyway.
	catchupRangeMin = 2
	// catchupRangeLimit is the per-request page size asked of
	// /v1/catchup (the server caps at its own maximum regardless).
	catchupRangeLimit = 65536
	// catchupBodyLimit caps one range response body: 64k updates on the
	// widest supported field stay well under this.
	catchupBodyLimit = 64 << 20
	// catchupMaxPages bounds paging through a truncated range so a
	// hostile server cannot keep a client looping.
	catchupMaxPages = 64
)

// CatchUp fetches the updates for many labels (e.g. every epoch missed
// while offline) and verifies them with O(1) pairing work: the labels
// not already in the verified cache are requested as ONE /v1/catchup
// range carrying one aggregate signature, checked by a single pairing
// product (core.VerifyUpdateAggregate) plus a Merkle completeness
// commitment. When the server predates the range endpoint, or a range
// response fails any check, CatchUp falls back to the per-label fetch +
// blinded batch verification it has always done — the batch path is the
// authoritative one, and an update that fails it aborts the call with
// ErrBadUpdate naming the offender. All verified updates are cached.
//
// CatchUp degrades instead of failing wholesale: a label whose fetch
// fails (not yet published, or a transport error that survived the
// retry policy) is skipped, and the verified updates for every OTHER
// label are still returned — in request order — alongside a
// *PartialError naming the missing labels. err == nil means every
// label was returned. Integrity failures are different: any update
// that fails verification poisons nothing but aborts the call with
// ErrBadUpdate — degraded mode never trades away the pinned-key check.
// ctx cancellation also aborts wholesale.
func (c *Client) CatchUp(ctx context.Context, labels []string) ([]core.KeyUpdate, error) {
	byLabel := make(map[string]core.KeyUpdate, len(labels))

	// Partition into cached and to-fetch, deduplicating the fetch list
	// (the same uncached label twice must not cost two fetches).
	var missing []string
	requested := make(map[string]bool, len(labels))
	for _, label := range labels {
		if requested[label] {
			continue
		}
		requested[label] = true
		if u, ok := c.cached(label); ok {
			byLabel[label] = u
		} else {
			missing = append(missing, label)
		}
	}

	var partial *PartialError
	skip := func(label string, cause error) {
		if partial == nil {
			partial = &PartialError{Causes: make(map[string]error)}
		}
		partial.Missing = append(partial.Missing, label)
		partial.Causes[label] = cause
	}

	// Aggregate fast path: one range request over [min, max] of the
	// uncached labels — cached labels never widen the range — verified
	// with a single pairing product. A label the (verified) range does
	// not contain is not published; that is the same availability trust
	// as a per-label 404, and costs zero extra round trips.
	if !c.noAggregate && len(missing) >= catchupRangeMin {
		if got, complete := c.rangeCatchUp(ctx, missing); got != nil {
			rest := make([]string, 0, len(missing))
			for _, label := range missing {
				switch u, ok := got[label]; {
				case ok:
					byLabel[label] = u
				case complete:
					skip(label, ErrNotYetPublished)
				default:
					rest = append(rest, label) // truncated page: undetermined
				}
			}
			missing = rest
		}
	}

	// Per-label path: everything the range mode did not settle (all of
	// it, when the fast path was skipped or fell back). Fetch what we
	// can, remembering what we cannot.
	fetched := make([]core.KeyUpdate, 0, len(missing))
	for _, label := range missing {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		body, status, err := c.get(ctx, "/v1/update/"+label)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return nil, err
			}
			skip(label, err)
			continue
		case status == http.StatusNotFound:
			skip(label, ErrNotYetPublished)
			continue
		case status != http.StatusOK:
			skip(label, fmt.Errorf("timeserver: unexpected status %d", status))
			continue
		}
		u, err := c.codec.UnmarshalKeyUpdate(body)
		if err != nil {
			skip(label, err)
			continue
		}
		if u.Label != label {
			skip(label, fmt.Errorf("timeserver: server returned update for %q", u.Label))
			continue
		}
		fetched = append(fetched, u)
	}

	// Batch-verify everything fetched with one blinded pairing equation,
	// over the Miller-loop schedules precomputed for the pinned server
	// key.
	if len(fetched) > 0 {
		c.met.catchupBatches.Inc()
		start := time.Now()
		ok, err := c.sc.VerifyUpdateBatch(c.spub, fetched)
		if err != nil {
			return nil, err
		}
		if !ok {
			// Locate the offender for a useful error.
			c.met.catchupFallback.Inc()
			for _, u := range fetched {
				if !c.sc.VerifyUpdate(c.spub, u) {
					return nil, fmt.Errorf("%w (label %s)", ErrBadUpdate, u.Label)
				}
			}
			return nil, ErrBadUpdate // all pass individually?! treat as failure
		}
		c.met.verifyNS.Since(start)
	}

	// Cache what was just verified (the cache may be disabled, so the
	// results are assembled from byLabel directly).
	for _, u := range fetched {
		c.store(u)
		byLabel[u.Label] = u
	}
	out := make([]core.KeyUpdate, 0, len(byLabel))
	seen := make(map[string]bool, len(byLabel))
	for _, label := range labels {
		if u, ok := byLabel[label]; ok && !seen[label] {
			out = append(out, u)
			seen[label] = true
		}
	}
	if partial != nil {
		c.met.catchupDegraded.Inc()
		return out, partial
	}
	return out, nil
}

// rangeCatchUp runs the aggregate fast path over the uncached labels:
// it requests [min, max] as /v1/catchup pages and verifies each page's
// aggregate signature with one pairing product, plus the Merkle
// commitment over the delivered payloads. It returns every verified
// update by label, with complete=true when the whole range was covered
// (so an absent label is an unpublished label). A nil map means the
// fast path is unavailable (old server, transport failure) or a page
// failed verification — the caller falls back to the authoritative
// per-label batch path, which can still localise an offender.
func (c *Client) rangeCatchUp(ctx context.Context, missing []string) (map[string]core.KeyUpdate, bool) {
	lo, hi := missing[0], missing[0]
	for _, l := range missing[1:] {
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	got := make(map[string]core.KeyUpdate, len(missing))
	for page := 0; page < catchupMaxPages; page++ {
		body, status, err := c.getLimited(ctx,
			"/v1/catchup?from="+url.QueryEscape(lo)+"&to="+url.QueryEscape(hi)+
				"&limit="+fmt.Sprint(catchupRangeLimit), catchupBodyLimit)
		if err != nil || status != http.StatusOK {
			// Old server (404), proxy trouble, transport failure: not an
			// integrity event, just no fast path today.
			if page == 0 {
				return nil, false
			}
			return got, false // keep the pages that did verify
		}
		start := time.Now()
		resp, err := c.codec.UnmarshalCatchUpResponse(body)
		if err != nil {
			c.met.catchupFallback.Inc()
			return nil, false
		}
		// The response must stay inside the requested range (decode
		// already guarantees ascending order within it).
		if n := len(resp.Updates); n > 0 && (resp.Updates[0].Label < lo || resp.Updates[n-1].Label > hi) {
			c.met.catchupFallback.Inc()
			return nil, false
		}
		// Completeness commitment: the root must match the delivered
		// list exactly, then ONE pairing product verifies the aggregate
		// signature over every label in it.
		leaves := make([][32]byte, len(resp.Updates))
		for i, u := range resp.Updates {
			leaves[i] = archive.LeafHash(c.codec.MarshalKeyUpdate(u))
		}
		if archive.MerkleRoot(leaves) != resp.Root ||
			!c.sc.VerifyUpdateAggregate(c.spub, resp.Updates, resp.Aggregate) {
			c.met.catchupFallback.Inc()
			return nil, false
		}
		c.met.verifyNS.Since(start)
		c.met.catchupAggregate.Inc()
		for _, u := range resp.Updates {
			c.store(u)
			got[u.Label] = u
		}
		if resp.Total <= len(resp.Updates) || len(resp.Updates) == 0 {
			return got, true // whole range covered
		}
		// Truncated page (oldest first): resume just past the last
		// delivered label. "\x00" is the lexicographic successor step.
		lo = resp.Updates[len(resp.Updates)-1].Label + "\x00"
	}
	return got, false
}

package timeserver

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"time"

	"timedrelease/internal/archive"
	"timedrelease/internal/core"
)

// PartialError reports a degraded catch-up: some labels produced
// verified updates, others could not be fetched. The verified part has
// already been returned — a receiver can decrypt everything whose
// release it now holds and re-request the rest later — so this is an
// error about completeness, never about integrity (an update that
// fails verification is ErrBadUpdate, wholesale).
type PartialError struct {
	// Missing lists the labels with no verified update, in request
	// order.
	Missing []string
	// Causes maps each missing label to why it is missing (e.g.
	// ErrNotYetPublished, or the transport error that survived the
	// retry policy).
	Causes map[string]error
}

// Error summarises the damage without flooding: the count plus the
// first missing label and its cause.
func (e *PartialError) Error() string {
	if len(e.Missing) == 0 {
		return "timeserver: degraded catch-up"
	}
	first := e.Missing[0]
	return fmt.Sprintf("timeserver: degraded catch-up: %d label(s) missing (first: %s: %v)",
		len(e.Missing), first, e.Causes[first])
}

// Unwrap exposes the per-label causes so errors.Is sees through the
// partial error (e.g. errors.Is(err, ErrNotYetPublished) holds when
// any missing label is simply not released yet).
func (e *PartialError) Unwrap() []error {
	out := make([]error, 0, len(e.Causes))
	for _, err := range e.Causes {
		out = append(out, err)
	}
	return out
}

const (
	// catchupRangeMin is the smallest number of uncached labels worth a
	// range request; below it per-label fetches cost the same number of
	// round trips anyway.
	catchupRangeMin = 2
	// catchupRangeLimit is the per-request page size asked of
	// /v1/catchup (the server caps at its own maximum regardless).
	catchupRangeLimit = 65536
	// catchupBodyLimit caps one range response body: 64k updates on the
	// widest supported field stay well under this.
	catchupBodyLimit = 64 << 20
	// catchupMaxPages bounds paging through a truncated range so a
	// hostile server cannot keep a client looping.
	catchupMaxPages = 64
	// catchupDensityFactor/Slack bound how much of the archive a range
	// request may pull in beyond the labels actually wanted: each page's
	// limit is factor·wanted+slack, and paging stops (leaving the rest
	// to per-label fetches) once the server's Total shows the remaining
	// window holds more than that many records. Without the gate, two
	// sparse labels far apart would make the client download and verify
	// every archived update in between.
	catchupDensityFactor = 4
	catchupDensitySlack  = 64
)

// CatchUp fetches the updates for many labels (e.g. every epoch missed
// while offline) and verifies them with O(1) pairing work: the labels
// not already in the verified cache are requested as ONE /v1/catchup
// range and each page is checked with two pairing products, however
// large it is — the aggregate signature equation
// (core.VerifyUpdateAggregate) plus a Merkle completeness commitment as
// a cheap pre-filter, then the blinded batch equation
// (core.VerifyUpdateBatch) as the admission check, because the
// aggregate equation binds only the SUM of the points and compensating
// tampers cancel in it. Nothing is returned or cached on the strength
// of the aggregate equation alone. When the server predates the range
// endpoint, or a range response fails any check, CatchUp falls back to
// the per-label fetch + blinded batch verification it has always done —
// an update that fails it aborts the call with ErrBadUpdate naming the
// offender. All verified updates are cached.
//
// CatchUp degrades instead of failing wholesale: a label whose fetch
// fails (not yet published, or a transport error that survived the
// retry policy) is skipped, and the verified updates for every OTHER
// label are still returned — in request order — alongside a
// *PartialError naming the missing labels. err == nil means every
// label was returned. Integrity failures are different: any update
// that fails verification poisons nothing but aborts the call with
// ErrBadUpdate — degraded mode never trades away the pinned-key check.
// ctx cancellation also aborts wholesale.
func (c *Client) CatchUp(ctx context.Context, labels []string) ([]core.KeyUpdate, error) {
	byLabel := make(map[string]core.KeyUpdate, len(labels))

	// Partition into cached and to-fetch, deduplicating the fetch list
	// (the same uncached label twice must not cost two fetches).
	var missing []string
	requested := make(map[string]bool, len(labels))
	for _, label := range labels {
		if requested[label] {
			continue
		}
		requested[label] = true
		if u, ok := c.cached(label); ok {
			byLabel[label] = u
		} else {
			missing = append(missing, label)
		}
	}

	var partial *PartialError
	skip := func(label string, cause error) {
		if partial == nil {
			partial = &PartialError{Causes: make(map[string]error)}
		}
		partial.Missing = append(partial.Missing, label)
		partial.Causes[label] = cause
	}

	// Aggregate fast path: one range request over [min, max] of the
	// uncached labels — cached labels never widen the range — verified
	// with two pairing products per page. A label a fully-covered range
	// does not contain is not published; that is the same availability
	// trust as a per-label 404, and costs zero extra round trips.
	if !c.noAggregate && len(missing) >= catchupRangeMin {
		if got, complete := c.rangeCatchUp(ctx, missing); got != nil {
			rest := make([]string, 0, len(missing))
			for _, label := range missing {
				switch u, ok := got[label]; {
				case ok:
					byLabel[label] = u
				case complete:
					skip(label, ErrNotYetPublished)
				default:
					rest = append(rest, label) // truncated page: undetermined
				}
			}
			missing = rest
		}
	}

	// Per-label path: everything the range mode did not settle (all of
	// it, when the fast path was skipped or fell back). Fetch what we
	// can, remembering what we cannot.
	fetched := make([]core.KeyUpdate, 0, len(missing))
	for _, label := range missing {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		body, status, err := c.get(ctx, "/v1/update/"+label)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return nil, err
			}
			skip(label, err)
			continue
		case status == http.StatusNotFound:
			skip(label, ErrNotYetPublished)
			continue
		case status != http.StatusOK:
			skip(label, fmt.Errorf("timeserver: unexpected status %d", status))
			continue
		}
		u, err := c.codec.UnmarshalKeyUpdate(body)
		if err != nil {
			skip(label, err)
			continue
		}
		if u.Label != label {
			skip(label, fmt.Errorf("timeserver: server returned update for %q", u.Label))
			continue
		}
		fetched = append(fetched, u)
	}

	// Batch-verify everything fetched with one blinded pairing equation,
	// over the Miller-loop schedules precomputed for the pinned server
	// key.
	if len(fetched) > 0 {
		c.met.catchupBatches.Inc()
		start := time.Now()
		ok, err := c.sc.VerifyUpdateBatch(c.spub, fetched)
		if err != nil {
			return nil, err
		}
		if !ok {
			// Locate the offender for a useful error.
			c.met.catchupFallback.Inc()
			for _, u := range fetched {
				if !c.sc.VerifyUpdate(c.spub, u) {
					return nil, fmt.Errorf("%w (label %s)", ErrBadUpdate, u.Label)
				}
			}
			return nil, ErrBadUpdate // all pass individually?! treat as failure
		}
		c.met.verifyNS.Since(start)
	}

	// Cache what was just verified (the cache may be disabled, so the
	// results are assembled from byLabel directly).
	for _, u := range fetched {
		c.store(u)
		byLabel[u.Label] = u
	}
	out := make([]core.KeyUpdate, 0, len(byLabel))
	seen := make(map[string]bool, len(byLabel))
	for _, label := range labels {
		if u, ok := byLabel[label]; ok && !seen[label] {
			out = append(out, u)
			seen[label] = true
		}
	}
	if partial != nil {
		c.met.catchupDegraded.Inc()
		return out, partial
	}
	return out, nil
}

// rangeCatchUp runs the aggregate fast path over the uncached labels:
// it pages /v1/catchup windows that always start at the next label
// still wanted, and verifies each page with two pairing products — the
// aggregate signature plus the Merkle commitment over the delivered
// payloads as a cheap pre-filter (n point additions), then the blinded
// batch equation as the admission check, whose per-update random
// blinders catch the compensating tampers the aggregate sum cannot
// (TestAggregateSumBindingCaveat). No update reaches the verified
// cache, or the caller, without passing both. It returns every
// verified update by label, with complete=true when every wanted label
// was either delivered or covered by a verified page (so an absent
// label is an unpublished label). A nil map means the fast path is
// unavailable (old server, transport failure) or the first page failed
// a check — the caller falls back to the per-label batch path, which
// can still localise an offender. Page limits are kept proportional to
// the labels still wanted and paging stops once the server's Total
// shows the remaining window is mostly records nobody asked for, so a
// sparse label set never downloads the archive span between them.
func (c *Client) rangeCatchUp(ctx context.Context, missing []string) (map[string]core.KeyUpdate, bool) {
	wanted := make([]string, len(missing))
	copy(wanted, missing)
	sort.Strings(wanted)
	hi := wanted[len(wanted)-1]
	next := 0 // first wanted label not yet delivered or covered
	got := make(map[string]core.KeyUpdate, len(missing))
	fail := func() (map[string]core.KeyUpdate, bool) {
		c.met.catchupFallback.Inc()
		if len(got) == 0 {
			return nil, false
		}
		return got, false // keep the pages that did verify
	}
	for page := 0; page < catchupMaxPages && next < len(wanted); page++ {
		lo, remaining := wanted[next], len(wanted)-next
		limit := min(catchupRangeLimit, catchupDensityFactor*remaining+catchupDensitySlack)
		body, status, err := c.getGated(ctx,
			"/v1/catchup?from="+url.QueryEscape(lo)+"&to="+url.QueryEscape(hi)+
				"&limit="+fmt.Sprint(limit), catchupBodyLimit)
		if err != nil || status != http.StatusOK {
			// Old server (404), proxy trouble, transport failure, or a
			// token-gated server and no wallet (401 → the per-label
			// fallback path still serves, it is deliberately ungated):
			// not an integrity event, just no fast path today.
			if page == 0 {
				return nil, false
			}
			return got, false
		}
		start := time.Now()
		resp, err := c.codec.UnmarshalCatchUpResponse(body)
		if err != nil {
			return fail()
		}
		n := len(resp.Updates)
		// The response must stay inside the requested window (decode
		// already guarantees ascending order within it).
		if n > 0 && (resp.Updates[0].Label < lo || resp.Updates[n-1].Label > hi) {
			return fail()
		}
		// A page claiming the window holds records while delivering none
		// is inconsistent — complete=true here would misreport the
		// remaining labels as unpublished on the server's word alone.
		if n == 0 && resp.Total > 0 {
			return fail()
		}
		// Pre-filter: the completeness commitment must match the
		// delivered list exactly and one pairing product must verify the
		// aggregate signature over every label in it.
		leaves := make([][32]byte, n)
		for i, u := range resp.Updates {
			leaves[i] = archive.LeafHash(c.codec.MarshalKeyUpdate(u))
		}
		if archive.MerkleRoot(leaves) != resp.Root ||
			!c.sc.VerifyUpdateAggregate(c.spub, resp.Updates, resp.Aggregate) {
			return fail()
		}
		// Admission: the aggregate equation binds only the SUM of the
		// points — compensating tampers cancel in it — so the blinded
		// batch equation (one more pairing product, per-update binding)
		// gates what the cache and the caller ever see.
		if ok, err := c.sc.VerifyUpdateBatch(c.spub, resp.Updates); err != nil || !ok {
			return fail()
		}
		c.met.verifyNS.Since(start)
		c.met.catchupAggregate.Inc()
		for _, u := range resp.Updates {
			c.store(u)
			got[u.Label] = u
		}
		if n > 0 {
			// Every wanted label up to the last delivered one is settled:
			// the page carried ALL archived records in [lo, last], so a
			// wanted label absent from it is not archived.
			last := resp.Updates[n-1].Label
			for next < len(wanted) && wanted[next] <= last {
				next++
			}
		}
		switch {
		case resp.Total <= n:
			return got, true // whole window delivered
		case next >= len(wanted):
			return got, true // every wanted label delivered or covered
		case resp.Total-n > catchupDensityFactor*(len(wanted)-next)+catchupDensitySlack:
			// Sparse: the rest of the window is mostly records nobody
			// asked for — cheaper to finish per-label.
			return got, false
		}
	}
	return got, false
}

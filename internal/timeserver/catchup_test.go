package timeserver

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestCatchUpFetchesAndVerifiesMany(t *testing.T) {
	e := newEnv(t)
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	// The receiver was offline for 10 epochs; the server backfills them.
	e.clock.Advance(10 * time.Minute)
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	labels, err := e.client.Labels(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) < 10 {
		t.Fatalf("expected at least 10 labels, got %d", len(labels))
	}

	ups, err := e.client.CatchUp(context.Background(), labels)
	if err != nil {
		t.Fatalf("CatchUp: %v", err)
	}
	if len(ups) != len(labels) {
		t.Fatalf("got %d updates for %d labels", len(ups), len(labels))
	}
	for i, u := range ups {
		if u.Label != labels[i] {
			t.Fatalf("update %d is for %q, want %q", i, u.Label, labels[i])
		}
		if !e.sc.VerifyUpdate(e.key.Pub, u) {
			t.Fatalf("update %s invalid", u.Label)
		}
	}
	if e.client.CachedLen() != len(labels) {
		t.Fatalf("cache holds %d, want %d", e.client.CachedLen(), len(labels))
	}

	// Second catch-up over the same range is served entirely from cache.
	before := e.server.Served()
	if _, err := e.client.CatchUp(context.Background(), labels); err != nil {
		t.Fatal(err)
	}
	if e.server.Served() != before {
		t.Fatal("cached catch-up must not hit the server")
	}
}

func TestCatchUpRejectsForgedUpdateAndNamesIt(t *testing.T) {
	e := newEnv(t)
	impostorKey, err := e.sc.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	impostor := NewServer(e.set, impostorKey, e.sched, WithClock(e.clock.Now))
	if _, err := impostor.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	e.clock.Advance(3 * time.Minute)
	if _, err := impostor.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	ts := newTestHTTP(t, impostor)
	c := NewClient(ts.URL, e.set, e.key.Pub, WithHTTPClient(ts.Client())) // pins the REAL key

	labels, err := c.Labels(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.CatchUp(context.Background(), labels)
	if !errors.Is(err, ErrBadUpdate) {
		t.Fatalf("err=%v, want ErrBadUpdate", err)
	}
}

func TestCatchUpUnpublishedLabel(t *testing.T) {
	e := newEnv(t)
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	labels := []string{e.sched.Label(e.clock.Now()), e.sched.Next(e.clock.Now())}
	if _, err := e.client.CatchUp(context.Background(), labels); !errors.Is(err, ErrNotYetPublished) {
		t.Fatalf("err=%v, want ErrNotYetPublished", err)
	}
}

func TestCatchUpEmpty(t *testing.T) {
	e := newEnv(t)
	ups, err := e.client.CatchUp(context.Background(), nil)
	if err != nil || len(ups) != 0 {
		t.Fatalf("empty catch-up: %v %v", ups, err)
	}
}

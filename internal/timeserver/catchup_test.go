package timeserver

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"timedrelease/internal/obs"
)

func TestCatchUpFetchesAndVerifiesMany(t *testing.T) {
	e := newEnv(t)
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	// The receiver was offline for 10 epochs; the server backfills them.
	e.clock.Advance(10 * time.Minute)
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	labels, err := e.client.Labels(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) < 10 {
		t.Fatalf("expected at least 10 labels, got %d", len(labels))
	}

	ups, err := e.client.CatchUp(context.Background(), labels)
	if err != nil {
		t.Fatalf("CatchUp: %v", err)
	}
	if len(ups) != len(labels) {
		t.Fatalf("got %d updates for %d labels", len(ups), len(labels))
	}
	for i, u := range ups {
		if u.Label != labels[i] {
			t.Fatalf("update %d is for %q, want %q", i, u.Label, labels[i])
		}
		if !e.sc.VerifyUpdate(e.key.Pub, u) {
			t.Fatalf("update %s invalid", u.Label)
		}
	}
	if e.client.CachedLen() != len(labels) {
		t.Fatalf("cache holds %d, want %d", e.client.CachedLen(), len(labels))
	}

	// Second catch-up over the same range is served entirely from cache.
	before := e.server.Served()
	if _, err := e.client.CatchUp(context.Background(), labels); err != nil {
		t.Fatal(err)
	}
	if e.server.Served() != before {
		t.Fatal("cached catch-up must not hit the server")
	}
}

func TestCatchUpRejectsForgedUpdateAndNamesIt(t *testing.T) {
	e := newEnv(t)
	impostorKey, err := e.sc.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	impostor := NewServer(e.set, impostorKey, e.sched, WithClock(e.clock.Now))
	if _, err := impostor.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	e.clock.Advance(3 * time.Minute)
	if _, err := impostor.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	ts := newTestHTTP(t, impostor)
	c := NewClient(ts.URL, e.set, e.key.Pub, WithHTTPClient(ts.Client())) // pins the REAL key

	labels, err := c.Labels(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.CatchUp(context.Background(), labels)
	if !errors.Is(err, ErrBadUpdate) {
		t.Fatalf("err=%v, want ErrBadUpdate", err)
	}
}

func TestCatchUpCorruptedBatchNamesOffendingLabel(t *testing.T) {
	// Fault injection on ONE update of an otherwise honest batch: a
	// proxy serves, for exactly one label, a well-formed update carrying
	// that label but a point signed by a different key. The batched
	// pairing equation must fail, and the per-update fallback must name
	// the corrupted label — not just "a batch failed".
	e := newEnv(t)
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	e.clock.Advance(7 * time.Minute)
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	labels, err := e.client.Labels(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) < 4 {
		t.Fatalf("need at least 4 labels, got %d", len(labels))
	}
	bad := labels[len(labels)/2]

	impostorKey, err := e.sc.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	forged := e.sc.IssueUpdate(impostorKey, bad) // right label, wrong point
	forgedBody := e.server.codec.MarshalKeyUpdate(forged)

	real := e.server.Handler()
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/v1/update/"+bad:
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(forgedBody)
		case r.URL.Path == "/v1/catchup":
			// A pre-range server: the client must fall back to the
			// per-label path this test is about.
			http.NotFound(w, r)
		default:
			real.ServeHTTP(w, r)
		}
	}))
	defer proxy.Close()

	reg := obs.NewRegistry()
	c := NewClient(proxy.URL, e.set, e.key.Pub,
		WithHTTPClient(proxy.Client()), WithClientMetrics(reg))
	_, err = c.CatchUp(context.Background(), labels)
	if !errors.Is(err, ErrBadUpdate) {
		t.Fatalf("err=%v, want ErrBadUpdate", err)
	}
	if !strings.Contains(err.Error(), bad) {
		t.Fatalf("error %q does not name the corrupted label %q", err, bad)
	}
	for _, l := range labels {
		if l != bad && strings.Contains(err.Error(), l) {
			t.Fatalf("error %q names an innocent label %q", err, l)
		}
	}
	// Nothing from the poisoned batch may have entered the cache.
	if n := c.CachedLen(); n != 0 {
		t.Fatalf("poisoned batch left %d cached updates", n)
	}
	s := reg.Snapshot()
	if s.Counters["client.catchup_fallback"] != 1 {
		t.Fatalf("catchup_fallback = %d, want 1", s.Counters["client.catchup_fallback"])
	}

	// The same batch minus the corrupted label must verify cleanly.
	clean := make([]string, 0, len(labels)-1)
	for _, l := range labels {
		if l != bad {
			clean = append(clean, l)
		}
	}
	if _, err := c.CatchUp(context.Background(), clean); err != nil {
		t.Fatalf("clean batch after fault: %v", err)
	}
}

func TestCatchUpWithoutCacheFillsResults(t *testing.T) {
	// WithoutCache must still return every update in order — the fill
	// path cannot rely on reading the cache back.
	e := newEnv(t)
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	e.clock.Advance(4 * time.Minute)
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	labels, err := e.client.Labels(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(e.ts.URL, e.set, e.key.Pub, WithHTTPClient(e.ts.Client()), WithoutCache())
	ups, err := c.CatchUp(context.Background(), labels)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range ups {
		if u.Label != labels[i] {
			t.Fatalf("update %d is for %q, want %q", i, u.Label, labels[i])
		}
		if !e.sc.VerifyUpdate(e.key.Pub, u) {
			t.Fatalf("update %s invalid", u.Label)
		}
	}
	if c.CachedLen() != 0 {
		t.Fatal("WithoutCache client must not cache")
	}
	// A second pass hits the server again (no cache to serve from).
	before := e.server.Served()
	if _, err := c.CatchUp(context.Background(), labels); err != nil {
		t.Fatal(err)
	}
	if e.server.Served() == before {
		t.Fatal("WithoutCache catch-up must hit the server")
	}
}

func TestCatchUpUnpublishedLabel(t *testing.T) {
	e := newEnv(t)
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	labels := []string{e.sched.Label(e.clock.Now()), e.sched.Next(e.clock.Now())}
	if _, err := e.client.CatchUp(context.Background(), labels); !errors.Is(err, ErrNotYetPublished) {
		t.Fatalf("err=%v, want ErrNotYetPublished", err)
	}
}

func TestCatchUpEmpty(t *testing.T) {
	e := newEnv(t)
	ups, err := e.client.CatchUp(context.Background(), nil)
	if err != nil || len(ups) != 0 {
		t.Fatalf("empty catch-up: %v %v", ups, err)
	}
}

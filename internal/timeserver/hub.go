package timeserver

import (
	"sync"
	"sync/atomic"
	"time"

	"timedrelease/internal/obs"
)

// hub is the coalesced broadcast layer between the publish path and the
// request handlers. One publish hands the already-encoded update bytes
// to every parked subscriber — stream connections and one-shot
// long-poll waiters alike — in a single sweep over a sharded registry,
// so the cost of a publish is one wire encode plus one registry pass
// regardless of how many connections are parked. Compare the old
// notifier, which woke every waiter blindly and had each one re-read
// the archive and re-encode the update for itself.
//
// The registry follows the pointCache design (docs/PERFORMANCE.md):
// each shard publishes an immutable map through an atomic.Pointer, so
// the publish sweep takes no locks at all; subscribe/unsubscribe take a
// short per-shard mutex to copy-on-write the map. Subscriptions carry
// no identity — a subscriber is an anonymous channel and a label
// filter, consistent with the server's no-user-state property.
type hub struct {
	shards    [hubShardCount]hubShard
	nextID    atomic.Uint64
	drained   chan struct{} // closed by drain(): every handler unparks terminally
	drainOnce sync.Once

	// Publish-path accounting, maintained unconditionally (the
	// one-encode-one-pass contract is pinned by tests against these).
	encodes   atomic.Int64 // wire encodes performed for broadcast
	passes    atomic.Int64 // registry sweeps performed
	delivered atomic.Int64 // messages enqueued to subscribers
	sheds     atomic.Int64 // slow subscribers dropped to catch-up

	// Observability (nil without instrument; obs types no-op on nil).
	gSubs      *obs.Gauge     // timeserver.subscribers
	gQueue     *obs.Gauge     // timeserver.stream_queue_depth (approximate under churn)
	cDelivered *obs.Counter   // timeserver.fanout_deliveries
	cSheds     *obs.Counter   // timeserver.stream_sheds
	hFanout    *obs.Histogram // timeserver.fanout_ns — one full registry pass
}

const hubShardCount = 16 // power of two; subscriber IDs spread uniformly

// streamQueueCap bounds each stream subscriber's send queue. A
// subscriber that falls this many updates behind is shed (dropped to
// catch-up) rather than allowed to block or bloat the publish path. A
// var, not a const, so tests can shrink it.
var streamQueueCap = 64

// streamMsg is one published update, encoded once for everybody. idx is
// the label's schedule index: stream handlers order events by it, never
// by the label string — RFC3339 labels with fractional seconds
// ("…T12:00:00.5Z" vs "…T12:00:01Z") do not sort chronologically as
// strings.
type streamMsg struct {
	idx   int64
	label string
	body  []byte
}

// subscriber is one parked connection. label == "" subscribes to every
// future update (a /v1/stream connection); otherwise exactly that label
// (a one-shot /v1/wait parker, queue capacity 1).
type subscriber struct {
	id       uint64
	label    string
	ch       chan streamMsg
	shed     chan struct{} // closed when the hub drops this subscriber
	shedOnce sync.Once
}

func (s *subscriber) drop() { s.shedOnce.Do(func() { close(s.shed) }) }

type hubShard struct {
	mu   sync.Mutex
	subs atomic.Pointer[map[uint64]*subscriber]
}

func newHub() *hub {
	h := &hub{drained: make(chan struct{})}
	for i := range h.shards {
		empty := make(map[uint64]*subscriber)
		h.shards[i].subs.Store(&empty)
	}
	return h
}

// instrument binds the hub's metrics to r (see docs/OBSERVABILITY.md).
func (h *hub) instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	h.gSubs = r.Gauge("timeserver.subscribers")
	h.gQueue = r.Gauge("timeserver.stream_queue_depth")
	h.cDelivered = r.Counter("timeserver.fanout_deliveries")
	h.cSheds = r.Counter("timeserver.stream_sheds")
	h.hFanout = r.Histogram("timeserver.fanout_ns")
}

// subscribe registers a parked connection. label == "" receives every
// future update; a non-empty label receives only that update (capacity
// 1 — an epoch's update is published at most once).
func (h *hub) subscribe(label string) *subscriber {
	capacity := streamQueueCap
	if label != "" {
		capacity = 1
	}
	sub := &subscriber{
		id:    h.nextID.Add(1),
		label: label,
		ch:    make(chan streamMsg, capacity),
		shed:  make(chan struct{}),
	}
	sh := &h.shards[sub.id%hubShardCount]
	sh.mu.Lock()
	old := *sh.subs.Load()
	next := make(map[uint64]*subscriber, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[sub.id] = sub
	sh.subs.Store(&next)
	sh.mu.Unlock()
	h.gSubs.Add(1)
	return sub
}

// unsubscribe removes a subscriber and settles its queue-depth
// accounting. A publish sweep racing with removal may still enqueue one
// message to the departed subscriber; the gauge is therefore
// approximate under churn (by at most one per in-flight sweep).
func (h *hub) unsubscribe(sub *subscriber) {
	sh := &h.shards[sub.id%hubShardCount]
	sh.mu.Lock()
	old := *sh.subs.Load()
	if _, ok := old[sub.id]; ok {
		next := make(map[uint64]*subscriber, len(old)-1)
		for k, v := range old {
			if k != sub.id {
				next[k] = v
			}
		}
		sh.subs.Store(&next)
		sh.mu.Unlock()
		h.gSubs.Add(-1)
	} else {
		sh.mu.Unlock()
	}
	for {
		select {
		case <-sub.ch:
			h.gQueue.Add(-1)
		default:
			return
		}
	}
}

// count returns the number of registered subscribers.
func (h *hub) count() int {
	n := 0
	for i := range h.shards {
		n += len(*h.shards[i].subs.Load())
	}
	return n
}

// publish fans the already-encoded update out to every matching
// subscriber in ONE lock-free pass. Enqueueing never blocks: a stream
// subscriber whose queue is full is shed (its handler sends a terminal
// comment and closes, and the client reconnects through catch-up); a
// one-shot waiter with a full queue already holds its answer.
func (h *hub) publish(idx int64, label string, body []byte) {
	start := time.Now()
	h.passes.Add(1)
	msg := streamMsg{idx: idx, label: label, body: body}
	var delivered, sheds int64
	for i := range h.shards {
		for _, sub := range *h.shards[i].subs.Load() {
			if sub.label != "" && sub.label != label {
				continue
			}
			select {
			case sub.ch <- msg:
				delivered++
				h.gQueue.Add(1)
			default:
				if sub.label == "" {
					sub.drop()
					sheds++
				}
			}
		}
	}
	h.delivered.Add(delivered)
	h.sheds.Add(sheds)
	h.cDelivered.Add(delivered)
	h.cSheds.Add(sheds)
	h.hFanout.Since(start)
}

// drain unparks every current and future handler terminally: streams
// write a closing comment and end, one-shot waits answer 503. Used by
// Drain so graceful shutdown stays prompt with any number of
// subscribers attached.
func (h *hub) drain() {
	h.drainOnce.Do(func() { close(h.drained) })
}

// Package timeserver implements the paper's completely passive time
// server and a verifying client.
//
// The server's only job (§3) is to publish the time-bound key update
// I_T = s·H1(T) when instant T arrives, and to keep old updates publicly
// readable. Passivity is enforced structurally: the HTTP handler is
// built over a read-only view (public parameters, server public key,
// archive of already-published updates) and has no path to the signing
// key — a request can never cause an update to be created, so asking for
// a future label cannot leak it. The server keeps no per-user state and
// logs nothing about requesters, matching the paper's GPS analogy.
package timeserver

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"timedrelease/internal/archive"
	"timedrelease/internal/core"
	"timedrelease/internal/obs"
	"timedrelease/internal/parallel"
	"timedrelease/internal/params"
	"timedrelease/internal/timefmt"
	"timedrelease/internal/token"
	"timedrelease/internal/wire"
)

// Server signs and publishes time-bound key updates on a schedule.
type Server struct {
	sc    *core.Scheme
	key   *core.ServerKeyPair
	sched timefmt.Schedule
	arch  archive.Archive
	codec *wire.Codec
	clock func() time.Time

	published atomic.Int64 // updates published (for experiments)
	served    atomic.Int64 // HTTP requests served
	hub       *hub         // coalesced broadcast to streams and long-poll waiters
	draining  atomic.Bool  // shutting down: long-polls return immediately

	// Anonymous metered access (nil: tokens neither issued nor
	// required). The issuer holds a DEDICATED signing key — never the
	// timed-release key (checkTokenKeySeparation) — so passivity of
	// release is untouched: no request can still cause a key update.
	issuer *token.Issuer
	gate   *token.Verifier

	// Observability (nil without WithMetrics/WithLogger; obs types
	// no-op on nil). The registry never records anything about
	// requesters — counts and latencies only, matching the paper's
	// no-user-state server.
	reg        *obs.Registry
	log        *obs.Logger
	mPublished *obs.Counter
	mPublishNS *obs.Histogram
}

// Option configures a Server.
type Option func(*Server)

// WithArchive substitutes the update archive (default: in-memory).
func WithArchive(a archive.Archive) Option {
	return func(s *Server) { s.arch = a }
}

// WithClock substitutes the time source (tests and simulations).
func WithClock(clock func() time.Time) Option {
	return func(s *Server) { s.clock = clock }
}

// WithMetrics instruments the server (and its embedded core.Scheme and
// the shared parallel pool) against r: request counts and latencies
// per endpoint, archive hits/misses, publish counts and signing
// latencies. See docs/OBSERVABILITY.md for the metric names.
func WithMetrics(r *obs.Registry) Option {
	return func(s *Server) {
		s.reg = r
		s.sc.Instrument(r)
		parallel.Instrument(r)
		s.mPublished = r.Counter("timeserver.published")
		s.mPublishNS = r.Histogram("timeserver.publish_ns")
	}
}

// WithLogger emits structured events (publish, catch-up) to l.
func WithLogger(l *obs.Logger) Option {
	return func(s *Server) { s.log = l }
}

// NewServer creates a time server for the given parameter set, signing
// key and epoch schedule.
func NewServer(set *params.Set, key *core.ServerKeyPair, sched timefmt.Schedule, opts ...Option) *Server {
	s := &Server{
		sc:    core.NewScheme(set),
		key:   key,
		sched: sched,
		arch:  archive.NewMemory(),
		codec: wire.NewCodec(set),
		clock: time.Now,
		hub:   newHub(),
	}
	for _, o := range opts {
		o(s)
	}
	s.checkTokenKeySeparation()
	s.hub.instrument(s.reg)
	return s
}

// PublicKey returns the server's public key (the trust anchor clients
// pin).
func (s *Server) PublicKey() core.ServerPublicKey { return s.key.Pub }

// Schedule returns the epoch schedule.
func (s *Server) Schedule() timefmt.Schedule { return s.sched }

// PublishUpTo signs and archives the updates of every epoch whose start
// is at or before now and which is not yet published, from the epoch of
// the earliest archived label (or the current epoch on first call).
// This is the catch-up path after a restart: the paper's server "does
// not need to remember any information of key updates since it can
// generate a key update for any particular instant directly using its
// private key".
func (s *Server) PublishUpTo(now time.Time) (int, error) {
	cur := s.sched.Index(now)
	from := cur
	if labels := s.arch.Labels(); len(labels) > 0 {
		if t, err := s.sched.ParseLabel(labels[len(labels)-1]); err == nil {
			from = s.sched.Index(t) + 1
		}
	}
	n := 0
	for i := from; i <= cur; i++ {
		label := s.sched.LabelAt(i)
		if _, ok := s.arch.Get(label); ok {
			continue
		}
		u := s.issue(label)
		if err := s.arch.Put(u); err != nil {
			return n, fmt.Errorf("timeserver: archiving update %s: %w", label, err)
		}
		s.mPublished.Inc()
		s.published.Add(1)
		s.broadcast(i, u)
		n++
	}
	if n > 0 {
		s.log.Event("publish-catchup", "from", s.sched.LabelAt(from), "to", s.sched.LabelAt(cur), "n", n)
	}
	return n, nil
}

// broadcast encodes a freshly archived update ONCE and hands the bytes
// to every parked subscriber in one hub pass. This is the whole cost a
// publish pays for its audience — independent of subscriber count. idx
// is the label's schedule index; stream ordering rides on it.
func (s *Server) broadcast(idx int64, u core.KeyUpdate) {
	body := s.codec.MarshalKeyUpdate(u)
	s.hub.encodes.Add(1)
	s.hub.publish(idx, u.Label, body)
}

// issue signs one update, recording the signing latency.
func (s *Server) issue(label string) core.KeyUpdate {
	start := time.Now()
	u := s.sc.IssueUpdate(s.key, label)
	s.mPublishNS.Since(start)
	return u
}

// PublishLabel signs and archives one specific label, refusing labels
// whose epoch has not yet arrived — the trust assumption "the server
// should not give out any I_t at an instant t' < t" (§3).
func (s *Server) PublishLabel(label string) error {
	t, err := s.sched.ParseLabel(label)
	if err != nil {
		return err
	}
	if t.After(s.clock()) {
		return ErrFutureLabel
	}
	u := s.issue(label)
	if err := s.arch.Put(u); err != nil {
		return err
	}
	s.mPublished.Inc()
	s.published.Add(1)
	s.broadcast(s.sched.Index(t), u)
	s.log.Event("publish", "label", label)
	return nil
}

// ErrFutureLabel reports an attempt to publish an update before its
// instant has arrived.
var ErrFutureLabel = errors.New("timeserver: refusing to publish an update for a future instant")

// Run publishes updates as epochs pass until ctx is cancelled. It
// catches up immediately on entry, then wakes at every epoch boundary.
func (s *Server) Run(ctx context.Context) error {
	for {
		if _, err := s.PublishUpTo(s.clock()); err != nil {
			return err
		}
		now := s.clock()
		next := s.sched.Start(s.sched.Index(now) + 1)
		timer := time.NewTimer(next.Sub(now))
		select {
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		case <-timer.C:
		}
	}
}

// Drain moves the server into shutdown mode: every in-flight and
// future long-poll wait returns immediately (503) instead of holding
// its connection open, and every in-flight /v1/stream connection gets
// a terminal SSE comment and a clean close, so http.Server.Shutdown
// can complete within its grace period even with tens of thousands of
// receivers "waiting in alert". Ordinary catch-up and update fetches
// are unaffected — they finish normally under Shutdown's own
// in-flight handling.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.hub.drain()
}

// Subscribers returns how many connections are currently parked on the
// broadcast hub (streams plus long-poll waiters).
func (s *Server) Subscribers() int { return s.hub.count() }

// Published returns the number of updates this server has published —
// note it is independent of the number of users (experiment E2).
func (s *Server) Published() int64 { return s.published.Load() }

// Served returns the number of HTTP requests served.
func (s *Server) Served() int64 { return s.served.Load() }

// Metrics returns the registry passed to WithMetrics, or nil. The
// caller (cmd/treserver) mounts its Handler at /metrics.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Handler returns the public HTTP API. It closes over only the
// read-only view of the server — parameters, public key, schedule and
// the archive — so no request can reach the signing key.
//
//	GET /v1/params        → parameter set (text format)
//	GET /v1/server-key    → wire-encoded server public key
//	GET /v1/schedule      → granularity (text, time.Duration format)
//	GET /v1/update/{label}→ wire-encoded update, 404 until published
//	GET /v1/wait/{label}  → long-poll variant (?timeout=25s)
//	GET /v1/stream        → SSE push of every future update (?from=label replays)
//	GET /v1/catchup       → aggregate range download
//	GET /v1/latest        → most recent update
//	GET /v1/labels        → newline-separated published labels
//	GET /v1/healthz       → 200 ok
func (s *Server) Handler() http.Handler {
	view := &publicView{
		set:      s.sc.Set,
		pub:      s.key.Pub,
		sched:    s.sched,
		arch:     s.arch,
		codec:    s.codec,
		served:   &s.served,
		hub:      s.hub,
		draining: &s.draining,
		reg:      s.reg,
		archHit:  s.reg.Counter("timeserver.archive_hit"),
		archMiss: s.reg.Counter("timeserver.archive_miss"),
		issuer:   s.issuer,
		gate:     s.gate,
		tokenMet: newTokenMetrics(s.reg),
	}
	return view.routes()
}

// publicView is the request-handling half of the server. It deliberately
// has no reference to *Server or the private key. Its registry (when
// instrumented) carries only aggregate counts and latencies — nothing
// identifying a requester ever enters it.
type publicView struct {
	set      *params.Set
	pub      core.ServerPublicKey
	sched    timefmt.Schedule
	arch     archive.Archive
	codec    *wire.Codec
	served   *atomic.Int64
	hub      *hub
	draining *atomic.Bool
	reg      *obs.Registry
	archHit  *obs.Counter // archive lookups that found the label
	archMiss *obs.Counter // … that did not (future/unknown label)

	// Token issuance/gating (tokens.go); both nil on an open server.
	issuer   *token.Issuer
	gate     *token.Verifier
	tokenMet tokenMetrics
}

func (v *publicView) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/params", v.observe("params", v.handleParams))
	mux.HandleFunc("GET /v1/server-key", v.observe("server-key", v.handleServerKey))
	mux.HandleFunc("GET /v1/schedule", v.observe("schedule", v.handleSchedule))
	mux.HandleFunc("GET /v1/update/{label}", v.observe("update", v.handleUpdate))
	mux.HandleFunc("GET /v1/catchup", v.observe("catchup", v.requireToken(v.handleCatchUp)))
	mux.HandleFunc("GET /v1/wait/{label}", v.observe("wait", v.handleWait))
	mux.HandleFunc("GET /v1/stream", v.observe("stream", v.requireToken(v.handleStream)))
	if v.issuer != nil {
		mux.HandleFunc("POST /v1/tokens/issue", v.observe("tokens-issue", v.handleTokenIssue))
		mux.HandleFunc("GET /v1/tokens/key", v.observe("tokens-key", v.handleTokenKey))
	}
	mux.HandleFunc("GET /v1/latest", v.observe("latest", v.handleLatest))
	mux.HandleFunc("GET /v1/labels", v.observe("labels", v.handleLabels))
	mux.HandleFunc("GET /v1/healthz", v.observe("healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	}))
	return mux
}

// observe wraps a handler with the total-served counter and, when the
// server is instrumented, a per-endpoint request counter and latency
// histogram. The per-endpoint metrics are bound once at route setup —
// no map lookups on the request path.
func (v *publicView) observe(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	requests := v.reg.Counter("timeserver.requests." + endpoint)
	latency := v.reg.Histogram("timeserver.request_ns." + endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		v.served.Add(1)
		requests.Inc()
		defer latency.Since(time.Now())
		h(w, r)
	}
}

func (v *publicView) handleParams(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(v.set.Marshal())
}

func (v *publicView) handleServerKey(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(v.codec.MarshalServerPublicKey(v.pub))
}

func (v *publicView) handleSchedule(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, v.sched.Granularity)
}

func (v *publicView) handleUpdate(w http.ResponseWriter, r *http.Request) {
	label := r.PathValue("label")
	u, ok := v.arch.Get(label)
	if !ok {
		// Future or unknown label: nothing is revealed, nothing is signed.
		v.archMiss.Inc()
		http.Error(w, "update not published", http.StatusNotFound)
		return
	}
	v.archHit.Inc()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(v.codec.MarshalKeyUpdate(u))
}

// maxCatchUpRange caps how many updates one range response carries;
// longer ranges are truncated (oldest first) and the Total field tells
// the client to page. 64k updates is ~4 MiB on SS512 — one request for
// a month and a half of minute epochs.
const maxCatchUpRange = 65536

// handleCatchUp serves GET /v1/catchup?from=L&to=L[&limit=n]: every
// archived update with from ≤ label ≤ to (ascending, truncated to
// limit), one aggregate signature over them and the Merkle completeness
// commitment. Like every other route this is read-only over the
// archive — a range request cannot cause anything to be signed, so
// passivity is untouched; the aggregate is a sum of already-published
// points.
func (v *publicView) handleCatchUp(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, to := q.Get("from"), q.Get("to")
	if from == "" || to == "" || from > to {
		http.Error(w, "need from <= to", http.StatusBadRequest)
		return
	}
	limit := maxCatchUpRange
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = min(n, maxCatchUpRange)
	}
	res, err := archive.RangeOf(v.arch, v.codec, from, to, limit)
	if err != nil {
		http.Error(w, "range unavailable", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(v.codec.MarshalCatchUpResponse(wire.CatchUpResponse{
		Total:     res.Total,
		Updates:   res.Updates,
		Aggregate: res.Aggregate,
		Root:      res.Root,
	}))
}

func (v *publicView) handleLatest(w http.ResponseWriter, _ *http.Request) {
	labels := v.arch.Labels()
	if len(labels) == 0 {
		v.archMiss.Inc()
		http.Error(w, "no updates published yet", http.StatusNotFound)
		return
	}
	v.archHit.Inc()
	u, _ := v.arch.Get(labels[len(labels)-1])
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(v.codec.MarshalKeyUpdate(u))
}

func (v *publicView) handleLabels(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, strings.Join(v.arch.Labels(), "\n"))
}

// Production http.Server limits shared by cmd/treserver and
// cmd/trerelay. A stuck or malicious header-writer is cut off at
// ReadHeaderTimeout; idle keep-alive connections are reaped; headers
// are capped well under the default 1 MiB (this protocol needs a
// request line and little else). Deliberately no ReadTimeout or
// WriteTimeout: /v1/wait parks for up to two minutes and /v1/stream
// legitimately writes forever — per-connection lifetime is governed by
// Drain plus Shutdown instead.
const (
	DefaultReadHeaderTimeout = 10 * time.Second
	DefaultIdleTimeout       = 2 * time.Minute
	DefaultMaxHeaderBytes    = 64 << 10
)

// NewHTTPServer wraps a handler in an http.Server carrying the
// production limits above. readHeaderTimeout <= 0 selects the default
// (tests shrink it to exercise the stuck-header cutoff quickly).
func NewHTTPServer(h http.Handler, readHeaderTimeout time.Duration) *http.Server {
	if readHeaderTimeout <= 0 {
		readHeaderTimeout = DefaultReadHeaderTimeout
	}
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: readHeaderTimeout,
		IdleTimeout:       DefaultIdleTimeout,
		MaxHeaderBytes:    DefaultMaxHeaderBytes,
	}
}

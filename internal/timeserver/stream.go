package timeserver

import (
	"encoding/base64"
	"io"
	"math"
	"net/http"
	"sort"
	"time"
)

// streamKeepalive is how often an otherwise-idle stream connection gets
// a comment line, so dead peers are detected and intermediaries keep
// the connection open.
var streamKeepalive = 15 * time.Second

// writeSSE writes one update event: the wire-encoded KeyUpdate bytes as
// a base64 data line. SSE framing is text-only, and base64 keeps every
// consumer — browsers, curl, the Go client — on the same simple parser.
func writeSSE(w io.Writer, body []byte) error {
	buf := make([]byte, 0, base64.StdEncoding.EncodedLen(len(body))+16)
	buf = append(buf, "data: "...)
	buf = base64.StdEncoding.AppendEncode(buf, body)
	buf = append(buf, '\n', '\n')
	_, err := w.Write(buf)
	return err
}

// handleStream serves GET /v1/stream[?from=label]: a Server-Sent-Events
// connection that pushes every future key update as it is published.
// With from=L the archive is first replayed from L (inclusive), so a
// reconnecting receiver resumes without a separate catch-up request;
// without it the stream is live-only. After the replay a ": ready"
// comment marks the live boundary.
//
// The stream is monotone in schedule order: an event whose epoch index
// is at or before the last delivered one is suppressed (this
// deduplicates the replay/live overlap; backfills of older epochs are
// served by /v1/update and /v1/catchup, not the stream).
//
// Flow control protects the publish path, never the reverse: each
// connection owns a bounded queue fed by the broadcast hub, and a
// consumer that falls a full queue behind is shed — it gets a terminal
// ": dropped" comment and a close, and is expected to catch up and
// reconnect. A draining server closes every stream with a ": drain"
// comment. Like every route this is read-only over published data.
func (v *publicView) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	if v.draining.Load() {
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
		return
	}
	// Ordering is by schedule index throughout — label strings with
	// fractional seconds do not sort chronologically, so comparing them
	// lexicographically would silently drop sub-second epochs.
	from := r.URL.Query().Get("from")
	fromIdx := int64(math.MinInt64)
	if from != "" {
		t, err := v.sched.ParseLabel(from)
		if err != nil {
			http.Error(w, "from is not a schedule label", http.StatusBadRequest)
			return
		}
		fromIdx = v.sched.Index(t)
	}

	// Subscribe BEFORE replaying the archive so a publish in between is
	// queued, not missed; the monotone-index rule drops the overlap.
	sub := v.hub.subscribe("")
	defer v.hub.unsubscribe(sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // proxies must not buffer the push
	w.WriteHeader(http.StatusOK)

	lastIdx := int64(math.MinInt64)
	if from != "" {
		type entry struct {
			idx   int64
			label string
		}
		var replay []entry
		for _, l := range v.arch.Labels() {
			t, err := v.sched.ParseLabel(l)
			if err != nil {
				continue // off-schedule archive entry: not streamable
			}
			if idx := v.sched.Index(t); idx >= fromIdx {
				replay = append(replay, entry{idx, l})
			}
		}
		sort.Slice(replay, func(i, j int) bool { return replay[i].idx < replay[j].idx })
		for _, e := range replay {
			u, ok := v.arch.Get(e.label)
			if !ok {
				continue
			}
			// Replay encodes are per-connection catch-up cost, paid by the
			// reconnecting consumer — publish fan-out stays one encode total.
			if err := writeSSE(w, v.codec.MarshalKeyUpdate(u)); err != nil {
				return
			}
			v.archHit.Inc()
			lastIdx = e.idx
		}
	}
	if _, err := io.WriteString(w, ": ready\n\n"); err != nil {
		return
	}
	fl.Flush()

	keep := time.NewTicker(streamKeepalive)
	defer keep.Stop()
	for {
		select {
		case m := <-sub.ch:
			v.hub.gQueue.Add(-1)
			if m.idx <= lastIdx {
				continue // replay overlap or stale backfill: stream stays monotone
			}
			if err := writeSSE(w, m.body); err != nil {
				return
			}
			fl.Flush()
			lastIdx = m.idx
		case <-sub.shed:
			io.WriteString(w, ": dropped: send queue overflowed, catch up and reconnect\n\n")
			fl.Flush()
			return
		case <-v.hub.drained:
			io.WriteString(w, ": drain: server shutting down\n\n")
			fl.Flush()
			return
		case <-r.Context().Done():
			return
		case <-keep.C:
			if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

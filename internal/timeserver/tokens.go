package timeserver

import (
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"timedrelease/internal/backend"
	"timedrelease/internal/bls"
	"timedrelease/internal/core"
	"timedrelease/internal/obs"
	"timedrelease/internal/token"
)

// Anonymous metered access (docs/TOKENS.md). The serving tier can
// require a Privacy Pass-style blind token on the two amplified read
// surfaces — /v1/catchup (bulk ranges) and /v1/stream (a held-open
// connection) — while staying exactly as passive and user-blind as
// before: issuance signs a uniformly random blinded point (no identity
// attached, none exists), redemption is one prepared pairing plus a
// double-spend ledger lookup, and the single-label endpoints stay
// open, matching the paper's "anyone may read the current time"
// baseline.
//
// The issuance key is structurally separate from the timed-release
// key: blind issuance signs attacker-chosen group elements, so signing
// with the release key would hand out s·H1(T_future) — future
// decryption keys — on request. NewServer refuses that configuration
// outright.

// TokenHeader carries the base64 wire-encoded redemption credential.
const TokenHeader = "X-TRE-Token"

// maxIssueBody bounds an issuance request body: a full MaxBatch of
// blinded points fits comfortably under 1 MiB on every backend.
const maxIssueBody = 1 << 20

// ErrTokenRequired is returned when the server demands an access token
// and the client has no wallet (or an empty one). Stock up with
// Client.FetchTokens or `trectl tokens fetch`.
var ErrTokenRequired = errors.New("timeserver: server requires an access token (fetch with Client.FetchTokens or 'trectl tokens fetch')")

// maxTokenTries bounds how many wallet tokens one request will burn
// before giving up: a shared wallet can race another process to a
// token (409), in which case the client retries with a fresh one.
const maxTokenTries = 3

// WithTokenIssuer enables POST /v1/tokens/issue and GET /v1/tokens/key:
// the server blind-signs token requests with iss's DEDICATED issuance
// key. Combine with WithTokenGate to also demand tokens back;
// issuance without gating is useful for an origin that mints tokens
// which only its relays enforce.
func WithTokenIssuer(iss *token.Issuer) Option {
	return func(s *Server) { s.issuer = iss }
}

// WithTokenGate requires a valid, unspent token on /v1/catchup and
// /v1/stream. Single-label reads (/v1/update, /v1/latest, /v1/wait)
// stay open — the gate meters the amplified surfaces, not the paper's
// baseline read (docs/TOKENS.md discusses the boundary).
func WithTokenGate(v *token.Verifier) Option {
	return func(s *Server) { s.gate = v }
}

// checkTokenKeySeparation panics when the issuance key equals the
// timed-release key: that configuration is not a misfeature but a
// break — a blind signature under s on H1(TimeDomain, T_future) IS the
// future update. Compared on public keys, which is what both sides
// derive from their scalars.
func (s *Server) checkTokenKeySeparation() {
	if s.issuer == nil {
		return
	}
	set := s.sc.Set
	if set.B.Equal(backend.G1, s.issuer.Public().SG, s.key.Pub.SG) {
		panic("timeserver: token issuance key must not be the timed-release key (see docs/TOKENS.md)")
	}
}

// tokenMetrics are the issuance/redemption counters and latencies
// (names timeserver.token*; docs/OBSERVABILITY.md). Nil without
// WithMetrics; obs types no-op on nil.
type tokenMetrics struct {
	issued      *obs.Counter   // tokens blind-signed
	issueNS     *obs.Histogram // per-request issuance latency (whole batch)
	redeemed    *obs.Counter   // tokens admitted on the gate
	redeemNS    *obs.Histogram // per-token verify+spend latency
	doubleSpend *obs.Counter   // redemptions rejected as already spent
	missing     *obs.Counter   // gated requests with no token header
	invalid     *obs.Counter   // malformed or forged tokens
}

func newTokenMetrics(r *obs.Registry) tokenMetrics {
	return tokenMetrics{
		issued:      r.Counter("timeserver.tokens_issued"),
		issueNS:     r.Histogram("timeserver.token_issue_ns"),
		redeemed:    r.Counter("timeserver.tokens_redeemed"),
		redeemNS:    r.Histogram("timeserver.token_redeem_ns"),
		doubleSpend: r.Counter("timeserver.token_double_spend"),
		missing:     r.Counter("timeserver.token_missing"),
		invalid:     r.Counter("timeserver.token_invalid"),
	}
}

// handleTokenKey serves the issuance public key (same encoding as the
// server key: clients unblind against it, relays verify against it).
func (v *publicView) handleTokenKey(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(v.codec.MarshalServerPublicKey(core.ServerPublicKey(v.issuer.Public())))
}

// handleTokenIssue blind-signs a batch of blinded points. The server
// learns nothing linkable: the request is a list of uniformly random
// G2 elements, the response the same list scaled by x.
func (v *publicView) handleTokenIssue(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxIssueBody))
	if err != nil {
		http.Error(w, "reading request", http.StatusBadRequest)
		return
	}
	blinded, err := v.codec.UnmarshalTokenRequest(body)
	if err != nil {
		http.Error(w, "malformed token request", http.StatusBadRequest)
		return
	}
	start := time.Now()
	signed, err := v.issuer.SignBlinded(blinded)
	if err != nil {
		// Over-cap batches and non-subgroup points land here.
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	v.tokenMet.issueNS.Since(start)
	v.tokenMet.issued.Add(int64(len(signed)))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(v.codec.MarshalTokenResponse(signed))
}

// requireToken wraps a handler with token admission when the server is
// gated. Status mapping (mirrored by the client's typed errors):
//
//	401 — no token presented        → ErrTokenRequired
//	400 — token undecodable
//	403 — signature fails the pairing check
//	409 — token already spent       → token.ErrDoubleSpend
//	503 — spend ledger cannot persist (fail closed)
func (v *publicView) requireToken(h http.HandlerFunc) http.HandlerFunc {
	if v.gate == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		enc := r.Header.Get(TokenHeader)
		if enc == "" {
			v.tokenMet.missing.Inc()
			http.Error(w, "access token required", http.StatusUnauthorized)
			return
		}
		raw, err := base64.StdEncoding.DecodeString(enc)
		if err != nil {
			v.tokenMet.invalid.Inc()
			http.Error(w, "malformed token encoding", http.StatusBadRequest)
			return
		}
		t, err := token.DecodeToken(v.codec, raw)
		if err != nil {
			v.tokenMet.invalid.Inc()
			http.Error(w, "malformed token", http.StatusBadRequest)
			return
		}
		start := time.Now()
		err = v.gate.Redeem(t)
		v.tokenMet.redeemNS.Since(start)
		switch {
		case err == nil:
			v.tokenMet.redeemed.Inc()
			h(w, r)
		case errors.Is(err, token.ErrDoubleSpend):
			v.tokenMet.doubleSpend.Inc()
			http.Error(w, "token already spent", http.StatusConflict)
		case errors.Is(err, token.ErrBadToken):
			v.tokenMet.invalid.Inc()
			http.Error(w, "token rejected", http.StatusForbidden)
		default:
			// Ledger persistence failure: fail closed, the admission
			// would not survive a restart.
			http.Error(w, "token ledger unavailable", http.StatusServiceUnavailable)
		}
	}
}

// --- client side --------------------------------------------------------

// WithTokenWallet attaches a wallet: every gated request (/v1/catchup
// pages, /v1/stream dials) spends one token from it, transparently.
// Tokens are popped from the wallet before use — at-most-once
// semantics, so a crash mid-request wastes at most one token and can
// never double-spend.
func WithTokenWallet(w *token.Wallet) ClientOption {
	return func(c *Client) { c.wallet = w }
}

// Wallet returns the attached wallet (nil without WithTokenWallet).
func (c *Client) Wallet() *token.Wallet { return c.wallet }

// FetchTokens tops up the wallet with n fresh tokens in one issuance
// round trip: blind, POST /v1/tokens/issue, unblind, verify against
// the server's issuance key, store. The server sees only blinded
// points; the tokens that land in the wallet are unlinkable to this
// call.
func (c *Client) FetchTokens(ctx context.Context, n int) error {
	if c.wallet == nil {
		return errors.New("timeserver: FetchTokens needs WithTokenWallet")
	}
	if n <= 0 || n > token.MaxBatch {
		return fmt.Errorf("timeserver: token batch must be in [1, %d]", token.MaxBatch)
	}
	pub, err := c.fetchIssuanceKey(ctx)
	if err != nil {
		return err
	}
	pending, blinded, err := token.Blind(c.sc.Set, nil, n)
	if err != nil {
		return err
	}
	body, status, err := c.post(ctx, "/v1/tokens/issue", c.codec.MarshalTokenRequest(blinded))
	if err != nil {
		return err
	}
	if status == http.StatusNotFound {
		return errors.New("timeserver: server does not issue tokens")
	}
	if status != http.StatusOK {
		return fmt.Errorf("timeserver: token issuance returned %d", status)
	}
	signed, err := c.codec.UnmarshalTokenResponse(body)
	if err != nil {
		return fmt.Errorf("timeserver: token response: %w", err)
	}
	toks, err := token.Unblind(c.sc.Set, pub, pending, signed)
	if err != nil {
		return err
	}
	if err := c.wallet.Add(toks...); err != nil {
		return err
	}
	c.met.tokensFetched.Add(int64(len(toks)))
	return nil
}

// fetchIssuanceKey retrieves and decodes /v1/tokens/key. The key is
// fetched per call rather than pinned: a server swapping issuance keys
// only invalidates its own tokens (Unblind verifies against whatever
// key signed), it cannot forge anything.
func (c *Client) fetchIssuanceKey(ctx context.Context) (bls.PublicKey, error) {
	body, status, err := c.get(ctx, "/v1/tokens/key")
	if err != nil {
		return bls.PublicKey{}, err
	}
	if status == http.StatusNotFound {
		return bls.PublicKey{}, errors.New("timeserver: server does not issue tokens")
	}
	if status != http.StatusOK {
		return bls.PublicKey{}, fmt.Errorf("timeserver: token key endpoint returned %d", status)
	}
	pub, err := c.codec.UnmarshalServerPublicKey(body)
	if err != nil {
		return bls.PublicKey{}, fmt.Errorf("timeserver: token key: %w", err)
	}
	return bls.PublicKey(pub), nil
}

// popTokenHeader pops one wallet token and renders the redemption
// header value. ErrWalletEmpty maps to ErrTokenRequired: the server
// demanded a token the client cannot produce.
func (c *Client) popTokenHeader() (string, error) {
	t, err := c.wallet.Pop()
	if errors.Is(err, token.ErrWalletEmpty) {
		return "", ErrTokenRequired
	}
	if err != nil {
		return "", err
	}
	return base64.StdEncoding.EncodeToString(token.EncodeToken(c.codec, t)), nil
}

// getGated is getLimited for token-gated endpoints: with a wallet
// attached it spends one token per attempt, retrying a bounded number
// of times on 409 (another wallet holder won the race to this token)
// and surfacing typed errors for 401/409.
func (c *Client) getGated(ctx context.Context, path string, bodyLimit int64) ([]byte, int, error) {
	if c.wallet == nil {
		body, status, err := c.getLimited(ctx, path, bodyLimit)
		if err == nil && status == http.StatusUnauthorized {
			return nil, status, ErrTokenRequired
		}
		return body, status, err
	}
	var lastErr error
	for try := 0; try < maxTokenTries; try++ {
		hdr, err := c.popTokenHeader()
		if err != nil {
			return nil, 0, err
		}
		body, status, err := c.getLimitedHeader(ctx, path, bodyLimit, http.Header{TokenHeader: []string{hdr}})
		if err != nil {
			return nil, status, err
		}
		switch status {
		case http.StatusConflict:
			c.met.tokenRejected.Inc()
			lastErr = token.ErrDoubleSpend
			continue
		case http.StatusUnauthorized:
			return nil, status, ErrTokenRequired
		}
		c.met.tokenRedeemed.Inc()
		return body, status, nil
	}
	return nil, http.StatusConflict, fmt.Errorf("timeserver: %s: %w after %d tokens", path, lastErr, maxTokenTries)
}

package timeserver

import (
	"context"
	"encoding/base64"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"timedrelease/internal/bls"
	"timedrelease/internal/core"
	"timedrelease/internal/params"
	"timedrelease/internal/timefmt"
	"timedrelease/internal/token"
)

// serverAsBLSKey reinterprets the timed-release key pair as a BLS
// signing key — ONLY to prove the server refuses it for issuance.
func serverAsBLSKey(key *core.ServerKeyPair) *bls.PrivateKey {
	return &bls.PrivateKey{S: key.S, Pub: bls.PublicKey(key.Pub)}
}

// gatedEnv is env plus token issuance and gating over a durable (or
// in-memory) spend ledger.
type gatedEnv struct {
	*env
	issuer *token.Issuer
	ledger *token.Ledger
	wallet *token.Wallet
	dir    string // "" → in-memory ledger
}

// newGatedEnv builds a -require-tokens style server: issuer + gate
// over dir (in-memory ledger when dir == ""), plus a wallet-carrying
// client.
func newGatedEnv(t *testing.T, dir string) *gatedEnv {
	t.Helper()
	set := params.MustPreset("Test160")
	sc := core.NewScheme(set)
	key, err := sc.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	iss, err := token.GenerateIssuer(set, nil)
	if err != nil {
		t.Fatal(err)
	}
	led := token.NewLedger()
	if dir != "" {
		var stats token.LedgerStats
		led, stats, err = token.OpenLedger(dir)
		if err != nil {
			t.Fatal(err)
		}
		_ = stats
	}
	sched := timefmt.MustSchedule(time.Minute)
	clock := &fakeClock{t: time.Date(2026, 7, 5, 12, 0, 30, 0, time.UTC)}
	srv := NewServer(set, key, sched,
		WithClock(clock.Now),
		WithTokenIssuer(iss),
		WithTokenGate(token.NewVerifier(set, iss.Public(), led)))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	wallet := token.NewWallet(set)
	client := NewClient(ts.URL, set, key.Pub,
		WithHTTPClient(ts.Client()),
		WithTokenWallet(wallet),
		WithoutCache())
	e := &env{set: set, sc: sc, key: key, sched: sched, clock: clock, server: srv, ts: ts, client: client}
	return &gatedEnv{env: e, issuer: iss, ledger: led, wallet: wallet, dir: dir}
}

func TestTokenIssuanceKeyMustDiffer(t *testing.T) {
	set := params.MustPreset("Test160")
	sc := core.NewScheme(set)
	key, err := sc.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	// An issuer wrapping the TIMED-RELEASE key: blind issuance under s
	// would sign s·H1(T_future) on request. The server must refuse to
	// construct.
	iss, err := token.NewIssuer(set, serverAsBLSKey(key))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewServer accepted the timed-release key as issuance key")
		}
	}()
	NewServer(set, key, timefmt.MustSchedule(time.Minute), WithTokenIssuer(iss))
}

func TestTokenFetchAndGatedStream(t *testing.T) {
	g := newGatedEnv(t, "")
	ctx := context.Background()
	if _, err := g.server.PublishUpTo(g.clock.Now()); err != nil {
		t.Fatal(err)
	}
	label := g.sched.Label(g.clock.Now())

	// No tokens yet: the gated stream surfaces ErrTokenRequired.
	if _, err := g.client.StreamUpdates(ctx, label, func(core.KeyUpdate) error { return nil }); !errors.Is(err, ErrTokenRequired) {
		t.Fatalf("streaming with empty wallet: got %v, want ErrTokenRequired", err)
	}

	if err := g.client.FetchTokens(ctx, 4); err != nil {
		t.Fatal(err)
	}
	if g.wallet.Len() != 4 {
		t.Fatalf("wallet holds %d tokens, want 4", g.wallet.Len())
	}

	// One token admits one stream connection, which replays the label.
	got := 0
	if _, err := g.client.StreamUpdates(ctx, label, func(u core.KeyUpdate) error {
		got++
		return errStopStream
	}); err != nil {
		t.Fatal(err)
	}
	if got != 1 || g.wallet.Len() != 3 {
		t.Fatalf("stream delivered %d, wallet %d; want 1 delivered, 3 left", got, g.wallet.Len())
	}
}

func TestTokenGatedCatchUp(t *testing.T) {
	g := newGatedEnv(t, "")
	ctx := context.Background()
	if _, err := g.server.PublishUpTo(g.clock.Now()); err != nil {
		t.Fatal(err)
	}
	g.clock.Advance(6 * time.Minute)
	if _, err := g.server.PublishUpTo(g.clock.Now()); err != nil {
		t.Fatal(err)
	}
	labels, err := g.client.Labels(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Without tokens the range path 401s and CatchUp degrades to the
	// deliberately ungated per-label endpoint — slower, still correct.
	got, err := g.client.CatchUp(ctx, labels)
	if err != nil {
		t.Fatalf("ungated-fallback catch-up: %v", err)
	}
	if len(got) != len(labels) {
		t.Fatalf("fallback delivered %d/%d", len(got), len(labels))
	}

	// With tokens the range fast path is admitted and spends one.
	if err := g.client.FetchTokens(ctx, 2); err != nil {
		t.Fatal(err)
	}
	before := g.wallet.Len()
	got, err = g.client.CatchUp(ctx, labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(labels) {
		t.Fatalf("gated catch-up delivered %d/%d", len(got), len(labels))
	}
	if g.wallet.Len() >= before {
		t.Fatal("gated catch-up spent no token — the range path cannot have been used")
	}
}

// redeemDirect sends a raw gated request carrying tok and returns the
// status code — the HTTP-level view of redemption.
func redeemDirect(t *testing.T, g *gatedEnv, tok token.Token) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, g.ts.URL+"/v1/catchup?from=a&to=b", nil)
	if err != nil {
		t.Fatal(err)
	}
	enc := base64.StdEncoding.EncodeToString(token.EncodeToken(g.server.codec, tok))
	req.Header.Set(TokenHeader, enc)
	resp, err := g.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func TestTokenDoubleSpendOverHTTP(t *testing.T) {
	g := newGatedEnv(t, "")
	ctx := context.Background()
	if err := g.client.FetchTokens(ctx, 2); err != nil {
		t.Fatal(err)
	}
	tok, err := g.wallet.Pop()
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent redemption of ONE token: exactly one 200-family
	// admission, the rest 409 (run under -race by make ci).
	const racers = 8
	statuses := make([]int, racers)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			statuses[i] = redeemDirect(t, g, tok)
		}(i)
	}
	close(start)
	wg.Wait()
	admitted, conflicted := 0, 0
	for _, s := range statuses {
		switch s {
		case http.StatusConflict:
			conflicted++
		case http.StatusUnauthorized, http.StatusForbidden, http.StatusServiceUnavailable:
			t.Fatalf("unexpected status %d", s)
		default:
			admitted++ // 200 or 400 on the catchup params — token WAS admitted
		}
	}
	if admitted != 1 || conflicted != racers-1 {
		t.Fatalf("admitted %d, conflict %d; want exactly one admission", admitted, conflicted)
	}

	// The client-side retry burns the spent token and succeeds with a
	// fresh one from the wallet.
	if _, _, err := g.client.getGated(ctx, "/v1/catchup?from=x&to=x&limit=1", 1<<20); err != nil {
		t.Fatalf("getGated with fresh token: %v", err)
	}
}

func TestTokenGateRejectsForgeries(t *testing.T) {
	g := newGatedEnv(t, "")
	// Missing header.
	req, _ := http.NewRequest(http.MethodGet, g.ts.URL+"/v1/catchup?from=a&to=b", nil)
	resp, err := g.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("missing token: %d, want 401", resp.StatusCode)
	}
	// Garbage encoding.
	req, _ = http.NewRequest(http.MethodGet, g.ts.URL+"/v1/catchup?from=a&to=b", nil)
	req.Header.Set(TokenHeader, "!!not-base64!!")
	resp, err = g.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage token: %d, want 400", resp.StatusCode)
	}
	// Valid shape, wrong issuer.
	other, err := token.GenerateIssuer(g.set, nil)
	if err != nil {
		t.Fatal(err)
	}
	pending, blinded, err := token.Blind(g.set, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	signed, err := other.SignBlinded(blinded)
	if err != nil {
		t.Fatal(err)
	}
	forged, err := token.Unblind(g.set, other.Public(), pending, signed)
	if err != nil {
		t.Fatal(err)
	}
	if status := redeemDirect(t, g, forged[0]); status != http.StatusForbidden {
		t.Fatalf("forged token: %d, want 403", status)
	}
}

// TestGatedServerSpendLedgerRecovery is the crash test: a gated server
// dies mid-redemption, its spend.log tail is torn, and a new server
// over the same directory must keep every durably spent token rejected
// while the token whose admission was never acknowledged — and every
// untouched token — still redeems.
func TestGatedServerSpendLedgerRecovery(t *testing.T) {
	dir := t.TempDir()
	g := newGatedEnv(t, dir)
	ctx := context.Background()
	if err := g.client.FetchTokens(ctx, 3); err != nil {
		t.Fatal(err)
	}
	spent, _ := g.wallet.Pop()
	tornTok, _ := g.wallet.Pop()
	unspent, _ := g.wallet.Pop()

	if status := redeemDirect(t, g, spent); status == http.StatusConflict || status == http.StatusForbidden {
		t.Fatalf("first redemption rejected: %d", status)
	}
	if status := redeemDirect(t, g, tornTok); status == http.StatusConflict || status == http.StatusForbidden {
		t.Fatalf("second redemption rejected: %d", status)
	}

	// Kill the server "mid-redemption": close everything, then tear
	// the spend.log so tornTok's append looks half-written — exactly
	// the on-disk state of a crash between the fsync starting and
	// completing.
	g.ts.Close()
	g.ledger.Close()
	logPath := filepath.Join(dir, token.SpendLogName)
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logPath, data[:len(data)-5], 0o600); err != nil {
		t.Fatal(err)
	}

	// Restart over the same directory.
	led2, stats, err := token.OpenLedger(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Truncated || stats.Spent != 1 {
		t.Fatalf("recovery stats %+v; want 1 durable spend and a truncated tail", stats)
	}
	srv2 := NewServer(g.set, g.key, g.sched,
		WithClock(g.clock.Now),
		WithTokenIssuer(g.issuer),
		WithTokenGate(token.NewVerifier(g.set, g.issuer.Public(), led2)))
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(ts2.Close)
	g.ts = ts2
	g.server = srv2

	// The durably spent token stays rejected across the crash.
	if status := redeemDirect(t, g, spent); status != http.StatusConflict {
		t.Fatalf("durably spent token after restart: %d, want 409", status)
	}
	// The torn-append token was never acknowledged: it redeems now.
	if status := redeemDirect(t, g, tornTok); status == http.StatusConflict || status == http.StatusForbidden {
		t.Fatalf("torn-append token after restart: %d, want admission", status)
	}
	// A completely untouched token still redeems.
	if status := redeemDirect(t, g, unspent); status == http.StatusConflict || status == http.StatusForbidden {
		t.Fatalf("unspent token after restart: %d, want admission", status)
	}
	// And every admission above is durable in the repaired log.
	if err := led2.Close(); err != nil {
		t.Fatal(err)
	}
	audit, err := token.AuditSpendLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if audit.Torn || audit.Records != 3 || audit.Duplicates != 0 {
		t.Fatalf("post-recovery audit %+v; want 3 clean records", audit)
	}
}

package timeserver

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"timedrelease/internal/archive"
	"timedrelease/internal/core"
	"timedrelease/internal/curve"
	"timedrelease/internal/obs"
	"timedrelease/internal/wire"
)

// publishRun publishes several epochs and returns the labels.
func publishRun(t *testing.T, e *env, epochs int) []string {
	t.Helper()
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	e.clock.Advance(time.Duration(epochs) * time.Minute)
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	labels, err := e.client.Labels(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) < 4 {
		t.Fatalf("need ≥4 labels, got %d", len(labels))
	}
	return labels
}

// forgeRange rewrites an honest /v1/catchup response so that the update
// for one label carries a point signed by a different key, keeping the
// response SELF-consistent: the claimed aggregate is the sum of the
// delivered (tampered) points and the Merkle root matches the delivered
// payloads. Only the pinned-key pairing check can catch it.
func forgeRange(t *testing.T, e *env, body []byte, forged core.KeyUpdate) []byte {
	t.Helper()
	resp, err := e.server.codec.UnmarshalCatchUpResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	agg := curve.Infinity()
	leaves := make([][32]byte, len(resp.Updates))
	for i := range resp.Updates {
		if resp.Updates[i].Label == forged.Label {
			resp.Updates[i] = forged
		}
		agg = e.set.Curve.Add(agg, resp.Updates[i].Point)
		leaves[i] = archive.LeafHash(e.server.codec.MarshalKeyUpdate(resp.Updates[i]))
	}
	resp.Aggregate = agg
	resp.Root = archive.MerkleRoot(leaves)
	return e.server.codec.MarshalCatchUpResponse(resp)
}

func TestCatchUpRangeForgeryFallsBackToBatchPath(t *testing.T) {
	// The range response carries one forged update (self-consistent
	// aggregate and commitment, wrong signing key). The aggregate check
	// must reject the page wholesale and the client must recover through
	// the authoritative per-label batch path — which here is honest, so
	// the catch-up still succeeds, with the fallback counted.
	e := newEnv(t)
	labels := publishRun(t, e, 7)
	bad := labels[len(labels)/2]
	impostor, err := e.sc.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	forged := e.sc.IssueUpdate(impostor, bad)

	real := e.server.Handler()
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/catchup" {
			real.ServeHTTP(w, r)
			return
		}
		rec := httptest.NewRecorder()
		real.ServeHTTP(rec, r)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(forgeRange(t, e, rec.Body.Bytes(), forged))
	}))
	defer proxy.Close()

	reg := obs.NewRegistry()
	c := NewClient(proxy.URL, e.set, e.key.Pub,
		WithHTTPClient(proxy.Client()), WithClientMetrics(reg))
	ups, err := c.CatchUp(context.Background(), labels)
	if err != nil {
		t.Fatalf("CatchUp: %v", err)
	}
	if len(ups) != len(labels) {
		t.Fatalf("got %d updates for %d labels", len(ups), len(labels))
	}
	for _, u := range ups {
		if !e.sc.VerifyUpdate(e.key.Pub, u) {
			t.Fatalf("update %s invalid after fallback", u.Label)
		}
	}
	s := reg.Snapshot()
	if s.Counters["client.catchup_aggregate"] != 0 ||
		s.Counters["client.catchup_fallback"] != 1 ||
		s.Counters["client.catchup_batches"] != 1 {
		t.Fatalf("counters = aggregate %d fallback %d batches %d, want 0/1/1",
			s.Counters["client.catchup_aggregate"],
			s.Counters["client.catchup_fallback"],
			s.Counters["client.catchup_batches"])
	}
}

func TestCatchUpRangeForgeryRejectedWholesaleWhenServerLies(t *testing.T) {
	// Differential acceptance test: a forged update INSIDE the aggregated
	// range, served consistently on the per-label endpoint too (a lying
	// server, not a flaky proxy). The aggregate path detects it, the
	// fallback batch path detects it, and the whole catch-up is rejected
	// with nothing cached.
	e := newEnv(t)
	labels := publishRun(t, e, 7)
	bad := labels[len(labels)/2]
	impostor, err := e.sc.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	forged := e.sc.IssueUpdate(impostor, bad)
	forgedBody := e.server.codec.MarshalKeyUpdate(forged)

	real := e.server.Handler()
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/catchup":
			rec := httptest.NewRecorder()
			real.ServeHTTP(rec, r)
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(forgeRange(t, e, rec.Body.Bytes(), forged))
		case "/v1/update/" + bad:
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(forgedBody)
		default:
			real.ServeHTTP(w, r)
		}
	}))
	defer proxy.Close()

	reg := obs.NewRegistry()
	c := NewClient(proxy.URL, e.set, e.key.Pub,
		WithHTTPClient(proxy.Client()), WithClientMetrics(reg))
	got, err := c.CatchUp(context.Background(), labels)
	if !errors.Is(err, ErrBadUpdate) {
		t.Fatalf("err = %v, want ErrBadUpdate", err)
	}
	if !strings.Contains(err.Error(), bad) {
		t.Fatalf("error %q does not name the forged label %q", err, bad)
	}
	if len(got) != 0 {
		t.Fatalf("rejected catch-up returned %d updates, want 0", len(got))
	}
	if n := c.CachedLen(); n != 0 {
		t.Fatalf("rejected catch-up left %d cached updates", n)
	}
	// Two fallbacks recorded: the range rejection, then the batch
	// equation localising the offender.
	if got := reg.Snapshot().Counters["client.catchup_fallback"]; got != 2 {
		t.Fatalf("catchup_fallback = %d, want 2", got)
	}
}

func TestCatchUpRangeExcludesCachedPrefix(t *testing.T) {
	// Regression for the re-request bug: labels already in the verified
	// cache must neither be fetched again nor widen the range request.
	e := newEnv(t)
	labels := publishRun(t, e, 9)

	var mu sync.Mutex
	var froms []string
	real := e.server.Handler()
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/catchup" {
			mu.Lock()
			froms = append(froms, r.URL.Query().Get("from"))
			mu.Unlock()
		}
		real.ServeHTTP(w, r)
	}))
	defer proxy.Close()

	c := NewClient(proxy.URL, e.set, e.key.Pub, WithHTTPClient(proxy.Client()))
	// Warm the cache with the oldest three labels...
	if _, err := c.CatchUp(context.Background(), labels[:3]); err != nil {
		t.Fatal(err)
	}
	// ...then catch up on everything: the range must start at the first
	// UNcached label.
	if _, err := c.CatchUp(context.Background(), labels); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(froms) != 2 {
		t.Fatalf("range requests = %v, want exactly 2", froms)
	}
	if froms[0] != labels[0] || froms[1] != labels[3] {
		t.Fatalf("from params = %v, want [%s %s]", froms, labels[0], labels[3])
	}
}

func TestCatchUpDuplicateLabelsFetchOnce(t *testing.T) {
	// The same uncached label asked twice must cost one fetch — counted
	// on the per-label path, where requests map 1:1 to labels.
	e := newEnv(t)
	labels := publishRun(t, e, 4)
	c := NewClient(e.ts.URL, e.set, e.key.Pub,
		WithHTTPClient(e.ts.Client()), WithoutAggregateCatchUp())

	ask := append(append([]string{}, labels...), labels[0], labels[1])
	before := e.server.Served()
	ups, err := c.CatchUp(context.Background(), ask)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.server.Served() - before; got != int64(len(labels)) {
		t.Fatalf("served %d requests for %d unique labels", got, len(labels))
	}
	// Result order follows the request, each label once.
	if len(ups) != len(labels) {
		t.Fatalf("got %d updates, want %d", len(ups), len(labels))
	}
	for i, u := range ups {
		if u.Label != labels[i] {
			t.Fatalf("update %d is for %q, want %q", i, u.Label, labels[i])
		}
	}
}

func TestCatchUpOldServerFallsBackToLegacyPath(t *testing.T) {
	// A server without /v1/catchup (404) is not an error — the client
	// quietly does what it did before the range endpoint existed.
	e := newEnv(t)
	labels := publishRun(t, e, 5)

	real := e.server.Handler()
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/catchup" {
			http.NotFound(w, r)
			return
		}
		real.ServeHTTP(w, r)
	}))
	defer proxy.Close()

	reg := obs.NewRegistry()
	c := NewClient(proxy.URL, e.set, e.key.Pub,
		WithHTTPClient(proxy.Client()), WithClientMetrics(reg))
	ups, err := c.CatchUp(context.Background(), labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != len(labels) {
		t.Fatalf("got %d updates, want %d", len(ups), len(labels))
	}
	s := reg.Snapshot()
	// An absent endpoint is availability, not integrity: no fallback
	// counted, no aggregate verified, one legacy batch.
	if s.Counters["client.catchup_aggregate"] != 0 ||
		s.Counters["client.catchup_fallback"] != 0 ||
		s.Counters["client.catchup_batches"] != 1 {
		t.Fatalf("counters = aggregate %d fallback %d batches %d, want 0/0/1",
			s.Counters["client.catchup_aggregate"],
			s.Counters["client.catchup_fallback"],
			s.Counters["client.catchup_batches"])
	}
}

func TestCatchUpRangePagesThroughTruncation(t *testing.T) {
	// Cap the server's page size via the limit parameter by rewriting the
	// query: every page but the last comes back truncated, and the client
	// must walk them all, verifying each page's aggregate.
	e := newEnv(t)
	labels := publishRun(t, e, 9)

	real := e.server.Handler()
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/catchup" {
			q := r.URL.Query()
			q.Set("limit", "3")
			r.URL.RawQuery = q.Encode()
		}
		real.ServeHTTP(w, r)
	}))
	defer proxy.Close()

	reg := obs.NewRegistry()
	c := NewClient(proxy.URL, e.set, e.key.Pub,
		WithHTTPClient(proxy.Client()), WithClientMetrics(reg))
	ups, err := c.CatchUp(context.Background(), labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != len(labels) {
		t.Fatalf("got %d updates, want %d", len(ups), len(labels))
	}
	for i, u := range ups {
		if u.Label != labels[i] || !e.sc.VerifyUpdate(e.key.Pub, u) {
			t.Fatalf("update %d (%s) wrong or invalid", i, u.Label)
		}
	}
	s := reg.Snapshot()
	wantPages := int64((len(labels) + 2) / 3)
	if got := s.Counters["client.catchup_aggregate"]; got != wantPages {
		t.Fatalf("catchup_aggregate = %d, want %d pages", got, wantPages)
	}
	if s.Counters["client.catchup_batches"] != 0 {
		t.Fatalf("paged range catch-up used the batch path %d times", s.Counters["client.catchup_batches"])
	}
}

// tamperCompensating rewrites an honest /v1/catchup response with the
// cancellation attack the aggregate equation cannot see: +Δ on one
// update, −Δ on another. The claimed aggregate still equals the sum of
// the delivered points and the Merkle root is recommitted over the
// tampered payloads, so the sum check, the pairing product over the
// aggregate AND the completeness commitment all pass — only per-update
// binding (the blinded batch admission check) stands in the way.
func tamperCompensating(t *testing.T, e *env, body []byte) []byte {
	t.Helper()
	resp, err := e.server.codec.UnmarshalCatchUpResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Updates) < 2 {
		t.Fatalf("need ≥2 updates to tamper, got %d", len(resp.Updates))
	}
	c := e.set.Curve
	delta := e.sc.IssueUpdate(e.key, "some-other-label").Point
	first, last := 0, len(resp.Updates)-1
	resp.Updates[first].Point = c.Add(resp.Updates[first].Point, delta)
	resp.Updates[last].Point = c.Add(resp.Updates[last].Point, c.Neg(delta))
	leaves := make([][32]byte, len(resp.Updates))
	for i, u := range resp.Updates {
		leaves[i] = archive.LeafHash(e.server.codec.MarshalKeyUpdate(u))
	}
	resp.Root = archive.MerkleRoot(leaves)
	return e.server.codec.MarshalCatchUpResponse(resp)
}

func TestCatchUpRangeCompensatingTamperNeverServedOrCached(t *testing.T) {
	// Regression for the cache-poisoning hole: a MITM answering the
	// range endpoint with compensating tampers passes every
	// aggregate-level check, so without the blinded batch admission gate
	// the forged updates would be returned with err == nil AND would
	// poison the verified cache permanently. The client must reject the
	// page, recover through the honest per-label path, and neither
	// return nor cache a tampered point.
	e := newEnv(t)
	labels := publishRun(t, e, 7)

	real := e.server.Handler()
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/catchup" {
			real.ServeHTTP(w, r)
			return
		}
		rec := httptest.NewRecorder()
		real.ServeHTTP(rec, r)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(tamperCompensating(t, e, rec.Body.Bytes()))
	}))
	defer proxy.Close()

	reg := obs.NewRegistry()
	c := NewClient(proxy.URL, e.set, e.key.Pub,
		WithHTTPClient(proxy.Client()), WithClientMetrics(reg))
	ups, err := c.CatchUp(context.Background(), labels)
	if err != nil {
		t.Fatalf("CatchUp: %v", err)
	}
	if len(ups) != len(labels) {
		t.Fatalf("got %d updates for %d labels", len(ups), len(labels))
	}
	for _, u := range ups {
		if !e.sc.VerifyUpdate(e.key.Pub, u) {
			t.Fatalf("CatchUp returned a tampered update for %s", u.Label)
		}
	}
	// Update() serves straight from the cache without re-verifying, so a
	// poisoned cache would keep handing out the forgery forever.
	for _, label := range labels {
		u, err := c.Update(context.Background(), label)
		if err != nil || !e.sc.VerifyUpdate(e.key.Pub, u) {
			t.Fatalf("cached update for %s is tampered (err=%v)", label, err)
		}
	}
	s := reg.Snapshot()
	if s.Counters["client.catchup_aggregate"] != 0 ||
		s.Counters["client.catchup_fallback"] != 1 ||
		s.Counters["client.catchup_batches"] != 1 {
		t.Fatalf("counters = aggregate %d fallback %d batches %d, want 0/1/1",
			s.Counters["client.catchup_aggregate"],
			s.Counters["client.catchup_fallback"],
			s.Counters["client.catchup_batches"])
	}
}

func TestCatchUpSparseLabelsBoundDownload(t *testing.T) {
	// Regression for the dense-range assumption: two wanted labels far
	// apart must NOT make the client download, verify and cache every
	// archived update between them. The page limit stays proportional to
	// the wanted labels, and the server's Total makes the client finish
	// the far label per-label instead of paging the whole span.
	e := newEnv(t)
	labels := publishRun(t, e, 199) // 200 epochs archived
	first, last := labels[0], labels[len(labels)-1]

	var mu sync.Mutex
	var limits []string
	updateReqs := 0
	real := e.server.Handler()
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		switch {
		case r.URL.Path == "/v1/catchup":
			limits = append(limits, r.URL.Query().Get("limit"))
		case strings.HasPrefix(r.URL.Path, "/v1/update/"):
			updateReqs++
		}
		mu.Unlock()
		real.ServeHTTP(w, r)
	}))
	defer proxy.Close()

	reg := obs.NewRegistry()
	c := NewClient(proxy.URL, e.set, e.key.Pub,
		WithHTTPClient(proxy.Client()), WithClientMetrics(reg))
	ups, err := c.CatchUp(context.Background(), []string{first, last})
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 2 || ups[0].Label != first || ups[1].Label != last {
		t.Fatalf("got %d updates (%v), want exactly [%s %s]", len(ups), ups, first, last)
	}
	mu.Lock()
	defer mu.Unlock()
	wantLimit := fmt.Sprint(catchupDensityFactor*2 + catchupDensitySlack)
	if len(limits) != 1 || limits[0] != wantLimit {
		t.Fatalf("catchup limits = %v, want one request with limit %s", limits, wantLimit)
	}
	if updateReqs != 1 {
		t.Fatalf("per-label requests = %d, want 1 (just the far label)", updateReqs)
	}
}

func TestCatchUpEmptyPageClaimingTotalFallsBack(t *testing.T) {
	// A canonically-encoded response with Total > 0 but zero delivered
	// updates claims records exist yet proves nothing about them. The
	// client must treat it as inconsistent and finish per-label — not
	// report the labels unpublished on the server's bare word.
	e := newEnv(t)
	labels := publishRun(t, e, 5)

	lie := e.server.codec.MarshalCatchUpResponse(wire.CatchUpResponse{
		Total:     len(labels),
		Aggregate: curve.Infinity(),
	})
	real := e.server.Handler()
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/catchup" {
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(lie)
			return
		}
		real.ServeHTTP(w, r)
	}))
	defer proxy.Close()

	reg := obs.NewRegistry()
	c := NewClient(proxy.URL, e.set, e.key.Pub,
		WithHTTPClient(proxy.Client()), WithClientMetrics(reg))
	ups, err := c.CatchUp(context.Background(), labels)
	if err != nil {
		t.Fatalf("CatchUp: %v (an empty page claiming Total>0 must not become ErrNotYetPublished)", err)
	}
	if len(ups) != len(labels) {
		t.Fatalf("got %d updates, want %d", len(ups), len(labels))
	}
	s := reg.Snapshot()
	if s.Counters["client.catchup_aggregate"] != 0 || s.Counters["client.catchup_fallback"] != 1 {
		t.Fatalf("counters = aggregate %d fallback %d, want 0/1",
			s.Counters["client.catchup_aggregate"], s.Counters["client.catchup_fallback"])
	}
}

package timeserver

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"timedrelease/internal/core"
	"timedrelease/internal/obs"
	"timedrelease/internal/params"
	"timedrelease/internal/timefmt"
	"timedrelease/internal/token"
	"timedrelease/internal/wire"
)

// ErrNotYetPublished is returned when the requested update's release
// instant has not arrived (or the server has not published it yet).
var ErrNotYetPublished = errors.New("timeserver: update not yet published")

// ErrBadUpdate is returned when a fetched update fails the
// self-authentication check against the pinned server key — e.g. a
// compromised or impersonated server.
var ErrBadUpdate = errors.New("timeserver: update failed verification against pinned server key")

// Client fetches and verifies key updates from a time server. The
// server's public key is pinned at construction (the trust anchor);
// every fetched update is verified before it is returned or cached, so a
// malicious transport can cause unavailability but never a wrong
// decryption key.
type Client struct {
	base        string
	http        *http.Client
	sc          *core.Scheme
	spub        core.ServerPublicKey
	codec       *wire.Codec
	noCache     bool
	noAggregate bool
	retry       RetryPolicy
	wallet      *token.Wallet // nil: no tokens attached (tokens.go)

	mu    sync.RWMutex
	cache map[string]core.KeyUpdate

	met clientMetrics
}

// clientMetrics are the client-side counters and latency histograms
// (names client.*; see docs/OBSERVABILITY.md). All nil until
// WithClientMetrics; obs types no-op on nil.
type clientMetrics struct {
	fetchNS          *obs.Histogram // HTTP round trip, per request (incl. retries)
	verifyNS         *obs.Histogram // decode + pairing verification
	cacheHit         *obs.Counter   // updates served from the local cache
	cacheMiss        *obs.Counter   // updates that needed a fetch
	catchupBatches   *obs.Counter   // batched CatchUp verifications
	catchupAggregate *obs.Counter   // range pages admitted (aggregate + blinded batch)
	catchupFallback  *obs.Counter   // aggregate/batch checks that fell back a level
	retries          *obs.Counter   // transport-level retry attempts
	catchupDegraded  *obs.Counter   // CatchUp calls returning a PartialError
	streamEvents     *obs.Counter   // verified updates delivered over /v1/stream
	streamReconnects *obs.Counter   // stream connections re-dialled after a disconnect
	tokensFetched    *obs.Counter   // tokens issued into the wallet
	tokenRedeemed    *obs.Counter   // gated requests admitted with a token
	tokenRejected    *obs.Counter   // tokens the server refused as spent (409)
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithHTTPClient substitutes the HTTP client (timeouts, transports).
func WithHTTPClient(h *http.Client) ClientOption {
	return func(c *Client) { c.http = h }
}

// WithScheme substitutes the core.Scheme the client verifies updates
// with. Sharing one scheme across many clients in a process shares its
// prepared-key and base-table caches — lock-free reads, single-flight
// builds (see docs/PERFORMANCE.md) — so N clients pay for one
// Precompute instead of N. Apply before WithClientMetrics, which
// instruments whatever scheme the client holds at that point.
func WithScheme(sc *core.Scheme) ClientOption {
	return func(c *Client) { c.sc = sc }
}

// WithClientMetrics instruments the client (and its embedded
// core.Scheme) against r: fetch and verification latencies, cache
// hits/misses, and catch-up batch fallbacks.
func WithClientMetrics(r *obs.Registry) ClientOption {
	return func(c *Client) {
		c.sc.Instrument(r)
		c.met = clientMetrics{
			fetchNS:          r.Histogram("client.fetch_ns"),
			verifyNS:         r.Histogram("client.verify_ns"),
			cacheHit:         r.Counter("client.cache_hit"),
			cacheMiss:        r.Counter("client.cache_miss"),
			catchupBatches:   r.Counter("client.catchup_batches"),
			catchupAggregate: r.Counter("client.catchup_aggregate"),
			catchupFallback:  r.Counter("client.catchup_fallback"),
			retries:          r.Counter("client.retries"),
			catchupDegraded:  r.Counter("client.catchup_degraded"),
			streamEvents:     r.Counter("client.stream_events"),
			streamReconnects: r.Counter("client.stream_reconnects"),
			tokensFetched:    r.Counter("client.tokens_fetched"),
			tokenRedeemed:    r.Counter("client.token_redeemed"),
			tokenRejected:    r.Counter("client.token_rejected"),
		}
	}
}

// WithoutAggregateCatchUp disables the /v1/catchup range fast path:
// CatchUp always fetches per label and batch-verifies, as a client of a
// pre-range server would. Useful for before/after benchmarking
// (cmd/treload's coldstart-batch mix) and for pinning down transport
// faults per label.
func WithoutAggregateCatchUp() ClientOption {
	return func(c *Client) { c.noAggregate = true }
}

// WithoutCache disables the verified-update cache: every Update and
// CatchUp hits the network and re-verifies. Useful for load generation
// (cmd/treload must exercise the server, not the client's map) and for
// memory-constrained receivers that trade CPU for space.
func WithoutCache() ClientOption {
	return func(c *Client) { c.noCache = true }
}

// NewClient returns a client for the server at baseURL, verifying all
// updates against the pinned public key spub.
func NewClient(baseURL string, set *params.Set, spub core.ServerPublicKey, opts ...ClientOption) *Client {
	c := &Client{
		base:  strings.TrimRight(baseURL, "/"),
		http:  &http.Client{Timeout: 30 * time.Second},
		sc:    core.NewScheme(set),
		spub:  spub,
		codec: wire.NewCodec(set),
		cache: make(map[string]core.KeyUpdate),
		retry: DefaultRetry,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// ServerPublicKey returns the pinned key.
func (c *Client) ServerPublicKey() core.ServerPublicKey { return c.spub }

// Update returns the verified update for label, from cache if possible.
func (c *Client) Update(ctx context.Context, label string) (core.KeyUpdate, error) {
	if u, ok := c.cached(label); ok {
		return u, nil
	}
	body, status, err := c.get(ctx, "/v1/update/"+label)
	if err != nil {
		return core.KeyUpdate{}, err
	}
	if status == http.StatusNotFound {
		return core.KeyUpdate{}, ErrNotYetPublished
	}
	if status != http.StatusOK {
		return core.KeyUpdate{}, fmt.Errorf("timeserver: unexpected status %d", status)
	}
	return c.verifyAndCache(label, body)
}

// Latest returns the newest verified update the server has published.
func (c *Client) Latest(ctx context.Context) (core.KeyUpdate, error) {
	body, status, err := c.get(ctx, "/v1/latest")
	if err != nil {
		return core.KeyUpdate{}, err
	}
	if status == http.StatusNotFound {
		return core.KeyUpdate{}, ErrNotYetPublished
	}
	if status != http.StatusOK {
		return core.KeyUpdate{}, fmt.Errorf("timeserver: unexpected status %d", status)
	}
	u, err := c.codec.UnmarshalKeyUpdate(body)
	if err != nil {
		return core.KeyUpdate{}, err
	}
	return c.verifyAndCache(u.Label, body)
}

// Labels returns all published labels.
func (c *Client) Labels(ctx context.Context) ([]string, error) {
	body, status, err := c.get(ctx, "/v1/labels")
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("timeserver: unexpected status %d", status)
	}
	if len(body) == 0 {
		return nil, nil
	}
	return strings.Split(string(body), "\n"), nil
}

// WaitForRelease blocks until the update for label is published (polling
// with the given interval), the context is cancelled, or a fetched
// update fails verification. This is the receiver "waiting in alert" of
// paper §3.
func (c *Client) WaitForRelease(ctx context.Context, label string, poll time.Duration) (core.KeyUpdate, error) {
	if poll <= 0 {
		poll = time.Second
	}
	for {
		u, err := c.Update(ctx, label)
		switch {
		case err == nil:
			return u, nil
		case errors.Is(err, ErrNotYetPublished):
			// keep waiting
		default:
			return core.KeyUpdate{}, err
		}
		timer := time.NewTimer(poll)
		select {
		case <-ctx.Done():
			timer.Stop()
			return core.KeyUpdate{}, ctx.Err()
		case <-timer.C:
		}
	}
}

// cached returns the update for label from the verified cache,
// maintaining the hit/miss counters. Always a miss with WithoutCache.
func (c *Client) cached(label string) (core.KeyUpdate, bool) {
	if c.noCache {
		c.met.cacheMiss.Inc()
		return core.KeyUpdate{}, false
	}
	c.mu.RLock()
	u, ok := c.cache[label]
	c.mu.RUnlock()
	if ok {
		c.met.cacheHit.Inc()
	} else {
		c.met.cacheMiss.Inc()
	}
	return u, ok
}

// store caches a verified update (no-op with WithoutCache).
func (c *Client) store(u core.KeyUpdate) {
	if c.noCache {
		return
	}
	c.mu.Lock()
	c.cache[u.Label] = u
	c.mu.Unlock()
}

// verifyAndCache decodes, verifies and caches an update body.
func (c *Client) verifyAndCache(label string, body []byte) (core.KeyUpdate, error) {
	defer c.met.verifyNS.Since(time.Now())
	u, err := c.codec.UnmarshalKeyUpdate(body)
	if err != nil {
		return core.KeyUpdate{}, err
	}
	if u.Label != label {
		return core.KeyUpdate{}, fmt.Errorf("timeserver: server returned update for %q, asked for %q", u.Label, label)
	}
	if !c.sc.VerifyUpdate(c.spub, u) {
		return core.KeyUpdate{}, ErrBadUpdate
	}
	c.store(u)
	return u, nil
}

// CachedLen reports how many verified updates the client holds (update
// fetches are amortised across any number of ciphertexts — experiment
// E8).
func (c *Client) CachedLen() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.cache)
}

// get performs one logical fetch under the client's retry policy:
// transport errors, truncated bodies and transient statuses (429/5xx)
// are retried with capped exponential backoff and jitter; definitive
// answers (200, 404, …) are returned as-is on the attempt that got
// them. The caller's ctx bounds the whole operation, including
// backoff sleeps; the policy's PerAttempt bounds each try.
func (c *Client) get(ctx context.Context, path string) ([]byte, int, error) {
	return c.getLimited(ctx, path, 1<<20)
}

// getLimited is get with an explicit response-body cap: single-update
// responses stay under the default 1 MiB, but a catch-up range of 64k
// updates is legitimately tens of MiB.
func (c *Client) getLimited(ctx context.Context, path string, bodyLimit int64) ([]byte, int, error) {
	return c.request(ctx, http.MethodGet, path, nil, bodyLimit, nil)
}

// getLimitedHeader is getLimited with extra request headers (token
// redemption attaches the credential this way; see tokens.go).
func (c *Client) getLimitedHeader(ctx context.Context, path string, bodyLimit int64, hdr http.Header) ([]byte, int, error) {
	return c.request(ctx, http.MethodGet, path, nil, bodyLimit, hdr)
}

// post sends a request body and returns the response under the default
// body cap, with the same retry policy as get. Callers must only post
// idempotent payloads — token issuance is (blind-signing the same
// points twice yields the same signatures).
func (c *Client) post(ctx context.Context, path string, payload []byte) ([]byte, int, error) {
	return c.request(ctx, http.MethodPost, path, payload, 1<<20, nil)
}

// request is the transport core behind get/getLimited/post: the retry
// loop with capped exponential backoff over single doOnce attempts.
func (c *Client) request(ctx context.Context, method, path string, payload []byte, bodyLimit int64, hdr http.Header) ([]byte, int, error) {
	defer c.met.fetchNS.Since(time.Now())
	p := c.retry
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	var lastErr error
	for attempt := 1; attempt <= p.MaxAttempts; attempt++ {
		if attempt > 1 {
			c.met.retries.Inc()
			if err := sleepCtx(ctx, p.backoff(attempt-1)); err != nil {
				break // ctx cancelled while backing off
			}
		}
		body, status, err := c.doOnce(ctx, method, path, payload, p.PerAttempt, bodyLimit, hdr)
		if err == nil {
			if retryableStatus(status) && attempt < p.MaxAttempts {
				lastErr = fmt.Errorf("timeserver: %s: transient status %d", path, status)
				continue
			}
			return body, status, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break // the caller gave up; do not mask that as "server down"
		}
	}
	if p.MaxAttempts > 1 {
		return nil, 0, fmt.Errorf("timeserver: %s: giving up after %d attempts: %w", path, p.MaxAttempts, lastErr)
	}
	return nil, 0, lastErr
}

// doOnce is a single HTTP attempt.
func (c *Client) doOnce(ctx context.Context, method, path string, payload []byte, timeout time.Duration, bodyLimit int64, hdr http.Header) ([]byte, int, error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	var reqBody io.Reader
	if payload != nil {
		reqBody = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, reqBody)
	if err != nil {
		return nil, 0, fmt.Errorf("timeserver: building request: %w", err)
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, 0, fmt.Errorf("timeserver: %s: %w", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, bodyLimit))
	if err != nil {
		return nil, 0, fmt.Errorf("timeserver: reading response: %w", err)
	}
	return body, resp.StatusCode, nil
}

// FetchBootstrap retrieves (parameters, server public key, schedule)
// from an untrusted-transport server for first-time setup. The caller
// must authenticate the returned key out of band before pinning it —
// exactly like a CA root.
func FetchBootstrap(ctx context.Context, baseURL string, h *http.Client) (*params.Set, core.ServerPublicKey, timefmt.Schedule, error) {
	if h == nil {
		h = &http.Client{Timeout: 30 * time.Second}
	}
	base := strings.TrimRight(baseURL, "/")
	get := func(path string) ([]byte, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
		if err != nil {
			return nil, err
		}
		resp, err := h.Do(req)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("timeserver: %s returned %d", path, resp.StatusCode)
		}
		return io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	}

	rawParams, err := get("/v1/params")
	if err != nil {
		return nil, core.ServerPublicKey{}, timefmt.Schedule{}, fmt.Errorf("timeserver: fetching params: %w", err)
	}
	set, err := params.Unmarshal(rawParams)
	if err != nil {
		return nil, core.ServerPublicKey{}, timefmt.Schedule{}, err
	}
	rawKey, err := get("/v1/server-key")
	if err != nil {
		return nil, core.ServerPublicKey{}, timefmt.Schedule{}, fmt.Errorf("timeserver: fetching server key: %w", err)
	}
	spub, err := wire.NewCodec(set).UnmarshalServerPublicKey(rawKey)
	if err != nil {
		return nil, core.ServerPublicKey{}, timefmt.Schedule{}, err
	}
	rawSched, err := get("/v1/schedule")
	if err != nil {
		return nil, core.ServerPublicKey{}, timefmt.Schedule{}, fmt.Errorf("timeserver: fetching schedule: %w", err)
	}
	d, err := time.ParseDuration(strings.TrimSpace(string(rawSched)))
	if err != nil {
		return nil, core.ServerPublicKey{}, timefmt.Schedule{}, fmt.Errorf("timeserver: parsing schedule: %w", err)
	}
	sched, err := timefmt.NewSchedule(d)
	if err != nil {
		return nil, core.ServerPublicKey{}, timefmt.Schedule{}, err
	}
	return set, spub, sched, nil
}

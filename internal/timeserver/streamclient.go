package timeserver

import (
	"bufio"
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"time"

	"timedrelease/internal/core"
	"timedrelease/internal/token"
)

// ErrStreamUnsupported reports a server without the /v1/stream
// endpoint (pre-stream deployments answer 404 for the unknown route).
// WaitFor treats it as a signal to fall back to long-polling.
var ErrStreamUnsupported = errors.New("timeserver: server does not support /v1/stream")

// errStopStream is the sentinel a StreamUpdates callback returns to end
// the stream cleanly once it has what it wanted.
var errStopStream = errors.New("timeserver: stop stream")

// streamHTTP returns an HTTP client suitable for a long-lived stream:
// the configured client's transport (so tests and fault injection see
// stream requests too) without its overall request timeout, which
// would sever a healthy stream mid-flight.
func (c *Client) streamHTTP() *http.Client {
	return &http.Client{Transport: c.http.Transport, Jar: c.http.Jar}
}

// StreamUpdates opens ONE /v1/stream connection and invokes fn for
// every pushed update until the stream ends, the context is cancelled,
// or fn returns an error (errStopStream/fn's own). from != "" replays
// the archive from that label before going live. Every event is
// decoded, verified against the pinned server key and cached BEFORE fn
// sees it — a malicious relay or transport can starve the stream but
// never inject a wrong update (ErrBadUpdate aborts immediately).
//
// It returns the number of verified updates delivered. A nil error
// means the server ended the stream deliberately (drain or shed);
// transport errors mean a disconnect. Callers wanting automatic
// reconnection use WaitFor or a Relay.
func (c *Client) StreamUpdates(ctx context.Context, from string, fn func(core.KeyUpdate) error) (int, error) {
	path := c.base + "/v1/stream"
	if from != "" {
		path += "?from=" + url.QueryEscape(from)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, path, nil)
	if err != nil {
		return 0, fmt.Errorf("timeserver: building stream request: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	// A gated server admits one stream connection per token
	// (docs/TOKENS.md); every dial — including each WaitFor
	// reconnect — spends one from the wallet.
	if c.wallet != nil {
		hdr, err := c.popTokenHeader()
		if err != nil {
			return 0, err
		}
		req.Header.Set(TokenHeader, hdr)
	}
	resp, err := c.streamHTTP().Do(req)
	if err != nil {
		return 0, fmt.Errorf("timeserver: /v1/stream: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		if c.wallet != nil {
			c.met.tokenRedeemed.Inc()
		}
	case http.StatusNotFound:
		return 0, ErrStreamUnsupported
	case http.StatusUnauthorized:
		return 0, ErrTokenRequired
	case http.StatusConflict:
		c.met.tokenRejected.Inc()
		return 0, token.ErrDoubleSpend
	default:
		return 0, fmt.Errorf("timeserver: /v1/stream: unexpected status %d", resp.StatusCode)
	}

	delivered := 0
	br := bufio.NewReaderSize(resp.Body, 4096)
	var data []byte
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			// EOF after a drain/shed comment is a deliberate server close;
			// either way the stream is over and the caller decides whether
			// to reconnect.
			return delivered, err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "": // event boundary
			if len(data) == 0 {
				continue
			}
			raw, err := base64.StdEncoding.DecodeString(string(data))
			data = data[:0]
			if err != nil {
				return delivered, fmt.Errorf("timeserver: malformed stream event: %w", err)
			}
			start := time.Now()
			u, err := c.codec.UnmarshalKeyUpdate(raw)
			if err != nil {
				return delivered, fmt.Errorf("timeserver: stream event: %w", err)
			}
			if !c.sc.VerifyUpdate(c.spub, u) {
				c.met.verifyNS.Since(start)
				return delivered, ErrBadUpdate
			}
			c.met.verifyNS.Since(start)
			c.store(u)
			c.met.streamEvents.Inc()
			delivered++
			if err := fn(u); err != nil {
				if errors.Is(err, errStopStream) {
					return delivered, nil
				}
				return delivered, err
			}
		case strings.HasPrefix(line, ":"): // comment: ready/keepalive/drain/dropped
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimSpace(line[len("data:"):])...)
		default: // unknown SSE field — ignore for forward compatibility
		}
	}
}

// WaitFor blocks until the update for label is released, preferring the
// server's push stream and degrading gracefully:
//
//   - a 404 on /v1/stream (pre-stream server) falls back to the
//     long-poll endpoint;
//   - a mid-stream disconnect or shed reconnects under the client's
//     RetryPolicy, with a direct /v1/update fetch between attempts so
//     an update published while disconnected is caught up, never missed;
//   - any verification failure aborts immediately with ErrBadUpdate.
//
// As long as the server stays reachable WaitFor waits indefinitely
// (bounded only by ctx) — that is what "waiting in alert" means; it
// gives up per the retry policy only after MaxAttempts consecutive
// cycles in which the server could not be reached at all.
func (c *Client) WaitFor(ctx context.Context, label string) (core.KeyUpdate, error) {
	if u, ok := c.cached(label); ok {
		return u, nil
	}
	p := c.retry
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	fails := 0
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			c.met.streamReconnects.Inc()
			if err := sleepCtx(ctx, p.backoff(min(fails, 16))); err != nil {
				return core.KeyUpdate{}, err
			}
		}
		var got core.KeyUpdate
		found := false
		n, err := c.StreamUpdates(ctx, label, func(u core.KeyUpdate) error {
			if u.Label == label {
				got, found = u, true
				return errStopStream
			}
			return nil
		})
		if found {
			return got, nil
		}
		switch {
		case errors.Is(err, ErrStreamUnsupported):
			return c.WaitForReleaseLongPoll(ctx, label)
		case errors.Is(err, ErrBadUpdate):
			return core.KeyUpdate{}, err
		case errors.Is(err, ErrTokenRequired):
			// A gated server and nothing to pay with: reconnecting
			// cannot help, and the long-poll fallback would quietly
			// bypass the gate the operator configured. Surface it.
			return core.KeyUpdate{}, err
		}
		if ctx.Err() != nil {
			return core.KeyUpdate{}, ctx.Err()
		}
		// Catch up across the disconnect: published while we were away?
		u, uerr := c.Update(ctx, label)
		switch {
		case uerr == nil:
			return u, nil
		case errors.Is(uerr, ErrNotYetPublished):
			// The server is reachable and the update simply does not exist
			// yet — that is progress, keep waiting.
			fails = 0
		case errors.Is(uerr, ErrBadUpdate):
			return core.KeyUpdate{}, uerr
		default:
			if n > 0 {
				fails = 0
			}
			fails++
			if fails >= p.MaxAttempts {
				return core.KeyUpdate{}, fmt.Errorf("timeserver: wait for %s: giving up after %d unreachable cycles: %w", label, fails, uerr)
			}
		}
	}
}

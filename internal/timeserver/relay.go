// The stateless fan-out relay: serving capacity scales horizontally
// because updates are self-authenticating. A relay holds NO secret
// material — it subscribes to an upstream server (or another relay)
// through the verifying client, checks ê(sG, H1(T)) = ê(G, I_T) ONCE
// per update on ingest, and re-serves the identical public surface
// (/v1/stream, /v1/wait, /v1/update, /v1/catchup, …) from its own
// archive and broadcast hub. A compromised relay can withhold updates
// (its consumers fail over) but can never forge one: every downstream
// client still verifies against the same pinned server key. This is
// the paper's GPS analogy made horizontal — anyone may rebroadcast the
// signal, because trust rides in the signal itself.
package timeserver

import (
	"context"
	"errors"
	"net/http"
	"sync/atomic"
	"time"

	"timedrelease/internal/archive"
	"timedrelease/internal/core"
	"timedrelease/internal/obs"
	"timedrelease/internal/params"
	"timedrelease/internal/timefmt"
	"timedrelease/internal/wire"
)

// Relay subscribes upstream and fans updates out downstream. Zero
// signing capability by construction: it is built from a verifying
// Client and a read-only serving surface, with nothing in between that
// could mint an update.
type Relay struct {
	set   *params.Set
	spub  core.ServerPublicKey
	sched timefmt.Schedule
	arch  archive.Archive
	codec *wire.Codec
	hub   *hub
	up    *Client
	retry RetryPolicy

	served   atomic.Int64
	ingested atomic.Int64
	draining atomic.Bool

	reg         *obs.Registry
	log         *obs.Logger
	cIngested   *obs.Counter
	cReconnects *obs.Counter
	cSyncs      *obs.Counter
}

// RelayOption configures a Relay.
type RelayOption func(*Relay)

// RelayWithArchive substitutes the relay's local update store (default:
// in-memory). A durable archive lets a restarted relay serve its
// backlog before the first upstream byte arrives.
func RelayWithArchive(a archive.Archive) RelayOption {
	return func(r *Relay) { r.arch = a }
}

// RelayWithMetrics instruments the relay: its serving surface carries
// the same timeserver.* metric names as an origin server (same
// protocol, same meanings), plus relay.* ingest counters.
func RelayWithMetrics(reg *obs.Registry) RelayOption {
	return func(r *Relay) {
		r.reg = reg
		r.cIngested = reg.Counter("relay.ingested")
		r.cReconnects = reg.Counter("relay.reconnects")
		r.cSyncs = reg.Counter("relay.catchup_syncs")
	}
}

// RelayWithLogger emits structured events (ingest, reconnect) to l.
func RelayWithLogger(l *obs.Logger) RelayOption {
	return func(r *Relay) { r.log = l }
}

// RelayWithRetry substitutes the reconnect backoff policy (only its
// BaseDelay/MaxDelay are used — a relay is a daemon and never gives
// up on its upstream).
func RelayWithRetry(p RetryPolicy) RelayOption {
	return func(r *Relay) { r.retry = p }
}

// NewRelay builds a relay over an upstream verifying client. The
// client's pinned server key is the relay's trust anchor and the key
// its own consumers should pin too — the relay introduces no key of
// its own.
func NewRelay(upstream *Client, sched timefmt.Schedule, opts ...RelayOption) *Relay {
	r := &Relay{
		set:   upstream.codec.Set,
		spub:  upstream.spub,
		sched: sched,
		arch:  archive.NewMemory(),
		codec: upstream.codec,
		hub:   newHub(),
		up:    upstream,
		retry: DefaultRetry,
	}
	for _, o := range opts {
		o(r)
	}
	r.hub.instrument(r.reg)
	return r
}

// ServerPublicKey returns the upstream key this relay verifies against
// (and the one its consumers should pin).
func (r *Relay) ServerPublicKey() core.ServerPublicKey { return r.spub }

// Ingested returns how many verified updates this relay has taken in.
func (r *Relay) Ingested() int64 { return r.ingested.Load() }

// Served returns the number of downstream HTTP requests served.
func (r *Relay) Served() int64 { return r.served.Load() }

// Subscribers returns how many downstream connections are parked on
// the relay's hub.
func (r *Relay) Subscribers() int { return r.hub.count() }

// Metrics returns the registry passed to RelayWithMetrics, or nil.
func (r *Relay) Metrics() *obs.Registry { return r.reg }

// Drain moves the relay into shutdown mode exactly like Server.Drain:
// streams get a terminal comment, long-polls answer 503.
func (r *Relay) Drain() {
	r.draining.Store(true)
	r.hub.drain()
}

// Handler returns the relay's downstream HTTP API — the same public
// surface an origin server exposes, served from the relay's own
// archive and hub. Downstream clients (and further relays) use it
// unchanged; nothing in it can reach a signing key because the relay
// holds none.
func (r *Relay) Handler() http.Handler {
	view := &publicView{
		set:      r.set,
		pub:      r.spub,
		sched:    r.sched,
		arch:     r.arch,
		codec:    r.codec,
		served:   &r.served,
		hub:      r.hub,
		draining: &r.draining,
		reg:      r.reg,
		archHit:  r.reg.Counter("timeserver.archive_hit"),
		archMiss: r.reg.Counter("timeserver.archive_miss"),
	}
	return view.routes()
}

// ingest stores one verified update (verification already happened in
// the upstream client — exactly once per update) and broadcasts it
// downstream: one encode, one hub pass, like an origin publish.
func (r *Relay) ingest(u core.KeyUpdate) bool {
	if _, ok := r.arch.Get(u.Label); ok {
		return false
	}
	if err := r.arch.Put(u); err != nil {
		r.log.Event("relay-archive-error", "label", u.Label, "err", err.Error())
		return false
	}
	t, err := r.sched.ParseLabel(u.Label)
	if err != nil {
		// Not an epoch of this schedule: archived and servable by label,
		// but unbroadcastable — the stream is ordered by schedule index.
		r.log.Event("relay-offschedule-label", "label", u.Label)
		r.ingested.Add(1)
		r.cIngested.Inc()
		return true
	}
	body := r.codec.MarshalKeyUpdate(u)
	r.hub.encodes.Add(1)
	r.hub.publish(r.sched.Index(t), u.Label, body)
	r.ingested.Add(1)
	r.cIngested.Inc()
	return true
}

// syncOnce converges the local archive on the upstream one via the
// aggregate catch-up path: list upstream labels, CatchUp the missing
// ones (one range request + two pairing products however many there
// are), ingest everything verified. A degraded catch-up is progress,
// not failure — the remainder is retried next cycle.
func (r *Relay) syncOnce(ctx context.Context) (int, error) {
	labels, err := r.up.Labels(ctx)
	if err != nil {
		return 0, err
	}
	var missing []string
	for _, l := range labels {
		if _, ok := r.arch.Get(l); !ok {
			missing = append(missing, l)
		}
	}
	if len(missing) == 0 {
		return 0, nil
	}
	r.cSyncs.Inc()
	ups, err := r.up.CatchUp(ctx, missing)
	var pe *PartialError
	if err != nil && !errors.As(err, &pe) {
		return 0, err
	}
	n := 0
	for _, u := range ups {
		if r.ingest(u) {
			n++
		}
	}
	if n > 0 {
		r.log.Event("relay-sync", "ingested", n)
	}
	return n, nil
}

// Sync converges the relay's archive on its upstream once and returns
// how many updates were ingested. It is the deterministic alternative
// to Run: a driver (tests, cron-style operation) calls it at moments of
// its choosing instead of letting the relay ride the push stream.
func (r *Relay) Sync(ctx context.Context) (int, error) {
	return r.syncOnce(ctx)
}

// nextFrom returns the stream resume point: the label after the newest
// archived update. The from-replay is what closes the race between
// syncOnce's snapshot and the stream's server-side subscription — an
// update published in that window is replayed from the upstream
// archive, never missed. On an empty local archive it asks for
// everything (epoch 0): ingest dedupes against what syncOnce got.
func (r *Relay) nextFrom() string {
	labels := r.arch.Labels()
	if len(labels) == 0 {
		return r.sched.LabelAt(0)
	}
	t, err := r.sched.ParseLabel(labels[len(labels)-1])
	if err != nil {
		return r.sched.LabelAt(0)
	}
	return r.sched.LabelAt(r.sched.Index(t) + 1)
}

// Run ingests from upstream until ctx is cancelled: catch up over the
// gap (aggregate path), then ride the upstream push stream, and on any
// disconnect back off (jittered, capped) and converge again. A relay
// never gives up — it is a daemon whose whole job is to be there when
// the upstream comes back. Against a pre-stream upstream it degrades
// to periodic catch-up polling.
func (r *Relay) Run(ctx context.Context) error {
	p := r.retry
	if p.BaseDelay <= 0 {
		p = DefaultRetry
	}
	consecutive := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		synced, serr := r.syncOnce(ctx)
		streamed := 0
		var err error = serr
		if serr == nil {
			_, err = r.up.StreamUpdates(ctx, r.nextFrom(), func(u core.KeyUpdate) error {
				if r.ingest(u) {
					streamed++
				}
				return nil
			})
			if errors.Is(err, ErrStreamUnsupported) {
				// Pre-stream upstream: the sync above is the whole cycle;
				// poll again after a schedule-shaped pause.
				err = nil
				if serr2 := sleepCtx(ctx, min(r.sched.Granularity/2, 5*time.Second)); serr2 != nil {
					return serr2
				}
			}
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if synced > 0 || streamed > 0 {
			consecutive = 0
		} else {
			consecutive++
		}
		if err != nil {
			r.cReconnects.Inc()
			r.log.Event("relay-reconnect", "err", err.Error())
			if serr2 := sleepCtx(ctx, p.backoff(min(consecutive, 16))); serr2 != nil {
				return serr2
			}
		}
	}
}

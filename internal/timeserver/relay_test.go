package timeserver

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"timedrelease/internal/core"
	"timedrelease/internal/faulthttp"
)

// relayEnv stacks a relay on an origin env: origin → relay → downstream
// client, all verifying against the origin key.
type relayEnv struct {
	*env
	relay  *Relay
	rts    *httptest.Server
	down   *Client
	cancel context.CancelFunc
	done   chan error
}

func newRelayEnv(t *testing.T) *relayEnv {
	t.Helper()
	e := newEnv(t)
	up := NewClient(e.ts.URL, e.set, e.key.Pub,
		WithHTTPClient(e.ts.Client()),
		WithRetry(RetryPolicy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond}))
	relay := NewRelay(up, e.sched,
		RelayWithRetry(RetryPolicy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond}))
	rts := httptest.NewServer(relay.Handler())
	t.Cleanup(rts.Close)
	down := NewClient(rts.URL, e.set, e.key.Pub, WithHTTPClient(rts.Client()))

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- relay.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("relay.Run did not return after cancel")
		}
	})
	return &relayEnv{env: e, relay: relay, rts: rts, down: down, cancel: cancel, done: done}
}

func TestRelayServesBacklogAndLiveUpdates(t *testing.T) {
	e := newEnv(t)
	// Backlog exists BEFORE the relay starts: it must converge via the
	// aggregate catch-up path, then ride the stream for live updates.
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	backlog := e.sched.Label(e.clock.Now())

	re := &relayEnv{env: e}
	up := NewClient(e.ts.URL, e.set, e.key.Pub, WithHTTPClient(e.ts.Client()))
	re.relay = NewRelay(up, e.sched)
	re.rts = httptest.NewServer(re.relay.Handler())
	t.Cleanup(re.rts.Close)
	re.down = NewClient(re.rts.URL, e.set, e.key.Pub, WithHTTPClient(re.rts.Client()))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go re.relay.Run(ctx)

	// Backlog served downstream (poll: sync is asynchronous).
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	u, err := re.down.WaitFor(dctx, backlog)
	if err != nil {
		t.Fatalf("downstream backlog fetch: %v", err)
	}
	if u.Label != backlog || !e.sc.VerifyUpdate(e.key.Pub, u) {
		t.Fatal("relayed backlog update invalid")
	}

	// A live publish at the origin flows through the relay's stream.
	e.clock.Advance(time.Minute)
	next := e.sched.Label(e.clock.Now())
	got := make(chan error, 1)
	go func() {
		u, err := re.down.WaitFor(dctx, next)
		if err == nil && (u.Label != next || !e.sc.VerifyUpdate(e.key.Pub, u)) {
			err = errors.New("relayed live update invalid")
		}
		got <- err
	}()
	waitSubscribers(t, re.relay.Subscribers, 1)
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	if err := <-got; err != nil {
		t.Fatalf("downstream live delivery: %v", err)
	}
	if re.relay.Ingested() < 2 {
		t.Fatalf("relay ingested %d updates, want ≥ 2", re.relay.Ingested())
	}
}

func TestRelayIngestIsOneEncodeOnePass(t *testing.T) {
	// The relay re-broadcast keeps the origin's publish contract: one
	// ingested update does one wire encode and one registry pass no
	// matter how many downstream subscribers are parked.
	re := newRelayEnv(t)
	const subs = 6
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < subs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewClient(re.rts.URL, re.set, re.key.Pub, WithHTTPClient(re.rts.Client()))
			c.StreamUpdates(ctx, "", func(core.KeyUpdate) error { return errStopStream })
		}()
	}
	waitSubscribers(t, re.relay.Subscribers, subs)

	encodes, passes := re.relay.hub.encodes.Load(), re.relay.hub.passes.Load()
	if err := re.server.PublishLabel(re.sched.Label(re.clock.Now())); err != nil {
		t.Fatal(err)
	}
	wg.Wait() // every downstream subscriber got the relayed update
	if d := re.relay.hub.encodes.Load() - encodes; d != 1 {
		t.Fatalf("relay ingest did %d encodes for %d subscribers, want 1", d, subs)
	}
	if d := re.relay.hub.passes.Load() - passes; d != 1 {
		t.Fatalf("relay ingest did %d passes for %d subscribers, want 1", d, subs)
	}
}

func TestRelayConvergesAfterUpstreamOutage(t *testing.T) {
	// Cut every upstream connection for a while; once the upstream is
	// reachable again the relay must converge on the missed updates via
	// catch-up and resume serving them downstream.
	e := newEnv(t)
	ft := faulthttp.New(e.ts.Client().Transport)
	up := NewClient(e.ts.URL, e.set, e.key.Pub,
		WithHTTPClient(ft.Client()),
		WithRetry(NoRetry)) // fail fast; the relay loop owns reconnection
	relay := NewRelay(up, e.sched,
		RelayWithRetry(RetryPolicy{BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond}))
	rts := httptest.NewServer(relay.Handler())
	t.Cleanup(rts.Close)
	down := NewClient(rts.URL, e.set, e.key.Pub, WithHTTPClient(rts.Client()))

	// Outage first: the first several upstream requests all die.
	outage := &faulthttp.Rule{From: 1, To: 6, Err: errors.New("upstream down")}
	ft.Add(outage)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go relay.Run(ctx)

	// Published during the outage.
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	label := e.sched.Label(e.clock.Now())

	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	u, err := down.WaitFor(dctx, label)
	if err != nil {
		t.Fatalf("downstream after outage: %v", err)
	}
	if u.Label != label || !e.sc.VerifyUpdate(e.key.Pub, u) {
		t.Fatal("post-outage relayed update invalid")
	}
}

func TestRelayBootstrapMatchesOrigin(t *testing.T) {
	// A downstream consumer can bootstrap from the relay alone and gets
	// the ORIGIN's parameters, key and schedule — the relay adds nothing.
	re := newRelayEnv(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	set, spub, sched, err := FetchBootstrap(ctx, re.rts.URL, re.rts.Client())
	if err != nil {
		t.Fatalf("bootstrap via relay: %v", err)
	}
	if set.Name != re.set.Name {
		t.Fatalf("relay served params %q, origin has %q", set.Name, re.set.Name)
	}
	if !re.set.Curve.Equal(spub.SG, re.key.Pub.SG) {
		t.Fatal("relay served a different server key than the origin")
	}
	if sched.Granularity != re.sched.Granularity {
		t.Fatalf("relay schedule %v, origin %v", sched.Granularity, re.sched.Granularity)
	}
}

func TestRelayHoldsNoSecretAndCannotForge(t *testing.T) {
	// A downstream client pinned to a DIFFERENT key must reject every
	// update the relay serves: the relay cannot vouch for anything, only
	// carry self-authenticating updates.
	re := newRelayEnv(t)
	if err := re.server.PublishLabel(re.sched.Label(re.clock.Now())); err != nil {
		t.Fatal(err)
	}
	wrong, err := re.sc.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	skeptic := NewClient(re.rts.URL, re.set, wrong.Pub,
		WithHTTPClient(re.rts.Client()), WithRetry(NoRetry))

	// Wait until the relay has the update, then ask for it with the
	// wrong pin.
	deadline := time.Now().Add(10 * time.Second)
	for re.relay.Ingested() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("relay never ingested the update")
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := skeptic.Update(ctx, re.sched.Label(re.clock.Now())); !errors.Is(err, ErrBadUpdate) {
		t.Fatalf("differently-pinned client accepted relayed update: err=%v, want ErrBadUpdate", err)
	}
}

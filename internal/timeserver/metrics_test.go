package timeserver

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"timedrelease/internal/core"
	"timedrelease/internal/obs"
	"timedrelease/internal/params"
	"timedrelease/internal/timefmt"
)

// TestMetricsEndToEnd drives an instrumented server + client through
// publish, fetch, cache hit, 404 and catch-up, and asserts the
// advertised metric names (docs/OBSERVABILITY.md) move as documented.
func TestMetricsEndToEnd(t *testing.T) {
	set := params.MustPreset("Test160")
	sc := core.NewScheme(set)
	key, err := sc.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	sched := timefmt.MustSchedule(time.Minute)
	clock := &fakeClock{t: time.Date(2026, 8, 6, 12, 0, 30, 0, time.UTC)}
	var events bytes.Buffer
	sreg := obs.NewRegistry()
	srv := NewServer(set, key, sched,
		WithClock(clock.Now), WithMetrics(sreg), WithLogger(obs.NewLogger(&events)))
	ts := newTestHTTP(t, srv)
	creg := obs.NewRegistry()
	client := NewClient(ts.URL, set, key.Pub, WithHTTPClient(ts.Client()), WithClientMetrics(creg))

	if _, err := srv.PublishUpTo(clock.Now()); err != nil {
		t.Fatal(err)
	}
	clock.Advance(3 * time.Minute)
	if _, err := srv.PublishUpTo(clock.Now()); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	label := sched.Label(clock.Now())
	if _, err := client.Update(ctx, label); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Update(ctx, label); err != nil { // cache hit
		t.Fatal(err)
	}
	if _, err := client.Update(ctx, sched.Next(clock.Now())); err == nil { // archive miss
		t.Fatal("future label must fail")
	}
	labels, err := client.Labels(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.CatchUp(ctx, labels); err != nil {
		t.Fatal(err)
	}

	s := sreg.Snapshot()
	if got := s.Counters["timeserver.published"]; got != 4 {
		t.Fatalf("timeserver.published = %d, want 4", got)
	}
	if s.Histograms["timeserver.publish_ns"].Count != 4 {
		t.Fatalf("publish_ns count = %d, want 4", s.Histograms["timeserver.publish_ns"].Count)
	}
	// update endpoint: 2 uncached client fetches (one a 404); catch-up
	// goes through the range endpoint instead.
	if got := s.Counters["timeserver.requests.update"]; got < 2 {
		t.Fatalf("timeserver.requests.update = %d, want ≥ 2", got)
	}
	if got := s.Counters["timeserver.requests.catchup"]; got != 1 {
		t.Fatalf("timeserver.requests.catchup = %d, want 1", got)
	}
	if s.Counters["timeserver.archive_hit"] < 1 || s.Counters["timeserver.archive_miss"] != 1 {
		t.Fatalf("archive hit/miss = %d/%d, want ≥1/1",
			s.Counters["timeserver.archive_hit"], s.Counters["timeserver.archive_miss"])
	}
	if s.Histograms["timeserver.request_ns.update"].Count != s.Counters["timeserver.requests.update"] {
		t.Fatal("per-endpoint histogram count must match the request counter")
	}
	if _, ok := s.Gauges["parallel.max_workers"]; !ok {
		t.Fatal("parallel pool gauges missing from server registry")
	}

	c := creg.Snapshot()
	// Hits: the repeated Update, plus the already-cached label in the
	// catch-up partition.
	if c.Counters["client.cache_hit"] != 2 {
		t.Fatalf("client.cache_hit = %d, want 2", c.Counters["client.cache_hit"])
	}
	// Misses: first fetch, 404 fetch, catch-up partition over 4 labels
	// (1 already cached → 3 misses there).
	if c.Counters["client.cache_miss"] < 4 {
		t.Fatalf("client.cache_miss = %d, want ≥ 4", c.Counters["client.cache_miss"])
	}
	// The catch-up rode the aggregate fast path: one range response,
	// one pairing product, no per-label batch and no fallback.
	if c.Counters["client.catchup_aggregate"] != 1 || c.Counters["client.catchup_fallback"] != 0 {
		t.Fatalf("catchup aggregate/fallback = %d/%d, want 1/0",
			c.Counters["client.catchup_aggregate"], c.Counters["client.catchup_fallback"])
	}
	if c.Counters["client.catchup_batches"] != 0 {
		t.Fatalf("catchup_batches = %d, want 0 (aggregate path)", c.Counters["client.catchup_batches"])
	}
	if c.Histograms["client.verify_ns"].Count < 2 || c.Histograms["client.fetch_ns"].Count < 3 {
		t.Fatalf("client latency histograms undersampled: verify=%d fetch=%d",
			c.Histograms["client.verify_ns"].Count, c.Histograms["client.fetch_ns"].Count)
	}
	if c.Counters["core.pairings"] == 0 {
		t.Fatal("core.pairings did not move on the client's verifications")
	}
	if c.Counters["core.prepared_cache_miss"] != 1 || c.Counters["core.prepared_cache_hit"] == 0 {
		t.Fatalf("prepared cache hit/miss = %d/%d, want >0/1",
			c.Counters["core.prepared_cache_hit"], c.Counters["core.prepared_cache_miss"])
	}

	// Structured events: one JSON line per publish round.
	lines := strings.Split(strings.TrimSpace(events.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d event lines, want 2:\n%s", len(lines), events.String())
	}
	for _, l := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(l), &obj); err != nil {
			t.Fatalf("event line not JSON: %v: %q", err, l)
		}
		if obj["event"] != "publish-catchup" {
			t.Fatalf("unexpected event %v", obj["event"])
		}
	}

	// Reset supports the load harness' per-cell accounting.
	sreg.Reset()
	if sreg.Snapshot().Counters["timeserver.published"] != 0 {
		t.Fatal("reset did not clear server counters")
	}
}

// TestUninstrumentedPathsStillWork pins the nil-safety contract: a
// server and client without metrics exercise the same code paths.
func TestUninstrumentedPathsStillWork(t *testing.T) {
	e := newEnv(t)
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	if e.server.Metrics() != nil {
		t.Fatal("uninstrumented server must report a nil registry")
	}
	label := e.sched.Label(e.clock.Now())
	if _, err := e.client.Update(context.Background(), label); err != nil {
		t.Fatal(err)
	}
	if _, err := e.client.Update(context.Background(), label); err != nil {
		t.Fatal(err)
	}
}

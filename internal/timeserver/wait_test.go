package timeserver

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"
)

func TestLongPollDeliversOnPublish(t *testing.T) {
	e := newEnv(t)
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	target := e.sched.Next(e.clock.Now())

	// Start several long-poll waiters before the update exists.
	const waiters = 4
	results := make(chan error, waiters)
	var started sync.WaitGroup
	started.Add(waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			started.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			u, err := e.client.WaitForReleaseLongPoll(ctx, target)
			if err == nil && u.Label != target {
				err = errors.New("wrong label")
			}
			results <- err
		}()
	}
	started.Wait()
	time.Sleep(50 * time.Millisecond) // let the requests reach the handler

	// Publish: every waiter must return promptly.
	e.clock.Advance(time.Minute)
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	for i := 0; i < waiters; i++ {
		select {
		case err := <-results:
			if err != nil {
				t.Fatalf("waiter %d: %v", i, err)
			}
		case <-deadline:
			t.Fatal("long-poll waiters did not return after publish")
		}
	}
}

func TestLongPollTimesOutWith404(t *testing.T) {
	e := newEnv(t)
	resp, err := e.ts.Client().Get(e.ts.URL + "/v1/wait/never?timeout=100ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

func TestLongPollImmediateWhenAlreadyPublished(t *testing.T) {
	e := newEnv(t)
	if _, err := e.server.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	label := e.sched.Label(e.clock.Now())
	start := time.Now()
	u, err := e.client.WaitForReleaseLongPoll(context.Background(), label)
	if err != nil {
		t.Fatal(err)
	}
	if u.Label != label {
		t.Fatalf("label %q", u.Label)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("already-published long-poll should return immediately")
	}
}

func TestLongPollRejectsBadTimeout(t *testing.T) {
	e := newEnv(t)
	for _, q := range []string{"timeout=bogus", "timeout=-5s"} {
		resp, err := e.ts.Client().Get(fmt.Sprintf("%s/v1/wait/x?%s", e.ts.URL, q))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestLongPollVerifiesAgainstPinnedKey(t *testing.T) {
	// Long-poll from an impostor server must fail verification just like
	// the plain fetch path.
	e := newEnv(t)
	impostorKey, err := e.sc.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	impostor := NewServer(e.set, impostorKey, e.sched, WithClock(e.clock.Now))
	if _, err := impostor.PublishUpTo(e.clock.Now()); err != nil {
		t.Fatal(err)
	}
	ts := newTestHTTP(t, impostor)
	c := NewClient(ts.URL, e.set, e.key.Pub, WithHTTPClient(ts.Client()))
	label := e.sched.Label(e.clock.Now())
	if _, err := c.WaitForReleaseLongPoll(context.Background(), label); !errors.Is(err, ErrBadUpdate) {
		t.Fatalf("err=%v, want ErrBadUpdate", err)
	}
}

package multiserver

import (
	"bytes"
	"errors"
	"testing"

	"timedrelease/internal/core"
	"timedrelease/internal/params"
)

const testLabel = "2026-07-05T12:00:00Z"

type env struct {
	sc      *Scheme
	tre     *core.Scheme
	servers []*core.ServerKeyPair
	group   ServerGroup
	user    *UserKeyPair
}

func newEnv(t *testing.T, n int) *env {
	t.Helper()
	set := params.MustPreset("Test160")
	sc := NewScheme(set)
	tre := core.NewScheme(set)
	e := &env{sc: sc, tre: tre}
	for i := 0; i < n; i++ {
		// Each server gets its own generator, the general case of §5.3.5.
		g, err := set.Curve.RandomSubgroupPoint(nil)
		if err != nil {
			t.Fatalf("RandomSubgroupPoint: %v", err)
		}
		s, err := set.Curve.RandScalar(nil)
		if err != nil {
			t.Fatalf("RandScalar: %v", err)
		}
		kp := &core.ServerKeyPair{
			S:   s,
			Pub: core.ServerPublicKey{G: g, SG: set.Curve.ScalarMult(s, g)},
		}
		e.servers = append(e.servers, kp)
		e.group = append(e.group, kp.Pub)
	}
	user, err := sc.UserKeyGen(e.group, nil)
	if err != nil {
		t.Fatalf("UserKeyGen: %v", err)
	}
	e.user = user
	return e
}

func (e *env) updates(label string) []core.KeyUpdate {
	ups := make([]core.KeyUpdate, len(e.servers))
	for i, s := range e.servers {
		ups[i] = e.tre.IssueUpdate(s, label)
	}
	return ups
}

func TestRoundTripAcrossGroupSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5} {
		e := newEnv(t, n)
		msg := []byte("requires every server's update")
		ct, err := e.sc.Encrypt(nil, e.group, e.user.Pub, testLabel, msg)
		if err != nil {
			t.Fatalf("n=%d Encrypt: %v", n, err)
		}
		if len(ct.Us) != n {
			t.Fatalf("n=%d: ciphertext has %d headers", n, len(ct.Us))
		}
		got, err := e.sc.Decrypt(e.user, e.updates(testLabel), ct)
		if err != nil {
			t.Fatalf("n=%d Decrypt: %v", n, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("n=%d round trip mismatch", n)
		}
	}
}

func TestSharedAndSeparateFinalExpAgree(t *testing.T) {
	e := newEnv(t, 3)
	msg := []byte("ablation: one final exponentiation vs three")
	ct, err := e.sc.Encrypt(nil, e.group, e.user.Pub, testLabel, msg)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	ups := e.updates(testLabel)
	a, err := e.sc.Decrypt(e.user, ups, ct)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	b, err := e.sc.DecryptSeparate(e.user, ups, ct)
	if err != nil {
		t.Fatalf("DecryptSeparate: %v", err)
	}
	if !bytes.Equal(a, b) || !bytes.Equal(a, msg) {
		t.Fatal("shared and separate final-exponentiation paths must agree")
	}
}

func TestMissingOneUpdateYieldsGarbage(t *testing.T) {
	// The whole point of §5.3.5: N−1 colluding servers are not enough.
	e := newEnv(t, 3)
	msg := []byte("all three or nothing")
	ct, err := e.sc.Encrypt(nil, e.group, e.user.Pub, testLabel, msg)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	ups := e.updates(testLabel)
	// Substitute server 1's update with one for a different label
	// (equivalently: that server has not yet released the right update).
	ups[1] = e.tre.IssueUpdate(e.servers[1], "not yet")
	got, err := e.sc.Decrypt(e.user, ups, ct)
	if !errors.Is(err, core.ErrLabelMismatch) {
		// Labels typically match in a real attack (the adversary would
		// forge the label); emulate that by relabeling.
		ups[1].Label = testLabel
		got, err = e.sc.Decrypt(e.user, ups, ct)
		if err != nil {
			t.Fatalf("Decrypt: %v", err)
		}
	}
	if bytes.Equal(got, msg) {
		t.Fatal("decryption without server 1's genuine update must fail")
	}
}

func TestVerifyUserPublicKey(t *testing.T) {
	e := newEnv(t, 2)
	if !e.sc.VerifyUserPublicKey(e.group, e.user.Pub) {
		t.Fatal("honest combined key must verify")
	}
	bad := e.user.Pub
	bad.Combined = e.sc.Set.Curve.Add(bad.Combined, e.sc.Set.G)
	if e.sc.VerifyUserPublicKey(e.group, bad) {
		t.Fatal("malformed combined key must be rejected")
	}
	// A key built for a different group must not verify for this one.
	other := newEnv(t, 2)
	if e.sc.VerifyUserPublicKey(e.group, other.user.Pub) {
		t.Fatal("combined key for another group must be rejected")
	}
	if _, err := e.sc.Encrypt(nil, e.group, bad, testLabel, []byte("m")); !errors.Is(err, core.ErrInvalidPublicKey) {
		t.Fatalf("Encrypt with bad key: err=%v, want ErrInvalidPublicKey", err)
	}
}

func TestUserKeyFromScalarReusesIdentity(t *testing.T) {
	// §5.3.5: the sender asks the receiver for a new combined key; the
	// receiver derives it from the same private scalar, and the certified
	// AG stays constant.
	e := newEnv(t, 2)
	regrouped, err := e.sc.UserKeyFromScalar(e.group[:1], e.user.A)
	if err != nil {
		t.Fatalf("UserKeyFromScalar: %v", err)
	}
	if !e.sc.Set.Curve.Equal(regrouped.Pub.AG, e.user.Pub.AG) {
		t.Fatal("certified AG must not change across server groups")
	}
	if !e.sc.VerifyUserPublicKey(e.group[:1], regrouped.Pub) {
		t.Fatal("re-derived key must verify for the smaller group")
	}
}

func TestDecryptInputValidation(t *testing.T) {
	e := newEnv(t, 2)
	ct, err := e.sc.Encrypt(nil, e.group, e.user.Pub, testLabel, []byte("m"))
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	if _, err := e.sc.Decrypt(e.user, e.updates(testLabel)[:1], ct); err == nil {
		t.Fatal("update-count mismatch must be rejected")
	}
	mixed := e.updates(testLabel)
	mixed[1] = e.tre.IssueUpdate(e.servers[1], "other")
	if _, err := e.sc.Decrypt(e.user, mixed, ct); !errors.Is(err, core.ErrLabelMismatch) {
		t.Fatalf("mixed labels: err=%v, want ErrLabelMismatch", err)
	}
	if _, err := e.sc.Decrypt(e.user, e.updates(testLabel), nil); !errors.Is(err, core.ErrInvalidCiphertext) {
		t.Fatalf("nil ciphertext: err=%v, want ErrInvalidCiphertext", err)
	}
	if _, err := e.sc.UserKeyGen(nil, nil); err == nil {
		t.Fatal("empty server group must be rejected")
	}
}

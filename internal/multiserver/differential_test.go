package multiserver

// Differential tests pinning the §5.3.5 N-of-N construction against
// the single-server core primitives: for a group of one server over the
// canonical generator, the decapsulated GT must equal the core scheme's
// ê(a·rG, s·H1(T)), and failure modes must surface typed errors.

import (
	"bytes"
	"errors"
	"math/big"
	"testing"

	"timedrelease/internal/core"
	"timedrelease/internal/params"
)

// constReader yields a repeating byte — a deterministic "rng" so both
// sides of a differential derive the same scalars.
type constReader byte

func (c constReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(c)
	}
	return len(p), nil
}

// A single-server group over the canonical generator is exactly the
// base scheme: the decapsulated GT must equal the directly computed
// pairing ê(a·rG, s·H1(T)) — the K of paper §5.1.
func TestSingleServerGroupMatchesCorePairing(t *testing.T) {
	set := params.MustPreset("Test160")
	sc := NewScheme(set)
	tre := core.NewScheme(set)

	server, err := tre.ServerKeyGen(constReader(0x11))
	if err != nil {
		t.Fatal(err)
	}
	group := ServerGroup{server.Pub}
	user, err := sc.UserKeyFromScalar(group, big.NewInt(0x2345))
	if err != nil {
		t.Fatal(err)
	}
	ct, err := sc.Encrypt(constReader(0x33), group, user.Pub, testLabel, []byte("differential"))
	if err != nil {
		t.Fatal(err)
	}
	upd := tre.IssueUpdate(server, testLabel)

	got, err := sc.decapsulate(user, []core.KeyUpdate{upd}, ct, true)
	if err != nil {
		t.Fatal(err)
	}
	// Core-primitive recomputation, no multiserver code involved:
	// ê(a·U, I_T) with U = rG, I_T = s·H1(T).
	want := set.Pairing.Pair(set.Curve.ScalarMult(user.A, ct.Us[0]), upd.Point)
	if !set.Pairing.E2.Equal(got, want) {
		t.Fatal("multiserver decapsulation differs from the core pairing for a 1-server group")
	}
}

// The shared-final-exponentiation fast path and the N-independent-
// pairings reference must agree on the GT itself (the ciphertext-level
// agreement is covered in multiserver_test.go).
func TestDecapsulationPathsAgreeOnGT(t *testing.T) {
	e := newEnv(t, 3)
	ct, err := e.sc.Encrypt(nil, e.group, e.user.Pub, testLabel, []byte("paths"))
	if err != nil {
		t.Fatal(err)
	}
	ups := e.updates(testLabel)
	shared, err := e.sc.decapsulate(e.user, ups, ct, true)
	if err != nil {
		t.Fatal(err)
	}
	separate, err := e.sc.decapsulate(e.user, ups, ct, false)
	if err != nil {
		t.Fatal(err)
	}
	if !e.sc.Set.Pairing.E2.Equal(shared, separate) {
		t.Fatal("shared and separate final exponentiation disagree on the GT")
	}
}

// Wrong update cardinality is a typed error (ErrUpdateCount), distinct
// from a malformed ciphertext.
func TestUpdateCountReturnsTypedError(t *testing.T) {
	e := newEnv(t, 3)
	msg := []byte("count")
	ct, err := e.sc.Encrypt(nil, e.group, e.user.Pub, testLabel, msg)
	if err != nil {
		t.Fatal(err)
	}
	ups := e.updates(testLabel)

	if _, err := e.sc.Decrypt(e.user, ups[:2], ct); !errors.Is(err, ErrUpdateCount) {
		t.Fatalf("2 updates for 3 headers: got %v, want ErrUpdateCount", err)
	}
	extra := append(append([]core.KeyUpdate{}, ups...), ups[0])
	if _, err := e.sc.Decrypt(e.user, extra, ct); !errors.Is(err, ErrUpdateCount) {
		t.Fatalf("4 updates for 3 headers: got %v, want ErrUpdateCount", err)
	}
	if _, err := e.sc.Decrypt(e.user, nil, &Ciphertext{}); !errors.Is(err, core.ErrInvalidCiphertext) {
		t.Fatalf("empty ciphertext: got %v, want ErrInvalidCiphertext", err)
	}

	// The full set still decrypts.
	got, err := e.sc.Decrypt(e.user, ups, ct)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("full decrypt: %q %v", got, err)
	}
}

// Package multiserver implements the multiple-time-server extension of
// paper §5.3.5: to decrypt, the receiver needs the time-bound key
// updates of ALL N servers (plus their own private key), so early
// release requires colluding with every server the sender chose.
//
// Each server i has its own generator Gᵢ and key pair (sᵢ, sᵢGᵢ). The
// receiver publishes a combined key a·Σ sᵢGᵢ alongside the certified aG;
// the sender verifies it with one pairing equation and produces
//
//	C = ⟨rG₁, …, rG_N, M ⊕ H2(K)⟩,  K = ê(r·a·Σ sᵢGᵢ, H1(T))
//	                                  = Π ê(Gᵢ, H1(T))^{r·a·sᵢ}.
//
// Decryption multiplies per-server pairings ê(a·rGᵢ, sᵢH1(T)); the
// implementation shares one final exponentiation across all N Miller
// loops (the separate-exponentiation path is kept for the E5 ablation).
package multiserver

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"timedrelease/internal/backend"
	"timedrelease/internal/core"
	"timedrelease/internal/curve"
	"timedrelease/internal/pairing"
	"timedrelease/internal/params"
	"timedrelease/internal/rohash"
)

// ErrUpdateCount reports a decryption attempt with a different number
// of key updates than the ciphertext has server headers — the N-of-N
// construction needs exactly one update per chosen server.
var ErrUpdateCount = errors.New("multiserver: update count does not match server headers")

// Scheme binds the multi-server algorithms to a parameter set.
type Scheme struct {
	Set *params.Set
}

// NewScheme returns a multi-server TRE instance.
func NewScheme(set *params.Set) *Scheme { return &Scheme{Set: set} }

// ServerGroup is the ordered list of time servers chosen by the sender.
type ServerGroup []core.ServerPublicKey

// SumSG returns Σ sᵢGᵢ, the aggregate the receiver's combined key is
// built from.
func (sc *Scheme) SumSG(servers ServerGroup) curve.Point {
	acc := curve.Infinity()
	for _, s := range servers {
		acc = sc.Set.Curve.Add(acc, s.SG)
	}
	return acc
}

// UserPublicKey is the receiver's key for a specific server group: the
// CA-certified aG plus the combined point a·Σ sᵢGᵢ.
type UserPublicKey struct {
	AG       curve.Point // a·G over the canonical generator (certified)
	Combined curve.Point // a·Σ sᵢGᵢ
}

// UserKeyPair holds the private scalar and the group-specific public
// key.
type UserKeyPair struct {
	A   *big.Int
	Pub UserPublicKey
}

// UserKeyGen generates a fresh key pair for the server group.
func (sc *Scheme) UserKeyGen(servers ServerGroup, rng io.Reader) (*UserKeyPair, error) {
	if sc.Set.Asymmetric() {
		return nil, backend.ErrSymmetricOnly
	}
	a, err := sc.Set.Curve.RandScalar(rng)
	if err != nil {
		return nil, err
	}
	return sc.UserKeyFromScalar(servers, a)
}

// UserKeyFromScalar derives the group key for an existing private
// scalar — this is how a receiver answers a sender's request to use a
// particular server group without changing identity keys.
func (sc *Scheme) UserKeyFromScalar(servers ServerGroup, a *big.Int) (*UserKeyPair, error) {
	if sc.Set.Asymmetric() {
		return nil, backend.ErrSymmetricOnly
	}
	if len(servers) == 0 {
		return nil, errors.New("multiserver: empty server group")
	}
	if a.Sign() <= 0 || a.Cmp(sc.Set.Q) >= 0 {
		return nil, errors.New("multiserver: private scalar out of range [1, q-1]")
	}
	c := sc.Set.Curve
	return &UserKeyPair{
		A: new(big.Int).Set(a),
		Pub: UserPublicKey{
			AG:       c.ScalarMult(a, sc.Set.G),
			Combined: c.ScalarMult(a, sc.SumSG(servers)),
		},
	}, nil
}

// VerifyUserPublicKey is the sender's "same trick as above" check
// (§5.3.5): ê(aG, Σ sᵢGᵢ) = ê(G, a·Σ sᵢGᵢ), with aG over the canonical
// generator.
func (sc *Scheme) VerifyUserPublicKey(servers ServerGroup, upub UserPublicKey) bool {
	if len(servers) == 0 || upub.AG.IsInfinity() || upub.Combined.IsInfinity() {
		return false
	}
	c := sc.Set.Curve
	if !c.InSubgroup(upub.AG) || !c.InSubgroup(upub.Combined) {
		return false
	}
	return sc.Set.Pairing.SamePairing(upub.AG, sc.SumSG(servers), sc.Set.G, upub.Combined)
}

// Ciphertext carries one header point rGᵢ per server plus the masked
// message.
type Ciphertext struct {
	Us []curve.Point // rG₁ … rG_N
	V  []byte
}

// Encrypt verifies the receiver's combined key and produces the
// N-header ciphertext.
func (sc *Scheme) Encrypt(rng io.Reader, servers ServerGroup, upub UserPublicKey, label string, msg []byte) (*Ciphertext, error) {
	if sc.Set.Asymmetric() {
		return nil, backend.ErrSymmetricOnly
	}
	if !sc.VerifyUserPublicKey(servers, upub) {
		return nil, core.ErrInvalidPublicKey
	}
	r, err := sc.Set.Curve.RandScalar(rng)
	if err != nil {
		return nil, fmt.Errorf("multiserver: sampling encryption randomness: %w", err)
	}
	c := sc.Set.Curve
	us := make([]curve.Point, len(servers))
	for i, s := range servers {
		us[i] = c.ScalarMult(r, s.G)
	}
	h := c.HashToGroup(core.TimeDomain, []byte(label))
	k := sc.Set.Pairing.Pair(c.ScalarMult(r, upub.Combined), h)
	return &Ciphertext{Us: us, V: rohash.XOR(msg, sc.mask(k, len(msg)))}, nil
}

// Decrypt recovers the message from the receiver's private scalar and
// one key update per server (all for the same label, in server order).
// The N pairings share a single final exponentiation.
func (sc *Scheme) Decrypt(upriv *UserKeyPair, updates []core.KeyUpdate, ct *Ciphertext) ([]byte, error) {
	k, err := sc.decapsulate(upriv, updates, ct, true)
	if err != nil {
		return nil, err
	}
	return rohash.XOR(ct.V, sc.mask(k, len(ct.V))), nil
}

// DecryptSeparate is Decrypt without the shared-final-exponentiation
// optimisation (N independent full pairings, then a product). It exists
// for the E5 ablation and must agree with Decrypt bit-for-bit.
func (sc *Scheme) DecryptSeparate(upriv *UserKeyPair, updates []core.KeyUpdate, ct *Ciphertext) ([]byte, error) {
	k, err := sc.decapsulate(upriv, updates, ct, false)
	if err != nil {
		return nil, err
	}
	return rohash.XOR(ct.V, sc.mask(k, len(ct.V))), nil
}

func (sc *Scheme) decapsulate(upriv *UserKeyPair, updates []core.KeyUpdate, ct *Ciphertext, shared bool) (pairing.GT, error) {
	if sc.Set.Asymmetric() {
		return pairing.GT{}, backend.ErrSymmetricOnly
	}
	if ct == nil || len(ct.Us) == 0 {
		return pairing.GT{}, core.ErrInvalidCiphertext
	}
	if len(updates) != len(ct.Us) {
		return pairing.GT{}, fmt.Errorf("%w: %d updates for %d headers", ErrUpdateCount, len(updates), len(ct.Us))
	}
	label := updates[0].Label
	c := sc.Set.Curve
	pairs := make([]pairing.PointPair, 0, len(ct.Us))
	for i, u := range ct.Us {
		if !c.IsOnCurve(u) {
			return pairing.GT{}, core.ErrInvalidCiphertext
		}
		if updates[i].Label != label {
			return pairing.GT{}, core.ErrLabelMismatch
		}
		pairs = append(pairs, pairing.PointPair{P: c.ScalarMult(upriv.A, u), Q: updates[i].Point})
	}
	if shared {
		return sc.Set.Pairing.PairProduct(pairs), nil
	}
	acc := sc.Set.Pairing.E2.One()
	for _, pq := range pairs {
		acc = sc.Set.Pairing.E2.Mul(acc, sc.Set.Pairing.Pair(pq.P, pq.Q))
	}
	return acc, nil
}

// mask is the scheme's H2 expander.
func (sc *Scheme) mask(k pairing.GT, n int) []byte {
	return rohash.Expand("MSTRE-H2", sc.Set.Pairing.E2.Bytes(k), n)
}

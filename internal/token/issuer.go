package token

import (
	"errors"
	"fmt"
	"io"

	"timedrelease/internal/backend"
	"timedrelease/internal/bls"
	"timedrelease/internal/curve"
	"timedrelease/internal/params"
)

// MaxBatch bounds one issuance request: enough for a client to stock a
// wallet in one round trip, small enough that a request can't buy an
// unbounded amount of server scalar multiplication.
const MaxBatch = 256

// Issuer blind-signs token requests with the dedicated issuance key.
// It never sees seeds — only uniformly distributed blinded points —
// so it cannot correlate an issuance with a later redemption.
type Issuer struct {
	set *params.Set
	key *bls.PrivateKey
}

// NewIssuer wraps an existing issuance key pair. The key MUST be
// dedicated to token issuance (see the package comment): callers
// embedding an Issuer next to a timed-release key are responsible for
// keeping the two scalars distinct, and timeserver.NewServer enforces
// it by comparing public keys.
func NewIssuer(set *params.Set, key *bls.PrivateKey) (*Issuer, error) {
	if key == nil {
		return nil, errors.New("token: issuer needs a signing key")
	}
	return &Issuer{set: set, key: key}, nil
}

// GenerateIssuer creates a fresh issuance key pair over the canonical
// generator of set.
func GenerateIssuer(set *params.Set, rng io.Reader) (*Issuer, error) {
	key, err := bls.GenerateKey(set, rng)
	if err != nil {
		return nil, fmt.Errorf("token: generating issuance key: %w", err)
	}
	return &Issuer{set: set, key: key}, nil
}

// Key returns the underlying key pair (persistence by cmd/treserver).
func (iss *Issuer) Key() *bls.PrivateKey { return iss.key }

// Public returns the issuance verification key clients unblind
// against.
func (iss *Issuer) Public() bls.PublicKey { return iss.key.Pub }

// SignBlinded blind-signs a batch of blinded token points: S′_i =
// x·B_i. Identity or out-of-subgroup inputs are rejected outright —
// a small-subgroup B would leak x mod the subgroup order through S′.
func (iss *Issuer) SignBlinded(blinded []curve.Point) ([]curve.Point, error) {
	if len(blinded) == 0 {
		return nil, errors.New("token: empty issuance batch")
	}
	if len(blinded) > MaxBatch {
		return nil, fmt.Errorf("token: issuance batch %d exceeds cap %d", len(blinded), MaxBatch)
	}
	out := make([]curve.Point, len(blinded))
	for i, b := range blinded {
		if b.IsInfinity() || !iss.set.B.InSubgroup(backend.G2, b) {
			return nil, fmt.Errorf("token: blinded point %d is not a subgroup point", i)
		}
		out[i] = iss.set.B.ScalarMult(backend.G2, iss.key.S, b)
	}
	return out, nil
}

package token

import (
	"crypto/sha256"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"timedrelease/internal/params"
)

func testTokens(t *testing.T, set *params.Set, n int) (*Issuer, []Token) {
	t.Helper()
	iss, err := GenerateIssuer(set, nil)
	if err != nil {
		t.Fatal(err)
	}
	pending, blinded, err := Blind(set, nil, n)
	if err != nil {
		t.Fatal(err)
	}
	signed, err := iss.SignBlinded(blinded)
	if err != nil {
		t.Fatal(err)
	}
	toks, err := Unblind(set, iss.Public(), pending, signed)
	if err != nil {
		t.Fatal(err)
	}
	return iss, toks
}

// TestConcurrentDoubleSpend pins the acceptance criterion: concurrent
// redemption of ONE token admits exactly one caller. Run under
// -race -shuffle=on by `make ci`.
func TestConcurrentDoubleSpend(t *testing.T) {
	set := params.MustPreset("Test160")
	iss, toks := testTokens(t, set, 1)
	v := NewVerifier(set, iss.Public(), NewLedger())

	const goroutines = 32
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	start := make(chan struct{})
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			errs[i] = v.Redeem(toks[0])
		}(i)
	}
	close(start)
	wg.Wait()

	admitted, doubled := 0, 0
	for _, err := range errs {
		switch {
		case err == nil:
			admitted++
		case errors.Is(err, ErrDoubleSpend):
			doubled++
		default:
			t.Fatalf("unexpected redemption error: %v", err)
		}
	}
	if admitted != 1 || doubled != goroutines-1 {
		t.Fatalf("admitted %d, double-spend %d; want exactly 1 admission", admitted, doubled)
	}
}

// TestConcurrentSpendDistinct: many goroutines spending DISTINCT
// tokens against a durable ledger all succeed, and the log replays to
// the same set.
func TestConcurrentSpendDistinct(t *testing.T) {
	dir := t.TempDir()
	led, _, err := OpenLedger(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := sha256.Sum256([]byte{byte(i), byte(i >> 8)})
			if err := led.Spend(id); err != nil {
				t.Errorf("spend %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if led.Len() != n {
		t.Fatalf("ledger holds %d, want %d", led.Len(), n)
	}
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}

	led2, stats, err := OpenLedger(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer led2.Close()
	if stats.Spent != n || stats.Duplicates != 0 || stats.Truncated {
		t.Fatalf("recovery stats %+v, want %d clean spends", stats, n)
	}
	for i := 0; i < n; i++ {
		id := sha256.Sum256([]byte{byte(i), byte(i >> 8)})
		if !led2.Spent(id) {
			t.Fatalf("spend %d lost across restart", i)
		}
	}
}

// TestLedgerMergeKeepsServing crosses the delta→frozen merge boundary
// and checks membership on both sides of it.
func TestLedgerMergeKeepsServing(t *testing.T) {
	led := NewLedger()
	const n = 3 * mergeAt // all IDs below go to deterministic shards; plenty of merges
	ids := make([][32]byte, n)
	for i := range ids {
		ids[i] = sha256.Sum256([]byte{byte(i), byte(i >> 8), 0xee})
		if err := led.Spend(ids[i]); err != nil {
			t.Fatalf("spend %d: %v", i, err)
		}
	}
	for i, id := range ids {
		if !led.Spent(id) {
			t.Fatalf("id %d forgotten after merges", i)
		}
		if err := led.Spend(id); !errors.Is(err, ErrDoubleSpend) {
			t.Fatalf("id %d re-admitted after merges: %v", i, err)
		}
	}
}

// TestLedgerTornTailRecovery tears the spend.log tail (a crash
// mid-append) and proves recovery truncates it: fully recorded spends
// stay rejected, the token whose append was torn is back to unspent.
func TestLedgerTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	led, _, err := OpenLedger(dir)
	if err != nil {
		t.Fatal(err)
	}
	durable := sha256.Sum256([]byte("durable"))
	torn := sha256.Sum256([]byte("torn"))
	if err := led.Spend(durable); err != nil {
		t.Fatal(err)
	}
	if err := led.Spend(torn); err != nil {
		t.Fatal(err)
	}
	led.Close()

	// Tear the tail mid-record: drop the last 7 bytes (inside the
	// second record's payload+crc).
	path := filepath.Join(dir, SpendLogName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o600); err != nil {
		t.Fatal(err)
	}

	led2, stats, err := OpenLedger(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer led2.Close()
	if !stats.Truncated || stats.Spent != 1 {
		t.Fatalf("recovery stats %+v, want 1 spend and a truncated tail", stats)
	}
	if !led2.Spent(durable) {
		t.Fatal("durable spend lost")
	}
	if led2.Spent(torn) {
		t.Fatal("torn spend survived — the unacknowledged admission should be rolled back")
	}
	// The log keeps appending after recovery.
	if err := led2.Spend(torn); err != nil {
		t.Fatalf("re-spend after recovery: %v", err)
	}
}

// TestAuditSpendLog covers the read-only audit: healthy, torn and
// duplicated logs.
func TestAuditSpendLog(t *testing.T) {
	dir := t.TempDir()
	// Missing log: empty, healthy.
	stats, err := AuditSpendLog(dir)
	if err != nil || stats.Records != 0 || stats.Torn {
		t.Fatalf("missing log: stats %+v err %v", stats, err)
	}

	led, _, err := OpenLedger(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := sha256.Sum256([]byte("a"))
	b := sha256.Sum256([]byte("b"))
	led.Spend(a)
	led.Spend(b)
	led.Close()

	stats, err = AuditSpendLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 2 || stats.Duplicates != 0 || stats.Torn {
		t.Fatalf("clean log audit: %+v", stats)
	}

	// Tear it; the audit reports damage but does NOT repair it.
	path := filepath.Join(dir, SpendLogName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tornData := append(append([]byte{}, data...), 0xde, 0xad)
	if err := os.WriteFile(path, tornData, 0o600); err != nil {
		t.Fatal(err)
	}
	stats, err = AuditSpendLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Torn || stats.TornBytes != 2 {
		t.Fatalf("torn log audit: %+v", stats)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(tornData) {
		t.Fatal("audit modified the log")
	}
}

// TestLedgerFailsClosedOnPersistError: when the spend log cannot
// record an admission, the token is NOT admitted.
func TestLedgerFailsClosedOnPersistError(t *testing.T) {
	dir := t.TempDir()
	led, _, err := OpenLedger(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Close the underlying log out from under the ledger: every
	// subsequent append fails.
	led.log.Close()
	id := sha256.Sum256([]byte("unpersistable"))
	if err := led.Spend(id); err == nil {
		t.Fatal("spend admitted without durable record")
	}
	if led.Spent(id) {
		t.Fatal("failed spend published to the in-memory set")
	}
}

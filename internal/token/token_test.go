package token

import (
	"bytes"
	"errors"
	"math/big"
	"testing"

	"timedrelease/internal/backend"
	"timedrelease/internal/params"
)

// tokenPresets are the two backend families every protocol-level test
// runs under: the paper's symmetric pairing and the Type-3 BLS12-381
// port. The blind-token math must be backend-agnostic.
func tokenPresets(t *testing.T) []*params.Set {
	t.Helper()
	return []*params.Set{
		params.MustPreset("Test160"),
		params.MustPreset(params.PresetBLS12381),
	}
}

func TestIssueRedeemRoundTrip(t *testing.T) {
	for _, set := range tokenPresets(t) {
		t.Run(set.Name, func(t *testing.T) {
			iss, err := GenerateIssuer(set, nil)
			if err != nil {
				t.Fatal(err)
			}
			pending, blinded, err := Blind(set, nil, 4)
			if err != nil {
				t.Fatal(err)
			}
			signed, err := iss.SignBlinded(blinded)
			if err != nil {
				t.Fatal(err)
			}
			toks, err := Unblind(set, iss.Public(), pending, signed)
			if err != nil {
				t.Fatal(err)
			}
			v := NewVerifier(set, iss.Public(), NewLedger())
			for _, tok := range toks {
				if err := v.Redeem(tok); err != nil {
					t.Fatalf("fresh token rejected: %v", err)
				}
				if err := v.Redeem(tok); !errors.Is(err, ErrDoubleSpend) {
					t.Fatalf("second redemption: got %v, want ErrDoubleSpend", err)
				}
			}
		})
	}
}

func TestRedeemRejectsForgeries(t *testing.T) {
	for _, set := range tokenPresets(t) {
		t.Run(set.Name, func(t *testing.T) {
			iss, err := GenerateIssuer(set, nil)
			if err != nil {
				t.Fatal(err)
			}
			other, err := GenerateIssuer(set, nil)
			if err != nil {
				t.Fatal(err)
			}
			v := NewVerifier(set, iss.Public(), NewLedger())

			// A token signed by a different key.
			pending, blinded, err := Blind(set, nil, 1)
			if err != nil {
				t.Fatal(err)
			}
			signed, err := other.SignBlinded(blinded)
			if err != nil {
				t.Fatal(err)
			}
			toks, err := Unblind(set, other.Public(), pending, signed)
			if err != nil {
				t.Fatal(err)
			}
			if err := v.Redeem(toks[0]); !errors.Is(err, ErrBadToken) {
				t.Fatalf("foreign-key token: got %v, want ErrBadToken", err)
			}
			// Unblinding against the wrong public key must fail
			// client-side, before the wallet.
			if _, err := Unblind(set, iss.Public(), pending, signed); !errors.Is(err, ErrBadToken) {
				t.Fatalf("unblind under wrong key: got %v, want ErrBadToken", err)
			}

			// A seed swap after signing.
			pending2, blinded2, err := Blind(set, nil, 1)
			if err != nil {
				t.Fatal(err)
			}
			signed2, err := iss.SignBlinded(blinded2)
			if err != nil {
				t.Fatal(err)
			}
			toks2, err := Unblind(set, iss.Public(), pending2, signed2)
			if err != nil {
				t.Fatal(err)
			}
			forged := toks2[0]
			forged.Seed[0] ^= 1
			if err := v.Redeem(forged); !errors.Is(err, ErrBadToken) {
				t.Fatalf("seed-swapped token: got %v, want ErrBadToken", err)
			}
		})
	}
}

func TestIssuerRejectsMalformedBatches(t *testing.T) {
	set := params.MustPreset("Test160")
	iss, err := GenerateIssuer(set, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := iss.SignBlinded(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	_, blinded, err := Blind(set, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Oversized batch.
	pts := blinded
	for len(pts) <= MaxBatch {
		pts = append(pts, blinded[0])
	}
	if _, err := iss.SignBlinded(pts); err == nil {
		t.Fatal("oversized batch accepted")
	}
	// Identity point: a small-subgroup probe must be refused.
	inf := set.B.Infinity(backend.G2)
	if _, err := iss.SignBlinded(append(blinded[:0:0], inf)); err == nil {
		t.Fatal("identity point accepted")
	}
}

// TestBlindingUnlinkabilityWitness pins the unlinkability argument
// (docs/TOKENS.md): the server's view of an issuance — the blinded
// point B — is information-theoretically independent of which token it
// blinds. Discrete logs of real H1 outputs are unknowable, so the test
// works over token points with KNOWN dlogs T_i = w_i·G2 and exhibits
// the witness explicitly: for a blinded request B = r₁·T₁, the factor
// r₂ = r₁·w₁·w₂⁻¹ satisfies r₂·T₂ = B. The SAME observed B is
// consistent with EVERY candidate token under a uniformly distributed
// blinding factor, so the issuer's transcript carries zero information
// about the token — this is the algebraic core, swept over many
// factors below.
func TestBlindingUnlinkabilityWitness(t *testing.T) {
	for _, set := range tokenPresets(t) {
		t.Run(set.Name, func(t *testing.T) {
			w1, err := set.B.RandScalar(nil)
			if err != nil {
				t.Fatal(err)
			}
			w2, err := set.B.RandScalar(nil)
			if err != nil {
				t.Fatal(err)
			}
			t1 := set.B.ScalarMult(backend.G2, w1, set.G2)
			t2 := set.B.ScalarMult(backend.G2, w2, set.G2)

			const sweep = 32
			for i := 0; i < sweep; i++ {
				r1, err := set.B.RandScalar(nil)
				if err != nil {
					t.Fatal(err)
				}
				b := blindPoint(set, t1, r1)

				// The explaining factor for token 2: r₂ = r₁·w₁·w₂⁻¹.
				w2inv := new(big.Int).ModInverse(w2, set.Q)
				r2 := new(big.Int).Mul(r1, w1)
				r2.Mul(r2, w2inv)
				r2.Mod(r2, set.Q)

				if got := blindPoint(set, t2, r2); !set.B.Equal(backend.G2, got, b) {
					t.Fatalf("sweep %d: no blinding factor explains B for token 2 — issuance would be linkable", i)
				}
			}
		})
	}
}

// TestBlindingInjective pins the flip side: distinct blinding factors
// give distinct blinded points (r ↦ r·T is a bijection on the group),
// so the uniform choice of r makes B uniform — the distribution half
// of the unlinkability argument.
func TestBlindingInjective(t *testing.T) {
	set := params.MustPreset("Test160")
	w, err := set.B.RandScalar(nil)
	if err != nil {
		t.Fatal(err)
	}
	tp := set.B.ScalarMult(backend.G2, w, set.G2)
	seen := make(map[string]bool)
	const sweep = 128
	for i := 0; i < sweep; i++ {
		r, err := set.B.RandScalar(nil)
		if err != nil {
			t.Fatal(err)
		}
		b := blindPoint(set, tp, r)
		key := string(set.B.AppendPoint(nil, backend.G2, b))
		if seen[key] {
			t.Fatalf("sweep %d: repeated blinded point — blinding is not injective", i)
		}
		seen[key] = true
	}
}

func TestWalletRoundTrip(t *testing.T) {
	set := params.MustPreset("Test160")
	iss, err := GenerateIssuer(set, nil)
	if err != nil {
		t.Fatal(err)
	}
	pending, blinded, err := Blind(set, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	signed, err := iss.SignBlinded(blinded)
	if err != nil {
		t.Fatal(err)
	}
	toks, err := Unblind(set, iss.Public(), pending, signed)
	if err != nil {
		t.Fatal(err)
	}

	path := t.TempDir() + "/wallet"
	w, err := OpenWallet(path, set)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add(toks...); err != nil {
		t.Fatal(err)
	}

	// Reopen: all three survive, round-tripped through the file.
	w2, err := OpenWallet(path, set)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Len() != 3 {
		t.Fatalf("reopened wallet has %d tokens, want 3", w2.Len())
	}
	got, err := w2.Pop()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, want := range toks {
		if bytes.Equal(got.Seed[:], want.Seed[:]) && set.B.Equal(backend.G2, got.Sig, want.Sig) {
			found = true
		}
	}
	if !found {
		t.Fatal("popped token does not match any stored token")
	}
	// The pop is durable: a third open sees 2.
	w3, err := OpenWallet(path, set)
	if err != nil {
		t.Fatal(err)
	}
	if w3.Len() != 2 {
		t.Fatalf("wallet after pop has %d tokens, want 2", w3.Len())
	}

	// Set mismatch fails closed.
	if _, err := OpenWallet(path, params.MustPreset(params.PresetBLS12381)); err == nil {
		t.Fatal("wallet opened under the wrong parameter set")
	}
}

package token

import (
	"errors"

	"timedrelease/internal/backend"
	"timedrelease/internal/bls"
	"timedrelease/internal/params"
)

// Verifier is the redemption side: one prepared pairing per token plus
// a double-spend ledger. It holds only the issuance PUBLIC key — a
// gating relay or front tier can verify redemptions without the power
// to mint tokens.
type Verifier struct {
	set *params.Set
	pk  *bls.PreparedPublicKey
	led *Ledger
}

// NewVerifier builds a redemption verifier over the issuance public
// key and a spend ledger (NewLedger for in-memory, OpenLedger for a
// durable spend.log).
func NewVerifier(set *params.Set, pub bls.PublicKey, led *Ledger) *Verifier {
	if led == nil {
		led = NewLedger()
	}
	return &Verifier{set: set, pk: bls.PreparePublicKey(set, pub), led: led}
}

// Ledger exposes the spend ledger (metrics, shutdown).
func (v *Verifier) Ledger() *Ledger { return v.led }

// Redeem verifies and spends one token. Exactly one concurrent
// redemption of the same token succeeds; the rest get ErrDoubleSpend.
// The order is chosen for the hot paths:
//
//  1. lock-free spent check — a replayed token is rejected for the
//     price of a map lookup, no pairing burned;
//  2. prepared pairing verification — ê(G, S) = ê(xG, H1(seed));
//  3. Ledger.Spend — atomic recheck under the shard lock, durable
//     append, then publish. Verification precedes Spend so garbage
//     tokens can never grow the ledger.
//
// A ledger persistence failure fails CLOSED (the error is returned and
// the token is not admitted): an admission the spend log cannot record
// would be replayable after a restart.
func (v *Verifier) Redeem(t Token) error {
	id := t.ID()
	if v.led.Spent(id) {
		return ErrDoubleSpend
	}
	if t.Sig.IsInfinity() || !v.set.B.InSubgroup(backend.G2, t.Sig) {
		return ErrBadToken
	}
	h := v.set.B.HashToG2(Domain, t.Seed[:])
	if !v.pk.VerifyHash(v.set, h, bls.Signature{Point: t.Sig}) {
		return ErrBadToken
	}
	return v.led.Spend(id)
}

// Public returns the issuance public key the verifier admits against.
func (v *Verifier) Public() bls.PublicKey { return v.pk.Pub }

// errLedgerClosed distinguishes shutdown races from real failures in
// tests.
var errLedgerClosed = errors.New("token: spend ledger is closed")

// Package token implements Privacy Pass-style blind access tokens
// over the pairing backend: anonymous metered access to the serving
// tier (ROADMAP item 4).
//
// The paper's headline property is that subscribers stay anonymous
// against a passive server, but a production deployment still needs
// rate limiting and abuse control — and naive per-client metering
// would destroy exactly the anonymity the paper sells. Blind BLS
// squares that circle:
//
//	client:  seed ← 32 random bytes, T = H1(TokenDomain, seed) ∈ G2
//	         r ← [1, q-1],  B = r·T            (blinded request)
//	server:  S′ = x·B                          (blind signature, key x)
//	client:  S = r⁻¹·S′ = x·T                  (unblinded token)
//	redeem:  present (seed, S); server checks ê(G, S) = ê(xG, H1(seed))
//
// The server's view of an issuance is a uniformly random G2 point B:
// for ANY candidate token T′ there is exactly one blinding factor r′
// with r′·T′ = B, so B is information-theoretically independent of
// which token it blinds (pinned by TestBlindingUnlinkabilityWitness).
// The redemption check is the very pairing equation the scheme already
// uses for key updates, so both the Symmetric and BLS12-381 backends
// verify tokens on the prepared fixed-argument path.
//
// SECURITY — key and domain separation. Blind issuance signs an
// attacker-chosen group element. If the issuance key were the
// time-server key s, a client could submit B = H1(TimeDomain, future
// label) and walk away with s·H1(T_future): the decryption key for a
// not-yet-released epoch. The issuance key x MUST therefore be a
// dedicated key, never the timed-release key (timeserver.NewServer
// refuses the configuration), and token hashing uses its own oracle
// domain. See docs/TOKENS.md for the full threat model.
package token

import (
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"

	"timedrelease/internal/backend"
	"timedrelease/internal/bls"
	"timedrelease/internal/curve"
	"timedrelease/internal/params"
)

// Domain is the hash-to-curve oracle domain for token points,
// deliberately distinct from core.TimeDomain: a blind signature on
// H1(Domain, ·) can never collide with a key update s·H1(TimeDomain, T).
const Domain = "access-token"

// SeedLen is the token preimage length.
const SeedLen = 32

// ErrBadToken reports a redemption whose signature fails the pairing
// check against the issuance key.
var ErrBadToken = errors.New("token: signature fails verification against issuance key")

// ErrDoubleSpend reports a token that was already redeemed.
var ErrDoubleSpend = errors.New("token: already spent")

// Token is an unblinded access credential: the random seed and the
// issuer's signature x·H1(Domain, seed). It carries no identity and is
// unlinkable to the issuance that produced it.
type Token struct {
	Seed [SeedLen]byte
	Sig  curve.Point // x·H1(Domain, seed) ∈ G2
}

// ID is the double-spend ledger key: SHA-256 of the seed. Hashing
// keeps raw seeds out of the on-disk spend log (a leaked log must not
// be a bag of replayable credentials — the signature is still needed,
// but defense in depth is cheap here).
func (t Token) ID() [32]byte { return sha256.Sum256(t.Seed[:]) }

// Pending is a blinded, not-yet-signed token held by the client
// between Blind and Unblind: the seed and the blinding factor.
type Pending struct {
	Seed [SeedLen]byte
	R    *big.Int // blinding factor r ∈ [1, q-1]
}

// Blind generates n fresh token preimages and returns their blinded
// curve points B_i = r_i·H1(Domain, seed_i) alongside the pending
// state needed to unblind the issuer's response.
func Blind(set *params.Set, rng io.Reader, n int) ([]Pending, []curve.Point, error) {
	if n <= 0 {
		return nil, nil, errors.New("token: batch size must be positive")
	}
	pending := make([]Pending, n)
	blinded := make([]curve.Point, n)
	for i := range pending {
		if _, err := io.ReadFull(cryptoRand(rng), pending[i].Seed[:]); err != nil {
			return nil, nil, fmt.Errorf("token: drawing seed: %w", err)
		}
		r, err := set.B.RandScalar(rng)
		if err != nil {
			return nil, nil, fmt.Errorf("token: drawing blinding factor: %w", err)
		}
		pending[i].R = r
		t := set.B.HashToG2(Domain, pending[i].Seed[:])
		blinded[i] = blindPoint(set, t, r)
	}
	return pending, blinded, nil
}

// blindPoint computes r·t. Split out (and kept deterministic in r) so
// the unlinkability test can sweep explicit blinding factors.
func blindPoint(set *params.Set, t curve.Point, r *big.Int) curve.Point {
	return set.B.ScalarMult(backend.G2, r, t)
}

// Unblind applies r⁻¹ to each signed blinded point and verifies the
// result against the issuance key before anything reaches the wallet:
// S = r⁻¹·(x·r·T) = x·T, checked by ê(G, S) = ê(xG, H1(seed)). A
// malicious issuer returning garbage (or signing under a swapped key)
// yields an error here, never a dud credential spent later.
func Unblind(set *params.Set, pub bls.PublicKey, pending []Pending, signed []curve.Point) ([]Token, error) {
	if len(signed) != len(pending) {
		return nil, fmt.Errorf("token: issuer returned %d signatures for %d requests", len(signed), len(pending))
	}
	pk := bls.PreparePublicKey(set, pub)
	toks := make([]Token, len(pending))
	for i, p := range pending {
		if p.R == nil || p.R.Sign() <= 0 {
			return nil, errors.New("token: pending entry has no blinding factor")
		}
		rInv := new(big.Int).ModInverse(p.R, set.Q)
		if rInv == nil {
			return nil, errors.New("token: blinding factor not invertible")
		}
		sig := set.B.ScalarMult(backend.G2, rInv, signed[i])
		if sig.IsInfinity() || !set.B.InSubgroup(backend.G2, sig) {
			return nil, ErrBadToken
		}
		h := set.B.HashToG2(Domain, p.Seed[:])
		if !pk.VerifyHash(set, h, bls.Signature{Point: sig}) {
			return nil, ErrBadToken
		}
		toks[i] = Token{Seed: p.Seed, Sig: sig}
	}
	return toks, nil
}

// cryptoRand substitutes crypto/rand for a nil reader, mirroring the
// backend's RandScalar convention.
func cryptoRand(rng io.Reader) io.Reader {
	if rng != nil {
		return rng
	}
	return rand.Reader
}

package token

import (
	"bufio"
	"encoding/base64"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"timedrelease/internal/params"
	"timedrelease/internal/wire"
)

// walletHeader leads the wallet file, followed by the parameter-set
// name (tokens are backend-specific points; a wallet minted under one
// preset must not be spent under another).
const walletHeader = "tre-wallet-v1"

// ErrWalletEmpty reports a Pop from an empty wallet.
var ErrWalletEmpty = errors.New("token: wallet is empty")

// Wallet holds unspent tokens, optionally mirrored to a file — one
// base64 wire-encoded token per line under a one-line header. Every
// mutation rewrites the file atomically (temp + rename) BEFORE the
// token leaves the wallet: a crash between Pop and the redemption
// request loses at most one token, it never resurrects a token the
// server may already have marked spent.
type Wallet struct {
	mu    sync.Mutex
	path  string // "" → memory only
	set   *params.Set
	codec *wire.Codec
	toks  []Token
}

// NewWallet returns an in-memory wallet for set.
func NewWallet(set *params.Set) *Wallet {
	return &Wallet{set: set, codec: wire.NewCodec(set)}
}

// OpenWallet loads (creating if absent) the wallet file at path.
func OpenWallet(path string, set *params.Set) (*Wallet, error) {
	w := NewWallet(set)
	w.path = path
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return w, nil
	}
	if err != nil {
		return nil, fmt.Errorf("token: opening wallet: %w", err)
	}
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	if !sc.Scan() {
		return w, nil // empty file: empty wallet
	}
	fields := strings.Fields(sc.Text())
	if len(fields) != 2 || fields[0] != walletHeader {
		return nil, fmt.Errorf("token: %s is not a wallet file", path)
	}
	if fields[1] != set.Name {
		return nil, fmt.Errorf("token: wallet %s was minted under parameter set %q, not %q", path, fields[1], set.Name)
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		raw, err := base64.StdEncoding.DecodeString(line)
		if err != nil {
			return nil, fmt.Errorf("token: wallet %s: bad line: %w", path, err)
		}
		t, err := decodeToken(w.codec, raw)
		if err != nil {
			return nil, fmt.Errorf("token: wallet %s: %w", path, err)
		}
		w.toks = append(w.toks, t)
	}
	return w, nil
}

// Add appends tokens and persists.
func (w *Wallet) Add(ts ...Token) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.toks = append(w.toks, ts...)
	return w.saveLocked()
}

// Pop removes and returns one token, persisting the removal first.
// ErrWalletEmpty when none remain.
func (w *Wallet) Pop() (Token, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.toks) == 0 {
		return Token{}, ErrWalletEmpty
	}
	t := w.toks[len(w.toks)-1]
	w.toks = w.toks[:len(w.toks)-1]
	if err := w.saveLocked(); err != nil {
		// Undo: the token was not handed out.
		w.toks = append(w.toks, t)
		return Token{}, err
	}
	return t, nil
}

// Len returns the number of unspent tokens held.
func (w *Wallet) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.toks)
}

// Path returns the backing file ("" for an in-memory wallet).
func (w *Wallet) Path() string { return w.path }

// saveLocked atomically rewrites the wallet file. Caller holds w.mu.
func (w *Wallet) saveLocked() error {
	if w.path == "" {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s\n", walletHeader, w.set.Name)
	for _, t := range w.toks {
		b.WriteString(base64.StdEncoding.EncodeToString(EncodeToken(w.codec, t)))
		b.WriteByte('\n')
	}
	tmp, err := os.CreateTemp(filepath.Dir(w.path), ".wallet-*")
	if err != nil {
		return fmt.Errorf("token: saving wallet: %w", err)
	}
	if _, err := tmp.WriteString(b.String()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("token: saving wallet: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("token: saving wallet: %w", err)
	}
	if err := os.Chmod(tmp.Name(), 0o600); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("token: saving wallet: %w", err)
	}
	if err := os.Rename(tmp.Name(), w.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("token: saving wallet: %w", err)
	}
	return nil
}

// EncodeToken wire-encodes a redemption credential.
func EncodeToken(codec *wire.Codec, t Token) []byte {
	return codec.MarshalToken(t.Seed[:], t.Sig)
}

// DecodeToken parses a wire-encoded redemption credential.
func DecodeToken(codec *wire.Codec, data []byte) (Token, error) {
	return decodeToken(codec, data)
}

func decodeToken(codec *wire.Codec, data []byte) (Token, error) {
	seed, sig, err := codec.UnmarshalToken(data)
	if err != nil {
		return Token{}, err
	}
	var t Token
	copy(t.Seed[:], seed)
	t.Sig = sig
	return t, nil
}

package token

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"

	"timedrelease/internal/archive"
)

// SpendLogName is the durable double-spend sidecar inside a server's
// archive directory.
const SpendLogName = "spend.log"

// spendMagic identifies (and versions) the spend-log format. Same
// framing as the update log (docs/PROTOCOL.md), different magic: a
// spend log can never be mistaken for an update log.
var spendMagic = []byte("TRESPD1\n")

// ledgerShards must be a power of two; the shard index is the token
// ID's first byte masked. 16 matches the PR 4 cache sharding.
const ledgerShards = 16

// mergeAt bounds a shard's mutable delta map before it is folded into
// the copy-on-write frozen map (see ledgerShard).
const mergeAt = 512

// Ledger is the double-spend set: which token IDs have been redeemed.
// It adapts the PR 4 sharded copy-on-write cache design to an add-only
// workload: each shard keeps an immutable "frozen" map behind an
// atomic pointer — the lock-free hot path, since replay attacks
// overwhelmingly probe long-spent tokens — plus a small mutable delta
// under the shard mutex. When the delta reaches mergeAt entries it is
// folded into a fresh frozen map (copy-on-write), amortising the copy
// instead of paying it per insert as an LRU cache would.
//
// Durability: every successful Spend is fsynced into spend.log (an
// archive.FrameLog of raw 32-byte token IDs) BEFORE it is published to
// the in-memory set, so an admitted redemption is always durable. The
// in-memory set is derived data, rebuilt wholesale from the intact log
// prefix on OpenLedger; a torn tail (crash mid-append) is truncated,
// which un-spends at most the single redemption whose admission was
// never acknowledged — the safe direction.
type Ledger struct {
	shards [ledgerShards]ledgerShard
	log    *archive.FrameLog // nil: memory-only
	closed atomic.Bool
	spent  atomic.Int64
}

type ledgerShard struct {
	frozen atomic.Pointer[map[[32]byte]struct{}]
	mu     sync.Mutex
	delta  map[[32]byte]struct{}
}

// LedgerStats describes what OpenLedger recovered.
type LedgerStats struct {
	Spent      int   // distinct token IDs now considered spent
	Records    int   // intact spend.log records replayed
	Duplicates int   // replayed records whose ID was already present
	TornBytes  int64 // bytes truncated from a torn tail
	Truncated  bool  // whether a torn tail was dropped
}

// NewLedger returns an in-memory ledger (tests, relays fronting a
// durable origin). Double-spend state does not survive a restart.
func NewLedger() *Ledger {
	l := &Ledger{}
	l.init()
	return l
}

func (l *Ledger) init() {
	empty := make(map[[32]byte]struct{})
	for i := range l.shards {
		l.shards[i].frozen.Store(&empty)
		l.shards[i].delta = make(map[[32]byte]struct{})
	}
}

// OpenLedger opens (creating if needed) the durable ledger backed by
// dir/spend.log, replaying the intact prefix and truncating a torn
// tail exactly like archive recovery. Duplicate records cannot be
// produced by Spend (the append happens under the spent recheck), so
// they indicate manual log surgery; they are counted and tolerated —
// the set union is unchanged either way.
func OpenLedger(dir string) (*Ledger, LedgerStats, error) {
	l := &Ledger{}
	l.init()
	var stats LedgerStats
	path := filepath.Join(dir, SpendLogName)
	log, fstats, err := archive.OpenFrameLog(path, spendMagic, func(payload []byte) error {
		if len(payload) != 32 {
			return fmt.Errorf("token: spend record is %d bytes, want 32", len(payload))
		}
		var id [32]byte
		copy(id[:], payload)
		if l.insertRecovered(id) {
			stats.Spent++
		} else {
			stats.Duplicates++
		}
		return nil
	})
	if err != nil {
		return nil, stats, err
	}
	stats.Records = fstats.Records
	stats.TornBytes = fstats.TornBytes
	stats.Truncated = fstats.Truncated
	l.log = log
	l.spent.Store(int64(stats.Spent))
	return l, stats, nil
}

// insertRecovered adds an ID during replay (no logging, no lock
// contention — OpenLedger is single-threaded). Reports whether the ID
// was new.
func (l *Ledger) insertRecovered(id [32]byte) bool {
	sh := &l.shards[id[0]&(ledgerShards-1)]
	if _, ok := sh.delta[id]; ok {
		return false
	}
	if _, ok := (*sh.frozen.Load())[id]; ok {
		return false
	}
	sh.delta[id] = struct{}{}
	sh.mergeLocked()
	return true
}

// Spent reports whether id has been redeemed. The frozen map is read
// lock-free; only a frozen miss (new or unknown tokens) takes the
// shard mutex to consult the delta.
func (l *Ledger) Spent(id [32]byte) bool {
	sh := &l.shards[id[0]&(ledgerShards-1)]
	if _, ok := (*sh.frozen.Load())[id]; ok {
		return true
	}
	sh.mu.Lock()
	_, ok := sh.delta[id]
	sh.mu.Unlock()
	return ok
}

// Spend marks id as redeemed, exactly once: the first caller wins,
// every other (concurrent or later) caller gets ErrDoubleSpend. The
// durable append happens under the shard lock, after the recheck and
// before publication — a crash can lose at most an unacknowledged
// admission, never record one it denied.
func (l *Ledger) Spend(id [32]byte) error {
	if l.closed.Load() {
		return errLedgerClosed
	}
	sh := &l.shards[id[0]&(ledgerShards-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := (*sh.frozen.Load())[id]; ok {
		return ErrDoubleSpend
	}
	if _, ok := sh.delta[id]; ok {
		return ErrDoubleSpend
	}
	if l.log != nil {
		if err := l.log.Append(id[:]); err != nil {
			// Fail closed: an unrecorded admission would replay after
			// a restart.
			return fmt.Errorf("token: persisting spend: %w", err)
		}
	}
	sh.delta[id] = struct{}{}
	sh.mergeLocked()
	l.spent.Add(1)
	return nil
}

// mergeLocked folds the delta into a fresh frozen map once it is big
// enough. Caller holds sh.mu (or has exclusive access during replay).
func (sh *ledgerShard) mergeLocked() {
	if len(sh.delta) < mergeAt {
		return
	}
	old := *sh.frozen.Load()
	next := make(map[[32]byte]struct{}, len(old)+len(sh.delta))
	for k := range old {
		next[k] = struct{}{}
	}
	for k := range sh.delta {
		next[k] = struct{}{}
	}
	sh.frozen.Store(&next)
	sh.delta = make(map[[32]byte]struct{})
}

// Len returns the number of spent tokens.
func (l *Ledger) Len() int { return int(l.spent.Load()) }

// Close flushes nothing (every Spend already fsynced) and releases the
// spend log. Spends after Close fail closed.
func (l *Ledger) Close() error {
	l.closed.Store(true)
	if l.log == nil {
		return nil
	}
	return l.log.Close()
}

// SpendLogStats is the read-only audit surface behind
// `trectl tokens verify`.
type SpendLogStats struct {
	Records    int   // intact records
	Duplicates int   // records repeating an earlier ID
	TornBytes  int64 // unreadable tail bytes (damage; never repaired here)
	Torn       bool
}

// AuditSpendLog inspects dir/spend.log without modifying it: record
// count, duplicate IDs, and whether the tail is torn. A missing log is
// an empty, healthy one.
func AuditSpendLog(dir string) (SpendLogStats, error) {
	var stats SpendLogStats
	seen := make(map[[32]byte]struct{})
	fstats, err := archive.ReplayFrames(filepath.Join(dir, SpendLogName), spendMagic, func(_ int64, payload []byte) error {
		if len(payload) != 32 {
			return fmt.Errorf("token: spend record is %d bytes, want 32", len(payload))
		}
		var id [32]byte
		copy(id[:], payload)
		if _, ok := seen[id]; ok {
			stats.Duplicates++
		}
		seen[id] = struct{}{}
		return nil
	})
	if err != nil {
		return stats, err
	}
	stats.Records = fstats.Records
	stats.TornBytes = fstats.TornBytes
	stats.Torn = fstats.Truncated
	return stats, nil
}

package bench

import (
	"fmt"

	"timedrelease/internal/bls"
	"timedrelease/internal/params"
)

// RunE4 measures the primitive costs underlying every scheme —
// feasibility data the paper asserts qualitatively ("there is an
// efficient algorithm to compute ê(P,Q)", §4). It doubles as the
// coordinate-system ablation: Jacobian vs affine scalar multiplication.
func RunE4(cfg Config) (*Table, error) {
	names := []string{"Test160", "SS512", "SS1024"}
	if cfg.Quick {
		names = []string{"Test160"}
	}
	t := &Table{
		ID:    "E4",
		Title: "Primitive micro-benchmarks across parameter sizes",
		Claim: "feasibility of the pairing, hashing and signature primitives (§4, §5)",
		Columns: []string{
			"params", "pairing", "pairing (bigint)", "pairing (affine)", "pairing (prepared)", "miller", "final exp", "scalar mult (jac)", "scalar mult (bigint)", "scalar mult (wNAF)", "scalar mult (affine)", "H1 hash", "BLS sign", "BLS verify",
		},
	}

	for _, name := range names {
		set, err := params.Preset(name)
		if err != nil {
			return nil, err
		}
		iters := cfg.iters(30)
		if name == "SS1024" {
			iters = cfg.iters(10)
		}
		c, pr := set.Curve, set.Pairing
		p := c.HashToGroup("bench", []byte("P"))
		q := c.HashToGroup("bench", []byte("Q"))
		k, err := c.RandScalar(nil)
		if err != nil {
			return nil, err
		}
		key, err := bls.GenerateKey(set, nil)
		if err != nil {
			return nil, err
		}
		msg := []byte("2026-07-05T12:00:00Z")
		sig := key.Sign(set, "time", msg)

		var sink any
		pair := timeOp(iters, func() { sink = pr.Pair(p, q) })
		pairBig := timeOp(iters, func() { sink = pr.PairBig(p, q) })
		pairAffine := timeOp(iters, func() { sink = pr.PairAffine(p, q) })
		prep := pr.Precompute(p)
		pairPrepared := timeOp(iters, func() { sink = pr.PairPrepared(prep, q) })
		miller := timeOp(iters, func() { sink = pr.Miller(p, q) })
		mv := pr.Miller(p, q)
		finalExp := timeOp(iters, func() { sink = pr.FinalExp(mv) })
		smJac := timeOp(iters, func() { sink = c.ScalarMult(k, p) })
		smBig := timeOp(iters, func() { sink = c.ScalarMultBig(k, p) })
		smWNAF := timeOp(iters, func() { sink = c.ScalarMultWNAF(k, p) })
		smAff := timeOp(iters, func() { sink = c.ScalarMultAffine(k, p) })
		h1 := timeOp(iters, func() { sink = c.HashToGroup("bench-h1", msg) })
		sign := timeOp(iters, func() { sink = key.Sign(set, "time", msg) })
		verify := timeOp(iters, func() {
			if !bls.Verify(set, key.Pub, "time", msg, sig) {
				panic("verify failed")
			}
		})
		_ = sink

		t.Add(fmt.Sprintf("%s (|p|=%d,|q|=%d)", set.Name, set.P.BitLen(), set.Q.BitLen()),
			ms(pair), ms(pairBig), ms(pairAffine), ms(pairPrepared), ms(miller), ms(finalExp), ms(smJac), ms(smBig), ms(smWNAF), ms(smAff), ms(h1), ms(sign), ms(verify))
	}
	t.Note("ablation: Jacobian coordinates remove the per-step field inversion of the affine ladder; width-4 wNAF further cuts additions from m/2 to ~m/5")
	t.Note("field-backend ablation: pairing and scalar mult (jac) run on the fixed-limb Montgomery backend; the (bigint) columns pin the same algorithms on math/big (PairBig, ScalarMultBig); BENCH_field.json has the per-operation comparison")
	t.Note("pairing ablation mirrors the scalar-mult one: the default Pair runs the inversion-free Jacobian Miller loop, pairing (affine) is the per-iteration-inversion reference, pairing (prepared) reuses a precomputed fixed-argument line schedule (see BENCH_pairing.json)")
	t.Note("BLS verify uses the shared-final-exponentiation pairing-equation check (two Miller loops, one final exp)")
	return t, nil
}

package bench

import (
	"strings"
	"testing"
)

func TestAllExperimentsRunQuick(t *testing.T) {
	tables, err := RunAll(Config{Quick: true})
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(tables) != len(Experiments()) {
		t.Fatalf("got %d tables, want %d", len(tables), len(Experiments()))
	}
	for _, tab := range tables {
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", tab.ID)
		}
		text := tab.String()
		if !strings.Contains(text, tab.ID) || !strings.Contains(text, tab.Title) {
			t.Errorf("%s: rendering lacks header", tab.ID)
		}
		md := tab.Markdown()
		if !strings.HasPrefix(md, "### "+tab.ID) {
			t.Errorf("%s: markdown lacks header", tab.ID)
		}
	}
}

func TestRunOne(t *testing.T) {
	tab, err := RunOne("E6", Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "E6" {
		t.Fatalf("RunOne returned %s", tab.ID)
	}
	if _, err := RunOne("E99", Config{Quick: true}); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestTableAddPanicsOnArity(t *testing.T) {
	tab := &Table{ID: "X", Columns: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch must panic")
		}
	}()
	tab.Add("only one")
}

func TestE2ScalabilityShape(t *testing.T) {
	// The TRE rows must show constant messages; the Mont rows linear.
	tab, err := RunE2(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var treMsgs, montMsgs []string
	for _, row := range tab.Rows {
		switch {
		case strings.HasPrefix(row[0], "TRE (this paper)"):
			treMsgs = append(treMsgs, row[2])
		case strings.HasPrefix(row[0], "Mont"):
			montMsgs = append(montMsgs, row[2])
		}
	}
	for _, m := range treMsgs {
		if m != "1" {
			t.Fatalf("TRE messages = %v, want all 1", treMsgs)
		}
	}
	if len(montMsgs) < 2 || montMsgs[0] == montMsgs[len(montMsgs)-1] {
		t.Fatalf("Mont messages should grow: %v", montMsgs)
	}
}

package bench

import (
	"strings"
	"testing"
	"time"
)

func TestServerLoadDefaults(t *testing.T) {
	full := ServerLoadConfig{}.withDefaults()
	if len(full.Presets) != 2 || len(full.Clients) != 2 || len(full.Mixes) != 10 {
		t.Fatalf("full defaults: %+v", full)
	}
	if len(full.Subscribers) != 2 || full.Subscribers[1] < 50000 {
		t.Fatalf("full run must include a ≥50k subscriber level: %v", full.Subscribers)
	}
	if full.StreamPublishes <= 0 || full.StreamInterval <= 0 {
		t.Fatalf("stream cell defaults missing: %+v", full)
	}
	if len(full.ColdStartEpochs) != 2 || full.coldStartDepth() != 10000 {
		t.Fatalf("full coldstart defaults: %v", full.ColdStartEpochs)
	}
	quick := ServerLoadConfig{Quick: true}.withDefaults()
	if len(quick.Presets) != 1 || quick.Presets[0] != "Test160" {
		t.Fatalf("quick presets: %v", quick.Presets)
	}
	if len(quick.Subscribers) != 1 || quick.Subscribers[0] >= full.Subscribers[0] {
		t.Fatalf("quick subscriber level must be smaller than full: %v", quick.Subscribers)
	}
	if quick.coldStartDepth() >= full.coldStartDepth() {
		t.Fatal("quick coldstart history must be shallower than full")
	}
	noCold := ServerLoadConfig{Mixes: []string{"fetch"}}.withDefaults()
	if noCold.coldStartDepth() != 0 {
		t.Fatal("coldStartDepth must be 0 when no coldstart mix is selected")
	}
	if quick.CellDuration >= full.CellDuration {
		t.Fatal("quick cells must be shorter than full cells")
	}
	clamped := ServerLoadConfig{Window: 4, CatchUpBatch: 9}.withDefaults()
	if clamped.CatchUpBatch != 4 {
		t.Fatalf("CatchUpBatch not clamped to Window: %d", clamped.CatchUpBatch)
	}
}

func TestServerLoadRejectsUnknownMix(t *testing.T) {
	_, _, err := RunServerLoad(ServerLoadConfig{
		Quick: true, Mixes: []string{"stampede"},
		Clients: []int{1}, CellDuration: 10 * time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "stampede") {
		t.Fatalf("unknown mix not rejected: %v", err)
	}
}

// TestServerLoadQuickCell runs one real in-process cell per mix and
// sanity-checks the accounting that BENCH_server.json is built from.
func TestServerLoadQuickCell(t *testing.T) {
	rep, table, err := RunServerLoad(ServerLoadConfig{
		Quick: true, Clients: []int{2}, CellDuration: 60 * time.Millisecond,
		Window: 16, CatchUpBatch: 4, ColdStartEpochs: []int{24},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 10 {
		t.Fatalf("got %d rows, want 10 (one per mix, incl. both coldstart cells, the quorum rounds cell, the stream/relay fan-out cells and the gated tokens cell)", len(rep.Rows))
	}
	var sawPublish bool
	for _, r := range rep.Rows {
		if r.Mix == "stream" || r.Mix == "relay" {
			// Fan-out cells: Ops counts delivered events (subscribers ×
			// publishes), quantiles are publish→delivery wakeup latency.
			if r.Subscribers <= 0 || r.Clients != 0 {
				t.Fatalf("fan-out cell identity: %+v", r)
			}
			if r.Transport != "tcp" && r.Transport != "inmem" {
				t.Fatalf("fan-out cell missing transport: %+v", r)
			}
			if r.Ops != int64(r.Subscribers)*r.Published || r.Errors != 0 || r.Sheds != 0 {
				t.Fatalf("fan-out cell dropped deliveries: %+v", r)
			}
			if r.P50NS <= 0 || r.P95NS < r.P50NS || r.P99NS < r.P95NS {
				t.Fatalf("fan-out quantiles not monotone: %+v", r)
			}
			if r.PerConnBytes <= 0 {
				t.Fatalf("fan-out cell recorded no per-conn bytes: %+v", r)
			}
			if r.Mix == "stream" && r.ServerRequests != int64(r.Subscribers) {
				t.Fatalf("stream cell: %d server requests for %d subscribers, want one each", r.ServerRequests, r.Subscribers)
			}
			continue
		}
		if r.Subscribers != 0 || r.Transport != "" || r.PerConnBytes != 0 {
			t.Fatalf("non-fan-out cell carries fan-out fields: %+v", r)
		}
		if r.Mix == "rounds" {
			// The quorum cell: every op combines k-of-n partials, so the
			// combine counter must account for every successful op and the
			// healthy fixture must lose no partial fetches.
			if r.Members != 5 || r.Quorum != 3 {
				t.Fatalf("rounds cell shape: %+v", r)
			}
			if r.QuorumCombines != r.Ops-r.Errors || r.PartialsFailed != 0 {
				t.Fatalf("rounds cell accounting: %+v", r)
			}
		} else if r.Members != 0 || r.Quorum != 0 || r.QuorumCombines != 0 || r.PartialsFailed != 0 {
			t.Fatalf("non-rounds cell carries quorum fields: %+v", r)
		}
		if r.Mix == "tokens" {
			// The gated cell: every issued batch yields redemptions, every
			// iteration deliberately double-spends exactly one token, and
			// the server's own counters must balance the client loop.
			if r.TokensIssued <= 0 || r.Redemptions <= 0 || r.DoubleSpendRejects <= 0 {
				t.Fatalf("tokens cell accounting: %+v", r)
			}
			if r.Redemptions != r.Ops {
				t.Fatalf("tokens cell Ops must count redemptions: %+v", r)
			}
			if r.Redemptions > r.TokensIssued {
				t.Fatalf("tokens cell redeemed more than issued: %+v", r)
			}
		} else if r.TokensIssued != 0 || r.Redemptions != 0 || r.DoubleSpendRejects != 0 {
			t.Fatalf("non-tokens cell carries token fields: %+v", r)
		}
		cold := r.Mix == "coldstart" || r.Mix == "coldstart-batch"
		wantClients := 2
		if cold {
			wantClients = 1 // coldstart measures one recovering receiver
		}
		if r.Preset != "Test160" || r.Clients != wantClients {
			t.Fatalf("wrong cell identity: %+v", r)
		}
		if cold {
			if r.Epochs != 24 || r.PairingsPerOp <= 0 {
				t.Fatalf("implausible coldstart cell: %+v", r)
			}
			// The tentpole claim, measured: recovering N missed epochs
			// costs TWO pairing products (4 pairings) per op on the
			// aggregate path — the aggregate pre-filter plus the blinded
			// batch admission check — and one range request instead of N
			// per-label round trips.
			if r.Mix == "coldstart" {
				if r.PairingsPerOp != 4 {
					t.Fatalf("aggregate coldstart cost %v pairings/op, want 4: %+v", r.PairingsPerOp, r)
				}
				if r.ServerRequests != r.Ops {
					t.Fatalf("aggregate coldstart: %d requests for %d ops, want 1 per op", r.ServerRequests, r.Ops)
				}
			}
			if r.Mix == "coldstart-batch" && r.ServerRequests < r.Ops*int64(r.Epochs) {
				t.Fatalf("batch coldstart: %d requests for %d ops of %d epochs, want ≥ epochs per op",
					r.ServerRequests, r.Ops, r.Epochs)
			}
		} else if r.Epochs != 0 || r.PairingsPerOp != 0 {
			t.Fatalf("non-coldstart cell carries coldstart fields: %+v", r)
		}
		if r.Ops <= 0 || r.Errors != 0 || r.RPS <= 0 {
			t.Fatalf("implausible cell: %+v", r)
		}
		if r.P50NS <= 0 || r.P95NS < r.P50NS || r.P99NS < r.P95NS {
			t.Fatalf("quantiles not monotone: %+v", r)
		}
		if r.Mix == "encdec" {
			// Pure client-side compute: must NOT touch the server.
			if r.ServerRequests != 0 {
				t.Fatalf("encdec cell hit the server: %+v", r)
			}
		} else if r.ServerRequests <= 0 {
			t.Fatalf("in-process cell recorded no server requests: %+v", r)
		}
		if r.ClientPairings <= 0 {
			t.Fatalf("clients verified nothing: %+v", r)
		}
		if r.Mix == "mixed" && r.Published > 0 {
			sawPublish = true
		}
		if r.Mix != "mixed" && r.Published != 0 {
			t.Fatalf("non-mixed cell published: %+v", r)
		}
	}
	_ = sawPublish // publish share is probabilistic; tolerate zero in a 60ms cell
	if !strings.Contains(table.String(), "Test160/catchup") {
		t.Fatalf("table missing catchup cell:\n%s", table.String())
	}
}

func TestPct(t *testing.T) {
	if pct(nil, 0.5) != 0 {
		t.Fatal("empty samples must yield 0")
	}
	s := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	if got := pct(s, 0.50); got != 50 {
		t.Fatalf("p50 = %d", got)
	}
	if got := pct(s, 0.99); got != 90 {
		t.Fatalf("p99 (nearest-rank) = %d", got)
	}
	if got := pct(s, 1.0); got != 100 {
		t.Fatalf("p100 = %d", got)
	}
}

func TestNSHuman(t *testing.T) {
	for _, tc := range []struct {
		ns   int64
		want string
	}{
		{950, "950 ns"},
		{1_500, "1.5 µs"},
		{2_500_000, "2.50 ms"},
		{3_000_000_000, "3.00 s"},
	} {
		if got := nsHuman(tc.ns); got != tc.want {
			t.Fatalf("nsHuman(%d) = %q, want %q", tc.ns, got, tc.want)
		}
	}
}

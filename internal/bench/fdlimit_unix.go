//go:build unix

package bench

import "syscall"

// fdLimit returns the soft RLIMIT_NOFILE, or 0 when it cannot be read.
// The stream cells use it to decide whether a subscriber count fits
// real TCP sockets or must run over the in-memory transport.
func fdLimit() int64 {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return 0
	}
	return int64(rl.Cur)
}

package bench

import (
	"encoding/json"
	"fmt"
	"time"

	"timedrelease/internal/bls381"
	"timedrelease/internal/pairing"
	"timedrelease/internal/params"
)

// PairingRow holds one preset's timings of every Miller-loop evaluation
// strategy, in nanoseconds per operation. The speedups are relative to
// the affine reference loop — the implementation the repository shipped
// before the inversion-free rewrite — so they quantify exactly what the
// optimisation bought.
type PairingRow struct {
	Preset  string `json:"preset"`
	Backend string `json:"backend"` // "bigint" (reference), "montgomery" (fixed-limb) or "bls12381" (Type-3)
	PBits   int    `json:"p_bits"`
	QBits   int    `json:"q_bits"`
	Iters   int    `json:"iters"`

	AffineNS     int64 `json:"affine_ns"`     // reference: one F_p inversion per loop iteration
	ProjectiveNS int64 `json:"projective_ns"` // inversion-free Jacobian loop (Pair default)
	PrecomputeNS int64 `json:"precompute_ns"` // one-off cost of Precompute(P)
	PreparedNS   int64 `json:"prepared_ns"`   // PairPrepared with the schedule amortised away
	ProductNS    int64 `json:"product4_ns"`   // PairProduct over 4 pairs (shared final exp)
	VerifyNS     int64 `json:"bls_verify_ns"` // prepared-key BLS verification (2 Miller loops, 1 final exp)

	SpeedupProjective float64 `json:"speedup_projective"` // affine / projective
	SpeedupPrepared   float64 `json:"speedup_prepared"`   // affine / prepared

	// Allocation discipline of the steady-state paths (-benchmem style:
	// heap allocations and bytes per operation). The montgomery rows are
	// the ones the zero-alloc contract in docs/PERFORMANCE.md covers.
	ProjectiveAllocs int64 `json:"projective_allocs_per_op"`
	ProjectiveBytes  int64 `json:"projective_bytes_per_op"`
	PreparedAllocs   int64 `json:"prepared_allocs_per_op"`
	PreparedBytes    int64 `json:"prepared_bytes_per_op"`
}

// PairingReport is the JSON document `make bench-pairing` writes to
// BENCH_pairing.json.
type PairingReport struct {
	Description string       `json:"description"`
	Rows        []PairingRow `json:"rows"`
}

// RunPairing benchmarks the pairing evaluation strategies against the
// affine reference at each preset and returns both a machine-readable
// report and a rendered table.
func RunPairing(cfg Config) (*PairingReport, *Table, error) {
	names := []string{"Test160", "SS512", "BLS12-381"}
	if cfg.Quick {
		names = []string{"Test160"}
	}
	if cfg.Preset != "" {
		names = []string{cfg.Preset}
	}
	rep := &PairingReport{
		Description: "pairing evaluation strategies: Type-1 Tate rows vs their affine reference Miller loop (speedups are affine_ns / strategy_ns), plus the Type-3 BLS12-381 optimal ate row (no affine reference; zeros there)",
	}
	t := &Table{
		ID:    "PAIRING",
		Title: "Miller-loop strategies: affine reference vs inversion-free vs prepared",
		Claim: "the pairing dominates every protocol cost (§4); removing per-iteration inversions and precomputing fixed-argument line schedules attacks it directly",
		Columns: []string{
			"params", "affine", "projective", "prepared", "precompute", "product/4 pairs", "speedup (proj)", "speedup (prep)", "prep allocs/op", "prep B/op",
		},
	}

	for _, name := range names {
		set, err := params.Preset(name)
		if err != nil {
			return nil, nil, err
		}
		iters := cfg.iters(20)
		if set.Asymmetric() {
			row := pairingRowBLS(set, iters)
			rep.Rows = append(rep.Rows, row)
			t.Add(fmt.Sprintf("%s/%s (|p|=%d,|q|=%d)", set.Name, row.Backend, row.PBits, row.QBits),
				"n/a",
				nsDur(row.ProjectiveNS), nsDur(row.PreparedNS), nsDur(row.PrecomputeNS), nsDur(row.ProductNS),
				"n/a", "n/a",
				fmt.Sprintf("%d", row.PreparedAllocs), fmt.Sprintf("%d", row.PreparedBytes))
			continue
		}
		pr := set.Pairing
		c := set.Curve
		p := c.HashToGroup("bench-pairing", []byte("P"))
		q := c.HashToGroup("bench-pairing", []byte("Q"))
		prep := pr.Precompute(p)
		pairs := make([]pairing.PointPair, 4)
		for i := range pairs {
			pairs[i] = pairing.PointPair{
				P: c.HashToGroup("bench-pairing", []byte{byte(i)}),
				Q: c.HashToGroup("bench-pairing", []byte{byte(16 + i)}),
			}
		}

		var sink any
		affine := timeOp(iters, func() { sink = pr.PairAffine(p, q) })
		precompute := timeOp(iters, func() { sink = pr.Precompute(p) })
		_ = sink

		// One row per backend: "bigint" pins the reference code paths
		// (the implementation of record before the fixed-limb backend),
		// "montgomery" the routed defaults. Both are re-measured on the
		// same machine so the ablation is apples-to-apples.
		type backendOps struct {
			name       string
			projective func() any
			prepared   func() any
			product    func() any
			verify     func() bool
		}
		backends := []backendOps{
			{
				name:       "bigint",
				projective: func() any { return pr.PairBig(p, q) },
				prepared:   func() any { return pr.PairPreparedBig(prep, q) },
				product:    func() any { return pr.PairProductBig(pairs) },
				verify:     func() bool { return pr.SamePairingPreparedBig(prep, q, prep, q) },
			},
			{
				name:       "montgomery",
				projective: func() any { return pr.Pair(p, q) },
				prepared:   func() any { return pr.PairPrepared(prep, q) },
				product:    func() any { return pr.PairProduct(pairs) },
				verify:     func() bool { return pr.SamePairingPrepared(prep, q, prep, q) },
			},
		}
		for _, b := range backends {
			projective := timeOp(iters, func() { sink = b.projective() })
			prepared := timeOp(iters, func() { sink = b.prepared() })
			product := timeOp(iters, func() { sink = b.product() })
			verify := timeOp(iters, func() {
				if !b.verify() {
					panic("trivially equal pairings differ")
				}
			})
			projAllocs, projBytes := memPerOp(iters, func() { sink = b.projective() })
			prepAllocs, prepBytes := memPerOp(iters, func() { sink = b.prepared() })
			_ = sink

			row := PairingRow{
				Preset:            set.Name,
				Backend:           b.name,
				PBits:             set.P.BitLen(),
				QBits:             set.Q.BitLen(),
				Iters:             iters,
				AffineNS:          affine.Nanoseconds(),
				ProjectiveNS:      projective.Nanoseconds(),
				PrecomputeNS:      precompute.Nanoseconds(),
				PreparedNS:        prepared.Nanoseconds(),
				ProductNS:         product.Nanoseconds(),
				VerifyNS:          verify.Nanoseconds(),
				SpeedupProjective: float64(affine.Nanoseconds()) / float64(projective.Nanoseconds()),
				SpeedupPrepared:   float64(affine.Nanoseconds()) / float64(prepared.Nanoseconds()),
				ProjectiveAllocs:  projAllocs,
				ProjectiveBytes:   projBytes,
				PreparedAllocs:    prepAllocs,
				PreparedBytes:     prepBytes,
			}
			rep.Rows = append(rep.Rows, row)
			t.Add(fmt.Sprintf("%s/%s (|p|=%d,|q|=%d)", set.Name, b.name, row.PBits, row.QBits),
				ms(affine), ms(projective), ms(prepared), ms(precompute), ms(product),
				fmt.Sprintf("%.2fx", row.SpeedupProjective), fmt.Sprintf("%.2fx", row.SpeedupPrepared),
				fmt.Sprintf("%d", row.PreparedAllocs), fmt.Sprintf("%d", row.PreparedBytes))
		}
	}
	t.Note("affine = per-iteration field inversion (the pre-optimisation reference, kept as PairAffine); projective = Jacobian inversion-free loop (Pair)")
	t.Note("bigint rows pin the *Big reference methods; montgomery rows are the routed defaults on the fixed-limb backend")
	t.Note("prepared excludes the one-off Precompute cost (shown separately); it amortises after one reuse of the fixed argument")
	t.Note("product = PairProduct over 4 pairs: parallel Miller loops, one shared final exponentiation")
	t.Note("bls12381 rows time the Type-3 optimal ate pairing; the Tate affine reference loop does not exist there, so the affine column and the speedups are n/a (0 in the JSON)")
	t.Note("allocs/op and B/op are -benchmem-style means over the prepared path; the JSON also records the projective path's")
	return rep, t, nil
}

// pairingRowBLS times the BLS12-381 optimal ate strategies via the
// backend's bench hooks. The affine reference loop is a Tate-pairing
// artifact with no Type-3 counterpart, so AffineNS and the speedup
// ratios stay zero.
func pairingRowBLS(set *params.Set, iters int) PairingRow {
	pairFull, pairPrep, precomp, product4, verify := bls381.BenchPairingOps()
	projective := timeOp(iters, pairFull)
	prepared := timeOp(iters, pairPrep)
	precompute := timeOp(iters, precomp)
	product := timeOp(iters, product4)
	verifyD := timeOp(iters, verify)
	projAllocs, projBytes := memPerOp(iters, pairFull)
	prepAllocs, prepBytes := memPerOp(iters, pairPrep)
	return PairingRow{
		Preset:           set.Name,
		Backend:          "bls12381",
		PBits:            set.P.BitLen(),
		QBits:            set.Q.BitLen(),
		Iters:            iters,
		ProjectiveNS:     projective.Nanoseconds(),
		PrecomputeNS:     precompute.Nanoseconds(),
		PreparedNS:       prepared.Nanoseconds(),
		ProductNS:        product.Nanoseconds(),
		VerifyNS:         verifyD.Nanoseconds(),
		ProjectiveAllocs: projAllocs,
		ProjectiveBytes:  projBytes,
		PreparedAllocs:   prepAllocs,
		PreparedBytes:    prepBytes,
	}
}

// nsDur renders a nanosecond count the way ms renders a Duration.
func nsDur(ns int64) string { return ms(time.Duration(ns)) }

// JSON renders the report with stable indentation for check-in.
func (r *PairingReport) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

package bench

import (
	"fmt"

	"timedrelease/internal/bls"
	"timedrelease/internal/core"
	"timedrelease/internal/wire"
)

// RunE6 measures the self-authentication claim of §5.3.1: the update
// s·H1(T) *is* a BLS short signature, so no additional server signature
// is attached. The strawman comparator signs the update blob with a
// second, independent BLS key — the overhead a naive design would pay.
func RunE6(cfg Config) (*Table, error) {
	set, err := cfg.set()
	if err != nil {
		return nil, err
	}
	const label = "2026-07-05T12:00:00Z"
	iters := cfg.iters(20)

	sc := core.NewScheme(set)
	server, err := sc.ServerKeyGen(nil)
	if err != nil {
		return nil, err
	}
	codec := wire.NewCodec(set)
	upd := sc.IssueUpdate(server, label)
	encoded := codec.MarshalKeyUpdate(upd)

	// Strawman: update ‖ detached signature over the encoded update by a
	// separate signing key.
	sigKey, err := bls.GenerateKey(set, nil)
	if err != nil {
		return nil, err
	}
	detached := sigKey.Sign(set, "detached", encoded)
	strawmanSize := len(encoded) + set.Curve.MarshalSize()

	verifySelf := timeOp(iters, func() {
		if !sc.VerifyUpdate(server.Pub, upd) {
			panic("verify failed")
		}
	})
	verifyStrawman := timeOp(iters, func() {
		// The strawman must verify the detached signature AND the client
		// still has to trust that the inner point is s·H1(T) — i.e. run
		// the same pairing check — so the naive design pays both.
		if !bls.Verify(set, sigKey.Pub, "detached", encoded, detached) {
			panic("verify failed")
		}
		if !sc.VerifyUpdate(server.Pub, upd) {
			panic("verify failed")
		}
	})
	issue := timeOp(iters, func() { sc.IssueUpdate(server, label) })

	t := &Table{
		ID:    "E6",
		Title: fmt.Sprintf("Self-authenticated updates vs detached-signature strawman (%s)", set.Name),
		Claim: `"the key update is a short signature inherently authenticating itself; no additional overhead of a server signature is needed" (§5.3.1)`,
		Columns: []string{
			"design", "update size", "issue time", "verify time",
		},
	}
	t.Add("self-authenticated (this paper)", bytesHuman(int64(len(encoded))), ms(issue), ms(verifySelf))
	t.Add("update + detached signature", bytesHuman(int64(strawmanSize)), ms(issue)+" + sign", ms(verifyStrawman))

	// Catch-up batching: verifying a backlog of missed updates with one
	// random-linear-combination pairing equation vs one equation each.
	const backlog = 20
	msgs := make([][]byte, backlog)
	sigs := make([]bls.Signature, backlog)
	ups := make([]core.KeyUpdate, backlog)
	for i := range msgs {
		l := fmt.Sprintf("epoch-%03d", i)
		ups[i] = sc.IssueUpdate(server, l)
		msgs[i] = []byte(l)
		sigs[i] = bls.Signature{Point: ups[i].Point}
	}
	individually := timeOp(cfg.iters(5), func() {
		for _, u := range ups {
			if !sc.VerifyUpdate(server.Pub, u) {
				panic("verify failed")
			}
		}
	})
	batched := timeOp(cfg.iters(5), func() {
		ok, err := bls.VerifyBatch(set, bls.PublicKey(server.Pub), core.TimeDomain, msgs, sigs, nil)
		if err != nil || !ok {
			panic("batch verify failed")
		}
	})
	batchedPrepared := timeOp(cfg.iters(5), func() {
		ok, err := sc.PreparedServerKey(server.Pub).VerifyBatch(set, core.TimeDomain, msgs, sigs, nil)
		if err != nil || !ok {
			panic("batch verify failed")
		}
	})
	t.Add(fmt.Sprintf("catch-up: %d updates, one by one", backlog), bytesHuman(int64(backlog*len(encoded))), "—", ms(individually))
	t.Add(fmt.Sprintf("catch-up: %d updates, batched", backlog), bytesHuman(int64(backlog*len(encoded))), "—", ms(batched))
	t.Add(fmt.Sprintf("catch-up: %d updates, batched + prepared key", backlog), bytesHuman(int64(backlog*len(encoded))), "—", ms(batchedPrepared))

	t.Note("update encoding = label + one compressed point (%d B point at this size)", set.Curve.MarshalSize())
	t.Note("the strawman is strictly worse: +1 point on the wire and a second pairing-equation verification")
	t.Note("batched catch-up: ê(G, Σeᵢσᵢ) = ê(sG, ΣeᵢH1(Tᵢ)) with random 128-bit blinders — 2 Miller loops for the whole backlog (Client.CatchUp uses this)")
	t.Note("verify/batch times use the scheme's per-server-key cache of precomputed Miller-loop line schedules for (G, sG); the blinded scalar multiplications run on a GOMAXPROCS-bounded pool")
	return t, nil
}

package bench

import (
	"fmt"

	"timedrelease/internal/baseline/rivest"
	"timedrelease/internal/core"
	"timedrelease/internal/simnet"
	"timedrelease/internal/wire"
)

// RunE9 reproduces the horizon argument of §1 footnote 2: Rivest's
// offline server must pre-publish a key for every future epoch a sender
// might choose, so its storage and publication grow linearly with the
// horizon, while TRE supports "any release time in the (possibly
// infinite) future" with constant server key material.
//
// The per-epoch byte costs are measured by really generating a base
// horizon (and cross-checked against the accounting in
// internal/baseline/rivest's tests, which verify exact linearity);
// larger horizons are then exact arithmetic, not a simulation — each
// epoch is one more key pair of fixed size.
func RunE9(cfg Config) (*Table, error) {
	set, err := cfg.set()
	if err != nil {
		return nil, err
	}
	baseEpochs := 60
	if cfg.Quick {
		baseEpochs = 10
	}
	base, err := simnet.RivestHorizon(set, baseEpochs)
	if err != nil {
		return nil, err
	}
	perEpochPub := base.BytesSent / int64(baseEpochs)
	perEpochStore := base.StateBytes / int64(baseEpochs)

	// Sanity: the accounting must match the direct definition.
	srv := rivest.NewServer(set)
	if err := srv.ExtendHorizon(nil, 1); err != nil {
		return nil, err
	}
	if srv.PublishedKeyBytes() != perEpochPub || srv.StoredKeyBytes() != perEpochStore {
		return nil, fmt.Errorf("bench: E9 per-epoch cost mismatch (%d vs %d pub, %d vs %d store)",
			srv.PublishedKeyBytes(), perEpochPub, srv.StoredKeyBytes(), perEpochStore)
	}

	horizons := []struct {
		name   string
		epochs int64
	}{
		{"1 hour @1min", 60},
		{"1 day @1min", 1440},
		{"1 month @1min", 43200},
		{"1 year @1min", 525600},
		{"10 years @1min", 5256000},
	}
	if cfg.Quick {
		horizons = horizons[:3]
	}

	t := &Table{
		ID:    "E9",
		Title: fmt.Sprintf("Server pre-publication cost vs release-time horizon (%s)", set.Name),
		Claim: `"a sender in our scheme could choose any release time in the (possibly infinite) future ... the server only needs to publish information whose corresponding time has passed" (§1, fn. 2)`,
		Columns: []string{
			"design", "horizon", "pre-published bytes", "server key storage", "sender beyond horizon?",
		},
	}
	for _, h := range horizons {
		t.Add("Rivest offline key list", h.name,
			bytesHuman(h.epochs*perEpochPub),
			bytesHuman(h.epochs*perEpochStore),
			"blocked until list extended")
	}

	// TRE: the server's entire key material is one scalar + one point,
	// independent of horizon.
	sc := core.NewScheme(set)
	server, err := sc.ServerKeyGen(nil)
	if err != nil {
		return nil, err
	}
	codec := wire.NewCodec(set)
	pubBytes := int64(len(codec.MarshalServerPublicKey(server.Pub)))
	keyBytes := int64((set.Q.BitLen() + 7) / 8)
	t.Add("TRE (this paper)", "unbounded", bytesHuman(pubBytes), bytesHuman(keyBytes), "any future label works")

	t.Note("Rivest rows: one hashed-ElGamal key pair per epoch (%d B published, %d B stored each); a %d-epoch base horizon was really generated and the linearity is test-verified, so larger rows are exact", perEpochPub, perEpochStore, baseEpochs)
	t.Note("TRE publishes only (G, sG) once; updates are generated on demand when their instant arrives")
	return t, nil
}

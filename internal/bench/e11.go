package bench

import (
	"fmt"

	"timedrelease/internal/core"
)

// RunE11 is the amortised-encryption ablation: the Encryptor caches the
// per-(receiver, label) pairing base ê(asG, H1(T)) so that after the
// first message, encryption needs no Miller loop — only a G1 scalar
// multiplication and a G2 exponentiation. This quantifies how cheap
// bulk sending to one receiver becomes (relevant to the sealed-bid and
// press-release workloads of §1).
func RunE11(cfg Config) (*Table, error) {
	set, err := cfg.set()
	if err != nil {
		return nil, err
	}
	const label = "2026-07-05T12:00:00Z"
	iters := cfg.iters(30)

	sc := core.NewScheme(set)
	server, err := sc.ServerKeyGen(nil)
	if err != nil {
		return nil, err
	}
	user, err := sc.UserKeyGen(server.Pub, nil)
	if err != nil {
		return nil, err
	}
	msg := make([]byte, 64)

	direct := timeOp(iters, func() {
		if _, err := sc.Encrypt(nil, server.Pub, user.Pub, label, msg); err != nil {
			panic(err)
		}
	})

	enc, err := sc.NewEncryptor(server.Pub, user.Pub)
	if err != nil {
		return nil, err
	}
	// Cold: includes the one-off base pairing (fresh label each call).
	cold := timeOp(iters, func() {
		e2, err := sc.NewEncryptor(server.Pub, user.Pub)
		if err != nil {
			panic(err)
		}
		if _, err := e2.Encrypt(nil, label, msg); err != nil {
			panic(err)
		}
	})
	// Warm: base cached; steady-state per-message cost.
	if _, err := enc.Encrypt(nil, label, msg); err != nil {
		return nil, err
	}
	warm := timeOp(iters, func() {
		if _, err := enc.Encrypt(nil, label, msg); err != nil {
			panic(err)
		}
	})
	warmCCA := timeOp(iters, func() {
		if _, err := enc.EncryptCCA(nil, label, msg); err != nil {
			panic(err)
		}
	})

	t := &Table{
		ID:    "E11",
		Title: fmt.Sprintf("Amortised encryption ablation (%s)", set.Name),
		Claim: "extension: caching ê(asG, H1(T)) per (receiver, label) removes the pairing and the key check from the per-message cost",
		Columns: []string{
			"path", "per-message cost", "speedup vs direct",
		},
	}
	t.Add("Scheme.Encrypt (key check + pairing every message)", ms(direct), "1.00x")
	t.Add("Encryptor, cold (first message to a label)", ms(cold), fmt.Sprintf("%.2fx", float64(direct)/float64(cold)))
	t.Add("Encryptor, warm (subsequent messages)", ms(warm), fmt.Sprintf("%.2fx", float64(direct)/float64(warm)))
	t.Add("Encryptor, warm, FO/CCA", ms(warmCCA), fmt.Sprintf("%.2fx", float64(direct)/float64(warmCCA)))
	t.Note("identical ciphertext distribution on both paths (ê(r·asG, H1T) = ê(asG, H1T)^r); byte-equality is pinned by TestEncryptorDeterministicAgreement")
	return t, nil
}

package bench

import (
	"crypto/rand"
	"encoding/json"
	"fmt"

	"timedrelease/internal/bls381"
	"timedrelease/internal/params"
)

// FieldRow holds one (preset, backend) micro-benchmark of the base
// field's hot operations, in nanoseconds per operation.
type FieldRow struct {
	Preset  string `json:"preset"`
	Backend string `json:"backend"` // "bigint", "montgomery" or "bls12381"
	PBits   int    `json:"p_bits"`
	Iters   int    `json:"iters"`

	MulNS int64 `json:"mul_ns"`
	SqrNS int64 `json:"sqr_ns"`
	InvNS int64 `json:"inv_ns"`

	// -benchmem-style allocation counters per single operation. The
	// montgomery backend's Mul/Sqr/Inv are all zero-alloc (stack
	// accumulators and stack exponentiation buffers); bigint allocates a
	// fresh big.Int per result.
	MulAllocs int64 `json:"mul_allocs_per_op"`
	MulBytes  int64 `json:"mul_bytes_per_op"`
	InvAllocs int64 `json:"inv_allocs_per_op"`
	InvBytes  int64 `json:"inv_bytes_per_op"`
}

// FieldReport is the JSON document `make bench-field` writes to
// BENCH_field.json.
type FieldReport struct {
	Description string     `json:"description"`
	Rows        []FieldRow `json:"rows"`
}

// RunField micro-benchmarks F_p multiplication, squaring and inversion
// on both backends at each preset. Operation counts are batched (one
// timeOp sample covers fieldBatch operations) because a single limb
// multiplication is far below timer resolution.
func RunField(cfg Config) (*FieldReport, *Table, error) {
	const fieldBatch = 1000
	names := []string{"Test160", "SS512", "BLS12-381"}
	if cfg.Quick {
		names = []string{"Test160"}
	}
	if cfg.Preset != "" {
		names = []string{cfg.Preset}
	}
	rep := &FieldReport{
		Description: "F_p Mul/Sqr/Inv per backend; bigint = math/big reference, montgomery = fixed-limb CIOS backend, bls12381 = the Type-3 backend's 381-bit six-limb field; ns per single operation",
	}
	t := &Table{
		ID:    "FIELD",
		Title: "Base-field backends: math/big reference vs fixed-limb Montgomery",
		Claim: "every pairing and curve operation reduces to F_p multiplications; the fixed-limb Montgomery backend removes allocation and per-op reduction overhead",
		Columns: []string{
			"params/backend", "mul", "sqr", "inv", "mul allocs/op", "mul B/op",
		},
	}

	for _, name := range names {
		set, err := params.Preset(name)
		if err != nil {
			return nil, nil, err
		}
		if set.Asymmetric() {
			row, err := fieldRowBLS(set, cfg, fieldBatch)
			if err != nil {
				return nil, nil, err
			}
			rep.Rows = append(rep.Rows, row)
			t.Add(fmt.Sprintf("%s/%s (|p|=%d)", set.Name, row.Backend, row.PBits),
				fmt.Sprintf("%d ns", row.MulNS),
				fmt.Sprintf("%d ns", row.SqrNS),
				fmt.Sprintf("%d ns", row.InvNS),
				fmt.Sprintf("%d", row.MulAllocs),
				fmt.Sprintf("%d", row.MulBytes))
			continue
		}
		f := set.Curve.F
		m := f.Mont()
		if m == nil {
			return nil, nil, fmt.Errorf("bench: preset %s has no Montgomery backend", name)
		}
		iters := cfg.iters(20)
		a, err := f.Rand(rand.Reader)
		if err != nil {
			return nil, nil, err
		}
		b, err := f.Rand(rand.Reader)
		if err != nil {
			return nil, nil, err
		}
		am, bm, rm := m.NewElem(), m.NewElem(), m.NewElem()
		m.ToMont(am, a)
		m.ToMont(bm, b)

		perOp := func(batch int, run func()) int64 {
			d := timeOp(iters, func() {
				for i := 0; i < batch; i++ {
					run()
				}
			})
			return d.Nanoseconds() / int64(batch)
		}
		backends := []struct {
			name          string
			mul, sqr, inv func()
		}{
			{
				name: "bigint",
				mul:  func() { f.Mul(a, b) },
				sqr:  func() { f.Sqr(a) },
				inv:  func() { f.Inv(a) },
			},
			{
				name: "montgomery",
				mul:  func() { m.Mul(rm, am, bm) },
				sqr:  func() { m.Sqr(rm, am) },
				inv:  func() { m.Inv(rm, am) },
			},
		}
		for _, bk := range backends {
			row := FieldRow{
				Preset:  set.Name,
				Backend: bk.name,
				PBits:   set.P.BitLen(),
				Iters:   iters * fieldBatch,
				MulNS:   perOp(fieldBatch, bk.mul),
				SqrNS:   perOp(fieldBatch, bk.sqr),
				// Inversions are orders of magnitude slower than
				// multiplications; a small batch keeps the run short.
				InvNS: perOp(fieldBatch/20, bk.inv),
			}
			row.MulAllocs, row.MulBytes = memPerOp(iters*fieldBatch, bk.mul)
			row.InvAllocs, row.InvBytes = memPerOp(iters*fieldBatch/20, bk.inv)
			rep.Rows = append(rep.Rows, row)
			t.Add(fmt.Sprintf("%s/%s (|p|=%d)", set.Name, bk.name, row.PBits),
				fmt.Sprintf("%d ns", row.MulNS),
				fmt.Sprintf("%d ns", row.SqrNS),
				fmt.Sprintf("%d ns", row.InvNS),
				fmt.Sprintf("%d", row.MulAllocs),
				fmt.Sprintf("%d", row.MulBytes))
		}
	}
	t.Note("montgomery Mul/Sqr exclude domain conversion (operands stay in Montgomery form across whole pairings)")
	t.Note("bigint Inv is the extended-Euclid big.Int ModInverse; montgomery and bls12381 Inv are Fermat exponentiations on limbs")
	t.Note("bls12381 rows time the Type-3 backend's 381-bit six-limb base field (unrolled CIOS); it has no bigint reference path")
	t.Note("allocs/op and B/op are -benchmem-style means; the JSON also records the inversion path's")
	return rep, t, nil
}

// fieldRowBLS times the BLS12-381 backend's fixed six-limb base field
// via its exported bench hooks (the field type itself is unexported).
func fieldRowBLS(set *params.Set, cfg Config, fieldBatch int) (FieldRow, error) {
	mul, sqr, inv := bls381.BenchFieldOps()
	iters := cfg.iters(20)
	perOp := func(batch int, run func()) int64 {
		d := timeOp(iters, func() {
			for i := 0; i < batch; i++ {
				run()
			}
		})
		return d.Nanoseconds() / int64(batch)
	}
	row := FieldRow{
		Preset:  set.Name,
		Backend: "bls12381",
		PBits:   set.P.BitLen(),
		Iters:   iters * fieldBatch,
		MulNS:   perOp(fieldBatch, mul),
		SqrNS:   perOp(fieldBatch, sqr),
		InvNS:   perOp(fieldBatch/20, inv),
	}
	row.MulAllocs, row.MulBytes = memPerOp(iters*fieldBatch, mul)
	row.InvAllocs, row.InvBytes = memPerOp(iters*fieldBatch/20, inv)
	return row, nil
}

// JSON renders the report with stable indentation for check-in.
func (r *FieldReport) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

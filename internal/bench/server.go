package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"timedrelease/internal/core"
	"timedrelease/internal/obs"
	"timedrelease/internal/params"
	"timedrelease/internal/timefmt"
	"timedrelease/internal/timeserver"
)

// ServerLoadConfig controls the serving-path load harness
// (cmd/treload, `make bench-server`). The zero value selects the
// published-report defaults; Quick shrinks everything for tests.
type ServerLoadConfig struct {
	Presets      []string      // parameter sets (default Test160, SS512; Quick: Test160)
	Clients      []int         // concurrency levels (default 4, 16; Quick: 2, 4)
	Mixes        []string      // workload mixes (default fetch, catchup, mixed)
	CellDuration time.Duration // wall time per (preset, mix, clients) cell
	Window       int           // pre-published labels the workload draws from
	CatchUpBatch int           // labels per CatchUp call
	// ColdStartEpochs are the missed-epoch counts measured by the
	// coldstart mixes: one receiver returning after N epochs offline
	// catches up in a single CatchUp call (default 1000, 10000; Quick:
	// 96). Requires that much pre-published history.
	ColdStartEpochs []int
	// Subscribers are the concurrent-connection counts measured by the
	// stream and relay mixes (default 1000, 50000; Quick: 50). Counts
	// that do not fit the process FD limit run over an in-memory
	// transport, recorded per row.
	Subscribers []int
	// StreamPublishes is how many forward epochs each stream/relay cell
	// publishes (default 8; Quick: 4); StreamInterval is their spacing —
	// it must give the fan-out time to drain, or slow subscribers are
	// shed (which the row then reports).
	StreamPublishes int
	StreamInterval  time.Duration
	BaseURL         string // drive a remote server instead of in-process
	Quick           bool
}

// withDefaults fills unset fields.
func (c ServerLoadConfig) withDefaults() ServerLoadConfig {
	if len(c.Presets) == 0 {
		if c.Quick {
			c.Presets = []string{"Test160"}
		} else {
			c.Presets = []string{"Test160", "SS512"}
		}
	}
	if len(c.Clients) == 0 {
		if c.Quick {
			c.Clients = []int{2, 4}
		} else {
			c.Clients = []int{4, 16}
		}
	}
	if len(c.Mixes) == 0 {
		c.Mixes = []string{"fetch", "catchup", "mixed", "encdec", "coldstart", "coldstart-batch", "rounds", "stream", "relay", "tokens"}
	}
	if len(c.ColdStartEpochs) == 0 {
		if c.Quick {
			c.ColdStartEpochs = []int{96}
		} else {
			c.ColdStartEpochs = []int{1000, 10000}
		}
	}
	if len(c.Subscribers) == 0 {
		if c.Quick {
			c.Subscribers = []int{50}
		} else {
			c.Subscribers = []int{1000, 50000}
		}
	}
	if c.StreamPublishes <= 0 {
		if c.Quick {
			c.StreamPublishes = 4
		} else {
			c.StreamPublishes = 8
		}
	}
	if c.StreamInterval <= 0 {
		if c.Quick {
			c.StreamInterval = 20 * time.Millisecond
		} else {
			c.StreamInterval = time.Second
		}
	}
	if c.CellDuration <= 0 {
		if c.Quick {
			c.CellDuration = 250 * time.Millisecond
		} else {
			c.CellDuration = 2 * time.Second
		}
	}
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.CatchUpBatch <= 0 {
		c.CatchUpBatch = 8
	}
	if c.CatchUpBatch > c.Window {
		c.CatchUpBatch = c.Window
	}
	return c
}

// coldStartDepth returns the deepest history the configured coldstart
// cells need, or 0 when no coldstart mix is selected.
func (c ServerLoadConfig) coldStartDepth() int {
	depth := 0
	for _, m := range c.Mixes {
		if m != "coldstart" && m != "coldstart-batch" {
			continue
		}
		for _, e := range c.ColdStartEpochs {
			if e > depth {
				depth = e
			}
		}
	}
	return depth
}

// ServerRow is one (preset, mix, concurrency) cell of the load report.
type ServerRow struct {
	Preset  string `json:"preset"`
	Mix     string `json:"mix"`
	Clients int    `json:"clients"`

	Ops        int64   `json:"ops"`
	Errors     int64   `json:"errors"`
	DurationNS int64   `json:"duration_ns"`
	RPS        float64 `json:"rps"`
	P50NS      int64   `json:"p50_ns"`
	P95NS      int64   `json:"p95_ns"`
	P99NS      int64   `json:"p99_ns"`

	// Server-side accounting for the cell (0 when driving a remote
	// server whose counters are not reachable).
	ServerRequests int64 `json:"server_requests"`
	Published      int64 `json:"published"`
	// Client-side pairing evaluations — the cryptographic cost the
	// passive-server design pushes to the edges.
	ClientPairings int64 `json:"client_pairings"`

	// Coldstart cells only: how many epochs one catch-up op spans, and
	// the pairing evaluations each op cost. The aggregate path should
	// hold PairingsPerOp at 2 however large Epochs grows; the batch
	// path scales with it.
	Epochs        int     `json:"epochs,omitempty"`
	PairingsPerOp float64 `json:"pairings_per_op,omitempty"`

	// Rounds cells only: the k-of-n shape of the measured beacon
	// network, how many quorum combines succeeded, and how many partial
	// fetches failed along the way. P50/P95/P99 are per-op
	// QuorumClient.Update latency — n concurrent partial fetches, k
	// pairing verifications, one Lagrange combine.
	Members        int   `json:"members,omitempty"`
	Quorum         int   `json:"quorum,omitempty"`
	QuorumCombines int64 `json:"quorum_combines,omitempty"`
	PartialsFailed int64 `json:"partials_failed,omitempty"`

	// Stream/relay cells only: concurrent subscriber count, the
	// transport carrying them ("tcp", or "inmem" when the count does not
	// fit the process FD limit — recorded alongside), bytes each
	// connection received, and how many slow subscribers the hub shed.
	// For these cells P50/P95/P99 are publish→delivery wakeup latency
	// and Ops counts delivered events.
	Subscribers  int     `json:"subscribers,omitempty"`
	Transport    string  `json:"transport,omitempty"`
	FDLimit      int64   `json:"fd_limit,omitempty"`
	PerConnBytes float64 `json:"per_conn_bytes,omitempty"`
	Sheds        int64   `json:"sheds,omitempty"`

	// Tokens cells only: blind tokens issued, successful redemptions
	// admitted through the gate, and deliberate double-spend attempts
	// rejected with 409. For these cells P50/P95/P99 are per-batch
	// issuance latency (blind + POST /v1/tokens/issue + unblind +
	// verify) and Ops/RPS count successful redemptions.
	TokensIssued       int64 `json:"tokens_issued,omitempty"`
	Redemptions        int64 `json:"redemptions,omitempty"`
	DoubleSpendRejects int64 `json:"double_spend_rejects,omitempty"`
}

// ServerReport is the JSON document `make bench-server` writes to
// BENCH_server.json.
type ServerReport struct {
	Description string      `json:"description"`
	Rows        []ServerRow `json:"rows"`
}

// JSON renders the report with stable indentation for check-in.
func (r *ServerReport) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// loadTarget is one server under load: a base URL to aim clients at
// plus whatever in-process handles exist for publish ops and counters.
type loadTarget struct {
	set     *params.Set
	spub    core.ServerPublicKey
	sched   timefmt.Schedule
	url     string
	labels  []string // the pre-published window, ascending
	history []string // deep pre-published history for coldstart cells (ends at labels)

	// sc is the ONE scheme shared by every client of every cell
	// (timeserver.WithScheme), so the whole harness exercises the
	// sharded caches the way a real multi-client process would. ukey,
	// updates and msg are the fixtures of the encdec workload: a user
	// bound to the server and a verified update per window label.
	sc      *core.Scheme
	ukey    *core.UserKeyPair
	updates []core.KeyUpdate
	msg     []byte

	srv     *timeserver.Server // nil when remote
	nextOld atomic.Int64       // next backwards epoch offset for publish ops
	baseIdx int64
	close   func()

	// clockNS is the in-process server's mutable time source: the
	// stream/relay cells publish FORWARD (later labels, as a live server
	// would) by advancing it, while the mixed-workload publish op keeps
	// backfilling older epochs. nextFwd is the next forward epoch index.
	clockNS atomic.Int64
	nextFwd atomic.Int64
}

// advanceTo moves the mutable clock forward to at least stamp (it
// never goes backwards, so concurrent cells cannot re-refuse an epoch
// already reachable).
func (t *loadTarget) advanceTo(stamp time.Time) {
	ns := stamp.UnixNano()
	for {
		cur := t.clockNS.Load()
		if cur >= ns || t.clockNS.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// initCrypto fills the client-side crypto fixtures shared by all cells.
func (t *loadTarget) initCrypto() error {
	t.sc = core.NewScheme(t.set)
	ukey, err := t.sc.UserKeyGen(t.spub, nil)
	if err != nil {
		return fmt.Errorf("bench: generating workload user key: %w", err)
	}
	t.ukey = ukey
	t.msg = []byte("serving-path load harness plaintext")
	return nil
}

// newLocalTarget boots an in-process server over real HTTP with Window
// labels pre-published.
func newLocalTarget(name string, cfg ServerLoadConfig) (*loadTarget, error) {
	set, err := params.Preset(name)
	if err != nil {
		return nil, err
	}
	sc := core.NewScheme(set)
	key, err := sc.ServerKeyGen(nil)
	if err != nil {
		return nil, err
	}
	sched := timefmt.MustSchedule(time.Second)
	now := time.Date(2026, 1, 1, 12, 0, 0, 0, time.UTC)
	t := &loadTarget{set: set, spub: key.Pub, sched: sched}
	t.clockNS.Store(now.UnixNano())
	srv := timeserver.NewServer(set, key, sched,
		timeserver.WithClock(func() time.Time { return time.Unix(0, t.clockNS.Load()).UTC() }),
		timeserver.WithMetrics(obs.NewRegistry()))
	idx := sched.Index(now)
	// Coldstart mixes need a history as deep as the largest missed-epoch
	// count; the workload window is its newest suffix.
	total := cfg.Window
	if depth := cfg.coldStartDepth(); depth > total {
		total = depth
	}
	history := make([]string, total)
	for i := 0; i < total; i++ {
		history[i] = sched.LabelAt(idx - int64(total-1-i))
		if err := srv.PublishLabel(history[i]); err != nil {
			return nil, fmt.Errorf("bench: pre-publishing %s: %w", history[i], err)
		}
	}
	labels := history[total-cfg.Window:]
	ts := httptest.NewServer(srv.Handler())
	t.url, t.labels, t.history, t.srv, t.baseIdx, t.close = ts.URL, labels, history, srv, idx, ts.Close
	t.nextOld.Store(int64(total)) // offsets total, total+1, … are unpublished
	t.nextFwd.Store(idx + 1)      // forward epochs for the stream cells
	if err := t.initCrypto(); err != nil {
		return nil, err
	}
	t.updates = make([]core.KeyUpdate, len(labels))
	for i, l := range labels {
		t.updates[i] = t.sc.IssueUpdate(key, l)
	}
	return t, nil
}

// newRemoteTarget bootstraps against an already-running treserver.
// Publish ops degrade to /v1/latest fetches (the harness has no signing
// key, by design).
func newRemoteTarget(baseURL string, cfg ServerLoadConfig) (*loadTarget, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	set, spub, sched, err := timeserver.FetchBootstrap(ctx, baseURL, nil)
	if err != nil {
		return nil, fmt.Errorf("bench: bootstrapping %s: %w", baseURL, err)
	}
	probe := timeserver.NewClient(baseURL, set, spub)
	labels, err := probe.Labels(ctx)
	if err != nil {
		return nil, err
	}
	if len(labels) == 0 {
		return nil, fmt.Errorf("bench: remote server has no published updates yet")
	}
	if len(labels) > cfg.Window {
		labels = labels[len(labels)-cfg.Window:]
	}
	t := &loadTarget{
		set: set, spub: spub, sched: sched, url: baseURL,
		labels: labels, history: labels, close: func() {},
	}
	if err := t.initCrypto(); err != nil {
		return nil, err
	}
	// The encdec workload needs the verified update per label; fetch them
	// once through the verifying client.
	t.updates = make([]core.KeyUpdate, len(labels))
	for i, l := range labels {
		u, err := probe.Update(ctx, l)
		if err != nil {
			return nil, fmt.Errorf("bench: fetching update %s: %w", l, err)
		}
		t.updates[i] = u
	}
	return t, nil
}

// publish signs and archives one not-yet-published (older) label,
// exercising the server's signing path under concurrent read load.
func (t *loadTarget) publish() error {
	off := t.nextOld.Add(1) - 1
	return t.srv.PublishLabel(t.sched.LabelAt(t.baseIdx - off))
}

// RunServerLoad measures sustained request throughput and latency of
// the serving path for every (preset, mix, concurrency) cell: N
// concurrent verifying clients (cache disabled, so every op crosses
// the wire) run a closed loop for CellDuration against a real HTTP
// server. Mixes:
//
//	fetch   — GET /v1/update/{label} + decode + pairing verification
//	catchup — CatchUp over CatchUpBatch labels (batched verification)
//	mixed   — 70% fetch, 20% catchup, 10% publish (remote: /v1/latest)
//	encdec  — one full Encrypt + Decrypt round trip per op, entirely
//	          client-side compute through the ONE shared scheme — the
//	          GOMAXPROCS-parallel crypto workload that exercises the
//	          sharded caches and pooled arenas under contention
//	coldstart       — ONE fresh (empty-cache) client catches up on N
//	                  missed epochs per op via the aggregate range path:
//	                  one /v1/catchup request, two pairing products
//	                  (aggregate pre-filter + blinded batch admission)
//	coldstart-batch — the same recovery forced down the pre-range path
//	                  (per-label fetches + blinded batch verification),
//	                  the before-side of the O(1)-pairing comparison
//
// Every client of a cell shares one core.Scheme (timeserver.WithScheme)
// so prepared-key and base-table caches are hit concurrently, the way a
// multi-tenant decryption service would hit them.
//
// This is the measured form of the paper's scalability argument (§3):
// server cost per epoch is one signature regardless of load, so the
// serving path must be read-dominated and flat — the report shows
// whether it is.
func RunServerLoad(cfg ServerLoadConfig) (*ServerReport, *Table, error) {
	cfg = cfg.withDefaults()
	rep := &ServerReport{
		Description: "sustained serving-path load: N concurrent verifying clients (no client cache) against a real HTTP time server; latencies are per-operation, RPS is completed operations per second",
	}
	table := &Table{
		ID:    "SERVER",
		Title: "Serving-path load: throughput and latency under concurrent clients",
		Claim: "one passive broadcast serves all users (§3): the server path is read-dominated and stays flat as concurrency grows",
		Columns: []string{
			"params/mix", "clients", "rps", "p50", "p95", "p99", "ops", "errs",
		},
	}

	targets := make(map[string]*loadTarget)
	defer func() {
		for _, t := range targets {
			t.close()
		}
	}()
	target := func(preset string) (*loadTarget, error) {
		if t, ok := targets[preset]; ok {
			return t, nil
		}
		var t *loadTarget
		var err error
		if cfg.BaseURL != "" {
			t, err = newRemoteTarget(cfg.BaseURL, cfg)
		} else {
			t, err = newLocalTarget(preset, cfg)
		}
		if err != nil {
			return nil, err
		}
		targets[preset] = t
		return t, nil
	}

	for _, preset := range cfg.Presets {
		for _, mix := range cfg.Mixes {
			if mix == "stream" || mix == "relay" {
				if cfg.BaseURL != "" {
					// The fan-out cells publish forward epochs, which needs
					// the in-process signing key; surface that instead of
					// silently skipping rows.
					return nil, nil, fmt.Errorf("bench: the %s mix needs an in-process server (drop -url)", mix)
				}
				t, err := target(preset)
				if err != nil {
					return nil, nil, err
				}
				for _, subs := range cfg.Subscribers {
					row, err := runStream(t, mix, subs, cfg)
					if err != nil {
						return nil, nil, err
					}
					rep.Rows = append(rep.Rows, row)
					table.Add(
						fmt.Sprintf("%s/%s:%d[%s]", t.set.Name, mix, row.Subscribers, row.Transport),
						fmt.Sprintf("%d", row.Subscribers),
						fmt.Sprintf("%.0f", row.RPS),
						nsHuman(row.P50NS), nsHuman(row.P95NS), nsHuman(row.P99NS),
						fmt.Sprintf("%d", row.Ops),
						fmt.Sprintf("%d", row.Errors),
					)
				}
				continue
			}
			if mix == "tokens" {
				if cfg.BaseURL != "" {
					// The token cell boots its own GATED server (the shared
					// target must stay open for the other mixes) and needs
					// its issuance key in-process.
					return nil, nil, fmt.Errorf("bench: the tokens mix needs an in-process gated server (drop -url)")
				}
				for _, clients := range cfg.Clients {
					row, err := runTokens(preset, clients, cfg)
					if err != nil {
						return nil, nil, err
					}
					rep.Rows = append(rep.Rows, row)
					table.Add(
						fmt.Sprintf("%s/tokens", row.Preset),
						fmt.Sprintf("%d", clients),
						fmt.Sprintf("%.0f", row.RPS),
						nsHuman(row.P50NS), nsHuman(row.P95NS), nsHuman(row.P99NS),
						fmt.Sprintf("%d", row.Ops),
						fmt.Sprintf("%d", row.Errors),
					)
				}
				continue
			}
			if mix == "rounds" {
				if cfg.BaseURL != "" {
					// The quorum cell measures a k-of-n member network it
					// boots itself; one remote URL cannot stand in for it.
					return nil, nil, fmt.Errorf("bench: the rounds mix needs in-process member servers (drop -url)")
				}
				for _, clients := range cfg.Clients {
					row, err := runRounds(preset, clients, cfg)
					if err != nil {
						return nil, nil, err
					}
					rep.Rows = append(rep.Rows, row)
					table.Add(
						fmt.Sprintf("%s/rounds:%d-of-%d", row.Preset, row.Quorum, row.Members),
						fmt.Sprintf("%d", clients),
						fmt.Sprintf("%.0f", row.RPS),
						nsHuman(row.P50NS), nsHuman(row.P95NS), nsHuman(row.P99NS),
						fmt.Sprintf("%d", row.Ops),
						fmt.Sprintf("%d", row.Errors),
					)
				}
				continue
			}
			if mix == "coldstart" || mix == "coldstart-batch" {
				t, err := target(preset)
				if err != nil {
					return nil, nil, err
				}
				for _, epochs := range cfg.ColdStartEpochs {
					if mix == "coldstart-batch" && t.set.Name != "Test160" && epochs > 1000 {
						// N per-label fetches + an N-wide pairing batch on a
						// production-size field: minutes per op, and the point
						// (linear growth) is already made by 1000.
						continue
					}
					row, err := runColdStart(t, mix, epochs, cfg)
					if err != nil {
						return nil, nil, err
					}
					rep.Rows = append(rep.Rows, row)
					table.Add(
						fmt.Sprintf("%s/%s:%d", t.set.Name, mix, row.Epochs),
						fmt.Sprintf("%d", row.Clients),
						fmt.Sprintf("%.0f", row.RPS),
						nsHuman(row.P50NS), nsHuman(row.P95NS), nsHuman(row.P99NS),
						fmt.Sprintf("%d", row.Ops),
						fmt.Sprintf("%d", row.Errors),
					)
				}
				continue
			}
			for _, clients := range cfg.Clients {
				t, err := target(preset)
				if err != nil {
					return nil, nil, err
				}
				row, err := runCell(t, mix, clients, cfg)
				if err != nil {
					return nil, nil, err
				}
				rep.Rows = append(rep.Rows, row)
				table.Add(
					fmt.Sprintf("%s/%s", t.set.Name, mix),
					fmt.Sprintf("%d", clients),
					fmt.Sprintf("%.0f", row.RPS),
					nsHuman(row.P50NS), nsHuman(row.P95NS), nsHuman(row.P99NS),
					fmt.Sprintf("%d", row.Ops),
					fmt.Sprintf("%d", row.Errors),
				)
			}
		}
	}
	table.Note("fetch = one update request + decode + pairing verification per op; catchup = %d labels per op with one batched pairing equation; mixed = 70%% fetch / 20%% catchup / 10%% publish; encdec = one client-side Encrypt+Decrypt round trip per op (no HTTP)", cfg.CatchUpBatch)
	table.Note("clients pin the server key and verify everything; the client-side cache is disabled so every op exercises the server")
	table.Note("all clients of a cell share one core.Scheme, so its sharded precomputation caches are read concurrently")
	table.Note("coldstart:N = one fresh client recovering N missed epochs per op (aggregate range path); coldstart-batch:N = the same recovery via per-label fetches + batched verification; pairings per op are in BENCH_server.json")
	table.Note("rounds:k-of-n = quorum-combine latency on a threshold beacon network: each op fetches partial updates from n member servers concurrently and Lagrange-combines the first k that verify")
	table.Note("tokens = anonymous-access-token lifecycle against a gated server: p50/p95/p99 are per-batch blind-issuance latency, rps is redemptions admitted per second (pairing check + fsynced spend-log append each), and every iteration deliberately double-spends one token to exercise the 409 path; issued/redeemed/rejected counts are in BENCH_server.json")
	table.Note("stream:N / relay:N = N concurrent /v1/stream subscribers (relay: behind a stateless fan-out relay) receiving %d forward publishes; p50/p95/p99 are publish→delivery wakeup latency; [inmem] marks counts beyond the FD limit driven over an in-memory transport", cfg.StreamPublishes)
	return rep, table, nil
}

// runColdStart measures one receiver returning after `epochs` missed
// epochs: each op builds a FRESH client (empty verified cache — that is
// the cold start) and issues one CatchUp over the missed labels. The
// coldstart mix takes the aggregate range path; coldstart-batch pins
// the legacy per-label path for the before/after comparison.
func runColdStart(t *loadTarget, mix string, epochs int, cfg ServerLoadConfig) (ServerRow, error) {
	if epochs > len(t.history) {
		// Remote targets only expose their published window; measure what
		// exists rather than failing the whole run.
		epochs = len(t.history)
	}
	window := t.history[len(t.history)-epochs:]

	creg := obs.NewRegistry()
	servedBefore := int64(0)
	if t.srv != nil {
		servedBefore = t.srv.Served()
	}
	opts := []timeserver.ClientOption{
		timeserver.WithScheme(t.sc),
		timeserver.WithClientMetrics(creg),
	}
	if mix == "coldstart-batch" {
		opts = append(opts, timeserver.WithoutAggregateCatchUp())
	}

	var (
		samples []int64
		errs    int64
	)
	deadline := time.Now().Add(cfg.CellDuration)
	start := time.Now()
	for time.Now().Before(deadline) {
		client := timeserver.NewClient(t.url, t.set, t.spub, opts...)
		opStart := time.Now()
		_, err := client.CatchUp(context.Background(), window)
		samples = append(samples, time.Since(opStart).Nanoseconds())
		if err != nil {
			errs++
		}
	}
	elapsed := time.Since(start)

	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	row := ServerRow{
		Preset:     t.set.Name,
		Mix:        mix,
		Clients:    1,
		Epochs:     epochs,
		Ops:        int64(len(samples)),
		Errors:     errs,
		DurationNS: elapsed.Nanoseconds(),
		RPS:        float64(len(samples)) / elapsed.Seconds(),
		P50NS:      pct(samples, 0.50),
		P95NS:      pct(samples, 0.95),
		P99NS:      pct(samples, 0.99),
	}
	if t.srv != nil {
		row.ServerRequests = t.srv.Served() - servedBefore
	}
	row.ClientPairings = creg.Snapshot().Counters["core.pairings"]
	if row.Ops > 0 {
		row.PairingsPerOp = float64(row.ClientPairings) / float64(row.Ops)
	}
	return row, nil
}

// runCell runs one (target, mix, clients) cell.
func runCell(t *loadTarget, mix string, clients int, cfg ServerLoadConfig) (ServerRow, error) {
	switch mix {
	case "fetch", "catchup", "mixed", "encdec":
	default:
		return ServerRow{}, fmt.Errorf("bench: unknown workload mix %q (want fetch, catchup, mixed or encdec)", mix)
	}

	creg := obs.NewRegistry()
	servedBefore := int64(0)
	publishedBefore := int64(0)
	if t.srv != nil {
		servedBefore = t.srv.Served()
		publishedBefore = t.srv.Published()
	}

	// Clients are built up front, on one goroutine: WithClientMetrics
	// instruments the shared scheme, and racing those writes from the
	// workers would be exactly the kind of bug -race should never see.
	// All clients share t.sc, so the cell contends on its caches.
	workers := make([]*timeserver.Client, clients)
	for w := range workers {
		workers[w] = timeserver.NewClient(t.url, t.set, t.spub,
			timeserver.WithScheme(t.sc),
			timeserver.WithoutCache(), timeserver.WithClientMetrics(creg))
	}

	var (
		wg       sync.WaitGroup
		errs     atomic.Int64
		samples  = make([][]int64, clients)
		deadline = time.Now().Add(cfg.CellDuration)
	)
	start := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Per-worker RNG: no lock contention, distinct streams.
			rng := rand.New(rand.NewSource(int64(w)*7919 + 1))
			client := workers[w]
			ctx := context.Background()
			var local []int64
			for time.Now().Before(deadline) {
				opStart := time.Now()
				err := runOp(ctx, t, client, mix, rng, cfg)
				local = append(local, time.Since(opStart).Nanoseconds())
				if err != nil {
					errs.Add(1)
				}
			}
			samples[w] = local
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []int64
	for _, s := range samples {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	row := ServerRow{
		Preset:     t.set.Name,
		Mix:        mix,
		Clients:    clients,
		Ops:        int64(len(all)),
		Errors:     errs.Load(),
		DurationNS: elapsed.Nanoseconds(),
		RPS:        float64(len(all)) / elapsed.Seconds(),
		P50NS:      pct(all, 0.50),
		P95NS:      pct(all, 0.95),
		P99NS:      pct(all, 0.99),
	}
	if t.srv != nil {
		row.ServerRequests = t.srv.Served() - servedBefore
		row.Published = t.srv.Published() - publishedBefore
	}
	row.ClientPairings = creg.Snapshot().Counters["core.pairings"]
	return row, nil
}

// runOp executes one operation of the given mix.
func runOp(ctx context.Context, t *loadTarget, client *timeserver.Client, mix string, rng *rand.Rand, cfg ServerLoadConfig) error {
	op := mix
	if mix == "mixed" {
		switch r := rng.Float64(); {
		case r < 0.7:
			op = "fetch"
		case r < 0.9:
			op = "catchup"
		default:
			op = "publish"
		}
	}
	switch op {
	case "fetch":
		_, err := client.Update(ctx, t.labels[rng.Intn(len(t.labels))])
		return err
	case "catchup":
		n := cfg.CatchUpBatch
		if n > len(t.labels) {
			n = len(t.labels)
		}
		start := rng.Intn(len(t.labels) - n + 1)
		_, err := client.CatchUp(ctx, t.labels[start:start+n])
		return err
	case "publish":
		if t.srv == nil {
			// Remote target: no signing key here — the closest
			// server-touching op is the uncached latest fetch.
			_, err := client.Latest(ctx)
			return err
		}
		return t.publish()
	case "encdec":
		// Full client-side round trip through the shared scheme: sender
		// encrypts to the workload user at a random released label, the
		// receiver decrypts with the verified update. No HTTP at all —
		// this cell measures the concurrent crypto hot path.
		i := rng.Intn(len(t.labels))
		ct, err := t.sc.Encrypt(nil, t.spub, t.ukey.Pub, t.labels[i], t.msg)
		if err != nil {
			return err
		}
		pt, err := t.sc.Decrypt(t.ukey, t.updates[i], ct)
		if err != nil {
			return err
		}
		if string(pt) != string(t.msg) {
			return fmt.Errorf("bench: encdec round trip mismatch")
		}
		return nil
	}
	return fmt.Errorf("bench: unknown op %q", op)
}

// pct picks an exact percentile from sorted samples (nearest-rank).
func pct(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// nsHuman renders nanoseconds with an adaptive unit.
func nsHuman(ns int64) string {
	switch {
	case ns >= 1_000_000_000:
		return fmt.Sprintf("%.2f s", float64(ns)/1e9)
	case ns >= 1_000_000:
		return fmt.Sprintf("%.2f ms", float64(ns)/1e6)
	case ns >= 1_000:
		return fmt.Sprintf("%.1f µs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%d ns", ns)
	}
}

package bench

import (
	"fmt"

	"timedrelease/internal/threshold"
)

// RunE12 measures the k-of-n threshold time-server extension: the cost
// of issuing/verifying partial updates and of Lagrange combination, as
// the threshold grows. The combined update is byte-identical to the
// single-server one, so receiver-side cost is unchanged by construction;
// the price of availability is paid entirely at the servers and the
// combiner.
func RunE12(cfg Config) (*Table, error) {
	set, err := cfg.set()
	if err != nil {
		return nil, err
	}
	const label = "2026-07-05T12:00:00Z"
	iters := cfg.iters(10)

	configs := [][2]int{{1, 1}, {2, 3}, {3, 5}, {5, 9}, {7, 10}}
	if cfg.Quick {
		configs = configs[:3]
	}

	t := &Table{
		ID:    "E12",
		Title: fmt.Sprintf("Threshold time servers: k-of-n update reconstruction (%s)", set.Name),
		Claim: "extension: Shamir-shared updates trade §5.3.5's all-N liveness requirement for any-k availability at zero receiver cost",
		Columns: []string{
			"k-of-n", "issue partial", "verify partial", "combine k", "tolerates crashes", "colluders needed",
		},
	}

	for _, kn := range configs {
		k, n := kn[0], kn[1]
		setup, err := threshold.Deal(set, nil, k, n)
		if err != nil {
			return nil, err
		}
		partials := make([]threshold.PartialUpdate, n)
		for i, sh := range setup.Shares {
			partials[i] = threshold.IssuePartial(set, sh, label)
		}
		issue := timeOp(iters, func() {
			threshold.IssuePartial(set, setup.Shares[0], label)
		})
		verify := timeOp(iters, func() {
			if !threshold.VerifyPartial(set, setup.Shares[0].Pub, partials[0]) {
				panic("verify failed")
			}
		})
		combine := timeOp(iters, func() {
			if _, err := threshold.Combine(set, setup.GroupPub, partials[:k], k); err != nil {
				panic(err)
			}
		})
		t.Add(fmt.Sprintf("%d-of-%d", k, n), ms(issue), ms(verify), ms(combine),
			fmt.Sprintf("%d", n-k), fmt.Sprintf("%d", k))
	}
	t.Note("combine = k Lagrange-weighted scalar multiplications + one self-authentication pairing check")
	t.Note("the combined update equals the single-server s·H1(T), so every receiver codepath and every measurement in E1/E7/E8 applies unchanged")
	return t, nil
}

package bench

import (
	"fmt"

	"timedrelease/internal/baseline/bfibe"
	"timedrelease/internal/baseline/hybrid"
	"timedrelease/internal/core"
	"timedrelease/internal/idtre"
)

// RunE1 reproduces the paper's efficiency claim (§1): compared with the
// generic hybrid PKE+IBE construction of footnote 3, TRE "could have 50%
// reduction in most cases" — measured here as ciphertext size and
// encrypt/decrypt latency for TRE, ID-TRE and the hybrid baseline.
func RunE1(cfg Config) (*Table, error) {
	set, err := cfg.set()
	if err != nil {
		return nil, err
	}
	const label = "2026-07-05T12:00:00Z"
	iters := cfg.iters(20)

	tre := core.NewScheme(set)
	server, err := tre.ServerKeyGen(nil)
	if err != nil {
		return nil, err
	}
	user, err := tre.UserKeyGen(server.Pub, nil)
	if err != nil {
		return nil, err
	}
	upd := tre.IssueUpdate(server, label)

	id := idtre.NewScheme(set)
	idPriv := id.ExtractUserKey(server, "receiver@example.org")

	hyb := hybrid.NewScheme(set)
	ibe := bfibe.NewScheme(set)
	master := &bfibe.MasterKey{S: server.S, Pub: bfibe.MasterPublicKey{G: server.Pub.G, SG: server.Pub.SG}}
	hybReceiver, err := hyb.ReceiverKeyGen(nil)
	if err != nil {
		return nil, err
	}
	hybLabelKey := ibe.Extract(master, label)

	point := set.Curve.MarshalSize()

	t := &Table{
		ID:    "E1",
		Title: fmt.Sprintf("TRE vs hybrid PKE+IBE vs ID-TRE (%s)", set.Name),
		Claim: `"Our schemes could have 50% reduction in most cases" vs the footnote-3 hybrid construction`,
		Columns: []string{
			"scheme", "msg", "ciphertext", "overhead", "encrypt", "decrypt",
		},
	}

	for _, msgLen := range []int{32, 1024} {
		msg := make([]byte, msgLen)

		// TRE basic.
		treCT, err := tre.Encrypt(nil, server.Pub, user.Pub, label, msg)
		if err != nil {
			return nil, err
		}
		treSize := point + len(treCT.V)
		encTRE := timeOp(iters, func() {
			if _, err := tre.Encrypt(nil, server.Pub, user.Pub, label, msg); err != nil {
				panic(err)
			}
		})
		decTRE := timeOp(iters, func() {
			if _, err := tre.Decrypt(user, upd, treCT); err != nil {
				panic(err)
			}
		})
		t.Add("TRE (this paper)", fmt.Sprintf("%d B", msgLen), bytesHuman(int64(treSize)),
			bytesHuman(int64(treSize-msgLen)), ms(encTRE), ms(decTRE))

		// ID-TRE.
		idCT, err := id.Encrypt(nil, server.Pub, "receiver@example.org", label, msg)
		if err != nil {
			return nil, err
		}
		idSize := point + len(idCT.V)
		encID := timeOp(iters, func() {
			if _, err := id.Encrypt(nil, server.Pub, "receiver@example.org", label, msg); err != nil {
				panic(err)
			}
		})
		decID := timeOp(iters, func() {
			if _, err := id.Decrypt(idPriv, upd, idCT); err != nil {
				panic(err)
			}
		})
		t.Add("ID-TRE (§5.2)", fmt.Sprintf("%d B", msgLen), bytesHuman(int64(idSize)),
			bytesHuman(int64(idSize-msgLen)), ms(encID), ms(decID))

		// Hybrid PKE+IBE.
		hybCT, err := hyb.Encrypt(nil, master.Pub, hybReceiver.Pub, label, msg)
		if err != nil {
			return nil, err
		}
		hybSize := hyb.Size(msgLen)
		encHyb := timeOp(iters, func() {
			if _, err := hyb.Encrypt(nil, master.Pub, hybReceiver.Pub, label, msg); err != nil {
				panic(err)
			}
		})
		decHyb := timeOp(iters, func() {
			if _, err := hyb.Decrypt(hybReceiver, hybLabelKey, hybCT); err != nil {
				panic(err)
			}
		})
		t.Add("hybrid PKE+IBE (fn. 3)", fmt.Sprintf("%d B", msgLen), bytesHuman(int64(hybSize)),
			bytesHuman(int64(hybSize-msgLen)), ms(encHyb), ms(decHyb))

		reduction := 100 * (1 - float64(treSize-msgLen)/float64(hybSize-msgLen))
		t.Note("msg=%dB: TRE ciphertext overhead is %.0f%% smaller than the hybrid's (%d B vs %d B)",
			msgLen, reduction, treSize-msgLen, hybSize-msgLen)
	}

	// CCA transforms: the paper offers Fujisaki–Okamoto and REACT as
	// interchangeable conversions; measure both on 32-byte messages.
	{
		msg := make([]byte, 32)
		foCT, err := tre.EncryptCCA(nil, server.Pub, user.Pub, label, msg)
		if err != nil {
			return nil, err
		}
		reactCT, err := tre.EncryptREACT(nil, server.Pub, user.Pub, label, msg)
		if err != nil {
			return nil, err
		}
		encFO := timeOp(iters, func() {
			if _, err := tre.EncryptCCA(nil, server.Pub, user.Pub, label, msg); err != nil {
				panic(err)
			}
		})
		decFO := timeOp(iters, func() {
			if _, err := tre.DecryptCCA(server.Pub, user, upd, foCT); err != nil {
				panic(err)
			}
		})
		encREACT := timeOp(iters, func() {
			if _, err := tre.EncryptREACT(nil, server.Pub, user.Pub, label, msg); err != nil {
				panic(err)
			}
		})
		decREACT := timeOp(iters, func() {
			if _, err := tre.DecryptREACT(user, upd, reactCT); err != nil {
				panic(err)
			}
		})
		foSize := point + len(foCT.W) + len(foCT.V)
		reactSize := point + len(reactCT.W) + len(reactCT.V) + len(reactCT.Tag)
		t.Add("TRE + FO (CCA)", "32 B", bytesHuman(int64(foSize)), bytesHuman(int64(foSize-32)), ms(encFO), ms(decFO))
		t.Add("TRE + REACT (CCA)", "32 B", bytesHuman(int64(reactSize)), bytesHuman(int64(reactSize-32)), ms(encREACT), ms(decREACT))
		t.Note("CCA decryption: FO pays a re-encryption scalar multiplication; REACT pays only a hash check — the trade-off §5 leaves implicit")
	}

	// The verification step of Encryption step 1 is a per-receiver,
	// cacheable cost; report it separately.
	verify := timeOp(iters, func() {
		if !tre.VerifyUserPublicKey(server.Pub, user.Pub) {
			panic("verify failed")
		}
	})
	t.Note("TRE encryption step 1 (ê(aG,sG)=ê(G,asG) receiver-key check) costs %s and is cacheable per receiver; it is included in the TRE encrypt column", ms(verify))
	return t, nil
}

package bench

import (
	"fmt"
	"time"

	"timedrelease/internal/baseline/rsw"
)

// RunE3 reproduces the paper's criticism of time-lock puzzles (§1,
// §2.1): the achieved release time is relative and coarse — it depends
// on the recipient's machine speed and on when solving starts. A puzzle
// is calibrated for a target delay on THIS machine, then the release
// error is measured for one real solve and modelled across machine-speed
// factors and solver start delays. TRE's release error, by contrast, is
// bounded by update-delivery jitter, independent of receiver hardware.
func RunE3(cfg Config) (*Table, error) {
	target := 2 * time.Second
	if cfg.Quick {
		target = 200 * time.Millisecond
	}
	const modBits = 1024

	rate, err := rsw.CalibrateRate(modBits, calibSample(cfg))
	if err != nil {
		return nil, err
	}
	tCount := rsw.TForDelay(target, rate)

	t := &Table{
		ID:    "E3",
		Title: fmt.Sprintf("Release-time error: RSW time-lock puzzle (target %v) vs TRE", target),
		Claim: `time-lock puzzles give "uncontrollable, coarse-grained release time", "dependent on the speed of the recipients' machines and when the decryption is started" (§1, §2.1)`,
		Columns: []string{
			"scenario", "machine speed", "start delay", "release at", "error vs target",
		},
	}

	// Ground truth: one real solve on this machine.
	pz, err := rsw.New(nil, modBits, tCount, []byte("measured ground truth"))
	if err != nil {
		return nil, err
	}
	_, measured := pz.Solve()
	t.Add("RSW measured (this machine)", "1.00x", "0", measured.Round(time.Millisecond).String(),
		signedDelta(measured-target, target))

	// Model: speed factors × start delays.
	for _, factor := range []float64{0.25, 0.5, 1, 2, 4} {
		for _, startDelay := range []time.Duration{0, 30 * time.Second} {
			release := rsw.PredictedSolveTime(tCount, rate, factor, startDelay)
			t.Add("RSW modelled",
				fmt.Sprintf("%.2fx", factor),
				startDelay.String(),
				release.Round(time.Millisecond).String(),
				signedDelta(release-target, target))
		}
	}

	// TRE: the message opens when the update arrives, for every receiver
	// at once; the only error source is update delivery latency.
	t.Add("TRE (this paper)", "any", "any", "t = T (absolute)", "bounded by update delivery jitter")

	t.Note("puzzle calibrated at %.0f squarings/s (%d-bit modulus); t = %d squarings for the %v target", rate, modBits, tCount, target)
	t.Note("a 4x faster machine opens the puzzle 75%% early; a solver that starts 30s late misses the target by at least 30s — TRE has neither failure mode")
	return t, nil
}

func calibSample(cfg Config) time.Duration {
	if cfg.Quick {
		return 50 * time.Millisecond
	}
	return 500 * time.Millisecond
}

func signedDelta(d, target time.Duration) string {
	pct := 100 * float64(d) / float64(target)
	return fmt.Sprintf("%+v (%+.0f%%)", d.Round(time.Millisecond), pct)
}

package bench

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"timedrelease/internal/core"
	"timedrelease/internal/timefmt"
	"timedrelease/internal/timeserver"
)

// RunE8 measures server passivity end-to-end over a live HTTP time
// server: how many server requests each phase of the protocol costs,
// and how the single update fetch amortises over many ciphertexts. The
// sender column is the paper's headline: encryption contacts the server
// ZERO times.
func RunE8(cfg Config) (*Table, error) {
	set, err := cfg.set()
	if err != nil {
		return nil, err
	}
	sc := core.NewScheme(set)
	key, err := sc.ServerKeyGen(nil)
	if err != nil {
		return nil, err
	}
	sched := timefmt.MustSchedule(time.Minute)
	now := time.Date(2026, 7, 5, 12, 0, 30, 0, time.UTC)
	srv := timeserver.NewServer(set, key, sched, timeserver.WithClock(func() time.Time { return now }))
	if _, err := srv.PublishUpTo(now); err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := timeserver.NewClient(ts.URL, set, key.Pub, timeserver.WithHTTPClient(ts.Client()))

	label := sched.Label(now)
	user, err := sc.UserKeyGen(key.Pub, nil)
	if err != nil {
		return nil, err
	}
	nMsgs := 10
	if cfg.Quick {
		nMsgs = 3
	}
	msg := make([]byte, 64)
	ctx := context.Background()

	t := &Table{
		ID:    "E8",
		Title: fmt.Sprintf("Server interactions per protocol phase, live HTTP server (%s, %d messages)", set.Name, nMsgs),
		Claim: "the time server is completely passive — no interaction with sender or receiver is needed per message (§1, §3)",
		Columns: []string{
			"phase", "server requests", "wall time",
		},
	}

	// Sender: encrypt nMsgs messages. Zero server contact.
	before := srv.Served()
	encStart := time.Now()
	cts := make([]*core.Ciphertext, nMsgs)
	for i := range cts {
		ct, err := sc.Encrypt(nil, key.Pub, user.Pub, label, msg)
		if err != nil {
			return nil, err
		}
		cts[i] = ct
	}
	encElapsed := time.Since(encStart)
	t.Add(fmt.Sprintf("sender: encrypt %d messages", nMsgs),
		fmt.Sprintf("%d", srv.Served()-before), encElapsed.Round(time.Microsecond).String())

	// Receiver: one update fetch (verified), then decrypt everything.
	before = srv.Served()
	fetchStart := time.Now()
	upd, err := client.Update(ctx, label)
	if err != nil {
		return nil, err
	}
	fetchElapsed := time.Since(fetchStart)
	t.Add("receiver: fetch+verify update (once per epoch)",
		fmt.Sprintf("%d", srv.Served()-before), fetchElapsed.Round(time.Microsecond).String())

	before = srv.Served()
	decStart := time.Now()
	for _, ct := range cts {
		if _, err := sc.Decrypt(user, upd, ct); err != nil {
			return nil, err
		}
	}
	decElapsed := time.Since(decStart)
	t.Add(fmt.Sprintf("receiver: decrypt %d messages", nMsgs),
		fmt.Sprintf("%d", srv.Served()-before), decElapsed.Round(time.Microsecond).String())

	t.Add("server: publish epoch update", "0 (self-initiated)", "—")
	t.Note("one update fetch amortises over all ciphertexts of the epoch; repeated Update() calls hit the client cache")
	t.Note("the server handler cannot reach the signing key, so a request can never trigger an early release (enforced by type structure and tested)")
	return t, nil
}

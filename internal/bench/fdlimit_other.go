//go:build !unix

package bench

// fdLimit reports 0 (unknown) on platforms without getrlimit; large
// subscriber counts then take the in-memory transport.
func fdLimit() int64 { return 0 }

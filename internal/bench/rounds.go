package bench

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"timedrelease/internal/core"
	"timedrelease/internal/obs"
	"timedrelease/internal/params"
	"timedrelease/internal/threshold"
	"timedrelease/internal/timefmt"
	"timedrelease/internal/timeserver"
)

// roundsK and roundsN fix the measured deployment shape: the 3-of-5
// beacon network the chaos acceptance suite proves correct. The cell
// measures the cost the threshold deployment ADDS over a single server
// — n concurrent partial fetches plus one Lagrange combine per op.
const (
	roundsK = 3
	roundsN = 5
)

// runRounds measures quorum-combine latency on a k-of-n beacon
// network: `clients` concurrent receivers each run a closed loop of
// QuorumClient.Update against n real HTTP member servers (every op is
// n partial fetches + k pairing verifications + one Lagrange combine).
// This is the serving-path cost of a released beacon round as a
// threshold consumer sees it, the number the availability upgrade from
// one server to k-of-n is paid with.
func runRounds(preset string, clients int, cfg ServerLoadConfig) (ServerRow, error) {
	set, err := params.Preset(preset)
	if err != nil {
		return ServerRow{}, err
	}
	setup, err := threshold.Deal(set, nil, roundsK, roundsN)
	if err != nil {
		return ServerRow{}, err
	}

	// Members are ordinary passive time servers over their share keys,
	// each with the workload window pre-published (a released round IS a
	// published label).
	sched := timefmt.MustSchedule(time.Second)
	idx := sched.Index(time.Date(2026, 1, 1, 12, 0, 0, 0, time.UTC))
	labels := make([]string, cfg.Window)
	for i := range labels {
		labels[i] = sched.LabelAt(idx - int64(cfg.Window-1-i))
	}
	members := make([]*httptest.Server, roundsN)
	memberSrvs := make([]*timeserver.Server, roundsN)
	for i, share := range setup.Shares {
		srv := timeserver.NewServer(set, threshold.ShardServerKey(set, share), sched)
		for _, l := range labels {
			if err := srv.PublishLabel(l); err != nil {
				return ServerRow{}, fmt.Errorf("bench: member %d pre-publishing %s: %w", share.Index, l, err)
			}
		}
		memberSrvs[i] = srv
		members[i] = httptest.NewServer(srv.Handler())
		defer members[i].Close()
	}

	// One quorum client per worker (ops within a worker are sequential),
	// all sharing one scheme and one registry — built up front, on one
	// goroutine, like runCell.
	sc := core.NewScheme(set)
	creg := obs.NewRegistry()
	qreg := obs.NewRegistry()
	quorums := make([]*threshold.QuorumClient, clients)
	for w := range quorums {
		shards := make([]threshold.Shard, roundsN)
		for i, share := range setup.Shares {
			shards[i] = threshold.Shard{
				Index: share.Index,
				Client: timeserver.NewClient(members[i].URL, set, threshold.ShardServerKey(set, share).Pub,
					timeserver.WithScheme(sc),
					timeserver.WithoutCache(),
					timeserver.WithClientMetrics(creg)),
			}
		}
		quorums[w] = &threshold.QuorumClient{
			Set: set, GroupPub: setup.GroupPub, K: roundsK, Shards: shards, Metrics: qreg,
		}
	}

	var (
		wg       sync.WaitGroup
		errs     atomic.Int64
		samples  = make([][]int64, clients)
		deadline = time.Now().Add(cfg.CellDuration)
	)
	start := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 1))
			qc := quorums[w]
			ctx := context.Background()
			var local []int64
			for time.Now().Before(deadline) {
				label := labels[rng.Intn(len(labels))]
				opStart := time.Now()
				_, err := qc.Update(ctx, label)
				local = append(local, time.Since(opStart).Nanoseconds())
				if err != nil {
					errs.Add(1)
				}
			}
			samples[w] = local
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []int64
	for _, s := range samples {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	row := ServerRow{
		Preset:     set.Name,
		Mix:        "rounds",
		Clients:    clients,
		Members:    roundsN,
		Quorum:     roundsK,
		Ops:        int64(len(all)),
		Errors:     errs.Load(),
		DurationNS: elapsed.Nanoseconds(),
		RPS:        float64(len(all)) / elapsed.Seconds(),
		P50NS:      pct(all, 0.50),
		P95NS:      pct(all, 0.95),
		P99NS:      pct(all, 0.99),
	}
	for _, srv := range memberSrvs {
		row.ServerRequests += srv.Served()
	}
	row.ClientPairings = creg.Snapshot().Counters["core.pairings"]
	qs := qreg.Snapshot().Counters
	row.QuorumCombines = qs["quorum.combines"]
	row.PartialsFailed = qs["quorum.partials_failed"]
	return row, nil
}

package bench

import (
	"fmt"

	"timedrelease/internal/core"
	"timedrelease/internal/hibe"
	"timedrelease/internal/resilient"
	"timedrelease/internal/wire"
)

// RunE10 evaluates the future-work extension (§6): resilience to missing
// updates via the HIBE time tree, against the paper's own fallback (the
// flat archive a receiver must download k updates from). It reports the
// catch-up download size after missing k epochs and the decryption-cost
// premium the tree pays.
func RunE10(cfg Config) (*Table, error) {
	set, err := cfg.set()
	if err != nil {
		return nil, err
	}
	const depth = 16 // 65536 epochs
	iters := cfg.iters(10)

	rs, err := resilient.NewScheme(set, depth)
	if err != nil {
		return nil, err
	}
	root, err := rs.H.RootKeyGen(nil)
	if err != nil {
		return nil, err
	}

	// Sizes.
	point := set.Curve.MarshalSize()
	scalar := (set.Q.BitLen() + 7) / 8
	flatSc := core.NewScheme(set)
	server, err := flatSc.ServerKeyGen(nil)
	if err != nil {
		return nil, err
	}
	codec := wire.NewCodec(set)
	updSize := len(codec.MarshalKeyUpdate(flatSc.IssueUpdate(server, "2026-07-05T12:00:00Z")))
	bundleSize := func(k hibe.NodeKey) int {
		return point*(1+len(k.Qs)) + scalar // S + Q-list + delegation secret
	}

	t := &Table{
		ID:    "E10",
		Title: fmt.Sprintf("Catch-up cost after missing k updates: flat archive vs HIBE time tree (%s, depth %d)", set.Name, depth),
		Claim: "future work (§6): \"we wish to design schemes resilient to missing updates ... using hierarchical identity based encryption\"",
		Columns: []string{
			"missed epochs k", "flat archive download", "tree cover download", "cover keys",
		},
	}

	now := uint64(40000)
	ks := []uint64{1, 10, 100, 1000, 10000}
	if cfg.Quick {
		ks = []uint64{1, 10, 100}
	}
	for _, k := range ks {
		cover, err := rs.PublishCover(root, now)
		if err != nil {
			return nil, err
		}
		var coverBytes int
		for _, nk := range cover {
			coverBytes += bundleSize(nk)
		}
		t.Add(fmt.Sprintf("%d", k),
			bytesHuman(int64(uint64(updSize)*k)),
			bytesHuman(int64(coverBytes)),
			fmt.Sprintf("%d", len(cover)))
	}

	// Decryption-cost premium.
	msg := make([]byte, 64)
	epoch := now - 5
	treeCT, err := rs.Encrypt(nil, root.Pub, epoch, msg)
	if err != nil {
		return nil, err
	}
	cover, err := rs.PublishCover(root, now)
	if err != nil {
		return nil, err
	}
	leaf, err := rs.LeafKey(cover, epoch)
	if err != nil {
		return nil, err
	}
	treeDec := timeOp(iters, func() {
		if _, err := rs.H.Decrypt(leaf, treeCT); err != nil {
			panic(err)
		}
	})
	deriveLeaf := timeOp(iters, func() {
		if _, err := rs.LeafKey(cover, epoch); err != nil {
			panic(err)
		}
	})

	user, err := flatSc.UserKeyGen(server.Pub, nil)
	if err != nil {
		return nil, err
	}
	upd := flatSc.IssueUpdate(server, "epoch")
	flatCT, err := flatSc.Encrypt(nil, server.Pub, user.Pub, "epoch", msg)
	if err != nil {
		return nil, err
	}
	flatDec := timeOp(iters, func() {
		if _, err := flatSc.Decrypt(user, upd, flatCT); err != nil {
			panic(err)
		}
	})
	treeCTSize := (1 + len(treeCT.Us)) * point

	t.Note("flat download grows linearly with k; the tree cover stays ≤ depth+1 bundles no matter how long the receiver was offline")
	t.Note("price of resilience: tree ciphertext header = %d points (%s vs flat %s); tree decrypt %s + leaf derivation %s vs flat decrypt %s",
		1+len(treeCT.Us), bytesHuman(int64(treeCTSize)), bytesHuman(int64(point)), ms(treeDec), ms(deriveLeaf), ms(flatDec))
	return t, nil
}

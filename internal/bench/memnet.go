package bench

import (
	"fmt"
	"net"
	"sync"
)

// memListener is an in-process net.Listener whose connections are
// net.Pipe pairs: no sockets, no file descriptors, no kernel buffers.
// The stream-subscriber cells use it to push past RLIMIT_NOFILE — a
// container capped at 20k descriptors can still attach 100k
// subscribers, because the thing under test (the broadcast hub, the
// SSE handlers, the per-connection goroutines) is above the socket
// layer. Rows driven through it are marked transport=inmem.
type memListener struct {
	conns     chan net.Conn
	done      chan struct{}
	closeOnce sync.Once
}

func newMemListener() *memListener {
	return &memListener{
		conns: make(chan net.Conn, 1024),
		done:  make(chan struct{}),
	}
}

// Dial returns the client half of a fresh pipe; the server half is
// queued for Accept.
func (l *memListener) Dial() (net.Conn, error) {
	client, server := net.Pipe()
	select {
	case l.conns <- server:
		return client, nil
	case <-l.done:
		client.Close()
		server.Close()
		return nil, fmt.Errorf("bench: memnet listener closed")
	}
}

// Accept implements net.Listener.
func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, fmt.Errorf("bench: memnet listener closed")
	}
}

// Close implements net.Listener.
func (l *memListener) Close() error {
	l.closeOnce.Do(func() { close(l.done) })
	return nil
}

// Addr implements net.Listener.
func (l *memListener) Addr() net.Addr { return memAddr{} }

type memAddr struct{}

func (memAddr) Network() string { return "mem" }
func (memAddr) String() string  { return "mem" }

package bench

import (
	"fmt"
	"time"

	"timedrelease/internal/baseline/bfibe"
	"timedrelease/internal/core"
	"timedrelease/internal/simnet"
)

// RunE2 reproduces the scalability claim (§1, §5.3.1): "regardless of
// the number of receivers, the time server just need to publish/
// broadcast a single update". One epoch is driven through each server
// design at increasing receiver counts and the real server-side cost is
// tallied.
func RunE2(cfg Config) (*Table, error) {
	set, err := cfg.set()
	if err != nil {
		return nil, err
	}
	const label = "2026-07-05T12:00:00Z"

	tre := core.NewScheme(set)
	server, err := tre.ServerKeyGen(nil)
	if err != nil {
		return nil, err
	}
	ibe := bfibe.NewScheme(set)
	_ = ibe
	master := &bfibe.MasterKey{S: server.S, Pub: bfibe.MasterPublicKey{G: server.Pub.G, SG: server.Pub.SG}}

	ns := []int{1, 10, 100, 1000, 10000}
	if cfg.Quick {
		ns = []int{1, 10, 100}
	}

	t := &Table{
		ID:    "E2",
		Title: fmt.Sprintf("Per-epoch server cost vs number of receivers (%s)", set.Name),
		Claim: `"No matter how many users there are, only one time-bound key update for each release time T is needed" (§5.3.1)`,
		Columns: []string{
			"design", "receivers", "msgs sent", "bytes sent", "crypto ops", "server state", "secure chan", "sees plaintext",
		},
	}

	release := time.Date(2026, 7, 5, 13, 0, 0, 0, time.UTC)
	addTally := func(tl simnet.Tally) {
		t.Add(tl.Design,
			fmt.Sprintf("%d", tl.Receivers),
			fmt.Sprintf("%d", tl.MessagesSent),
			bytesHuman(tl.BytesSent),
			fmt.Sprintf("%d", tl.CryptoOps),
			bytesHuman(tl.StateBytes),
			boolMark(tl.SecureChannel),
			boolMark(tl.LearnsContent),
		)
	}

	for _, n := range ns {
		addTally(simnet.TREEpoch(set, server, label, n))
	}
	for _, n := range ns {
		addTally(simnet.TREEpochUnicast(set, server, label, n))
	}
	for _, n := range ns {
		// Extraction really runs n scalar multiplications; cap the
		// largest case in Quick mode is already handled by the sweep.
		addTally(simnet.MontIBEEpoch(set, master, label, n))
	}
	for _, n := range ns {
		addTally(simnet.EscrowEpoch(n, 2, 1024, release))
	}

	t.Note("TRE rows: constant 1 message / 1 signature regardless of receivers; per-user server state is zero")
	t.Note("Mont et al. rows: the server performs one key extraction AND one secure-channel delivery per user per epoch")
	t.Note("escrow rows assume 2 messages of 1 KiB per receiver per epoch; the agent stores plaintext until release")
	return t, nil
}

func boolMark(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

package bench

import (
	"fmt"

	"timedrelease/internal/core"
)

// RunE7 measures the key-insulation mechanism of §5.3.3: deriving the
// per-epoch key on the safe device, and decrypting on the insecure
// device with the epoch key versus directly with the long-term secret.
// The claim is that insulation comes "for free" — the insulated path
// must cost no more than direct decryption.
func RunE7(cfg Config) (*Table, error) {
	set, err := cfg.set()
	if err != nil {
		return nil, err
	}
	const label = "2026-07-05T12:00:00Z"
	iters := cfg.iters(20)

	sc := core.NewScheme(set)
	server, err := sc.ServerKeyGen(nil)
	if err != nil {
		return nil, err
	}
	user, err := sc.UserKeyGen(server.Pub, nil)
	if err != nil {
		return nil, err
	}
	upd := sc.IssueUpdate(server, label)
	ek := sc.DeriveEpochKey(user, upd)
	msg := make([]byte, 64)
	ct, err := sc.Encrypt(nil, server.Pub, user.Pub, label, msg)
	if err != nil {
		return nil, err
	}

	derive := timeOp(iters, func() { sc.DeriveEpochKey(user, upd) })
	verifyEK := timeOp(iters, func() {
		if !sc.VerifyEpochKey(server.Pub, user.Pub, upd, ek) {
			panic("verify failed")
		}
	})
	direct := timeOp(iters, func() {
		if _, err := sc.Decrypt(user, upd, ct); err != nil {
			panic(err)
		}
	})
	insulated := timeOp(iters, func() {
		if _, err := sc.DecryptWithEpochKey(ek, ct); err != nil {
			panic(err)
		}
	})

	t := &Table{
		ID:    "E7",
		Title: fmt.Sprintf("Key insulation: epoch-key operations (%s)", set.Name),
		Claim: `"the TRE scheme proposed here achieves the key insulation goal for free" (§5.3.3)`,
		Columns: []string{
			"operation", "where it runs", "touches long-term a?", "time",
		},
	}
	t.Add("derive epoch key a·I_T", "safe device (once per epoch)", "yes", ms(derive))
	t.Add("verify received epoch key", "insecure device (optional)", "no", ms(verifyEK))
	t.Add("decrypt with epoch key", "insecure device (per message)", "no", ms(insulated))
	t.Add("decrypt with long-term key", "— (what insulation avoids)", "yes", ms(direct))
	t.Note("insulated decryption replaces the a·U scalar multiplication with the precomputed a·I_T, so it is at least as fast as direct decryption")
	t.Note("compromise containment (epoch key cannot decrypt other epochs or leak a) is asserted by the unit tests in internal/core")
	return t, nil
}

package bench

import (
	"context"
	"encoding/base64"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"timedrelease/internal/core"
	"timedrelease/internal/obs"
	"timedrelease/internal/params"
	"timedrelease/internal/timefmt"
	"timedrelease/internal/timeserver"
	"timedrelease/internal/token"
	"timedrelease/internal/wire"
)

// tokenIssueBatch is how many tokens each issuance round trip of the
// tokens cell requests: enough to amortize the HTTP overhead the way a
// real wallet top-up would, small enough that one loop iteration stays
// a meaningful latency sample.
const tokenIssueBatch = 8

// runTokens measures the anonymous-access-token serving path end to
// end on its own gated in-process server (the shared target stays
// ungated so the other mixes measure the open serving path). Each of
// `clients` workers loops the full wallet lifecycle:
//
//  1. issue — blind tokenIssueBatch points, POST /v1/tokens/issue,
//     unblind and verify (the latency samples; P50/95/99 in the row);
//  2. double-spend probe — redeem one token twice over raw HTTP: the
//     first must be admitted, the second must 409;
//  3. redeem — spend the remaining tokens through the real gated
//     /v1/catchup range path, one token per page, full verification.
//
// Ops and RPS count successful redemptions (the gate's sustained
// admission rate, pairing check + fsynced ledger append included);
// TokensIssued and DoubleSpendRejects come from the server's own
// counters, so the row cross-checks the client-side loop.
func runTokens(preset string, clients int, cfg ServerLoadConfig) (ServerRow, error) {
	set, err := params.Preset(preset)
	if err != nil {
		return ServerRow{}, err
	}
	sc := core.NewScheme(set)
	key, err := sc.ServerKeyGen(nil)
	if err != nil {
		return ServerRow{}, err
	}
	iss, err := token.GenerateIssuer(set, nil)
	if err != nil {
		return ServerRow{}, err
	}
	led := token.NewLedger()
	defer led.Close()
	sreg := obs.NewRegistry()
	sched := timefmt.MustSchedule(time.Second)
	now := time.Date(2026, 1, 1, 12, 0, 0, 0, time.UTC)
	srv := timeserver.NewServer(set, key, sched,
		timeserver.WithClock(func() time.Time { return now }),
		timeserver.WithMetrics(sreg),
		timeserver.WithTokenIssuer(iss),
		timeserver.WithTokenGate(token.NewVerifier(set, iss.Public(), led)))
	idx := sched.Index(now)
	labels := make([]string, cfg.Window)
	for i := range labels {
		labels[i] = sched.LabelAt(idx - int64(len(labels)-1-i))
		if err := srv.PublishLabel(labels[i]); err != nil {
			return ServerRow{}, fmt.Errorf("bench: pre-publishing %s: %w", labels[i], err)
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	codec := wire.NewCodec(set)

	// Clients (and their metric registrations) are built up front on
	// one goroutine, exactly like runCell.
	creg := obs.NewRegistry()
	workers := make([]*timeserver.Client, clients)
	wallets := make([]*token.Wallet, clients)
	for w := range workers {
		wallets[w] = token.NewWallet(set)
		workers[w] = timeserver.NewClient(ts.URL, set, key.Pub,
			timeserver.WithScheme(sc),
			timeserver.WithoutCache(),
			timeserver.WithClientMetrics(creg),
			timeserver.WithTokenWallet(wallets[w]))
	}

	var (
		wg       sync.WaitGroup
		errs     atomic.Int64
		samples  = make([][]int64, clients)
		deadline = time.Now().Add(cfg.CellDuration)
	)
	httpc := ts.Client()
	start := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 1))
			client, wallet := workers[w], wallets[w]
			ctx := context.Background()
			var local []int64
			for time.Now().Before(deadline) {
				opStart := time.Now()
				if err := client.FetchTokens(ctx, tokenIssueBatch); err != nil {
					errs.Add(1)
					continue
				}
				local = append(local, time.Since(opStart).Nanoseconds())

				// Deliberate double spend: the same token twice, raw
				// HTTP so the second attempt is not absorbed by the
				// client's 409 retry.
				dup, err := wallet.Pop()
				if err != nil {
					errs.Add(1)
					continue
				}
				hdr := base64.StdEncoding.EncodeToString(token.EncodeToken(codec, dup))
				for attempt := 0; attempt < 2; attempt++ {
					status, err := redeemRaw(httpc, ts.URL, labels[rng.Intn(len(labels))], hdr)
					if err != nil || (attempt == 1 && status != http.StatusConflict) {
						errs.Add(1)
					}
				}

				// Spend the rest through the gated range catch-up: one
				// token per page, every update pairing-verified.
				for wallet.Len() > 0 {
					n := cfg.CatchUpBatch
					if n > len(labels) {
						n = len(labels)
					}
					lo := rng.Intn(len(labels) - n + 1)
					if _, err := client.CatchUp(ctx, labels[lo:lo+n]); err != nil {
						errs.Add(1)
					}
				}
			}
			samples[w] = local
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []int64
	for _, s := range samples {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	snap := sreg.Snapshot()
	redeemed := snap.Counters["timeserver.tokens_redeemed"]
	row := ServerRow{
		Preset:             set.Name,
		Mix:                "tokens",
		Clients:            clients,
		Ops:                redeemed,
		Errors:             errs.Load(),
		DurationNS:         elapsed.Nanoseconds(),
		RPS:                float64(redeemed) / elapsed.Seconds(),
		P50NS:              pct(all, 0.50),
		P95NS:              pct(all, 0.95),
		P99NS:              pct(all, 0.99),
		ServerRequests:     srv.Served(),
		ClientPairings:     creg.Snapshot().Counters["core.pairings"],
		TokensIssued:       snap.Counters["timeserver.tokens_issued"],
		Redemptions:        redeemed,
		DoubleSpendRejects: snap.Counters["timeserver.token_double_spend"],
	}
	return row, nil
}

// redeemRaw presents a token header on a minimal gated request and
// reports the HTTP status — the wire-level view of one redemption.
func redeemRaw(httpc *http.Client, base, label, hdr string) (int, error) {
	req, err := http.NewRequest(http.MethodGet, base+"/v1/catchup?from="+label+"&limit=1", nil)
	if err != nil {
		return 0, err
	}
	req.Header.Set(timeserver.TokenHeader, hdr)
	resp, err := httpc.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// Package bench is the experiment harness: one function per experiment
// in DESIGN.md §3 (E1–E10), each reproducing a quantitative claim of the
// paper as a formatted table. The tables in EXPERIMENTS.md are generated
// by cmd/trebench, which calls RunAll; bench_test.go exposes the same
// workloads as testing.B benchmarks.
package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"timedrelease/internal/params"
)

// Config controls experiment scope.
type Config struct {
	// Preset names the parameter set for full runs (default "SS512", the
	// paper-era size).
	Preset string
	// Quick shrinks sweeps and iteration counts so the whole suite runs
	// in seconds — used by tests; published numbers use Quick=false.
	Quick bool
}

// set resolves the configured parameter set.
func (c Config) set() (*params.Set, error) {
	name := c.Preset
	if name == "" {
		if c.Quick {
			name = "Test160"
		} else {
			name = "SS512"
		}
	}
	return params.Preset(name)
}

// iters scales an iteration count down in Quick mode.
func (c Config) iters(full int) int {
	if c.Quick {
		if full >= 10 {
			return 3
		}
		return 1
	}
	return full
}

// Table is one experiment's result.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper claim under test, quoted or paraphrased
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Add appends a row; cell count must match the header.
func (t *Table) Add(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("bench: row has %d cells, table %s has %d columns", len(cells), t.ID, len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if n := len([]rune(cell)); n > widths[i] {
				widths[i] = n
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len([]rune(cell))))
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavoured markdown (used to
// regenerate EXPERIMENTS.md).
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "*Claim:* %s\n\n", t.Claim)
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*Note:* %s\n", n)
	}
	return b.String()
}

// timeOp runs f n times and returns the mean duration.
func timeOp(n int, f func()) time.Duration {
	if n < 1 {
		n = 1
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		f()
	}
	return time.Since(start) / time.Duration(n)
}

// memPerOp runs f n times and returns the mean heap allocations and
// allocated bytes per call, from runtime.MemStats deltas — the same
// counters behind testing.B's -benchmem. A GC first settles the heap so
// background noise does not land in the window.
func memPerOp(n int, f func()) (allocs, bytes int64) {
	if n < 1 {
		n = 1
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < n; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return int64(after.Mallocs-before.Mallocs) / int64(n),
		int64(after.TotalAlloc-before.TotalAlloc) / int64(n)
}

// ms renders a duration in fixed-point milliseconds.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f ms", float64(d.Nanoseconds())/1e6)
}

// bytesHuman renders a byte count compactly.
func bytesHuman(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

package bench

import "fmt"

// Experiment pairs an experiment ID with its runner.
type Experiment struct {
	ID  string
	Run func(Config) (*Table, error)
}

// Experiments lists every experiment in DESIGN.md §3 order.
func Experiments() []Experiment {
	return []Experiment{
		{"E1", RunE1},
		{"E2", RunE2},
		{"E3", RunE3},
		{"E4", RunE4},
		{"E5", RunE5},
		{"E6", RunE6},
		{"E7", RunE7},
		{"E8", RunE8},
		{"E9", RunE9},
		{"E10", RunE10},
		{"E11", RunE11},
		{"E12", RunE12},
	}
}

// RunAll executes every experiment and returns the tables in order.
func RunAll(cfg Config) ([]*Table, error) {
	var out []*Table
	for _, e := range Experiments() {
		t, err := e.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", e.ID, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// RunOne executes a single experiment by ID.
func RunOne(id string, cfg Config) (*Table, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e.Run(cfg)
		}
	}
	return nil, fmt.Errorf("bench: unknown experiment %q", id)
}

package bench

import (
	"bufio"
	"context"
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"timedrelease/internal/timeserver"
)

// dialBurst bounds concurrent connection setups so tens of thousands of
// subscribers do not slam the listen backlog (somaxconn) all at once.
const dialBurst = 256

// countingConn tallies bytes received, for the per-connection cost
// column of the stream rows.
type countingConn struct {
	net.Conn
	n *atomic.Int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.n.Add(int64(n))
	return n, err
}

// sseLabel extracts the label from a wire-encoded KeyUpdate without
// decompressing the point: the subscriber side of the bench measures
// delivery, not verification (the verifying client path is pinned by
// its own tests and the fetch cells).
func sseLabel(raw []byte) (string, bool) {
	if len(raw) < 2 {
		return "", false
	}
	n := int(binary.BigEndian.Uint16(raw))
	if len(raw) < 2+n {
		return "", false
	}
	return string(raw[2 : 2+n]), true
}

// streamFanout is the serving surface one stream/relay cell attaches
// its subscribers to, plus its teardown.
type streamFanout struct {
	dial      func() (net.Conn, error)
	transport string
	teardown  func()
}

// newFanout builds the cell's downstream surface. The stream mix
// subscribes directly to the origin; the relay mix interposes a
// stateless relay (own hub, own archive) fed from the origin over the
// real stream client. Counts that fit the FD limit run over real TCP;
// larger ones run over the in-memory transport so the broadcast layer
// is still measured at full scale.
func newFanout(t *loadTarget, mix string, subs int, fdlim int64) (*streamFanout, error) {
	needFDs := int64(subs)*2 + 512 // both pipe ends live in this process
	useTCP := fdlim > 0 && needFDs <= fdlim
	f := &streamFanout{}
	var cleanup []func()
	f.teardown = func() {
		for i := len(cleanup) - 1; i >= 0; i-- {
			cleanup[i]()
		}
	}

	handler := t.srv.Handler()
	if mix == "relay" {
		up := timeserver.NewClient(t.url, t.set, t.spub)
		relay := timeserver.NewRelay(up, t.sched)
		handler = relay.Handler()
		ctx, cancel := context.WithCancel(context.Background())
		relayDone := make(chan struct{})
		go func() { defer close(relayDone); relay.Run(ctx) }()
		cleanup = append(cleanup, func() { cancel(); <-relayDone })
	}

	if useTCP {
		f.transport = "tcp"
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addr := ln.Addr().String()
		f.dial = func() (net.Conn, error) { return net.Dial("tcp", addr) }
		hs := &http.Server{Handler: handler}
		go hs.Serve(ln)
		cleanup = append(cleanup, func() { hs.Close() })
	} else {
		f.transport = "inmem"
		ln := newMemListener()
		f.dial = ln.Dial
		hs := &http.Server{Handler: handler}
		go hs.Serve(ln)
		cleanup = append(cleanup, func() { hs.Close(); ln.Close() })
	}

	if mix == "relay" {
		// Wait for the relay to converge on the origin archive before
		// attaching subscribers, so first-publish latency measures the
		// fan-out, not the relay's startup sync.
		probeHTTP := &http.Client{Transport: &http.Transport{
			DialContext: func(context.Context, string, string) (net.Conn, error) { return f.dial() },
		}}
		probe := timeserver.NewClient("http://bench", t.set, t.spub, timeserver.WithHTTPClient(probeHTTP))
		deadline := time.Now().Add(30 * time.Second)
		for {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_, err := probe.Update(ctx, t.labels[len(t.labels)-1])
			cancel()
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				f.teardown()
				return nil, fmt.Errorf("bench: relay never converged on the origin archive: %w", err)
			}
			time.Sleep(10 * time.Millisecond)
		}
		probeHTTP.CloseIdleConnections()
	}
	return f, nil
}

// runStream measures publish→delivery fan-out latency with `subs`
// concurrent /v1/stream subscribers parked on the origin (mix
// "stream") or on a stateless relay fed by it (mix "relay"). Each cell
// publishes StreamPublishes forward epochs StreamInterval apart and
// every subscriber timestamps each delivery; P50/P95/P99 are the
// publish→delivery wakeup latencies across all subscribers × events.
func runStream(t *loadTarget, mix string, subs int, cfg ServerLoadConfig) (ServerRow, error) {
	fdlim := fdLimit()
	f, err := newFanout(t, mix, subs, fdlim)
	if err != nil {
		return ServerRow{}, err
	}
	defer f.teardown()

	// Reserve this cell's forward epochs and publish timestamps up
	// front so subscribers can map labels to publish times locally.
	pubs := cfg.StreamPublishes
	firstIdx := t.nextFwd.Add(int64(pubs)) - int64(pubs)
	labels := make(map[string]int, pubs)
	order := make([]string, pubs)
	for i := 0; i < pubs; i++ {
		l := t.sched.LabelAt(firstIdx + int64(i))
		labels[l], order[i] = i, l
	}
	pubNS := make([]atomic.Int64, pubs)

	var (
		readyWG   sync.WaitGroup // every subscriber parked live
		doneWG    sync.WaitGroup
		rxBytes   atomic.Int64
		errCount  atomic.Int64
		shedCount atomic.Int64
		latMu     sync.Mutex
		all       []int64
		dialSem   = make(chan struct{}, dialBurst)
	)
	readDeadline := time.Now().Add(time.Duration(pubs)*cfg.StreamInterval + 90*time.Second)

	subscriber := func() {
		defer doneWG.Done()
		ready := false
		markReady := func() {
			if !ready {
				ready = true
				readyWG.Done()
			}
		}
		defer markReady() // a failed subscriber must not wedge the cell
		fail := func() { errCount.Add(1) }

		dialSem <- struct{}{}
		conn, err := f.dial()
		<-dialSem
		if err != nil {
			fail()
			return
		}
		defer conn.Close()
		conn.SetDeadline(readDeadline)
		cc := &countingConn{Conn: conn, n: &rxBytes}
		if _, err := cc.Write([]byte("GET /v1/stream HTTP/1.1\r\nHost: bench\r\nAccept: text/event-stream\r\n\r\n")); err != nil {
			fail()
			return
		}
		br := bufio.NewReaderSize(cc, 512)
		resp, err := http.ReadResponse(br, nil)
		if err != nil || resp.StatusCode != http.StatusOK {
			fail()
			return
		}
		// No resp.Body.Close(): closing a chunked body drains it to EOF,
		// which on an endless SSE stream blocks until the read deadline.
		// The deferred conn.Close tears the transport down directly.
		body := bufio.NewReaderSize(resp.Body, 512)

		var lats []int64
		received := 0
		data := ""
		for received < pubs {
			line, err := body.ReadString('\n')
			if err != nil {
				// Cut mid-cell: a shed (the hub dropped us) or a transport
				// failure. Either way the events this subscriber missed are
				// the row's honesty, not a harness bug.
				shedCount.Add(1)
				fail()
				break
			}
			line = strings.TrimRight(line, "\r\n")
			switch {
			case strings.HasPrefix(line, ": ready"):
				markReady()
			case strings.HasPrefix(line, "data:"):
				data = strings.TrimSpace(line[len("data:"):])
			case line == "" && data != "":
				now := time.Now().UnixNano()
				raw, err := base64.StdEncoding.DecodeString(data)
				data = ""
				if err != nil {
					continue
				}
				label, ok := sseLabel(raw)
				if !ok {
					continue
				}
				if i, ok := labels[label]; ok {
					if t0 := pubNS[i].Load(); t0 > 0 {
						lats = append(lats, now-t0)
					}
					received++
				}
			}
		}
		latMu.Lock()
		all = append(all, lats...)
		latMu.Unlock()
	}

	servedBefore := t.srv.Served()
	readyWG.Add(subs)
	doneWG.Add(subs)
	start := time.Now()
	for i := 0; i < subs; i++ {
		go subscriber()
	}
	readyWG.Wait()

	// All subscribers parked live: publish the forward epochs.
	for i := 0; i < pubs; i++ {
		if i > 0 {
			time.Sleep(cfg.StreamInterval)
		}
		t.advanceTo(t.sched.Start(firstIdx + int64(i)).Add(t.sched.Granularity / 2))
		pubNS[i].Store(time.Now().UnixNano())
		if err := t.srv.PublishLabel(order[i]); err != nil {
			return ServerRow{}, fmt.Errorf("bench: forward publish %s: %w", order[i], err)
		}
	}
	doneWG.Wait()
	elapsed := time.Since(start)

	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	row := ServerRow{
		Preset:       t.set.Name,
		Mix:          mix,
		Subscribers:  subs,
		Transport:    f.transport,
		FDLimit:      fdlim,
		Ops:          int64(len(all)),
		Errors:       errCount.Load(),
		Sheds:        shedCount.Load(),
		DurationNS:   elapsed.Nanoseconds(),
		RPS:          float64(len(all)) / elapsed.Seconds(),
		P50NS:        pct(all, 0.50),
		P95NS:        pct(all, 0.95),
		P99NS:        pct(all, 0.99),
		Published:    int64(pubs),
		PerConnBytes: float64(rxBytes.Load()) / float64(subs),
	}
	if mix == "stream" {
		row.ServerRequests = t.srv.Served() - servedBefore
	}
	return row, nil
}

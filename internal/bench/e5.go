package bench

import (
	"fmt"

	"timedrelease/internal/core"
	"timedrelease/internal/multiserver"
)

// RunE5 measures the multi-server construction of §5.3.5: ciphertext
// size and encrypt/decrypt latency as the number of servers grows, plus
// the shared-vs-separate final-exponentiation ablation in decryption.
func RunE5(cfg Config) (*Table, error) {
	set, err := cfg.set()
	if err != nil {
		return nil, err
	}
	const label = "2026-07-05T12:00:00Z"
	iters := cfg.iters(10)
	ns := []int{1, 2, 3, 5, 8}
	if cfg.Quick {
		ns = []int{1, 2, 3}
	}

	sc := multiserver.NewScheme(set)
	tre := core.NewScheme(set)
	t := &Table{
		ID:    "E5",
		Title: fmt.Sprintf("Multi-server TRE cost vs number of servers (%s)", set.Name),
		Claim: "using N servers forces a cheating receiver to collude with all of them (§5.3.5)",
		Columns: []string{
			"servers", "ciphertext", "encrypt", "decrypt (shared final exp)", "decrypt (separate)", "speedup",
		},
	}

	msg := make([]byte, 64)
	for _, n := range ns {
		var (
			keys  []*core.ServerKeyPair
			group multiserver.ServerGroup
		)
		for i := 0; i < n; i++ {
			g, err := set.Curve.RandomSubgroupPoint(nil)
			if err != nil {
				return nil, err
			}
			s, err := set.Curve.RandScalar(nil)
			if err != nil {
				return nil, err
			}
			kp := &core.ServerKeyPair{S: s, Pub: core.ServerPublicKey{G: g, SG: set.Curve.ScalarMult(s, g)}}
			keys = append(keys, kp)
			group = append(group, kp.Pub)
		}
		user, err := sc.UserKeyGen(group, nil)
		if err != nil {
			return nil, err
		}
		ct, err := sc.Encrypt(nil, group, user.Pub, label, msg)
		if err != nil {
			return nil, err
		}
		updates := make([]core.KeyUpdate, n)
		for i, k := range keys {
			updates[i] = tre.IssueUpdate(k, label)
		}

		size := n*set.Curve.MarshalSize() + len(ct.V)
		enc := timeOp(iters, func() {
			if _, err := sc.Encrypt(nil, group, user.Pub, label, msg); err != nil {
				panic(err)
			}
		})
		decShared := timeOp(iters, func() {
			if _, err := sc.Decrypt(user, updates, ct); err != nil {
				panic(err)
			}
		})
		decSep := timeOp(iters, func() {
			if _, err := sc.DecryptSeparate(user, updates, ct); err != nil {
				panic(err)
			}
		})
		t.Add(fmt.Sprintf("%d", n), bytesHuman(int64(size)), ms(enc), ms(decShared), ms(decSep),
			fmt.Sprintf("%.2fx", float64(decSep)/float64(decShared)))
	}
	t.Note("ciphertext carries one header point rGᵢ per server; the masked payload is shared")
	t.Note("shared column multiplies the N Miller values and performs ONE final exponentiation (the PairProduct optimisation)")
	t.Note("PairProduct additionally runs the N Miller loops on a GOMAXPROCS-bounded worker pool with a deterministic index-order merge; on multi-core hosts the shared column scales with cores")
	return t, nil
}

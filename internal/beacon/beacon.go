// Package beacon recasts the passive time server as a drand/tlock-style
// round beacon. A Clock is a fixed round duration plus a genesis
// instant; round r is the epoch starting at genesis + r·period, and its
// canonical name is exactly the timefmt.Schedule label of that epoch —
// so a round beacon IS an ordinary schedule-driven time server, and
// every existing endpoint, archive, relay and verification path serves
// round mode unchanged. The round↔label mapping is a bijection: a round
// number names exactly one label and a label on the grid at or after
// genesis names exactly one round.
//
// Senders who think in wall-clock time encrypt to a label; senders who
// think in "open after N minutes" or "open at round 12345" encrypt to a
// round (tre.EncryptToRound / tre.EncryptToDuration) and ship the round
// number plus the clock parameters inside the armored ciphertext file,
// so the receiver needs no out-of-band agreement beyond the server (or
// threshold group) public key.
package beacon

import (
	"errors"
	"fmt"
	"math"
	"time"

	"timedrelease/internal/timefmt"
)

// Clock maps round numbers to schedule labels and back. The zero value
// is not usable; build one with New or Must.
type Clock struct {
	sched   timefmt.Schedule
	genesis int64 // schedule index of round 0
}

// ErrBeforeGenesis reports a label or instant earlier than round 0.
var ErrBeforeGenesis = errors.New("beacon: before genesis")

// ErrRoundRange reports a round number outside the clock's addressable
// range (the underlying schedule indexes are int64 epochs).
var ErrRoundRange = errors.New("beacon: round number out of range")

// New returns a round clock with the given period and genesis instant.
// The period must satisfy the schedule rules (positive, divides 24h)
// and the genesis must lie exactly on the period grid so that every
// round label is a canonical schedule label any party derives
// independently.
func New(period time.Duration, genesis time.Time) (Clock, error) {
	sched, err := timefmt.NewSchedule(period)
	if err != nil {
		return Clock{}, err
	}
	idx := sched.Index(genesis)
	if !sched.Start(idx).Equal(genesis) {
		return Clock{}, fmt.Errorf("beacon: genesis %s is not on the %v grid (want %s)",
			genesis.UTC().Format(time.RFC3339Nano), period, sched.LabelAt(idx))
	}
	return Clock{sched: sched, genesis: idx}, nil
}

// Must is New for known-good constants; it panics on error.
func Must(period time.Duration, genesis time.Time) Clock {
	c, err := New(period, genesis)
	if err != nil {
		panic(err)
	}
	return c
}

// Period returns the round duration.
func (c Clock) Period() time.Duration { return c.sched.Granularity }

// Genesis returns the start instant of round 0 (UTC).
func (c Clock) Genesis() time.Time { return c.sched.Start(c.genesis) }

// Schedule returns the underlying epoch schedule — the one the time
// servers of this beacon run on.
func (c Clock) Schedule() timefmt.Schedule { return c.sched }

// maxIndex is the largest schedule index whose start instant is still
// representable as int64 nanoseconds (the time.Time range the schedule
// computes in).
func (c Clock) maxIndex() int64 {
	return math.MaxInt64 / int64(c.sched.Granularity)
}

// MaxRound returns the largest addressable round — the last round whose
// start instant is representable on this clock.
func (c Clock) MaxRound() uint64 {
	return uint64(c.maxIndex() - c.genesis)
}

// index returns the schedule index of round r, or ErrRoundRange when
// the round's start instant leaves the representable timeline.
func (c Clock) index(round uint64) (int64, error) {
	if round > c.MaxRound() {
		return 0, ErrRoundRange
	}
	return c.genesis + int64(round), nil
}

// Time returns the start instant of round r.
func (c Clock) Time(round uint64) (time.Time, error) {
	idx, err := c.index(round)
	if err != nil {
		return time.Time{}, err
	}
	return c.sched.Start(idx), nil
}

// Label returns the canonical release label of round r — the exact
// string a schedule-driven time server signs for that epoch.
func (c Clock) Label(round uint64) (string, error) {
	idx, err := c.index(round)
	if err != nil {
		return "", err
	}
	return c.sched.LabelAt(idx), nil
}

// Round inverts Label: it parses a canonical label and returns its
// round number. Labels off the grid are rejected by the schedule;
// labels before genesis return ErrBeforeGenesis. Round∘Label is the
// identity on every addressable round, and Label∘Round is the identity
// on every on-grid label at or after genesis.
func (c Clock) Round(label string) (uint64, error) {
	t, err := c.sched.ParseLabel(label)
	if err != nil {
		return 0, err
	}
	idx := c.sched.Index(t)
	if idx < c.genesis {
		return 0, fmt.Errorf("%w: label %s predates round 0 (%s)", ErrBeforeGenesis, label, c.Label0())
	}
	return uint64(idx - c.genesis), nil
}

// Label0 returns the genesis label (round 0).
func (c Clock) Label0() string { return c.sched.LabelAt(c.genesis) }

// At returns the round whose epoch contains the instant t.
func (c Clock) At(t time.Time) (uint64, error) {
	idx := c.sched.Index(t)
	if idx < c.genesis {
		return 0, fmt.Errorf("%w: %s is before round 0", ErrBeforeGenesis, t.UTC().Format(time.RFC3339Nano))
	}
	return uint64(idx - c.genesis), nil
}

// After returns the earliest round whose start is at or after now+d —
// the round an "open after d" sender encrypts to. d must be
// non-negative; a zero d selects the next round boundary (the earliest
// release still in the future, never the already-open current round).
func (c Clock) After(now time.Time, d time.Duration) (uint64, error) {
	if d < 0 {
		return 0, errors.New("beacon: negative duration")
	}
	target := now.Add(d)
	idx := c.sched.Index(target)
	if !c.sched.Start(idx).Equal(target) {
		idx++ // first boundary at or after the target instant
	}
	if idx <= c.sched.Index(now) {
		idx = c.sched.Index(now) + 1
	}
	if idx < c.genesis {
		return 0, fmt.Errorf("%w: %s+%v is before round 0", ErrBeforeGenesis, now.UTC().Format(time.RFC3339Nano), d)
	}
	return uint64(idx - c.genesis), nil
}

// Equal reports whether two clocks describe the same round grid.
func (c Clock) Equal(o Clock) bool {
	return c.sched.Granularity == o.sched.Granularity && c.genesis == o.genesis
}

// String renders the clock for diagnostics.
func (c Clock) String() string {
	return fmt.Sprintf("beacon(period=%v genesis=%s)", c.Period(), c.Label0())
}

package beacon

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"timedrelease/internal/timefmt"
)

var testGenesis = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func mustClock(t testing.TB, period time.Duration, genesis time.Time) Clock {
	t.Helper()
	c, err := New(period, genesis)
	if err != nil {
		t.Fatalf("New(%v, %s): %v", period, genesis, err)
	}
	return c
}

func TestNewRejectsOffGridGenesis(t *testing.T) {
	_, err := New(time.Minute, testGenesis.Add(30*time.Second))
	if err == nil {
		t.Fatal("want error for genesis off the minute grid")
	}
	if _, err := New(time.Minute, testGenesis.Add(time.Nanosecond)); err == nil {
		t.Fatal("want error for genesis 1ns off the grid")
	}
}

func TestNewRejectsBadPeriod(t *testing.T) {
	for _, period := range []time.Duration{0, -time.Second, 7 * time.Second, 25 * time.Hour} {
		if _, err := New(period, testGenesis); err == nil {
			t.Errorf("New(%v): want error", period)
		}
	}
}

func TestGenesisAndLabel0(t *testing.T) {
	c := mustClock(t, time.Minute, testGenesis)
	if !c.Genesis().Equal(testGenesis) {
		t.Fatalf("Genesis() = %s, want %s", c.Genesis(), testGenesis)
	}
	if got, want := c.Label0(), "2026-01-01T00:00:00Z"; got != want {
		t.Fatalf("Label0() = %q, want %q", got, want)
	}
	lbl, err := c.Label(0)
	if err != nil || lbl != c.Label0() {
		t.Fatalf("Label(0) = %q, %v; want %q", lbl, err, c.Label0())
	}
}

// Round→label→round is the identity for 10k random rounds, across both
// coarse and fractional-second periods.
func TestRoundLabelRoundIdentity(t *testing.T) {
	periods := []time.Duration{
		time.Minute,
		time.Second,
		500 * time.Millisecond,
		125 * time.Millisecond,
		100 * time.Microsecond,
	}
	for _, period := range periods {
		c := mustClock(t, period, testGenesis)
		bound := int64(1) << 40
		if max := c.MaxRound(); uint64(bound) > max {
			bound = int64(max)
		}
		rng := rand.New(rand.NewSource(8)) // deterministic
		for i := 0; i < 10000; i++ {
			round := uint64(rng.Int63n(bound))
			lbl, err := c.Label(round)
			if err != nil {
				t.Fatalf("period %v: Label(%d): %v", period, round, err)
			}
			back, err := c.Round(lbl)
			if err != nil {
				t.Fatalf("period %v: Round(%q): %v", period, lbl, err)
			}
			if back != round {
				t.Fatalf("period %v: round %d -> %q -> %d", period, round, lbl, back)
			}
		}
	}
}

// Labels of consecutive rounds must be strictly ordered by schedule
// index — including fractional-second periods, where PR 7 established
// that the label STRINGS do not sort lexicographically. This pins the
// contract consumers must rely on: order by round/index, never by
// string comparison.
func TestConsecutiveRoundsStrictlyIndexOrdered(t *testing.T) {
	for _, period := range []time.Duration{time.Second, 250 * time.Millisecond, time.Millisecond} {
		c := mustClock(t, period, testGenesis)
		sched := c.Schedule()
		lexOK := true
		prevLabel := ""
		for round := uint64(0); round < 4000; round++ {
			lbl, err := c.Label(round)
			if err != nil {
				t.Fatalf("Label(%d): %v", round, err)
			}
			ts, err := sched.ParseLabel(lbl)
			if err != nil {
				t.Fatalf("own label %q does not parse: %v", lbl, err)
			}
			if got, want := sched.Index(ts), sched.Index(c.Genesis())+int64(round); got != want {
				t.Fatalf("round %d: index %d, want %d", round, got, want)
			}
			if round > 0 {
				prevTime, _ := sched.ParseLabel(prevLabel)
				if !prevTime.Before(ts) {
					t.Fatalf("round %d (%q) not after round %d (%q)", round, lbl, round-1, prevLabel)
				}
				if prevLabel >= lbl {
					lexOK = false
				}
			}
			prevLabel = lbl
		}
		if period < time.Second && lexOK {
			// Document (don't fail): at sub-second periods RFC3339Nano
			// trims trailing zeros, so some consecutive labels DO
			// compare out of order lexicographically. If this triple
			// never hit such a pair the regression guard is not
			// exercising anything.
			t.Logf("period %v: no lexicographic inversion observed in 4000 rounds", period)
		}
	}
}

// The PR 7 bug, pinned directly: two fractional-second labels whose
// string order disagrees with their round order.
func TestFractionalLabelsLexicographicInversionExists(t *testing.T) {
	c := mustClock(t, 100*time.Millisecond, testGenesis)
	found := false
	prev, _ := c.Label(0)
	for round := uint64(1); round < 100; round++ {
		lbl, _ := c.Label(round)
		if prev >= lbl {
			found = true
			break
		}
		prev = lbl
	}
	if !found {
		t.Fatal("expected at least one lexicographic inversion among fractional-second labels; the regression this guards may have become untestable")
	}
}

// Genesis instants adjacent to DST transitions and the leap-second
// boundary must not break the bijection: labels are UTC so civil-time
// discontinuities cannot shift the grid.
func TestAwkwardGenesisTimes(t *testing.T) {
	genesisTimes := []time.Time{
		// US DST spring-forward 2026 (2026-03-08 02:00 EST -> 03:00 EDT = 07:00Z).
		time.Date(2026, 3, 8, 7, 0, 0, 0, time.UTC),
		time.Date(2026, 3, 8, 6, 59, 0, 0, time.UTC),
		// EU DST fall-back 2026 (2026-10-25 01:00Z).
		time.Date(2026, 10, 25, 1, 0, 0, 0, time.UTC),
		// The 2016-12-31 23:59:60 leap second: both sides of it.
		time.Date(2016, 12, 31, 23, 59, 0, 0, time.UTC),
		time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC),
		// Pre-Unix-epoch genesis (negative schedule indexes).
		time.Date(1969, 12, 31, 23, 0, 0, 0, time.UTC),
	}
	for _, genesis := range genesisTimes {
		c := mustClock(t, time.Minute, genesis)
		for _, round := range []uint64{0, 1, 59, 60, 61, 1440, 525600} {
			lbl, err := c.Label(round)
			if err != nil {
				t.Fatalf("genesis %s: Label(%d): %v", genesis, round, err)
			}
			back, err := c.Round(lbl)
			if err != nil || back != round {
				t.Fatalf("genesis %s: round %d -> %q -> %d, %v", genesis, round, lbl, back, err)
			}
			start, err := c.Time(round)
			if err != nil {
				t.Fatalf("genesis %s: Time(%d): %v", genesis, round, err)
			}
			if want := genesis.Add(time.Duration(round) * time.Minute); !start.Equal(want) {
				t.Fatalf("genesis %s: Time(%d) = %s, want %s", genesis, round, start, want)
			}
		}
	}
}

// A genesis expressed in a DST-observing zone still yields the same
// clock as its UTC equivalent.
func TestGenesisInNonUTCZone(t *testing.T) {
	loc, err := time.LoadLocation("America/New_York")
	if err != nil {
		t.Skipf("tzdata unavailable: %v", err)
	}
	local := time.Date(2026, 3, 8, 1, 30, 0, 0, loc) // 30min before spring-forward
	cLocal := mustClock(t, time.Minute, local)
	cUTC := mustClock(t, time.Minute, local.UTC())
	if !cLocal.Equal(cUTC) {
		t.Fatalf("clock from local genesis %s differs from UTC equivalent", local)
	}
}

func TestRoundRejectsPreGenesisAndNonCanonical(t *testing.T) {
	c := mustClock(t, time.Minute, testGenesis)
	if _, err := c.Round("2025-12-31T23:59:00Z"); !errors.Is(err, ErrBeforeGenesis) {
		t.Fatalf("pre-genesis label: got %v, want ErrBeforeGenesis", err)
	}
	for _, bad := range []string{
		"",
		"not-a-label",
		"2026-01-01T00:00:30Z",      // off the minute grid
		"2026-01-01T00:00:00+01:00", // non-canonical zone
		"2026-01-01 00:00:00Z",      // wrong separator
	} {
		if _, err := c.Round(bad); err == nil {
			t.Errorf("Round(%q): want error", bad)
		}
	}
}

func TestAtAndAfter(t *testing.T) {
	c := mustClock(t, time.Minute, testGenesis)

	r, err := c.At(testGenesis.Add(90 * time.Second))
	if err != nil || r != 1 {
		t.Fatalf("At(genesis+90s) = %d, %v; want 1", r, err)
	}
	if _, err := c.At(testGenesis.Add(-time.Second)); !errors.Is(err, ErrBeforeGenesis) {
		t.Fatalf("At(pre-genesis): got %v", err)
	}

	now := testGenesis.Add(10*time.Minute + 12*time.Second)
	cases := []struct {
		d    time.Duration
		want uint64
	}{
		{0, 11},                // next boundary
		{time.Second, 11},      // still within round 10's remainder
		{48 * time.Second, 11}, // lands exactly on the round-11 boundary
		{49 * time.Second, 12},
		{10 * time.Minute, 21},
	}
	for _, tc := range cases {
		got, err := c.After(now, tc.d)
		if err != nil {
			t.Fatalf("After(now, %v): %v", tc.d, err)
		}
		if got != tc.want {
			t.Errorf("After(now, %v) = %d, want %d", tc.d, got, tc.want)
		}
	}
	if _, err := c.After(now, -time.Second); err == nil {
		t.Fatal("After with negative duration: want error")
	}
	// After never returns an already-open round even when now is exactly
	// on a boundary.
	got, err := c.After(testGenesis.Add(5*time.Minute), 0)
	if err != nil || got != 6 {
		t.Fatalf("After(boundary, 0) = %d, %v; want 6", got, err)
	}
}

func TestRoundRangeOverflow(t *testing.T) {
	c := mustClock(t, time.Minute, testGenesis)
	if _, err := c.Label(math.MaxUint64); !errors.Is(err, ErrRoundRange) {
		t.Fatalf("Label(MaxUint64): got %v, want ErrRoundRange", err)
	}
	if _, err := c.Time(math.MaxUint64); !errors.Is(err, ErrRoundRange) {
		t.Fatalf("Time(MaxUint64): got %v, want ErrRoundRange", err)
	}
	// The boundary itself is addressable; one past it is not.
	max := c.MaxRound()
	if _, err := c.Label(max); err != nil {
		t.Fatalf("Label(MaxRound) = %v, want ok", err)
	}
	if _, err := c.Label(max + 1); !errors.Is(err, ErrRoundRange) {
		t.Fatalf("Label(MaxRound+1): got %v, want ErrRoundRange", err)
	}
}

func TestScheduleCompatibility(t *testing.T) {
	// A beacon clock's labels must be exactly what a schedule-driven
	// time server publishes: same grid, same canonical strings.
	c := mustClock(t, 5*time.Minute, testGenesis)
	sched := timefmt.MustSchedule(5 * time.Minute)
	for round := uint64(0); round < 100; round++ {
		lbl, _ := c.Label(round)
		st, _ := c.Time(round)
		if want := sched.Label(st); lbl != want {
			t.Fatalf("round %d: beacon label %q != schedule label %q", round, lbl, want)
		}
	}
}

func TestEqualAndString(t *testing.T) {
	a := mustClock(t, time.Minute, testGenesis)
	b := mustClock(t, time.Minute, testGenesis)
	d := mustClock(t, time.Minute, testGenesis.Add(time.Minute))
	e := mustClock(t, time.Second, testGenesis)
	if !a.Equal(b) {
		t.Fatal("identical clocks not Equal")
	}
	if a.Equal(d) || a.Equal(e) {
		t.Fatal("distinct clocks compare Equal")
	}
	if s := a.String(); !strings.Contains(s, "2026-01-01T00:00:00Z") {
		t.Fatalf("String() = %q, want genesis label inside", s)
	}
}

func TestMustPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Must with bad period did not panic")
		}
	}()
	Must(7*time.Second, testGenesis)
}

// FuzzRoundFromLabel feeds arbitrary strings to Round on a
// fractional-second clock: it must never panic, and any label it
// accepts must round-trip back to the identical canonical string.
func FuzzRoundFromLabel(f *testing.F) {
	c := Must(250*time.Millisecond, testGenesis)
	seed0, _ := c.Label(0)
	seed1, _ := c.Label(1)
	seedBig, _ := c.Label(123456789)
	f.Add(seed0)
	f.Add(seed1)
	f.Add(seedBig)
	f.Add("2025-12-31T23:59:59.75Z") // pre-genesis, on grid
	f.Add("2026-01-01T00:00:00.3Z")  // off grid
	f.Add("2026-01-01T00:00:00+00:00")
	f.Add("")
	f.Add("9999999999-01-01T00:00:00Z")
	f.Fuzz(func(t *testing.T, label string) {
		round, err := c.Round(label)
		if err != nil {
			return
		}
		back, err := c.Label(round)
		if err != nil {
			t.Fatalf("accepted label %q (round %d) but Label failed: %v", label, round, err)
		}
		if back != label {
			t.Fatalf("label %q accepted as round %d but canonical form is %q", label, round, back)
		}
	})
}

package rsw

import (
	"bytes"
	"testing"
	"time"
)

func TestPuzzleRoundTrip(t *testing.T) {
	msg := []byte("locked behind sequential squarings")
	pz, err := New(nil, 256, 1000, msg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	got, elapsed := pz.Solve()
	if !bytes.Equal(got, msg) {
		t.Fatal("solve mismatch")
	}
	if elapsed <= 0 {
		t.Fatal("solve must take measurable time")
	}
}

func TestCreationIsCheapRegardlessOfT(t *testing.T) {
	// The creator shortcut: puzzle creation must not scale with t.
	msg := []byte("m")
	start := time.Now()
	if _, err := New(nil, 256, 1, msg); err != nil {
		t.Fatal(err)
	}
	small := time.Since(start)

	start = time.Now()
	if _, err := New(nil, 256, 1_000_000_000, msg); err != nil {
		t.Fatal(err)
	}
	huge := time.Since(start)

	// Allow generous noise (prime generation dominates), but creation
	// with t = 1e9 must not take a billion squarings (~minutes).
	if huge > small*100+time.Second {
		t.Fatalf("creation scales with t: t=1 took %v, t=1e9 took %v", small, huge)
	}
}

func TestSolveTimeScalesWithT(t *testing.T) {
	msg := []byte("m")
	timeFor := func(tSquarings uint64) time.Duration {
		pz, err := New(nil, 512, tSquarings, msg)
		if err != nil {
			t.Fatal(err)
		}
		got, d := pz.Solve()
		if !bytes.Equal(got, msg) {
			t.Fatal("solve mismatch")
		}
		return d
	}
	d1 := timeFor(20_000)
	d4 := timeFor(80_000)
	// Expect roughly 4×; accept [2×, 8×] to be robust on noisy machines.
	if d4 < d1*2 || d4 > d1*8 {
		t.Logf("warning: scaling outside [2x,8x]: %v vs %v (noisy machine?)", d1, d4)
	}
	if d4 <= d1 {
		t.Fatalf("solve time must grow with t: %v (t=20k) vs %v (t=80k)", d1, d4)
	}
}

func TestWrongSolutionGivesGarbage(t *testing.T) {
	msg := []byte("secret")
	pz, err := New(nil, 256, 500, msg)
	if err != nil {
		t.Fatal(err)
	}
	// Stop squaring early: result must not be the message.
	short := &Puzzle{N: pz.N, A: pz.A, T: pz.T - 1, Enc: pz.Enc}
	got, _ := short.Solve()
	if bytes.Equal(got, msg) {
		t.Fatal("undersquared solution must not reveal the message")
	}
}

func TestCalibrateAndPredict(t *testing.T) {
	rate, err := CalibrateRate(512, 50*time.Millisecond)
	if err != nil {
		t.Fatalf("CalibrateRate: %v", err)
	}
	if rate < 1000 {
		t.Fatalf("implausibly slow squaring rate: %v/s", rate)
	}
	tCount := TForDelay(2*time.Second, rate)
	if tCount == 0 {
		t.Fatal("TForDelay returned 0")
	}
	// A machine 2x faster finishes in half the time; a slow starter adds
	// its delay.
	base := PredictedSolveTime(tCount, rate, 1, 0)
	fast := PredictedSolveTime(tCount, rate, 2, 0)
	lazy := PredictedSolveTime(tCount, rate, 1, time.Hour)
	if fast >= base {
		t.Fatal("faster machine must finish sooner")
	}
	if lazy < time.Hour {
		t.Fatal("start delay must add to release error")
	}
	if got := PredictedSolveTime(tCount, 0, 1, 0); got != 0 {
		t.Fatal("zero rate must predict 0")
	}
}

func TestPredictionMatchesMeasurement(t *testing.T) {
	// The analytic model used by E3 must roughly match a real solve.
	rate, err := CalibrateRate(512, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	target := 200 * time.Millisecond
	tCount := TForDelay(target, rate)
	pz, err := New(nil, 512, tCount, []byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	_, measured := pz.Solve()
	// Within 5x either way (CI machines jitter); the point is order of
	// magnitude agreement.
	if measured < target/5 || measured > target*5 {
		t.Fatalf("measured %v for target %v — model badly off", measured, target)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 32, 10, []byte("m")); err == nil {
		t.Fatal("tiny modulus must be rejected")
	}
	if _, err := New(nil, 256, 0, []byte("m")); err == nil {
		t.Fatal("t=0 must be rejected")
	}
}

// Package rsw implements the Rivest–Shamir–Wagner time-lock puzzle
// (MIT/LCS/TR-684), the canonical representative of the "time-lock
// puzzle" approach the paper argues against (§2.1).
//
// A puzzle hides a message behind t sequential modular squarings: the
// creator, knowing φ(n), computes a^(2^t) mod n in two exponentiations,
// while a solver must perform all t squarings one after another — an
// inherently sequential computation that takes (roughly) t / rate
// seconds on a machine performing `rate` squarings per second.
//
// The package exists to measure the paper's criticism quantitatively
// (experiment E3): the achieved release time is RELATIVE (it starts when
// the solver starts, not at an absolute instant) and COARSE (it scales
// with the solver's speed, which the creator must guess).
package rsw

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
	"time"

	"timedrelease/internal/rohash"
)

// Puzzle is a time-lock puzzle: recovering Key requires t sequential
// squarings mod n.
type Puzzle struct {
	N   *big.Int // RSA modulus p·q (factorisation discarded)
	A   *big.Int // base
	T   uint64   // number of sequential squarings
	Enc []byte   // message ⊕ H(a^(2^t) mod n)
}

// New creates a puzzle hiding msg behind t squarings of a modBits-bit
// modulus. The creator-side shortcut computes 2^t mod φ(n) first, so
// creation is cheap regardless of t (this asymmetry is the whole point
// of the construction).
func New(rng io.Reader, modBits int, t uint64, msg []byte) (*Puzzle, error) {
	if rng == nil {
		rng = rand.Reader
	}
	if modBits < 64 {
		return nil, errors.New("rsw: modulus too small")
	}
	if t == 0 {
		return nil, errors.New("rsw: t must be positive")
	}
	p, err := rand.Prime(rng, modBits/2)
	if err != nil {
		return nil, fmt.Errorf("rsw: generating p: %w", err)
	}
	q, err := rand.Prime(rng, modBits-modBits/2)
	if err != nil {
		return nil, fmt.Errorf("rsw: generating q: %w", err)
	}
	n := new(big.Int).Mul(p, q)
	phi := new(big.Int).Mul(new(big.Int).Sub(p, big.NewInt(1)), new(big.Int).Sub(q, big.NewInt(1)))

	a, err := rand.Int(rng, n)
	if err != nil {
		return nil, fmt.Errorf("rsw: sampling base: %w", err)
	}
	if a.Sign() == 0 {
		a.SetInt64(2)
	}

	// Creator shortcut: e = 2^t mod φ(n), b = a^e mod n.
	e := new(big.Int).Exp(big.NewInt(2), new(big.Int).SetUint64(t), phi)
	b := new(big.Int).Exp(a, e, n)

	return &Puzzle{
		N:   n,
		A:   a,
		T:   t,
		Enc: rohash.XOR(msg, mask(b, len(msg))),
	}, nil
}

// Solve recovers the message by brute sequential squaring — the only
// known strategy without the factorisation. It returns the plaintext
// and the wall-clock time spent squaring.
func (p *Puzzle) Solve() ([]byte, time.Duration) {
	start := time.Now()
	b := new(big.Int).Set(p.A)
	for i := uint64(0); i < p.T; i++ {
		b.Mul(b, b)
		b.Mod(b, p.N)
	}
	return rohash.XOR(p.Enc, mask(b, len(p.Enc))), time.Since(start)
}

// mask derives a message-length mask from the puzzle solution.
func mask(b *big.Int, n int) []byte {
	return rohash.Expand("RSW-mask", b.Bytes(), n)
}

// CalibrateRate measures this machine's sequential squaring rate
// (squarings/second) for a modBits-bit modulus, sampling for roughly the
// given duration.
func CalibrateRate(modBits int, sample time.Duration) (float64, error) {
	pz, err := New(nil, modBits, 1, []byte("x"))
	if err != nil {
		return 0, err
	}
	b, err := rand.Int(rand.Reader, pz.N)
	if err != nil {
		return 0, err
	}
	count := 0
	start := time.Now()
	for time.Since(start) < sample {
		for i := 0; i < 1024; i++ {
			b.Mul(b, b)
			b.Mod(b, pz.N)
		}
		count += 1024
	}
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		return 0, errors.New("rsw: calibration too short")
	}
	return float64(count) / elapsed, nil
}

// TForDelay returns the squaring count that targets the given delay on a
// machine with the given rate — what a puzzle creator must guess about
// the recipient's hardware.
func TForDelay(delay time.Duration, rate float64) uint64 {
	t := rate * delay.Seconds()
	if t < 1 {
		return 1
	}
	return uint64(t)
}

// PredictedSolveTime models the solve latency of a machine whose speed
// is `speedFactor` times the calibrated rate, with the solver starting
// `startDelay` after receiving the puzzle. This is the analytic model
// behind experiment E3; Solve provides the measured ground truth for
// speedFactor = 1, startDelay = 0.
func PredictedSolveTime(t uint64, rate, speedFactor float64, startDelay time.Duration) time.Duration {
	if rate <= 0 || speedFactor <= 0 {
		return 0
	}
	solve := float64(t) / (rate * speedFactor)
	return startDelay + time.Duration(solve*float64(time.Second))
}

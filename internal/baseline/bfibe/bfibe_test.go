package bfibe

import (
	"bytes"
	"testing"

	"timedrelease/internal/params"
)

func setup(t *testing.T) (*Scheme, *MasterKey) {
	t.Helper()
	sc := NewScheme(params.MustPreset("Test160"))
	mk, err := sc.MasterKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	return sc, mk
}

func TestRoundTrip(t *testing.T) {
	sc, mk := setup(t)
	msg := []byte("to alice, via her identity alone")
	ct, err := sc.Encrypt(nil, mk.Pub, "alice", msg)
	if err != nil {
		t.Fatal(err)
	}
	priv := sc.Extract(mk, "alice")
	got, err := sc.Decrypt(priv, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("round trip mismatch")
	}
}

func TestWrongIdentityFails(t *testing.T) {
	sc, mk := setup(t)
	msg := []byte("alice only")
	ct, err := sc.Encrypt(nil, mk.Pub, "alice", msg)
	if err != nil {
		t.Fatal(err)
	}
	bob := sc.Extract(mk, "bob")
	got, err := sc.Decrypt(bob, ct)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, msg) {
		t.Fatal("bob must not decrypt alice's ciphertext")
	}
}

func TestWrongMasterFails(t *testing.T) {
	sc, mk := setup(t)
	other, err := sc.MasterKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("m")
	ct, err := sc.Encrypt(nil, mk.Pub, "alice", msg)
	if err != nil {
		t.Fatal(err)
	}
	alien := sc.Extract(other, "alice")
	got, err := sc.Decrypt(alien, ct)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, msg) {
		t.Fatal("a key from a different PKG must not decrypt")
	}
}

func TestMalformedCiphertext(t *testing.T) {
	sc, mk := setup(t)
	priv := sc.Extract(mk, "alice")
	if _, err := sc.Decrypt(priv, nil); err == nil {
		t.Fatal("nil ciphertext must be rejected")
	}
}

func TestExtractIsDeterministic(t *testing.T) {
	sc, mk := setup(t)
	a := sc.Extract(mk, "alice")
	b := sc.Extract(mk, "alice")
	if !sc.Set.Curve.Equal(a.D, b.D) {
		t.Fatal("extraction must be deterministic")
	}
}

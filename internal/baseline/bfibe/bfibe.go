// Package bfibe implements Boneh–Franklin BasicIdent identity-based
// encryption over the same Type-1 pairing as the rest of the repository.
// It serves two roles in the reproduction:
//
//   - the IBE half of the hybrid PKE+IBE baseline (paper footnote 3)
//     that the "50% reduction" claim is measured against (experiment E1);
//   - the substrate of the Mont et al. HP time-vault server model, where
//     the server extracts and individually delivers a per-user private
//     key sH1(ID‖T) every epoch (experiment E2).
package bfibe

import (
	"fmt"
	"io"
	"math/big"

	"timedrelease/internal/backend"
	"timedrelease/internal/curve"
	"timedrelease/internal/pairing"
	"timedrelease/internal/params"
	"timedrelease/internal/rohash"
)

// IdentityDomain is the H1 domain for BF-IBE identities.
const IdentityDomain = "bfibe-identity"

// Scheme binds BasicIdent to a parameter set.
type Scheme struct {
	Set *params.Set
}

// NewScheme returns a BasicIdent instance.
func NewScheme(set *params.Set) *Scheme { return &Scheme{Set: set} }

// MasterKey is the private key generator's key pair.
type MasterKey struct {
	S   *big.Int
	Pub MasterPublicKey
}

// MasterPublicKey is the PKG's public key (G, sG).
type MasterPublicKey struct {
	G  curve.Point
	SG curve.Point
}

// PrivateKey is an extracted identity key s·H1(ID).
type PrivateKey struct {
	ID string
	D  curve.Point
}

// MasterKeyGen creates the PKG key pair.
func (sc *Scheme) MasterKeyGen(rng io.Reader) (*MasterKey, error) {
	if sc.Set.Asymmetric() {
		return nil, backend.ErrSymmetricOnly
	}
	s, err := sc.Set.Curve.RandScalar(rng)
	if err != nil {
		return nil, err
	}
	return &MasterKey{
		S: s,
		Pub: MasterPublicKey{
			G:  sc.Set.G,
			SG: sc.Set.Curve.ScalarMult(s, sc.Set.G),
		},
	}, nil
}

// Extract derives the private key for an identity.
func (sc *Scheme) Extract(mk *MasterKey, id string) PrivateKey {
	h := sc.Set.Curve.HashToGroup(IdentityDomain, []byte(id))
	return PrivateKey{ID: id, D: sc.Set.Curve.ScalarMult(mk.S, h)}
}

// Ciphertext is the BasicIdent ciphertext ⟨rG, M ⊕ H2(g_ID^r)⟩.
type Ciphertext struct {
	U curve.Point
	V []byte
}

// Encrypt encrypts msg to an identity.
func (sc *Scheme) Encrypt(rng io.Reader, pub MasterPublicKey, id string, msg []byte) (*Ciphertext, error) {
	if sc.Set.Asymmetric() {
		return nil, backend.ErrSymmetricOnly
	}
	r, err := sc.Set.Curve.RandScalar(rng)
	if err != nil {
		return nil, fmt.Errorf("bfibe: sampling randomness: %w", err)
	}
	c := sc.Set.Curve
	h := c.HashToGroup(IdentityDomain, []byte(id))
	k := sc.Set.Pairing.Pair(c.ScalarMult(r, pub.SG), h)
	return &Ciphertext{
		U: c.ScalarMult(r, pub.G),
		V: rohash.XOR(msg, sc.mask(k, len(msg))),
	}, nil
}

// Decrypt recovers the message with the extracted identity key.
func (sc *Scheme) Decrypt(priv PrivateKey, ct *Ciphertext) ([]byte, error) {
	if sc.Set.Asymmetric() {
		return nil, backend.ErrSymmetricOnly
	}
	if ct == nil || !sc.Set.Curve.IsOnCurve(ct.U) {
		return nil, fmt.Errorf("bfibe: malformed ciphertext")
	}
	k := sc.Set.Pairing.Pair(ct.U, priv.D)
	return rohash.XOR(ct.V, sc.mask(k, len(ct.V))), nil
}

func (sc *Scheme) mask(k pairing.GT, n int) []byte {
	return rohash.Expand("BFIBE-H2", sc.Set.Pairing.E2.Bytes(k), n)
}

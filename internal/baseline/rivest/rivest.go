// Package rivest implements the offline variant of the Rivest–Shamir–
// Wagner trusted-server scheme (paper §2.2, footnote 2): the server
// pre-publishes a public key for every epoch up to a fixed horizon and
// releases the matching private key when each epoch arrives.
//
// The paper's criticisms, which experiment E9 measures:
//
//   - the server must generate, store and publish keys for the whole
//     horizon IN ADVANCE (storage and publication grow linearly with
//     how far ahead senders may seal);
//   - a sender cannot choose a release time beyond the published
//     horizon without waiting for the server to extend the list —
//     unlike TRE, where any label in the infinite future works.
//
// Epoch keys are hashed-ElGamal pairs over the same G1 so the comparison
// against TRE is apples-to-apples.
package rivest

import (
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"

	"timedrelease/internal/backend"
	"timedrelease/internal/curve"
	"timedrelease/internal/params"
	"timedrelease/internal/rohash"
)

// ErrBeyondHorizon reports an encryption attempt for an epoch the server
// has not pre-published.
var ErrBeyondHorizon = errors.New("rivest: release epoch is beyond the published horizon")

// ErrNotReleased reports a decryption attempt before the epoch's private
// key was released.
var ErrNotReleased = errors.New("rivest: epoch key not yet released")

// Server pre-generates per-epoch key pairs up to a horizon.
type Server struct {
	set *params.Set

	mu       sync.Mutex
	privs    []*big.Int    // all epoch private keys (must be stored!)
	pubs     []curve.Point // pre-published epoch public keys
	released int           // epochs whose private key is out
}

// NewServer creates a server with an empty key list.
func NewServer(set *params.Set) *Server { return &Server{set: set} }

// ExtendHorizon generates and "publishes" count additional epoch public
// keys. This is the up-front cost the paper objects to.
func (s *Server) ExtendHorizon(rng io.Reader, count int) error {
	if s.set.Asymmetric() {
		return backend.ErrSymmetricOnly
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < count; i++ {
		b, err := s.set.Curve.RandScalar(rng)
		if err != nil {
			return fmt.Errorf("rivest: generating epoch key: %w", err)
		}
		s.privs = append(s.privs, b)
		s.pubs = append(s.pubs, s.set.Curve.ScalarMult(b, s.set.G))
	}
	return nil
}

// Horizon returns the number of pre-published epochs.
func (s *Server) Horizon() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pubs)
}

// PublicKeys returns the published key list (what every sender must
// hold a copy of, or query).
func (s *Server) PublicKeys() []curve.Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]curve.Point(nil), s.pubs...)
}

// Release hands out the private key of the given epoch, which must be
// the next unreleased one (epochs release in order as time passes).
func (s *Server) Release(epoch int) (*big.Int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch >= len(s.privs) {
		return nil, ErrBeyondHorizon
	}
	if epoch >= s.released {
		if epoch != s.released {
			return nil, fmt.Errorf("rivest: epochs release in order; next is %d", s.released)
		}
		s.released++
	}
	return new(big.Int).Set(s.privs[epoch]), nil
}

// StoredKeyBytes estimates the server's private-key storage: one scalar
// per epoch in the horizon — compare TRE's single scalar regardless of
// horizon (E9).
func (s *Server) StoredKeyBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.privs)) * int64((s.set.Q.BitLen()+7)/8)
}

// PublishedKeyBytes estimates the size of the public key list senders
// must obtain.
func (s *Server) PublishedKeyBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.pubs)) * int64(s.set.Curve.MarshalSize())
}

// Ciphertext is a hashed-ElGamal ciphertext to an epoch key.
type Ciphertext struct {
	Epoch int
	U     curve.Point
	V     []byte
}

// Encrypt seals msg to the given epoch using the published key list.
func Encrypt(rng io.Reader, set *params.Set, pubs []curve.Point, epoch int, msg []byte) (*Ciphertext, error) {
	if set.Asymmetric() {
		return nil, backend.ErrSymmetricOnly
	}
	if epoch < 0 || epoch >= len(pubs) {
		return nil, ErrBeyondHorizon
	}
	r, err := set.Curve.RandScalar(rng)
	if err != nil {
		return nil, err
	}
	shared := set.Curve.ScalarMult(r, pubs[epoch])
	return &Ciphertext{
		Epoch: epoch,
		U:     set.Curve.ScalarMult(r, set.G),
		V:     rohash.XOR(msg, rohash.Expand("RIVEST-DEM", set.Curve.Marshal(shared), len(msg))),
	}, nil
}

// Decrypt opens a ciphertext with the released epoch private key.
func Decrypt(set *params.Set, epochPriv *big.Int, ct *Ciphertext) ([]byte, error) {
	if set.Asymmetric() {
		return nil, backend.ErrSymmetricOnly
	}
	if ct == nil || !set.Curve.IsOnCurve(ct.U) {
		return nil, errors.New("rivest: malformed ciphertext")
	}
	shared := set.Curve.ScalarMult(epochPriv, ct.U)
	return rohash.XOR(ct.V, rohash.Expand("RIVEST-DEM", set.Curve.Marshal(shared), len(ct.V))), nil
}

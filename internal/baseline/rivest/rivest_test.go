package rivest

import (
	"bytes"
	"errors"
	"testing"

	"timedrelease/internal/params"
)

func TestRoundTripThroughEpochs(t *testing.T) {
	set := params.MustPreset("Test160")
	srv := NewServer(set)
	if err := srv.ExtendHorizon(nil, 5); err != nil {
		t.Fatal(err)
	}
	pubs := srv.PublicKeys()
	msg := []byte("sealed for epoch 3")
	ct, err := Encrypt(nil, set, pubs, 3, msg)
	if err != nil {
		t.Fatal(err)
	}
	// Epochs release in order as time passes.
	for e := 0; e <= 3; e++ {
		if _, err := srv.Release(e); err != nil {
			t.Fatalf("Release(%d): %v", e, err)
		}
	}
	priv, err := srv.Release(3) // already released; fetching again is fine
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decrypt(set, priv, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("round trip mismatch")
	}
}

func TestHorizonLimitsSenders(t *testing.T) {
	// The paper's §1 footnote 2 criticism: a sender cannot seal beyond
	// the published list.
	set := params.MustPreset("Test160")
	srv := NewServer(set)
	if err := srv.ExtendHorizon(nil, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := Encrypt(nil, set, srv.PublicKeys(), 7, []byte("m")); !errors.Is(err, ErrBeyondHorizon) {
		t.Fatalf("encrypt beyond horizon: err=%v", err)
	}
}

func TestReleaseOrderEnforced(t *testing.T) {
	set := params.MustPreset("Test160")
	srv := NewServer(set)
	if err := srv.ExtendHorizon(nil, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Release(2); err == nil {
		t.Fatal("out-of-order release must fail")
	}
	if _, err := srv.Release(5); !errors.Is(err, ErrBeyondHorizon) {
		t.Fatalf("release beyond horizon: err=%v", err)
	}
}

func TestWrongEpochKeyFails(t *testing.T) {
	set := params.MustPreset("Test160")
	srv := NewServer(set)
	if err := srv.ExtendHorizon(nil, 2); err != nil {
		t.Fatal(err)
	}
	msg := []byte("epoch 1 message")
	ct, err := Encrypt(nil, set, srv.PublicKeys(), 1, msg)
	if err != nil {
		t.Fatal(err)
	}
	k0, err := srv.Release(0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decrypt(set, k0, ct)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, msg) {
		t.Fatal("epoch-0 key must not decrypt epoch-1 ciphertext")
	}
}

func TestStorageGrowsWithHorizon(t *testing.T) {
	set := params.MustPreset("Test160")
	srv := NewServer(set)
	if err := srv.ExtendHorizon(nil, 10); err != nil {
		t.Fatal(err)
	}
	s10 := srv.StoredKeyBytes()
	p10 := srv.PublishedKeyBytes()
	if err := srv.ExtendHorizon(nil, 90); err != nil {
		t.Fatal(err)
	}
	if srv.StoredKeyBytes() != 10*s10 || srv.PublishedKeyBytes() != 10*p10 {
		t.Fatalf("storage must be linear in horizon: %d → %d, %d → %d",
			s10, srv.StoredKeyBytes(), p10, srv.PublishedKeyBytes())
	}
	if srv.Horizon() != 100 {
		t.Fatalf("Horizon = %d", srv.Horizon())
	}
}

package escrow

import (
	"testing"
	"time"
)

var (
	t0      = time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)
	release = t0.Add(time.Hour)
)

func TestDepositAndCollect(t *testing.T) {
	a := NewAgent()
	a.Deposit(Deposit{Sender: "s1", Recipient: "alice", ReleaseAt: release, Message: []byte("bid A")})
	a.Deposit(Deposit{Sender: "s2", Recipient: "alice", ReleaseAt: release, Message: []byte("bid B")})
	a.Deposit(Deposit{Sender: "s3", Recipient: "bob", ReleaseAt: release, Message: []byte("bid C")})

	// Before release: nothing comes out, everything is held.
	if got := a.Collect("alice", t0); len(got) != 0 {
		t.Fatalf("early collect returned %d messages", len(got))
	}
	if a.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", a.Pending())
	}

	// At release: alice gets hers, bob's stays.
	got := a.Collect("alice", release)
	if len(got) != 2 {
		t.Fatalf("collect returned %d messages, want 2", len(got))
	}
	if a.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", a.Pending())
	}
	// Second collect is empty (messages removed).
	if got := a.Collect("alice", release); len(got) != 0 {
		t.Fatal("double collect must be empty")
	}
}

func TestStateGrowsWithMessages(t *testing.T) {
	// The scalability failure the paper calls out: the agent's storage is
	// linear in escrowed traffic.
	a := NewAgent()
	msg := make([]byte, 1000)
	for i := 0; i < 50; i++ {
		a.Deposit(Deposit{Recipient: "r", ReleaseAt: release, Message: msg})
	}
	if a.StoredBytes() != 50_000 {
		t.Fatalf("StoredBytes = %d, want 50000", a.StoredBytes())
	}
	a.Collect("r", release)
	if a.StoredBytes() != 0 {
		t.Fatalf("StoredBytes after collect = %d", a.StoredBytes())
	}
}

func TestDepositCopiesMessage(t *testing.T) {
	a := NewAgent()
	msg := []byte("mutable")
	a.Deposit(Deposit{Recipient: "r", ReleaseAt: release, Message: msg})
	msg[0] = 'X'
	got := a.Collect("r", release)
	if len(got) != 1 || string(got[0]) != "mutable" {
		t.Fatal("agent must defensively copy deposits")
	}
}

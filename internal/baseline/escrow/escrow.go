// Package escrow implements May's trusted escrow agent (1993), the
// earliest server-based approach the paper surveys (§2.2): senders give
// the agent the PLAINTEXT message, its release time, and the recipient;
// the agent stores everything and hands messages over when their time
// comes.
//
// The implementation exists to measure the two failures the paper
// attributes to it (experiment E2): the agent's state grows with every
// escrowed message, and the agent learns the message, the release time
// and both identities — there is no anonymity to account for because the
// API itself consumes it.
package escrow

import (
	"sync"
	"time"
)

// Deposit is one escrowed message. Note the fields: the agent holds the
// plaintext and knows everyone involved.
type Deposit struct {
	Sender    string
	Recipient string
	ReleaseAt time.Time
	Message   []byte
}

// Agent is the trusted escrow server.
type Agent struct {
	mu       sync.Mutex
	deposits []Deposit
	bytes    int64
}

// NewAgent returns an empty escrow agent.
func NewAgent() *Agent { return &Agent{} }

// Deposit stores a message until its release time. This is the
// sender-server interaction the paper's model eliminates.
func (a *Agent) Deposit(d Deposit) {
	a.mu.Lock()
	defer a.mu.Unlock()
	cp := d
	cp.Message = append([]byte(nil), d.Message...)
	a.deposits = append(a.deposits, cp)
	a.bytes += int64(len(d.Message))
}

// Collect returns (and removes) every deposit for the recipient whose
// release time has passed at now.
func (a *Agent) Collect(recipient string, now time.Time) [][]byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out [][]byte
	kept := a.deposits[:0]
	for _, d := range a.deposits {
		if d.Recipient == recipient && !d.ReleaseAt.After(now) {
			out = append(out, d.Message)
			a.bytes -= int64(len(d.Message))
			continue
		}
		kept = append(kept, d)
	}
	a.deposits = kept
	return out
}

// Pending returns the number of messages the agent is holding — state
// that grows linearly with traffic, unlike the paper's server whose only
// state is one update per epoch.
func (a *Agent) Pending() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.deposits)
}

// StoredBytes returns the total plaintext bytes held in escrow.
func (a *Agent) StoredBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.bytes
}

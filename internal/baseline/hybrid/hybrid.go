// Package hybrid implements the generic PKE + IBE construction of paper
// footnote 3 — the strawman the paper's efficiency claim is measured
// against (experiment E1):
//
//	"We could use a public key encryption scheme to encrypt a sub-key
//	 K₁ and use an identity based encryption scheme to encrypt another
//	 sub-key K₂. These two sub-keys are then combined to feed into a
//	 symmetric key encryption scheme for encrypting the actual
//	 messages."
//
// The PKE is hashed ElGamal over G1 (no pairing needed), the IBE is
// Boneh–Franklin BasicIdent with the release label as the identity, and
// the DEM is the same random-oracle stream used elsewhere. Decryption
// needs the receiver's ElGamal key AND the IBE private key for the
// release label — which the time server publishes as s·H1(T) when T
// arrives — so it achieves the same timed-release functionality as TRE
// at the cost of a second group element and a second wrapped sub-key in
// every ciphertext.
package hybrid

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"

	"timedrelease/internal/backend"
	"timedrelease/internal/baseline/bfibe"
	"timedrelease/internal/curve"
	"timedrelease/internal/params"
	"timedrelease/internal/rohash"
)

// subKeyLen is the length of each wrapped sub-key.
const subKeyLen = 32

// Scheme binds the hybrid construction to a parameter set.
type Scheme struct {
	Set *params.Set
	ibe *bfibe.Scheme
}

// NewScheme returns a hybrid PKE+IBE instance.
func NewScheme(set *params.Set) *Scheme {
	return &Scheme{Set: set, ibe: bfibe.NewScheme(set)}
}

// ReceiverKey is a hashed-ElGamal key pair over G1.
type ReceiverKey struct {
	B   *big.Int    // private
	Pub curve.Point // b·G
}

// ReceiverKeyGen creates the receiver's PKE key pair.
func (sc *Scheme) ReceiverKeyGen(rng io.Reader) (*ReceiverKey, error) {
	if sc.Set.Asymmetric() {
		return nil, backend.ErrSymmetricOnly
	}
	b, err := sc.Set.Curve.RandScalar(rng)
	if err != nil {
		return nil, err
	}
	return &ReceiverKey{B: b, Pub: sc.Set.Curve.ScalarMult(b, sc.Set.G)}, nil
}

// Ciphertext carries both encapsulations and the DEM body:
// two group elements + two wrapped 32-byte sub-keys + |M| — roughly
// double the TRE ciphertext overhead (the E1 measurement).
type Ciphertext struct {
	U1 curve.Point // r₁·G        (ElGamal)
	W1 []byte      // K₁ ⊕ H(r₁·bG)
	U2 curve.Point // r₂·G        (IBE)
	W2 []byte      // K₂ ⊕ H2(ê(r₂·sG, H1(T)))
	V  []byte      // M ⊕ Expand(K₁ ‖ K₂)
}

// Encrypt produces a timed-release ciphertext for (receiver, release
// label) under the time server's IBE master public key.
func (sc *Scheme) Encrypt(rng io.Reader, server bfibe.MasterPublicKey, receiver curve.Point, label string, msg []byte) (*Ciphertext, error) {
	if sc.Set.Asymmetric() {
		return nil, backend.ErrSymmetricOnly
	}
	if rng == nil {
		rng = rand.Reader
	}
	c := sc.Set.Curve

	k1 := make([]byte, subKeyLen)
	k2 := make([]byte, subKeyLen)
	if _, err := io.ReadFull(rng, k1); err != nil {
		return nil, fmt.Errorf("hybrid: sampling sub-key: %w", err)
	}
	if _, err := io.ReadFull(rng, k2); err != nil {
		return nil, fmt.Errorf("hybrid: sampling sub-key: %w", err)
	}

	// PKE half: hashed ElGamal.
	r1, err := c.RandScalar(rng)
	if err != nil {
		return nil, err
	}
	u1 := c.ScalarMult(r1, sc.Set.G)
	shared := c.ScalarMult(r1, receiver)
	w1 := rohash.XOR(k1, rohash.Expand("HYB-PKE", c.Marshal(shared), subKeyLen))

	// IBE half: BasicIdent with the release label as identity.
	ibeCT, err := sc.ibe.Encrypt(rng, server, label, k2)
	if err != nil {
		return nil, err
	}

	return &Ciphertext{
		U1: u1, W1: w1,
		U2: ibeCT.U, W2: ibeCT.V,
		V: rohash.XOR(msg, demMask(k1, k2, len(msg))),
	}, nil
}

// Decrypt combines the receiver's ElGamal key with the time server's
// published IBE key for the release label.
func (sc *Scheme) Decrypt(receiver *ReceiverKey, labelKey bfibe.PrivateKey, ct *Ciphertext) ([]byte, error) {
	if sc.Set.Asymmetric() {
		return nil, backend.ErrSymmetricOnly
	}
	if ct == nil || !sc.Set.Curve.IsOnCurve(ct.U1) || !sc.Set.Curve.IsOnCurve(ct.U2) ||
		len(ct.W1) != subKeyLen || len(ct.W2) != subKeyLen {
		return nil, fmt.Errorf("hybrid: malformed ciphertext")
	}
	c := sc.Set.Curve
	shared := c.ScalarMult(receiver.B, ct.U1)
	k1 := rohash.XOR(ct.W1, rohash.Expand("HYB-PKE", c.Marshal(shared), subKeyLen))
	k2, err := sc.ibe.Decrypt(labelKey, &bfibe.Ciphertext{U: ct.U2, V: ct.W2})
	if err != nil {
		return nil, err
	}
	return rohash.XOR(ct.V, demMask(k1, k2, len(ct.V))), nil
}

// Size returns the wire size of the ciphertext for a given message
// length (used by the E1 size comparison).
func (sc *Scheme) Size(msgLen int) int {
	point := sc.Set.Curve.MarshalSize()
	return 2*point + 2*subKeyLen + msgLen
}

// demMask combines the sub-keys into the DEM keystream.
func demMask(k1, k2 []byte, n int) []byte {
	return rohash.Expand("HYB-DEM", rohash.Concat(k1, k2), n)
}

package hybrid

import (
	"bytes"
	"testing"

	"timedrelease/internal/baseline/bfibe"
	"timedrelease/internal/core"
	"timedrelease/internal/params"
)

const label = "2026-07-05T12:00:00Z"

type env struct {
	sc       *Scheme
	ibe      *bfibe.Scheme
	master   *bfibe.MasterKey
	receiver *ReceiverKey
}

func setup(t *testing.T) *env {
	t.Helper()
	set := params.MustPreset("Test160")
	sc := NewScheme(set)
	ibe := bfibe.NewScheme(set)
	mk, err := ibe.MasterKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	rk, err := sc.ReceiverKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	return &env{sc: sc, ibe: ibe, master: mk, receiver: rk}
}

func TestRoundTrip(t *testing.T) {
	e := setup(t)
	msg := []byte("the hybrid strawman works, just bigger and slower")
	ct, err := e.sc.Encrypt(nil, e.master.Pub, e.receiver.Pub, label, msg)
	if err != nil {
		t.Fatal(err)
	}
	labelKey := e.ibe.Extract(e.master, label) // what the time server releases at T
	got, err := e.sc.Decrypt(e.receiver, labelKey, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("round trip mismatch")
	}
}

func TestNeedsBothKeys(t *testing.T) {
	e := setup(t)
	msg := []byte("both sub-keys required")
	ct, err := e.sc.Encrypt(nil, e.master.Pub, e.receiver.Pub, label, msg)
	if err != nil {
		t.Fatal(err)
	}
	// Right label key, wrong receiver key.
	otherRk, err := e.sc.ReceiverKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	labelKey := e.ibe.Extract(e.master, label)
	if got, _ := e.sc.Decrypt(otherRk, labelKey, ct); bytes.Equal(got, msg) {
		t.Fatal("wrong receiver key must not decrypt")
	}
	// Right receiver key, wrong (earlier) label key.
	earlyKey := e.ibe.Extract(e.master, "2026-07-05T11:00:00Z")
	if got, _ := e.sc.Decrypt(e.receiver, earlyKey, ct); bytes.Equal(got, msg) {
		t.Fatal("wrong label key must not decrypt")
	}
}

func TestCiphertextSizeVersusTRE(t *testing.T) {
	// The quantitative heart of E1: the hybrid ciphertext carries two
	// group elements and two wrapped sub-keys; TRE carries one group
	// element. For short messages the overhead ratio approaches 2x
	// ("50% reduction in most cases").
	set := params.MustPreset("Test160")
	e := setup(t)
	const msgLen = 32

	hybridSize := e.sc.Size(msgLen)

	tre := core.NewScheme(set)
	server, err := tre.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	user, err := tre.UserKeyGen(server.Pub, nil)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := tre.Encrypt(nil, server.Pub, user.Pub, label, make([]byte, msgLen))
	if err != nil {
		t.Fatal(err)
	}
	treSize := set.Curve.MarshalSize() + len(ct.V)

	if hybridSize <= treSize {
		t.Fatalf("hybrid (%dB) must be larger than TRE (%dB)", hybridSize, treSize)
	}
	ratio := float64(treSize) / float64(hybridSize)
	if ratio > 0.75 {
		t.Fatalf("TRE/hybrid size ratio %.2f — expected a substantial reduction", ratio)
	}
	t.Logf("msg=%dB: TRE=%dB hybrid=%dB (TRE is %.0f%% of hybrid)", msgLen, treSize, hybridSize, 100*ratio)
}

func TestSizeAccounting(t *testing.T) {
	e := setup(t)
	msg := make([]byte, 100)
	ct, err := e.sc.Encrypt(nil, e.master.Pub, e.receiver.Pub, label, msg)
	if err != nil {
		t.Fatal(err)
	}
	got := 2*e.sc.Set.Curve.MarshalSize() + len(ct.W1) + len(ct.W2) + len(ct.V)
	if got != e.sc.Size(len(msg)) {
		t.Fatalf("Size() = %d, actual = %d", e.sc.Size(len(msg)), got)
	}
}

func TestMalformedCiphertext(t *testing.T) {
	e := setup(t)
	labelKey := e.ibe.Extract(e.master, label)
	if _, err := e.sc.Decrypt(e.receiver, labelKey, nil); err == nil {
		t.Fatal("nil ciphertext must be rejected")
	}
	ct, err := e.sc.Encrypt(nil, e.master.Pub, e.receiver.Pub, label, []byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	ct.W1 = ct.W1[:5]
	if _, err := e.sc.Decrypt(e.receiver, labelKey, ct); err == nil {
		t.Fatal("short W1 must be rejected")
	}
}

package hibe

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"

	"timedrelease/internal/curve"
)

// Wire encodings for the objects the resilient time tree actually
// publishes and transmits: node-key bundles (the per-epoch cover
// publication) and tree ciphertexts. Same conventions as internal/wire:
// length-delimited, strict, subgroup-validated points.

// MarshalNodeKey encodes a node bundle:
// pathLen ‖ (labelLen ‖ label)* ‖ S ‖ delegation ‖ qLen ‖ Q*.
func (sc *Scheme) MarshalNodeKey(k NodeKey) []byte {
	c := sc.Set.Curve
	out := binary.BigEndian.AppendUint16(nil, uint16(len(k.Path)))
	for _, label := range k.Path {
		out = binary.BigEndian.AppendUint16(out, uint16(len(label)))
		out = append(out, label...)
	}
	out = append(out, c.Marshal(k.S)...)
	scalarLen := (sc.Set.Q.BitLen() + 7) / 8
	out = append(out, k.Delegation.FillBytes(make([]byte, scalarLen))...)
	out = binary.BigEndian.AppendUint16(out, uint16(len(k.Qs)))
	for _, q := range k.Qs {
		out = append(out, c.Marshal(q)...)
	}
	return out
}

// UnmarshalNodeKey decodes a node bundle, enforcing the structural
// invariant len(Qs) = len(Path) − 1.
func (sc *Scheme) UnmarshalNodeKey(data []byte) (NodeKey, error) {
	c := sc.Set.Curve
	r := &byteReader{buf: data}
	nPath, err := r.u16()
	if err != nil {
		return NodeKey{}, fmt.Errorf("hibe: path length: %w", err)
	}
	if nPath == 0 || nPath > 64 {
		return NodeKey{}, errors.New("hibe: implausible path depth")
	}
	path := make([]string, nPath)
	for i := range path {
		lbl, err := r.bytes16()
		if err != nil {
			return NodeKey{}, fmt.Errorf("hibe: path label %d: %w", i, err)
		}
		path[i] = string(lbl)
	}
	sRaw, err := r.take(c.MarshalSize())
	if err != nil {
		return NodeKey{}, fmt.Errorf("hibe: S point: %w", err)
	}
	s, err := c.UnmarshalSubgroup(sRaw)
	if err != nil {
		return NodeKey{}, fmt.Errorf("hibe: S point: %w", err)
	}
	scalarLen := (sc.Set.Q.BitLen() + 7) / 8
	dRaw, err := r.take(scalarLen)
	if err != nil {
		return NodeKey{}, fmt.Errorf("hibe: delegation scalar: %w", err)
	}
	d := new(big.Int).SetBytes(dRaw)
	if d.Sign() <= 0 || d.Cmp(sc.Set.Q) >= 0 {
		return NodeKey{}, errors.New("hibe: delegation scalar out of range")
	}
	nQ, err := r.u16()
	if err != nil {
		return NodeKey{}, fmt.Errorf("hibe: Q count: %w", err)
	}
	if nQ != nPath-1 {
		return NodeKey{}, fmt.Errorf("hibe: %d Q values for depth %d (want %d)", nQ, nPath, nPath-1)
	}
	qs := make([]curve.Point, nQ)
	for i := range qs {
		raw, err := r.take(c.MarshalSize())
		if err != nil {
			return NodeKey{}, fmt.Errorf("hibe: Q[%d]: %w", i, err)
		}
		qs[i], err = c.UnmarshalSubgroup(raw)
		if err != nil {
			return NodeKey{}, fmt.Errorf("hibe: Q[%d]: %w", i, err)
		}
	}
	if err := r.done(); err != nil {
		return NodeKey{}, err
	}
	return NodeKey{Path: path, S: s, Delegation: d, Qs: qs}, nil
}

// MarshalCiphertext encodes a tree ciphertext: U0 ‖ count ‖ U* ‖ len(V) ‖ V.
func (sc *Scheme) MarshalCiphertext(ct *Ciphertext) []byte {
	c := sc.Set.Curve
	out := c.Marshal(ct.U0)
	out = binary.BigEndian.AppendUint16(out, uint16(len(ct.Us)))
	for _, u := range ct.Us {
		out = append(out, c.Marshal(u)...)
	}
	out = binary.BigEndian.AppendUint32(out, uint32(len(ct.V)))
	return append(out, ct.V...)
}

// UnmarshalCiphertext decodes a tree ciphertext.
func (sc *Scheme) UnmarshalCiphertext(data []byte) (*Ciphertext, error) {
	c := sc.Set.Curve
	r := &byteReader{buf: data}
	u0Raw, err := r.take(c.MarshalSize())
	if err != nil {
		return nil, fmt.Errorf("hibe: U0: %w", err)
	}
	u0, err := c.UnmarshalSubgroup(u0Raw)
	if err != nil {
		return nil, fmt.Errorf("hibe: U0: %w", err)
	}
	n, err := r.u16()
	if err != nil {
		return nil, fmt.Errorf("hibe: U count: %w", err)
	}
	if n > 64 {
		return nil, errors.New("hibe: implausible ciphertext depth")
	}
	us := make([]curve.Point, n)
	for i := range us {
		raw, err := r.take(c.MarshalSize())
		if err != nil {
			return nil, fmt.Errorf("hibe: U[%d]: %w", i, err)
		}
		us[i], err = c.UnmarshalSubgroup(raw)
		if err != nil {
			return nil, fmt.Errorf("hibe: U[%d]: %w", i, err)
		}
	}
	vLen, err := r.u32()
	if err != nil {
		return nil, fmt.Errorf("hibe: V length: %w", err)
	}
	v, err := r.take(vLen)
	if err != nil {
		return nil, fmt.Errorf("hibe: V: %w", err)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return &Ciphertext{U0: u0, Us: us, V: append([]byte(nil), v...)}, nil
}

// byteReader is a minimal strict cursor (mirrors internal/wire's, which
// is unexported there; hibe cannot import wire without a cycle).
type byteReader struct {
	buf []byte
}

func (r *byteReader) take(n int) ([]byte, error) {
	if n < 0 || len(r.buf) < n {
		return nil, errors.New("hibe: truncated input")
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out, nil
}

func (r *byteReader) u16() (int, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return int(binary.BigEndian.Uint16(b)), nil
}

func (r *byteReader) bytes16() ([]byte, error) {
	n, err := r.u16()
	if err != nil {
		return nil, err
	}
	return r.take(n)
}

func (r *byteReader) u32() (int, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint32(b)
	if v > 1<<31 {
		return 0, errors.New("hibe: length field too large")
	}
	return int(v), nil
}

func (r *byteReader) done() error {
	if len(r.buf) != 0 {
		return errors.New("hibe: trailing bytes")
	}
	return nil
}

package hibe

import (
	"bytes"
	"testing"

	"timedrelease/internal/params"
)

func setup(t *testing.T) (*Scheme, *RootKey) {
	t.Helper()
	sc := NewScheme(params.MustPreset("Test160"), "test")
	root, err := sc.RootKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	return sc, root
}

func TestRoundTripAtDepths(t *testing.T) {
	sc, root := setup(t)
	paths := [][]string{
		{"a"},
		{"a", "b"},
		{"a", "b", "c"},
		{"x", "y", "z", "w", "v"},
	}
	for _, path := range paths {
		msg := []byte("depth test")
		ct, err := sc.Encrypt(nil, root.Pub, path, msg)
		if err != nil {
			t.Fatalf("Encrypt(%v): %v", path, err)
		}
		if len(ct.Us) != len(path)-1 {
			t.Fatalf("ciphertext has %d extra points, want %d", len(ct.Us), len(path)-1)
		}
		key, err := sc.NodeFor(root, path)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sc.Decrypt(key, ct)
		if err != nil {
			t.Fatalf("Decrypt(%v): %v", path, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("round trip mismatch at depth %d", len(path))
		}
	}
}

func TestDelegationMatchesDirectDerivation(t *testing.T) {
	// Walking child-by-child from a published ancestor bundle must yield
	// exactly the key the root computes directly.
	sc, root := setup(t)
	ancestor, err := sc.NodeFor(root, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	viaDelegation := sc.Child(sc.Child(ancestor, "c"), "d")
	direct, err := sc.NodeFor(root, []string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Set.Curve.Equal(viaDelegation.S, direct.S) {
		t.Fatal("delegated S differs from direct derivation")
	}
	if viaDelegation.Delegation.Cmp(direct.Delegation) != 0 {
		t.Fatal("delegated chain secret differs")
	}
	if len(viaDelegation.Qs) != len(direct.Qs) {
		t.Fatal("Q lists differ in length")
	}
	for i := range direct.Qs {
		if !sc.Set.Curve.Equal(viaDelegation.Qs[i], direct.Qs[i]) {
			t.Fatalf("Q[%d] differs", i)
		}
	}
}

func TestDescendantKeyDecrypts(t *testing.T) {
	sc, root := setup(t)
	msg := []byte("addressed to a/b/c")
	ct, err := sc.Encrypt(nil, root.Pub, []string{"a", "b", "c"}, msg)
	if err != nil {
		t.Fatal(err)
	}
	// Holder of the a/b bundle derives a/b/c and decrypts.
	ab, err := sc.NodeFor(root, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	leaf := sc.Child(ab, "c")
	got, err := sc.Decrypt(leaf, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("descendant-derived key must decrypt")
	}
}

func TestSiblingKeyDoesNotDecrypt(t *testing.T) {
	sc, root := setup(t)
	msg := []byte("for a/b only")
	ct, err := sc.Encrypt(nil, root.Pub, []string{"a", "b"}, msg)
	if err != nil {
		t.Fatal(err)
	}
	sibling, err := sc.NodeFor(root, []string{"a", "c"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sc.Decrypt(sibling, ct)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, msg) {
		t.Fatal("sibling key must not decrypt")
	}
}

func TestDepthMismatchRejected(t *testing.T) {
	sc, root := setup(t)
	ct, err := sc.Encrypt(nil, root.Pub, []string{"a", "b", "c"}, []byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	shallow, err := sc.NodeFor(root, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Decrypt(shallow, ct); err == nil {
		t.Fatal("depth mismatch must be rejected (derive the leaf first)")
	}
}

func TestDifferentRootsIndependent(t *testing.T) {
	sc, root := setup(t)
	other, err := sc.RootKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("root A only")
	ct, err := sc.Encrypt(nil, root.Pub, []string{"a"}, msg)
	if err != nil {
		t.Fatal(err)
	}
	alien, err := sc.NodeFor(other, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sc.Decrypt(alien, ct)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, msg) {
		t.Fatal("key under another root must not decrypt")
	}
}

func TestEmptyPathRejected(t *testing.T) {
	sc, root := setup(t)
	if _, err := sc.Encrypt(nil, root.Pub, nil, []byte("m")); err == nil {
		t.Fatal("empty path must be rejected")
	}
	if _, err := sc.NodeFor(root, nil); err == nil {
		t.Fatal("empty path must be rejected")
	}
}

func TestPathFramingUnambiguous(t *testing.T) {
	// ("ab") and ("a","b") must address different nodes.
	sc, root := setup(t)
	msg := []byte("m")
	ct, err := sc.Encrypt(nil, root.Pub, []string{"ab"}, msg)
	if err != nil {
		t.Fatal(err)
	}
	k, err := sc.NodeFor(root, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Decrypt(k, ct); err == nil {
		// Depth differs so this is rejected structurally — good. Also
		// check the depth-1 vs depth-1 case with different labels via
		// sibling test above.
		t.Fatal("depth mismatch must be rejected")
	}
}

package hibe

import (
	"bytes"
	"testing"
)

func TestNodeKeyEncodingRoundTrip(t *testing.T) {
	sc, root := setup(t)
	for _, path := range [][]string{{"0"}, {"0", "1"}, {"1", "0", "1", "1"}} {
		k, err := sc.NodeFor(root, path)
		if err != nil {
			t.Fatal(err)
		}
		enc := sc.MarshalNodeKey(k)
		back, err := sc.UnmarshalNodeKey(enc)
		if err != nil {
			t.Fatalf("UnmarshalNodeKey(%v): %v", path, err)
		}
		if len(back.Path) != len(k.Path) {
			t.Fatal("path length changed")
		}
		for i := range k.Path {
			if back.Path[i] != k.Path[i] {
				t.Fatal("path changed")
			}
		}
		if !sc.Set.Curve.Equal(back.S, k.S) || back.Delegation.Cmp(k.Delegation) != 0 {
			t.Fatal("key material changed")
		}
		// The decoded bundle must still WORK: delegate one level and
		// decrypt.
		child := sc.Child(back, "x")
		msg := []byte("decoded bundle delegates")
		ct, err := sc.Encrypt(nil, root.Pub, append(append([]string(nil), path...), "x"), msg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sc.Decrypt(child, ct)
		if err != nil || !bytes.Equal(got, msg) {
			t.Fatalf("decoded bundle failed to delegate: %q %v", got, err)
		}
	}
}

func TestNodeKeyEncodingRejectsMalformed(t *testing.T) {
	sc, root := setup(t)
	k, err := sc.NodeFor(root, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	enc := sc.MarshalNodeKey(k)

	cases := map[string][]byte{
		"empty":     {},
		"truncated": enc[:len(enc)-2],
		"trailing":  append(append([]byte{}, enc...), 7),
		"zero path": append([]byte{0, 0}, enc[2:]...),
	}
	for name, data := range cases {
		if _, err := sc.UnmarshalNodeKey(data); err == nil {
			t.Errorf("%s: must fail", name)
		}
	}
}

func TestTreeCiphertextEncodingRoundTrip(t *testing.T) {
	sc, root := setup(t)
	path := []string{"0", "1", "1"}
	msg := []byte("tree ciphertext on the wire")
	ct, err := sc.Encrypt(nil, root.Pub, path, msg)
	if err != nil {
		t.Fatal(err)
	}
	enc := sc.MarshalCiphertext(ct)
	back, err := sc.UnmarshalCiphertext(enc)
	if err != nil {
		t.Fatal(err)
	}
	key, err := sc.NodeFor(root, path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sc.Decrypt(key, back)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("decrypt after round trip: %q %v", got, err)
	}
	if _, err := sc.UnmarshalCiphertext(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated ciphertext must fail")
	}
	if _, err := sc.UnmarshalCiphertext(append(enc, 1)); err == nil {
		t.Fatal("trailing bytes must fail")
	}
}

package hibe

import "timedrelease/internal/pairing"

// VerifyNodeKey checks a received bundle's decryption half against the
// ROOT public key — so cover publications can travel over any untrusted
// channel, exactly like flat key updates:
//
//	ê(G, S_w) = Π_{i=1..t} ê(Q_{i-1}, P_i),   Q_0 = sG, P_i = H1(ID₁…ID_i)
//
// which holds iff S_w = Σ s_{parent(i)}·P_i for the secrets the Q-list
// commits to. Evaluated as one pairing product with a negated first
// factor and a single final exponentiation.
//
// The delegation scalar is deliberately NOT anchored: decryption cancels
// every Q-dependent term, so any self-consistent (S, Qs, delegation)
// triple that passes this check is a working key for its path — a mirror
// re-randomising delegation scalars changes nothing (asserted by
// TestDelegationScalarIsNotTrustBearing). What cannot pass is a forged
// S: its s·P₁ component is pinned to Q₀ = sG, and forging it would
// contradict the same CDH argument that protects ordinary key updates.
func (sc *Scheme) VerifyNodeKey(pub RootPublicKey, k NodeKey) bool {
	t := len(k.Path)
	if t == 0 || len(k.Qs) != t-1 {
		return false
	}
	c := sc.Set.Curve
	if k.S.IsInfinity() || !c.InSubgroup(k.S) {
		return false
	}
	if k.Delegation == nil || k.Delegation.Sign() <= 0 || k.Delegation.Cmp(sc.Set.Q) >= 0 {
		return false
	}
	pairs := make([]pairing.PointPair, 0, t+1)
	pairs = append(pairs, pairing.PointPair{P: c.Neg(pub.G), Q: k.S})
	qPrev := pub.SG // Q_0 = sG
	for i := 1; i <= t; i++ {
		if qPrev.IsInfinity() || !c.InSubgroup(qPrev) {
			return false
		}
		pairs = append(pairs, pairing.PointPair{P: qPrev, Q: sc.hashPrefix(k.Path[:i])})
		if i < t {
			qPrev = k.Qs[i-1]
		}
	}
	return sc.Set.Pairing.E2.IsOne(sc.Set.Pairing.PairProduct(pairs))
}

// Package hibe implements Gentry–Silverberg hierarchical identity-based
// encryption (BasicHIDE) over the repository's Type-1 pairing, with
// chain-derived delegation secrets. It is the substrate for the paper's
// stated future work (§6): "schemes resilient to missing updates ...
// using the hierarchical identity based encryption in a way similar to
// forward secure encryption" — realised in package resilient.
//
// Identities are tuples (ID₁, …, ID_t). With P_i = H1(ID₁‖…‖ID_i) and
// per-node delegation secrets s_w, a node's key is
//
//	S_w = Σ_{i=1..t} s_{parent(i)} · P_i
//
// together with the Q-values Q_i = s_{prefix_i}·G of its proper
// prefixes. Delegation secrets are chain-derived, s_child = H(s_parent ‖
// label), so (a) the root can compute ANY node's bundle statelessly —
// preserving the paper's property that the server remembers nothing
// about the future — and (b) publishing a node bundle lets anyone derive
// every descendant bundle but no sibling or ancestor.
//
//	Encrypt(ID₁..ID_t): r ← Z_q^*; C = ⟨rG, rP₂, …, rP_t, M ⊕ H2(K)⟩,
//	                    K = ê(sG, P₁)^r
//	Decrypt:            K = ê(U₀, S_w) / Π_{i=2..t} ê(Q_{i-1}, U_i)
package hibe

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"timedrelease/internal/backend"
	"timedrelease/internal/curve"
	"timedrelease/internal/pairing"
	"timedrelease/internal/params"
	"timedrelease/internal/rohash"
)

// Scheme binds BasicHIDE to a parameter set and a hash domain (distinct
// domains give independent hierarchies).
type Scheme struct {
	Set    *params.Set
	Domain string
}

// NewScheme returns a HIBE instance for the given hash domain.
func NewScheme(set *params.Set, domain string) *Scheme {
	return &Scheme{Set: set, Domain: domain}
}

// RootKey is the root PKG's key pair.
type RootKey struct {
	S   *big.Int
	Pub RootPublicKey
}

// RootPublicKey is (G, sG).
type RootPublicKey struct {
	G  curve.Point
	SG curve.Point
}

// RootKeyGen creates the hierarchy root.
func (sc *Scheme) RootKeyGen(rng io.Reader) (*RootKey, error) {
	if sc.Set.Asymmetric() {
		return nil, backend.ErrSymmetricOnly
	}
	s, err := sc.Set.Curve.RandScalar(rng)
	if err != nil {
		return nil, err
	}
	return &RootKey{
		S: s,
		Pub: RootPublicKey{
			G:  sc.Set.G,
			SG: sc.Set.Curve.ScalarMult(s, sc.Set.G),
		},
	}, nil
}

// NodeKey is the full bundle of one hierarchy node: enough to decrypt
// anything addressed to its identity tuple AND to derive every
// descendant's bundle.
type NodeKey struct {
	Path       []string      // identity tuple (ID₁ … ID_t)
	S          curve.Point   // Σ s_{parent(i)}·P_i
	Delegation *big.Int      // this node's chain secret s_w
	Qs         []curve.Point // Q_i = s_{prefix_i}·G for i = 1..t-1
}

// Depth returns the node's level (root children are depth 1).
func (k NodeKey) Depth() int { return len(k.Path) }

// hashPrefix computes P_i = H1(ID₁‖…‖ID_i) with unambiguous framing.
func (sc *Scheme) hashPrefix(path []string) curve.Point {
	parts := make([][]byte, len(path))
	for i, p := range path {
		parts[i] = []byte(p)
	}
	return sc.Set.Curve.HashToGroup("HIBE:"+sc.Domain, rohash.Concat(parts...))
}

// chainSecret derives s_child = H(s_parent ‖ label) ∈ Z_q^*.
func (sc *Scheme) chainSecret(parent *big.Int, label string) *big.Int {
	qf := (sc.Set.Q.BitLen() + 7) / 8
	buf := parent.FillBytes(make([]byte, qf))
	return rohash.ToScalarNonZero("HIBE-chain:"+sc.Domain, rohash.Concat(buf, []byte(label)), sc.Set.Q)
}

// ChildOfRoot derives the bundle of a depth-1 node. Only the root can
// do this (it needs the master secret).
func (sc *Scheme) ChildOfRoot(root *RootKey, label string) NodeKey {
	path := []string{label}
	return NodeKey{
		Path:       path,
		S:          sc.Set.Curve.ScalarMult(root.S, sc.hashPrefix(path)),
		Delegation: sc.chainSecret(root.S, label),
		Qs:         nil, // no intermediate prefixes yet
	}
}

// Child derives a child bundle from a parent bundle. ANYONE holding the
// parent bundle can do this — that is the point: publishing a subtree
// root releases the whole subtree.
func (sc *Scheme) Child(parent NodeKey, label string) NodeKey {
	path := append(append([]string(nil), parent.Path...), label)
	s := sc.Set.Curve.Add(parent.S, sc.Set.Curve.ScalarMult(parent.Delegation, sc.hashPrefix(path)))
	qs := append(append([]curve.Point(nil), parent.Qs...),
		sc.Set.Curve.ScalarMult(parent.Delegation, sc.Set.G))
	return NodeKey{
		Path:       path,
		S:          s,
		Delegation: sc.chainSecret(parent.Delegation, label),
		Qs:         qs,
	}
}

// NodeFor computes the bundle of an arbitrary node directly from the
// root by walking the path — the stateless-server operation.
func (sc *Scheme) NodeFor(root *RootKey, path []string) (NodeKey, error) {
	if len(path) == 0 {
		return NodeKey{}, errors.New("hibe: empty path")
	}
	k := sc.ChildOfRoot(root, path[0])
	for _, label := range path[1:] {
		k = sc.Child(k, label)
	}
	return k, nil
}

// Ciphertext is a BasicHIDE ciphertext to a depth-t identity tuple.
type Ciphertext struct {
	U0 curve.Point   // rG
	Us []curve.Point // rP_i for i = 2..t
	V  []byte        // M ⊕ H2(K)
}

// Encrypt encrypts msg to the identity tuple path under the root public
// key. Ciphertext size grows with depth (t group elements total).
func (sc *Scheme) Encrypt(rng io.Reader, pub RootPublicKey, path []string, msg []byte) (*Ciphertext, error) {
	if sc.Set.Asymmetric() {
		return nil, backend.ErrSymmetricOnly
	}
	if len(path) == 0 {
		return nil, errors.New("hibe: empty path")
	}
	c := sc.Set.Curve
	r, err := c.RandScalar(rng)
	if err != nil {
		return nil, fmt.Errorf("hibe: sampling randomness: %w", err)
	}
	ct := &Ciphertext{U0: c.ScalarMult(r, pub.G)}
	for i := 2; i <= len(path); i++ {
		ct.Us = append(ct.Us, c.ScalarMult(r, sc.hashPrefix(path[:i])))
	}
	k := sc.Set.Pairing.Pair(c.ScalarMult(r, pub.SG), sc.hashPrefix(path[:1]))
	ct.V = rohash.XOR(msg, sc.mask(k, len(msg)))
	return ct, nil
}

// Decrypt recovers the message with the exact node key of the target
// identity tuple:
//
//	K = ê(U₀, S) · Π ê(Q_{i-1}, U_i)^{-1}
//
// computed as a single pairing product (Q negated) with one shared
// final exponentiation.
func (sc *Scheme) Decrypt(key NodeKey, ct *Ciphertext) ([]byte, error) {
	if sc.Set.Asymmetric() {
		return nil, backend.ErrSymmetricOnly
	}
	if ct == nil || !sc.Set.Curve.IsOnCurve(ct.U0) {
		return nil, errors.New("hibe: malformed ciphertext")
	}
	if len(ct.Us) != len(key.Qs) {
		return nil, fmt.Errorf("hibe: ciphertext depth %d does not match key depth %d", len(ct.Us)+1, key.Depth())
	}
	pairs := []pairing.PointPair{{P: ct.U0, Q: key.S}}
	for i, u := range ct.Us {
		if !sc.Set.Curve.IsOnCurve(u) {
			return nil, errors.New("hibe: malformed ciphertext point")
		}
		pairs = append(pairs, pairing.PointPair{P: sc.Set.Curve.Neg(key.Qs[i]), Q: u})
	}
	k := sc.Set.Pairing.PairProduct(pairs)
	return rohash.XOR(ct.V, sc.mask(k, len(ct.V))), nil
}

func (sc *Scheme) mask(k pairing.GT, n int) []byte {
	return rohash.Expand("HIBE-H2:"+sc.Domain, sc.Set.Pairing.E2.Bytes(k), n)
}

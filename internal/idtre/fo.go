package idtre

import (
	"crypto/rand"
	"fmt"
	"io"

	"timedrelease/internal/backend"
	"timedrelease/internal/core"
	"timedrelease/internal/curve"
	"timedrelease/internal/rohash"
)

// seedLen is the Fujisaki-Okamoto seed length.
const seedLen = 32

// CCACiphertext is the FO-transformed ID-TRE ciphertext (the paper
// applies the same transform to both constructions).
type CCACiphertext struct {
	U curve.Point // rG with r = H3(σ ‖ M)
	W []byte      // σ ⊕ H2(K)
	V []byte      // M ⊕ H4(σ)
}

// EncryptCCA encrypts msg to (identity, label) with chosen-ciphertext
// security via the Fujisaki–Okamoto transform.
func (sc *Scheme) EncryptCCA(rng io.Reader, spub core.ServerPublicKey, id, label string, msg []byte) (*CCACiphertext, error) {
	if sc.Set.Asymmetric() {
		return nil, backend.ErrSymmetricOnly
	}
	if rng == nil {
		rng = rand.Reader
	}
	sigma := make([]byte, seedLen)
	if _, err := io.ReadFull(rng, sigma); err != nil {
		return nil, fmt.Errorf("idtre: sampling FO seed: %w", err)
	}
	r := rohash.ToScalarNonZero("IDTRE-H3", rohash.Concat(sigma, msg), sc.Set.Q)
	u, k := sc.encapsulate(spub, id, label, r)
	return &CCACiphertext{
		U: u,
		W: rohash.XOR(sigma, sc.mask(k, seedLen)),
		V: rohash.XOR(msg, rohash.Expand("IDTRE-H4", sigma, len(msg))),
	}, nil
}

// DecryptCCA decrypts and runs the FO re-encryption check, rejecting
// tampered ciphertexts and wrong updates.
func (sc *Scheme) DecryptCCA(spub core.ServerPublicKey, priv UserPrivateKey, upd core.KeyUpdate, ct *CCACiphertext) ([]byte, error) {
	if sc.Set.Asymmetric() {
		return nil, backend.ErrSymmetricOnly
	}
	if ct == nil || len(ct.W) != seedLen || !sc.Set.Curve.IsOnCurve(ct.U) || ct.U.IsInfinity() {
		return nil, core.ErrInvalidCiphertext
	}
	kd := sc.Set.Curve.Add(priv.D, upd.Point)
	k := sc.Set.Pairing.Pair(ct.U, kd)
	sigma := rohash.XOR(ct.W, sc.mask(k, seedLen))
	msg := rohash.XOR(ct.V, rohash.Expand("IDTRE-H4", sigma, len(ct.V)))
	r := rohash.ToScalarNonZero("IDTRE-H3", rohash.Concat(sigma, msg), sc.Set.Q)
	if !sc.Set.Curve.Equal(ct.U, sc.Set.Curve.ScalarMult(r, spub.G)) {
		return nil, core.ErrAuthFailed
	}
	return msg, nil
}

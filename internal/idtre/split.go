package idtre

import (
	"fmt"
	"io"
	"math/big"

	"timedrelease/internal/backend"
	"timedrelease/internal/core"
	"timedrelease/internal/curve"
	"timedrelease/internal/pairing"
	"timedrelease/internal/rohash"
)

// Split-authority ID-TRE. §5.2 notes that "for the sake of simplicity,
// the time server is the same entity as the trusted server assigning
// private keys to users; in real cases, it could be a different
// entity." This file implements that real case, following the Chen et
// al. multiple-trust-authority pattern the scheme descends from: a PKG
// with secret s₁ extracts identity keys, an independent time server
// with secret s₂ issues the updates, and the two never share state:
//
//	K  = ê(s₁G, H1(ID))^r · ê(s₂G, H1(T))^r
//	K' = ê(U, s₁H1(ID) + s₂H1(T))
//
// Splitting narrows (but cannot eliminate) the escrow inherent to
// identity-based schemes: the time server can never decrypt (it cannot
// extract identity keys), and the PKG cannot decrypt BEFORE the release
// time (it lacks s₂·H1(T) until the public update appears). After
// release the PKG can still escrow-decrypt — that residual trust is what
// the paper's non-identity-based TRE removes entirely.

// SplitCiphertext is the two-authority ciphertext ⟨U, V⟩ (same shape as
// Ciphertext; a distinct type prevents cross-scheme confusion).
type SplitCiphertext struct {
	U curve.Point
	V []byte
}

// SplitEncrypt encrypts msg to an identity under PKG public key pkg and
// release label under time-server public key ts.
func (sc *Scheme) SplitEncrypt(rng io.Reader, pkg, ts core.ServerPublicKey, id, label string, msg []byte) (*SplitCiphertext, error) {
	if sc.Set.Asymmetric() {
		return nil, backend.ErrSymmetricOnly
	}
	r, err := sc.Set.Curve.RandScalar(rng)
	if err != nil {
		return nil, fmt.Errorf("idtre: sampling encryption randomness: %w", err)
	}
	c := sc.Set.Curve
	k := sc.splitKey(r, pkg, ts, id, label)
	return &SplitCiphertext{
		U: c.ScalarMult(r, sc.Set.G),
		V: rohash.XOR(msg, sc.splitMask(k, len(msg))),
	}, nil
}

// splitKey computes ê(r·s₁G, H1(ID)) · ê(r·s₂G, H1(T)) with one shared
// final exponentiation.
func (sc *Scheme) splitKey(r *big.Int, pkg, ts core.ServerPublicKey, id, label string) pairing.GT {
	c := sc.Set.Curve
	return sc.Set.Pairing.PairProduct([]pairing.PointPair{
		{P: c.ScalarMult(r, pkg.SG), Q: c.HashToGroup(IdentityDomain, []byte(id))},
		{P: c.ScalarMult(r, ts.SG), Q: c.HashToGroup(core.TimeDomain, []byte(label))},
	})
}

// SplitDecrypt combines the PKG-extracted identity key with the time
// server's update: K' = ê(U, D_ID + I_T).
//
// Note: the identity key must come from the PKG (s₁·H1(ID)) and the
// update from the time server (s₂·H1(T)); both authorities use the
// canonical generator.
func (sc *Scheme) SplitDecrypt(priv UserPrivateKey, upd core.KeyUpdate, ct *SplitCiphertext) ([]byte, error) {
	if sc.Set.Asymmetric() {
		return nil, backend.ErrSymmetricOnly
	}
	if ct == nil || !sc.Set.Curve.IsOnCurve(ct.U) {
		return nil, core.ErrInvalidCiphertext
	}
	kd := sc.Set.Curve.Add(priv.D, upd.Point)
	k := sc.Set.Pairing.Pair(ct.U, kd)
	return rohash.XOR(ct.V, sc.splitMask(k, len(ct.V))), nil
}

// splitMask is the split scheme's H2 expander (own domain).
func (sc *Scheme) splitMask(k pairing.GT, n int) []byte {
	return rohash.Expand("IDTRE-SPLIT-H2", sc.Set.Pairing.E2.Bytes(k), n)
}

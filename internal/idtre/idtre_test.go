package idtre

import (
	"bytes"
	"errors"
	"testing"

	"timedrelease/internal/core"
	"timedrelease/internal/params"
)

const (
	testID    = "alice@example.org"
	testLabel = "2026-07-05T12:00:00Z"
)

type env struct {
	sc     *Scheme
	tre    *core.Scheme
	server *core.ServerKeyPair
	alice  UserPrivateKey
}

func newEnv(t *testing.T) *env {
	t.Helper()
	set := params.MustPreset("Test160")
	sc := NewScheme(set)
	tre := core.NewScheme(set)
	server, err := tre.ServerKeyGen(nil)
	if err != nil {
		t.Fatalf("ServerKeyGen: %v", err)
	}
	return &env{sc: sc, tre: tre, server: server, alice: sc.ExtractUserKey(server, testID)}
}

func TestRoundTrip(t *testing.T) {
	e := newEnv(t)
	msg := []byte("identity-addressed, time-locked")
	ct, err := e.sc.Encrypt(nil, e.server.Pub, testID, testLabel, msg)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	upd := e.tre.IssueUpdate(e.server, testLabel)
	got, err := e.sc.Decrypt(e.alice, upd, ct)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("round trip mismatch: %q != %q", got, msg)
	}
}

func TestWrongIdentityOrUpdateYieldsGarbage(t *testing.T) {
	e := newEnv(t)
	msg := []byte("for alice after noon")
	ct, err := e.sc.Encrypt(nil, e.server.Pub, testID, testLabel, msg)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	upd := e.tre.IssueUpdate(e.server, testLabel)

	bob := e.sc.ExtractUserKey(e.server, "bob@example.org")
	if got, err := e.sc.Decrypt(bob, upd, ct); err != nil {
		t.Fatalf("Decrypt: %v", err)
	} else if bytes.Equal(got, msg) {
		t.Fatal("bob's key must not decrypt alice's message")
	}

	early := e.tre.IssueUpdate(e.server, "some earlier label")
	if got, err := e.sc.Decrypt(e.alice, early, ct); err != nil {
		t.Fatalf("Decrypt: %v", err)
	} else if bytes.Equal(got, msg) {
		t.Fatal("wrong update must not decrypt the message")
	}
}

func TestVerifyUserKey(t *testing.T) {
	e := newEnv(t)
	if !e.sc.VerifyUserKey(e.server.Pub, e.alice) {
		t.Fatal("honest extracted key must verify")
	}
	bad := e.alice
	bad.ID = "mallory@example.org"
	if e.sc.VerifyUserKey(e.server.Pub, bad) {
		t.Fatal("key must not verify for a different identity")
	}
	bad2 := e.alice
	bad2.D = e.sc.Set.Curve.Add(e.alice.D, e.sc.Set.G)
	if e.sc.VerifyUserKey(e.server.Pub, bad2) {
		t.Fatal("tampered key must not verify")
	}
}

func TestInherentKeyEscrow(t *testing.T) {
	// §5.2: "the server could decrypt all the messages" — the key-escrow
	// weakness that motivates the non-identity-based TRE. Demonstrate the
	// server decrypting without ever contacting the receiver.
	e := newEnv(t)
	msg := []byte("nothing is hidden from the PKG")
	ct, err := e.sc.Encrypt(nil, e.server.Pub, testID, testLabel, msg)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	got, err := e.sc.EscrowDecrypt(e.server, testID, testLabel, ct)
	if err != nil {
		t.Fatalf("EscrowDecrypt: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("the ID-TRE server must be able to escrow-decrypt (paper §5.2)")
	}
}

func TestSharedUpdateWithTRE(t *testing.T) {
	// The very same broadcast update serves both TRE and ID-TRE — one
	// server, one update stream, two schemes.
	e := newEnv(t)
	user, err := e.tre.UserKeyGen(e.server.Pub, nil)
	if err != nil {
		t.Fatalf("UserKeyGen: %v", err)
	}
	upd := e.tre.IssueUpdate(e.server, testLabel)

	msg1 := []byte("to a certified public key")
	ct1, err := e.tre.Encrypt(nil, e.server.Pub, user.Pub, testLabel, msg1)
	if err != nil {
		t.Fatalf("tre.Encrypt: %v", err)
	}
	got1, err := e.tre.Decrypt(user, upd, ct1)
	if err != nil {
		t.Fatalf("tre.Decrypt: %v", err)
	}

	msg2 := []byte("to an identity")
	ct2, err := e.sc.Encrypt(nil, e.server.Pub, testID, testLabel, msg2)
	if err != nil {
		t.Fatalf("idtre.Encrypt: %v", err)
	}
	got2, err := e.sc.Decrypt(e.alice, upd, ct2)
	if err != nil {
		t.Fatalf("idtre.Decrypt: %v", err)
	}

	if !bytes.Equal(got1, msg1) || !bytes.Equal(got2, msg2) {
		t.Fatal("one update must serve both schemes")
	}
}

func TestFORoundTripAndTampering(t *testing.T) {
	e := newEnv(t)
	msg := []byte("CCA-secure ID-TRE")
	ct, err := e.sc.EncryptCCA(nil, e.server.Pub, testID, testLabel, msg)
	if err != nil {
		t.Fatalf("EncryptCCA: %v", err)
	}
	upd := e.tre.IssueUpdate(e.server, testLabel)
	got, err := e.sc.DecryptCCA(e.server.Pub, e.alice, upd, ct)
	if err != nil {
		t.Fatalf("DecryptCCA: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("FO round trip mismatch")
	}

	ct.V[0] ^= 1
	if _, err := e.sc.DecryptCCA(e.server.Pub, e.alice, upd, ct); !errors.Is(err, core.ErrAuthFailed) {
		t.Fatalf("tampered FO ciphertext: err=%v, want ErrAuthFailed", err)
	}

	ct2, err := e.sc.EncryptCCA(nil, e.server.Pub, testID, testLabel, msg)
	if err != nil {
		t.Fatalf("EncryptCCA: %v", err)
	}
	wrong := e.tre.IssueUpdate(e.server, "wrong label")
	if _, err := e.sc.DecryptCCA(e.server.Pub, e.alice, wrong, ct2); !errors.Is(err, core.ErrAuthFailed) {
		t.Fatalf("wrong update: err=%v, want ErrAuthFailed", err)
	}
}

func TestSplitAuthorityRoundTrip(t *testing.T) {
	e := newEnv(t)
	// Independent PKG and time server.
	pkg, err := e.tre.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	timeSrv, err := e.tre.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}

	msg := []byte("two authorities, one ciphertext")
	ct, err := e.sc.SplitEncrypt(nil, pkg.Pub, timeSrv.Pub, testID, testLabel, msg)
	if err != nil {
		t.Fatal(err)
	}
	priv := e.sc.ExtractUserKey(pkg, testID)
	upd := e.tre.IssueUpdate(timeSrv, testLabel)
	got, err := e.sc.SplitDecrypt(priv, upd, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("split round trip mismatch")
	}
}

func TestSplitAuthorityNeedsBothHalves(t *testing.T) {
	e := newEnv(t)
	pkg, err := e.tre.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	timeSrv, err := e.tre.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("needs pkg key AND time update")
	ct, err := e.sc.SplitEncrypt(nil, pkg.Pub, timeSrv.Pub, testID, testLabel, msg)
	if err != nil {
		t.Fatal(err)
	}

	// Identity key from the WRONG PKG (e.g. the time server trying to
	// play PKG) must fail.
	alienPriv := e.sc.ExtractUserKey(timeSrv, testID)
	upd := e.tre.IssueUpdate(timeSrv, testLabel)
	if got, _ := e.sc.SplitDecrypt(alienPriv, upd, ct); bytes.Equal(got, msg) {
		t.Fatal("time server must not be able to extract usable identity keys")
	}

	// Right identity key, update from the WRONG time server (the PKG
	// trying to mint updates) must fail.
	priv := e.sc.ExtractUserKey(pkg, testID)
	alienUpd := e.tre.IssueUpdate(pkg, testLabel)
	if got, _ := e.sc.SplitDecrypt(priv, alienUpd, ct); bytes.Equal(got, msg) {
		t.Fatal("PKG must not be able to mint the time half before release")
	}

	// Wrong label also fails.
	early := e.tre.IssueUpdate(timeSrv, "too early")
	if got, _ := e.sc.SplitDecrypt(priv, early, ct); bytes.Equal(got, msg) {
		t.Fatal("wrong-label update must not decrypt")
	}
}

// Package idtre implements ID-TRE, the identity-based timed release
// encryption scheme of paper §5.2 (the Chen et al. multiple-trust-
// authority construction): a receiver's public key is simply their
// identity string, their private key is s·H1(ID) extracted by the
// server, and decryption combines that private key with the time-bound
// key update:
//
//	K_E = H1(ID) + H1(T)
//	C   = ⟨rG, M ⊕ H2(ê(sG, K_E)^r)⟩
//	K_D = s·H1(ID) + s·H1(T) = s·K_E,   K' = ê(U, K_D)
//
// Compared with TRE (package core), ID-TRE removes the need for a CA but
// inherits the key-escrow weakness of all identity-based schemes: the
// server can decrypt everything (demonstrated by EscrowDecrypt and
// measured in experiment E1). Time-bound key updates are shared with
// TRE — the same server broadcast serves both schemes.
package idtre

import (
	"fmt"
	"io"
	"math/big"

	"timedrelease/internal/backend"
	"timedrelease/internal/core"
	"timedrelease/internal/curve"
	"timedrelease/internal/pairing"
	"timedrelease/internal/params"
	"timedrelease/internal/rohash"
)

// IdentityDomain is the H1 domain tag for identities; distinct from the
// time-label domain so the two oracles are independent.
const IdentityDomain = "identity"

// Scheme binds the ID-TRE algorithms to a parameter set.
type Scheme struct {
	Set *params.Set
}

// NewScheme returns an ID-TRE instance over the given parameters.
func NewScheme(set *params.Set) *Scheme { return &Scheme{Set: set} }

// UserPrivateKey is the extracted identity key s·H1(ID).
type UserPrivateKey struct {
	ID string
	D  curve.Point
}

// ExtractUserKey is the server-side private-key extraction. In the
// paper's exposition the time server doubles as the key-issuing
// authority; deployments may split the roles across two key pairs.
func (sc *Scheme) ExtractUserKey(server *core.ServerKeyPair, id string) UserPrivateKey {
	h := sc.Set.Curve.HashToGroup(IdentityDomain, []byte(id))
	return UserPrivateKey{ID: id, D: sc.Set.Curve.ScalarMult(server.S, h)}
}

// VerifyUserKey lets a user check an extracted key against the server's
// public key: ê(G, D) = ê(sG, H1(ID)).
func (sc *Scheme) VerifyUserKey(spub core.ServerPublicKey, priv UserPrivateKey) bool {
	if priv.D.IsInfinity() || !sc.Set.Curve.InSubgroup(priv.D) {
		return false
	}
	h := sc.Set.Curve.HashToGroup(IdentityDomain, []byte(priv.ID))
	return sc.Set.Pairing.SamePairing(spub.G, priv.D, spub.SG, h)
}

// Ciphertext is the ID-TRE ciphertext ⟨U, V⟩.
type Ciphertext struct {
	U curve.Point
	V []byte
}

// Encrypt encrypts msg to (identity, release label) under the server's
// public key. No receiver certificate and no interaction is needed.
func (sc *Scheme) Encrypt(rng io.Reader, spub core.ServerPublicKey, id, label string, msg []byte) (*Ciphertext, error) {
	if sc.Set.Asymmetric() {
		return nil, backend.ErrSymmetricOnly
	}
	r, err := sc.Set.Curve.RandScalar(rng)
	if err != nil {
		return nil, fmt.Errorf("idtre: sampling encryption randomness: %w", err)
	}
	u, k := sc.encapsulate(spub, id, label, r)
	return &Ciphertext{U: u, V: rohash.XOR(msg, sc.mask(k, len(msg)))}, nil
}

// Decrypt combines the extracted identity key with the key update into
// K_D = s·(H1(ID)+H1(T)) and unmasks the message.
func (sc *Scheme) Decrypt(priv UserPrivateKey, upd core.KeyUpdate, ct *Ciphertext) ([]byte, error) {
	if sc.Set.Asymmetric() {
		return nil, backend.ErrSymmetricOnly
	}
	if ct == nil || !sc.Set.Curve.IsOnCurve(ct.U) {
		return nil, core.ErrInvalidCiphertext
	}
	kd := sc.Set.Curve.Add(priv.D, upd.Point)
	k := sc.Set.Pairing.Pair(ct.U, kd)
	return rohash.XOR(ct.V, sc.mask(k, len(ct.V))), nil
}

// EscrowDecrypt demonstrates the inherent key escrow of identity-based
// schemes (§5.2, §3 footnote 6): the server reconstructs K_D for any
// (identity, label) pair from its own private key and decrypts without
// the receiver's involvement. TRE (package core) is immune to this —
// that contrast is the paper's motivation for the non-identity-based
// construction.
func (sc *Scheme) EscrowDecrypt(server *core.ServerKeyPair, id, label string, ct *Ciphertext) ([]byte, error) {
	if sc.Set.Asymmetric() {
		return nil, backend.ErrSymmetricOnly
	}
	priv := sc.ExtractUserKey(server, id)
	sch := core.NewScheme(sc.Set)
	return sc.Decrypt(priv, sch.IssueUpdate(server, label), ct)
}

// encapsulate computes (rG, ê(r·sG, H1(ID)+H1(T))); the pairing is
// taken on the pre-multiplied point r·sG so no G2 exponentiation is
// needed.
func (sc *Scheme) encapsulate(spub core.ServerPublicKey, id, label string, r *big.Int) (curve.Point, pairing.GT) {
	c := sc.Set.Curve
	ke := c.Add(
		c.HashToGroup(IdentityDomain, []byte(id)),
		c.HashToGroup(core.TimeDomain, []byte(label)),
	)
	u := c.ScalarMult(r, spub.G)
	k := sc.Set.Pairing.Pair(c.ScalarMult(r, spub.SG), ke)
	return u, k
}

// mask is the scheme's H2 expander over the pairing value.
func (sc *Scheme) mask(k pairing.GT, n int) []byte {
	return rohash.Expand("IDTRE-H2", sc.Set.Pairing.E2.Bytes(k), n)
}

package pairing

import (
	"math/big"
	"testing"
	"testing/quick"

	"timedrelease/internal/curve"
	"timedrelease/internal/ff"
)

// The same 96/48-bit test parameters as package curve (p = h·q − 1).
var (
	testP = mustInt("8f98a3660038a5b78edf9f53")
	testQ = mustInt("922af50d1a7f")
)

func mustInt(s string) *big.Int {
	n, ok := new(big.Int).SetString(s, 16)
	if !ok {
		panic("bad literal: " + s)
	}
	return n
}

func testPairing(t *testing.T) *Pairing {
	t.Helper()
	f, err := ff.NewField(testP)
	if err != nil {
		t.Fatal(err)
	}
	pp1 := new(big.Int).Add(testP, big.NewInt(1))
	h := new(big.Int).Quo(pp1, testQ)
	c, err := curve.New(f, testQ, h)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func gen(t *testing.T, pr *Pairing, seed byte) curve.Point {
	t.Helper()
	return pr.C.HashToGroup("pairing-test", []byte{seed})
}

func TestBilinearity(t *testing.T) {
	pr := testPairing(t)
	p := gen(t, pr, 1)
	q := gen(t, pr, 2)
	base := pr.Pair(p, q)

	cfg := &quick.Config{MaxCount: 25}
	bilinear := func(ka, kb uint16) bool {
		a := big.NewInt(int64(ka)%1000 + 1)
		b := big.NewInt(int64(kb)%1000 + 1)
		lhs := pr.Pair(pr.C.ScalarMult(a, p), pr.C.ScalarMult(b, q))
		ab := new(big.Int).Mul(a, b)
		rhs := pr.E2.Exp(base, ab)
		return pr.E2.Equal(lhs, rhs)
	}
	if err := quick.Check(bilinear, cfg); err != nil {
		t.Error(err)
	}
}

func TestLinearityInEachSlot(t *testing.T) {
	pr := testPairing(t)
	p1, p2, q := gen(t, pr, 3), gen(t, pr, 4), gen(t, pr, 5)
	// ê(P1+P2, Q) = ê(P1,Q)·ê(P2,Q)
	lhs := pr.Pair(pr.C.Add(p1, p2), q)
	rhs := pr.E2.Mul(pr.Pair(p1, q), pr.Pair(p2, q))
	if !pr.E2.Equal(lhs, rhs) {
		t.Fatal("pairing not linear in first slot")
	}
	// ê(Q, P1+P2) = ê(Q,P1)·ê(Q,P2)
	lhs = pr.Pair(q, pr.C.Add(p1, p2))
	rhs = pr.E2.Mul(pr.Pair(q, p1), pr.Pair(q, p2))
	if !pr.E2.Equal(lhs, rhs) {
		t.Fatal("pairing not linear in second slot")
	}
}

func TestSymmetry(t *testing.T) {
	// The distortion-map pairing is symmetric — the Type-1 property the
	// paper's constructions (and their security proofs) rely on.
	pr := testPairing(t)
	for i := byte(0); i < 5; i++ {
		p, q := gen(t, pr, 10+i), gen(t, pr, 20+i)
		if !pr.E2.Equal(pr.Pair(p, q), pr.Pair(q, p)) {
			t.Fatal("pairing is not symmetric")
		}
	}
}

func TestNonDegeneracy(t *testing.T) {
	pr := testPairing(t)
	p := gen(t, pr, 6)
	if pr.E2.IsOne(pr.Pair(p, p)) {
		t.Fatal("ê(P, P) = 1: distortion map failed")
	}
	q := gen(t, pr, 7)
	if pr.E2.IsOne(pr.Pair(p, q)) {
		t.Fatal("ê(P, Q) = 1 for independent non-identity points")
	}
}

func TestIdentityGivesOne(t *testing.T) {
	pr := testPairing(t)
	p := gen(t, pr, 8)
	if !pr.E2.IsOne(pr.Pair(curve.Infinity(), p)) || !pr.E2.IsOne(pr.Pair(p, curve.Infinity())) {
		t.Fatal("pairing with the identity must be 1")
	}
}

func TestOutputHasOrderQ(t *testing.T) {
	pr := testPairing(t)
	g := pr.Pair(gen(t, pr, 9), gen(t, pr, 10))
	if !pr.E2.IsOne(pr.E2.Exp(g, pr.C.Q)) {
		t.Fatal("pairing output not killed by q")
	}
	if pr.E2.IsOne(g) {
		t.Fatal("pairing output is trivially 1")
	}
	// The output must not be killed by small factors: g^k ≠ 1 for k < q
	// would contradict prime order (spot-check a few k).
	for _, k := range []int64{2, 3, 65537} {
		if pr.E2.IsOne(pr.E2.Exp(g, big.NewInt(k))) {
			t.Fatalf("pairing output killed by %d — not of prime order q", k)
		}
	}
}

func TestPairProductMatchesIndividual(t *testing.T) {
	pr := testPairing(t)
	pairs := []PointPair{
		{P: gen(t, pr, 11), Q: gen(t, pr, 12)},
		{P: gen(t, pr, 13), Q: gen(t, pr, 14)},
		{P: gen(t, pr, 15), Q: gen(t, pr, 16)},
	}
	product := pr.PairProduct(pairs)
	expect := pr.E2.One()
	for _, pq := range pairs {
		expect = pr.E2.Mul(expect, pr.Pair(pq.P, pq.Q))
	}
	if !pr.E2.Equal(product, expect) {
		t.Fatal("PairProduct != product of pairings")
	}
}

func TestPairProductSkipsInfinity(t *testing.T) {
	pr := testPairing(t)
	p, q := gen(t, pr, 17), gen(t, pr, 18)
	withInf := pr.PairProduct([]PointPair{
		{P: p, Q: q},
		{P: curve.Infinity(), Q: q},
	})
	if !pr.E2.Equal(withInf, pr.Pair(p, q)) {
		t.Fatal("infinity factor must contribute 1")
	}
}

func TestSamePairing(t *testing.T) {
	pr := testPairing(t)
	p, q := gen(t, pr, 19), gen(t, pr, 20)
	s := big.NewInt(424242)
	// ê(sP, Q) == ê(P, sQ)
	if !pr.SamePairing(pr.C.ScalarMult(s, p), q, p, pr.C.ScalarMult(s, q)) {
		t.Fatal("SamePairing false negative")
	}
	if pr.SamePairing(p, q, p, pr.C.Add(q, p)) {
		t.Fatal("SamePairing false positive")
	}
}

func TestPairAgreesWithNaiveExponentPath(t *testing.T) {
	// ê(aP, Q) computed directly must equal ê(P, Q)^a computed in G2 —
	// cross-validates the Miller loop against extension-field
	// exponentiation.
	pr := testPairing(t)
	p, q := gen(t, pr, 21), gen(t, pr, 22)
	a := big.NewInt(987654321)
	direct := pr.Pair(pr.C.ScalarMult(a, p), q)
	viaExp := pr.E2.Exp(pr.Pair(p, q), a)
	if !pr.E2.Equal(direct, viaExp) {
		t.Fatal("Miller-loop path disagrees with G2 exponent path")
	}
}

func TestMillerPlusFinalExpEqualsPair(t *testing.T) {
	pr := testPairing(t)
	p, q := gen(t, pr, 23), gen(t, pr, 24)
	if !pr.E2.Equal(pr.FinalExp(pr.Miller(p, q)), pr.Pair(p, q)) {
		t.Fatal("Miller + FinalExp must compose to Pair")
	}
}

func TestNewRejectsNilCurve(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("New(nil) must fail")
	}
}

func TestDecisionalDiffieHellmanIsEasy(t *testing.T) {
	// The defining property of a Gap DH group (paper §4): DDH is solvable
	// with the pairing by checking ê(aP, bP) == ê(P, cP).
	pr := testPairing(t)
	p := gen(t, pr, 25)
	a, b := big.NewInt(1234), big.NewInt(5678)
	ab := new(big.Int).Mul(a, b)
	aP, bP := pr.C.ScalarMult(a, p), pr.C.ScalarMult(b, p)
	good := pr.C.ScalarMult(ab, p)
	if !pr.SamePairing(aP, bP, p, good) {
		t.Fatal("DDH test rejects a valid tuple")
	}
	bad := pr.C.ScalarMult(new(big.Int).Add(ab, big.NewInt(1)), p)
	if pr.SamePairing(aP, bP, p, bad) {
		t.Fatal("DDH test accepts an invalid tuple")
	}
}

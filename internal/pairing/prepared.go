package pairing

import (
	"math/big"

	"timedrelease/internal/curve"
	"timedrelease/internal/ff"
)

// lineCoeff is one precomputed Miller line in normalised affine form:
// evaluated at ψ(Q) the line's value is
//
//	g = λ·x_Q + μ + y_Q·i.
//
// vertical marks steps that contribute the factor 1 under denominator
// elimination (the coefficients are then nil). lambdaM and muM are the
// same coefficients in Montgomery form, filled when the field has a
// limb backend so MillerPrepared evaluation runs without conversions.
type lineCoeff struct {
	lambda, mu   *big.Int
	lambdaM, muM ff.MontElem
	vertical     bool
}

// preparedStep is one iteration of the fixed Miller schedule: the
// doubling line, plus the addition line on iterations whose schedule
// bit is set.
type preparedStep struct {
	dbl    lineCoeff
	hasAdd bool
	add    lineCoeff
}

// PreparedPoint stores the full schedule of Miller line coefficients
// for a fixed first pairing argument P. The walk of V = kP, the slopes,
// and the vertical-step pattern depend only on P and the group order,
// so they are computed once here; PairPrepared then evaluates each
// stored line at a fresh Q with a single field multiplication — no
// point arithmetic and no inversions at all.
//
// A PreparedPoint is immutable after construction and safe for
// concurrent use by multiple goroutines. Typical fixed arguments in
// this repository: the server generator G and public key sG (update
// verification, BLS verification, user-key well-formedness checks).
type PreparedPoint struct {
	infinity bool
	steps    []preparedStep
}

// Precompute walks the Miller loop for the fixed first argument p and
// stores every line's normalised (λ, μ) coefficients. The walk itself
// runs in Jacobian coordinates; the projective denominators of all
// steps are then inverted with ONE modular inversion (ff.InvBatch), so
// preparation costs about one inversion plus one inversion-free Miller
// loop.
func (pr *Pairing) Precompute(p curve.Point) *PreparedPoint {
	if p.IsInfinity() {
		return &PreparedPoint{infinity: true}
	}
	fp := pr.C.F
	st := newMillerState(fp, p)
	steps := make([]preparedStep, len(pr.schedule))

	// Record each step's projective line (A, B, C): λ = A/C, μ = B/C.
	var as, bs, cs []*big.Int
	record := func(ok bool) lineCoeff {
		if !ok {
			return lineCoeff{vertical: true}
		}
		return lineCoeff{} // coefficients filled in after batch inversion
	}
	a, b, c := new(big.Int), new(big.Int), new(big.Int)
	push := func() {
		as = append(as, new(big.Int).Set(a))
		bs = append(bs, new(big.Int).Set(b))
		cs = append(cs, new(big.Int).Set(c))
	}
	for k, addBit := range pr.schedule {
		ok := st.dbl(a, b, c)
		steps[k].dbl = record(ok)
		if ok {
			push()
		}
		if addBit {
			steps[k].hasAdd = true
			ok = st.add(p, a, b, c)
			steps[k].add = record(ok)
			if ok {
				push()
			}
		}
	}

	// One inversion for every denominator in the schedule.
	inv := fp.InvBatch(cs)
	m := fp.Mont()
	i := 0
	normalise := func(lc *lineCoeff) {
		if lc.vertical {
			return
		}
		lc.lambda = fp.Mul(as[i], inv[i])
		lc.mu = fp.Mul(bs[i], inv[i])
		if m != nil {
			lc.lambdaM = m.NewElem()
			m.ToMont(lc.lambdaM, lc.lambda)
			lc.muM = m.NewElem()
			m.ToMont(lc.muM, lc.mu)
		}
		i++
	}
	for k := range steps {
		normalise(&steps[k].dbl)
		if steps[k].hasAdd {
			normalise(&steps[k].add)
		}
	}
	return &PreparedPoint{steps: steps}
}

// IsInfinity reports whether the prepared point is the group identity.
func (pp *PreparedPoint) IsInfinity() bool { return pp.infinity }

// MillerPrepared evaluates the Miller function f_{q,P} at ψ(Q) from the
// stored line schedule of P: per line one field multiplication and one
// addition, with no point arithmetic. Q must be a non-identity subgroup
// point and pp must not be the prepared identity. The value equals
// MillerAffine(P, Q) exactly (same normalised lines), so it can be
// multiplied freely with other Miller values before a shared FinalExp.
func (pr *Pairing) MillerPrepared(pp *PreparedPoint, q curve.Point) GT {
	fp := pr.C.F
	e2 := pr.E2
	f := GT{A: big.NewInt(1), B: new(big.Int)}
	// The imaginary part of every line value is the constant y_Q.
	g := GT{A: new(big.Int), B: q.Y}
	s := ff.NewScratch()
	eval := func(lc *lineCoeff) {
		fp.MulInto(g.A, lc.lambda, q.X)
		fp.AddInto(g.A, g.A, lc.mu)
		e2.MulInto(&f, f, g, s)
	}
	for k := range pp.steps {
		st := &pp.steps[k]
		e2.SqrInto(&f, f, s)
		if !st.dbl.vertical {
			eval(&st.dbl)
		}
		if st.hasAdd && !st.add.vertical {
			eval(&st.add)
		}
	}
	return f
}

// PairPrepared computes ê(P, Q) from the precomputed schedule of P, on
// the Montgomery backend when available. It returns bit-for-bit the
// same value as Pair(P, Q).
func (pr *Pairing) PairPrepared(pp *PreparedPoint, q curve.Point) GT {
	if pp.infinity || q.IsInfinity() {
		return pr.E2.One()
	}
	if mc := pr.mont; mc != nil {
		a := mc.m.GetArena()
		defer a.Release()
		return mc.e2m.FromMont(pr.finalExpMontIn(pr.millerPreparedMontIn(pp, q, a), a))
	}
	return pr.finalExpBig(pr.MillerPrepared(pp, q))
}

// PairPreparedBig is PairPrepared pinned to the big.Int reference
// backend, for differential tests and the backend ablation.
func (pr *Pairing) PairPreparedBig(pp *PreparedPoint, q curve.Point) GT {
	if pp.infinity || q.IsInfinity() {
		return pr.E2.One()
	}
	return pr.finalExpBig(pr.MillerPrepared(pp, q))
}

// SamePairingPrepared reports whether ê(P1, q1) == ê(P2, q2) for two
// prepared first arguments, with two table-driven Miller loops and one
// shared final exponentiation. The equality is evaluated as
// ê(P1, −q1)·ê(P2, q2) == 1: negating the *second* argument is free and
// inverts the pairing by bilinearity, so no negated PreparedPoint is
// needed.
func (pr *Pairing) SamePairingPrepared(p1 *PreparedPoint, q1 curve.Point, p2 *PreparedPoint, q2 curve.Point) bool {
	e2 := pr.E2
	lhsTrivial := p1.infinity || q1.IsInfinity()
	rhsTrivial := p2.infinity || q2.IsInfinity()
	switch {
	case lhsTrivial && rhsTrivial:
		return true
	case lhsTrivial:
		return e2.IsOne(pr.PairPrepared(p2, q2))
	case rhsTrivial:
		return e2.IsOne(pr.PairPrepared(p1, q1))
	}
	if mc := pr.mont; mc != nil {
		a := mc.m.GetArena()
		defer a.Release()
		m := pr.millerPreparedMontIn(p1, pr.C.Neg(q1), a)
		m2 := pr.millerPreparedMontIn(p2, q2, a)
		mc.e2m.MulInto(&m, m, m2, mc.e2m.ScratchIn(a))
		return mc.e2m.IsOne(pr.finalExpMontIn(m, a))
	}
	return pr.samePairingPreparedBig(p1, q1, p2, q2)
}

// SamePairingPreparedBig is the equality check pinned to the big.Int
// reference backend, for differential tests and the backend ablation.
func (pr *Pairing) SamePairingPreparedBig(p1 *PreparedPoint, q1 curve.Point, p2 *PreparedPoint, q2 curve.Point) bool {
	e2 := pr.E2
	lhsTrivial := p1.infinity || q1.IsInfinity()
	rhsTrivial := p2.infinity || q2.IsInfinity()
	switch {
	case lhsTrivial && rhsTrivial:
		return true
	case lhsTrivial:
		return e2.IsOne(pr.PairPreparedBig(p2, q2))
	case rhsTrivial:
		return e2.IsOne(pr.PairPreparedBig(p1, q1))
	}
	return pr.samePairingPreparedBig(p1, q1, p2, q2)
}

func (pr *Pairing) samePairingPreparedBig(p1 *PreparedPoint, q1 curve.Point, p2 *PreparedPoint, q2 curve.Point) bool {
	e2 := pr.E2
	m := e2.Mul(
		pr.MillerPrepared(p1, pr.C.Neg(q1)),
		pr.MillerPrepared(p2, q2),
	)
	return e2.IsOne(pr.finalExpBig(m))
}

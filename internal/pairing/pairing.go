// Package pairing implements the modified Tate pairing
//
//	ê : G1 × G1 → G2 ⊂ F_{p²}*,  ê(P, Q) = f_{q,P}(ψ(Q))^((p²−1)/q)
//
// on the supersingular curve of package curve, where
// ψ(x, y) = (−x, i·y) is the distortion map into E(F_{p²}). ψ makes the
// pairing symmetric and non-degenerate on the single subgroup G1 — the
// Type-1 setting the paper's constructions require (ê(P, P) ≠ 1).
//
// Miller's algorithm is run with denominator elimination: every vertical
// line evaluated at ψ(Q) = (−x_Q, i·y_Q) has value −x_Q − x ∈ F_p, and
// the final exponentiation (p²−1)/q = (p−1)·h kills all of F_p*, so
// vertical-line factors can be skipped entirely.
package pairing

import (
	"errors"
	"math/big"

	"timedrelease/internal/curve"
	"timedrelease/internal/ff"
)

// GT is the target group: the order-q subgroup of F_{p²}*.
type GT = ff.Fp2Elem

// Pairing binds a curve context to its extension field and caches the
// final exponentiation exponent.
type Pairing struct {
	C  *curve.Curve
	E2 *ff.Fp2

	finalExp *big.Int // (p²−1)/q = (p−1)·h
}

// New returns a pairing context for c.
func New(c *curve.Curve) (*Pairing, error) {
	if c == nil {
		return nil, errors.New("pairing: nil curve")
	}
	e2, err := ff.NewFp2(c.F)
	if err != nil {
		return nil, err
	}
	pm1 := new(big.Int).Sub(c.F.P(), big.NewInt(1))
	return &Pairing{
		C:        c,
		E2:       e2,
		finalExp: new(big.Int).Mul(pm1, c.H),
	}, nil
}

// Pair computes ê(P, Q). Both points must lie in the order-q subgroup;
// if either is the identity the result is 1.
func (pr *Pairing) Pair(p, q curve.Point) GT {
	if p.IsInfinity() || q.IsInfinity() {
		return pr.E2.One()
	}
	return pr.FinalExp(pr.Miller(p, q))
}

// PairAfterMiller exposes the two phases separately so callers can
// multiply several Miller values and share one final exponentiation
// (see PairProduct); it exists for the E5 ablation.
func (pr *Pairing) PairAfterMiller(f GT) GT { return pr.FinalExp(f) }

// FinalExp raises an unreduced Miller value to (p²−1)/q, mapping it into
// the order-q target group. The (p−1) factor is applied via the
// Frobenius identity z^(p−1) = conj(z)·z⁻¹, leaving an exponentiation by
// the (much smaller) cofactor h.
func (pr *Pairing) FinalExp(f GT) GT {
	e2 := pr.E2
	if e2.IsZero(f) {
		// Cannot happen for valid subgroup inputs (see Miller); treat as
		// degenerate.
		return e2.One()
	}
	t := e2.Mul(e2.Conj(f), e2.Inv(f)) // f^(p−1)
	return e2.Exp(t, pr.C.H)           // then ^h, total (p−1)h = (p²−1)/q
}

// Miller evaluates the Miller function f_{q,P} at ψ(Q), without the
// final exponentiation. P and Q must be non-identity subgroup points.
func (pr *Pairing) Miller(p, q curve.Point) GT {
	e2 := pr.E2
	f := e2.One()
	v := p.Clone()
	ord := pr.C.Q
	for i := ord.BitLen() - 2; i >= 0; i-- {
		f = e2.Sqr(f)
		var g GT
		v, g = pr.lineDouble(v, q)
		f = e2.Mul(f, g)
		if ord.Bit(i) == 1 {
			v, g = pr.lineAdd(v, p, q)
			f = e2.Mul(f, g)
		}
	}
	return f
}

// lineEval evaluates the (non-vertical) line of slope λ through the
// affine point a, at the distorted point ψ(Q) = (−x_Q, i·y_Q):
//
//	g = i·y_Q − λ·(−x_Q) − (y_a − λ·x_a)
//	  = (λ·(x_Q + x_a) − y_a) + y_Q·i  ∈ F_{p²}.
//
// Since q is odd and Q has order q, y_Q ≠ 0, so g ≠ 0 always — the
// Miller value never collapses to zero.
func (pr *Pairing) lineEval(a, q curve.Point, lambda *big.Int) GT {
	fp := pr.C.F
	re := fp.Sub(fp.Mul(lambda, fp.Add(q.X, a.X)), a.Y)
	return ff.Fp2Elem{A: re, B: new(big.Int).Set(q.Y)}
}

// lineDouble returns (2v, g) where g is the tangent-line factor at v
// evaluated at ψ(q). Vertical tangents (y=0) and the identity contribute
// the factor 1 under denominator elimination.
func (pr *Pairing) lineDouble(v, q curve.Point) (curve.Point, GT) {
	if v.IsInfinity() {
		return v, pr.E2.One()
	}
	if v.Y.Sign() == 0 {
		return curve.Infinity(), pr.E2.One()
	}
	fp := pr.C.F
	num := fp.Add(fp.Mul(big.NewInt(3), fp.Sqr(v.X)), big.NewInt(1))
	lambda := fp.Mul(num, fp.Inv(fp.Double(v.Y)))
	g := pr.lineEval(v, q, lambda)
	return pr.C.Double(v), g
}

// lineAdd returns (v+p, g) where g is the chord-line factor through v
// and p evaluated at ψ(q). The vertical chord v + (−v) contributes 1.
func (pr *Pairing) lineAdd(v, p, q curve.Point) (curve.Point, GT) {
	if v.IsInfinity() {
		return p, pr.E2.One()
	}
	if p.IsInfinity() {
		return v, pr.E2.One()
	}
	if v.X.Cmp(p.X) == 0 {
		if v.Y.Cmp(p.Y) == 0 {
			// Chord degenerates to the tangent; only reachable if the loop
			// ever adds a point to itself, which the Miller schedule avoids.
			return pr.lineDouble(v, q)
		}
		return curve.Infinity(), pr.E2.One()
	}
	fp := pr.C.F
	lambda := fp.Mul(fp.Sub(p.Y, v.Y), fp.Inv(fp.Sub(p.X, v.X)))
	g := pr.lineEval(v, q, lambda)
	return pr.C.Add(v, p), g
}

// PointPair is one (P, Q) factor of a pairing product.
type PointPair struct {
	P, Q curve.Point
}

// PairProduct computes Π ê(Pᵢ, Qᵢ) with a single shared final
// exponentiation — the optimisation used by multi-server decryption
// (paper §5.3.5) and pairing-equation checks.
func (pr *Pairing) PairProduct(pairs []PointPair) GT {
	acc := pr.E2.One()
	for _, pq := range pairs {
		if pq.P.IsInfinity() || pq.Q.IsInfinity() {
			continue
		}
		acc = pr.E2.Mul(acc, pr.Miller(pq.P, pq.Q))
	}
	return pr.FinalExp(acc)
}

// SamePairing reports whether ê(a1, b1) == ê(a2, b2), evaluated as a
// single product ê(−a1, b1)·ê(a2, b2) == 1 so only one final
// exponentiation is needed. This is the workhorse behind key-update
// verification and public-key well-formedness checks.
func (pr *Pairing) SamePairing(a1, b1, a2, b2 curve.Point) bool {
	gt := pr.PairProduct([]PointPair{
		{P: pr.C.Neg(a1), Q: b1},
		{P: a2, Q: b2},
	})
	return pr.E2.IsOne(gt)
}

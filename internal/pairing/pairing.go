// Package pairing implements the modified Tate pairing
//
//	ê : G1 × G1 → G2 ⊂ F_{p²}*,  ê(P, Q) = f_{q,P}(ψ(Q))^((p²−1)/q)
//
// on the supersingular curve of package curve, where
// ψ(x, y) = (−x, i·y) is the distortion map into E(F_{p²}). ψ makes the
// pairing symmetric and non-degenerate on the single subgroup G1 — the
// Type-1 setting the paper's constructions require (ê(P, P) ≠ 1).
//
// Miller's algorithm is run with denominator elimination: every vertical
// line evaluated at ψ(Q) = (−x_Q, i·y_Q) has value −x_Q − x ∈ F_p, and
// the final exponentiation (p²−1)/q = (p−1)·h kills all of F_p*, so
// vertical-line factors can be skipped entirely. The same argument
// licenses the projective Miller loop (miller.go): line values may be
// scaled by any non-zero F_p factor, so the loop runs in Jacobian
// coordinates with zero per-iteration inversions. The affine loop is
// kept as MillerAffine, the reference implementation for differential
// testing (à la curve.ScalarMultAffine and experiment E4).
//
// For pairings whose first argument is fixed across many evaluations
// (update verification, BLS verification, user-key well-formedness
// checks) Precompute stores the full schedule of line coefficients once;
// PairPrepared then costs one field multiplication per line. See
// prepared.go and docs/PAIRING.md.
package pairing

import (
	"errors"
	"math/big"

	"timedrelease/internal/curve"
	"timedrelease/internal/ff"
	"timedrelease/internal/parallel"
)

// GT is the target group: the order-q subgroup of F_{p²}*.
type GT = ff.Fp2Elem

// Pairing binds a curve context to its extension field and caches the
// final exponentiation exponent and the Miller-loop schedule.
type Pairing struct {
	C  *curve.Curve
	E2 *ff.Fp2

	finalExp *big.Int // (p²−1)/q = (p−1)·h

	// schedule[k] reports whether Miller iteration k (processing bit
	// BitLen-2-k of q) performs an addition step after its doubling
	// step. Precomputed once here instead of re-walking ord.Bit(i) in
	// every loop.
	schedule []bool

	// mont holds the fixed-limb Montgomery backend contexts (mont.go).
	// When non-nil — every supported modulus — Pair, PairPrepared,
	// PairProduct and FinalExp run on limb vectors end-to-end; the
	// big.Int code remains reachable through the *Big methods as the
	// executable reference for differential tests and the backend
	// ablation benchmarks.
	mont *montCtx
}

// New returns a pairing context for c.
func New(c *curve.Curve) (*Pairing, error) {
	if c == nil {
		return nil, errors.New("pairing: nil curve")
	}
	e2, err := ff.NewFp2(c.F)
	if err != nil {
		return nil, err
	}
	pm1 := new(big.Int).Sub(c.F.P(), big.NewInt(1))
	ord := c.Q
	schedule := make([]bool, 0, ord.BitLen()-1)
	for i := ord.BitLen() - 2; i >= 0; i-- {
		schedule = append(schedule, ord.Bit(i) == 1)
	}
	return &Pairing{
		C:        c,
		E2:       e2,
		finalExp: new(big.Int).Mul(pm1, c.H),
		schedule: schedule,
		mont:     newMontCtx(e2, ff.UnitaryWNAF(c.H)),
	}, nil
}

// Pair computes ê(P, Q) with the projective (inversion-free) Miller
// loop, on the fixed-limb Montgomery backend when available. Both
// points must lie in the order-q subgroup; if either is the identity
// the result is 1.
func (pr *Pairing) Pair(p, q curve.Point) GT {
	if p.IsInfinity() || q.IsInfinity() {
		return pr.E2.One()
	}
	if pr.mont != nil {
		return pr.pairMont(p, q)
	}
	return pr.finalExpBig(pr.Miller(p, q))
}

// PairBig computes ê(P, Q) with the projective Miller loop and final
// exponentiation entirely on the big.Int reference backend. It returns
// bit-for-bit the same value as Pair and exists for differential
// testing and the field-backend ablation (BENCH_pairing.json).
func (pr *Pairing) PairBig(p, q curve.Point) GT {
	if p.IsInfinity() || q.IsInfinity() {
		return pr.E2.One()
	}
	return pr.finalExpBig(pr.Miller(p, q))
}

// PairAffine computes ê(P, Q) with the affine reference Miller loop,
// all on the big.Int backend. It returns the same value as Pair and
// exists for differential testing and the E4/pairing-bench ablations.
func (pr *Pairing) PairAffine(p, q curve.Point) GT {
	if p.IsInfinity() || q.IsInfinity() {
		return pr.E2.One()
	}
	return pr.finalExpBig(pr.MillerAffine(p, q))
}

// PairAfterMiller exposes the two phases separately so callers can
// multiply several Miller values and share one final exponentiation
// (see PairProduct); it exists for the E5 ablation.
func (pr *Pairing) PairAfterMiller(f GT) GT { return pr.FinalExp(f) }

// FinalExp raises an unreduced Miller value to (p²−1)/q, mapping it into
// the order-q target group. The (p−1) factor is applied via the
// Frobenius identity z^(p−1) = conj(z)·z⁻¹ — one conjugation plus one
// F_{p²} inversion instead of a |p|-bit exponentiation — leaving an
// exponentiation by the (much smaller) cofactor h; since z^(p−1) is
// unitary (norm N(z)^(p−1) = 1), that step runs the signed-window
// conjugation-as-inversion ladder. Because x ↦ x^((p²−1)/q) kills every
// element of F_p^*, Miller values that differ by a non-zero F_p factor —
// as the affine, projective and prepared loops' values do — map to the
// same target-group element. On supported moduli the whole computation
// runs on the Montgomery backend; FinalExpBig is the big.Int reference.
func (pr *Pairing) FinalExp(f GT) GT {
	if mc := pr.mont; mc != nil {
		a := mc.m.GetArena()
		defer a.Release()
		fm := mc.e2m.ElemIn(a)
		mc.e2m.ToMont(&fm, f)
		return mc.e2m.FromMont(pr.finalExpMontIn(fm, a))
	}
	return pr.finalExpBig(f)
}

// FinalExpBig is FinalExp pinned to the big.Int reference backend, for
// differential tests and the backend ablation.
func (pr *Pairing) FinalExpBig(f GT) GT { return pr.finalExpBig(f) }

func (pr *Pairing) finalExpBig(f GT) GT {
	e2 := pr.E2
	if e2.IsZero(f) {
		// Cannot happen for valid subgroup inputs (see Miller); treat as
		// degenerate.
		return e2.One()
	}
	t := e2.Mul(e2.Conj(f), e2.Inv(f)) // f^(p−1), unitary from here on
	return e2.ExpUnitaryBig(t, pr.C.H) // then ^h, total (p−1)h = (p²−1)/q
}

// MillerAffine evaluates the Miller function f_{q,P} at ψ(Q) in affine
// coordinates, without the final exponentiation. P and Q must be
// non-identity subgroup points. This is the reference implementation:
// one field inversion per doubling/addition step. Miller (miller.go)
// computes a value equal up to an F_p^* factor with no inversions at
// all; the two agree exactly after FinalExp.
func (pr *Pairing) MillerAffine(p, q curve.Point) GT {
	e2 := pr.E2
	f := e2.One()
	v := p
	for _, addBit := range pr.schedule {
		f = e2.Sqr(f)
		var g GT
		v, g = pr.lineDouble(v, q)
		f = e2.Mul(f, g)
		if addBit {
			v, g = pr.lineAdd(v, p, q)
			f = e2.Mul(f, g)
		}
	}
	return f
}

// lineEval evaluates the (non-vertical) line of slope λ through the
// affine point a, at the distorted point ψ(Q) = (−x_Q, i·y_Q):
//
//	g = i·y_Q − λ·(−x_Q) − (y_a − λ·x_a)
//	  = (λ·(x_Q + x_a) − y_a) + y_Q·i  ∈ F_{p²}.
//
// Since q is odd and Q has order q, y_Q ≠ 0, so g ≠ 0 always — the
// Miller value never collapses to zero. The returned element shares
// q.Y; callers consume it immediately without mutation.
func (pr *Pairing) lineEval(a, q curve.Point, lambda *big.Int) GT {
	fp := pr.C.F
	re := fp.Sub(fp.Mul(lambda, fp.Add(q.X, a.X)), a.Y)
	return ff.Fp2Elem{A: re, B: q.Y}
}

// lineDouble returns (2v, g) where g is the tangent-line factor at v
// evaluated at ψ(q). Vertical tangents (y=0) and the identity contribute
// the factor 1 under denominator elimination.
func (pr *Pairing) lineDouble(v, q curve.Point) (curve.Point, GT) {
	if v.IsInfinity() {
		return v, pr.E2.One()
	}
	if v.Y.Sign() == 0 {
		return curve.Infinity(), pr.E2.One()
	}
	fp := pr.C.F
	num := fp.Add(fp.Mul(big3, fp.Sqr(v.X)), big1)
	lambda := fp.Mul(num, fp.Inv(fp.Double(v.Y)))
	g := pr.lineEval(v, q, lambda)
	return pr.C.Double(v), g
}

// lineAdd returns (v+p, g) where g is the chord-line factor through v
// and p evaluated at ψ(q). The vertical chord v + (−v) contributes 1.
func (pr *Pairing) lineAdd(v, p, q curve.Point) (curve.Point, GT) {
	if v.IsInfinity() {
		return p, pr.E2.One()
	}
	if p.IsInfinity() {
		return v, pr.E2.One()
	}
	if v.X.Cmp(p.X) == 0 {
		if v.Y.Cmp(p.Y) == 0 {
			// Chord degenerates to the tangent; only reachable if the loop
			// ever adds a point to itself, which the Miller schedule avoids.
			return pr.lineDouble(v, q)
		}
		return curve.Infinity(), pr.E2.One()
	}
	fp := pr.C.F
	lambda := fp.Mul(fp.Sub(p.Y, v.Y), fp.Inv(fp.Sub(p.X, v.X)))
	g := pr.lineEval(v, q, lambda)
	return pr.C.Add(v, p), g
}

// PointPair is one (P, Q) factor of a pairing product.
type PointPair struct {
	P, Q curve.Point
}

// parallelThreshold is the minimum number of non-trivial factors before
// PairProduct fans Miller loops out to the worker pool; below it the
// goroutine overhead is not worth a loop that short.
const parallelThreshold = 2

// PairProduct computes Π ê(Pᵢ, Qᵢ) with a single shared final
// exponentiation — the optimisation used by multi-server decryption
// (paper §5.3.5) and pairing-equation checks. With more than one factor
// the Miller loops run across a GOMAXPROCS-bounded worker pool; the
// values are then merged in index order (multiplication in F_{p²} is
// commutative, so the result is bit-identical to the sequential loop).
func (pr *Pairing) PairProduct(pairs []PointPair) GT {
	if mc := pr.mont; mc != nil {
		millers := make([]ff.Fp2MontElem, len(pairs))
		work := func(i int) {
			pq := pairs[i]
			if pq.P.IsInfinity() || pq.Q.IsInfinity() {
				millers[i] = mc.e2m.One()
				return
			}
			// Each worker holds its own pooled arena for the loop's
			// temporaries; the Miller value must outlive it, so it is
			// copied into a caller-owned element before release.
			a := mc.m.GetArena()
			f := pr.millerMontIn(pq.P, pq.Q, a)
			out := mc.e2m.NewElem()
			mc.e2m.Set(&out, f)
			millers[i] = out
			a.Release()
		}
		if len(pairs) >= parallelThreshold {
			parallel.For(len(pairs), work)
		} else {
			for i := range pairs {
				work(i)
			}
		}
		a := mc.m.GetArena()
		defer a.Release()
		acc := mc.e2m.OneIn(a)
		s := mc.e2m.ScratchIn(a)
		for _, m := range millers {
			mc.e2m.MulInto(&acc, acc, m, s)
		}
		return mc.e2m.FromMont(pr.finalExpMontIn(acc, a))
	}
	return pr.PairProductBig(pairs)
}

// PairProductBig is PairProduct pinned to the big.Int reference
// backend, for differential tests and the backend ablation.
func (pr *Pairing) PairProductBig(pairs []PointPair) GT {
	millers := make([]GT, len(pairs))
	work := func(i int) {
		pq := pairs[i]
		if pq.P.IsInfinity() || pq.Q.IsInfinity() {
			millers[i] = pr.E2.One()
			return
		}
		millers[i] = pr.Miller(pq.P, pq.Q)
	}
	if len(pairs) >= parallelThreshold {
		parallel.For(len(pairs), work)
	} else {
		for i := range pairs {
			work(i)
		}
	}
	acc := pr.E2.One()
	s := ff.NewScratch()
	for _, m := range millers {
		pr.E2.MulInto(&acc, acc, m, s)
	}
	return pr.finalExpBig(acc)
}

// SamePairing reports whether ê(a1, b1) == ê(a2, b2), evaluated as a
// single product ê(−a1, b1)·ê(a2, b2) == 1 so only one final
// exponentiation is needed. This is the workhorse behind key-update
// verification and public-key well-formedness checks; when the first
// arguments are fixed across calls, SamePairingPrepared is faster still.
func (pr *Pairing) SamePairing(a1, b1, a2, b2 curve.Point) bool {
	gt := pr.PairProduct([]PointPair{
		{P: pr.C.Neg(a1), Q: b1},
		{P: a2, Q: b2},
	})
	return pr.E2.IsOne(gt)
}

package pairing

import (
	"timedrelease/internal/curve"
	"timedrelease/internal/ff"
)

// montCtx carries everything the Montgomery-backend pairing paths need:
// the limb contexts and the wNAF recoding of the cofactor used by the
// final exponentiation. Built once in New when the field supports the
// backend; nil otherwise, in which case every public entry point runs
// the big.Int reference code.
type montCtx struct {
	m   *ff.Mont
	e2m *ff.Fp2Mont

	// hDigits is the signed-window recoding of the cofactor h, computed
	// once so finalExpMontIn never touches big.Int arithmetic.
	hDigits []int
}

func newMontCtx(e2 *ff.Fp2, h []int) *montCtx {
	e2m := e2.Mont()
	if e2m == nil {
		return nil
	}
	return &montCtx{m: e2m.M, e2m: e2m, hDigits: h}
}

// millerStateMont is millerState on Montgomery limb vectors: the same
// Jacobian walk and projective line coefficients, with every field
// operation a fixed-width CIOS multiplication or lazy-reduced add/sub.
// See millerState for the formula derivations; the two implementations
// are kept line-for-line parallel and are pinned to exact agreement by
// the differential tests. All state is carved from a caller-held arena,
// so a full Miller loop allocates nothing.
type millerStateMont struct {
	m       *ff.Mont
	X, Y, Z ff.MontElem

	t1, t2, t3, t4, t5, t6 ff.MontElem
}

func newMillerStateMontIn(m *ff.Mont, px, py ff.MontElem, a *ff.Arena) millerStateMont {
	st := millerStateMont{
		m: m,
		X: a.Elem(), Y: a.Elem(), Z: a.Elem(),
		t1: a.Elem(), t2: a.Elem(), t3: a.Elem(),
		t4: a.Elem(), t5: a.Elem(), t6: a.Elem(),
	}
	m.Set(st.X, px)
	m.Set(st.Y, py)
	m.SetOne(st.Z)
	return st
}

func (st *millerStateMont) isInf() bool { return st.m.IsZero(st.Z) }

// dbl is millerState.dbl on limbs: advance V ← 2V, emit the tangent
// line's projective coefficients (A, B, C) = (M·Z², M·X − 2Y², 2YZ³),
// or return false for a factor-1 step.
func (st *millerStateMont) dbl(a, b, c ff.MontElem) bool {
	if st.isInf() {
		return false
	}
	m := st.m
	if m.IsZero(st.Y) {
		m.SetZero(st.Z)
		return false
	}
	yy := st.t1
	m.Sqr(yy, st.Y) // Y²
	zz := st.t2
	m.Sqr(zz, st.Z) // Z²
	mm := st.t3
	m.Sqr(mm, zz) // Z⁴ (a = 1 ⇒ a·Z⁴ = Z⁴)
	sq := st.t4
	m.Sqr(sq, st.X) // X²
	m.Add(mm, mm, sq)
	m.Add(mm, mm, sq)
	m.Add(mm, mm, sq) // M = 3X² + Z⁴

	// Line coefficients from the pre-update point.
	m.Mul(a, mm, zz)    // A = M·Z²
	m.Mul(b, mm, st.X)  //
	m.Double(st.t4, yy) // 2Y² (X² no longer needed)
	m.Sub(b, b, st.t4)  // B = M·X − 2Y²
	zNew := st.t5
	m.Mul(zNew, st.Y, st.Z)
	m.Double(zNew, zNew) // Z' = 2YZ
	m.Mul(c, zNew, zz)   // C = 2YZ·Z² = 2YZ³

	// Point update; every read of the old X, Y happens before its write.
	s := st.t6
	m.Mul(s, st.X, yy)
	m.Double(s, s)
	m.Double(s, s) // S = 4XY²
	m.Sqr(st.X, mm)
	m.Sub(st.X, st.X, s)
	m.Sub(st.X, st.X, s) // X' = M² − 2S
	m.Sqr(yy, yy)
	m.Double(yy, yy)
	m.Double(yy, yy)
	m.Double(yy, yy)      // 8Y⁴
	m.Sub(s, s, st.X)     // S − X'
	m.Mul(st.Y, mm, s)    //
	m.Sub(st.Y, st.Y, yy) // Y' = M(S − X') − 8Y⁴
	m.Set(st.Z, zNew)
	return true
}

// add is millerState.add on limbs: advance V ← V + P for the fixed
// Montgomery-form affine point (px, py), emitting the chord line's
// coefficients (A, B, C) = (R, R·x_p − Z'·y_p, Z'), or false for a
// factor-1 step.
func (st *millerStateMont) add(px, py ff.MontElem, a, b, c ff.MontElem) bool {
	m := st.m
	if st.isInf() {
		m.Set(st.X, px)
		m.Set(st.Y, py)
		m.SetOne(st.Z)
		return false
	}
	zz := st.t1
	m.Sqr(zz, st.Z) // Z²
	u2 := st.t2
	m.Mul(u2, px, zz) // x_p·Z²
	s2 := st.t3
	m.Mul(s2, zz, st.Z) //
	m.Mul(s2, py, s2)   // y_p·Z³
	h := u2
	m.Sub(h, u2, st.X) // H = U2 − X
	r := s2
	m.Sub(r, s2, st.Y) // R = S2 − Y
	if m.IsZero(h) {
		if m.IsZero(r) {
			// V and P coincide: tangent step, as in the references.
			return st.dbl(a, b, c)
		}
		// Vertical chord V + (−V): factor 1, accumulator to infinity.
		m.SetZero(st.Z)
		return false
	}
	zNew := st.t4
	m.Mul(zNew, st.Z, h) // Z3 = Z·H

	// Line coefficients.
	m.Set(a, r)
	m.Mul(st.t5, zNew, py)
	m.Mul(b, r, px)
	m.Sub(b, b, st.t5) // B = R·x_p − Z3·y_p
	m.Set(c, zNew)     // C = Z3

	// Point update.
	hh := st.t5
	m.Sqr(hh, h) // H²
	xh := st.t6
	m.Mul(xh, st.X, hh) // X·H²
	m.Mul(hh, hh, h)    // H³ (H² no longer needed)
	m.Sqr(st.X, r)
	m.Sub(st.X, st.X, hh)
	m.Sub(st.X, st.X, xh)
	m.Sub(st.X, st.X, xh) // X3 = R² − H³ − 2XH²
	m.Mul(st.Y, st.Y, hh) // Y·H³
	m.Sub(xh, xh, st.X)   // XH² − X3
	m.Mul(xh, r, xh)      // R(XH² − X3)
	m.Sub(st.Y, xh, st.Y) // Y3
	m.Set(st.Z, zNew)
	return true
}

// toMontPointIn converts an affine point's coordinates into Montgomery
// form in arena storage (the point must not be the identity).
func (mc *montCtx) toMontPointIn(p curve.Point, a *ff.Arena) (x, y ff.MontElem) {
	x, y = a.Elem(), a.Elem()
	mc.m.ToMont(x, p.X)
	mc.m.ToMont(y, p.Y)
	return x, y
}

// millerMontIn is the Montgomery-backend twin of Miller: the Jacobian
// inversion-free loop entirely on limb vectors, every temporary carved
// from the caller's arena. P and Q must be non-identity subgroup
// points; the returned value is in Montgomery form (valid until the
// arena is released) and bit-for-bit equal (after conversion) to
// Miller's.
func (pr *Pairing) millerMontIn(p, q curve.Point, ar *ff.Arena) ff.Fp2MontElem {
	mc := pr.mont
	m, e2m := mc.m, mc.e2m
	px, py := mc.toMontPointIn(p, ar)
	qx, qy := mc.toMontPointIn(q, ar)
	st := newMillerStateMontIn(m, px, py, ar)
	f := e2m.OneIn(ar)
	g := e2m.ElemIn(ar)
	s := e2m.ScratchIn(ar)
	a, b, c := ar.Elem(), ar.Elem(), ar.Elem()
	for _, addBit := range pr.schedule {
		e2m.SqrInto(&f, f, s)
		if st.dbl(a, b, c) {
			m.Mul(g.A, a, qx)
			m.Add(g.A, g.A, b)
			m.Mul(g.B, c, qy)
			e2m.MulInto(&f, f, g, s)
		}
		if addBit {
			if st.add(px, py, a, b, c) {
				m.Mul(g.A, a, qx)
				m.Add(g.A, g.A, b)
				m.Mul(g.B, c, qy)
				e2m.MulInto(&f, f, g, s)
			}
		}
	}
	return f
}

// finalExpMontIn raises a Montgomery-form Miller value to (p²−1)/q. The
// (p−1) factor is the Frobenius identity z^(p−1) = conj(z)·z⁻¹ — one
// conjugation and one F_{p²} inversion instead of a |p|-bit
// exponentiation. The result of that step is unitary (its norm is
// N(z)^(p−1) = 1), so the remaining cofactor exponentiation runs the
// signed-window unitary ladder over the cached recoding of h. The
// result lives in the arena.
func (pr *Pairing) finalExpMontIn(f ff.Fp2MontElem, a *ff.Arena) ff.Fp2MontElem {
	mc := pr.mont
	e2m := mc.e2m
	if e2m.IsZero(f) {
		// Cannot happen for valid subgroup inputs (see Miller); treat as
		// degenerate, like the big.Int path.
		return e2m.OneIn(a)
	}
	s := e2m.ScratchIn(a)
	t := e2m.ElemIn(a)
	e2m.InvInto(&t, f, s)
	conj := e2m.ElemIn(a)
	e2m.ConjInto(&conj, f)
	e2m.MulInto(&t, conj, t, s) // f^(p−1), unitary from here on
	e2m.ExpUnitaryWNAFInto(&t, t, mc.hDigits, s, a)
	return t
}

// pairMont is Pair on the Montgomery backend end-to-end: limb-vector
// Miller loop and final exponentiation over one pooled arena, with a
// single conversion at the boundary.
func (pr *Pairing) pairMont(p, q curve.Point) GT {
	mc := pr.mont
	a := mc.m.GetArena()
	defer a.Release()
	return mc.e2m.FromMont(pr.finalExpMontIn(pr.millerMontIn(p, q, a), a))
}

// millerPreparedMontIn evaluates a precomputed line schedule at ψ(Q) on
// limb vectors: one CIOS multiplication and one addition per line, all
// temporaries in the caller's arena.
func (pr *Pairing) millerPreparedMontIn(pp *PreparedPoint, q curve.Point, ar *ff.Arena) ff.Fp2MontElem {
	mc := pr.mont
	m, e2m := mc.m, mc.e2m
	qx, qy := mc.toMontPointIn(q, ar)
	f := e2m.OneIn(ar)
	// The imaginary part of every line value is the constant y_Q.
	g := ff.Fp2MontElem{A: ar.Elem(), B: qy}
	s := e2m.ScratchIn(ar)
	for k := range pp.steps {
		st := &pp.steps[k]
		e2m.SqrInto(&f, f, s)
		if !st.dbl.vertical {
			m.Mul(g.A, st.dbl.lambdaM, qx)
			m.Add(g.A, g.A, st.dbl.muM)
			e2m.MulInto(&f, f, g, s)
		}
		if st.hasAdd && !st.add.vertical {
			m.Mul(g.A, st.add.lambdaM, qx)
			m.Add(g.A, g.A, st.add.muM)
			e2m.MulInto(&f, f, g, s)
		}
	}
	return f
}

package pairing

import (
	"math/big"
	"testing"

	"timedrelease/internal/curve"
	"timedrelease/internal/ff"
)

// The preset primes of params.Preset("Test160") and ("SS512"), embedded
// here because package params depends on pairing (importing it back
// would cycle). The differential tests must run at the real parameter
// sizes — SS512 is the paper-era size the optimised paths are for.
var presetPrimes = map[string][2]string{
	"Test160": {
		"cab69233645ff2ec9acee7e93cf76c09cab9c52f",
		"ccf7a522ae5901e73051",
	},
	"SS512": {
		"ad1b4018db0dcf94ca80575c821b9aefd402ad39db7a7d85fb0f8e71989659c2af8599a5b178cf01ddb933717119e7db4055e2b5e452590b660633ca3f0897b7",
		"eb390909eda970c020a00be910961312ae13722b",
	},
}

func presetPairing(t *testing.T, name string) *Pairing {
	t.Helper()
	primes, ok := presetPrimes[name]
	if !ok {
		t.Fatalf("unknown preset %q", name)
	}
	p, q := mustInt(primes[0]), mustInt(primes[1])
	f, err := ff.NewField(p)
	if err != nil {
		t.Fatal(err)
	}
	pp1 := new(big.Int).Add(p, big.NewInt(1))
	h := new(big.Int).Quo(pp1, q)
	c, err := curve.New(f, q, h)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

// randomSubgroupPoints derives n deterministic "random" subgroup points.
func randomSubgroupPoints(t *testing.T, pr *Pairing, n int, tag string) []curve.Point {
	t.Helper()
	pts := make([]curve.Point, n)
	for i := range pts {
		pts[i] = pr.C.HashToGroup("miller-diff-"+tag, []byte{byte(i)})
		if pts[i].IsInfinity() {
			t.Fatal("hash produced the identity")
		}
	}
	return pts
}

func forEachPreset(t *testing.T, fn func(t *testing.T, pr *Pairing)) {
	for _, name := range []string{"Test160", "SS512"} {
		name := name
		t.Run(name, func(t *testing.T) {
			fn(t, presetPairing(t, name))
		})
	}
}

// TestProjectiveAgreesWithAffine is the headline differential test: the
// inversion-free Jacobian Miller loop must produce identical pairing
// values to the affine reference on random points, at both the test and
// the paper-era parameter sizes.
func TestProjectiveAgreesWithAffine(t *testing.T) {
	forEachPreset(t, func(t *testing.T, pr *Pairing) {
		ps := randomSubgroupPoints(t, pr, 4, "P")
		qs := randomSubgroupPoints(t, pr, 4, "Q")
		for i := range ps {
			fast := pr.Pair(ps[i], qs[i])
			ref := pr.PairAffine(ps[i], qs[i])
			if !pr.E2.Equal(fast, ref) {
				t.Fatalf("projective Pair != affine Pair for point pair %d", i)
			}
		}
	})
}

// TestPreparedAgreesWithAffine checks the fixed-argument path: both the
// final pairing value and — because prepared lines are normalised to the
// same affine (λ, μ) form — the raw Miller value must match the affine
// reference bit for bit.
func TestPreparedAgreesWithAffine(t *testing.T) {
	forEachPreset(t, func(t *testing.T, pr *Pairing) {
		ps := randomSubgroupPoints(t, pr, 3, "P")
		qs := randomSubgroupPoints(t, pr, 3, "Q")
		for i := range ps {
			prep := pr.Precompute(ps[i])
			if !pr.E2.Equal(pr.MillerPrepared(prep, qs[i]), pr.MillerAffine(ps[i], qs[i])) {
				t.Fatalf("MillerPrepared != MillerAffine for point pair %d", i)
			}
			if !pr.E2.Equal(pr.PairPrepared(prep, qs[i]), pr.PairAffine(ps[i], qs[i])) {
				t.Fatalf("PairPrepared != affine Pair for point pair %d", i)
			}
		}
	})
}

// TestPairProductAgreesWithAffine checks the (parallel) product path
// against the sequential affine reference with one final exponentiation
// applied to the product of affine Miller values.
func TestPairProductAgreesWithAffine(t *testing.T) {
	forEachPreset(t, func(t *testing.T, pr *Pairing) {
		ps := randomSubgroupPoints(t, pr, 5, "P")
		qs := randomSubgroupPoints(t, pr, 5, "Q")
		pairs := make([]PointPair, len(ps))
		acc := pr.E2.One()
		for i := range ps {
			pairs[i] = PointPair{P: ps[i], Q: qs[i]}
			acc = pr.E2.Mul(acc, pr.MillerAffine(ps[i], qs[i]))
		}
		if !pr.E2.Equal(pr.PairProduct(pairs), pr.FinalExp(acc)) {
			t.Fatal("parallel PairProduct != affine reference product")
		}
	})
}

// TestBilinearityOptimisedPaths re-runs the bilinearity property
// ê(aP, bQ) = ê(P, Q)^{ab} on the projective and prepared paths.
func TestBilinearityOptimisedPaths(t *testing.T) {
	forEachPreset(t, func(t *testing.T, pr *Pairing) {
		p := pr.C.HashToGroup("bilin", []byte("P"))
		q := pr.C.HashToGroup("bilin", []byte("Q"))
		base := pr.Pair(p, q)
		for _, ab := range [][2]int64{{2, 3}, {7, 11}, {941, 353}} {
			a, b := big.NewInt(ab[0]), big.NewInt(ab[1])
			aP, bQ := pr.C.ScalarMult(a, p), pr.C.ScalarMult(b, q)
			want := pr.E2.Exp(base, new(big.Int).Mul(a, b))
			if !pr.E2.Equal(pr.Pair(aP, bQ), want) {
				t.Fatalf("projective: ê(%dP, %dQ) != ê(P,Q)^%d", ab[0], ab[1], ab[0]*ab[1])
			}
			if !pr.E2.Equal(pr.PairPrepared(pr.Precompute(aP), bQ), want) {
				t.Fatalf("prepared: ê(%dP, %dQ) != ê(P,Q)^%d", ab[0], ab[1], ab[0]*ab[1])
			}
		}
	})
}

func TestSamePairingPrepared(t *testing.T) {
	pr := testPairing(t)
	p, q := gen(t, pr, 30), gen(t, pr, 31)
	s := big.NewInt(987123)
	sP, sQ := pr.C.ScalarMult(s, p), pr.C.ScalarMult(s, q)
	prepSP := pr.Precompute(sP)
	prepP := pr.Precompute(p)
	// ê(sP, Q) == ê(P, sQ)
	if !pr.SamePairingPrepared(prepSP, q, prepP, sQ) {
		t.Fatal("SamePairingPrepared false negative")
	}
	if pr.SamePairingPrepared(prepSP, q, prepP, q) {
		t.Fatal("SamePairingPrepared false positive")
	}
	// Cross-check against the unprepared implementation.
	if pr.SamePairingPrepared(prepSP, q, prepP, sQ) != pr.SamePairing(sP, q, p, sQ) {
		t.Fatal("prepared and unprepared SamePairing disagree")
	}
}

func TestPreparedIdentity(t *testing.T) {
	pr := testPairing(t)
	p := gen(t, pr, 32)
	prepInf := pr.Precompute(curve.Infinity())
	if !prepInf.IsInfinity() {
		t.Fatal("Precompute(∞) must report infinity")
	}
	if !pr.E2.IsOne(pr.PairPrepared(prepInf, p)) {
		t.Fatal("ê(∞, P) must be 1 on the prepared path")
	}
	prep := pr.Precompute(p)
	if !pr.E2.IsOne(pr.PairPrepared(prep, curve.Infinity())) {
		t.Fatal("ê(P, ∞) must be 1 on the prepared path")
	}
	// Degenerate SamePairingPrepared combinations.
	if !pr.SamePairingPrepared(prepInf, p, prep, curve.Infinity()) {
		t.Fatal("1 == 1 must hold for degenerate sides")
	}
	if pr.SamePairingPrepared(prepInf, p, prep, p) {
		t.Fatal("1 == ê(P,P) must fail for non-degenerate rhs")
	}
}

// TestPairProductParallelDeterministic runs the same product many times
// to shake out scheduling nondeterminism in the parallel merge (also
// exercised with -race by `make race`).
func TestPairProductParallelDeterministic(t *testing.T) {
	pr := testPairing(t)
	pairs := make([]PointPair, 8)
	for i := range pairs {
		pairs[i] = PointPair{P: gen(t, pr, byte(40+i)), Q: gen(t, pr, byte(60+i))}
	}
	first := pr.PairProduct(pairs)
	for run := 0; run < 10; run++ {
		if !pr.E2.Equal(pr.PairProduct(pairs), first) {
			t.Fatal("PairProduct result varies across runs")
		}
	}
}

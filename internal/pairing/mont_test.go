package pairing

import (
	"crypto/rand"
	"math/big"
	"testing"

	"timedrelease/internal/curve"
)

// randPoints returns two random non-identity subgroup points.
func randPoints(t *testing.T, pr *Pairing) (curve.Point, curve.Point) {
	t.Helper()
	p, err := pr.C.RandomSubgroupPoint(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	q, err := pr.C.RandomSubgroupPoint(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return p, q
}

// TestPairBackendsAgree pins the Montgomery pairing end-to-end against
// both big.Int reference paths: the projective reference (PairBig) and
// the affine textbook path (PairAffine).
func TestPairBackendsAgree(t *testing.T) {
	pr := testPairing(t)
	if pr.mont == nil {
		t.Fatal("test field has no Montgomery backend")
	}
	e2 := pr.E2
	for i := 0; i < 10; i++ {
		p, q := randPoints(t, pr)
		got := pr.Pair(p, q)
		if want := pr.PairBig(p, q); !e2.Equal(got, want) {
			t.Fatalf("Pair mont/big mismatch: %v vs %v", got, want)
		}
		if want := pr.PairAffine(p, q); !e2.Equal(got, want) {
			t.Fatalf("Pair mont/affine mismatch")
		}
	}
}

// TestPairPreparedBackendsAgree pins the prepared Montgomery evaluation
// against its big.Int twin and the unprepared pairing.
func TestPairPreparedBackendsAgree(t *testing.T) {
	pr := testPairing(t)
	e2 := pr.E2
	for i := 0; i < 10; i++ {
		p, q := randPoints(t, pr)
		pp := pr.Precompute(p)
		got := pr.PairPrepared(pp, q)
		if want := pr.PairPreparedBig(pp, q); !e2.Equal(got, want) {
			t.Fatalf("PairPrepared mont/big mismatch")
		}
		if want := pr.Pair(p, q); !e2.Equal(got, want) {
			t.Fatalf("PairPrepared/Pair mismatch")
		}
	}
}

// TestFinalExpFrobeniusMatchesExponentiation is the acceptance check
// that the Frobenius final exponentiation — conj(f)·f⁻¹ for the (p−1)
// factor, then the unitary signed-window ladder for the cofactor —
// equals the plain exponentiation f^((p²−1)/q) on both backends.
func TestFinalExpFrobeniusMatchesExponentiation(t *testing.T) {
	pr := testPairing(t)
	e2 := pr.E2
	for i := 0; i < 10; i++ {
		p, q := randPoints(t, pr)
		f := pr.Miller(p, q)
		naive := e2.ExpBig(f, pr.finalExp)
		if got := pr.FinalExp(f); !e2.Equal(got, naive) {
			t.Fatalf("FinalExp (mont) != f^((p²−1)/q): %v vs %v", got, naive)
		}
		if got := pr.FinalExpBig(f); !e2.Equal(got, naive) {
			t.Fatalf("FinalExpBig != f^((p²−1)/q)")
		}
	}
	// Degenerate inputs: zero and one.
	if !e2.IsOne(pr.FinalExp(e2.One())) {
		t.Fatal("FinalExp(1) != 1")
	}
	if !e2.IsOne(pr.FinalExp(GT{A: new(big.Int), B: new(big.Int)})) {
		t.Fatal("FinalExp(0) must degrade to 1 like the reference")
	}
}

// TestPairProductBackendAgree checks the multi-pair product against the
// big.Int per-pair product.
func TestPairProductBackendAgree(t *testing.T) {
	pr := testPairing(t)
	e2 := pr.E2
	var pairs []PointPair
	want := e2.One()
	for i := 0; i < 4; i++ {
		p, q := randPoints(t, pr)
		pairs = append(pairs, PointPair{P: p, Q: q})
		want = e2.Mul(want, pr.PairBig(p, q))
	}
	if got := pr.PairProduct(pairs); !e2.Equal(got, want) {
		t.Fatalf("PairProduct mont mismatch: %v vs %v", got, want)
	}
}

// TestSamePairingPreparedMontAgree checks the prepared equality test on
// matching and non-matching inputs (the mont branch shares one final
// exponentiation across both Miller loops).
func TestSamePairingPreparedMontAgree(t *testing.T) {
	pr := testPairing(t)
	g, q := randPoints(t, pr)
	k, err := pr.C.RandScalar(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	kg := pr.C.ScalarMult(k, g)
	kq := pr.C.ScalarMult(k, q)
	pg, pkg := pr.Precompute(g), pr.Precompute(kg)
	if !pr.SamePairingPrepared(pg, kq, pkg, q) {
		t.Fatal("ê(g, kq) == ê(kg, q) must hold")
	}
	if pr.SamePairingPrepared(pg, q, pkg, q) {
		t.Fatal("distinct pairings reported equal")
	}
}

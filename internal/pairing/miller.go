package pairing

import (
	"math/big"

	"timedrelease/internal/curve"
	"timedrelease/internal/ff"
)

var (
	big1 = big.NewInt(1)
	big3 = big.NewInt(3)
)

// millerState walks the Miller loop's point accumulator in Jacobian
// coordinates (X : Y : Z) ↔ affine (X/Z², Y/Z³), producing for each
// doubling/addition step the coefficients (A, B, C) of the line value
//
//	g = A·x_Q + B + C·y_Q·i  ∈ F_{p²}
//
// evaluated at the distorted point ψ(Q) = (−x_Q, i·y_Q). The
// coefficients equal the affine line value scaled by a non-zero F_p
// factor (2YZ³ for tangents, Z_new = Z·H for chords), which the final
// exponentiation kills — the denominator-elimination argument extended
// to projective denominators. No step performs a field inversion.
//
// All temporaries are allocated once per state and reused, so a full
// Miller loop performs no big.Int allocations in its inner loop beyond
// math/big's internal growth.
type millerState struct {
	fp      *ff.Field
	X, Y, Z *big.Int

	t1, t2, t3, t4, t5, t6 *big.Int
}

func newMillerState(fp *ff.Field, p curve.Point) *millerState {
	return &millerState{
		fp: fp,
		X:  new(big.Int).Set(p.X),
		Y:  new(big.Int).Set(p.Y),
		Z:  big.NewInt(1),
		t1: new(big.Int), t2: new(big.Int), t3: new(big.Int),
		t4: new(big.Int), t5: new(big.Int), t6: new(big.Int),
	}
}

// isInf reports whether the accumulator is the point at infinity.
func (st *millerState) isInf() bool { return st.Z.Sign() == 0 }

// dbl advances V ← 2V and writes the tangent-line coefficients into
// (a, b, c). It returns false when the step contributes the factor 1
// instead (V at infinity, or a vertical tangent at a 2-torsion point),
// mirroring the affine lineDouble semantics exactly.
//
// With M = 3X² + Z⁴ (curve a-coefficient 1) and the affine tangent slope
// λ = M/(2YZ), scaling the affine line by 2YZ³ gives
//
//	A = M·Z², B = M·X − 2Y², C = 2YZ³,
//
// and the point update is the standard Jacobian doubling
// X' = M² − 2S, Y' = M(S − X') − 8Y⁴, Z' = 2YZ with S = 4XY².
func (st *millerState) dbl(a, b, c *big.Int) bool {
	if st.isInf() {
		return false
	}
	if st.Y.Sign() == 0 {
		st.Z.SetInt64(0)
		return false
	}
	fp := st.fp
	yy := fp.SqrInto(st.t1, st.Y) // Y²
	zz := fp.SqrInto(st.t2, st.Z) // Z²
	m := fp.SqrInto(st.t3, zz)    // Z⁴ (a = 1 ⇒ a·Z⁴ = Z⁴)
	sq := fp.SqrInto(st.t4, st.X) // X²
	fp.AddInto(m, m, sq)
	fp.AddInto(m, m, sq)
	fp.AddInto(m, m, sq) // M = 3X² + Z⁴

	// Line coefficients from the pre-update point.
	fp.MulInto(a, m, zz)     // A = M·Z²
	fp.MulInto(b, m, st.X)   //
	fp.DoubleInto(st.t4, yy) // 2Y² (X² no longer needed)
	fp.SubInto(b, b, st.t4)  // B = M·X − 2Y²
	zNew := fp.MulInto(st.t5, st.Y, st.Z)
	fp.DoubleInto(zNew, zNew) // Z' = 2YZ
	fp.MulInto(c, zNew, zz)   // C = 2YZ·Z² = 2YZ³

	// Point update; every read of the old X, Y happens before its write.
	s := fp.MulInto(st.t6, st.X, yy)
	fp.DoubleInto(s, s)
	fp.DoubleInto(s, s) // S = 4XY²
	fp.SqrInto(st.X, m)
	fp.SubInto(st.X, st.X, s)
	fp.SubInto(st.X, st.X, s) // X' = M² − 2S
	fp.SqrInto(yy, yy)
	fp.DoubleInto(yy, yy)
	fp.DoubleInto(yy, yy)
	fp.DoubleInto(yy, yy)      // 8Y⁴
	fp.SubInto(s, s, st.X)     // S − X'
	fp.MulInto(st.Y, m, s)     //
	fp.SubInto(st.Y, st.Y, yy) // Y' = M(S − X') − 8Y⁴
	st.Z.Set(zNew)
	return true
}

// add advances V ← V + p for the fixed affine point p and writes the
// chord-line coefficients into (a, b, c); it returns false when the step
// contributes the factor 1 (V or p at infinity, or the vertical chord
// V + (−V)), mirroring the affine lineAdd semantics.
//
// Mixed Jacobian+affine addition: with U2 = x_p·Z², S2 = y_p·Z³,
// H = U2 − X, R = S2 − Y, the affine chord slope is λ = R/(Z·H);
// scaling the affine line by Z' = Z·H gives
//
//	A = R, B = R·x_p − Z'·y_p, C = Z',
//
// and X3 = R² − H³ − 2XH², Y3 = R(XH² − X3) − Y·H³, Z3 = Z·H.
func (st *millerState) add(p curve.Point, a, b, c *big.Int) bool {
	if p.IsInfinity() {
		return false
	}
	if st.isInf() {
		st.X.Set(p.X)
		st.Y.Set(p.Y)
		st.Z.SetInt64(1)
		return false
	}
	fp := st.fp
	zz := fp.SqrInto(st.t1, st.Z)     // Z²
	u2 := fp.MulInto(st.t2, p.X, zz)  // x_p·Z²
	s2 := fp.MulInto(st.t3, zz, st.Z) //
	fp.MulInto(s2, p.Y, s2)           // y_p·Z³
	h := fp.SubInto(u2, u2, st.X)     // H = U2 − X
	r := fp.SubInto(s2, s2, st.Y)     // R = S2 − Y
	if h.Sign() == 0 {
		if r.Sign() == 0 {
			// V and p are the same point: the chord degenerates to the
			// tangent, exactly as in the affine reference.
			return st.dbl(a, b, c)
		}
		// Vertical chord V + (−V): factor 1, accumulator to infinity.
		st.Z.SetInt64(0)
		return false
	}
	zNew := fp.MulInto(st.t4, st.Z, h) // Z3 = Z·H

	// Line coefficients.
	a.Set(r)
	fp.MulInto(st.t5, zNew, p.Y)
	fp.MulInto(b, r, p.X)
	fp.SubInto(b, b, st.t5) // B = R·x_p − Z3·y_p
	c.Set(zNew)             // C = Z3

	// Point update.
	hh := fp.SqrInto(st.t5, h)        // H²
	xh := fp.MulInto(st.t6, st.X, hh) // X·H²
	fp.MulInto(hh, hh, h)             // H³ (H² no longer needed)
	fp.SqrInto(st.X, r)
	fp.SubInto(st.X, st.X, hh)
	fp.SubInto(st.X, st.X, xh)
	fp.SubInto(st.X, st.X, xh) // X3 = R² − H³ − 2XH²
	fp.MulInto(st.Y, st.Y, hh) // Y·H³
	fp.SubInto(xh, xh, st.X)   // XH² − X3
	fp.MulInto(xh, r, xh)      // R(XH² − X3)
	fp.SubInto(st.Y, xh, st.Y) // Y3
	st.Z.Set(zNew)
	return true
}

// Miller evaluates the Miller function f_{q,P} at ψ(Q) in Jacobian
// coordinates — zero field inversions, no per-iteration heap
// allocation — without the final exponentiation. P and Q must be
// non-identity subgroup points. The value differs from MillerAffine's by
// a non-zero F_p^* factor per line, which FinalExp eliminates; Pair
// therefore returns identical group elements over either loop.
func (pr *Pairing) Miller(p, q curve.Point) GT {
	fp := pr.C.F
	e2 := pr.E2
	st := newMillerState(fp, p)
	f := GT{A: big.NewInt(1), B: new(big.Int)}
	g := GT{A: new(big.Int), B: new(big.Int)}
	s := ff.NewScratch()
	a, b, c := new(big.Int), new(big.Int), new(big.Int)
	for _, addBit := range pr.schedule {
		e2.SqrInto(&f, f, s)
		if st.dbl(a, b, c) {
			fp.MulInto(g.A, a, q.X)
			fp.AddInto(g.A, g.A, b)
			fp.MulInto(g.B, c, q.Y)
			e2.MulInto(&f, f, g, s)
		}
		if addBit {
			if st.add(p, a, b, c) {
				fp.MulInto(g.A, a, q.X)
				fp.AddInto(g.A, g.A, b)
				fp.MulInto(g.B, c, q.Y)
				e2.MulInto(&f, f, g, s)
			}
		}
	}
	return f
}

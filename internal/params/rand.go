package params

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"

	"timedrelease/internal/ff"
)

// orRand substitutes crypto/rand.Reader for a nil reader.
func orRand(rng io.Reader) io.Reader {
	if rng == nil {
		return rand.Reader
	}
	return rng
}

// randPrime samples an odd prime with exactly bits bits.
func randPrime(rng io.Reader, bits int) (*big.Int, error) {
	p, err := rand.Prime(rng, bits)
	if err != nil {
		return nil, fmt.Errorf("params: sampling prime: %w", err)
	}
	return p, nil
}

// randBits samples an integer with exactly bits bits (top bit set).
func randBits(rng io.Reader, bits int) (*big.Int, error) {
	buf := make([]byte, (bits+7)/8)
	if _, err := io.ReadFull(rng, buf); err != nil {
		return nil, fmt.Errorf("params: reading randomness: %w", err)
	}
	n := new(big.Int).SetBytes(buf)
	// Trim to the requested width, then force the top bit.
	n.SetBit(n, bits, 0)
	for n.BitLen() > bits {
		n.SetBit(n, n.BitLen()-1, 0)
	}
	n.SetBit(n, bits-1, 1)
	return n, nil
}

// Field exposes the base field of the set (convenience for callers that
// only need F_p arithmetic).
func (s *Set) Field() *ff.Field { return s.Curve.F }

package params

import (
	"math/big"
	"strings"
	"testing"
)

func TestAllPresetsValidate(t *testing.T) {
	for _, name := range PresetNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			set, err := Preset(name)
			if err != nil {
				t.Fatalf("Preset: %v", err)
			}
			if err := set.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
		})
	}
}

func TestPresetIsCached(t *testing.T) {
	a := MustPreset("Test160")
	b := MustPreset("Test160")
	if a != b {
		t.Fatal("presets must be cached")
	}
}

func TestUnknownPreset(t *testing.T) {
	if _, err := Preset("NoSuchPreset"); err == nil {
		t.Fatal("unknown preset must fail")
	}
}

func TestGenerateSmall(t *testing.T) {
	set, err := Generate(nil, 128, 64)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if err := set.Validate(); err != nil {
		t.Fatalf("generated set does not validate: %v", err)
	}
	if set.P.BitLen() != 128 || set.Q.BitLen() != 64 {
		t.Fatalf("sizes: p=%d q=%d", set.P.BitLen(), set.Q.BitLen())
	}
}

func TestGenerateRejectsBadSizes(t *testing.T) {
	if _, err := Generate(nil, 64, 60); err == nil {
		t.Fatal("too-close sizes must be rejected")
	}
	if _, err := Generate(nil, 128, 8); err == nil {
		t.Fatal("tiny q must be rejected")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	set := MustPreset("Test160")
	data := set.Marshal()
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if back.P.Cmp(set.P) != 0 || back.Q.Cmp(set.Q) != 0 || back.Name != set.Name {
		t.Fatal("marshal round trip mismatch")
	}
	// The canonical generator must re-derive identically.
	if !set.Curve.Equal(back.G, set.G) {
		t.Fatal("generator derivation is not canonical")
	}
}

func TestUnmarshalRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad header":   "not-params\np=3\nq=7\n",
		"missing p":    "tre-params-v1\nq=7\n",
		"malformed kv": "tre-params-v1\npequals3\n",
		"bad hex":      "tre-params-v1\np=zz\nq=7\n",
		"q nmid p+1":   "tre-params-v1\np=17\nq=b\n",
	}
	for name, data := range cases {
		if _, err := Unmarshal([]byte(data)); err == nil {
			t.Errorf("%s: Unmarshal must fail", name)
		}
	}
}

func TestFromPQRejections(t *testing.T) {
	set := MustPreset("Test160")
	if _, err := FromPQ("x", nil, set.Q); err == nil {
		t.Fatal("nil p must be rejected")
	}
	// q that does not divide p+1.
	if _, err := FromPQ("x", set.P, new(big.Int).Add(set.Q, big.NewInt(2))); err == nil {
		t.Fatal("non-dividing q must be rejected")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	good := MustPreset("Test160")
	// Composite p.
	bad, err := FromPQ("bad", good.P, good.Q)
	if err != nil {
		t.Fatal(err)
	}
	bad.P = new(big.Int).Mul(big.NewInt(3), big.NewInt(5))
	if err := bad.Validate(); err == nil {
		t.Fatal("corrupted p must fail validation")
	}
	// Non-canonical generator.
	bad2, err := FromPQ("bad2", good.P, good.Q)
	if err != nil {
		t.Fatal(err)
	}
	bad2.G = bad2.Curve.Add(bad2.G, bad2.G)
	if err := bad2.Validate(); err == nil || !strings.Contains(err.Error(), "canonical") {
		t.Fatalf("non-canonical generator: err=%v", err)
	}
}

func TestPresetNamesSorted(t *testing.T) {
	names := PresetNames()
	if len(names) < 4 {
		t.Fatalf("expected at least 4 presets, got %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

func TestFieldAccessor(t *testing.T) {
	set := MustPreset("Test160")
	if set.Field().P().Cmp(set.P) != 0 {
		t.Fatal("Field() modulus mismatch")
	}
}

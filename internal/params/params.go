// Package params generates and validates the public parameters of the
// Type-1 pairing setting: primes p ≡ 3 (mod 4) and q with q·h = p+1,
// defining the curve y² = x³ + x over F_p with an order-q Gap
// Diffie-Hellman subgroup (paper §4).
//
// A parameter set is fully determined by (p, q): the cofactor is
// h = (p+1)/q and the canonical generator is derived by hashing the
// primes onto the subgroup, so parameter sets are self-contained and
// anyone can re-derive and audit them. Embedded presets cover a fast
// test size and the 2005-era through modern production sizes.
package params

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/big"
	"strings"

	"timedrelease/internal/backend"
	"timedrelease/internal/bls381"
	"timedrelease/internal/curve"
	"timedrelease/internal/ff"
	"timedrelease/internal/pairing"
	"timedrelease/internal/rohash"
)

// primalityRounds is the Miller-Rabin round count used for generation
// and validation; combined with big.Int's Baillie-PSW test this gives a
// negligible error probability.
const primalityRounds = 64

// Set is a complete, ready-to-use parameter set. All fields are
// populated by the constructors; treat them as read-only.
//
// Every set carries a pairing backend in B; scheme code should reach
// the group and pairing operations through it. On Type-1 (symmetric)
// sets Curve and Pairing additionally expose the underlying
// supersingular machinery and G2 == G; on asymmetric sets (BLS12-381)
// Curve and Pairing are nil and G/G2 are the distinct G1/G2
// generators.
type Set struct {
	Name string   // human-readable label ("SS512", "BLS12-381", ...)
	P    *big.Int // base-field prime
	Q    *big.Int // prime order of the working subgroup
	H    *big.Int // G1 cofactor

	Curve   *curve.Curve     // Type-1 curve context, nil when asymmetric
	Pairing *pairing.Pairing // Type-1 pairing context, nil when asymmetric
	G       curve.Point      // canonical G1 generator
	G2      curve.Point      // canonical G2 generator (== G when symmetric)

	B backend.Backend // the pairing backend, never nil
}

// Asymmetric reports whether the set runs on a Type-3 backend with
// distinct groups G1 ≠ G2.
func (s *Set) Asymmetric() bool { return s.B.Asymmetric() }

// FromPQ assembles a parameter set from the two primes, deriving the
// cofactor, curve, pairing and canonical generator. Structural relations
// are checked; call Validate for (slower) primality checks.
func FromPQ(name string, p, q *big.Int) (*Set, error) {
	if p == nil || q == nil {
		return nil, errors.New("params: nil prime")
	}
	pp1 := new(big.Int).Add(p, big.NewInt(1))
	h, rem := new(big.Int).QuoRem(pp1, q, new(big.Int))
	if rem.Sign() != 0 {
		return nil, errors.New("params: q does not divide p+1")
	}
	f, err := ff.NewField(p)
	if err != nil {
		return nil, fmt.Errorf("params: %w", err)
	}
	c, err := curve.New(f, q, h)
	if err != nil {
		return nil, fmt.Errorf("params: %w", err)
	}
	pr, err := pairing.New(c)
	if err != nil {
		return nil, fmt.Errorf("params: %w", err)
	}
	s := &Set{Name: name, P: new(big.Int).Set(p), Q: new(big.Int).Set(q), H: h, Curve: c, Pairing: pr}
	s.G = s.deriveGenerator()
	if s.G.IsInfinity() {
		return nil, errors.New("params: derived generator is the identity")
	}
	s.G2 = s.G
	s.B = backend.NewSymmetric(name, c, pr, s.G)
	return s, nil
}

// fromBLS12381 assembles the BLS12-381 parameter set around the
// Type-3 backend. The structural fields mirror the backend's curve
// constants; Curve and Pairing stay nil since there is no Type-1
// machinery behind this set.
func fromBLS12381(name string) *Set {
	b := bls381.New()
	return &Set{
		Name: name,
		P:    b.FieldPrime(),
		Q:    b.Order(),
		H:    b.CofactorG1(),
		G:    b.Generator(backend.G1),
		G2:   b.Generator(backend.G2),
		B:    b,
	}
}

// deriveGenerator hashes (p, q) onto the subgroup, giving a canonical
// generator anyone can recompute from the primes alone.
func (s *Set) deriveGenerator() curve.Point {
	seed := rohash.Concat([]byte("generator"), s.P.Bytes(), s.Q.Bytes())
	return s.Curve.HashToGroup("params", seed)
}

// Validate performs the full (slow) audit of a parameter set: primality
// of p and q, the congruence and divisibility relations, that q is not a
// factor of the cofactor, and that the canonical generator matches.
func (s *Set) Validate() error {
	if s.Asymmetric() {
		// The curve constants are compile-time fixed; audit the live
		// generators instead of the Type-1 structural relations.
		for _, g := range []backend.Group{backend.G1, backend.G2} {
			gen := s.B.Generator(g)
			if gen.IsInfinity() || !s.B.InSubgroup(g, gen) {
				return fmt.Errorf("params: %v generator fails subgroup membership", g)
			}
		}
		if !s.Q.ProbablyPrime(primalityRounds) {
			return errors.New("params: group order is not prime")
		}
		return nil
	}
	if !s.P.ProbablyPrime(primalityRounds) {
		return errors.New("params: p is not prime")
	}
	if !s.Q.ProbablyPrime(primalityRounds) {
		return errors.New("params: q is not prime")
	}
	if new(big.Int).Mod(s.P, big.NewInt(4)).Int64() != 3 {
		return errors.New("params: p ≢ 3 (mod 4)")
	}
	pp1 := new(big.Int).Add(s.P, big.NewInt(1))
	if new(big.Int).Mul(s.Q, s.H).Cmp(pp1) != 0 {
		return errors.New("params: q·h ≠ p+1")
	}
	if new(big.Int).Mod(s.H, s.Q).Sign() == 0 {
		return errors.New("params: q² divides p+1")
	}
	if !s.Curve.InSubgroup(s.G) {
		return errors.New("params: generator not in subgroup")
	}
	if !s.Curve.Equal(s.G, s.deriveGenerator()) {
		return errors.New("params: generator is not the canonical derivation")
	}
	return nil
}

// Generate creates a fresh parameter set with a pBits-bit p and a
// qBits-bit q. It samples q prime, then cofactors h ≡ 0 (mod 4) until
// p = h·q − 1 is a pBits-bit prime (p ≡ 3 mod 4 holds by construction
// since q is odd and 4 | h).
func Generate(rng io.Reader, pBits, qBits int) (*Set, error) {
	if qBits < 16 || pBits < qBits+8 {
		return nil, fmt.Errorf("params: unusable sizes pBits=%d qBits=%d", pBits, qBits)
	}
	rng = orRand(rng)
	q, err := randPrime(rng, qBits)
	if err != nil {
		return nil, err
	}
	hBits := pBits - qBits
	for tries := 0; tries < 100000; tries++ {
		h, err := randBits(rng, hBits)
		if err != nil {
			return nil, err
		}
		h.SetBit(h, 0, 0)
		h.SetBit(h, 1, 0) // h ≡ 0 (mod 4) ⇒ p = hq−1 ≡ 3 (mod 4)
		if h.BitLen() < 3 {
			continue
		}
		p := new(big.Int).Mul(h, q)
		p.Sub(p, big.NewInt(1))
		if p.BitLen() != pBits {
			continue
		}
		if !p.ProbablyPrime(primalityRounds) {
			continue
		}
		if new(big.Int).Mod(h, q).Sign() == 0 {
			continue
		}
		return FromPQ(fmt.Sprintf("gen-%d-%d", pBits, qBits), p, q)
	}
	return nil, errors.New("params: no prime found (try different sizes)")
}

// Marshal renders the set in a small self-describing text format.
// Type-1 sets keep the historical name/p/q encoding byte-for-byte (so
// fingerprints of existing armored files stay valid); asymmetric sets
// add a backend= line, which also makes their fingerprint distinct
// from every Type-1 set's.
func (s *Set) Marshal() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "tre-params-v1\nname=%s\n", s.Name)
	if s.Asymmetric() {
		fmt.Fprintf(&b, "backend=%s\n", s.B.Name())
	}
	fmt.Fprintf(&b, "p=%s\nq=%s\n", s.P.Text(16), s.Q.Text(16))
	return b.Bytes()
}

// Unmarshal parses the format produced by Marshal and rebuilds the set
// (including structural checks).
func Unmarshal(data []byte) (*Set, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	if !sc.Scan() || sc.Text() != "tre-params-v1" {
		return nil, errors.New("params: bad header")
	}
	kv := map[string]string{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		k, v, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("params: malformed line %q", line)
		}
		kv[k] = v
	}
	p, ok := new(big.Int).SetString(kv["p"], 16)
	if !ok {
		return nil, errors.New("params: bad p")
	}
	q, ok := new(big.Int).SetString(kv["q"], 16)
	if !ok {
		return nil, errors.New("params: bad q")
	}
	if bk, ok := kv["backend"]; ok {
		if bk != bls381.BackendName {
			return nil, fmt.Errorf("params: unknown backend %q", bk)
		}
		s, err := Preset(PresetBLS12381)
		if err != nil {
			return nil, err
		}
		if p.Cmp(s.P) != 0 || q.Cmp(s.Q) != 0 {
			return nil, errors.New("params: backend constants do not match")
		}
		return s, nil
	}
	return FromPQ(kv["name"], p, q)
}

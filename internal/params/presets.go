package params

import (
	"fmt"
	"math/big"
	"sort"
	"sync"
)

// Preset parameter sets. Each is defined by its two primes; everything
// else (cofactor, curve, pairing, canonical generator) is re-derived at
// load time, so the embedded data is fully auditable. All presets were
// produced by Generate and pass Validate.
//
//   - Test160 — 160-bit p, 80-bit q. NOT secure; exists so the test
//     suite runs fast. Security levels this small are trivially
//     breakable.
//   - SS512 — 512-bit p, 160-bit q. The size contemporary with the
//     paper (2005) and with Boneh–Franklin; roughly 80-bit security
//     then, inadequate today.
//   - SS1024 — 1024-bit p, 224-bit q.
//   - SS1536 — 1536-bit p, 256-bit q. The conservative modern choice
//     for this (Type-1, embedding degree 2) pairing family.
var presetPrimes = map[string][2]string{
	"Test160": {
		"cab69233645ff2ec9acee7e93cf76c09cab9c52f",
		"ccf7a522ae5901e73051",
	},
	"SS512": {
		"ad1b4018db0dcf94ca80575c821b9aefd402ad39db7a7d85fb0f8e71989659c2af8599a5b178cf01ddb933717119e7db4055e2b5e452590b660633ca3f0897b7",
		"eb390909eda970c020a00be910961312ae13722b",
	},
	"SS1024": {
		"ad9a6e357557eb15668567fb42048d4265160edec9ae4d134bd4ab8d3cb48e659bf1198c17a1ac94870d40a0b013c456c52a86d827ba47dcadcdb78b45baa254d8bdd82e9c5c47088070a72b0b31238218a74808edb04c9da0be604bdc70995cc1e0c0b3664622935cc3eb7bf830b69e1145326b4e562226b65da09c6e4d447b",
		"d4d5f7f4ac6206c04a504269bfeb5b2f179f428d4530c35947146d33",
	},
	"SS1536": {
		"c0c3c234817de96ec923161d24e228ffc379123f7cbf08d2502126593960dc6b69fb15f83d3fc042e46a1b8f7de24ea66456fba42d24ef4961b6bdc552c5d4df08597ced47dd0989af0bb40f65e413fc3c8f2dbf5a71c26934b02395bce25a7352f687afc0f8b3f16f02ca4e6d800e69c2f1611c81a8154940fcaba4a739ed39f908f599ff696cbe40efaaca991ad73449bd26be1d463553e9b9784f1f81c576c6ea58203889a127c1ba39cc9c601cec080eef1da3afb2ec82bfb482206e0783",
		"cae3e41f01cce588747f53badc528fe46cd9e4307351017c1410d98912d23d55",
	},
}

// PresetBLS12381 is the name of the Type-3 (asymmetric) preset: the
// BLS12-381 pairing curve, ~128-bit security, an order of magnitude
// faster than SS1024 at a higher security level. Constructions that
// need pairing symmetry (multi-server, HIBE/ID-TRE) do not run on it.
const PresetBLS12381 = "BLS12-381"

var (
	presetMu    sync.Mutex
	presetCache = map[string]*Set{}
)

// Preset returns the named embedded parameter set, building and caching
// it on first use. Known names: Test160, SS512, SS1024, SS1536,
// BLS12-381.
func Preset(name string) (*Set, error) {
	presetMu.Lock()
	defer presetMu.Unlock()
	if s, ok := presetCache[name]; ok {
		return s, nil
	}
	if name == PresetBLS12381 {
		s := fromBLS12381(name)
		presetCache[name] = s
		return s, nil
	}
	primes, ok := presetPrimes[name]
	if !ok {
		return nil, fmt.Errorf("params: unknown preset %q (have %v)", name, PresetNames())
	}
	p, ok1 := new(big.Int).SetString(primes[0], 16)
	q, ok2 := new(big.Int).SetString(primes[1], 16)
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("params: corrupt preset %q", name)
	}
	s, err := FromPQ(name, p, q)
	if err != nil {
		return nil, fmt.Errorf("params: building preset %q: %w", name, err)
	}
	presetCache[name] = s
	return s, nil
}

// MustPreset is Preset for known-good names; it panics on error and is
// intended for tests and examples.
func MustPreset(name string) *Set {
	s, err := Preset(name)
	if err != nil {
		panic(err)
	}
	return s
}

// PresetNames lists the embedded presets in sorted order.
func PresetNames() []string {
	names := make([]string, 0, len(presetPrimes)+1)
	for n := range presetPrimes {
		names = append(names, n)
	}
	names = append(names, PresetBLS12381)
	sort.Strings(names)
	return names
}

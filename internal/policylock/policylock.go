// Package policylock implements the generalisation sketched in paper
// §5.3.2: the time server becomes a witness that signs arbitrary
// condition strings ("It is an emergency", "Task X is complete"), and a
// ciphertext can only be opened by the designated receiver once the
// witness has attested the conditions the sender chose.
//
// Timed release is the special case of a single condition "it is now T".
// This package extends the idea to monotone policies in disjunctive
// normal form — an OR over AND-clauses:
//
//   - an AND clause is satisfied by aggregating the attestations of all
//     its conditions into one point Σ s·H1(cᵢ) = s·Σ H1(cᵢ) (same-key
//     BLS aggregation), which plugs into the pairing exactly like a
//     single key update;
//   - OR is handled with one ciphertext header per clause, all
//     encapsulating the same message key.
package policylock

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"timedrelease/internal/backend"
	"timedrelease/internal/core"
	"timedrelease/internal/curve"
	"timedrelease/internal/pairing"
	"timedrelease/internal/params"
	"timedrelease/internal/rohash"
)

// ConditionDomain is the H1 domain tag for witness conditions, distinct
// from time labels so a time update can never double as an attestation.
const ConditionDomain = "policy-condition"

// Scheme binds the policy-lock algorithms to a parameter set.
type Scheme struct {
	Set *params.Set
}

// NewScheme returns a policy-lock instance.
func NewScheme(set *params.Set) *Scheme { return &Scheme{Set: set} }

// Attestation is the witness's signature s·H1(condition) — the
// policy-lock analogue of a time-bound key update.
type Attestation struct {
	Condition string
	Point     curve.Point
}

// Attest produces the witness's attestation that condition holds. As
// with time updates, the witness publishes it once for all users.
func (sc *Scheme) Attest(witness *core.ServerKeyPair, condition string) Attestation {
	h := sc.Set.Curve.HashToGroup(ConditionDomain, []byte(condition))
	return Attestation{Condition: condition, Point: sc.Set.Curve.ScalarMult(witness.S, h)}
}

// VerifyAttestation checks ê(G, att) = ê(sG, H1(condition)).
func (sc *Scheme) VerifyAttestation(wpub core.ServerPublicKey, att Attestation) bool {
	if att.Point.IsInfinity() || !sc.Set.Curve.InSubgroup(att.Point) {
		return false
	}
	h := sc.Set.Curve.HashToGroup(ConditionDomain, []byte(att.Condition))
	return sc.Set.Pairing.SamePairing(wpub.G, att.Point, wpub.SG, h)
}

// Policy is a monotone access structure in disjunctive normal form:
// the message unlocks when every condition of at least one clause has
// been attested.
type Policy struct {
	Clauses [][]string
}

// ParsePolicy parses a policy expression of the form
//
//	"cond1 & cond2 | cond3"
//
// where '&' binds tighter than '|'. Conditions are trimmed verbatim
// strings; empty conditions and empty clauses are rejected.
func ParsePolicy(expr string) (Policy, error) {
	var p Policy
	for _, clause := range strings.Split(expr, "|") {
		var conds []string
		for _, c := range strings.Split(clause, "&") {
			c = strings.TrimSpace(c)
			if c == "" {
				return Policy{}, fmt.Errorf("policylock: empty condition in %q", expr)
			}
			conds = append(conds, c)
		}
		p.Clauses = append(p.Clauses, conds)
	}
	if len(p.Clauses) == 0 {
		return Policy{}, errors.New("policylock: empty policy")
	}
	return p, nil
}

// String renders the policy in the ParsePolicy syntax.
func (p Policy) String() string {
	clauses := make([]string, len(p.Clauses))
	for i, c := range p.Clauses {
		clauses[i] = strings.Join(c, " & ")
	}
	return strings.Join(clauses, " | ")
}

// validate rejects structurally empty policies.
func (p Policy) validate() error {
	if len(p.Clauses) == 0 {
		return errors.New("policylock: policy has no clauses")
	}
	for _, c := range p.Clauses {
		if len(c) == 0 {
			return errors.New("policylock: policy has an empty clause")
		}
		for _, cond := range c {
			if cond == "" {
				return errors.New("policylock: policy has an empty condition")
			}
		}
	}
	return nil
}

// ClauseHeader encapsulates the message key for one AND clause.
type ClauseHeader struct {
	U    curve.Point // rⱼ·G
	Wrap []byte      // κ ⊕ H2(Kⱼ)
}

// Ciphertext is a policy-locked message: the (public) policy, one
// header per clause, and the masked payload.
type Ciphertext struct {
	Policy  Policy
	Headers []ClauseHeader
	V       []byte // M ⊕ Expand(κ)
}

// keyLen is the length of the inner message key κ.
const keyLen = 32

// Encrypt locks msg under the policy for the receiver with TRE public
// key upub (the receiver's private key is needed in addition to the
// attestations — the "extra lock layer" of §5.3.2 / [13]).
func (sc *Scheme) Encrypt(rng io.Reader, wpub core.ServerPublicKey, upub core.UserPublicKey, policy Policy, msg []byte) (*Ciphertext, error) {
	if sc.Set.Asymmetric() {
		return nil, backend.ErrSymmetricOnly
	}
	if err := policy.validate(); err != nil {
		return nil, err
	}
	tre := core.NewScheme(sc.Set)
	if !tre.VerifyUserPublicKey(wpub, upub) {
		return nil, core.ErrInvalidPublicKey
	}
	if rng == nil {
		rng = rand.Reader
	}
	kappa := make([]byte, keyLen)
	if _, err := io.ReadFull(rng, kappa); err != nil {
		return nil, fmt.Errorf("policylock: sampling message key: %w", err)
	}
	c := sc.Set.Curve
	ct := &Ciphertext{
		Policy: policy,
		V:      rohash.XOR(msg, rohash.Expand("PL-DEM", kappa, len(msg))),
	}
	for _, clause := range policy.Clauses {
		r, err := c.RandScalar(rng)
		if err != nil {
			return nil, fmt.Errorf("policylock: sampling clause randomness: %w", err)
		}
		hsum := sc.clauseHashSum(clause)
		k := sc.Set.Pairing.Pair(c.ScalarMult(r, upub.ASG), hsum)
		ct.Headers = append(ct.Headers, ClauseHeader{
			U:    c.ScalarMult(r, wpub.G),
			Wrap: rohash.XOR(kappa, sc.mask(k, keyLen)),
		})
	}
	return ct, nil
}

// Decrypt opens the ciphertext given the receiver's TRE key pair and
// any set of verified attestations. It finds the first clause whose
// conditions are all attested, aggregates those attestations, and
// decapsulates:
//
//	K'ⱼ = ê(a·Uⱼ, Σ s·H1(cᵢ)) = ê(G, ΣH1(cᵢ))^{rⱼ·a·s} = Kⱼ.
//
// It returns ErrPolicyUnsatisfied when no clause is fully attested.
func (sc *Scheme) Decrypt(upriv *core.UserKeyPair, atts []Attestation, ct *Ciphertext) ([]byte, error) {
	if sc.Set.Asymmetric() {
		return nil, backend.ErrSymmetricOnly
	}
	if ct == nil || len(ct.Headers) != len(ct.Policy.Clauses) {
		return nil, core.ErrInvalidCiphertext
	}
	have := make(map[string]curve.Point, len(atts))
	for _, a := range atts {
		have[a.Condition] = a.Point
	}
	c := sc.Set.Curve
	for j, clause := range ct.Policy.Clauses {
		agg, ok := aggregateClause(c, clause, have)
		if !ok {
			continue
		}
		hdr := ct.Headers[j]
		if !c.IsOnCurve(hdr.U) || len(hdr.Wrap) != keyLen {
			return nil, core.ErrInvalidCiphertext
		}
		k := sc.Set.Pairing.Pair(c.ScalarMult(upriv.A, hdr.U), agg)
		kappa := rohash.XOR(hdr.Wrap, sc.mask(k, keyLen))
		return rohash.XOR(ct.V, rohash.Expand("PL-DEM", kappa, len(ct.V))), nil
	}
	return nil, ErrPolicyUnsatisfied
}

// ErrPolicyUnsatisfied is returned when the supplied attestations do not
// cover any clause of the ciphertext's policy.
var ErrPolicyUnsatisfied = errors.New("policylock: no policy clause is fully attested")

// SatisfiedClause reports the index of the first clause covered by the
// given attested conditions, or -1.
func (p Policy) SatisfiedClause(conditions []string) int {
	have := map[string]bool{}
	for _, c := range conditions {
		have[c] = true
	}
	for j, clause := range p.Clauses {
		ok := true
		for _, c := range clause {
			if !have[c] {
				ok = false
				break
			}
		}
		if ok {
			return j
		}
	}
	return -1
}

// Conditions returns the sorted set of all conditions mentioned by the
// policy.
func (p Policy) Conditions() []string {
	set := map[string]bool{}
	for _, clause := range p.Clauses {
		for _, c := range clause {
			set[c] = true
		}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// aggregateClause sums the attestation points for every condition of
// the clause, deduplicating repeated conditions (a condition listed
// twice still contributes once, matching clauseHashSum).
func aggregateClause(c *curve.Curve, clause []string, have map[string]curve.Point) (curve.Point, bool) {
	acc := curve.Infinity()
	seen := map[string]bool{}
	for _, cond := range clause {
		if seen[cond] {
			continue
		}
		seen[cond] = true
		pt, ok := have[cond]
		if !ok {
			return curve.Point{}, false
		}
		acc = c.Add(acc, pt)
	}
	return acc, true
}

// clauseHashSum computes Σ H1(cᵢ) over the deduplicated clause.
func (sc *Scheme) clauseHashSum(clause []string) curve.Point {
	acc := curve.Infinity()
	seen := map[string]bool{}
	for _, cond := range clause {
		if seen[cond] {
			continue
		}
		seen[cond] = true
		acc = sc.Set.Curve.Add(acc, sc.Set.Curve.HashToGroup(ConditionDomain, []byte(cond)))
	}
	return acc
}

// mask is the scheme's H2 expander.
func (sc *Scheme) mask(k pairing.GT, n int) []byte {
	return rohash.Expand("PL-H2", sc.Set.Pairing.E2.Bytes(k), n)
}

// Threshold builds the k-of-n monotone policy over the given conditions
// as its DNF expansion: one AND clause per k-subset. Useful sizes only —
// the clause count is C(n, k), and the constructor refuses expansions
// beyond 256 clauses.
func Threshold(k int, conditions []string) (Policy, error) {
	n := len(conditions)
	if k < 1 || k > n {
		return Policy{}, fmt.Errorf("policylock: threshold %d of %d is not satisfiable", k, n)
	}
	var p Policy
	var build func(start int, cur []string) error
	build = func(start int, cur []string) error {
		if len(cur) == k {
			p.Clauses = append(p.Clauses, append([]string(nil), cur...))
			if len(p.Clauses) > 256 {
				return errors.New("policylock: threshold expansion exceeds 256 clauses")
			}
			return nil
		}
		for i := start; i < n; i++ {
			if err := build(i+1, append(cur, conditions[i])); err != nil {
				return err
			}
		}
		return nil
	}
	if err := build(0, nil); err != nil {
		return Policy{}, err
	}
	if err := p.validate(); err != nil {
		return Policy{}, err
	}
	return p, nil
}

package policylock

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"timedrelease/internal/core"
	"timedrelease/internal/params"
)

type env struct {
	sc      *Scheme
	tre     *core.Scheme
	witness *core.ServerKeyPair
	user    *core.UserKeyPair
}

func newEnv(t *testing.T) *env {
	t.Helper()
	set := params.MustPreset("Test160")
	sc := NewScheme(set)
	tre := core.NewScheme(set)
	witness, err := tre.ServerKeyGen(nil)
	if err != nil {
		t.Fatalf("ServerKeyGen: %v", err)
	}
	user, err := tre.UserKeyGen(witness.Pub, nil)
	if err != nil {
		t.Fatalf("UserKeyGen: %v", err)
	}
	return &env{sc: sc, tre: tre, witness: witness, user: user}
}

func (e *env) attest(conds ...string) []Attestation {
	atts := make([]Attestation, len(conds))
	for i, c := range conds {
		atts[i] = e.sc.Attest(e.witness, c)
	}
	return atts
}

func TestParsePolicy(t *testing.T) {
	tests := []struct {
		expr    string
		want    string
		wantErr bool
	}{
		{expr: "emergency", want: "emergency"},
		{expr: "a & b", want: "a & b"},
		{expr: "a & b | c", want: "a & b | c"},
		{expr: "  a  &  b  |  c  ", want: "a & b | c"},
		{expr: "a &  | c", wantErr: true},
		{expr: "", wantErr: true},
		{expr: "|", wantErr: true},
	}
	for _, tc := range tests {
		p, err := ParsePolicy(tc.expr)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParsePolicy(%q): want error, got %q", tc.expr, p)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", tc.expr, err)
			continue
		}
		if p.String() != tc.want {
			t.Errorf("ParsePolicy(%q) = %q, want %q", tc.expr, p, tc.want)
		}
	}
}

func TestSingleConditionRoundTrip(t *testing.T) {
	e := newEnv(t)
	policy, err := ParsePolicy("task X completed")
	if err != nil {
		t.Fatalf("ParsePolicy: %v", err)
	}
	msg := []byte("released on completion")
	ct, err := e.sc.Encrypt(nil, e.witness.Pub, e.user.Pub, policy, msg)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	got, err := e.sc.Decrypt(e.user, e.attest("task X completed"), ct)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("round trip mismatch")
	}
}

func TestANDRequiresAllConditions(t *testing.T) {
	e := newEnv(t)
	policy, err := ParsePolicy("board approved & audit passed")
	if err != nil {
		t.Fatalf("ParsePolicy: %v", err)
	}
	msg := []byte("both or nothing")
	ct, err := e.sc.Encrypt(nil, e.witness.Pub, e.user.Pub, policy, msg)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	if _, err := e.sc.Decrypt(e.user, e.attest("board approved"), ct); !errors.Is(err, ErrPolicyUnsatisfied) {
		t.Fatalf("one of two conditions: err=%v, want ErrPolicyUnsatisfied", err)
	}
	got, err := e.sc.Decrypt(e.user, e.attest("board approved", "audit passed"), ct)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("round trip mismatch with both attestations")
	}
}

func TestORAnyClauseSuffices(t *testing.T) {
	e := newEnv(t)
	policy, err := ParsePolicy("emergency | ceo approves & cfo approves")
	if err != nil {
		t.Fatalf("ParsePolicy: %v", err)
	}
	msg := []byte("break glass")
	ct, err := e.sc.Encrypt(nil, e.witness.Pub, e.user.Pub, policy, msg)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	// Clause 1 alone.
	got, err := e.sc.Decrypt(e.user, e.attest("emergency"), ct)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("emergency clause: got %q err %v", got, err)
	}
	// Clause 2 alone.
	got, err = e.sc.Decrypt(e.user, e.attest("ceo approves", "cfo approves"), ct)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("approval clause: got %q err %v", got, err)
	}
	// Partial clause 2 only.
	if _, err := e.sc.Decrypt(e.user, e.attest("ceo approves"), ct); !errors.Is(err, ErrPolicyUnsatisfied) {
		t.Fatalf("partial clause: err=%v, want ErrPolicyUnsatisfied", err)
	}
}

func TestReceiverKeyStillRequired(t *testing.T) {
	// The "extra lock layer": attestations alone do not open the message
	// — the designated receiver's private key is also needed.
	e := newEnv(t)
	policy, _ := ParsePolicy("cond")
	msg := []byte("receiver-bound")
	ct, err := e.sc.Encrypt(nil, e.witness.Pub, e.user.Pub, policy, msg)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	other, err := e.tre.UserKeyGen(e.witness.Pub, nil)
	if err != nil {
		t.Fatalf("UserKeyGen: %v", err)
	}
	got, err := e.sc.Decrypt(other, e.attest("cond"), ct)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if bytes.Equal(got, msg) {
		t.Fatal("another user's key must not open the lock")
	}
}

func TestForgedAttestationRejectedAndUseless(t *testing.T) {
	e := newEnv(t)
	// Forged attestation: random point.
	forged := Attestation{Condition: "cond", Point: e.sc.Set.G}
	if e.sc.VerifyAttestation(e.witness.Pub, forged) {
		t.Fatal("forged attestation must not verify")
	}
	genuine := e.sc.Attest(e.witness, "cond")
	if !e.sc.VerifyAttestation(e.witness.Pub, genuine) {
		t.Fatal("genuine attestation must verify")
	}
	// Attestation for the wrong condition doesn't decrypt.
	policy, _ := ParsePolicy("cond")
	msg := []byte("m")
	ct, err := e.sc.Encrypt(nil, e.witness.Pub, e.user.Pub, policy, msg)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	wrong := e.sc.Attest(e.witness, "other cond")
	wrong.Condition = "cond" // adversarial relabeling
	got, err := e.sc.Decrypt(e.user, []Attestation{wrong}, ct)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if bytes.Equal(got, msg) {
		t.Fatal("relabelled attestation must not decrypt")
	}
}

func TestTimeUpdateCannotServeAsAttestation(t *testing.T) {
	// Domain separation: a time-bound key update for label L must be
	// useless for a policy condition with the same string L.
	e := newEnv(t)
	policy, _ := ParsePolicy("2026-07-05T12:00:00Z")
	msg := []byte("needs a policy attestation, not a time update")
	ct, err := e.sc.Encrypt(nil, e.witness.Pub, e.user.Pub, policy, msg)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	upd := e.tre.IssueUpdate(e.witness, "2026-07-05T12:00:00Z")
	crossover := Attestation{Condition: "2026-07-05T12:00:00Z", Point: upd.Point}
	got, err := e.sc.Decrypt(e.user, []Attestation{crossover}, ct)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if bytes.Equal(got, msg) {
		t.Fatal("a time update must not satisfy a policy condition")
	}
}

func TestDuplicateConditionInClause(t *testing.T) {
	e := newEnv(t)
	policy := Policy{Clauses: [][]string{{"x", "x", "y"}}}
	msg := []byte("dedup")
	ct, err := e.sc.Encrypt(nil, e.witness.Pub, e.user.Pub, policy, msg)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	got, err := e.sc.Decrypt(e.user, e.attest("x", "y"), ct)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("duplicate conditions must be deduplicated: got %q err %v", got, err)
	}
}

func TestSatisfiedClauseAndConditions(t *testing.T) {
	p, _ := ParsePolicy("a & b | c")
	if got := p.SatisfiedClause([]string{"c"}); got != 1 {
		t.Fatalf("SatisfiedClause(c) = %d, want 1", got)
	}
	if got := p.SatisfiedClause([]string{"a"}); got != -1 {
		t.Fatalf("SatisfiedClause(a) = %d, want -1", got)
	}
	if got := p.SatisfiedClause([]string{"b", "a"}); got != 0 {
		t.Fatalf("SatisfiedClause(a,b) = %d, want 0", got)
	}
	conds := p.Conditions()
	want := []string{"a", "b", "c"}
	if len(conds) != len(want) {
		t.Fatalf("Conditions() = %v", conds)
	}
	for i := range want {
		if conds[i] != want[i] {
			t.Fatalf("Conditions() = %v, want %v", conds, want)
		}
	}
}

func TestThresholdPolicy(t *testing.T) {
	conds := []string{"a", "b", "c", "d"}
	p, err := Threshold(2, conds)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Clauses) != 6 { // C(4,2)
		t.Fatalf("clause count %d, want 6", len(p.Clauses))
	}
	// Any 2 conditions satisfy; any 1 does not.
	if p.SatisfiedClause([]string{"b", "d"}) < 0 {
		t.Fatal("2 of 4 must satisfy")
	}
	if p.SatisfiedClause([]string{"c"}) >= 0 {
		t.Fatal("1 of 4 must not satisfy")
	}
	// End-to-end.
	e := newEnv(t)
	msg := []byte("any two approvals")
	ct, err := e.sc.Encrypt(nil, e.witness.Pub, e.user.Pub, p, msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.sc.Decrypt(e.user, e.attest("d", "a"), ct)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("2-of-4 decrypt: %q %v", got, err)
	}
	if _, err := e.sc.Decrypt(e.user, e.attest("d"), ct); !errors.Is(err, ErrPolicyUnsatisfied) {
		t.Fatalf("1-of-4: err=%v", err)
	}
	// Validation.
	if _, err := Threshold(0, conds); err == nil {
		t.Fatal("k=0 must fail")
	}
	if _, err := Threshold(5, conds); err == nil {
		t.Fatal("k>n must fail")
	}
	big := make([]string, 14)
	for i := range big {
		big[i] = fmt.Sprintf("c%d", i)
	}
	if _, err := Threshold(7, big); err == nil {
		t.Fatal("C(14,7)=3432 clauses must be refused")
	}
}

func TestPolicyCCAROundTripAndTamper(t *testing.T) {
	e := newEnv(t)
	policy, err := ParsePolicy("a & b | c")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("integrity-protected policy lock")
	ct, err := e.sc.EncryptCCA(nil, e.witness.Pub, e.user.Pub, policy, msg)
	if err != nil {
		t.Fatal(err)
	}
	// Opens via either clause.
	got, err := e.sc.DecryptCCA(e.witness.Pub, e.user, e.attest("c"), ct)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("clause c: %q %v", got, err)
	}
	got, err = e.sc.DecryptCCA(e.witness.Pub, e.user, e.attest("a", "b"), ct)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("clause ab: %q %v", got, err)
	}
	// Unsatisfied.
	if _, err := e.sc.DecryptCCA(e.witness.Pub, e.user, e.attest("a"), ct); !errors.Is(err, ErrPolicyUnsatisfied) {
		t.Fatalf("partial: err=%v", err)
	}

	// Tampering: payload flip.
	mutate := func(f func(*CCACiphertext)) error {
		c2, err := e.sc.EncryptCCA(nil, e.witness.Pub, e.user.Pub, policy, msg)
		if err != nil {
			t.Fatal(err)
		}
		f(c2)
		_, err = e.sc.DecryptCCA(e.witness.Pub, e.user, e.attest("c"), c2)
		return err
	}
	if err := mutate(func(c *CCACiphertext) { c.V[0] ^= 1 }); !errors.Is(err, core.ErrAuthFailed) {
		t.Fatalf("payload flip: err=%v", err)
	}
	if err := mutate(func(c *CCACiphertext) { c.Headers[1].Wrap[0] ^= 1 }); !errors.Is(err, core.ErrAuthFailed) {
		t.Fatalf("wrap flip: err=%v", err)
	}
	if err := mutate(func(c *CCACiphertext) { c.Headers[0].U = e.sc.Set.G }); !errors.Is(err, core.ErrAuthFailed) {
		t.Fatalf("header point swap: err=%v", err)
	}
	if err := mutate(func(c *CCACiphertext) {
		// Swap the two clause headers: classic mix-and-match.
		c.Headers[0], c.Headers[1] = c.Headers[1], c.Headers[0]
	}); !errors.Is(err, core.ErrAuthFailed) {
		t.Fatalf("header swap: err=%v", err)
	}
	// Policy rewrite (weaken "a & b" to "a") must be caught.
	if err := mutate(func(c *CCACiphertext) { c.Policy.Clauses[0] = []string{"a"} }); err == nil {
		t.Fatal("policy rewrite must be rejected")
	}
}

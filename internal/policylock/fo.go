package policylock

import (
	"crypto/rand"
	"crypto/subtle"
	"fmt"
	"io"
	"math/big"

	"timedrelease/internal/backend"
	"timedrelease/internal/core"
	"timedrelease/internal/curve"
	"timedrelease/internal/rohash"
)

// CCACiphertext is the Fujisaki–Okamoto-style policy-lock ciphertext:
// all clause randomness is derived from (κ, M, policy, clause index), so
// a decryptor can RE-ENCRYPT the whole ciphertext from what it recovers
// and reject any tampering — header substitution between clauses, policy
// rewrites, payload flips, everything.
//
//	rⱼ = H3(κ ‖ M ‖ policy ‖ j)
//	headerⱼ = ⟨rⱼ·G, κ ⊕ H2(Kⱼ)⟩,  Kⱼ = ê(rⱼ·asG, Σ H1(cᵢ))
//	V = M ⊕ H4(κ)
type CCACiphertext struct {
	Policy  Policy
	Headers []ClauseHeader
	V       []byte
}

// EncryptCCA locks msg under the policy with chosen-ciphertext
// integrity.
func (sc *Scheme) EncryptCCA(rng io.Reader, wpub core.ServerPublicKey, upub core.UserPublicKey, policy Policy, msg []byte) (*CCACiphertext, error) {
	if sc.Set.Asymmetric() {
		return nil, backend.ErrSymmetricOnly
	}
	if err := policy.validate(); err != nil {
		return nil, err
	}
	tre := core.NewScheme(sc.Set)
	if !tre.VerifyUserPublicKey(wpub, upub) {
		return nil, core.ErrInvalidPublicKey
	}
	if rng == nil {
		rng = rand.Reader
	}
	kappa := make([]byte, keyLen)
	if _, err := io.ReadFull(rng, kappa); err != nil {
		return nil, fmt.Errorf("policylock: sampling message key: %w", err)
	}
	ct := &CCACiphertext{
		Policy: policy,
		V:      rohash.XOR(msg, rohash.Expand("PL-FO-DEM", kappa, len(msg))),
	}
	ct.Headers = sc.foHeaders(kappa, ct.V, wpub, upub, policy)
	return ct, nil
}

// foHeaders deterministically derives every clause header from
// (κ, masked payload, policy). Deriving from the MASKED payload V
// rather than M lets the decryptor recheck headers before trusting the
// recovered plaintext, and binds the headers to the exact ciphertext
// body.
func (sc *Scheme) foHeaders(kappa, v []byte, wpub core.ServerPublicKey, upub core.UserPublicKey, policy Policy) []ClauseHeader {
	c := sc.Set.Curve
	headers := make([]ClauseHeader, 0, len(policy.Clauses))
	for j, clause := range policy.Clauses {
		r := sc.foClauseScalar(kappa, v, policy, j)
		hsum := sc.clauseHashSum(clause)
		k := sc.Set.Pairing.Pair(c.ScalarMult(r, upub.ASG), hsum)
		headers = append(headers, ClauseHeader{
			U:    c.ScalarMult(r, wpub.G),
			Wrap: rohash.XOR(kappa, sc.mask(k, keyLen)),
		})
	}
	return headers
}

// DecryptCCA opens a clause the attestations satisfy, then re-derives
// every header from the recovered κ and rejects on any mismatch. The
// decryptor needs their own public key for the recheck; it is taken
// from upriv.Pub.
func (sc *Scheme) DecryptCCA(wpub core.ServerPublicKey, upriv *core.UserKeyPair, atts []Attestation, ct *CCACiphertext) ([]byte, error) {
	if sc.Set.Asymmetric() {
		return nil, backend.ErrSymmetricOnly
	}
	if ct == nil || len(ct.Headers) != len(ct.Policy.Clauses) {
		return nil, core.ErrInvalidCiphertext
	}
	have := make(map[string]curve.Point, len(atts))
	for _, a := range atts {
		have[a.Condition] = a.Point
	}
	c := sc.Set.Curve
	for j, clause := range ct.Policy.Clauses {
		agg, ok := aggregateClause(c, clause, have)
		if !ok {
			continue
		}
		hdr := ct.Headers[j]
		if !c.IsOnCurve(hdr.U) || len(hdr.Wrap) != keyLen {
			return nil, core.ErrInvalidCiphertext
		}
		k := sc.Set.Pairing.Pair(c.ScalarMult(upriv.A, hdr.U), agg)
		kappa := rohash.XOR(hdr.Wrap, sc.mask(k, keyLen))
		if !sc.foRecheck(kappa, wpub, upriv.Pub, ct) {
			return nil, core.ErrAuthFailed
		}
		return rohash.XOR(ct.V, rohash.Expand("PL-FO-DEM", kappa, len(ct.V))), nil
	}
	return nil, ErrPolicyUnsatisfied
}

// foRecheck re-encrypts all headers from κ and compares them (points
// exactly, wraps in constant time).
func (sc *Scheme) foRecheck(kappa []byte, wpub core.ServerPublicKey, upub core.UserPublicKey, ct *CCACiphertext) bool {
	want := sc.foHeaders(kappa, ct.V, wpub, upub, ct.Policy)
	if len(want) != len(ct.Headers) {
		return false
	}
	ok := true
	for j := range want {
		if !sc.Set.Curve.Equal(want[j].U, ct.Headers[j].U) {
			ok = false
		}
		if subtle.ConstantTimeCompare(want[j].Wrap, ct.Headers[j].Wrap) != 1 {
			ok = false
		}
	}
	return ok
}

// foClauseScalar derives rⱼ = H3(κ ‖ V ‖ policy ‖ j) ∈ Z_q^*.
func (sc *Scheme) foClauseScalar(kappa, v []byte, policy Policy, j int) *big.Int {
	jb := []byte{byte(j >> 8), byte(j)}
	input := rohash.Concat(kappa, v, []byte(policy.String()), jb)
	return rohash.ToScalarNonZero("PL-FO-H3", input, sc.Set.Q)
}

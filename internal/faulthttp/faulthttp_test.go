package faulthttp

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"syscall"
	"testing"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/hello", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "hello, world")
	})
	mux.HandleFunc("/other", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "other")
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, c *http.Client, url string) (string, int, error) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return string(body), resp.StatusCode, err
}

func TestWindowedError(t *testing.T) {
	ts := testServer(t)
	ft := New(ts.Client().Transport,
		&Rule{PathContains: "/hello", From: 1, To: 2, Err: syscall.ECONNRESET})
	c := ft.Client()

	for i := 1; i <= 2; i++ {
		if _, _, err := get(t, c, ts.URL+"/hello"); !errors.Is(err, syscall.ECONNRESET) {
			t.Fatalf("request %d: err = %v, want ECONNRESET", i, err)
		}
	}
	body, status, err := get(t, c, ts.URL+"/hello")
	if err != nil || status != 200 || body != "hello, world" {
		t.Fatalf("request 3 = (%q, %d, %v), want clean pass-through", body, status, err)
	}
	// Other paths never match the rule.
	if _, _, err := get(t, c, ts.URL+"/other"); err != nil {
		t.Fatalf("unmatched path hit the fault: %v", err)
	}
	if got := ft.Requests(); got != 4 {
		t.Fatalf("Requests() = %d, want 4", got)
	}
}

func TestSyntheticStatus(t *testing.T) {
	ts := testServer(t)
	ft := New(ts.Client().Transport, &Rule{From: 1, To: 1, Status: 503})
	c := ft.Client()
	if _, status, err := get(t, c, ts.URL+"/hello"); err != nil || status != 503 {
		t.Fatalf("got (%d, %v), want synthetic 503", status, err)
	}
	if _, status, err := get(t, c, ts.URL+"/hello"); err != nil || status != 200 {
		t.Fatalf("got (%d, %v), want 200 after window", status, err)
	}
}

func TestTruncatedBody(t *testing.T) {
	ts := testServer(t)
	ft := New(ts.Client().Transport, &Rule{PathContains: "/hello", TruncateTo: 5})
	body, status, err := get(t, ft.Client(), ts.URL+"/hello")
	if status != 200 {
		t.Fatalf("status = %d, want 200", status)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want io.ErrUnexpectedEOF", err)
	}
	if body != "hello" {
		t.Fatalf("body = %q, want the first 5 bytes", body)
	}
}

// Package faulthttp injects transport faults into an http.RoundTripper
// for tests: errors, latency, and truncated response bodies, targeted
// by URL path substring and by request count. It exists to exercise the
// client's retry and degraded-catch-up paths against the failure modes
// a real deployment sees — a server restarting mid-stream, a connection
// cut halfway through a body, a load balancer returning 503s — without
// flaky timing tricks.
//
// A Transport holds an ordered list of rules. Each request walks the
// rules; the first rule whose path matches and whose occurrence window
// covers this match fires. A fired rule applies its latency first, then
// either fails the round trip, substitutes a synthetic status, or
// forwards to the base transport (truncating the response body if asked
// to). Unmatched requests pass straight through.
package faulthttp

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Rule is one fault to inject. The zero effect (no Err, no Status, no
// TruncateTo) with a Latency just delays matching requests.
type Rule struct {
	// PathContains matches requests whose URL path contains this
	// substring; empty matches every request.
	PathContains string

	// From and To bound WHICH matches fire, counting matches of this
	// rule from 1. From 0 means 1; To 0 means unbounded. E.g.
	// From=1,To=2 fails the first two matching requests and lets the
	// third through — exactly the shape a retry test needs.
	From, To int

	// Latency delays the request before any other effect (and respects
	// the request context, returning its error if cancelled first).
	Latency time.Duration

	// Err, when non-nil, fails the round trip with this error (after
	// Latency). Models a refused or dropped connection.
	Err error

	// Status, when non-zero, short-circuits with a synthetic response
	// of this status and an empty body. Models a proxy or a server
	// under shed (503/429) without needing the server to cooperate.
	Status int

	// TruncateTo, when > 0, forwards the request but cuts the response
	// body after this many bytes; the reader then returns
	// io.ErrUnexpectedEOF. Models a connection cut mid-body.
	TruncateTo int

	seen int // matches so far (guarded by Transport.mu)
}

// fires reports whether this match (the n-th, 1-based) is inside the
// rule's occurrence window.
func (r *Rule) fires(n int) bool {
	from := r.From
	if from == 0 {
		from = 1
	}
	return n >= from && (r.To == 0 || n <= r.To)
}

// Transport is a fault-injecting http.RoundTripper. Safe for
// concurrent use.
type Transport struct {
	// Base performs the real round trips; nil means
	// http.DefaultTransport.
	Base http.RoundTripper

	mu       sync.Mutex
	rules    []*Rule
	requests int
}

// New returns a Transport over base with the given rules.
func New(base http.RoundTripper, rules ...*Rule) *Transport {
	return &Transport{Base: base, rules: rules}
}

// Add appends a rule (its occurrence counter starts now).
func (t *Transport) Add(r *Rule) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rules = append(t.rules, r)
}

// Requests returns how many round trips have been attempted through
// this transport (matched or not) — the assertion hook for "the client
// retried exactly N times".
func (t *Transport) Requests() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.requests
}

// Client wraps the transport in an http.Client.
func (t *Transport) Client() *http.Client { return &http.Client{Transport: t} }

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	t.requests++
	var fired *Rule
	for _, r := range t.rules {
		if !strings.Contains(req.URL.Path, r.PathContains) {
			continue
		}
		r.seen++
		if fired == nil && r.fires(r.seen) {
			fired = r
		}
	}
	t.mu.Unlock()

	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	if fired == nil {
		return base.RoundTrip(req)
	}
	if fired.Latency > 0 {
		timer := time.NewTimer(fired.Latency)
		defer timer.Stop()
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}
	if fired.Err != nil {
		return nil, fmt.Errorf("faulthttp: %s: %w", req.URL.Path, fired.Err)
	}
	if fired.Status != 0 {
		return &http.Response{
			StatusCode: fired.Status,
			Status:     http.StatusText(fired.Status),
			Proto:      req.Proto,
			ProtoMajor: req.ProtoMajor,
			ProtoMinor: req.ProtoMinor,
			Header:     make(http.Header),
			Body:       http.NoBody,
			Request:    req,
		}, nil
	}
	resp, err := base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if fired.TruncateTo > 0 {
		resp.Body = &truncatedBody{r: resp.Body, remain: fired.TruncateTo}
		resp.ContentLength = -1
		resp.Header.Del("Content-Length")
	}
	return resp, nil
}

// truncatedBody yields at most remain bytes of the underlying body and
// then reports io.ErrUnexpectedEOF — the error a cut connection
// produces mid-body.
type truncatedBody struct {
	r      io.ReadCloser
	remain int
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.r.Read(p)
	b.remain -= n
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.r.Close() }

// Package simnet provides deterministic server-cost accounting for the
// scalability experiments (E2, E9). Rather than inventing an abstract
// cost model, each scenario drives the REAL implementation of a server
// design through one epoch with N receivers and tallies what actually
// crossed the wire and what state the server actually holds:
//
//   - TRE (this paper): the server broadcasts ONE update, identical for
//     all receivers; per-user server state is zero.
//   - Mont et al. (BF-IBE time vault): the server extracts and
//     individually delivers a per-user key s·H1(ID‖T) every epoch.
//   - May's escrow agent: the server stores every plaintext message and
//     delivers each at release time.
//   - Rivest's offline key list: the server pre-publishes per-epoch
//     keys for the whole horizon.
package simnet

import (
	"fmt"
	"time"

	"timedrelease/internal/backend"
	"timedrelease/internal/baseline/bfibe"
	"timedrelease/internal/baseline/escrow"
	"timedrelease/internal/baseline/rivest"
	"timedrelease/internal/core"
	"timedrelease/internal/params"
	"timedrelease/internal/wire"
)

// Tally is the per-epoch server cost of one design.
type Tally struct {
	Design        string
	Receivers     int
	MessagesSent  int64 // distinct transmissions leaving the server
	BytesSent     int64 // payload bytes across those transmissions
	CryptoOps     int64 // signing/extraction operations performed
	StateBytes    int64 // server state attributable to this epoch's duty
	PerUserState  int64 // state the server keeps per registered user
	SecureChannel bool  // does delivery require a per-user secure channel?
	LearnsContent bool  // does the server see message plaintext?
}

// String renders a one-line summary.
func (t Tally) String() string {
	return fmt.Sprintf("%s n=%d: msgs=%d bytes=%d ops=%d state=%dB/user=%dB secure=%v plaintext=%v",
		t.Design, t.Receivers, t.MessagesSent, t.BytesSent, t.CryptoOps,
		t.StateBytes, t.PerUserState, t.SecureChannel, t.LearnsContent)
}

// TREEpoch runs one epoch of the paper's design: the server signs ONE
// update and broadcasts it; every receiver uses the same bytes.
func TREEpoch(set *params.Set, server *core.ServerKeyPair, label string, receivers int) Tally {
	sc := core.NewScheme(set)
	codec := wire.NewCodec(set)
	upd := sc.IssueUpdate(server, label)
	encoded := codec.MarshalKeyUpdate(upd)
	return Tally{
		Design:       "TRE (this paper)",
		Receivers:    receivers,
		MessagesSent: 1, // a single broadcast suffices (§5.3.1)
		BytesSent:    int64(len(encoded)),
		CryptoOps:    1, // one BLS signature per epoch, total
		StateBytes:   int64(len(encoded)),
		PerUserState: 0,
	}
}

// TREEpochUnicast is the pessimistic variant where no broadcast medium
// exists and the identical update is unicast to each receiver.
func TREEpochUnicast(set *params.Set, server *core.ServerKeyPair, label string, receivers int) Tally {
	t := TREEpoch(set, server, label, receivers)
	t.Design = "TRE (unicast fallback)"
	t.MessagesSent = int64(receivers)
	t.BytesSent *= int64(receivers)
	return t
}

// MontIBEEpoch runs one epoch of the Mont et al. model: the server
// extracts s·H1(IDᵢ‖T) for EVERY registered user and must deliver each
// over a per-user secure channel.
func MontIBEEpoch(set *params.Set, master *bfibe.MasterKey, label string, receivers int) Tally {
	sc := bfibe.NewScheme(set)
	var bytes int64
	for i := 0; i < receivers; i++ {
		id := fmt.Sprintf("user-%d|%s", i, label)
		priv := sc.Extract(master, id)
		bytes += int64(set.B.PointLen(backend.G2))
		_ = priv
	}
	const idBytes = 32 // registered identity record per user
	return Tally{
		Design:        "Mont et al. (IBE key delivery)",
		Receivers:     receivers,
		MessagesSent:  int64(receivers),
		BytesSent:     bytes,
		CryptoOps:     int64(receivers),
		StateBytes:    int64(receivers) * idBytes,
		PerUserState:  idBytes,
		SecureChannel: true, // private keys must not leak in transit
	}
}

// EscrowEpoch runs one epoch of May's escrow agent: each receiver gets
// msgsPerUser messages of msgBytes escrowed during the epoch, then
// collected at release.
func EscrowEpoch(receivers, msgsPerUser, msgBytes int, releaseAt time.Time) Tally {
	agent := escrow.NewAgent()
	payload := make([]byte, msgBytes)
	for i := 0; i < receivers; i++ {
		for j := 0; j < msgsPerUser; j++ {
			agent.Deposit(escrow.Deposit{
				Sender:    fmt.Sprintf("sender-%d-%d", i, j),
				Recipient: fmt.Sprintf("user-%d", i),
				ReleaseAt: releaseAt,
				Message:   payload,
			})
		}
	}
	stored := agent.StoredBytes()
	var delivered int64
	for i := 0; i < receivers; i++ {
		msgs := agent.Collect(fmt.Sprintf("user-%d", i), releaseAt)
		for _, m := range msgs {
			delivered += int64(len(m))
		}
	}
	return Tally{
		Design:        "May (escrow agent)",
		Receivers:     receivers,
		MessagesSent:  int64(receivers * msgsPerUser),
		BytesSent:     delivered,
		CryptoOps:     0,
		StateBytes:    stored,
		PerUserState:  stored / int64(max(receivers, 1)),
		SecureChannel: true,
		LearnsContent: true, // the agent holds plaintexts
	}
}

// RivestHorizon measures the Rivest offline server's pre-publication
// cost for a horizon of `epochs` future epochs (independent of receiver
// count, but senders must fetch the whole list).
func RivestHorizon(set *params.Set, epochs int) (Tally, error) {
	srv := rivest.NewServer(set)
	if err := srv.ExtendHorizon(nil, epochs); err != nil {
		return Tally{}, err
	}
	return Tally{
		Design:       fmt.Sprintf("Rivest (offline list, horizon=%d)", epochs),
		Receivers:    0,
		MessagesSent: 1,
		BytesSent:    srv.PublishedKeyBytes(),
		CryptoOps:    int64(epochs),
		StateBytes:   srv.StoredKeyBytes(),
		PerUserState: 0,
	}, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

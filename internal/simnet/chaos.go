// Chaos harness: a deterministic fault-schedule driver for a k-of-N
// threshold beacon network. The cluster runs REAL member time servers
// (durable archives, HTTP surfaces, verifying clients) under a virtual
// clock that only the driver advances — no goroutine races, no test
// sleeps — while a scripted or seeded schedule of kill / restart /
// torn-archive / relay-partition events fires at round boundaries.
// Determinism is the point: the same schedule against the same cluster
// shape produces the same trace, so an acceptance test that survives a
// fault storm once survives it every time.

package simnet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"timedrelease/internal/archive"
	"timedrelease/internal/beacon"
	"timedrelease/internal/core"
	"timedrelease/internal/faulthttp"
	"timedrelease/internal/params"
	"timedrelease/internal/threshold"
	"timedrelease/internal/timeserver"
	"timedrelease/internal/wire"
)

// EventKind is one chaos action.
type EventKind int

const (
	// EvKill takes a member down: its archive file handle is closed
	// (as a crash would) and every request to it fails at the transport.
	EvKill EventKind = iota
	// EvRestart brings a killed member back: its archive is recovered
	// from disk (torn tails truncated, records re-verified against the
	// member key) and missed rounds are backfilled.
	EvRestart
	// EvTearArchive appends garbage to a down member's update log — the
	// torn tail a crash mid-append leaves behind.
	EvTearArchive
	// EvPartition cuts the relay from its upstream member.
	EvPartition
	// EvHeal reconnects the relay.
	EvHeal
)

func (k EventKind) String() string {
	switch k {
	case EvKill:
		return "kill"
	case EvRestart:
		return "restart"
	case EvTearArchive:
		return "tear-archive"
	case EvPartition:
		return "partition-relay"
	case EvHeal:
		return "heal-relay"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one scheduled fault, keyed to the round at whose start it
// fires. Member is the 1-based share index for member events and
// ignored for relay events.
type Event struct {
	Round  uint64
	Kind   EventKind
	Member int
}

// FaultSchedule is an ordered list of events. AdvanceToRound applies
// them in (round, list-position) order.
type FaultSchedule []Event

// ErrDown is what requests to a killed member fail with.
var ErrDown = errors.New("simnet: member is down")

// ErrPartitioned is what the relay's upstream requests fail with while
// partitioned.
var ErrPartitioned = errors.New("simnet: relay is partitioned from its upstream")

// gate fails round trips while its flag is up; otherwise it forwards.
type gate struct {
	cut  *atomic.Bool
	err  error
	base http.RoundTripper
}

func (g gate) RoundTrip(req *http.Request) (*http.Response, error) {
	if g.cut.Load() {
		return nil, g.err
	}
	return g.base.RoundTrip(req)
}

// swapHandler lets a member's HTTP surface survive server rebuilds: the
// httptest listener stays put while the handler behind it is swapped on
// restart.
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "down", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

// member is one threshold member: an ordinary time server over its
// share key, a durable archive directory, and a pinned verifying client
// behind a down-gate.
type member struct {
	index   int
	key     *core.ServerKeyPair
	dir     string
	srv     *timeserver.Server
	arch    *archive.Log
	handler *swapHandler
	ts      *httptest.Server
	down    atomic.Bool
	faults  *faulthttp.Transport
	client  *timeserver.Client
}

// relayNode fronts one member with a stateless relay whose upstream
// link can be partitioned.
type relayNode struct {
	member      int
	relay       *timeserver.Relay
	ts          *httptest.Server
	partitioned atomic.Bool
	client      *timeserver.Client // downstream consumer client via the relay
}

// ClusterConfig describes the network under test.
type ClusterConfig struct {
	Set *params.Set
	K   int
	N   int
	// Clock is the beacon round clock; its period is the members' epoch
	// granularity and its genesis is where the virtual clock starts.
	Clock beacon.Clock
	// Dir is the root for the members' durable archive directories.
	Dir string
	// RelayMember, when non-zero, puts that member behind a relay: the
	// quorum reaches it only through the relay's surface.
	RelayMember int
	// Schedule is the fault script.
	Schedule FaultSchedule
}

// Cluster is a running threshold beacon network under a fault schedule.
type Cluster struct {
	Set   *params.Set
	Setup *threshold.Setup
	Clock beacon.Clock
	K, N  int

	mu     sync.Mutex // guards now (read from member clock callbacks)
	now    time.Time
	events FaultSchedule
	cursor int
	next   uint64 // next round AdvanceToRound may be called with

	members map[int]*member
	relay   *relayNode
	trace   []string
}

// NewCluster deals a fresh k-of-n group and brings every member up at
// the round-0 boundary (nothing published yet — call AdvanceToRound).
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.K < 1 || cfg.N < cfg.K {
		return nil, fmt.Errorf("simnet: bad cluster shape %d-of-%d", cfg.K, cfg.N)
	}
	setup, err := threshold.Deal(cfg.Set, nil, cfg.K, cfg.N)
	if err != nil {
		return nil, err
	}
	events := append(FaultSchedule{}, cfg.Schedule...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].Round < events[j].Round })
	c := &Cluster{
		Set:     cfg.Set,
		Setup:   setup,
		Clock:   cfg.Clock,
		K:       cfg.K,
		N:       cfg.N,
		now:     cfg.Clock.Genesis(),
		events:  events,
		members: make(map[int]*member, cfg.N),
	}
	for _, share := range setup.Shares {
		m := &member{
			index:   share.Index,
			key:     threshold.ShardServerKey(cfg.Set, share),
			dir:     filepath.Join(cfg.Dir, fmt.Sprintf("member-%d", share.Index)),
			handler: &swapHandler{},
		}
		if err := c.openMember(m); err != nil {
			c.Close()
			return nil, err
		}
		m.ts = httptest.NewServer(m.handler)
		m.faults = faulthttp.New(m.ts.Client().Transport)
		m.client = timeserver.NewClient(m.ts.URL, cfg.Set, m.key.Pub,
			timeserver.WithHTTPClient(&http.Client{Transport: gate{cut: &m.down, err: ErrDown, base: m.faults}}),
			timeserver.WithRetry(timeserver.NoRetry))
		c.members[share.Index] = m
	}
	if cfg.RelayMember != 0 {
		up, ok := c.members[cfg.RelayMember]
		if !ok {
			c.Close()
			return nil, fmt.Errorf("simnet: relay member %d does not exist", cfg.RelayMember)
		}
		r := &relayNode{member: cfg.RelayMember}
		// The relay's upstream link has its own partition gate on top of
		// the member's down gate: a healed relay still fails against a
		// dead member, exactly like a real deployment.
		upstream := timeserver.NewClient(up.ts.URL, cfg.Set, up.key.Pub,
			timeserver.WithHTTPClient(&http.Client{Transport: gate{
				cut: &r.partitioned, err: ErrPartitioned,
				base: gate{cut: &up.down, err: ErrDown, base: up.ts.Client().Transport},
			}}),
			timeserver.WithRetry(timeserver.NoRetry))
		r.relay = timeserver.NewRelay(upstream, c.Clock.Schedule())
		r.ts = httptest.NewServer(r.relay.Handler())
		r.client = timeserver.NewClient(r.ts.URL, cfg.Set, up.key.Pub,
			timeserver.WithHTTPClient(r.ts.Client()), timeserver.WithRetry(timeserver.NoRetry))
		c.relay = r
	}
	return c, nil
}

// openMember (re)opens the member's durable archive — recovering any
// torn tail and re-verifying every record against the member key — and
// builds a fresh server over it, swapped in behind the stable listener.
func (c *Cluster) openMember(m *member) error {
	scheme := core.NewScheme(c.Set)
	arch, err := archive.OpenDir(m.dir, wire.NewCodec(c.Set),
		archive.WithVerifier(func(u core.KeyUpdate) bool { return scheme.VerifyUpdate(m.key.Pub, u) }))
	if err != nil {
		return err
	}
	m.arch = arch
	m.srv = timeserver.NewServer(c.Set, m.key, c.Clock.Schedule(),
		timeserver.WithArchive(arch), timeserver.WithClock(c.Now))
	m.handler.set(m.srv.Handler())
	return nil
}

// Now is the cluster's virtual clock (the members' time source).
func (c *Cluster) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Trace returns the applied-event log. Two runs of the same schedule
// over the same cluster shape produce identical traces — the
// determinism contract the chaos tests pin.
func (c *Cluster) Trace() []string { return append([]string(nil), c.trace...) }

func (c *Cluster) tracef(format string, args ...any) {
	c.trace = append(c.trace, fmt.Sprintf(format, args...))
}

// Down reports whether a member is currently killed.
func (c *Cluster) Down(idx int) bool { return c.members[idx].down.Load() }

// Shards returns the quorum fan-out view of the cluster: every member's
// pinned client, with the relayed member reachable only through the
// relay.
func (c *Cluster) Shards() []threshold.Shard {
	shards := make([]threshold.Shard, 0, c.N)
	for _, share := range c.Setup.Shares {
		m := c.members[share.Index]
		client := m.client
		if c.relay != nil && c.relay.member == share.Index {
			client = c.relay.client
		}
		shards = append(shards, threshold.Shard{Index: share.Index, Client: client})
	}
	return shards
}

// Quorum returns a fresh quorum client over Shards.
func (c *Cluster) Quorum() *threshold.QuorumClient {
	return &threshold.QuorumClient{Set: c.Set, GroupPub: c.Setup.GroupPub, K: c.K, Shards: c.Shards()}
}

// Faults exposes a member's fault-injecting transport, for layering
// response truncation or latency on top of the schedule.
func (c *Cluster) Faults(idx int) *faulthttp.Transport { return c.members[idx].faults }

// AdvanceToRound moves the virtual clock to the middle of round r,
// applies every scheduled event with Round ≤ r (in schedule order), has
// each live member publish up to the new now, and lets the relay sync.
// Rounds must be advanced in nondecreasing order.
func (c *Cluster) AdvanceToRound(ctx context.Context, r uint64) error {
	if r+1 < c.next {
		return fmt.Errorf("simnet: AdvanceToRound(%d) after round %d", r, c.next-1)
	}
	start, err := c.Clock.Time(r)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.now = start.Add(c.Clock.Period() / 2)
	c.mu.Unlock()
	c.next = r + 1

	for c.cursor < len(c.events) && c.events[c.cursor].Round <= r {
		if err := c.apply(c.events[c.cursor]); err != nil {
			return err
		}
		c.cursor++
	}
	for _, share := range c.Setup.Shares {
		m := c.members[share.Index]
		if m.down.Load() {
			continue
		}
		if _, err := m.srv.PublishUpTo(c.Now()); err != nil {
			return fmt.Errorf("simnet: member %d publish: %w", m.index, err)
		}
	}
	if c.relay != nil {
		if n, err := c.relay.relay.Sync(ctx); err != nil {
			// Expected while partitioned or the upstream is down: the relay
			// retries next round, its archive intact.
			c.tracef("r%d relay sync failed", r)
		} else if n > 0 {
			c.tracef("r%d relay ingested %d", r, n)
		}
	}
	return nil
}

// apply fires one event.
func (c *Cluster) apply(ev Event) error {
	switch ev.Kind {
	case EvKill:
		m, ok := c.members[ev.Member]
		if !ok || m.down.Load() {
			return fmt.Errorf("simnet: kill of unknown or already-down member %d", ev.Member)
		}
		m.down.Store(true)
		m.handler.set(nil)
		if err := m.arch.Close(); err != nil {
			return err
		}
		m.srv, m.arch = nil, nil
		c.tracef("r%d kill member %d", ev.Round, ev.Member)
	case EvRestart:
		m, ok := c.members[ev.Member]
		if !ok || !m.down.Load() {
			return fmt.Errorf("simnet: restart of unknown or running member %d", ev.Member)
		}
		if err := c.openMember(m); err != nil {
			return fmt.Errorf("simnet: member %d recovery: %w", ev.Member, err)
		}
		stats := m.arch.Stats()
		m.down.Store(false)
		c.tracef("r%d restart member %d (recovered %d, torn %dB)",
			ev.Round, ev.Member, stats.Records, stats.TornBytes)
	case EvTearArchive:
		m, ok := c.members[ev.Member]
		if !ok || !m.down.Load() {
			return fmt.Errorf("simnet: tear-archive needs member %d down (the file handle)", ev.Member)
		}
		f, err := os.OpenFile(filepath.Join(m.dir, "updates.log"), os.O_APPEND|os.O_WRONLY, 0o600)
		if err != nil {
			return err
		}
		// A length prefix promising more bytes than follow — the shape a
		// crash mid-append leaves.
		if _, err := f.Write([]byte{0, 0, 0, 42, 't', 'o', 'r', 'n'}); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		c.tracef("r%d tear member %d archive", ev.Round, ev.Member)
	case EvPartition:
		if c.relay == nil {
			return errors.New("simnet: partition without a relay")
		}
		c.relay.partitioned.Store(true)
		c.tracef("r%d partition relay", ev.Round)
	case EvHeal:
		if c.relay == nil {
			return errors.New("simnet: heal without a relay")
		}
		c.relay.partitioned.Store(false)
		c.tracef("r%d heal relay", ev.Round)
	default:
		return fmt.Errorf("simnet: unknown event kind %v", ev.Kind)
	}
	return nil
}

// Close shuts down every listener and archive.
func (c *Cluster) Close() {
	for _, m := range c.members {
		if m.ts != nil {
			m.ts.Close()
		}
		if m.arch != nil {
			m.arch.Close()
		}
	}
	if c.relay != nil {
		c.relay.ts.Close()
	}
}

// RandomSchedule derives a fault schedule from a seed: each round may
// kill a live member (never taking more than n−k down at once, so a
// quorum always exists), restart a down one — tearing its archive tail
// first about half the time — and toggle the relay partition. Every
// member is restarted and the relay healed by the final round, so the
// cluster always ends whole. The same seed yields the same schedule.
func RandomSchedule(seed int64, rounds uint64, n, k int) FaultSchedule {
	rng := rand.New(rand.NewSource(seed))
	var sched FaultSchedule
	down := map[int]bool{}
	partitioned := false
	for r := uint64(1); r+1 < rounds; r++ {
		if len(down) < n-k && rng.Intn(3) == 0 {
			alive := make([]int, 0, n)
			for i := 1; i <= n; i++ {
				if !down[i] {
					alive = append(alive, i)
				}
			}
			victim := alive[rng.Intn(len(alive))]
			sched = append(sched, Event{Round: r, Kind: EvKill, Member: victim})
			down[victim] = true
		}
		if len(down) > 0 && rng.Intn(3) == 0 {
			idle := make([]int, 0, len(down))
			for i := 1; i <= n; i++ {
				if down[i] {
					idle = append(idle, i)
				}
			}
			back := idle[rng.Intn(len(idle))]
			if rng.Intn(2) == 0 {
				sched = append(sched, Event{Round: r, Kind: EvTearArchive, Member: back})
			}
			sched = append(sched, Event{Round: r, Kind: EvRestart, Member: back})
			delete(down, back)
		}
		if rng.Intn(5) == 0 {
			if partitioned {
				sched = append(sched, Event{Round: r, Kind: EvHeal})
			} else {
				sched = append(sched, Event{Round: r, Kind: EvPartition})
			}
			partitioned = !partitioned
		}
	}
	// End whole: everyone back, relay healed, with one settle round left.
	last := rounds - 1
	for i := 1; i <= n; i++ {
		if down[i] {
			sched = append(sched, Event{Round: last, Kind: EvRestart, Member: i})
		}
	}
	if partitioned {
		sched = append(sched, Event{Round: last, Kind: EvHeal})
	}
	return sched
}

package simnet

import (
	"testing"
	"time"

	"timedrelease/internal/baseline/bfibe"
	"timedrelease/internal/core"
	"timedrelease/internal/params"
)

const label = "2026-07-05T12:00:00Z"

func TestTREEpochCostIsConstantInReceivers(t *testing.T) {
	set := params.MustPreset("Test160")
	sc := core.NewScheme(set)
	server, err := sc.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	t10 := TREEpoch(set, server, label, 10)
	t10k := TREEpoch(set, server, label, 10_000)
	if t10.MessagesSent != 1 || t10k.MessagesSent != 1 {
		t.Fatal("TRE must broadcast exactly one update")
	}
	if t10.BytesSent != t10k.BytesSent || t10.CryptoOps != t10k.CryptoOps {
		t.Fatal("TRE server cost must be independent of receiver count")
	}
	if t10.PerUserState != 0 {
		t.Fatal("TRE server must hold no per-user state")
	}
	if t10.SecureChannel || t10.LearnsContent {
		t.Fatal("TRE needs no secure channel and sees no content")
	}
}

func TestMontIBEEpochCostIsLinear(t *testing.T) {
	set := params.MustPreset("Test160")
	ibe := bfibe.NewScheme(set)
	mk, err := ibe.MasterKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	t10 := MontIBEEpoch(set, mk, label, 10)
	t100 := MontIBEEpoch(set, mk, label, 100)
	if t100.MessagesSent != 10*t10.MessagesSent || t100.BytesSent != 10*t10.BytesSent {
		t.Fatal("Mont/IBE cost must be linear in receivers")
	}
	if !t10.SecureChannel {
		t.Fatal("IBE key delivery requires a secure channel")
	}
	if t10.CryptoOps != 10 {
		t.Fatalf("expected one extraction per user, got %d", t10.CryptoOps)
	}
}

func TestEscrowEpochHoldsPlaintext(t *testing.T) {
	rel := time.Date(2026, 7, 5, 13, 0, 0, 0, time.UTC)
	tl := EscrowEpoch(20, 3, 500, rel)
	if !tl.LearnsContent {
		t.Fatal("escrow agent sees plaintext")
	}
	if tl.StateBytes != 20*3*500 {
		t.Fatalf("StateBytes = %d, want 30000", tl.StateBytes)
	}
	if tl.MessagesSent != 60 {
		t.Fatalf("MessagesSent = %d", tl.MessagesSent)
	}
}

func TestRivestHorizonLinear(t *testing.T) {
	set := params.MustPreset("Test160")
	h10, err := RivestHorizon(set, 10)
	if err != nil {
		t.Fatal(err)
	}
	h100, err := RivestHorizon(set, 100)
	if err != nil {
		t.Fatal(err)
	}
	if h100.BytesSent != 10*h10.BytesSent || h100.StateBytes != 10*h10.StateBytes {
		t.Fatal("Rivest publication/storage must be linear in horizon")
	}
}

func TestTallyString(t *testing.T) {
	set := params.MustPreset("Test160")
	sc := core.NewScheme(set)
	server, err := sc.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	s := TREEpoch(set, server, label, 5).String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

func TestUnicastFallback(t *testing.T) {
	set := params.MustPreset("Test160")
	sc := core.NewScheme(set)
	server, err := sc.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	b := TREEpoch(set, server, label, 50)
	u := TREEpochUnicast(set, server, label, 50)
	if u.MessagesSent != 50 || u.BytesSent != 50*b.BytesSent {
		t.Fatal("unicast fallback must scale bytes by n")
	}
	if u.CryptoOps != b.CryptoOps {
		t.Fatal("even unicast TRE signs only once")
	}
}

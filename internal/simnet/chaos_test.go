package simnet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"timedrelease/internal/beacon"
	"timedrelease/internal/core"
	"timedrelease/internal/params"
	"timedrelease/internal/threshold"
)

func testClock(t *testing.T) beacon.Clock {
	t.Helper()
	clock, err := beacon.New(time.Minute, time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	return clock
}

// TestChaosAcceptance is the headline fault-storm scenario: a 3-of-5
// beacon network where k−1 members die mid-round, one of them comes
// back with a torn archive tail, and the relay fronting a third member
// is partitioned for three rounds — and every round's release still
// happens on time, every past round still decrypts after recovery, and
// every quorum combine is byte-identical to a single server holding the
// recovered group secret.
func TestChaosAcceptance(t *testing.T) {
	const rounds = 10
	set := params.MustPreset("Test160")
	clock := testClock(t)
	script := FaultSchedule{
		{Round: 2, Kind: EvKill, Member: 1},
		{Round: 2, Kind: EvKill, Member: 2}, // k−1 = 2 members down at once
		{Round: 3, Kind: EvTearArchive, Member: 1},
		{Round: 4, Kind: EvRestart, Member: 1},
		{Round: 4, Kind: EvRestart, Member: 2},
		{Round: 5, Kind: EvPartition}, // rounds 5,6,7 cut off the relay
		{Round: 8, Kind: EvHeal},
	}
	c, err := NewCluster(ClusterConfig{
		Set: set, K: 3, N: 5, Clock: clock,
		Dir: t.TempDir(), RelayMember: 5, Schedule: script,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// The differential reference: a single server holding the Lagrange-
	// recovered group secret. Every quorum combine must match it byte
	// for byte.
	sc := core.NewScheme(set)
	secret, err := threshold.RecoverSecret(set, c.Setup.Shares[:3], 3)
	if err != nil {
		t.Fatal(err)
	}
	single := &core.ServerKeyPair{S: secret, Pub: c.Setup.GroupPub}

	ctx := context.Background()
	qc := c.Quorum()
	for r := uint64(0); r < rounds; r++ {
		if err := c.AdvanceToRound(ctx, r); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		label, err := clock.Label(r)
		if err != nil {
			t.Fatal(err)
		}
		// The release happens ON TIME, whatever the schedule just broke.
		upd, err := qc.Update(ctx, label)
		if err != nil {
			t.Fatalf("round %d (down: 1=%v 2=%v): quorum update: %v",
				r, c.Down(1), c.Down(2), err)
		}
		ref := sc.IssueUpdate(single, label)
		if !bytes.Equal(set.Curve.Marshal(upd.Point), set.Curve.Marshal(ref.Point)) {
			t.Fatalf("round %d: quorum combine differs from the single-server update", r)
		}
	}

	// Mid-storm facts the trace must show: both kills, the torn tail
	// found at restart (8 garbage bytes dropped), the partition window.
	trace := c.Trace()
	for _, want := range []string{
		"r2 kill member 1",
		"r2 kill member 2",
		"r3 tear member 1 archive",
		"r4 restart member 1 (recovered 2, torn 8B)",
		"r4 restart member 2 (recovered 2, torn 0B)",
		"r5 partition relay",
		"r8 heal relay",
	} {
		found := false
		for _, line := range trace {
			if line == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("trace is missing %q:\n%v", want, trace)
		}
	}

	// After recovery, EVERY past round decrypts — including the rounds
	// the dead members missed (backfilled on restart) and the rounds the
	// relay missed (synced after heal).
	user, err := sc.UserKeyGen(c.Setup.GroupPub, nil)
	if err != nil {
		t.Fatal(err)
	}
	for r := uint64(0); r < rounds; r++ {
		label, _ := clock.Label(r)
		msg := []byte(fmt.Sprintf("round %d payload", r))
		ct, err := sc.EncryptCCA(nil, c.Setup.GroupPub, user.Pub, label, msg)
		if err != nil {
			t.Fatal(err)
		}
		upd, err := qc.Update(ctx, label)
		if err != nil {
			t.Fatalf("past round %d after recovery: %v", r, err)
		}
		got, err := sc.DecryptCCA(c.Setup.GroupPub, user, upd, ct)
		if err != nil || !bytes.Equal(got, msg) {
			t.Fatalf("past round %d decrypt: %q %v", r, got, err)
		}
	}

	// The healed relay itself serves the rounds it missed: its archive
	// caught up through the aggregate sync path.
	for r := uint64(5); r < 8; r++ {
		label, _ := clock.Label(r)
		shards := c.Shards()
		var viaRelay *threshold.Shard
		for i := range shards {
			if shards[i].Index == 5 {
				viaRelay = &shards[i]
			}
		}
		if viaRelay == nil {
			t.Fatal("no relay shard")
		}
		if _, err := viaRelay.Client.Update(ctx, label); err != nil {
			t.Fatalf("relay missing partition-window round %d after heal: %v", r, err)
		}
	}
}

// While the faults overlap worst-case (two members dead AND the relay
// partitioned), only k−1 partials are reachable: the release must fail
// with the typed quorum error — and succeed again the moment one member
// returns.
func TestChaosQuorumLostAndRegained(t *testing.T) {
	set := params.MustPreset("Test160")
	clock := testClock(t)
	script := FaultSchedule{
		{Round: 1, Kind: EvKill, Member: 1},
		{Round: 1, Kind: EvKill, Member: 2},
		{Round: 2, Kind: EvPartition}, // only members 3 and 4 remain reachable
		{Round: 3, Kind: EvRestart, Member: 1},
		{Round: 4, Kind: EvHeal},
	}
	c, err := NewCluster(ClusterConfig{
		Set: set, K: 3, N: 5, Clock: clock,
		Dir: t.TempDir(), RelayMember: 5, Schedule: script,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	qc := c.Quorum()
	for r := uint64(0); r <= 2; r++ {
		if err := c.AdvanceToRound(ctx, r); err != nil {
			t.Fatal(err)
		}
	}
	label2, _ := clock.Label(2)
	var qe *threshold.QuorumError
	if _, err := qc.Update(ctx, label2); !errors.As(err, &qe) {
		t.Fatalf("2 reachable members of quorum 3: got %v, want *QuorumError", err)
	} else if qe.Need != 3 || qe.Have != 2 {
		t.Fatalf("QuorumError need %d have %d, want 3/2", qe.Need, qe.Have)
	}
	// The unreachable members' causes carry the harness's gate errors.
	if !errors.Is(qe.Causes[0], ErrDown) && !errors.Is(qe.Causes[1], ErrDown) {
		t.Fatalf("no cause unwraps to ErrDown: %v", qe.Causes)
	}

	// Member 1 restarts at round 3 and backfills: the round-2 release —
	// missed while quorum was lost — now combines.
	if err := c.AdvanceToRound(ctx, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := qc.Update(ctx, label2); err != nil {
		t.Fatalf("quorum regained but round 2 still fails: %v", err)
	}
}

// Same seed ⇒ same schedule ⇒ same trace: the whole storm is
// reproducible, which is what makes a chaos failure debuggable.
func TestChaosDeterministicBySeed(t *testing.T) {
	const (
		seed   = 8443
		rounds = 12
	)
	set := params.MustPreset("Test160")

	schedA := RandomSchedule(seed, rounds, 5, 3)
	schedB := RandomSchedule(seed, rounds, 5, 3)
	if !reflect.DeepEqual(schedA, schedB) {
		t.Fatal("RandomSchedule is not deterministic in its seed")
	}
	if reflect.DeepEqual(schedA, RandomSchedule(seed+1, rounds, 5, 3)) {
		t.Fatal("different seeds produced the same schedule")
	}

	run := func() []string {
		clock := testClock(t)
		c, err := NewCluster(ClusterConfig{
			Set: set, K: 3, N: 5, Clock: clock,
			Dir: t.TempDir(), RelayMember: 5, Schedule: schedA,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		ctx := context.Background()
		for r := uint64(0); r < rounds; r++ {
			if err := c.AdvanceToRound(ctx, r); err != nil {
				t.Fatalf("round %d: %v", r, err)
			}
		}
		// The storm always ends whole: every round combines afterwards.
		qc := c.Quorum()
		for r := uint64(0); r < rounds; r++ {
			label, _ := clock.Label(r)
			if _, err := qc.Update(ctx, label); err != nil {
				t.Fatalf("round %d after storm: %v", r, err)
			}
		}
		return c.Trace()
	}
	t1 := run()
	t2 := run()
	if !reflect.DeepEqual(t1, t2) {
		t.Fatalf("same schedule, different traces:\n%v\nvs\n%v", t1, t2)
	}
	if len(t1) == 0 {
		t.Fatal("empty trace: the schedule did nothing")
	}
}

// RandomSchedule must never schedule more than n−k members down at
// once (a quorum must always exist), must restart everyone, and must
// heal any partition — across many seeds.
func TestRandomScheduleInvariants(t *testing.T) {
	const (
		rounds = 20
		n, k   = 5, 3
	)
	for seed := int64(0); seed < 200; seed++ {
		sched := RandomSchedule(seed, rounds, n, k)
		down := map[int]bool{}
		partitioned := false
		for _, ev := range sched {
			switch ev.Kind {
			case EvKill:
				if down[ev.Member] {
					t.Fatalf("seed %d: double kill of member %d", seed, ev.Member)
				}
				down[ev.Member] = true
				if len(down) > n-k {
					t.Fatalf("seed %d: %d members down, quorum impossible", seed, len(down))
				}
			case EvRestart:
				if !down[ev.Member] {
					t.Fatalf("seed %d: restart of running member %d", seed, ev.Member)
				}
				delete(down, ev.Member)
			case EvTearArchive:
				if !down[ev.Member] {
					t.Fatalf("seed %d: tear of a running member %d", seed, ev.Member)
				}
			case EvPartition:
				partitioned = true
			case EvHeal:
				partitioned = false
			}
			if ev.Round >= rounds {
				t.Fatalf("seed %d: event past the horizon: %+v", seed, ev)
			}
		}
		if len(down) != 0 || partitioned {
			t.Fatalf("seed %d: storm does not end whole (down=%v partitioned=%v)", seed, down, partitioned)
		}
	}
}

// A member can come back from a COMPLETELY torn archive: if every
// record is lost the restart re-publishes the whole history from its
// share key (the paper's "the server does not need to remember any
// information of key updates").
func TestChaosRestartWithEmptyArchive(t *testing.T) {
	set := params.MustPreset("Test160")
	clock := testClock(t)
	script := FaultSchedule{
		{Round: 1, Kind: EvKill, Member: 3},
		{Round: 4, Kind: EvRestart, Member: 3},
	}
	c, err := NewCluster(ClusterConfig{
		Set: set, K: 2, N: 3, Clock: clock, Dir: t.TempDir(), Schedule: script,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	for r := uint64(0); r <= 4; r++ {
		if err := c.AdvanceToRound(ctx, r); err != nil {
			t.Fatal(err)
		}
	}
	// Member 3 was down for rounds 1–3; after restart it must serve
	// every one of them (backfilled from the archive tail).
	m := c.members[3]
	for r := uint64(0); r <= 4; r++ {
		label, _ := clock.Label(r)
		if _, err := m.client.Update(ctx, label); err != nil {
			t.Fatalf("member 3 missing round %d after restart: %v", r, err)
		}
	}
}

package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		counts := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d: index %d executed %d times", n, i, c)
			}
		}
	}
}

func TestForPerIndexWritesNeedNoLocking(t *testing.T) {
	const n = 500
	out := make([]int, n)
	For(n, func(i int) { out[i] = i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}
